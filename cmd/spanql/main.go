// Command spanql evaluates document-spanner queries on documents.
//
// Usage:
//
//	spanql -pattern '!x{[a-z]+}=!v{[0-9]+}' -text 'k=12' [-mode eval]
//	spanql -pattern '...' -file doc.txt -mode count
//	spanql -pattern '...' -text '...' -mode check -tuple 'x=1:3,v=4:6'
//	spanql -pattern '...' -mode analyze
//	spanql -pattern '...' -lint
//	spanql -pattern '...' -explain
//
// Modes:
//
//	eval     print every result tuple with span contents (default)
//	count    print the number of result tuples
//	check    decide membership of -tuple (ModelChecking)
//	nonempty decide whether the result is non-empty
//	analyze  static analysis: satisfiability, witness, hierarchicality
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"docspanner"
)

func main() {
	var (
		pattern    = flag.String("pattern", "", "spanner pattern (required)")
		text       = flag.String("text", "", "document text")
		file       = flag.String("file", "", "document file")
		alphabet   = flag.String("alphabet", "", "document alphabet (default: inferred)")
		mode       = flag.String("mode", "eval", "eval | count | check | nonempty | analyze")
		tuple      = flag.String("tuple", "", "tuple for -mode check, e.g. x=1:3,y=4:6")
		limit      = flag.Int("limit", 0, "stop after this many tuples (0 = all)")
		schemaless = flag.Bool("schemaless", false, "allow partial tuples")
		compressed = flag.Bool("compressed", false, "evaluate over the SLP-compressed document")
		dot        = flag.Bool("dot", false, "print the spanner automaton in Graphviz DOT format and exit")
		lint       = flag.Bool("lint", false, "run spanlint on the compiled spanner and exit (status 1 on warnings or errors)")
		explain    = flag.Bool("explain", false, "print the execution plan (logical shape, rewrites applied, physical backend per node) and exit")
	)
	flag.Parse()
	if strings.TrimSpace(*pattern) == "" {
		usageError("-pattern is required and must be non-blank")
	}

	opts := docspanner.Options{Schemaless: *schemaless}
	if *alphabet != "" {
		opts.Alphabet = []byte(*alphabet)
	}
	s, err := docspanner.Compile(*pattern, opts)
	if err != nil {
		fail(err)
	}

	if *dot {
		fmt.Print(s.Dot())
		return
	}

	if *explain {
		fmt.Print(s.Explain())
		return
	}

	if *lint {
		ds := s.Lint()
		if len(ds) == 0 {
			fmt.Println("spanql: lint clean")
			return
		}
		bad := false
		for _, d := range ds {
			fmt.Println(d)
			if d.Severity >= docspanner.SeverityWarning {
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
		return
	}

	if *mode == "analyze" {
		fmt.Printf("pattern:      %s\n", s.Pattern())
		fmt.Printf("variables:    %v\n", s.Vars())
		fmt.Printf("regular:      %v\n", s.IsRegular())
		fmt.Printf("satisfiable:  %v\n", s.Satisfiable())
		if doc, t, ok := s.Witness(); ok {
			fmt.Printf("witness:      %q with %v\n", doc, t)
		}
		if s.IsRegular() {
			h, _ := s.Hierarchical()
			fmt.Printf("hierarchical: %v\n", h)
		}
		return
	}

	if *text == "" && *file == "" && !textFlagSet() {
		// Evaluation modes need a document; exiting 0 here would hide the
		// mistake from scripts, so it is a usage error like -pattern.
		usageError(fmt.Sprintf("-mode %s needs a document: provide -text or -file", *mode))
	}
	doc, err := loadDoc(*text, *file)
	if err != nil {
		fail(err)
	}

	switch *mode {
	case "eval":
		n := 0
		emit := func(t docspanner.Tuple) bool {
			n++
			parts := make([]string, 0, len(t))
			for _, v := range t.Vars() {
				parts = append(parts, fmt.Sprintf("%s=%v %q", v, t[v], t[v].Content(doc)))
			}
			fmt.Println(strings.Join(parts, "  "))
			return *limit == 0 || n < *limit
		}
		if *compressed {
			ix, err := s.Index()
			if err != nil {
				fail(err)
			}
			d := docspanner.CompressDocument(doc)
			fmt.Fprintf(os.Stderr, "spanql: compressed %d bytes to %d SLP nodes\n", d.Len(), d.GrammarSize())
			ix.Enumerate(d, emit)
		} else {
			s.Enumerate(doc, emit)
		}
		fmt.Fprintf(os.Stderr, "spanql: %d tuple(s)\n", n)
	case "count":
		if *compressed {
			ix, err := s.Index()
			if err != nil {
				fail(err)
			}
			fmt.Println(ix.ExactCount(docspanner.CompressDocument(doc)))
		} else {
			c, err := s.ExactCount(doc)
			if err != nil {
				// Refl-spanners: fall back to enumeration.
				fmt.Println(s.Count(doc))
				return
			}
			fmt.Println(c)
		}
	case "nonempty":
		fmt.Println(s.NonEmpty(doc))
	case "check":
		t, err := parseTuple(*tuple)
		if err != nil {
			fail(err)
		}
		ok, err := s.ModelCheck(doc, t)
		if err != nil {
			fail(err)
		}
		fmt.Println(ok)
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

// textFlagSet reports whether -text was given explicitly (an explicit
// -text '' means the empty document, which is a legitimate input).
func textFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "text" {
			set = true
		}
	})
	return set
}

func loadDoc(text, file string) ([]byte, error) {
	if file != "" {
		return os.ReadFile(file)
	}
	return []byte(text), nil
}

// parseTuple parses x=1:3,y=4:6 into a span tuple.
func parseTuple(src string) (docspanner.Tuple, error) {
	t := docspanner.Tuple{}
	if src == "" {
		return t, nil
	}
	for _, part := range strings.Split(src, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("spanql: bad tuple component %q", part)
		}
		var b, e int
		if _, err := fmt.Sscanf(kv[1], "%d:%d", &b, &e); err != nil {
			return nil, fmt.Errorf("spanql: bad span %q (want begin:end)", kv[1])
		}
		t[docspanner.Var(strings.TrimSpace(kv[0]))] = docspanner.NewSpan(b, e)
	}
	return t, nil
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "spanql:", msg)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spanql:", err)
	os.Exit(1)
}
