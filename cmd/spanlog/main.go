// Command spanlog evaluates datalog-over-spanners programs (RGXLog-style)
// on documents.
//
// Usage:
//
//	spanlog -program rules.dl -file doc.txt -query reach
//	spanlog -rules 'edge(x,y) :- "!x{a}-!y{b}"(x,y).' -text 'a-b' -query edge
//
// Programs consist of rules `head(args) :- body.`; body literals are IDB
// atoms, quoted spanner patterns applied to their variables, and the
// builtin eq(x, y) (string equality of span contents). The -query
// predicate's facts are printed with their span contents.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"docspanner/internal/spanlog"
)

func main() {
	var (
		program  = flag.String("program", "", "program file")
		rules    = flag.String("rules", "", "inline program text")
		text     = flag.String("text", "", "document text")
		file     = flag.String("file", "", "document file")
		query    = flag.String("query", "", "predicate to print (default: all IDB counts)")
		alphabet = flag.String("alphabet", "", "pattern alphabet (default: bytes of the document)")
	)
	flag.Parse()

	src := *rules
	if *program != "" {
		data, err := os.ReadFile(*program)
		if err != nil {
			fail(err)
		}
		src = string(data)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "spanlog: provide -program or -rules")
		flag.Usage()
		os.Exit(2)
	}

	var doc []byte
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		doc = data
	case *text != "":
		doc = []byte(*text)
	default:
		fail(fmt.Errorf("provide -text or -file"))
	}

	alpha := []byte(*alphabet)
	if len(alpha) == 0 {
		seen := map[byte]bool{}
		for _, b := range doc {
			if !seen[b] {
				seen[b] = true
				alpha = append(alpha, b)
			}
		}
	}

	prog, err := spanlog.ParseProgram(src, alpha)
	if err != nil {
		fail(err)
	}
	res, err := prog.Eval(doc)
	if err != nil {
		fail(err)
	}

	if *query == "" {
		preds := map[string]bool{}
		for _, r := range prog.Rules {
			preds[r.Head.Pred] = true
		}
		for pred := range preds {
			fmt.Printf("%s: %d fact(s)\n", pred, res.Count(pred))
		}
		return
	}
	for _, f := range res.Facts(*query) {
		parts := make([]string, len(f))
		for i, s := range f {
			parts[i] = fmt.Sprintf("%v %q", s, s.Content(doc))
		}
		fmt.Println(strings.Join(parts, "  "))
	}
	fmt.Fprintf(os.Stderr, "spanlog: %d fact(s) for %s\n", res.Count(*query), *query)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spanlog:", err)
	os.Exit(1)
}
