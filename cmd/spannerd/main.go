// Command spannerd serves document-spanner extraction over HTTP/JSON:
// a persistent store of named (optionally SLP-compressed) documents
// with CDE edits, prepared queries (linted and planned at
// registration), materialized / counting / NDJSON-streaming / batch
// evaluation, and live metrics.
//
// Usage:
//
//	spannerd [-addr :8080] [-max-concurrent 64] [-timeout 30s]
//	         [-max-timeout 5m] [-lint-fail-on error] [-log text|json|off]
//	         [-view-refresh sync|async]
//	         [-data-dir DIR] [-fsync always|interval|never]
//	         [-fsync-interval 100ms] [-snapshot-bytes 67108864]
//
// Without -data-dir the store is in-memory and dies with the process.
// With it, every mutation is appended to a checksummed write-ahead log
// under DIR before it is acknowledged, snapshots of the compressed
// document database are cut when the log outgrows -snapshot-bytes (or
// on POST /admin/snapshot), and a restart pointed at the same DIR
// recovers the full state: documents, versions, prepared queries, and
// live views, with no spurious /changes deltas. The listener accepts
// connections from the start: while recovery replays the log, /healthz
// answers ok (alive) but /readyz answers 503 (not routable yet).
//
// Cluster mode:
//
//	spannerd -coordinator -workers http://h1:8081,http://h2:8082
//	         [-vnodes 64] [-replication-probe 500ms]
//
// runs the same HTTP API as a coordinator that owns no documents:
// each document name hashes onto one worker (consistent hashing with
// virtual nodes), single-document requests are routed to the owner,
// query registrations fan out to every shard, and /batch plus
// /stream?docs=a,b (or docs=*) scatter-gather across the owning shards
// with per-worker retries, circuit breaking, and bounded in-flight
// fan-out. GET /cluster shows the ring; /cluster?key=NAME shows one
// document's placement.
//
// Endpoints (see the README's Serving section for a walkthrough):
//
//	GET    /healthz                  liveness + object counts
//	GET    /readyz                   readiness (503 while recovering)
//	GET    /metrics                  Prometheus text format
//	GET    /varz                     expvar JSON
//	GET    /cluster                  ring + worker health (coordinator)
//	GET    /docs                     list documents
//	PUT    /docs/{name}[?compress=1] ingest body as a document
//	GET    /docs/{name}[?content=1]  metadata, or the text itself
//	DELETE /docs/{name}              drop a document
//	POST   /docs/{name}/compress     re-ingest in SLP-compressed form
//	POST   /docs/{name}/edit         apply a CDE expression {"expr": ...}
//	POST   /docs/{name}/warm?query=q compressed-evaluation preprocessing
//	GET    /queries                  list prepared queries
//	PUT    /queries/{name}           register {"src": pattern-or-expr, ...}
//	GET    /queries/{name}/explain   the planned physical query
//	DELETE /queries/{name}           unregister
//	GET    /eval?query=q&doc=d       materialized result (sorted JSON)
//	GET    /count?query=q&doc=d      tuple count
//	GET    /stream?query=q&doc=d     NDJSON, one tuple per line, streamed
//	GET    /stream?query=q&docs=a,b  merged cross-document stream (coordinator)
//	POST   /batch                    {"query", "docs": [...], "workers"}
//	GET    /views                    list all live views
//	PUT    /docs/{name}/views/{q}    register a live view, refresh inline
//	GET    /docs/{name}/views/{q}    version-stamped result [?tuples=1]
//	DELETE /docs/{name}/views/{q}    drop a view
//	GET    /docs/{name}/changes      ?query=q&since=V tuple delta, NDJSON
//	POST   /admin/flush-caches       drop the shared plan + matrix caches
//	POST   /admin/snapshot           cut a storage snapshot, truncate WAL
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"docspanner/internal/server"
	"docspanner/internal/storage"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		maxConc = flag.Int("max-concurrent", 64, "max evaluation requests running at once")
		timeout = flag.Duration("timeout", 30*time.Second, "default evaluation deadline per request")
		maxTO   = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested ?timeout=")
		failOn  = flag.String("lint-fail-on", "error", "reject query registrations at this lint severity: info | warning | error | never")
		logMode = flag.String("log", "text", "request log format: text | json | off")
		refresh = flag.String("view-refresh", "sync", "live-view refresh on document edits: sync | async")

		dataDir   = flag.String("data-dir", "", "persist state under this directory (empty: in-memory only)")
		fsyncMode = flag.String("fsync", "always", "WAL durability: always | interval | never (with -data-dir)")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
		snapBytes = flag.Int64("snapshot-bytes", 64<<20, "cut a snapshot when the WAL outgrows this many bytes (<0 disables)")

		coordMode = flag.Bool("coordinator", false, "run as a cluster coordinator over -workers instead of serving documents")
		workers   = flag.String("workers", "", "comma-separated worker base URLs, e.g. http://h1:8081,http://h2:8082 (coordinator mode; order is part of the placement)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per worker on the placement ring (0: default 64)")
		probeIvl  = flag.Duration("replication-probe", 500*time.Millisecond, "per-worker health-probe interval (coordinator mode)")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logMode {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = nil
	default:
		fmt.Fprintf(os.Stderr, "spannerd: unknown -log mode %q (want text, json, or off)\n", *logMode)
		os.Exit(2)
	}

	if *coordMode {
		runCoordinator(*addr, *workers, *vnodes, *probeIvl, *timeout, *maxTO, logger)
		return
	}

	var backend storage.Backend
	if *dataDir != "" {
		policy, err := storage.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spannerd:", err)
			os.Exit(2)
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "spannerd: storage: "+format+"\n", args...)
		}
		backend, err = storage.OpenDisk(storage.DiskOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: *fsyncIvl,
			SnapshotBytes: *snapBytes,
			Logf:          logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spannerd:", err)
			os.Exit(2)
		}
	}

	// Accept connections before recovery: the BootGate answers /healthz
	// ok (the process is alive) and everything else 503 "recovering"
	// until the Server — which replays the WAL/snapshot inside New — is
	// swapped in. A cluster coordinator probing /readyz sees exactly when
	// this worker becomes routable.
	gate := server.NewBootGate()
	hs := &http.Server{
		Handler:           gate,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerd:", err)
		os.Exit(2)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "spannerd: listening on %s (recovering)\n", *addr)

	srv, err := server.New(server.Config{
		MaxConcurrent:  *maxConc,
		RequestTimeout: *timeout,
		MaxTimeout:     *maxTO,
		LintFailOn:     *failOn,
		Logger:         logger,
		ViewRefresh:    *refresh,
		Storage:        backend,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerd:", err)
		_ = hs.Close()
		os.Exit(2)
	}
	defer srv.Close()
	gate.Ready(srv)
	fmt.Fprintf(os.Stderr, "spannerd: serving on %s\n", *addr)

	waitAndShutdown(hs, errCh)
}

func runCoordinator(addr, workers string, vnodes int, probeIvl, timeout, maxTO time.Duration, logger *slog.Logger) {
	var urls []string
	for _, w := range strings.Split(workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, strings.TrimRight(w, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "spannerd: -coordinator needs -workers (comma-separated base URLs)")
		os.Exit(2)
	}
	coord, err := server.NewCoordinator(server.CoordinatorConfig{
		Workers:        urls,
		VNodes:         vnodes,
		ProbeInterval:  probeIvl,
		RequestTimeout: timeout,
		MaxTimeout:     maxTO,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerd:", err)
		os.Exit(2)
	}
	defer coord.Close()

	hs := &http.Server{
		Addr:              addr,
		Handler:           coord,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spannerd: coordinating %d workers on %s\n", len(urls), addr)

	waitAndShutdown(hs, errCh)
}

// waitAndShutdown blocks until SIGINT/SIGTERM or a listener error, then
// drains in-flight requests.
func waitAndShutdown(hs *http.Server, errCh chan error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "spannerd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "spannerd: shutdown:", err)
			os.Exit(1)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "spannerd:", err)
			os.Exit(1)
		}
	}
}
