// Command spannerd serves document-spanner extraction over HTTP/JSON:
// a persistent store of named (optionally SLP-compressed) documents
// with CDE edits, prepared queries (linted and planned at
// registration), materialized / counting / NDJSON-streaming / batch
// evaluation, and live metrics.
//
// Usage:
//
//	spannerd [-addr :8080] [-max-concurrent 64] [-timeout 30s]
//	         [-max-timeout 5m] [-lint-fail-on error] [-log text|json|off]
//	         [-view-refresh sync|async]
//	         [-data-dir DIR] [-fsync always|interval|never]
//	         [-fsync-interval 100ms] [-snapshot-bytes 67108864]
//
// Without -data-dir the store is in-memory and dies with the process.
// With it, every mutation is appended to a checksummed write-ahead log
// under DIR before it is acknowledged, snapshots of the compressed
// document database are cut when the log outgrows -snapshot-bytes (or
// on POST /admin/snapshot), and a restart pointed at the same DIR
// recovers the full state: documents, versions, prepared queries, and
// live views, with no spurious /changes deltas.
//
// Endpoints (see the README's Serving section for a walkthrough):
//
//	GET    /healthz                  liveness + object counts
//	GET    /metrics                  Prometheus text format
//	GET    /varz                     expvar JSON
//	GET    /docs                     list documents
//	PUT    /docs/{name}[?compress=1] ingest body as a document
//	GET    /docs/{name}[?content=1]  metadata, or the text itself
//	DELETE /docs/{name}              drop a document
//	POST   /docs/{name}/compress     re-ingest in SLP-compressed form
//	POST   /docs/{name}/edit         apply a CDE expression {"expr": ...}
//	POST   /docs/{name}/warm?query=q compressed-evaluation preprocessing
//	GET    /queries                  list prepared queries
//	PUT    /queries/{name}           register {"src": pattern-or-expr, ...}
//	GET    /queries/{name}/explain   the planned physical query
//	DELETE /queries/{name}           unregister
//	GET    /eval?query=q&doc=d       materialized result (sorted JSON)
//	GET    /count?query=q&doc=d      tuple count
//	GET    /stream?query=q&doc=d     NDJSON, one tuple per line, streamed
//	POST   /batch                    {"query", "docs": [...], "workers"}
//	GET    /views                    list all live views
//	PUT    /docs/{name}/views/{q}    register a live view, refresh inline
//	GET    /docs/{name}/views/{q}    version-stamped result [?tuples=1]
//	DELETE /docs/{name}/views/{q}    drop a view
//	GET    /docs/{name}/changes      ?query=q&since=V tuple delta, NDJSON
//	POST   /admin/flush-caches       drop the shared plan + matrix caches
//	POST   /admin/snapshot           cut a storage snapshot, truncate WAL
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"docspanner/internal/server"
	"docspanner/internal/storage"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		maxConc = flag.Int("max-concurrent", 64, "max evaluation requests running at once")
		timeout = flag.Duration("timeout", 30*time.Second, "default evaluation deadline per request")
		maxTO   = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested ?timeout=")
		failOn  = flag.String("lint-fail-on", "error", "reject query registrations at this lint severity: info | warning | error | never")
		logMode = flag.String("log", "text", "request log format: text | json | off")
		refresh = flag.String("view-refresh", "sync", "live-view refresh on document edits: sync | async")

		dataDir   = flag.String("data-dir", "", "persist state under this directory (empty: in-memory only)")
		fsyncMode = flag.String("fsync", "always", "WAL durability: always | interval | never (with -data-dir)")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
		snapBytes = flag.Int64("snapshot-bytes", 64<<20, "cut a snapshot when the WAL outgrows this many bytes (<0 disables)")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logMode {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = nil
	default:
		fmt.Fprintf(os.Stderr, "spannerd: unknown -log mode %q (want text, json, or off)\n", *logMode)
		os.Exit(2)
	}

	var backend storage.Backend
	if *dataDir != "" {
		policy, err := storage.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spannerd:", err)
			os.Exit(2)
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "spannerd: storage: "+format+"\n", args...)
		}
		backend, err = storage.OpenDisk(storage.DiskOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: *fsyncIvl,
			SnapshotBytes: *snapBytes,
			Logf:          logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spannerd:", err)
			os.Exit(2)
		}
	}

	srv, err := server.New(server.Config{
		MaxConcurrent:  *maxConc,
		RequestTimeout: *timeout,
		MaxTimeout:     *maxTO,
		LintFailOn:     *failOn,
		Logger:         logger,
		ViewRefresh:    *refresh,
		Storage:        backend,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerd:", err)
		os.Exit(2)
	}
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spannerd: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "spannerd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "spannerd: shutdown:", err)
			os.Exit(1)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "spannerd:", err)
			os.Exit(1)
		}
	}
}
