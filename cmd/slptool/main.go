// Command slptool inspects and edits SLP-compressed document databases.
//
// Usage:
//
//	slptool -stats -file doc.txt
//	    compress a file and report SLP statistics
//
//	slptool -docs 'D1=fileA,D2=fileB' -edit 'insert(D1, extract(D2,5,21), 12)' [-out result.txt]
//	    load named documents, evaluate a CDE expression (Section 4.3 of
//	    the survey), and report/write the result
//
//	slptool -docs 'D1=fileA' -access 'D1:100'
//	    random access into a compressed document (O(log n))
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"docspanner/internal/slp"
)

func main() {
	var (
		stats  = flag.Bool("stats", false, "report compression statistics for -file")
		file   = flag.String("file", "", "input file for -stats")
		docs   = flag.String("docs", "", "comma-separated name=file document bindings")
		edit   = flag.String("edit", "", "CDE expression to evaluate")
		access = flag.String("access", "", "name:index random access")
		out    = flag.String("out", "", "write the edit result to this file")
		save   = flag.String("save", "", "serialize the database (after -edit, if any) to this file")
		load   = flag.String("load", "", "load a serialized database instead of -docs")
	)
	flag.Parse()

	switch {
	case *stats:
		if *file == "" {
			fail(fmt.Errorf("-stats requires -file"))
		}
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		raw := slp.Compress(data)
		bal := slp.Balance(raw)
		fmt.Printf("document:          %d bytes\n", len(data))
		fmt.Printf("re-pair SLP:       %d nodes (order %d)\n", raw.Size(), raw.Order())
		fmt.Printf("balanced SLP:      %d nodes (order %d)\n", bal.Size(), bal.Order())
		fmt.Printf("strongly balanced: %v, 2-shallow: %v\n", bal.StronglyBalanced(), bal.CShallow(2))
		fmt.Printf("compression ratio: %.2fx\n", float64(len(data))/float64(bal.Size()))
	case *edit != "":
		db, err := loadOrBuildDB(*load, *docs)
		if err != nil {
			fail(err)
		}
		expr, err := slp.ParseCDE(*edit)
		if err != nil {
			fail(err)
		}
		n, err := db.Eval(expr)
		if err != nil {
			fail(err)
		}
		db.Add("result", n)
		fmt.Printf("result: %d bytes, %d SLP nodes, strongly balanced: %v\n",
			n.Len(), n.Size(), n == nil || n.StronglyBalanced())
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				fail(err)
			}
			if _, err := db.WriteTo(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("database saved to %s\n", *save)
		}
		if *out != "" {
			if err := os.WriteFile(*out, n.Bytes(), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("written to %s\n", *out)
		}
	case *access != "":
		db, err := loadOrBuildDB(*load, *docs)
		if err != nil {
			fail(err)
		}
		parts := strings.SplitN(*access, ":", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("bad -access %q (want name:index)", *access))
		}
		n, ok := db.Get(parts[0])
		if !ok {
			fail(fmt.Errorf("unknown document %q", parts[0]))
		}
		i, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || i < 0 || i >= n.Len() {
			fail(fmt.Errorf("index %q out of range 0..%d", parts[1], n.Len()-1))
		}
		fmt.Printf("%s[%d] = %q\n", parts[0], i, string(n.Byte(i)))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// loadOrBuildDB loads a serialized database when path is given, otherwise
// builds one from name=file bindings.
func loadOrBuildDB(path, spec string) (*slp.DB, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return slp.ReadDB(f)
	}
	return loadDB(spec)
}

func loadDB(spec string) (*slp.DB, error) {
	db := slp.NewDB()
	if spec == "" {
		return db, nil
	}
	for _, binding := range strings.Split(spec, ",") {
		kv := strings.SplitN(binding, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -docs binding %q (want name=file)", binding)
		}
		data, err := os.ReadFile(kv[1])
		if err != nil {
			return nil, err
		}
		db.Add(kv[0], slp.Balance(slp.Compress(data)))
	}
	return db, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "slptool:", err)
	os.Exit(1)
}
