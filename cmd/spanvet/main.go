// Command spanvet runs the repository's static analyzers (package
// docspanner/internal/vetters) over Go packages:
//
//	spanvet ./...                 # all analyzers over the module
//	spanvet -run aliasinto,errflush ./internal/...
//	spanvet -list                 # describe the analyzers
//	spanvet -json ./...           # findings as JSON lines
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
// Findings can be suppressed with a //spanvet:ignore [analyzer,...]
// comment on the same or the preceding line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"docspanner/internal/vetters"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("spanvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as JSON lines")
	dir := fs.String("C", ".", "directory to run in (the module root)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: spanvet [-list] [-run analyzers] [-json] [-C dir] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range vetters.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := vetters.All()
	if *runNames != "" {
		var err error
		analyzers, err = vetters.ByName(*runNames)
		if err != nil {
			fmt.Fprintf(stderr, "spanvet: %v\n", err)
			return 2
		}
		if len(analyzers) == 0 {
			fmt.Fprintf(stderr, "spanvet: -run selected no analyzers\n")
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	pkgs, err := vetters.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "spanvet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "spanvet: no packages matched %s\n", strings.Join(patterns, " "))
		return 2
	}

	found := false
	enc := json.NewEncoder(stdout)
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			fmt.Fprintf(stderr, "spanvet: %s does not type-check:\n", pkg.ImportPath)
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "\t%v\n", e)
			}
			return 2
		}
		for _, d := range vetters.Run(pkg, analyzers) {
			found = true
			if *asJSON {
				if err := enc.Encode(jsonDiag{
					Path:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Column:   d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				}); err != nil {
					fmt.Fprintf(stderr, "spanvet: %v\n", err)
					return 2
				}
				continue
			}
			fmt.Fprintln(stdout, d)
		}
	}
	if found {
		return 1
	}
	return 0
}

type jsonDiag struct {
	Path     string `json:"path"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}
