package main

// E18/E19: spannerd load benchmark (-serve-bench). Boots one in-process
// spannerd (internal/server) behind a real HTTP listener, drives it
// with concurrent clients, and reports req/s and latency quantiles per
// request kind — materialized eval vs streaming enumeration vs counting,
// each against a plain and an SLP-compressed store document, plus the
// parallel batch endpoint (E18) and the streaming-heavy NDJSON
// scenarios on a 4x larger document (E19). Results are written as
// machine-readable JSON (BENCH_pr6.json) so later sessions can track
// the serving trajectory.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"docspanner/internal/server"
)

const (
	serveBenchClients  = 8
	serveBenchDuration = 600 * time.Millisecond
)

// serveBenchEntry is one measured request kind.
type serveBenchEntry struct {
	ID        string  `json:"id"`
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	MeanUs    float64 `json:"mean_us"`
	// Tuples is the result size of one request of this kind (fixed per
	// scenario; contextualizes the latency).
	Tuples int `json:"tuples_per_request"`
}

type serveBenchFile struct {
	Description string            `json:"description"`
	GoVersion   string            `json:"go_version"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Clients     int               `json:"clients"`
	DurationMs  int               `json:"duration_ms_per_scenario"`
	Entries     []serveBenchEntry `json:"entries"`
}

// runServeBench boots the server, runs every scenario, and writes the
// JSON file at path.
func runServeBench(path string) error {
	srv, err := server.New(server.Config{MaxConcurrent: 64})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: serveBenchClients}}

	request := func(method, path, body string) (int, []byte, error) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	mustOK := func(method, path, body string) {
		code, b, err := request(method, path, body)
		if err != nil || code != 200 {
			panic(fmt.Sprintf("serve-bench setup %s %s: %d %s %v", method, path, code, b, err))
		}
	}

	// Fixture: one 4 KiB pseudo-random ab-document in both
	// representations, a small batch set, and one prepared query whose
	// plan is a single constant-delay scan.
	doc := string(randomDoc(1<<12, 99))
	mustOK("PUT", "/docs/plain", doc)
	mustOK("PUT", "/docs/comp?compress=1", doc)
	batchDocs := make([]string, 8)
	for i := range batchDocs {
		name := fmt.Sprintf("b%d", i)
		batchDocs[i] = fmt.Sprintf("%q", name)
		mustOK("PUT", "/docs/"+name+"?compress=1", string(randomDoc(1<<10, int64(100+i))))
	}
	mustOK("PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	// E19 fixture: a 16 KiB document for the streaming-heavy scenarios —
	// enough tuples per request that serialization and flushing dominate
	// over connection handling.
	sdoc := string(randomDoc(1<<14, 7))
	mustOK("PUT", "/docs/sp", sdoc)
	mustOK("PUT", "/docs/sc?compress=1", sdoc)
	// Warm the compressed indexes once so the steady state is measured.
	mustOK("POST", "/docs/comp/warm?query=q", "")
	mustOK("POST", "/docs/sc/warm?query=q", "")

	tuplesOf := func(path string) int {
		_, b, err := request("GET", path, "")
		if err != nil {
			panic(err)
		}
		var body struct {
			Count int `json:"count"`
		}
		_ = json.Unmarshal(b, &body)
		return body.Count
	}
	nTuples := tuplesOf("/count?query=q&doc=plain")
	sTuples := tuplesOf("/count?query=q&doc=sp")

	scenarios := []struct {
		id     string
		method string
		path   string
		body   string
		tuples int
	}{
		{"E18/eval/plain", "GET", "/eval?query=q&doc=plain&content=0", "", nTuples},
		{"E18/eval/compressed", "GET", "/eval?query=q&doc=comp&content=0", "", nTuples},
		{"E18/stream/plain", "GET", "/stream?query=q&doc=plain&content=0", "", nTuples},
		{"E18/stream/compressed", "GET", "/stream?query=q&doc=comp&content=0", "", nTuples},
		{"E18/count/plain", "GET", "/count?query=q&doc=plain", "", nTuples},
		{"E18/count/compressed", "GET", "/count?query=q&doc=comp", "", nTuples},
		{"E18/batch/8x1KiB", "POST", "/batch",
			fmt.Sprintf(`{"query": "q", "docs": [%s], "content": false}`, strings.Join(batchDocs, ",")), 0},
		// E19: streaming-heavy load — every tuple serialized and flushed
		// through the NDJSON path, with and without span contents, on the
		// 16 KiB document (4x the E18 fixture).
		{"E19/stream/16KiB", "GET", "/stream?query=q&doc=sp&content=0", "", sTuples},
		{"E19/stream/16KiB-content", "GET", "/stream?query=q&doc=sp", "", sTuples},
		{"E19/stream/16KiB-compressed", "GET", "/stream?query=q&doc=sc&content=0", "", sTuples},
		{"E19/stream/first-tuple", "GET", "/stream?query=q&doc=sp&content=0&limit=1", "", 1},
	}

	f := serveBenchFile{
		Description: "E18/E19: spannerd load benchmark (cmd/benchrunner -serve-bench): req/s and latency quantiles per request kind, query .*!x{ab}.* over HTTP; E18 = 4KiB document across eval/stream/count/batch, E19 = streaming-heavy 16KiB NDJSON scenarios",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Clients:     serveBenchClients,
		DurationMs:  int(serveBenchDuration / time.Millisecond),
	}

	fmt.Printf("\n== E18/E19: spannerd load benchmark (%d clients, %v per scenario) ==\n",
		serveBenchClients, serveBenchDuration)
	fmt.Printf("%-24s %-10s %-10s %-10s %-10s\n", "scenario", "req/s", "p50", "p99", "tuples/req")
	for _, sc := range scenarios {
		lat, elapsed := hammerScenario(request, sc.method, sc.path, sc.body)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		q := func(p float64) time.Duration {
			if len(lat) == 0 {
				return 0
			}
			i := int(p * float64(len(lat)-1))
			return lat[i]
		}
		entry := serveBenchEntry{
			ID:        sc.id,
			Requests:  len(lat),
			ReqPerSec: round2(float64(len(lat)) / elapsed.Seconds()),
			P50Us:     round2(float64(q(0.50).Nanoseconds()) / 1e3),
			P99Us:     round2(float64(q(0.99).Nanoseconds()) / 1e3),
			MeanUs:    round2(float64(sum.Nanoseconds()) / float64(max(1, len(lat))) / 1e3),
			Tuples:    sc.tuples,
		}
		f.Entries = append(f.Entries, entry)
		fmt.Printf("%-24s %-10.0f %-10v %-10v %-10d\n", sc.id, entry.ReqPerSec, q(0.50), q(0.99), sc.tuples)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// hammerScenario fires the request from serveBenchClients goroutines
// for serveBenchDuration and returns every observed latency plus the
// wall-clock elapsed time.
func hammerScenario(request func(method, path, body string) (int, []byte, error), method, path, body string) ([]time.Duration, time.Duration) {
	// One warm-up request (plan caches, TCP conns).
	if code, b, err := request(method, path, body); err != nil || code != 200 {
		panic(fmt.Sprintf("serve-bench %s %s: %d %s %v", method, path, code, b, err))
	}
	deadline := time.Now().Add(serveBenchDuration)
	start := time.Now()
	perClient := make([][]time.Duration, serveBenchClients)
	var wg sync.WaitGroup
	for c := 0; c < serveBenchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				code, _, err := request(method, path, body)
				d := time.Since(t0)
				if err != nil || code != 200 {
					panic(fmt.Sprintf("serve-bench %s %s: status %d, err %v", method, path, code, err))
				}
				perClient[c] = append(perClient[c], d)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, l := range perClient {
		all = append(all, l...)
	}
	return all, elapsed
}
