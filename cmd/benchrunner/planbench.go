package main

// E17 / -plan-bench: the query-planner benchmark. Each query in the
// suite is measured twice on the same documents — once with the planner
// disabled (DisableRewrites + NaiveBackend, reproducing the classical
// bottom-up evaluation the facade used before the planner) and once
// with the full rewrite pipeline and automatic backend selection:
//
//	go run ./cmd/benchrunner -experiment E17        # human-readable table
//	go run ./cmd/benchrunner -plan-bench BENCH_pr4.json
//
// The suite is deliberately join- and selection-heavy: those are the
// shapes where the rewrites (dead-subtree pruning, duplicate-union
// elimination, projection pushdown, fusion to a single scan) change the
// asymptotics rather than the constants.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"docspanner"
)

var plannerOff = docspanner.PlanOptions{DisableRewrites: true, NaiveBackend: true}

type planBenchItem struct {
	id    string
	query *docspanner.Query
	doc   []byte
	// op runs one measured operation against the given planned variant.
	op func(q *docspanner.Query, doc []byte)
}

func planQ(pattern string) *docspanner.Query {
	return docspanner.MustQ(docspanner.MustCompile(pattern, docspanner.Options{Alphabet: []byte("ab")}))
}

func evalOp(q *docspanner.Query, doc []byte) { q.Eval(doc) }

// planBenchSuite returns the fixed E17 measurement suite.
func planBenchSuite() []planBenchItem {
	return []planBenchItem{
		{
			// Duplicate union branches: SP008 dedup collapses the union to a
			// single branch, which then runs constant-delay instead of two
			// naive scans plus a set union.
			id:    "E17/dedup-union/n=2^10",
			query: planQ(".*!x{a+}.*").Union(planQ(".*!x{aa*}.*")),
			doc:   randomDoc(1<<10, 41),
			op:    evalOp,
		},
		{
			// Provably empty join (x must be "ab" and "ba" at the same span):
			// the SP003 lint prune rewrites the whole plan to ∅; the naive
			// evaluation materializes both sides and joins them.
			id:    "E17/dead-join/n=2^10",
			query: planQ(".*!x{ab}.*").Join(planQ(".*!x{ba}.*")),
			doc:   randomDoc(1<<10, 42),
			op:    evalOp,
		},
		{
			// Projection pushdown: the junk variable j is dropped below the
			// join, which then fuses to one scan — the naive plan builds the
			// full {x, j} × {x} intermediate first.
			id:    "E17/proj-pushdown-join/n=2^9",
			query: planQ(".*!x{ab}.*!j{a}.*").Join(planQ(".*!x{ab}.*")).Project("x"),
			doc:   randomDoc(1<<9, 43),
			op:    evalOp,
		},
		{
			// Selection-heavy: the string-equality selection survives every
			// rewrite, but its input scan switches from the naive automaton
			// search to constant-delay enumeration.
			id:    "E17/selection-scan/n=2^9",
			query: planQ(".*b!x{a+}b.*b!y{a+}b.*").SelectEqual("x", "y"),
			doc:   randomDoc(1<<9, 44),
			op:    evalOp,
		},
		{
			// Streaming count over a fused union: planner-on counts on the
			// constant-delay enumerator without materializing anything.
			id:    "E17/count-fused-union/n=2^10",
			query: planQ(".*!x{ab}.*").Union(planQ("a*!x{ba}(a|b)*")),
			doc:   randomDoc(1<<10, 45),
			op:    func(q *docspanner.Query, doc []byte) { q.Count(doc) },
		},
	}
}

// measurePlanBench times every suite item under both planner settings.
func measurePlanBench(report func(id, query string, offNs, onNs float64)) {
	for _, it := range planBenchSuite() {
		off := it.query.WithPlan(plannerOff)
		on := it.query.WithPlan(docspanner.PlanOptions{})
		tOff := timeIt(func() { it.op(off, it.doc) })
		tOn := timeIt(func() { it.op(on, it.doc) })
		report(it.id, it.query.String(), float64(tOff.Nanoseconds()), float64(tOn.Nanoseconds()))
	}
}

func runE17() {
	header("E17", "query planner: rewrites + backend selection vs naive bottom-up evaluation")
	fmt.Printf("%-28s %14s %14s %9s\n", "query", "planner-off", "planner-on", "speedup")
	measurePlanBench(func(id, _ string, offNs, onNs float64) {
		fmt.Printf("%-28s %12.0fns %12.0fns %8.1fx\n", id, offNs, onNs, offNs/onNs)
	})
	fmt.Println("expected: every row ≥ 1x; the join-heavy rows (dead-join, proj-pushdown)")
	fmt.Println("change asymptotics and should exceed 2x by a wide margin")
}

// planBenchEntry is one query measured under both planner settings.
type planBenchEntry struct {
	ID    string `json:"id"`
	Query string `json:"query"`
	// NsPerOp holds the labels "planner-off" (DisableRewrites +
	// NaiveBackend) and "planner-on" (default pipeline).
	NsPerOp map[string]float64 `json:"ns_per_op"`
	Speedup float64            `json:"speedup_off_over_on"`
}

type planBenchFile struct {
	Description string           `json:"description"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Entries     []planBenchEntry `json:"entries"`
}

// runPlanBench measures the E17 suite and writes the JSON file at path.
func runPlanBench(path string) error {
	f := planBenchFile{
		Description: "ns/op for the E17 planner suite of cmd/benchrunner (-plan-bench): identical queries and documents evaluated with the planner disabled (DisableRewrites+NaiveBackend) and with the full rewrite pipeline",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	measurePlanBench(func(id, query string, offNs, onNs float64) {
		fmt.Printf("%-28s off %12.0f ns/op   on %12.0f ns/op   %.1fx\n", id, offNs, onNs, offNs/onNs)
		f.Entries = append(f.Entries, planBenchEntry{
			ID:    id,
			Query: query,
			NsPerOp: map[string]float64{
				"planner-off": offNs,
				"planner-on":  onNs,
			},
			Speedup: round2(offNs / onNs),
		})
	})
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

var _ = time.Nanosecond
