package main

// Benchmark-trajectory support: -bench-json writes machine-readable
// ns/op measurements for a fixed suite of E1–E7 micro-operations into a
// JSON file, merging with any labels already present. Committing the
// file before and after a performance PR (labels "before"/"after")
// gives the repo a perf trajectory that later sessions can extend:
//
//	go run ./cmd/benchrunner -bench-json BENCH_pr3.json -bench-label before
//	... apply the optimization ...
//	go run ./cmd/benchrunner -bench-json BENCH_pr3.json -bench-label after
//
// The suite deliberately includes large automata (≥ 64 states, i.e.
// more than one 64-bit word per Boolean matrix row) so that transition-
// kernel regressions show up even when small-automaton runs stay flat.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/slp"
	"docspanner/internal/slpmatch"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// benchEntry is one measured operation in one labelled run.
type benchEntry struct {
	ID string `json:"id"`
	// NsPerOp maps a run label ("before", "after", ...) to the measured
	// nanoseconds per operation.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// Speedup is before/after when both labels are present.
	Speedup float64 `json:"speedup_before_over_after,omitempty"`
}

type benchFile struct {
	Description string       `json:"description"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Entries     []benchEntry `json:"entries"`
}

// benchSuite returns the fixed measurement suite: id plus a closure
// executing exactly one operation (the same operations the E1–E7
// benchmarks in bench_test.go time).
func benchSuite() []struct {
	id string
	op func()
} {
	type item = struct {
		id string
		op func()
	}
	var suite []item

	// E1: plain enumeration — preprocessing and full enumeration.
	{
		d := automata.Determinize(compile(".*!x{ab}.*", "ab"))
		doc := randomDoc(1<<16, 1)
		suite = append(suite, item{"E1/enum-preprocess/n=2^16", func() {
			enum.NewEnumerator(d, doc)
		}})
		e := enum.NewEnumerator(d, doc)
		suite = append(suite, item{"E1/enum-each/n=2^16", func() {
			e.Each(func(spans.Tuple) bool { return true })
		}})
	}

	// E2: compressed-enumeration preprocessing (NewIndex + Warm per op,
	// the amortized steady-state of an index over a document database)
	// on a small and a large (≥ 64 states) automaton.
	for _, pat := range []string{".*!x{ab}.*", ".*a(a|b)(a|b)(a|b)(a|b)(a|b)!x{ab}.*"} {
		d := automata.Determinize(compile(pat, "ab"))
		root := slp.Repeat(slp.FromBytes([]byte("ab")), 1<<19)
		suite = append(suite, item{fmt.Sprintf("E2/index-warm/states=%d/n=2^20", d.NumStates()), func() {
			ix := slpmatch.NewIndex(d)
			ix.Warm(root)
		}})
	}
	{
		d := automata.Determinize(compile(".*!x{ab}.*", "ab"))
		root := slp.Repeat(slp.FromBytes([]byte("ab")), 1<<19)
		ix := slpmatch.NewIndex(d)
		ix.Warm(root)
		suite = append(suite, item{fmt.Sprintf("E2/enum-2000/states=%d/n=2^20", d.NumStates()), func() {
			k := 0
			ix.Each(root, func(spans.Tuple) bool { k++; return k < 2000 })
		}})
	}

	// E3: compressed membership (NewMatcher + Accepts per op) on a small
	// and a large (≥ 64 states) NFA, plus the decompress-and-run baseline.
	for _, pat := range []string{"(ab)*", strings.Repeat("(a|b)", 16) + "(ab)*"} {
		nfa := compile(pat, "ab")
		root := slp.Repeat(slp.FromBytes([]byte("ab")), 1<<19)
		suite = append(suite, item{fmt.Sprintf("E3/membership-compressed/states=%d/n=2^20", nfa.NumStates()), func() {
			m, err := slpmatch.NewMatcher(nfa)
			if err != nil {
				panic(err)
			}
			if !m.Accepts(root) {
				panic("rejected")
			}
		}})
	}
	{
		nfa := compile("(ab)*", "ab")
		d := automata.Determinize(nfa)
		doc := make([]byte, 1<<20)
		for i := range doc {
			doc[i] = "ab"[i%2]
		}
		suite = append(suite, item{fmt.Sprintf("E3/membership-decompressed/states=%d/n=2^20", nfa.NumStates()), func() {
			if !d.AcceptsExtended(doc, nil) {
				panic("rejected")
			}
		}})
	}

	// E4/E5: model checking and non-emptiness on a mid-size document.
	{
		nfa := compile("!x{(a|b)*}!y{b}!z{(a|b)*}", "ab")
		n := 1 << 14
		doc := randomDoc(n, 3)
		doc[n/2] = 'b'
		tup := spans.NewTuple("x", spans.S(1, n/2+1), "y", spans.S(n/2+1, n/2+2), "z", spans.S(n/2+2, n+1))
		suite = append(suite, item{"E4/modelcheck-regular/n=2^14", func() {
			if ok, err := vset.ModelCheck(nfa, doc, tup, vset.Functional); err != nil || !ok {
				panic("modelcheck failed")
			}
		}})
		suite = append(suite, item{"E5/nonempty-regular/n=2^14", func() {
			vset.NonEmpty(nfa, doc)
		}})
	}

	// E6: satisfiability, query complexity only.
	{
		big := compile(strings.Repeat("(a|b)*", 8)+"!x{a}", "ab")
		suite = append(suite, item{"E6/satisfiable-regular/k=8", func() {
			if !vset.Satisfiable(big) {
				panic("unsat")
			}
		}})
	}

	// E7: CDE update on a 1 MiB document.
	{
		n := int64(1) << 20
		root := slp.Repeat(slp.FromBytes([]byte("abcd")), n/4)
		db := slp.NewDB()
		db.Add("D", root)
		expr, err := slp.ParseCDE(fmt.Sprintf("insert(delete(D,%d,%d), extract(D,1,64), %d)", n/4, n/4+999, n/2))
		if err != nil {
			panic(err)
		}
		suite = append(suite, item{"E7/cde-update/n=2^20", func() {
			if _, err := db.Eval(expr); err != nil {
				panic(err)
			}
		}})
	}

	return suite
}

// runBenchJSON measures the suite and merges the results under label
// into the JSON file at path.
func runBenchJSON(path, label string) error {
	f := benchFile{
		Description: "ns/op for the fixed E1-E7 micro-operation suite of cmd/benchrunner (-bench-json); labels are successive runs (e.g. before/after a kernel change)",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("benchrunner: cannot parse existing %s: %v", path, err)
		}
	}
	f.GoVersion = runtime.Version()
	f.GOMAXPROCS = runtime.GOMAXPROCS(0)

	byID := map[string]*benchEntry{}
	for i := range f.Entries {
		byID[f.Entries[i].ID] = &f.Entries[i]
	}
	for _, it := range benchSuite() {
		d := timeIt(it.op)
		fmt.Printf("%-52s %12.0f ns/op  (%s)\n", it.id, float64(d.Nanoseconds()), label)
		e := byID[it.id]
		if e == nil {
			f.Entries = append(f.Entries, benchEntry{ID: it.id, NsPerOp: map[string]float64{}})
			e = &f.Entries[len(f.Entries)-1]
			byID[it.id] = e
		}
		if e.NsPerOp == nil {
			e.NsPerOp = map[string]float64{}
		}
		e.NsPerOp[label] = float64(d.Nanoseconds())
	}
	for i := range f.Entries {
		e := &f.Entries[i]
		if b, ok := e.NsPerOp["before"]; ok {
			if a, ok := e.NsPerOp["after"]; ok && a > 0 {
				e.Speedup = round2(b / a)
			}
		}
	}
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].ID < f.Entries[j].ID })

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

// ensure time import is used even if timeIt moves.
var _ = time.Nanosecond
