package main

// E22: persistence cost and cold-start recovery (-store-bench).
// Measures what the PR-9 storage layer charges for durability: the
// per-mutation overhead of the write-ahead log against the in-memory
// baseline (per fsync policy), and the cold-start time of recovering a
// populated data directory — once by replaying the whole WAL, once
// from a snapshot plus the log tail. Results are written as
// machine-readable JSON (BENCH_pr9.json).

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"docspanner/internal/server"
	"docspanner/internal/storage"
)

const (
	storeBenchOps      = 256     // mutations per append-overhead run
	storeBenchDocBytes = 1 << 12 // body size for benched puts
	storeBenchDocs     = 384     // recovery corpus size
)

// storeBenchAppend is one backend configuration of the WAL-overhead run.
type storeBenchAppend struct {
	ID    string `json:"id"`
	Fsync string `json:"fsync"`
	Ops   int    `json:"ops"`
	// NsPerOp is the end-to-end server latency of one mutation (HTTP
	// handler + store + backend append + sync), amortized.
	NsPerOp float64 `json:"ns_per_op"`
	P99Us   float64 `json:"p99_us"`
	// WALBytesPerOp is the log cost of one mutation; zero for memory.
	WALBytesPerOp float64 `json:"wal_bytes_per_op"`
	// OverheadNsPerOp subtracts the memory baseline: the pure price of
	// durability at this fsync policy.
	OverheadNsPerOp float64 `json:"overhead_ns_per_op_vs_memory"`
}

// storeBenchRecovery is one cold-start measurement.
type storeBenchRecovery struct {
	ID               string  `json:"id"`
	Mode             string  `json:"mode"` // wal-replay | snapshot+tail
	Docs             int     `json:"docs"`
	WALRecords       uint64  `json:"wal_records"`
	WALSizeBytes     int64   `json:"wal_size_bytes"`
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	RecoveredRecords uint64  `json:"recovered_records"`
	ColdStartMs      float64 `json:"cold_start_ms"`
}

type storeBenchFile struct {
	Description string               `json:"description"`
	GoVersion   string               `json:"go_version"`
	GOMAXPROCS  int                  `json:"gomaxprocs"`
	Append      []storeBenchAppend   `json:"append"`
	Recovery    []storeBenchRecovery `json:"recovery"`
}

// storeBenchServer boots an in-process spannerd over the given backend
// (nil = memory) and returns it with a ServeHTTP-driving helper.
func storeBenchServer(b storage.Backend) (*server.Server, func(method, path, body string) int, error) {
	srv, err := server.New(server.Config{MaxConcurrent: 16, Storage: b})
	if err != nil {
		return nil, nil, err
	}
	do := func(method, path, body string) int {
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		var req = httptest.NewRequest(method, path, nil)
		if rd != nil {
			req = httptest.NewRequest(method, path, rd)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	return srv, do, nil
}

// measureStoreAppend drives the same deterministic mutation mix — puts
// over a rotating set of 16 documents with a CDE edit every fourth op —
// through one backend and reports the per-op cost.
func measureStoreAppend(id string, open func() (storage.Backend, error)) (storeBenchAppend, error) {
	var b storage.Backend
	if open != nil {
		var err error
		if b, err = open(); err != nil {
			return storeBenchAppend{}, err
		}
	}
	srv, do, err := storeBenchServer(b)
	if err != nil {
		return storeBenchAppend{}, err
	}
	defer srv.Close()

	body := string(randomDoc(storeBenchDocBytes, 7))
	for i := 0; i < 16; i++ { // pre-create so benched puts are re-puts
		if code := do("PUT", fmt.Sprintf("/docs/d%02d", i), body); code != 200 {
			return storeBenchAppend{}, fmt.Errorf("%s: setup put: %d", id, code)
		}
	}

	lat := make([]time.Duration, 0, storeBenchOps)
	start := time.Now()
	for i := 0; i < storeBenchOps; i++ {
		name := fmt.Sprintf("d%02d", i%16)
		var code int
		t0 := time.Now()
		if i%4 == 3 {
			code = do("POST", "/docs/"+name+"/edit",
				fmt.Sprintf(`{"expr": "insert(%s, extract(%s,1,2), 17)"}`, name, name))
		} else {
			code = do("PUT", "/docs/"+name, body)
		}
		lat = append(lat, time.Since(t0))
		if code != 200 {
			return storeBenchAppend{}, fmt.Errorf("%s: op %d: status %d", id, i, code)
		}
	}
	total := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	out := storeBenchAppend{
		ID:      "E22/append/" + id,
		Fsync:   id,
		Ops:     storeBenchOps,
		NsPerOp: float64(total.Nanoseconds()) / storeBenchOps,
		P99Us:   float64(lat[len(lat)*99/100].Nanoseconds()) / 1e3,
	}
	if b != nil {
		st := b.Stats()
		out.WALBytesPerOp = round2(float64(st.WALAppendedBytes) / float64(st.WALRecords))
	}
	return out, nil
}

// populateStoreDir fills dir with the recovery corpus: storeBenchDocs
// documents (every third one SLP-compressed), an edit per sixteenth
// document, two prepared queries, and live views over the first eight
// documents. Returns the WAL stats at close.
func populateStoreDir(dir string) (storage.Stats, error) {
	b, err := storage.OpenDisk(storage.DiskOptions{Dir: dir, Fsync: storage.FsyncNever, SnapshotBytes: -1})
	if err != nil {
		return storage.Stats{}, err
	}
	srv, do, err := storeBenchServer(b)
	if err != nil {
		return storage.Stats{}, err
	}
	defer srv.Close()

	for i := 0; i < storeBenchDocs; i++ {
		path := fmt.Sprintf("/docs/d%03d", i)
		if i%3 == 0 {
			path += "?compress=1"
		}
		if code := do("PUT", path, string(randomDoc(storeBenchDocBytes, int64(i)))); code != 200 {
			return storage.Stats{}, fmt.Errorf("populate put %d: %d", i, code)
		}
		if i%16 == 0 {
			name := fmt.Sprintf("d%03d", i)
			if code := do("POST", "/docs/"+name+"/edit",
				fmt.Sprintf(`{"expr": "insert(%s, extract(%s,1,2), 9)"}`, name, name)); code != 200 {
				return storage.Stats{}, fmt.Errorf("populate edit %d: %d", i, code)
			}
		}
	}
	for _, q := range []string{`{"src": ".*!x{ab}.*"}`, `{"src": ".*!x{ba}.*"}`} {
		name := "qab"
		if strings.Contains(q, "ba") {
			name = "qba"
		}
		if code := do("PUT", "/queries/"+name, q); code != 200 {
			return storage.Stats{}, fmt.Errorf("populate query %s: %d", name, code)
		}
	}
	for i := 0; i < 8; i++ {
		if code := do("PUT", fmt.Sprintf("/docs/d%03d/views/qab", i), ""); code != 201 {
			return storage.Stats{}, fmt.Errorf("populate view %d: not created", i)
		}
	}
	return b.Stats(), nil
}

// measureStoreRecovery times a full cold start over dir: OpenDisk
// (snapshot load + WAL replay) plus server.New (docStore rebuild, query
// re-registration, view rehydration).
func measureStoreRecovery(id, mode, dir string) (storeBenchRecovery, error) {
	t0 := time.Now()
	b, err := storage.OpenDisk(storage.DiskOptions{Dir: dir, Fsync: storage.FsyncNever, SnapshotBytes: -1})
	if err != nil {
		return storeBenchRecovery{}, err
	}
	srv, _, err := storeBenchServer(b)
	if err != nil {
		return storeBenchRecovery{}, err
	}
	elapsed := time.Since(t0)
	defer srv.Close()
	st := b.Stats()
	return storeBenchRecovery{
		ID:               "E22/recovery/" + id,
		Mode:             mode,
		Docs:             storeBenchDocs,
		WALRecords:       st.WALRecords,
		WALSizeBytes:     st.WALSizeBytes,
		SnapshotBytes:    st.SnapshotBytes,
		RecoveredRecords: st.RecoveredRecords,
		ColdStartMs:      round2(float64(elapsed.Nanoseconds()) / 1e6),
	}, nil
}

// runStoreBench measures both halves of E22 and writes the JSON file.
func runStoreBench(path string) error {
	f := storeBenchFile{
		Description: "E22: persistence cost (cmd/benchrunner -store-bench). append = per-mutation spannerd latency (put/edit mix over 16 x 4KiB docs) for the memory backend vs the disk backend at each fsync policy; recovery = cold start (OpenDisk + server.New: replay, query re-registration, view rehydration) of a 384-document data dir, WAL-only vs snapshot+tail",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	fmt.Printf("\n== E22: WAL append overhead vs memory (%d ops, %d-byte docs) ==\n",
		storeBenchOps, storeBenchDocBytes)
	fmt.Printf("%-22s %-12s %-10s %-14s %-12s\n", "backend", "ns/op", "p99(us)", "wal B/op", "overhead/op")
	configs := []struct {
		id   string
		open func() (storage.Backend, error)
	}{
		{"memory", nil},
		{"disk-fsync-never", nil},
		{"disk-fsync-interval", nil},
		{"disk-fsync-always", nil},
	}
	policies := map[string]storage.FsyncPolicy{
		"disk-fsync-never":    storage.FsyncNever,
		"disk-fsync-interval": storage.FsyncInterval,
		"disk-fsync-always":   storage.FsyncAlways,
	}
	var baseline float64
	for _, c := range configs {
		open := c.open
		if policy, ok := policies[c.id]; ok {
			dir, err := os.MkdirTemp("", "storebench-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			open = func() (storage.Backend, error) {
				return storage.OpenDisk(storage.DiskOptions{Dir: dir, Fsync: policy})
			}
		}
		m, err := measureStoreAppend(c.id, open)
		if err != nil {
			return err
		}
		if c.id == "memory" {
			baseline = m.NsPerOp
		} else {
			m.OverheadNsPerOp = round2(m.NsPerOp - baseline)
		}
		f.Append = append(f.Append, m)
		fmt.Printf("%-22s %-12.0f %-10.1f %-14.1f %-12.0f\n",
			c.id, m.NsPerOp, m.P99Us, m.WALBytesPerOp, m.OverheadNsPerOp)
	}
	fmt.Println("expected: fsync-never/interval cost little over memory (one buffered")
	fmt.Println("append per mutation); fsync-always pays one disk flush per mutation")

	fmt.Printf("\n== E22: cold-start recovery (%d docs) ==\n", storeBenchDocs)
	dir, err := os.MkdirTemp("", "storebench-recover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, err := populateStoreDir(dir); err != nil {
		return err
	}

	fmt.Printf("%-24s %-12s %-12s %-14s %-12s\n", "mode", "records", "wal bytes", "snap bytes", "cold ms")
	rep, err := measureStoreRecovery("wal", "wal-replay", dir)
	if err != nil {
		return err
	}
	f.Recovery = append(f.Recovery, rep)
	fmt.Printf("%-24s %-12d %-12d %-14d %-12.2f\n",
		rep.Mode, rep.RecoveredRecords, rep.WALSizeBytes, rep.SnapshotBytes, rep.ColdStartMs)

	// Cut a snapshot, then cold-start again: recovery should load the
	// serialized DocDB and replay only the (empty) tail.
	{
		b, err := storage.OpenDisk(storage.DiskOptions{Dir: dir, Fsync: storage.FsyncNever, SnapshotBytes: -1})
		if err != nil {
			return err
		}
		srv, do, err := storeBenchServer(b)
		if err != nil {
			return err
		}
		if code := do("POST", "/admin/snapshot", ""); code != 200 {
			srv.Close()
			return fmt.Errorf("admin/snapshot: %d", code)
		}
		srv.Close()
	}
	rep, err = measureStoreRecovery("snapshot", "snapshot+tail", dir)
	if err != nil {
		return err
	}
	f.Recovery = append(f.Recovery, rep)
	fmt.Printf("%-24s %-12d %-12d %-14d %-12.2f\n",
		rep.Mode, rep.RecoveredRecords, rep.WALSizeBytes, rep.SnapshotBytes, rep.ColdStartMs)
	fmt.Println("expected: snapshot+tail replays ~0 records and beats wal-replay,")
	fmt.Println("which re-derives every document's SLP from the logged mutations")

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
