package main

// E21: edit→requery vs cold re-evaluation (-edit-bench). Measures the
// incremental-view-maintenance claim of survey §4.3: after a CDE edit,
// re-answering a prepared query via WarmDelta + the shared memo costs
// O(log d) node recomputations, against a cold baseline that drops the
// caches and re-warms the whole grammar. Three document sizes (4 KiB,
// 64 KiB, 1 MiB), then a sustained mixed edit/read/changes load against
// an in-process spannerd with a live view in both refresh modes.
// Results are written as machine-readable JSON (BENCH_pr8.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"docspanner"
	"docspanner/internal/automata"
	"docspanner/internal/slpmatch"
	"docspanner/internal/server"
)

const (
	editBenchEdits    = 32
	editBenchClients  = 8
	editBenchDuration = 600 * time.Millisecond
)

// editBenchMicro is one document size of the incremental-vs-cold suite.
type editBenchMicro struct {
	ID       string `json:"id"`
	DocBytes int64  `json:"doc_bytes"`
	Edits    int    `json:"edits"`
	// IncrementalNsPerEdit is the full edit→requery cost: CDE edit +
	// WarmDelta + exact count, amortized over the edit sequence.
	IncrementalNsPerEdit float64 `json:"incremental_ns_per_edit"`
	// ColdNsPerReeval drops the shared caches, rebuilds the index and
	// counter, warms the whole grammar, and counts.
	ColdNsPerReeval   float64 `json:"cold_ns_per_reeval"`
	Speedup           float64 `json:"speedup_cold_over_incremental"`
	RecomputedPerEdit float64 `json:"recomputed_nodes_per_edit"`
	ReusedPerEdit     float64 `json:"reused_nodes_per_edit"`
	ReuseRatio        float64 `json:"reuse_ratio"`
	// Log2Doc contextualizes RecomputedPerEdit: the claim is that it
	// grows ~log2(doc_bytes), not with the document.
	Log2Doc float64 `json:"log2_doc_bytes"`
}

// editBenchServe is one request kind of the sustained mixed-load run.
type editBenchServe struct {
	ID        string  `json:"id"`
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
}

type editBenchFile struct {
	Description string           `json:"description"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Micro       []editBenchMicro `json:"micro"`
	Serve       []editBenchServe `json:"serve"`
}

// runEditBench measures both halves of E21 and writes the JSON file.
func runEditBench(path string) error {
	f := editBenchFile{
		Description: "E21: incremental view maintenance (cmd/benchrunner -edit-bench). micro = edit->requery (CDE edit + WarmDelta + exact count) vs cold re-evaluation (ResetCaches + full Warm + count) for query .*!x{ab}.* over random ab-documents; serve = sustained mixed edit/view-read/changes load against in-process spannerd with a live view, sync and async refresh",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	fmt.Printf("\n== E21: edit→requery vs cold re-evaluation (%d edits per size) ==\n", editBenchEdits)
	fmt.Printf("%-10s %-16s %-16s %-9s %-14s %-10s\n",
		"doc", "incremental/edit", "cold/re-eval", "speedup", "recomp/edit", "log2(d)")
	for _, sz := range []struct {
		label string
		n     int64
	}{{"4KiB", 1 << 12}, {"64KiB", 1 << 16}, {"1MiB", 1 << 20}} {
		m := measureEditMicro(sz.label, sz.n)
		f.Micro = append(f.Micro, m)
		fmt.Printf("%-10s %-16.0f %-16.0f %-9.1f %-14.1f %-10.1f\n",
			sz.label, m.IncrementalNsPerEdit, m.ColdNsPerReeval,
			m.Speedup, m.RecomputedPerEdit, m.Log2Doc)
	}
	fmt.Println("expected: speedup grows with the document (cold is linear in the grammar,")
	fmt.Println("incremental is the spine); recomp/edit tracks log2(d), not d")

	for _, mode := range []string{"sync", "async"} {
		entries, err := runEditServe(mode)
		if err != nil {
			return err
		}
		f.Serve = append(f.Serve, entries...)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measureEditMicro runs the incremental edit sequence first (so its
// shared cores stay attached throughout), then the cold baseline, which
// resets the process-wide caches each iteration.
func measureEditMicro(label string, n int64) editBenchMicro {
	dfa := automata.Determinize(compile(".*!x{ab}.*", "ab"))
	rng := rand.New(rand.NewSource(42))

	db := docspanner.NewDocDB()
	cur := docspanner.DocumentFromBytes(randomDoc(int(n), 11))
	db.Add("D", cur)

	ix := slpmatch.NewIndex(dfa)
	ix.Warm(cur.Node())
	ct := slpmatch.NewCounter(dfa)
	want := ct.Count(cur.Node())

	var stats slpmatch.WarmStats
	start := time.Now()
	for i := 0; i < editBenchEdits; i++ {
		pos := rng.Int63n(cur.Len()) + 1
		old := cur
		next, err := db.Edit("D", fmt.Sprintf("insert(D, extract(D,1,2), %d)", pos))
		if err != nil {
			panic(err)
		}
		cur = next
		stats.Add(ix.WarmDelta(old.Node(), cur.Node()))
		stats.Add(ct.WarmDelta(old.Node(), cur.Node()))
		want = ct.Count(cur.Node())
	}
	incremental := time.Since(start) / editBenchEdits

	// Cold baseline on the final document: every requery pays for the
	// whole grammar again.
	root := cur.Node()
	cold := timeIt(func() {
		slpmatch.ResetCaches()
		cix := slpmatch.NewIndex(dfa)
		cix.Warm(root)
		cct := slpmatch.NewCounter(dfa)
		if cct.Count(root).Cmp(want) != 0 {
			panic("cold count disagrees with incremental count")
		}
	})

	ratio := 0.0
	if tot := stats.Recomputed + stats.Reused; tot > 0 {
		ratio = float64(stats.Reused) / float64(tot)
	}
	return editBenchMicro{
		ID:                   "E21/edit-requery/" + label,
		DocBytes:             n,
		Edits:                editBenchEdits,
		IncrementalNsPerEdit: float64(incremental.Nanoseconds()),
		ColdNsPerReeval:      float64(cold.Nanoseconds()),
		Speedup:              round2(float64(cold) / float64(incremental)),
		RecomputedPerEdit:    round2(float64(stats.Recomputed) / editBenchEdits),
		ReusedPerEdit:        round2(float64(stats.Reused) / editBenchEdits),
		ReuseRatio:           round2(ratio),
		Log2Doc:              round2(math.Log2(float64(n))),
	}
}

// runEditServe boots one spannerd with a live view in the given refresh
// mode and applies a sustained mixed load: editors posting CDE inserts,
// readers polling the view, and clients pulling /changes deltas.
func runEditServe(mode string) ([]editBenchServe, error) {
	srv, err := server.New(server.Config{MaxConcurrent: 64, ViewRefresh: mode})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: editBenchClients}}

	request := func(method, path, body string) (int, []byte, error) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	mustDo := func(method, path, body string, want int) {
		code, b, err := request(method, path, body)
		if err != nil || code != want {
			panic(fmt.Sprintf("edit-bench setup %s %s: %d %s %v", method, path, code, b, err))
		}
	}

	// 4 KiB fixture (as in E18): each synchronous refresh materializes
	// ~1K tuples, so the mixed load measures maintenance, not sorting.
	mustDo("PUT", "/docs/d?compress=1", string(randomDoc(1<<12, 33)), 200)
	mustDo("PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`, 200)
	mustDo("PUT", "/docs/d/views/q", "", 201)

	kinds := []struct {
		id      string
		workers int
		fire    func() (time.Duration, bool)
	}{
		{"edit", 2, func() (time.Duration, bool) {
			t0 := time.Now()
			code, _, err := request("POST", "/docs/d/edit", `{"expr": "insert(d, extract(d,1,2), 17)"}`)
			return time.Since(t0), err == nil && code == 200
		}},
		{"view-get", 3, func() (time.Duration, bool) {
			t0 := time.Now()
			code, _, err := request("GET", "/docs/d/views/q", "")
			return time.Since(t0), err == nil && code == 200
		}},
		{"changes", 3, func() (time.Duration, bool) {
			// Diff the view against its own current version: always inside
			// the history window, exercises the NDJSON delta path.
			_, b, err := request("GET", "/docs/d/views/q", "")
			if err != nil {
				return 0, false
			}
			var v struct {
				Version int `json:"version"`
			}
			_ = json.Unmarshal(b, &v)
			t0 := time.Now()
			code, _, err := request("GET", fmt.Sprintf("/docs/d/changes?query=q&since=%d", v.Version), "")
			// 410 is a benign race: the version left the 8-deep history
			// window between the two requests.
			return time.Since(t0), err == nil && (code == 200 || code == 410)
		}},
	}

	fmt.Printf("\n== E21: spannerd mixed edit/read load, view-refresh=%s (%v) ==\n", mode, editBenchDuration)
	fmt.Printf("%-26s %-10s %-10s %-10s\n", "scenario", "req/s", "p50", "p99")

	type sample struct {
		kind int
		d    time.Duration
		ok   bool
	}
	deadline := time.Now().Add(editBenchDuration)
	start := time.Now()
	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	for k, kind := range kinds {
		for w := 0; w < kind.workers; w++ {
			wg.Add(1)
			go func(k int, fire func() (time.Duration, bool)) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					d, ok := fire()
					mu.Lock()
					samples = append(samples, sample{k, d, ok})
					mu.Unlock()
				}
			}(k, kind.fire)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var out []editBenchServe
	for k, kind := range kinds {
		var lat []time.Duration
		for _, s := range samples {
			if s.kind != k {
				continue
			}
			if !s.ok {
				return nil, fmt.Errorf("edit-bench %s/%s: request failed under load", mode, kind.id)
			}
			lat = append(lat, s.d)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) time.Duration {
			if len(lat) == 0 {
				return 0
			}
			return lat[int(p*float64(len(lat)-1))]
		}
		e := editBenchServe{
			ID:        fmt.Sprintf("E21/serve/%s/%s", mode, kind.id),
			Requests:  len(lat),
			ReqPerSec: round2(float64(len(lat)) / elapsed.Seconds()),
			P50Us:     round2(float64(q(0.50).Nanoseconds()) / 1e3),
			P99Us:     round2(float64(q(0.99).Nanoseconds()) / 1e3),
		}
		out = append(out, e)
		fmt.Printf("%-26s %-10.0f %-10v %-10v\n", e.ID, e.ReqPerSec, q(0.50), q(0.99))
	}
	return out, nil
}
