package main

// E23: cluster scaling benchmark (-cluster-bench). Spawns real worker
// processes (this binary re-exec'd with -cluster-worker, each pinned to
// GOMAXPROCS=1 so a "node" is one core's worth of spannerd), fronts
// them with an in-process coordinator, and measures req/s for the same
// workload against a direct single worker (no coordinator) and against
// cluster configurations of 1, 2, and 4 workers. workers=1 vs direct
// isolates the coordinator's proxy overhead; 2 and 4 measure scatter-
// gather scaling. Results go to BENCH_pr10.json.
//
// Caveat recorded in the output: on a single-core host the worker
// processes time-share one core, so cluster throughput cannot exceed
// the direct baseline no matter how many workers run — the scaling
// numbers are only meaningful when the host has at least one core per
// worker.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"docspanner/internal/server"
)

const clusterBenchDocs = 16

type clusterBenchEntry struct {
	ID        string  `json:"id"`
	Workers   int     `json:"workers"` // 0 = direct, no coordinator
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	MeanUs    float64 `json:"mean_us"`
}

type clusterBenchFile struct {
	Description string              `json:"description"`
	Note        string              `json:"note"`
	GoVersion   string              `json:"go_version"`
	NumCPU      int                 `json:"num_cpu"`
	GOMAXPROCS  int                 `json:"gomaxprocs_coordinator"`
	WorkerProcs string              `json:"worker_processes"`
	Clients     int                 `json:"clients"`
	DurationMs  int                 `json:"duration_ms_per_scenario"`
	Entries     []clusterBenchEntry `json:"entries"`
}

// runClusterWorker is the re-exec'd child: an in-memory spannerd on an
// ephemeral port, address announced on stdout, serving until killed.
func runClusterWorker() error {
	srv, err := server.New(server.Config{MaxConcurrent: 64})
	if err != nil {
		return err
	}
	ts := httptest.NewUnstartedServer(srv)
	ts.Start()
	fmt.Printf("LISTENING %s\n", ts.URL)
	select {} // parent kills the process
}

type benchWorker struct {
	cmd *exec.Cmd
	url string
}

func startBenchWorker() (*benchWorker, error) {
	cmd := exec.Command(os.Args[0], "-cluster-worker")
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if url, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
			go io.Copy(io.Discard, out) //nolint:errcheck // drain forever
			return &benchWorker{cmd: cmd, url: url}, nil
		}
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return nil, fmt.Errorf("cluster-bench: worker never announced its address (scan err %v)", sc.Err())
}

func (w *benchWorker) stop() {
	_ = w.cmd.Process.Kill()
	_ = w.cmd.Wait()
}

func runClusterBench(path string) error {
	f := clusterBenchFile{
		Description: "E23: cluster scaling benchmark (cmd/benchrunner -cluster-bench): req/s against one directly-addressed worker process vs a coordinator fronting 1/2/4 worker processes, query .*!x{ab}.* over 16 4KiB documents; workers=1 vs direct isolates proxy overhead",
		Note: fmt.Sprintf("worker processes are pinned to GOMAXPROCS=1; this host has %d CPU(s). "+
			"With fewer cores than workers the processes time-share and cluster throughput cannot exceed the direct baseline — "+
			"scaling factors here are meaningful only on hosts with at least one core per worker plus one for the coordinator.",
			runtime.NumCPU()),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		WorkerProcs: "re-exec'd " + os.Args[0] + " -cluster-worker, GOMAXPROCS=1",
		Clients:     serveBenchClients,
		DurationMs:  int(serveBenchDuration / time.Millisecond),
	}

	fmt.Printf("\n== E23: cluster scaling benchmark (%d clients, %v per scenario, %d CPU) ==\n",
		serveBenchClients, serveBenchDuration, runtime.NumCPU())
	fmt.Printf("%-34s %-10s %-10s %-10s\n", "scenario", "req/s", "p50", "p99")

	for _, n := range []int{0, 1, 2, 4} {
		if err := clusterBenchConfig(&f, n); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// clusterBenchConfig measures one topology: n == 0 is the direct
// baseline (one worker, no coordinator); otherwise a coordinator over n
// worker processes.
func clusterBenchConfig(f *clusterBenchFile, n int) error {
	nWorkers := n
	if n == 0 {
		nWorkers = 1
	}
	workers := make([]*benchWorker, 0, nWorkers)
	defer func() {
		for _, w := range workers {
			w.stop()
		}
	}()
	urls := make([]string, 0, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w, err := startBenchWorker()
		if err != nil {
			return err
		}
		workers = append(workers, w)
		urls = append(urls, w.url)
	}

	baseURL := urls[0]
	label := "direct"
	if n > 0 {
		coord, err := server.NewCoordinator(server.CoordinatorConfig{
			Workers:       urls,
			ProbeInterval: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		front := httptest.NewServer(coord)
		defer front.Close()
		baseURL = front.URL
		label = fmt.Sprintf("workers=%d", n)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4 * serveBenchClients}}
	request := func(method, path, body string) (int, []byte, error) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, baseURL+path, rd)
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	mustOK := func(method, path, body string) {
		code, b, err := request(method, path, body)
		if err != nil || code != 200 {
			panic(fmt.Sprintf("cluster-bench setup %s %s: %d %s %v", method, path, code, b, err))
		}
	}

	// Fixture: the prepared query everywhere, 16 4KiB documents spread
	// across the ring (or all on the single direct worker).
	mustOK("PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	names := make([]string, clusterBenchDocs)
	quoted := make([]string, clusterBenchDocs)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		quoted[i] = fmt.Sprintf("%q", names[i])
		mustOK("PUT", "/docs/"+names[i], string(randomDoc(1<<12, int64(200+i))))
	}
	batchBody := fmt.Sprintf(`{"query": "q", "docs": [%s], "content": false}`, strings.Join(quoted, ","))

	scenarios := []struct {
		id     string
		method string
		path   string
		body   string
	}{
		{"eval/1doc", "GET", "/eval?query=q&doc=c0&content=0", ""},
		{"count/1doc", "GET", "/count?query=q&doc=c0", ""},
		{"batch/16x4KiB", "POST", "/batch", batchBody},
	}
	if n > 0 {
		scenarios = append(scenarios, struct {
			id     string
			method string
			path   string
			body   string
		}{"stream-merged/16docs", "GET", "/stream?query=q&docs=" + strings.Join(names, ",") + "&content=0", ""})
	} else {
		scenarios = append(scenarios, struct {
			id     string
			method string
			path   string
			body   string
		}{"stream/1doc", "GET", "/stream?query=q&doc=c0&content=0", ""})
	}

	for _, sc := range scenarios {
		lat, elapsed := hammerScenario(request, sc.method, sc.path, sc.body)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		q := func(p float64) time.Duration {
			if len(lat) == 0 {
				return 0
			}
			return lat[int(p*float64(len(lat)-1))]
		}
		entry := clusterBenchEntry{
			ID:        "E23/" + sc.id + "/" + label,
			Workers:   n,
			Requests:  len(lat),
			ReqPerSec: round2(float64(len(lat)) / elapsed.Seconds()),
			P50Us:     round2(float64(q(0.50).Nanoseconds()) / 1e3),
			P99Us:     round2(float64(q(0.99).Nanoseconds()) / 1e3),
			MeanUs:    round2(float64(sum.Nanoseconds()) / float64(max(1, len(lat))) / 1e3),
		}
		f.Entries = append(f.Entries, entry)
		fmt.Printf("%-34s %-10.0f %-10v %-10v\n", entry.ID, entry.ReqPerSec, q(0.50), q(0.99))
	}
	return nil
}
