// Command benchrunner regenerates the experiment tables of EXPERIMENTS.md:
// one table per experiment ID (F1, E1–E17), each validating a formal claim
// of Schmid & Schweikardt's PODS 2022 survey on the implementation. Run
// with -experiment to select a single one, e.g.
//
//	benchrunner -experiment E3
//	benchrunner            # all experiments (a few minutes)
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"docspanner"
	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/refl"
	"docspanner/internal/regex"
	"docspanner/internal/slp"
	"docspanner/internal/slpmatch"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func main() {
	which := flag.String("experiment", "", "run only this experiment (F1, E1..E14, E17); empty = all")
	benchJSON := flag.String("bench-json", "", "measure the fixed E1-E7 micro suite and merge ns/op into this JSON file (see BENCH_pr3.json), then exit")
	benchLabel := flag.String("bench-label", "after", "label for the -bench-json run (e.g. before, after)")
	planBench := flag.String("plan-bench", "", "measure the E17 planner suite (planner-off vs planner-on) and write this JSON file (see BENCH_pr4.json), then exit")
	serveBench := flag.String("serve-bench", "", "measure the E18/E19 spannerd load suite (req/s, p50/p99 per request kind) and write this JSON file (see BENCH_pr6.json), then exit")
	editBench := flag.String("edit-bench", "", "measure the E21 incremental-view suite (edit→requery vs cold re-eval, plus mixed spannerd load) and write this JSON file (see BENCH_pr8.json), then exit")
	storeBench := flag.String("store-bench", "", "measure the E22 persistence suite (WAL append overhead per fsync policy, cold-start recovery) and write this JSON file (see BENCH_pr9.json), then exit")
	clusterBench := flag.String("cluster-bench", "", "measure the E23 cluster scaling suite (direct worker vs coordinator over 1/2/4 worker processes) and write this JSON file (see BENCH_pr10.json), then exit")
	clusterWorker := flag.Bool("cluster-worker", false, "internal: run as a -cluster-bench worker process (in-memory spannerd on an ephemeral port, address printed to stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *clusterWorker {
		if err := runClusterWorker(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchLabel); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *planBench != "" {
		if err := runPlanBench(*planBench); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveBench != "" {
		if err := runServeBench(*serveBench); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *editBench != "" {
		if err := runEditBench(*editBench); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *clusterBench != "" {
		if err := runClusterBench(*clusterBench); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storeBench != "" {
		if err := runStoreBench(*storeBench); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiments := []struct {
		id  string
		run func()
	}{
		{"F1", runF1}, {"E1", runE1}, {"E2", runE2}, {"E3", runE3},
		{"E4", runE4}, {"E5", runE5}, {"E6", runE6}, {"E7", runE7},
		{"E8", runE8}, {"E9", runE9}, {"E10", runE10}, {"E11", runE11},
		{"E12", runE12}, {"E13", runE13}, {"E14", runE14}, {"E17", runE17},
	}
	ran := false
	for _, e := range experiments {
		if *which == "" || strings.EqualFold(*which, e.id) {
			e.run()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

// ---------- helpers ----------

func compile(pattern, alphabet string) *automata.NFA {
	ast, err := regex.Parse(pattern)
	if err != nil {
		panic(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte(alphabet)})
	if err != nil {
		panic(err)
	}
	return nfa
}

// timeIt runs f repeatedly until ~50ms elapsed (at least once) and returns
// the median-ish per-run time.
func timeIt(f func()) time.Duration {
	f() // warm up
	var total time.Duration
	runs := 0
	for total < 50*time.Millisecond && runs < 1000 {
		start := time.Now()
		f()
		total += time.Since(start)
		runs++
	}
	return total / time.Duration(runs)
}

func randomDoc(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	doc := make([]byte, n)
	for i := range doc {
		doc[i] = "ab"[rng.Intn(2)]
	}
	return doc
}

func header(id, claim string) {
	fmt.Printf("\n== %s: %s ==\n", id, claim)
}

// ---------- experiments ----------

func runF1() {
	header("F1", "Figure 1 SLP represents DDB = {ababbcabca, bcabcaabbca, ababbca}")
	ta, tb, tc := slp.Leaf('a'), slp.Leaf('b'), slp.Leaf('c')
	e := slp.Pair(ta, tb)
	f := slp.Pair(tb, tc)
	c := slp.Pair(f, ta)
	bb := slp.Pair(e, c)
	d := slp.Pair(c, bb)
	a3 := slp.Pair(e, bb)
	a1 := slp.Pair(a3, c)
	a2 := slp.Pair(c, d)
	fmt.Printf("%-6s %-14s %-6s %-4s\n", "node", "document", "order", "bal")
	for _, row := range []struct {
		name string
		n    *slp.Node
	}{{"E", e}, {"F", f}, {"C", c}, {"B", bb}, {"D", d}, {"A3", a3}, {"A1", a1}, {"A2", a2}} {
		fmt.Printf("%-6s %-14s %-6d %-4d\n", row.name, row.n.Bytes(), row.n.Order(), row.n.Bal())
	}
	a4 := slp.Pair(a2, a1)
	g := slp.Pair(d, bb)
	a5 := slp.Pair(bb, g)
	fmt.Printf("grey extension: D4=%s D5=%s\n", a4.Bytes(), a5.Bytes())
	fmt.Printf("paper: ord(E)=ord(F)=2 ord(C)=3 ord(B)=4 ord(D)=ord(A3)=5 ord(A1)=ord(A2)=6; bal(A1)=2 bal(A2)=bal(A3)=-2\n")
}

func runE1() {
	header("E1", "regular enumeration: linear preprocessing, constant delay (survey §2.5)")
	d := automata.Determinize(compile(".*!x{ab}.*", "ab"))
	fmt.Printf("%-10s %-16s %-14s %-10s\n", "n", "preprocess", "ns/byte", "delay/tuple")
	for _, exp := range []int{12, 14, 16, 18} {
		n := 1 << exp
		doc := randomDoc(n, 1)
		pre := timeIt(func() { enum.NewEnumerator(d, doc) })
		e := enum.NewEnumerator(d, doc)
		tuples := 0
		per := timeIt(func() {
			tuples = 0
			e.Each(func(spans.Tuple) bool { tuples++; return true })
		})
		fmt.Printf("2^%-8d %-16v %-14.2f %v\n", exp, pre,
			float64(pre.Nanoseconds())/float64(n), per/time.Duration(tuples))
	}
	fmt.Println("expected: preprocess grows ~16x per two rows (linear); ns/byte and delay flat")
}

func runE2() {
	header("E2", "SLP enumeration: O(|S|) preprocessing, O(log|D|) delay (survey §4)")
	d := automata.Determinize(compile(".*!x{ab}.*", "ab"))
	fmt.Printf("%-10s %-10s %-14s %-12s\n", "n", "slp_nodes", "preprocess", "delay/tuple")
	for _, exp := range []int{12, 16, 20, 24} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
		pre := timeIt(func() {
			ix := slpmatch.NewIndex(d)
			ix.Warm(root)
		})
		ix := slpmatch.NewIndex(d)
		ix.Warm(root)
		const take = 2000
		per := timeIt(func() {
			k := 0
			ix.Each(root, func(spans.Tuple) bool { k++; return k < take })
		})
		fmt.Printf("2^%-8d %-10d %-14v %-12v\n", exp, root.Size(), pre, per/take)
	}
	fmt.Println("expected: preprocess tracks slp_nodes (not n); delay grows ~logarithmically")
}

func runE3() {
	header("E3", "compressed NFA membership O(|S|·n³) vs decompress-and-run (survey §4.2)")
	nfa := compile("(ab)*", "ab")
	d := automata.Determinize(nfa)
	fmt.Printf("%-10s %-14s %-14s %-8s\n", "n", "compressed", "decompressed", "speedup")
	for _, exp := range []int{12, 16, 20, 24} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
		tc := timeIt(func() {
			m, _ := slpmatch.NewMatcher(nfa)
			m.Accepts(root)
		})
		var td time.Duration
		if exp <= 22 {
			doc := root.Bytes()
			td = timeIt(func() { d.AcceptsExtended(doc, nil) })
		}
		if td > 0 {
			fmt.Printf("2^%-8d %-14v %-14v %.0fx\n", exp, tc, td, float64(td)/float64(tc))
		} else {
			fmt.Printf("2^%-8d %-14v %-14s\n", exp, tc, "(skipped)")
		}
	}
	fmt.Println("expected: compressed flat (SLP is O(log n)); decompressed linear in n")
}

func runE4() {
	header("E4", "ModelChecking: regular linear, refl linear, core NP-hard (survey §2.4, §3.3)")
	reg := compile("!x{(a|b)*}!y{b}!z{(a|b)*}", "ab")
	rnfa := compile("!x{(a|b)*}&x", "ab")
	rs, err := refl.New(rnfa)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-10s %-14s %-14s\n", "n", "regular", "refl")
	for _, exp := range []int{10, 14, 18} {
		n := 1 << exp
		doc := randomDoc(n, 3)
		doc[n/2] = 'b'
		tup := spans.NewTuple("x", spans.S(1, n/2+1), "y", spans.S(n/2+1, n/2+2), "z", spans.S(n/2+2, n+1))
		tr := timeIt(func() { _, _ = vset.ModelCheck(reg, doc, tup, vset.Functional) })
		half := randomDoc(n/2, 4)
		sq := append(append([]byte{}, half...), half...)
		rtup := spans.NewTuple("x", spans.S(1, n/2+1))
		tf := timeIt(func() { _, _ = rs.ModelCheck(sq, rtup, true) })
		fmt.Printf("2^%-8d %-14v %-14v\n", exp, tr, tf)
	}
	fmt.Printf("%-10s %-14s\n", "k", "core-nonempt")
	for _, k := range []int{2, 3, 4} {
		var sb strings.Builder
		vars := make([]spans.Var, k)
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "!v%d{(a|b)*}", i)
			vars[i] = spans.Var(fmt.Sprintf("v%d", i))
		}
		var expr algebra.Expr = algebra.Project{
			Sub:  algebra.SelectEq{Sub: algebra.Prim{A: compile(sb.String(), "ab")}, Z: spans.NewVarSet(vars...)},
			Keep: nil,
		}
		w := randomDoc(6, 5)
		doc := make([]byte, 0, 6*k)
		for i := 0; i < k; i++ {
			doc = append(doc, w...)
		}
		t := timeIt(func() { expr.Eval(doc, vset.Functional) })
		fmt.Printf("%-10d %-14v\n", k, t)
	}
	fmt.Println("expected: regular/refl scale linearly in n; core grows exponentially in k")
}

func runE5() {
	header("E5", "NonEmptiness: regular poly, refl NP-hard (survey §2.4, §3.3)")
	reg := compile("!x{(a|b)*}!y{b}!z{(a|b)*}", "ab")
	rnfa := compile("!x{(a|b)*}&x", "ab")
	rs, err := refl.New(rnfa)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-10s %-14s %-14s\n", "n", "regular", "refl(square)")
	for _, n := range []int{256, 1024, 4096} {
		doc := randomDoc(n, 6)
		tr := timeIt(func() { vset.NonEmpty(reg, doc) })
		half := randomDoc(n/2, 8)
		sq := append(append([]byte{}, half...), half...)
		tf := timeIt(func() { rs.NonEmpty(sq) })
		fmt.Printf("%-10d %-14v %-14v\n", n, tr, tf)
	}
	fmt.Println("expected: regular linear; refl superlinear (configuration guessing)")
}

func runE6() {
	header("E6", "Satisfiability: regular & refl poly; core embeds intersection-nonemptiness (survey §2.4, §3.3)")
	fmt.Printf("%-10s %-14s %-14s\n", "k", "regular", "refl")
	for _, k := range []int{4, 8, 16} {
		big := compile(strings.Repeat("(a|b)*", k)+"!x{a}", "ab")
		tr := timeIt(func() { vset.Satisfiable(big) })
		rf := compile(fmt.Sprintf("!x{(a|b){%d}}&x&x", k), "ab")
		rsp, err := refl.New(rf)
		if err != nil {
			panic(err)
		}
		tf := timeIt(func() { rsp.Satisfiable() })
		fmt.Printf("%-10d %-14v %-14v\n", k, tr, tf)
	}
	fmt.Printf("%-10s %-14s %-12s\n", "k", "intersection", "product-size")
	primes := []int{2, 3, 5, 7, 11}
	for _, k := range []int{2, 3, 4, 5} {
		var states int
		t := timeIt(func() {
			cur := cycleNFA(primes[0])
			for j := 1; j < k; j++ {
				cur = automata.IntersectLanguages(cur, cycleNFA(primes[j]))
			}
			states = cur.NumStates()
		})
		fmt.Printf("%-10d %-14v %-12d\n", k, t, states)
	}
	fmt.Println("expected: regular/refl flat; intersection grows with the product of the periods")
}

func cycleNFA(p int) *automata.NFA {
	n := automata.NewNFA(nil)
	cur := n.Start
	for i := 1; i < p; i++ {
		next := n.AddState()
		n.AddLetter(cur, 'a', next)
		cur = next
	}
	n.AddLetter(cur, 'a', n.Start)
	n.SetFinal(n.Start)
	return n
}

func runE7() {
	header("E7", "CDE updates in O(|φ|·log d) vs rebuild (survey §4.3)")
	fmt.Printf("%-10s %-14s %-14s %-10s\n", "n", "cde-update", "rebuild", "balanced")
	for _, exp := range []int{12, 16, 20, 24} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("abcd")), n/4)
		db := slp.NewDB()
		db.Add("D", root)
		expr, err := slp.ParseCDE(fmt.Sprintf("insert(delete(D,%d,%d), extract(D,1,64), %d)", n/4, n/4+999, n/2))
		if err != nil {
			panic(err)
		}
		var res *slp.Node
		tu := timeIt(func() { res, _ = db.Eval(expr) })
		var tb time.Duration
		if exp <= 20 {
			tb = timeIt(func() {
				plain := root.Bytes()
				edited := append(append(append([]byte{}, plain[:n/4]...), plain[:64]...), plain[n/4+1000:]...)
				slp.Balance(slp.Compress(edited))
			})
		}
		if tb > 0 {
			fmt.Printf("2^%-8d %-14v %-14v %v\n", exp, tu, tb, res.StronglyBalanced())
		} else {
			fmt.Printf("2^%-8d %-14v %-14s %v\n", exp, tu, "(skipped)", res.StronglyBalanced())
		}
	}
	fmt.Println("expected: cde-update ~flat (logarithmic); rebuild linear; balance preserved")
}

func runE8() {
	header("E8", "Balance: strongly balanced in O(|S|·log n); implies 2-shallow (survey §4.1)")
	fmt.Printf("%-10s %-10s %-12s %-14s %-10s %-10s\n", "n", "|S| in", "|S| out", "time", "balanced", "2-shallow")
	for _, exp := range []int{10, 14, 18, 20} {
		n := 1 << exp
		doc := []byte(strings.Repeat("abracadabra", n/11+1))[:n]
		grammar := slp.Compress(doc)
		var bal *slp.Node
		t := timeIt(func() { bal = slp.Balance(grammar) })
		fmt.Printf("2^%-8d %-10d %-12d %-14v %-10v %-10v\n",
			exp, grammar.Size(), bal.Size(), t, bal.StronglyBalanced(), bal.CShallow(2))
	}
}

func runE9() {
	header("E9", "core-simplification lemma: π∘ς*∘regular normal form agrees with reference eval (survey §2.3)")
	p1 := algebra.Prim{A: compile(".*!x{a+}!y{b+}.*", "ab")}
	p2 := algebra.Prim{A: compile(".*!y{bb}.*", "ab")}
	p3 := algebra.Prim{A: compile("!x{a}!y{bb}.*", "ab")}
	expr := algebra.Project{
		Sub: algebra.SelectEq{
			Sub: algebra.Union{L: algebra.Join{L: p1, R: p2}, R: p3},
			Z:   spans.NewVarSet("y"),
		},
		Keep: spans.NewVarSet("x", "y"),
	}
	cf, err := algebra.Simplify(expr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("normal form: %d automaton states, %d selections, visible %v\n",
		cf.Automaton.NumStates(), len(cf.Selections), cf.Visible)
	agree := 0
	docs := 0
	for _, doc := range []string{"", "ab", "aabb", "abbab", "aabbbab", "bbaabb"} {
		docs++
		if cf.Eval([]byte(doc), vset.Functional).Equal(expr.Eval([]byte(doc), vset.Functional)) {
			agree++
		}
	}
	fmt.Printf("agreement on %d/%d documents\n", agree, docs)
	fmt.Printf("simplify time: %v\n", timeIt(func() { _, _ = algebra.Simplify(expr) }))
}

func runE10() {
	header("E10", "core spanners express word-equation relations ~com (xy=yx) and ~cyc (xz=zy) (survey §2.4)")
	com := algebra.Commuting("x", "y", []byte("ab"))
	cyc := algebra.CyclicShift("x", "y", []byte("ab"))
	fmt.Printf("%-16s %-10s %-10s %-10s\n", "doc", "com-pairs", "cyc-pairs", "verified")
	for _, doc := range []string{"abab", "aabaa", "ababa", "abba"} {
		d := []byte(doc)
		rc := com.Eval(d, vset.Functional)
		ry := cyc.Eval(d, vset.Functional)
		okC := rc.Equal(bruteCommuting(d))
		okY := ry.Equal(bruteCyclic(d))
		fmt.Printf("%-16q %-10d %-10d %v\n", doc, rc.Len(), ry.Len(), okC && okY)
	}
}

func bruteCommuting(doc []byte) *spans.Relation {
	out := spans.NewRelation()
	n := len(doc)
	for b1 := 1; b1 <= n+1; b1++ {
		for e1 := b1; e1 <= n+1; e1++ {
			for b2 := 1; b2 <= n+1; b2++ {
				for e2 := b2; e2 <= n+1; e2++ {
					if !(e1 <= b2 || e2 <= b1) {
						continue
					}
					u := string(doc[b1-1 : e1-1])
					v := string(doc[b2-1 : e2-1])
					if u+v == v+u {
						out.Add(spans.NewTuple("x", spans.S(b1, e1), "y", spans.S(b2, e2)))
					}
				}
			}
		}
	}
	return out
}

func bruteCyclic(doc []byte) *spans.Relation {
	out := spans.NewRelation()
	n := len(doc)
	cyc := func(u, v string) bool {
		if len(u) != len(v) {
			return false
		}
		return strings.Contains(u+u, v)
	}
	for b1 := 1; b1 <= n+1; b1++ {
		for e1 := b1; e1 <= n+1; e1++ {
			for b2 := 1; b2 <= n+1; b2++ {
				for e2 := b2; e2 <= n+1; e2++ {
					if !(e1 <= b2 || e2 <= b1) {
						continue
					}
					if cyc(string(doc[b1-1:e1-1]), string(doc[b2-1:e2-1])) {
						out.Add(spans.NewTuple("x", spans.S(b1, e1), "y", spans.S(b2, e2)))
					}
				}
			}
		}
	}
	return out
}

func runE11() {
	header("E11", "refl ↔ core translations (survey §3.2)")
	rnfa := compile("!x{(a|b)*}c!y{&x}", "abc")
	rs, err := refl.New(rnfa)
	if err != nil {
		panic(err)
	}
	core, err := rs.ToCore()
	if err != nil {
		panic(err)
	}
	agree := 0
	docs := []string{"c", "acb", "abcab", "bacba", "aacaa"}
	for _, doc := range docs {
		if rs.Eval([]byte(doc), false).Equal(core.Eval([]byte(doc), vset.Schemaless)) {
			agree++
		}
	}
	fmt.Printf("refl→core: agreement on %d/%d documents\n", agree, len(docs))

	unb := compile("a+!x{b+}(a+&x)*a+", "ab")
	us, err := refl.New(unb)
	if err != nil {
		panic(err)
	}
	_, err = us.ToCore()
	fmt.Printf("unbounded example a⁺!x{b⁺}(a⁺&x)*a⁺ rejected: %v\n", err != nil)

	ast, _ := regex.Parse("ab*!x{a(a|b)*}(b|c)*!y{(a|b)*b}b*")
	fr, err := refl.FromRegexCore(ast, []spans.VarSet{spans.NewVarSet("x", "y")}, []byte("abc"))
	if err != nil {
		panic(err)
	}
	sel := algebra.SelectEq{
		Sub: algebra.Prim{A: compile("ab*!x{a(a|b)*}(b|c)*!y{(a|b)*b}b*", "abc")},
		Z:   spans.NewVarSet("x", "y"),
	}
	agree = 0
	docs = []string{"aabcab", "aabbab", "abacab", "aabab"}
	for _, doc := range docs {
		if fr.Eval([]byte(doc), true).Equal(sel.Eval([]byte(doc), vset.Functional)) {
			agree++
		}
	}
	fmt.Printf("core→refl (β/β' with γ-intersection): agreement on %d/%d documents\n", agree, len(docs))
}

func runE12() {
	header("E12", "Containment/Equivalence decidable for regular spanners (survey §2.4)")
	fmt.Printf("%-10s %-14s %-10s\n", "k", "equivalence", "answer")
	for _, k := range []int{2, 4, 8} {
		p1 := strings.Repeat("(a|b)", k) + "!x{a+}"
		p2 := strings.Repeat("(b|a)", k) + "!x{aa*}"
		n1 := compile(p1, "ab")
		n2 := compile(p2, "ab")
		var ans bool
		t := timeIt(func() { ans = vset.Equivalent(n1, n2) })
		fmt.Printf("%-10d %-14v %-10v\n", k, t, ans)
	}
	a := compile("!x{a}", "ab")
	b := compile("!x{a|b}", "ab")
	fmt.Printf("strict containment detected: %v (and not reverse: %v)\n",
		vset.Contains(a, b), !vset.Contains(b, a))
	fmt.Println("note: core-spanner equivalence is undecidable (survey §2.4); only bounded refutation is offered")
}

func runE13() {
	header("E13", "exact answer counting without enumeration (quadratic outputs in poly time)")
	d := automata.Determinize(compile(".*!x{(a|b)+}.*", "ab"))
	fmt.Printf("%-10s %-14s %-30s\n", "n", "time", "count")
	for _, exp := range []int{10, 14, 18} {
		doc := randomDoc(1<<exp, 21)
		var c string
		t := timeIt(func() { c = enum.FastCount(d, doc).String() })
		fmt.Printf("2^%-8d %-14v %-30s\n", exp, t, c)
	}
	fmt.Printf("%-10s %-14s %-30s\n", "n (SLP)", "time", "count (exact, big.Int)")
	for _, exp := range []int{20, 40, 60} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
		var c string
		t := timeIt(func() {
			cc := slpmatch.NewCounter(d)
			c = cc.Count(root).String()
		})
		if len(c) > 28 {
			c = c[:25] + "..."
		}
		fmt.Printf("2^%-8d %-14v %-30s\n", exp, t, c)
	}
	fmt.Println("expected: plain DP linear in n; compressed counter linear in |S| = O(log n),")
	fmt.Println("delivering counts with dozens of digits that enumeration could never reach")
}

func runE14() {
	header("E14", "parallel evaluation: batch worker pool and split-correct sharding (Doleschal et al., PODS 2019)")
	fmt.Printf("GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	ctx := context.Background()

	s := docspanner.MustCompile(".*!x{ab}.*", docspanner.Options{Alphabet: []byte("ab")})
	docs := make([][]byte, 16)
	for i := range docs {
		docs[i] = randomDoc(1<<12, int64(40+i))
	}
	s.Eval(docs[0]) // warm the lazy determinization once for all variants
	fmt.Printf("%-26s %-14s\n", "batch of 16×4KiB docs", "time/batch")
	fmt.Printf("%-26s %-14v\n", "serial loop", timeIt(func() {
		for _, d := range docs {
			s.Eval(d)
		}
	}))
	for _, w := range []int{1, 2, 4} {
		t := timeIt(func() {
			if _, err := docspanner.EvalDocs(ctx, s, docs, docspanner.ParallelOptions{Workers: w}); err != nil {
				panic(err)
			}
		})
		fmt.Printf("EvalDocs workers=%-9d %-14v\n", w, t)
	}

	opts := docspanner.Options{Alphabet: []byte("ab;")}
	p := docspanner.MustCompile(".*!x{aa}.*", opts)
	splitter := docspanner.MustCompile("(.*;)?!s{[ab]*}(;.*)?", opts)
	var correct bool
	tv := timeIt(func() {
		var err error
		correct, _, err = docspanner.CheckSplitCorrect(p, splitter, "s", nil, 4)
		if err != nil {
			panic(err)
		}
	})
	fmt.Printf("\nsplit-correctness check (document-independent, once): %v in %v\n", correct, tv)
	fmt.Printf("%-26s %-14s %-14s\n", "segments", "serial Eval", "EvalSharded w=4")
	for _, segs := range []int{64, 512} {
		doc := []byte(strings.Repeat("abaab;", segs))
		doc = doc[:len(doc)-1]
		ts := timeIt(func() { p.Eval(doc) })
		tp := timeIt(func() {
			if _, err := docspanner.EvalSharded(ctx, p, splitter, "s", doc, docspanner.ShardOptions{Workers: 4}); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%-26d %-14v %-14v\n", segs, ts, tp)
	}
	fmt.Println("expected: identical relations in every variant; with k cores the parallel")
	fmt.Println("variants approach 1/k of serial; with GOMAXPROCS=1 they expose only the")
	fmt.Println("pool and per-shard preprocessing overhead")
}
