package main

import (
	"fmt"
	"strings"
	"testing"

	"docspanner"
)

// TestLintInputCodes drives each diagnostic code through the CLI's input
// syntax, including SP000 for malformed inputs.
func TestLintInputCodes(t *testing.T) {
	cases := []struct {
		input string
		codes []string // want exactly these codes, in order
	}{
		{`!x{a+}=!v{[0-9]+}`, nil},
		{`join(!x{a}b; a!y{b})`, []string{"SP003"}},
		{`join(!x{a}; !x{b})`, []string{"SP003"}},
		{`project(q; !x{a})`, []string{"SP004", "SP004"}},
		{`seleq(x; !x{a+})`, []string{"SP005"}},
		{`seleq(x,y; union(!x{a}; !y{b}))`, []string{"SP005"}},
		{`join(!x{ab}[abc]; [abc]!y{bc})`, []string{"SP003", "SP006"}},
		{`seleq(x,y; !x{a+}b!y{a+})`, []string{"SP007"}},
		{`union(!x{a}; !x{a})`, []string{"SP008"}},
		{`!x{`, []string{"SP000"}},
		{`union(!x{a}; )`, []string{"SP000"}},
		{`project(,; !x{a})`, []string{"SP000"}},
		{`union(!x{a}; !y{b}) trailing`, []string{"SP000"}},
		// Pattern operands may use grouping and classes containing ; and ).
		{`union((ab)+!x{a}; !x{[;)]}a)`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.input, func(t *testing.T) {
			ds := lintInput(tc.input, docspanner.Options{})
			var got []string
			for _, d := range ds {
				got = append(got, d.Code)
			}
			if len(got) != len(tc.codes) {
				t.Fatalf("lintInput(%q) codes = %v, want %v (full: %v)", tc.input, got, tc.codes, ds)
			}
			for i := range got {
				if got[i] != tc.codes[i] {
					t.Fatalf("lintInput(%q) codes = %v, want %v", tc.input, got, tc.codes)
				}
			}
		})
	}
}

// TestLintInputUnsatisfiable covers SP001 through the CLI: pattern-compiled
// spanners are satisfiable by construction, but the difference of a spanner
// with itself is the canonical empty spanner.
func TestLintInputUnsatisfiable(t *testing.T) {
	ds := lintInput(`minus(!x{a+}; !x{a+})`, docspanner.Options{})
	seen := map[string]bool{}
	for _, d := range ds {
		seen[d.Code] = true
	}
	if !seen["SP001"] {
		t.Errorf("want SP001 for a self-difference, got %v", ds)
	}
	// A non-empty difference refutes containment and lints clean of SP001.
	ds = lintInput(`minus(!x{a+}; !x{a})`, docspanner.Options{})
	for _, d := range ds {
		if d.Code == "SP001" {
			t.Errorf("non-empty difference should not be SP001: %v", ds)
		}
	}
}

// TestCodeTable pins the -codes listing: the full table with no args, a
// filtered table for named codes (case-insensitively), and a usage error
// for an unknown code that names the valid ones.
func TestCodeTable(t *testing.T) {
	full, err := codeTable(nil)
	if err != nil {
		t.Fatalf("codeTable(nil): %v", err)
	}
	for i := 1; i <= 10; i++ {
		code := fmt.Sprintf("SP%03d", i)
		if !strings.Contains(full, code) {
			t.Errorf("full table missing %s:\n%s", code, full)
		}
	}

	got, err := codeTable([]string{"sp010", "SP009"})
	if err != nil {
		t.Fatalf("codeTable(sp010, SP009): %v", err)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "SP010") || !strings.HasPrefix(lines[1], "SP009") {
		t.Fatalf("filtered table should list the requested codes in order, got:\n%s", got)
	}

	_, err = codeTable([]string{"SP099"})
	if err == nil {
		t.Fatal("codeTable(SP099) should fail")
	}
	if msg := err.Error(); !strings.Contains(msg, "SP099") || !strings.Contains(msg, "SP001") || !strings.Contains(msg, "SP010") {
		t.Errorf("error should name the bad code and the valid range: %v", err)
	}
}
