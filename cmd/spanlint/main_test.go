package main

import (
	"testing"

	"docspanner"
)

// TestLintInputCodes drives each diagnostic code through the CLI's input
// syntax, including SP000 for malformed inputs.
func TestLintInputCodes(t *testing.T) {
	cases := []struct {
		input string
		codes []string // want exactly these codes, in order
	}{
		{`!x{a+}=!v{[0-9]+}`, nil},
		{`join(!x{a}b; a!y{b})`, []string{"SP003"}},
		{`join(!x{a}; !x{b})`, []string{"SP003"}},
		{`project(q; !x{a})`, []string{"SP004", "SP004"}},
		{`seleq(x; !x{a+})`, []string{"SP005"}},
		{`seleq(x,y; union(!x{a}; !y{b}))`, []string{"SP005"}},
		{`join(!x{ab}[abc]; [abc]!y{bc})`, []string{"SP003", "SP006"}},
		{`seleq(x,y; !x{a+}b!y{a+})`, []string{"SP007"}},
		{`union(!x{a}; !x{a})`, []string{"SP008"}},
		{`!x{`, []string{"SP000"}},
		{`union(!x{a}; )`, []string{"SP000"}},
		{`project(,; !x{a})`, []string{"SP000"}},
		{`union(!x{a}; !y{b}) trailing`, []string{"SP000"}},
		// Pattern operands may use grouping and classes containing ; and ).
		{`union((ab)+!x{a}; !x{[;)]}a)`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.input, func(t *testing.T) {
			ds := lintInput(tc.input, docspanner.Options{})
			var got []string
			for _, d := range ds {
				got = append(got, d.Code)
			}
			if len(got) != len(tc.codes) {
				t.Fatalf("lintInput(%q) codes = %v, want %v (full: %v)", tc.input, got, tc.codes, ds)
			}
			for i := range got {
				if got[i] != tc.codes[i] {
					t.Fatalf("lintInput(%q) codes = %v, want %v", tc.input, got, tc.codes)
				}
			}
		})
	}
}

// TestLintInputUnsatisfiable covers SP001 through the CLI: pattern-compiled
// spanners are satisfiable by construction, but the difference of a spanner
// with itself is the canonical empty spanner.
func TestLintInputUnsatisfiable(t *testing.T) {
	ds := lintInput(`minus(!x{a+}; !x{a+})`, docspanner.Options{})
	seen := map[string]bool{}
	for _, d := range ds {
		seen[d.Code] = true
	}
	if !seen["SP001"] {
		t.Errorf("want SP001 for a self-difference, got %v", ds)
	}
	// A non-empty difference refutes containment and lints clean of SP001.
	ds = lintInput(`minus(!x{a+}; !x{a})`, docspanner.Options{})
	for _, d := range ds {
		if d.Code == "SP001" {
			t.Errorf("non-empty difference should not be SP001: %v", ds)
		}
	}
}
