// Command spanlint statically analyzes spanner patterns and core-spanner
// algebra expressions, reporting diagnostics with stable codes (run
// spanlint -codes for the full table).
//
// Usage:
//
//	spanlint [flags] INPUT...
//	spanlint [flags] -f corpus.txt
//
// Each INPUT is either a spanner pattern,
//
//	spanlint '!x{[a-z]+}=!v{[0-9]+}'
//
// or an algebra expression in the prefix syntax of internal/qsyntax
// (shared with the spannerd server), whose operands are separated by
// semicolons:
//
//	union(E; E)        spanner union
//	join(E; E)         natural join
//	project(x,y; E)    projection onto the listed variables
//	seleq(x,y; E)      string-equality selection over the listed variables
//	minus(P; P)        spanner difference of two raw patterns — handy for
//	                   containment refutation: an empty difference lints as
//	                   SP001 (unsatisfiable)
//
// where each E is again an expression or a raw pattern, e.g.
//
//	spanlint 'project(v; join(!x{[a-z]+}=!v{[0-9]+}; !x{key}=[0-9]+))'
//
// A raw pattern that itself starts with one of the four operator keywords
// immediately followed by "(" must be wrapped in a group, e.g. '(union(a))'.
//
// With -f, inputs are read one per line from a file; blank lines and lines
// starting with # are skipped. Inputs that fail to parse or compile are
// reported as code SP000 at severity error. Blank or missing inputs are a
// usage error (exit status 2). The exit status is 1 when any diagnostic
// reaches the -fail-on severity (default warning), else 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"docspanner"
	"docspanner/internal/lint"
	"docspanner/internal/qsyntax"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit diagnostics as a JSON array of {input, diagnostics} objects")
		corpus     = flag.String("f", "", "read inputs (one per line) from this file")
		alphabet   = flag.String("alphabet", "", "document alphabet (default: inferred per pattern)")
		schemaless = flag.Bool("schemaless", false, "compile patterns with schemaless semantics")
		failOn     = flag.String("fail-on", "warning", "exit 1 when a diagnostic reaches this severity: info | warning | error | never")
		codes      = flag.Bool("codes", false, "print the diagnostic code table and exit")
	)
	flag.Parse()

	if *codes {
		table, err := codeTable(flag.Args())
		if err != nil {
			usageError(err.Error())
		}
		fmt.Print(table)
		return
	}

	threshold, err := parseFailOn(*failOn)
	if err != nil {
		fail(err)
	}

	inputs := flag.Args()
	for _, in := range inputs {
		if strings.TrimSpace(in) == "" {
			usageError("empty input (a pattern or expression must be non-blank)")
		}
	}
	if *corpus != "" {
		blob, err := os.ReadFile(*corpus)
		if err != nil {
			fail(err)
		}
		for _, line := range strings.Split(string(blob), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			inputs = append(inputs, line)
		}
	}
	if len(inputs) == 0 {
		usageError("no inputs (pass patterns/expressions as arguments, or -f FILE)")
	}

	opts := docspanner.Options{Schemaless: *schemaless}
	if *alphabet != "" {
		opts.Alphabet = []byte(*alphabet)
	}

	type result struct {
		Input       string                  `json:"input"`
		Diagnostics []docspanner.Diagnostic `json:"diagnostics"`
	}
	results := make([]result, 0, len(inputs))
	worst := docspanner.Severity(0)
	for _, in := range inputs {
		ds := lintInput(in, opts)
		if ds == nil {
			ds = []docspanner.Diagnostic{} // keep -json output a list, not null
		}
		results = append(results, result{Input: in, Diagnostics: ds})
		for _, d := range ds {
			if d.Severity > worst {
				worst = d.Severity
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
	} else {
		for _, r := range results {
			if len(inputs) > 1 {
				fmt.Printf("== %s\n", r.Input)
			}
			if len(r.Diagnostics) == 0 {
				fmt.Println("clean")
				continue
			}
			for _, d := range r.Diagnostics {
				fmt.Println(d)
			}
		}
	}

	if threshold > 0 && worst >= threshold {
		os.Exit(1)
	}
}

// codeTable renders the diagnostic code table. With no args every code is
// listed; otherwise only the requested codes, in the order given. An
// unknown code is an error naming the valid codes, so `spanlint -codes
// SP099` is a usage error rather than silently printing the full table.
func codeTable(args []string) (string, error) {
	all := lint.Codes()
	byCode := make(map[string]lint.CodeInfo, len(all))
	valid := make([]string, 0, len(all))
	for _, c := range all {
		byCode[c.Code] = c
		valid = append(valid, c.Code)
	}
	want := all
	if len(args) > 0 {
		want = want[:0:0]
		for _, a := range args {
			c, ok := byCode[strings.ToUpper(strings.TrimSpace(a))]
			if !ok {
				return "", fmt.Errorf("unknown diagnostic code %q (valid codes: %s)", a, strings.Join(valid, ", "))
			}
			want = append(want, c)
		}
	}
	var sb strings.Builder
	for _, c := range want {
		fmt.Fprintf(&sb, "%s  %s\n", c.Code, c.Title)
	}
	return sb.String(), nil
}

// parseFailOn maps the -fail-on value to a severity threshold; 0 means
// never fail.
func parseFailOn(s string) (docspanner.Severity, error) {
	if s == "never" {
		return 0, nil
	}
	return lint.ParseSeverity(s)
}

// lintInput analyzes one input, turning parse and compile errors into an
// SP000 diagnostic so a corpus run reports every input uniformly.
func lintInput(src string, opts docspanner.Options) []docspanner.Diagnostic {
	badInput := func(err error) []docspanner.Diagnostic {
		return []docspanner.Diagnostic{{
			Code:     "SP000",
			Severity: docspanner.SeverityError,
			Pos:      "$",
			Message:  err.Error(),
		}}
	}
	trimmed := strings.TrimSpace(src)
	if qsyntax.IsExpr(trimmed) {
		q, err := qsyntax.ParseExpr(trimmed, opts)
		if err != nil {
			return badInput(err)
		}
		return q.Lint()
	}
	s, err := docspanner.Compile(trimmed, opts)
	if err != nil {
		return badInput(err)
	}
	return s.Lint()
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "spanlint:", msg)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spanlint:", err)
	os.Exit(1)
}
