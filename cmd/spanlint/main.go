// Command spanlint statically analyzes spanner patterns and core-spanner
// algebra expressions, reporting diagnostics with stable codes (run
// spanlint -codes for the full table).
//
// Usage:
//
//	spanlint [flags] INPUT...
//	spanlint [flags] -f corpus.txt
//
// Each INPUT is either a spanner pattern,
//
//	spanlint '!x{[a-z]+}=!v{[0-9]+}'
//
// or an algebra expression in a small prefix syntax whose operands are
// separated by semicolons:
//
//	union(E; E)        spanner union
//	join(E; E)         natural join
//	project(x,y; E)    projection onto the listed variables
//	seleq(x,y; E)      string-equality selection over the listed variables
//	minus(P; P)        spanner difference of two raw patterns — handy for
//	                   containment refutation: an empty difference lints as
//	                   SP001 (unsatisfiable)
//
// where each E is again an expression or a raw pattern, e.g.
//
//	spanlint 'project(v; join(!x{[a-z]+}=!v{[0-9]+}; !x{key}=[0-9]+))'
//
// A raw pattern that itself starts with one of the four operator keywords
// immediately followed by "(" must be wrapped in a group, e.g. '(union(a))'.
//
// With -f, inputs are read one per line from a file; blank lines and lines
// starting with # are skipped. Inputs that fail to parse or compile are
// reported as code SP000 at severity error. The exit status is 1 when any
// diagnostic reaches the -fail-on severity (default warning), else 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"docspanner"
	"docspanner/internal/lint"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit diagnostics as a JSON array of {input, diagnostics} objects")
		corpus     = flag.String("f", "", "read inputs (one per line) from this file")
		alphabet   = flag.String("alphabet", "", "document alphabet (default: inferred per pattern)")
		schemaless = flag.Bool("schemaless", false, "compile patterns with schemaless semantics")
		failOn     = flag.String("fail-on", "warning", "exit 1 when a diagnostic reaches this severity: info | warning | error | never")
		codes      = flag.Bool("codes", false, "print the diagnostic code table and exit")
	)
	flag.Parse()

	if *codes {
		for _, c := range lint.Codes() {
			fmt.Printf("%s  %s\n", c.Code, c.Title)
		}
		return
	}

	threshold, err := parseFailOn(*failOn)
	if err != nil {
		fail(err)
	}

	inputs := flag.Args()
	if *corpus != "" {
		blob, err := os.ReadFile(*corpus)
		if err != nil {
			fail(err)
		}
		for _, line := range strings.Split(string(blob), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			inputs = append(inputs, line)
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "spanlint: no inputs (pass patterns/expressions as arguments, or -f FILE)")
		flag.Usage()
		os.Exit(2)
	}

	opts := docspanner.Options{Schemaless: *schemaless}
	if *alphabet != "" {
		opts.Alphabet = []byte(*alphabet)
	}

	type result struct {
		Input       string                  `json:"input"`
		Diagnostics []docspanner.Diagnostic `json:"diagnostics"`
	}
	results := make([]result, 0, len(inputs))
	worst := docspanner.Severity(0)
	for _, in := range inputs {
		ds := lintInput(in, opts)
		if ds == nil {
			ds = []docspanner.Diagnostic{} // keep -json output a list, not null
		}
		results = append(results, result{Input: in, Diagnostics: ds})
		for _, d := range ds {
			if d.Severity > worst {
				worst = d.Severity
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
	} else {
		for _, r := range results {
			if len(inputs) > 1 {
				fmt.Printf("== %s\n", r.Input)
			}
			if len(r.Diagnostics) == 0 {
				fmt.Println("clean")
				continue
			}
			for _, d := range r.Diagnostics {
				fmt.Println(d)
			}
		}
	}

	if threshold > 0 && worst >= threshold {
		os.Exit(1)
	}
}

// parseFailOn maps the -fail-on value to a severity threshold; 0 means
// never fail.
func parseFailOn(s string) (docspanner.Severity, error) {
	if s == "never" {
		return 0, nil
	}
	return lint.ParseSeverity(s)
}

// lintInput analyzes one input, turning parse and compile errors into an
// SP000 diagnostic so a corpus run reports every input uniformly.
func lintInput(src string, opts docspanner.Options) []docspanner.Diagnostic {
	badInput := func(err error) []docspanner.Diagnostic {
		return []docspanner.Diagnostic{{
			Code:     "SP000",
			Severity: docspanner.SeverityError,
			Pos:      "$",
			Message:  err.Error(),
		}}
	}
	trimmed := strings.TrimSpace(src)
	if isOperator(trimmed) {
		p := &parser{src: trimmed, opts: opts}
		q, err := p.expr()
		if err == nil {
			p.ws()
			if p.pos != len(p.src) {
				err = fmt.Errorf("trailing input at offset %d: %q", p.pos, p.src[p.pos:])
			}
		}
		if err != nil {
			return badInput(err)
		}
		return q.Lint()
	}
	s, err := docspanner.Compile(trimmed, opts)
	if err != nil {
		return badInput(err)
	}
	return s.Lint()
}

// isOperator reports whether the input starts with one of the algebra
// keywords immediately followed by an opening parenthesis.
func isOperator(src string) bool {
	for _, kw := range []string{"union", "join", "project", "seleq", "minus"} {
		if strings.HasPrefix(src, kw+"(") {
			return true
		}
	}
	return false
}

// parser is a recursive-descent parser for the prefix expression syntax.
type parser struct {
	src  string
	pos  int
	opts docspanner.Options
}

func (p *parser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) expect(c byte) error {
	p.ws()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) expr() (*docspanner.Query, error) {
	p.ws()
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "union("):
		return p.binary("union", (*docspanner.Query).Union)
	case strings.HasPrefix(rest, "join("):
		return p.binary("join", (*docspanner.Query).Join)
	case strings.HasPrefix(rest, "project("):
		return p.varOp("project", func(q *docspanner.Query, vars []docspanner.Var) *docspanner.Query {
			return q.Project(vars...)
		})
	case strings.HasPrefix(rest, "seleq("):
		return p.varOp("seleq", func(q *docspanner.Query, vars []docspanner.Var) *docspanner.Query {
			return q.SelectEqual(vars...)
		})
	case strings.HasPrefix(rest, "minus("):
		return p.minus()
	}
	return p.pattern()
}

func (p *parser) binary(kw string, op func(*docspanner.Query, *docspanner.Query) *docspanner.Query) (*docspanner.Query, error) {
	p.pos += len(kw) + 1 // keyword and "("
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(';'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	return op(l, r), nil
}

func (p *parser) varOp(kw string, op func(*docspanner.Query, []docspanner.Var) *docspanner.Query) (*docspanner.Query, error) {
	p.pos += len(kw) + 1
	vars, err := p.varList()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	if err := p.expect(';'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	sub, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	return op(sub, vars), nil
}

// varList parses a possibly empty comma-separated variable list, up to
// (but not consuming) the ';' separator.
func (p *parser) varList() ([]docspanner.Var, error) {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ';' && p.src[p.pos] != ')' {
		p.pos++
	}
	raw := strings.TrimSpace(p.src[start:p.pos])
	if raw == "" {
		return nil, nil
	}
	var vars []docspanner.Var
	for _, name := range strings.Split(raw, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("empty variable name in list %q", raw)
		}
		vars = append(vars, docspanner.Var(name))
	}
	return vars, nil
}

// minus parses minus(P; P) where both operands are raw patterns, and
// builds the spanner difference P1 ∖ P2.
func (p *parser) minus() (*docspanner.Query, error) {
	p.pos += len("minus") + 1
	a, err := p.compileOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expect(';'); err != nil {
		return nil, fmt.Errorf("minus: %w", err)
	}
	b, err := p.compileOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, fmt.Errorf("minus: %w", err)
	}
	d, err := docspanner.Difference(a, b)
	if err != nil {
		return nil, fmt.Errorf("minus: %w", err)
	}
	return docspanner.Q(d)
}

// pattern compiles a raw spanner pattern operand into a primitive query.
func (p *parser) pattern() (*docspanner.Query, error) {
	s, err := p.compileOperand()
	if err != nil {
		return nil, err
	}
	return docspanner.Q(s)
}

// compileOperand scans a raw pattern operand — text up to the next ';' or
// ')' at parenthesis depth zero, honoring backslash escapes and character
// classes so grouping inside the pattern does not end the operand — and
// compiles it.
func (p *parser) compileOperand() (*docspanner.Spanner, error) {
	start := p.pos
	depth, inClass := 0, false
scan:
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\\' && p.pos+1 < len(p.src):
			p.pos++
		case inClass:
			if c == ']' {
				inClass = false
			}
		case c == '[':
			inClass = true
		case c == '(':
			depth++
		case c == ')':
			if depth == 0 {
				break scan
			}
			depth--
		case c == ';':
			if depth == 0 {
				break scan
			}
		}
		p.pos++
	}
	pat := strings.TrimSpace(p.src[start:p.pos])
	if pat == "" {
		return nil, fmt.Errorf("empty pattern operand at offset %d", start)
	}
	s, err := docspanner.Compile(pat, p.opts)
	if err != nil {
		return nil, fmt.Errorf("pattern %q: %w", pat, err)
	}
	return s, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spanlint:", err)
	os.Exit(1)
}
