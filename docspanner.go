// Package docspanner is a library for information extraction with
// document spanners, implementing the framework surveyed by Schmid and
// Schweikardt, "Document Spanners — A Brief Overview of Concepts, Results,
// and Recent Developments" (PODS 2022), which goes back to Fagin,
// Kimelfeld, Reiss, and Vansummeren (J. ACM 2015).
//
// A document spanner maps a document D ∈ Σ* to a relation of span tuples:
// assignments of intervals [i,j⟩ of D to capture variables. This package
// provides:
//
//   - a spanner regex dialect with variable bindings !x{...} and
//     references &x, compiled to vset-automata (regular spanners) or
//     ref-automata (refl-spanners);
//   - evaluation, duplicate-free enumeration with linear preprocessing
//     and constant delay, and the decision problems ModelChecking,
//     NonEmptiness, Satisfiability, Hierarchicality, Containment, and
//     Equivalence;
//   - the core-spanner algebra (union, natural join, projection,
//     string-equality selection) with the core-simplification lemma as an
//     executable rewrite;
//   - evaluation over SLP-compressed documents: membership, enumeration
//     with logarithmic delay, and complex document editing in logarithmic
//     time per operation.
//
// The subsystem packages under internal/ (automata, algebra, enum, refl,
// slp, slpmatch, spanlog, cfg, ...) carry the full machinery; this package
// is the stable facade.
package docspanner

import (
	"fmt"
	"math/big"
	"sync"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/lint"
	"docspanner/internal/plan"
	"docspanner/internal/refl"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Re-exported core data model types.
type (
	// Span is an interval [Begin,End⟩ of a document (1-based, End
	// exclusive), denoting the factor doc[Begin-1 : End-1].
	Span = spans.Span
	// Var is a capture variable.
	Var = spans.Var
	// VarSet is a canonical (sorted, deduplicated) set of variables.
	VarSet = spans.VarSet
	// Tuple maps variables to spans; variables may be unassigned under
	// the schemaless semantics.
	Tuple = spans.Tuple
	// Relation is a set of span tuples.
	Relation = spans.Relation
)

// NewSpan constructs the span [begin,end⟩.
func NewSpan(begin, end int) Span { return spans.S(begin, end) }

// NewVarSet builds a canonical variable set.
func NewVarSet(vars ...Var) VarSet { return spans.NewVarSet(vars...) }

// NewRelation returns a relation containing the given tuples (with
// duplicates removed).
func NewRelation(tuples ...Tuple) *Relation { return spans.NewRelation(tuples...) }

// SortTuples sorts ts in place into the canonical order Relation.Sorted
// uses — the deterministic presentation of enumeration output collected
// without going through a Relation.
func SortTuples(ts []Tuple) { spans.SortTuples(ts) }

// Options configures compilation.
type Options struct {
	// Alphabet is the document alphabet Σ; it resolves the wildcard .
	// and negated classes. Defaults to the letters mentioned in the
	// pattern (or printable ASCII if none).
	Alphabet []byte
	// Schemaless switches result semantics to partial tuples: variables
	// bound only on some alternatives stay unassigned instead of
	// invalidating the match.
	Schemaless bool
}

// Spanner is a compiled document spanner: regular (no references) or a
// refl-spanner (with references &x).
//
// A compiled Spanner is immutable and safe for concurrent use by multiple
// goroutines: all evaluation methods (Eval, Enumerate, Count, ModelCheck,
// NonEmpty, ExactCount, ...) may be called simultaneously on a shared
// instance. The lazy determinization used by the enumeration methods is
// guarded internally and runs at most once.
type Spanner struct {
	pattern    string
	nfa        *automata.NFA
	ast        regex.Node    // nil for derived spanners (e.g. Difference)
	rspanner   *refl.Spanner // non-nil iff the pattern has references
	schemaless bool

	planOnce sync.Once
	planned  *plan.Planned
}

// Compile parses and compiles a spanner pattern, e.g.
//
//	s, err := docspanner.Compile(`!key{[a-z]+}=!val{[0-9]+}`, docspanner.Options{})
//
// Patterns with references (&x) compile to refl-spanners; everything else
// compiles to a regular spanner (a vset-automaton).
func Compile(pattern string, opts Options) (*Spanner, error) {
	ast, err := regex.Parse(pattern)
	if err != nil {
		return nil, err
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: opts.Alphabet})
	if err != nil {
		return nil, err
	}
	s := &Spanner{pattern: pattern, nfa: nfa, ast: ast, schemaless: opts.Schemaless}
	if nfa.HasRefs() {
		rs, err := refl.New(nfa)
		if err != nil {
			return nil, err
		}
		s.rspanner = rs
		return s, nil
	}
	if err := nfa.Validate(!opts.Schemaless); err != nil {
		return nil, err
	}
	return s, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(pattern string, opts Options) *Spanner {
	s, err := Compile(pattern, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Pattern returns the source pattern.
func (s *Spanner) Pattern() string { return s.pattern }

// Vars returns the spanner's capture variables.
func (s *Spanner) Vars() VarSet { return s.nfa.Vars }

// IsRegular reports whether the spanner is a regular spanner (as opposed
// to a refl-spanner with references).
func (s *Spanner) IsRegular() bool { return s.rspanner == nil }

func (s *Spanner) semantics() vset.Semantics {
	if s.schemaless {
		return vset.Schemaless
	}
	return vset.Functional
}

// dEVA determinizes the automaton (query complexity only), memoized in
// the global hash-consed DEVA cache keyed on the immutable NFA: a
// compiled spanner shared across goroutines — and every query plan
// scanning the same automaton — determinizes exactly once.
func (s *Spanner) dEVA() *automata.DEVA {
	return automata.DeterminizeCached(s.nfa)
}

// plan lowers the spanner into its (trivial, single-scan) execution
// plan, once per spanner. Routing the Spanner methods through the
// planner keeps one evaluation path for the whole facade: a regular
// spanner plans to a constant-delay scan, a refl-spanner to an external
// scan over its configuration search — exactly the previous behavior.
func (s *Spanner) plan() *plan.Planned {
	s.planOnce.Do(func() {
		opts := plan.Options{Schemaless: s.schemaless}
		if s.rspanner != nil {
			s.planned = plan.NewExternal(s.rspanner, opts)
		} else {
			s.planned = plan.New(algebra.Prim{A: s.nfa, Src: s.ast}, opts)
		}
	})
	return s.planned
}

// Eval materializes the full span relation on doc.
func (s *Spanner) Eval(doc []byte) *Relation {
	return s.plan().Eval(doc)
}

// Explain renders the spanner's execution plan — the logical shape, the
// physical backend, and any rewrite provenance — in the same format as
// Query.Explain. Human-oriented; not stable across releases.
func (s *Spanner) Explain() string { return s.plan().Explain() }

// Enumerate streams the result tuples without duplicates; for regular
// spanners it uses the linear-preprocessing/constant-delay algorithm
// (Section 2.5 of the survey). Return false from f to stop early. Early
// termination saves work for both classes: regular spanners stop the
// constant-delay walk, and refl-spanners abort the configuration search
// instead of materializing the full relation first.
func (s *Spanner) Enumerate(doc []byte, f func(Tuple) bool) {
	s.plan().Enumerate(doc, f)
}

// Count returns the number of result tuples on doc.
func (s *Spanner) Count(doc []byte) int {
	return s.plan().Count(doc)
}

// ModelCheck decides t ∈ S(doc) — linear in |doc| for both regular and
// refl-spanners (Sections 2.4 and 3.3).
func (s *Spanner) ModelCheck(doc []byte, t Tuple) (bool, error) {
	if s.rspanner != nil {
		return s.rspanner.ModelCheck(doc, t, !s.schemaless)
	}
	return vset.ModelCheck(s.nfa, doc, t, s.semantics())
}

// NonEmpty decides S(doc) ≠ ∅. Polynomial for regular spanners; NP-hard
// in general for refl-spanners (Section 3.3).
func (s *Spanner) NonEmpty(doc []byte) bool {
	if s.rspanner != nil {
		return s.rspanner.NonEmpty(doc)
	}
	return vset.NonEmpty(s.nfa, doc)
}

// Satisfiable decides whether any document yields a result.
func (s *Spanner) Satisfiable() bool {
	if s.rspanner != nil {
		return s.rspanner.Satisfiable()
	}
	return vset.Satisfiable(s.nfa)
}

// Witness returns a document and tuple witnessing satisfiability.
func (s *Spanner) Witness() (doc []byte, t Tuple, ok bool) {
	if s.rspanner != nil {
		return s.rspanner.Witness()
	}
	return vset.Witness(s.nfa)
}

// Hierarchical decides the Hierarchicality problem of Section 2.4: it
// returns true exactly when every tuple the spanner extracts, from any
// document, has pairwise disjoint-or-nested spans (Section 2.2). The
// polarity follows the property name — true means "is hierarchical", the
// benign case; false means some document admits a tuple with properly
// overlapping spans. Note the contrast with Query.IsCore, whose true
// answer flags the *harder* class. Regular spanners only; refl-spanners
// return an error rather than a guess.
func (s *Spanner) Hierarchical() (bool, error) {
	if s.rspanner != nil {
		return false, fmt.Errorf("docspanner: Hierarchical is implemented for regular spanners")
	}
	return vset.Hierarchical(s.nfa), nil
}

// Equivalent decides whether two regular spanners extract the same
// relation from every document.
func Equivalent(a, b *Spanner) (bool, error) {
	if !a.IsRegular() || !b.IsRegular() {
		return false, fmt.Errorf("docspanner: Equivalence is undecidable beyond regular spanners; use EquivalentUpTo")
	}
	return vset.Equivalent(a.nfa, b.nfa), nil
}

// Contains decides ⟦a⟧(D) ⊆ ⟦b⟧(D) for all documents D (regular only).
func Contains(a, b *Spanner) (bool, error) {
	if !a.IsRegular() || !b.IsRegular() {
		return false, fmt.Errorf("docspanner: Containment is undecidable beyond regular spanners; use EquivalentUpTo")
	}
	return vset.Contains(a.nfa, b.nfa), nil
}

// EquivalentUpTo compares two Evaluators — spanners, queries, or normal
// forms, in any combination — on all documents over the alphabet up to
// the given length: a bounded refutation procedure for the undecidable
// cases (core-spanner equivalence, Section 2.4). It returns a
// counterexample document if one exists within the bound. The alphabet
// must be non-empty whenever maxLen > 0; otherwise only the empty
// document would be compared and "equal" would be vacuous, so that call
// is rejected with an error.
func EquivalentUpTo(a, b Evaluator, alphabet []byte, maxLen int) (equal bool, counterexample []byte, err error) {
	if maxLen < 0 {
		return false, nil, fmt.Errorf("docspanner: EquivalentUpTo: negative maxLen %d", maxLen)
	}
	if len(alphabet) == 0 && maxLen > 0 {
		return false, nil, fmt.Errorf("docspanner: EquivalentUpTo: empty alphabet with maxLen %d would compare only the empty document", maxLen)
	}
	var doc []byte
	var rec func(int) []byte
	rec = func(depth int) []byte {
		if !a.Eval(doc).Equal(b.Eval(doc)) {
			return append([]byte(nil), doc...)
		}
		if depth == maxLen {
			return nil
		}
		for _, c := range alphabet {
			doc = append(doc, c)
			if ce := rec(depth + 1); ce != nil {
				return ce
			}
			doc = doc[:len(doc)-1]
		}
		return nil
	}
	if ce := rec(0); ce != nil {
		return false, ce, nil
	}
	return true, nil, nil
}

// ExactCount returns the exact number of result tuples on doc without
// enumerating them (dynamic programming over the deterministic automaton;
// polynomial even when the count is astronomical). Regular spanners only.
func (s *Spanner) ExactCount(doc []byte) (*big.Int, error) {
	if s.rspanner != nil {
		return nil, fmt.Errorf("docspanner: ExactCount is implemented for regular spanners")
	}
	return enum.FastCount(s.dEVA(), doc), nil
}

// Re-exported static-analysis (spanlint) types. See package
// internal/lint for the pass implementations and cmd/spanlint for the
// command-line front end.
type (
	// Diagnostic is one spanlint finding, with a stable code (SP001–SP008),
	// a severity, a position path into the expression tree, a message, and
	// an optional fix hint.
	Diagnostic = lint.Diagnostic
	// Severity grades a Diagnostic: SeverityInfo, SeverityWarning, or
	// SeverityError.
	Severity = lint.Severity
)

// Severity levels for lint diagnostics.
const (
	SeverityInfo    = lint.Info
	SeverityWarning = lint.Warning
	SeverityError   = lint.Error
)

// Lint runs the spanlint static-analysis passes on the compiled spanner
// and returns its diagnostics, sorted and deterministic; an empty slice
// means the spanner is lint-clean. The passes reuse the library's decision
// procedures (Satisfiable, Hierarchical, ...) and run in query complexity
// only — no document is involved. Like every other method, Lint is safe to
// call concurrently on a shared spanner.
func (s *Spanner) Lint() []Diagnostic {
	if s.rspanner != nil {
		return lint.Refl(s.rspanner)
	}
	return lint.Spanner(s.nfa, s.ast, s.schemaless)
}

// Difference returns the spanner D ↦ a(D) ∖ b(D). Regular spanners are
// closed under difference (via the extended-word language view); the
// result is again a regular spanner usable everywhere a compiled spanner
// is.
func Difference(a, b *Spanner) (*Spanner, error) {
	if !a.IsRegular() || !b.IsRegular() {
		return nil, fmt.Errorf("docspanner: Difference is implemented for regular spanners")
	}
	nfa := vset.Difference(a.nfa, b.nfa)
	return &Spanner{
		pattern:    fmt.Sprintf("(%s)\\(%s)", a.pattern, b.pattern),
		nfa:        nfa,
		schemaless: true, // the difference may drop variables on some tuples
	}, nil
}
