package docspanner

import (
	"encoding/json"
	"fmt"
	"iter"

	"docspanner/internal/automata"
	"docspanner/internal/refl"
)

// spannerJSON is the stable on-disk form of a compiled spanner.
type spannerJSON struct {
	Version    int           `json:"version"`
	Pattern    string        `json:"pattern,omitempty"`
	Schemaless bool          `json:"schemaless,omitempty"`
	Automaton  *automata.NFA `json:"automaton"`
}

// MarshalJSON serializes the compiled spanner (automaton included), so it
// can be stored and later loaded without re-compiling the pattern.
func (s *Spanner) MarshalJSON() ([]byte, error) {
	return json.Marshal(spannerJSON{
		Version:    1,
		Pattern:    s.pattern,
		Schemaless: s.schemaless,
		Automaton:  s.nfa,
	})
}

// LoadSpanner deserializes a spanner produced by MarshalJSON, re-running
// the validity checks.
func LoadSpanner(data []byte) (*Spanner, error) {
	var in spannerJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("docspanner: unsupported spanner serialization version %d", in.Version)
	}
	if in.Automaton == nil {
		return nil, fmt.Errorf("docspanner: missing automaton")
	}
	s := &Spanner{pattern: in.Pattern, nfa: in.Automaton, schemaless: in.Schemaless}
	if in.Automaton.HasRefs() {
		rs, err := refl.New(in.Automaton)
		if err != nil {
			return nil, err
		}
		s.rspanner = rs
		return s, nil
	}
	if err := in.Automaton.Validate(!in.Schemaless); err != nil {
		return nil, err
	}
	return s, nil
}

// Dot renders the spanner's automaton in Graphviz DOT format.
func (s *Spanner) Dot() string {
	name := s.pattern
	if name == "" {
		name = "spanner"
	}
	return s.nfa.Dot(name)
}

// Tuples returns a range-over-func iterator over the result tuples:
//
//	for t := range s.Tuples(doc) { ... }
//
// Breaking out of the loop stops the enumeration (useful with the
// constant-delay guarantee: the first k tuples cost preprocessing + O(k)).
func (s *Spanner) Tuples(doc []byte) iter.Seq[Tuple] {
	return func(yield func(Tuple) bool) {
		s.Enumerate(doc, yield)
	}
}
