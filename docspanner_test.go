package docspanner

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompileAndEval(t *testing.T) {
	s := MustCompile("!x{(a|b)*}!y{b}!z{(a|b)*}", Options{})
	rel := s.Eval([]byte("ababbab"))
	if rel.Len() != 4 {
		t.Errorf("Eval returned %d tuples, want 4 (Example 1.1)", rel.Len())
	}
	if !s.IsRegular() {
		t.Error("regular spanner misclassified")
	}
	if !s.Vars().Equal(NewVarSet("x", "y", "z")) {
		t.Errorf("Vars = %v", s.Vars())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("!x{a", Options{}); err == nil {
		t.Error("syntax error accepted")
	}
	// Non-functional binding under functional semantics.
	if _, err := Compile("!x{a}|b", Options{}); err == nil {
		t.Error("non-functional spanner accepted under functional semantics")
	}
	if _, err := Compile("!x{a}|b", Options{Schemaless: true}); err != nil {
		t.Errorf("schemaless compile failed: %v", err)
	}
	// Forward reference.
	if _, err := Compile("&x!x{a}", Options{}); err == nil {
		t.Error("forward reference accepted")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := MustCompile(".*!x{a}.*", Options{Alphabet: []byte("a")})
	n := 0
	s.Enumerate([]byte(strings.Repeat("a", 100)), func(Tuple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("stopped after %d", n)
	}
	if got := s.Count([]byte("aaa")); got != 3 {
		t.Errorf("Count = %d", got)
	}
}

func TestReflSpannerAPI(t *testing.T) {
	s := MustCompile("!x{(a|b)+}c!y{&x}", Options{})
	if s.IsRegular() {
		t.Error("refl spanner misclassified")
	}
	rel := s.Eval([]byte("abcab"))
	if rel.Len() != 1 {
		t.Errorf("Eval = %v", rel)
	}
	ok, err := s.ModelCheck([]byte("abcab"), Tuple{"x": NewSpan(1, 3), "y": NewSpan(4, 6)})
	if err != nil || !ok {
		t.Errorf("ModelCheck = %v, %v", ok, err)
	}
	if !s.NonEmpty([]byte("abcab")) || s.NonEmpty([]byte("abcba")) {
		t.Error("NonEmpty wrong")
	}
	if !s.Satisfiable() {
		t.Error("Satisfiable = false")
	}
}

func TestDecisionProblemsAPI(t *testing.T) {
	a := MustCompile("!x{a}", Options{Alphabet: []byte("ab")})
	b := MustCompile("!x{a|b}", Options{Alphabet: []byte("ab")})
	if ok, err := Contains(a, b); err != nil || !ok {
		t.Errorf("Contains = %v, %v", ok, err)
	}
	if ok, _ := Equivalent(a, b); ok {
		t.Error("distinct spanners equivalent")
	}
	c := MustCompile("!x{b|a}", Options{Alphabet: []byte("ab")})
	if ok, err := Equivalent(b, c); err != nil || !ok {
		t.Errorf("Equivalent = %v, %v", ok, err)
	}
	h, err := a.Hierarchical()
	if err != nil || !h {
		t.Errorf("Hierarchical = %v, %v", h, err)
	}

	doc, tup, ok := a.Witness()
	if !ok || string(doc) != "a" || tup.Get("x") != NewSpan(1, 2) {
		t.Errorf("Witness = %q %v %v", doc, tup, ok)
	}

	// Refl spanners: equivalence refuses, bounded check works.
	r := MustCompile("!x{a+}&x", Options{})
	if _, err := Equivalent(a, r); err == nil {
		t.Error("Equivalent accepted refl spanner")
	}
	eq, ce, err := EquivalentUpTo(a, r, []byte("a"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("distinct spanners reported equal up to length 4")
	}
	if len(ce) == 0 && ce != nil {
		t.Logf("counterexample: %q", ce)
	}
}

func TestQueryAlgebra(t *testing.T) {
	doc := []byte("ab,ab")
	pair := MustCompile("!x{(a|b)+},!y{(a|b)+}", Options{Alphabet: []byte("ab,")})
	q := MustQ(pair).SelectEqual("x", "y").Project("x")
	if !q.IsCore() {
		t.Error("IsCore = false")
	}
	rel := q.Eval(doc)
	if rel.Len() != 1 || !rel.Contains(Tuple{"x": NewSpan(1, 3)}) {
		t.Errorf("query Eval = %v", rel)
	}

	nf, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nf.Selections() != 1 {
		t.Errorf("Selections = %d", nf.Selections())
	}
	if !nf.Eval(doc).Equal(rel) {
		t.Error("normal form disagrees with direct evaluation")
	}
	if !nf.Visible().Equal(NewVarSet("x")) {
		t.Errorf("Visible = %v", nf.Visible())
	}
	if q.String() == "" {
		t.Error("empty String")
	}

	u := MustQ(MustCompile("!x{a}", Options{Alphabet: []byte("ab")})).
		Union(MustQ(MustCompile("!x{b}", Options{Alphabet: []byte("ab")})))
	if got := u.Eval([]byte("a")).Len(); got != 1 {
		t.Errorf("union Eval = %d", got)
	}

	j := MustQ(MustCompile(".*!x{a.}.*", Options{Alphabet: []byte("ab")})).
		Join(MustQ(MustCompile(".*!x{.b}.*", Options{Alphabet: []byte("ab")})))
	if got := j.Eval([]byte("aab")); got.Len() != 1 || !got.Contains(Tuple{"x": NewSpan(2, 4)}) {
		t.Errorf("join Eval = %v", got)
	}
}

func TestQueryFuse(t *testing.T) {
	s := MustCompile("!u{a+}b!v{a+}", Options{})
	q := MustQ(s).Fuse("w", "u", "v").Project("w")
	rel := q.Eval([]byte("aba"))
	if rel.Len() != 1 || !rel.Contains(Tuple{"w": NewSpan(1, 4)}) {
		t.Errorf("Fuse = %v", rel)
	}
}

func TestCompressedDocumentAPI(t *testing.T) {
	plain := []byte(strings.Repeat("the cat sat. ", 500))
	d := CompressDocument(plain)
	if d.Len() != int64(len(plain)) {
		t.Errorf("Len = %d", d.Len())
	}
	if d.GrammarSize() >= len(plain) {
		t.Errorf("no compression: %d nodes", d.GrammarSize())
	}
	if string(d.Bytes()) != string(plain) {
		t.Error("round trip failed")
	}
	if d.Byte(4) != 'c' {
		t.Errorf("Byte(4) = %c", d.Byte(4))
	}

	s := MustCompile(".*!x{cat}.*", Options{Alphabet: []byte("the cast. ")})
	ix, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	ix.Warm(d)
	if got := ix.Count(d); got != 500 {
		t.Errorf("compressed Count = %d, want 500", got)
	}
	if !ix.NonEmpty(d) {
		t.Error("NonEmpty = false")
	}
	// Agreement with plain evaluation.
	if !ix.Eval(d).Equal(s.Eval(plain)) {
		t.Error("compressed and plain evaluation disagree")
	}
}

func TestRepeatDocument(t *testing.T) {
	base := DocumentFromBytes([]byte("ab"))
	big := RepeatDocument(base, 1<<20)
	if big.Len() != 2<<20 {
		t.Errorf("Len = %d", big.Len())
	}
	if big.GrammarSize() > 64 {
		t.Errorf("GrammarSize = %d, want logarithmic", big.GrammarSize())
	}
}

func TestDocDBEditing(t *testing.T) {
	db := NewDocDB()
	db.Add("D1", CompressDocument([]byte("hello world")))
	db.Add("D2", CompressDocument([]byte("spanner")))
	d3, err := db.Edit("D3", "insert(D1, extract(D2,1,4), 7)")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(d3.Bytes()); got != "hello spanworld" {
		t.Errorf("edit result = %q", got)
	}
	if _, ok := db.Get("D3"); !ok {
		t.Error("D3 not stored")
	}
	if len(db.Names()) != 3 {
		t.Errorf("Names = %v", db.Names())
	}
	if db.Size() == 0 {
		t.Error("Size = 0")
	}
	if _, err := db.Edit("X", "extract(D9,1,2)"); err == nil {
		t.Error("edit of unknown doc accepted")
	}
	if _, err := db.Edit("X", "nonsense("); err == nil {
		t.Error("parse error accepted")
	}
}

func TestIndexWarmDeltaAcrossEdits(t *testing.T) {
	db := NewDocDB()
	db.Add("log", CompressDocument([]byte("the cat sat on the mat")))

	s := MustCompile(".*!x{at}.*", Options{Alphabet: []byte("the cast. monm")})
	ix, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	old, _ := db.Get("log")
	ix.Warm(old)
	if ix.ExactCount(old).Int64() != int64(ix.Count(old)) {
		t.Fatal("ExactCount and Count disagree on the base document")
	}

	for i, expr := range []string{
		"insert(log, extract(log,5,8), 1)", // prepend "cat "
		"delete(log, 1, 4)",
		"concat(log, log)",
	} {
		cur, err := db.Edit("log", expr)
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		st := ix.WarmDelta(old, cur)
		if st.Recomputed == 0 {
			t.Errorf("edit %d: WarmDelta recomputed nothing", i)
		}
		// The maintained index must agree with plain evaluation — and
		// the maintained exact counter with the maintained index.
		if !ix.Eval(cur).Equal(s.Eval(cur.Bytes())) {
			t.Errorf("edit %d: maintained index diverged from plain evaluation", i)
		}
		if got, want := ix.ExactCount(cur).Int64(), int64(ix.Count(cur)); got != want {
			t.Errorf("edit %d: ExactCount = %d, Count = %d", i, got, want)
		}
		old = cur
	}
}

func TestRefusedOperations(t *testing.T) {
	r := MustCompile("!x{a+}&x", Options{})
	if _, err := r.Index(); err == nil {
		t.Error("Index on refl spanner accepted")
	}
	if _, err := Q(r); err == nil {
		t.Error("Q on refl spanner accepted")
	}
	if _, err := r.Hierarchical(); err == nil {
		t.Error("Hierarchical on refl spanner accepted")
	}
}

func TestEquivalentUpToPositive(t *testing.T) {
	a := MustCompile("!x{ab}", Options{Alphabet: []byte("ab")})
	b := MustCompile("!x{ab}", Options{Alphabet: []byte("ab")})
	eq, ce, err := EquivalentUpTo(a, b, []byte("ab"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !eq || ce != nil {
		t.Errorf("EquivalentUpTo = %v, %q", eq, ce)
	}
}

func TestEquivalentUpToRejectsEmptyAlphabet(t *testing.T) {
	a := MustCompile("!x{ab}", Options{Alphabet: []byte("ab")})
	b := MustCompile("!x{ab}", Options{Alphabet: []byte("ab")})
	if _, _, err := EquivalentUpTo(a, b, nil, 4); err == nil {
		t.Error("empty alphabet with maxLen > 0 accepted")
	}
	if _, _, err := EquivalentUpTo(a, b, []byte("ab"), -1); err == nil {
		t.Error("negative maxLen accepted")
	}
	// maxLen 0 with an empty alphabet is a legitimate (if trivial)
	// comparison of the empty document only.
	eq, ce, err := EquivalentUpTo(a, b, nil, 0)
	if err != nil || !eq || ce != nil {
		t.Errorf("EquivalentUpTo(nil, 0) = %v, %q, %v", eq, ce, err)
	}
}

func TestExactCountAPI(t *testing.T) {
	s := MustCompile(".*!x{a}.*", Options{Alphabet: []byte("ab")})
	doc := []byte("aabaa")
	c, err := s.ExactCount(doc)
	if err != nil || c.Int64() != 4 {
		t.Errorf("ExactCount = %v, %v", c, err)
	}
	ix, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	big := RepeatDocument(DocumentFromBytes(doc), 1<<30)
	got := ix.ExactCount(big)
	want := int64(4) * (1 << 30)
	if got.Int64() != want {
		t.Errorf("compressed ExactCount = %v, want %d", got, want)
	}
	// Refl spanners refuse.
	r := MustCompile("!x{a+}&x", Options{})
	if _, err := r.ExactCount(nil); err == nil {
		t.Error("refl ExactCount accepted")
	}
}

func TestDifferenceAPI(t *testing.T) {
	a := MustCompile(".*!x{a|b}.*", Options{Alphabet: []byte("ab")})
	b := MustCompile(".*!x{b}.*", Options{Alphabet: []byte("ab")})
	d, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("aba")
	rel := d.Eval(doc)
	want := a.Eval(doc).Minus(b.Eval(doc))
	if !rel.Equal(want) {
		t.Errorf("Difference = %v, want %v", rel, want)
	}
	r := MustCompile("!x{a+}&x", Options{})
	if _, err := Difference(a, r); err == nil {
		t.Error("refl operand accepted")
	}
}

func TestDocDBSerializationAPI(t *testing.T) {
	db := NewDocDB()
	db.Add("a", CompressDocument([]byte(strings.Repeat("hello ", 100))))
	db.Add("b", CompressDocument([]byte("world")))
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDocDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := back.Get("a")
	if !ok || string(a.Bytes()) != strings.Repeat("hello ", 100) {
		t.Error("document a lost")
	}
	if len(back.Names()) != 2 {
		t.Errorf("Names = %v", back.Names())
	}
}

func TestIndexEnumerateAPI(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	ix, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	d := CompressDocument([]byte("abab"))
	n := 0
	ix.Enumerate(d, func(Tuple) bool { n++; return true })
	if n != 2 {
		t.Errorf("Enumerate saw %d tuples", n)
	}
}

func TestQueryVarsAndNormalFormStates(t *testing.T) {
	q := MustQ(MustCompile("!x{a}!y{b}", Options{}))
	if !q.Vars().Equal(NewVarSet("x", "y")) {
		t.Errorf("Vars = %v", q.Vars())
	}
	nf, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nf.AutomatonStates() <= 0 {
		t.Error("AutomatonStates = 0")
	}
}

func TestSchemalessSpannerAPI(t *testing.T) {
	s := MustCompile("!x{a}|b", Options{Schemaless: true, Alphabet: []byte("ab")})
	rel := s.Eval([]byte("b"))
	if rel.Len() != 1 || !rel.Contains(Tuple{}) {
		t.Errorf("schemaless Eval = %v", rel)
	}
	ok, err := s.ModelCheck([]byte("b"), Tuple{})
	if err != nil || !ok {
		t.Errorf("schemaless ModelCheck = %v %v", ok, err)
	}
	if c := s.Count([]byte("a")); c != 1 {
		t.Errorf("Count = %d", c)
	}
}
