package docspanner

import (
	"context"
	"strings"
	"testing"
)

func abSpanner(t *testing.T, pattern string) *Spanner {
	t.Helper()
	s, err := Compile(pattern, Options{Alphabet: []byte("ab")})
	if err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	return s
}

func abQuery(t *testing.T, pattern string) *Query {
	t.Helper()
	q, err := Q(abSpanner(t, pattern))
	if err != nil {
		t.Fatalf("Q(%q): %v", pattern, err)
	}
	return q
}

func TestQueryExplainShowsRewrites(t *testing.T) {
	// x cannot have content "ab" and "ba" at the same span, so the lint
	// prune replaces the whole join by the empty plan.
	q := abQuery(t, ".*!x{ab}.*").Join(abQuery(t, ".*!x{ba}.*"))
	out := q.Explain()
	t.Logf("explain:\n%s", out)
	for _, want := range []string{"rewrites:", "lint-prune", "SP003", "[empty]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	if got := q.Eval([]byte("abba")); got.Len() != 0 {
		t.Errorf("pruned join evaluated non-empty: %v", got)
	}
	// The planner-off variant keeps the join and must agree.
	off := q.WithPlan(PlanOptions{DisableRewrites: true, NaiveBackend: true})
	if !strings.Contains(off.Explain(), "rewrites: disabled") {
		t.Errorf("planner-off Explain:\n%s", off.Explain())
	}
	if got := off.Eval([]byte("abba")); got.Len() != 0 {
		t.Errorf("baseline join evaluated non-empty: %v", got)
	}
}

func TestQueryStreamingAndEarlyStop(t *testing.T) {
	q := abQuery(t, ".*!x{ab}.*").Union(abQuery(t, "a*!x{ba}(a|b)*"))
	if !q.Streaming() {
		t.Fatalf("fused union not streaming:\n%s", q.Explain())
	}
	doc := []byte(strings.Repeat("ab", 32))
	want := q.WithPlan(PlanOptions{DisableRewrites: true, NaiveBackend: true}).Eval(doc)
	if got := q.Eval(doc); !got.Equal(want) {
		t.Fatalf("fused union disagrees with baseline:\n got %v\nwant %v", got, want)
	}
	if got := q.Count(doc); got != want.Len() {
		t.Errorf("Count = %d, want %d", got, want.Len())
	}
	n := 0
	q.Enumerate(doc, func(Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop delivered %d tuples, want 3", n)
	}
}

func TestNewQueryAutoToCore(t *testing.T) {
	s := abSpanner(t, "!x{(a|b)+}&x")
	if _, err := Q(s); err == nil || !strings.Contains(err.Error(), "AutoToCore") {
		t.Fatalf("Q on a refl-spanner: err = %v, want AutoToCore hint", err)
	}
	q, err := NewQuery(s, QueryOptions{AutoToCore: true})
	if err != nil {
		t.Fatalf("NewQuery AutoToCore: %v", err)
	}
	for _, doc := range []string{"", "abab", "aa", "abba", "aabaab"} {
		want := s.Eval([]byte(doc))
		if got := q.Eval([]byte(doc)); !got.Equal(want) {
			t.Errorf("doc %q: AutoToCore query %v, refl spanner %v\nplan:\n%s",
				doc, got, want, q.Explain())
		}
	}
	// Unbounded references are provably outside the core fragment.
	unb := abSpanner(t, "a+!x{b+}(a+&x)*a+")
	if _, err := NewQuery(unb, QueryOptions{AutoToCore: true}); err == nil {
		t.Error("AutoToCore accepted an unbounded-reference spanner")
	}
}

func TestQueryIndexViaPlanner(t *testing.T) {
	// The union fuses to a single scan, so the compressed index exists.
	q := abQuery(t, ".*!x{ab}.*").Union(abQuery(t, "a*!x{ba}(a|b)*"))
	ix, err := q.Index()
	if err != nil {
		t.Fatalf("Index on a fusable query: %v", err)
	}
	doc := []byte(strings.Repeat("abba", 16))
	d := CompressDocument(doc)
	if got, want := ix.Eval(d), q.Eval(doc); !got.Equal(want) {
		t.Errorf("index eval %v, want %v", got, want)
	}
	if got, want := q.EvalCompressed(d), q.Eval(doc); !got.Equal(want) {
		t.Errorf("EvalCompressed %v, want %v", got, want)
	}
	if got, want := q.CountCompressed(d), q.Count(doc); got != want {
		t.Errorf("CountCompressed = %d, want %d", got, want)
	}

	// A string-equality selection leaves residual algebra: no index, but
	// compressed evaluation still works through the plan.
	sel := abQuery(t, ".*b!x{a+}b.*b!y{a+}b.*").SelectEqual("x", "y")
	if _, err := sel.Index(); err == nil || !strings.Contains(err.Error(), "plan") {
		t.Fatalf("Index on a selection query: err = %v, want plan-shape error", err)
	}
	if got, want := sel.EvalCompressed(d), sel.Eval(doc); !got.Equal(want) {
		t.Errorf("selection EvalCompressed %v, want %v", got, want)
	}
}

func TestBatchHelpersTakeQueries(t *testing.T) {
	ctx := context.Background()
	q := abQuery(t, ".*!x{ab}.*")
	docs := [][]byte{[]byte("abab"), []byte("bba"), []byte("aab")}
	rels, err := EvalDocs(ctx, q, docs, ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatalf("EvalDocs: %v", err)
	}
	for i, d := range docs {
		if !rels[i].Equal(q.Eval(d)) {
			t.Errorf("EvalDocs[%d] = %v, want %v", i, rels[i], q.Eval(d))
		}
	}
	seen := 0
	err = EnumerateDocs(ctx, q, docs, ParallelOptions{Workers: 2}, func(int, Tuple) bool {
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("EnumerateDocs: %v", err)
	}
	want := 0
	for _, d := range docs {
		want += q.Count(d)
	}
	if seen != want {
		t.Errorf("EnumerateDocs delivered %d tuples, want %d", seen, want)
	}

	cdocs := []*Document{CompressDocument(docs[0]), DocumentFromBytes(docs[1])}
	crels, err := EvalCompressedDocs(ctx, q, cdocs, ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatalf("EvalCompressedDocs: %v", err)
	}
	for i, d := range cdocs {
		if !crels[i].Equal(q.EvalCompressed(d)) {
			t.Errorf("EvalCompressedDocs[%d] = %v, want %v", i, crels[i], q.EvalCompressed(d))
		}
	}
}

func TestNormalFormSatisfiesEvaluator(t *testing.T) {
	q := abQuery(t, ".*!x{a+}!y{b+}.*").SelectEqual("x", "y").Project("x")
	nf, err := q.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	equal, ce, err := EquivalentUpTo(q, nf, []byte("ab"), 6)
	if err != nil {
		t.Fatalf("EquivalentUpTo: %v", err)
	}
	if !equal {
		t.Errorf("normal form disagrees with query on %q", ce)
	}
}
