package docspanner

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"

	"docspanner/internal/automata"
	"docspanner/internal/slp"
	"docspanner/internal/slpmatch"
)

// Document is an SLP-compressed document (Section 4 of the survey). It is
// immutable; edits produce new documents that share structure with the
// old ones.
type Document struct {
	root *slp.Node
}

// CompressDocument compresses plain bytes into an SLP with Re-Pair and
// makes it strongly balanced (the precondition of the compressed
// evaluation and CDE guarantees, Section 4.1).
func CompressDocument(doc []byte) *Document {
	return &Document{root: slp.Balance(slp.Compress(doc))}
}

// DocumentFromBytes wraps plain bytes in a balanced but uncompressed SLP
// (2n−1 nodes) — the baseline representation.
func DocumentFromBytes(doc []byte) *Document {
	return &Document{root: slp.FromBytes(doc)}
}

// RepeatDocument derives the k-fold repetition of a document using
// O(log k) additional nodes — exponential compression.
func RepeatDocument(base *Document, k int64) *Document {
	return &Document{root: slp.Repeat(base.root, k)}
}

// Len returns the document length.
func (d *Document) Len() int64 { return d.root.Len() }

// GrammarSize returns the SLP size |S| (number of distinct DAG nodes).
func (d *Document) GrammarSize() int { return d.root.Size() }

// Bytes decompresses the document.
func (d *Document) Bytes() []byte { return d.root.Bytes() }

// Byte returns the i-th byte (0-based) in O(log n).
func (d *Document) Byte(i int64) byte { return d.root.Byte(i) }

// Node exposes the underlying SLP node for interoperation with the
// internal/slp package.
func (d *Document) Node() *slp.Node { return d.root }

// DocDB is an SLP-represented document database supporting complex
// document editing (Section 4.3).
type DocDB struct {
	db *slp.DB
}

// NewDocDB returns an empty database.
func NewDocDB() *DocDB { return &DocDB{db: slp.NewDB()} }

// Add stores a document under a name.
func (db *DocDB) Add(name string, d *Document) { db.db.Add(name, d.Node()) }

// Get retrieves a stored document.
func (db *DocDB) Get(name string) (*Document, bool) {
	n, ok := db.db.Get(name)
	if !ok {
		return nil, false
	}
	return &Document{root: n}, true
}

// Names lists stored documents.
func (db *DocDB) Names() []string { return db.db.Names() }

// Remove drops the named document from the database. SLP nodes shared
// with other documents remain reachable through them.
func (db *DocDB) Remove(name string) { db.db.Remove(name) }

// Size returns the total number of distinct SLP nodes across the
// database (shared nodes counted once).
func (db *DocDB) Size() int { return db.db.Size() }

// Edit evaluates a CDE expression such as
//
//	insert(delete(D3,2,5), extract(D7,5,21), 12)
//
// and stores the result under name, in time O(|φ|·log d) without
// decompressing any document (Section 4.3). Positions are 1-based and
// inclusive, following the paper.
// CDEError is the typed error of CDE parse and evaluation failures
// (re-exported from internal/slp). Code is one of the CDE… constants;
// Offset locates parse errors in the expression text (-1 for evaluation
// errors); Op is the textual form of the failing operation.
type CDEError = slp.CDEError

// CDE error codes (re-exported): parse failure, unknown document
// reference, out-of-range position.
const (
	CDEParseCode      = slp.CDEParseCode
	CDEUnknownDocCode = slp.CDEUnknownDocCode
	CDERangeCode      = slp.CDERangeCode
)

func (db *DocDB) Edit(name, expr string) (*Document, error) {
	e, err := slp.ParseCDE(expr)
	if err != nil {
		return nil, err
	}
	n, err := db.db.EvalAndAdd(name, e)
	if err != nil {
		return nil, err
	}
	return &Document{root: n}, nil
}

// Index is the compressed-evaluation index of a regular spanner: once
// built, it enumerates the spanner's results over SLP-compressed
// documents with preprocessing linear in the SLP size and delay
// O(log |D|) (Section 4.2), and it extends incrementally across CDE
// edits (Section 4.3). Per-node data lives in a concurrent cache shared
// by every Index over the same spanner, so an Index is safe for
// concurrent use and a database of documents pays for each shared SLP
// node once, no matter how many goroutines touch it. Documents
// themselves are immutable and freely shareable.
type Index struct {
	ix *slpmatch.Index
	// counter is built lazily on first ExactCount. Racing initializations
	// are harmless: NewCounter hash-conses the core per automaton, so all
	// winners are equivalent.
	counter atomic.Pointer[slpmatch.Counter]
}

// Index builds (or returns a cached) compressed-evaluation index for a
// regular spanner.
func (s *Spanner) Index() (*Index, error) {
	if !s.IsRegular() {
		return nil, fmt.Errorf("docspanner: compressed evaluation is implemented for regular spanners")
	}
	return &Index{ix: slpmatch.NewIndex(s.dEVA())}, nil
}

// Warm runs the preprocessing for a document (linear in its SLP size;
// shared nodes across documents are processed once).
func (ix *Index) Warm(d *Document) { ix.ix.Warm(d.Node()) }

// WarmParallel is Warm with the independent nodes of each SLP DAG level
// computed concurrently by workers goroutines (GOMAXPROCS if
// workers ≤ 0) — the preprocessing of a large document spread over
// cores.
func (ix *Index) WarmParallel(d *Document, workers int) {
	ix.ix.WarmParallel(d.Node(), workers)
}

// WarmStats reports the work one WarmDelta call did: nodes recomputed
// (the O(log d) edit spine), distinct cached subtree roots reused, and
// nodes already cached before the call. It aliases the slpmatch type so
// the counters stay per-core comparable across layers.
type WarmStats = slpmatch.WarmStats

// WarmDelta brings the index up to date after a CDE edit that turned old
// into cur: only the O(log d) fresh spine nodes are recomputed; every
// subtree cur shares with old is reused through the cache. When the
// index's exact counter has been used (ExactCount), its count matrices
// are maintained too, so live counts stay one cache hit away. A nil old
// document warms cur from whatever is cached.
func (ix *Index) WarmDelta(old, cur *Document) WarmStats {
	var oldRoot *slp.Node
	if old != nil {
		oldRoot = old.Node()
	}
	st := ix.ix.WarmDelta(oldRoot, cur.Node())
	if ct := ix.counter.Load(); ct != nil {
		st.Add(ct.WarmDelta(oldRoot, cur.Node()))
	}
	return st
}

// WarmDB preprocesses every document of a database. Nodes shared between
// documents are computed exactly once (they hit the shared cache), and
// each document's fresh nodes are computed bottom-up in parallel.
func (ix *Index) WarmDB(db *DocDB, workers int) {
	for _, name := range db.Names() {
		if d, ok := db.Get(name); ok {
			ix.ix.WarmParallel(d.Node(), workers)
		}
	}
}

// Enumerate streams the result tuples on the compressed document.
func (ix *Index) Enumerate(d *Document, f func(Tuple) bool) {
	ix.ix.Each(d.Node(), f)
}

// Count returns the number of result tuples.
func (ix *Index) Count(d *Document) int { return ix.ix.Count(d.Node()) }

// Eval materializes the result relation.
func (ix *Index) Eval(d *Document) *Relation { return ix.ix.All(d.Node()) }

// EvalCompressed is Eval under the name the CompressedEvaluator
// interface shares with Query.
func (ix *Index) EvalCompressed(d *Document) *Relation { return ix.Eval(d) }

// EnumerateCompressed is Enumerate under the name the
// CompressedStreamEvaluator interface shares with Query.
func (ix *Index) EnumerateCompressed(d *Document, f func(Tuple) bool) { ix.Enumerate(d, f) }

// NonEmpty decides S(D) ≠ ∅ in compressed time.
func (ix *Index) NonEmpty(d *Document) bool { return ix.ix.NonEmpty(d.Node()) }

// ExactCount returns the exact number of result tuples on the compressed
// document via big-integer matrix counting — polynomial in the SLP size
// even when the count itself is astronomical.
func (ix *Index) ExactCount(d *Document) *big.Int {
	ct := ix.counter.Load()
	if ct == nil {
		ct = slpmatch.NewCounter(ix.ix.DEVA())
		ix.counter.Store(ct)
	}
	return ct.Count(d.Node())
}

// EvalCompressed evaluates the query directly on an SLP-compressed
// document: fused regular subplans run the compressed matcher on the
// grammar (never decompressing), and only operators that genuinely need
// the text — string-equality selections, refl scans — trigger one lazy,
// shared decompression.
func (q *Query) EvalCompressed(d *Document) *Relation {
	return q.plan().EvalSLP(d.Node())
}

// EnumerateCompressed streams the query's tuples on an SLP-compressed
// document; return false from f to stop early.
func (q *Query) EnumerateCompressed(d *Document, f func(Tuple) bool) {
	q.plan().EnumerateSLP(d.Node(), f)
}

// CountCompressed counts the query's result tuples on an SLP-compressed
// document.
func (q *Query) CountCompressed(d *Document) int {
	return q.plan().CountSLP(d.Node())
}

// EnumerateCompressedContext is EnumerateCompressed with cancellation,
// under the same per-tuple contract as EnumerateContext.
func (q *Query) EnumerateCompressedContext(ctx context.Context, d *Document, f func(Tuple) bool) error {
	return enumerateWithContext(ctx, f, func(g func(Tuple) bool) {
		q.plan().EnumerateSLP(d.Node(), g)
	})
}

// CountCompressedContext is CountCompressed with cancellation; on
// cancellation the partial count so far is returned alongside the
// context's error. Single-scan plans count through the compressed
// index's tuple-free walk, polling the context per counted tuple.
func (q *Query) CountCompressedContext(ctx context.Context, d *Document) (int, error) {
	return countWithContext(ctx, func(poll func() bool) (int, bool) {
		return q.plan().CountSLPPoll(d.Node(), poll)
	})
}

// Index builds a compressed-evaluation index for the query, available
// exactly when the planner collapses the whole query into one regular
// scan (a single fused vset-automaton) — the plan shape the logarithmic-
// delay compressed enumeration of Section 4.2 requires. Queries with
// residual algebra (unfusable joins, selections, refl scans) return an
// error; they can still evaluate on compressed documents with
// EvalCompressed.
func (q *Query) Index() (*Index, error) {
	nfa, ok := q.plan().SingleScan()
	if !ok {
		return nil, fmt.Errorf("docspanner: Query.Index needs a plan that fuses to a single regular scan (plan:\n%s)", q.Explain())
	}
	return &Index{ix: slpmatch.NewIndex(automata.DeterminizeCached(nfa))}, nil
}

// WriteTo serializes the database (the shared SLP DAG plus document
// roots) without decompressing anything; the output size is proportional
// to the grammar, not the documents.
func (db *DocDB) WriteTo(w io.Writer) (int64, error) { return db.db.WriteTo(w) }

// ReadDocDB loads a database written by WriteTo, restoring structure
// sharing exactly.
func ReadDocDB(r io.Reader) (*DocDB, error) {
	inner, err := slp.ReadDB(r)
	if err != nil {
		return nil, err
	}
	return &DocDB{db: inner}, nil
}

// WriteToChecked is WriteTo wrapped in a length-prefixed CRC-32C frame,
// so a torn or corrupted persisted database is detected on load instead
// of silently losing a suffix of its nodes. This is the on-disk format
// the spannerd storage snapshots use.
func (db *DocDB) WriteToChecked(w io.Writer) (int64, error) { return db.db.WriteToChecked(w) }

// ReadDocDBChecked loads a database written by WriteToChecked, verifying
// the checksum before trusting any node, and consuming exactly the frame
// from r.
func ReadDocDBChecked(r io.Reader) (*DocDB, error) {
	inner, err := slp.ReadDBChecked(r)
	if err != nil {
		return nil, err
	}
	return &DocDB{db: inner}, nil
}
