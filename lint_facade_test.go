package docspanner_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"docspanner"
)

// TestSpannerLint exercises the facade entry point on clean and dirty
// spanners of both classes.
func TestSpannerLint(t *testing.T) {
	clean := docspanner.MustCompile(`!key{[a-z]+}=!val{[0-9]+}`, docspanner.Options{})
	if ds := clean.Lint(); len(ds) != 0 {
		t.Errorf("clean pattern should have no diagnostics, got %v", ds)
	}
	rs := docspanner.MustCompile(`!x{a+}b&x`, docspanner.Options{})
	if rs.IsRegular() {
		t.Fatal("pattern with a reference should compile to a refl-spanner")
	}
	if ds := rs.Lint(); len(ds) != 0 {
		t.Errorf("satisfiable refl-spanner should have no diagnostics, got %v", ds)
	}
}

// TestQueryLint pins that Query.Lint sees the whole expression tree and
// that the compiled pattern's AST reaches the refl-rewrite pass (SP007)
// through the facade.
func TestQueryLint(t *testing.T) {
	s := docspanner.MustCompile(`!x{a+}b!y{a+}`, docspanner.Options{})
	q := docspanner.MustQ(s).SelectEqual("x", "y")

	ds := q.Lint()
	var sawRewrite bool
	for _, d := range ds {
		if d.Code == "SP007" {
			sawRewrite = true
			if d.Severity != docspanner.SeverityInfo {
				t.Errorf("SP007 should be info, got %v", d.Severity)
			}
		}
	}
	if !sawRewrite {
		t.Fatalf("expected an SP007 refl-rewrite hint, got %v", ds)
	}

	// Degenerate projection through the combinators.
	bad := docspanner.MustQ(s).Project("nosuchvar")
	var sawProj bool
	for _, d := range bad.Lint() {
		if d.Code == "SP004" {
			sawProj = true
		}
	}
	if !sawProj {
		t.Fatalf("expected an SP004 diagnostic, got %v", bad.Lint())
	}

	// Diagnostics from the facade round-trip through encoding/json using
	// the re-exported alias types.
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []docspanner.Diagnostic
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatalf("JSON round trip changed diagnostics:\n  in:  %v\n  out: %v", ds, back)
	}
}

// TestIsCoreIsRegularPolarity pins the naming and polarity conventions of
// the classification predicates against the survey's class hierarchy
// (Sections 2.3 and 2.4):
//
//   - Query.IsCore is true iff the expression uses string-equality
//     selection ς= somewhere — i.e. true flags the *harder* class, the one
//     with undecidable containment and equivalence.
//   - Query.IsRegular is the exact negation.
//   - Spanner.Hierarchical is true for the *benign* property (all
//     extractable tuples have disjoint-or-nested spans).
func TestIsCoreIsRegularPolarity(t *testing.T) {
	// Both operands admit documents in a+b+, so the join is satisfiable
	// (an unsatisfiable join is pruned by the SP003-driven rewrite and
	// never reaches the plan passes).
	a := docspanner.MustCompile(`!x{a+}b+`, docspanner.Options{})
	b := docspanner.MustCompile(`a+!y{b+}`, docspanner.Options{})

	cases := []struct {
		name     string
		query    *docspanner.Query
		wantCore bool
	}{
		{"primitive spanner", docspanner.MustQ(a), false},
		{"union of primitives", docspanner.MustQ(a).Union(docspanner.MustQ(b)), false},
		{"join of primitives", docspanner.MustQ(a).Join(docspanner.MustQ(b)), false},
		{"projection of a primitive", docspanner.MustQ(a).Project("x"), false},
		{"string-equality selection", docspanner.MustQ(a).Join(docspanner.MustQ(b)).SelectEqual("x", "y"), true},
		{"selection on a single variable (still a selection)", docspanner.MustQ(a).SelectEqual("x"), true},
		{"projection hiding an inner selection", docspanner.MustQ(a).Join(docspanner.MustQ(b)).SelectEqual("x", "y").Project("x"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.query.IsCore(); got != tc.wantCore {
				t.Errorf("IsCore() = %v, want %v", got, tc.wantCore)
			}
			if got := tc.query.IsRegular(); got != !tc.wantCore {
				t.Errorf("IsRegular() = %v, want %v (must be the negation of IsCore)", got, !tc.wantCore)
			}
		})
	}

	// Hierarchicality polarity: regex formulas are hierarchical by
	// construction (true = benign), and the check is regular-only.
	nested := docspanner.MustCompile(`!x{a!y{b}c}`, docspanner.Options{})
	if h, err := nested.Hierarchical(); err != nil || !h {
		t.Errorf("Hierarchical() = %v, %v; want true, nil for a regex formula", h, err)
	}
	rs := docspanner.MustCompile(`!x{a+}&x`, docspanner.Options{})
	if _, err := rs.Hierarchical(); err == nil {
		t.Error("Hierarchical() on a refl-spanner should error, not guess")
	}
}

// TestQueryLintPlanPassSP009 pins the determinization-blowup pass
// through the facade: a small NFA whose DFA is exponential fires SP009
// exactly when the DFA exceeds the configured backend gate, and the
// warning surfaces in EXPLAIN.
func TestQueryLintPlanPassSP009(t *testing.T) {
	// (a|b)*a(a|b)^10: ~70 NFA states, >1000 DFA states.
	pat := "(a|b)*a" + strings.Repeat("(a|b)", 10)
	s := docspanner.MustCompile(pat, docspanner.Options{})

	hasCode := func(ds []docspanner.Diagnostic, code string) bool {
		for _, d := range ds {
			if d.Code == code {
				return true
			}
		}
		return false
	}

	// Gate at 200: the NFA passes (≈70 states) but the DFA blows past it.
	q := docspanner.MustQ(s).WithPlan(docspanner.PlanOptions{MaxDeterminizeStates: 200})
	ds := q.Lint()
	if !hasCode(ds, "SP009") {
		t.Fatalf("expected SP009 with MaxDeterminizeStates=200, got %v", ds)
	}
	for _, d := range ds {
		if d.Code == "SP009" && d.Severity != docspanner.SeverityWarning {
			t.Errorf("SP009 should be a warning, got %v", d.Severity)
		}
	}
	if expl := q.Explain(); !strings.Contains(expl, "warnings:") || !strings.Contains(expl, "SP009") {
		t.Errorf("EXPLAIN should surface the SP009 warning:\n%s", expl)
	}

	// Default gate (4096): the ~2^10-state DFA fits, no warning.
	if ds := docspanner.MustQ(s).Lint(); hasCode(ds, "SP009") {
		t.Errorf("SP009 should not fire under the default gate, got %v", ds)
	}

	// Gate below the NFA size: backend selection goes naive, so the
	// blowup never happens and must not be reported.
	qn := docspanner.MustQ(s).WithPlan(docspanner.PlanOptions{MaxDeterminizeStates: 8})
	if ds := qn.Lint(); hasCode(ds, "SP009") {
		t.Errorf("SP009 should not fire when the gate already routes the scan to the naive backend, got %v", ds)
	}
}

// TestQueryLintPlanPassSP010 pins the join-cost pass: SP010 fires only
// when an expensive join survives the rewrite pipeline.
func TestQueryLintPlanPassSP010(t *testing.T) {
	// Both operands admit documents in a+b+, so the join is satisfiable
	// (an unsatisfiable join is pruned by the SP003-driven rewrite and
	// never reaches the plan passes).
	a := docspanner.MustCompile(`!x{a+}b+`, docspanner.Options{})
	b := docspanner.MustCompile(`a+!y{b+}`, docspanner.Options{})

	hasCode := func(ds []docspanner.Diagnostic, code string) bool {
		for _, d := range ds {
			if d.Code == code {
				return true
			}
		}
		return false
	}

	// MaxFusedStates=1 disables join fusion, so the disjoint-schema join
	// survives into the physical plan as a materialized cross product.
	q := docspanner.MustQ(a).Join(docspanner.MustQ(b)).
		WithPlan(docspanner.PlanOptions{MaxFusedStates: 1})
	ds := q.Lint()
	if !hasCode(ds, "SP010") {
		t.Fatalf("expected SP010 on a surviving cross-product join, got %v", ds)
	}
	if expl := q.Explain(); !strings.Contains(expl, "SP010") {
		t.Errorf("EXPLAIN should surface the SP010 warning:\n%s", expl)
	}

	// Under the default pipeline the same join fuses into one automaton:
	// no join survives into the plan, so the plan-level pass stays
	// silent (the expression-level SP003 cartesian-product warning
	// remains).
	ds = docspanner.MustQ(a).Join(docspanner.MustQ(b)).Lint()
	if hasCode(ds, "SP010") {
		t.Errorf("SP010 should not fire once the join is fused away, got %v", ds)
	}
	if !hasCode(ds, "SP003") {
		t.Errorf("expression-level SP003 should still report the cartesian product, got %v", ds)
	}

	// Schemaless weak-binding case: x is optional on one side of a
	// shared-variable join, so ⊥-tuples join near-universally.
	opt := docspanner.MustCompile(`(!x{a+}|b+)c`, docspanner.Options{Schemaless: true})
	req := docspanner.MustCompile(`!x{a+}c`, docspanner.Options{Schemaless: true})
	qw := docspanner.MustQ(opt).Join(docspanner.MustQ(req)).
		WithPlan(docspanner.PlanOptions{MaxFusedStates: 1})
	if ds := qw.Lint(); !hasCode(ds, "SP010") {
		t.Errorf("expected SP010 for a weakly-bound schemaless join, got %v", ds)
	}

	// Same join with x mandatory on both sides: shared variable always
	// bound, no blowup to report.
	both := docspanner.MustQ(req).Join(docspanner.MustQ(req)).
		WithPlan(docspanner.PlanOptions{MaxFusedStates: 1})
	if ds := both.Lint(); hasCode(ds, "SP010") {
		t.Errorf("SP010 should not fire when shared variables are always bound, got %v", ds)
	}

	// The select-over-cross-product idiom is exempt, matching SP003: an
	// enclosing selection class relating both join sides means the cross
	// product carries intent (ς=(a ⋈ b), the canonical core-query shape).
	sel := docspanner.MustQ(a).Join(docspanner.MustQ(b)).SelectEqual("x", "y").
		WithPlan(docspanner.PlanOptions{MaxFusedStates: 1})
	if ds := sel.Lint(); hasCode(ds, "SP010") {
		t.Errorf("SP010 should not fire under a selection relating both sides, got %v", ds)
	}
}
