package docspanner_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"docspanner"
)

// TestSpannerLint exercises the facade entry point on clean and dirty
// spanners of both classes.
func TestSpannerLint(t *testing.T) {
	clean := docspanner.MustCompile(`!key{[a-z]+}=!val{[0-9]+}`, docspanner.Options{})
	if ds := clean.Lint(); len(ds) != 0 {
		t.Errorf("clean pattern should have no diagnostics, got %v", ds)
	}
	rs := docspanner.MustCompile(`!x{a+}b&x`, docspanner.Options{})
	if rs.IsRegular() {
		t.Fatal("pattern with a reference should compile to a refl-spanner")
	}
	if ds := rs.Lint(); len(ds) != 0 {
		t.Errorf("satisfiable refl-spanner should have no diagnostics, got %v", ds)
	}
}

// TestQueryLint pins that Query.Lint sees the whole expression tree and
// that the compiled pattern's AST reaches the refl-rewrite pass (SP007)
// through the facade.
func TestQueryLint(t *testing.T) {
	s := docspanner.MustCompile(`!x{a+}b!y{a+}`, docspanner.Options{})
	q := docspanner.MustQ(s).SelectEqual("x", "y")

	ds := q.Lint()
	var sawRewrite bool
	for _, d := range ds {
		if d.Code == "SP007" {
			sawRewrite = true
			if d.Severity != docspanner.SeverityInfo {
				t.Errorf("SP007 should be info, got %v", d.Severity)
			}
		}
	}
	if !sawRewrite {
		t.Fatalf("expected an SP007 refl-rewrite hint, got %v", ds)
	}

	// Degenerate projection through the combinators.
	bad := docspanner.MustQ(s).Project("nosuchvar")
	var sawProj bool
	for _, d := range bad.Lint() {
		if d.Code == "SP004" {
			sawProj = true
		}
	}
	if !sawProj {
		t.Fatalf("expected an SP004 diagnostic, got %v", bad.Lint())
	}

	// Diagnostics from the facade round-trip through encoding/json using
	// the re-exported alias types.
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []docspanner.Diagnostic
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatalf("JSON round trip changed diagnostics:\n  in:  %v\n  out: %v", ds, back)
	}
}

// TestIsCoreIsRegularPolarity pins the naming and polarity conventions of
// the classification predicates against the survey's class hierarchy
// (Sections 2.3 and 2.4):
//
//   - Query.IsCore is true iff the expression uses string-equality
//     selection ς= somewhere — i.e. true flags the *harder* class, the one
//     with undecidable containment and equivalence.
//   - Query.IsRegular is the exact negation.
//   - Spanner.Hierarchical is true for the *benign* property (all
//     extractable tuples have disjoint-or-nested spans).
func TestIsCoreIsRegularPolarity(t *testing.T) {
	a := docspanner.MustCompile(`!x{a+}`, docspanner.Options{})
	b := docspanner.MustCompile(`!y{b+}`, docspanner.Options{})

	cases := []struct {
		name     string
		query    *docspanner.Query
		wantCore bool
	}{
		{"primitive spanner", docspanner.MustQ(a), false},
		{"union of primitives", docspanner.MustQ(a).Union(docspanner.MustQ(b)), false},
		{"join of primitives", docspanner.MustQ(a).Join(docspanner.MustQ(b)), false},
		{"projection of a primitive", docspanner.MustQ(a).Project("x"), false},
		{"string-equality selection", docspanner.MustQ(a).Join(docspanner.MustQ(b)).SelectEqual("x", "y"), true},
		{"selection on a single variable (still a selection)", docspanner.MustQ(a).SelectEqual("x"), true},
		{"projection hiding an inner selection", docspanner.MustQ(a).Join(docspanner.MustQ(b)).SelectEqual("x", "y").Project("x"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.query.IsCore(); got != tc.wantCore {
				t.Errorf("IsCore() = %v, want %v", got, tc.wantCore)
			}
			if got := tc.query.IsRegular(); got != !tc.wantCore {
				t.Errorf("IsRegular() = %v, want %v (must be the negation of IsCore)", got, !tc.wantCore)
			}
		})
	}

	// Hierarchicality polarity: regex formulas are hierarchical by
	// construction (true = benign), and the check is regular-only.
	nested := docspanner.MustCompile(`!x{a!y{b}c}`, docspanner.Options{})
	if h, err := nested.Hierarchical(); err != nil || !h {
		t.Errorf("Hierarchical() = %v, %v; want true, nil for a regex formula", h, err)
	}
	rs := docspanner.MustCompile(`!x{a+}&x`, docspanner.Options{})
	if _, err := rs.Hierarchical(); err == nil {
		t.Error("Hierarchical() on a refl-spanner should error, not guess")
	}
}
