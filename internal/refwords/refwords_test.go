package refwords

import (
	"testing"
	"testing/quick"

	"docspanner/internal/spans"
)

func TestFromStringAndString(t *testing.T) {
	w := FromString(">z a >x bc >y ac <x ac <y <z bbaa")
	if got := w.String(); got != ">za>xbc>yac<xac<y<zbbaa" {
		t.Errorf("String = %q", got)
	}
	if w.HasRefs() {
		t.Error("no refs expected")
	}
	r := FromString(">x ab <x &x")
	if !r.HasRefs() {
		t.Error("refs expected")
	}
}

func TestEraseAndSpanTuple(t *testing.T) {
	// The running example of Section 2.1:
	// z▷ a x▷ bc y▷ ac ◁x ac ◁y ◁z bbaa represents document abcacacbbaa
	// with t(x)=[2,6⟩, t(y)=[4,8⟩, t(z)=[1,8⟩.
	w := FromString(">za>xbc>yac<xac<y<zbbaa")
	if got := string(w.Erase()); got != "abcacacbbaa" {
		t.Errorf("Erase = %q", got)
	}
	tup := w.SpanTuple()
	want := spans.NewTuple("x", spans.S(2, 6), "y", spans.S(4, 8), "z", spans.S(1, 8))
	if !tup.Equal(want) {
		t.Errorf("SpanTuple = %v, want %v", tup, want)
	}
}

func TestValidate(t *testing.T) {
	vars := spans.NewVarSet("x", "y")
	good := FromString(">xa<x>yb<y")
	if err := good.Validate(vars, true); err != nil {
		t.Errorf("valid word rejected: %v", err)
	}
	partial := FromString(">xa<x")
	if err := partial.Validate(vars, true); err == nil {
		t.Error("functional validation should reject missing variable")
	}
	if err := partial.Validate(vars, false); err != nil {
		t.Errorf("schemaless validation rejected: %v", err)
	}
	cases := []string{
		">xa>xb<x<x", // duplicate open (and close)
		"<xa>x",      // close before open
		">xab",       // unclosed
		">za<z",      // unknown variable
	}
	for _, c := range cases {
		if err := FromString(c).Validate(vars, false); err == nil {
			t.Errorf("invalid word %q accepted", c)
		}
	}
}

func TestValidateRef(t *testing.T) {
	vars := spans.NewVarSet("x", "y")
	good := FromString(">xab<x>y&x<y")
	if err := good.ValidateRef(vars, true); err != nil {
		t.Errorf("valid ref-word rejected: %v", err)
	}
	inSpan := FromString(">xa&xb<x")
	if err := inSpan.ValidateRef(vars, false); err == nil {
		t.Error("reference inside own span accepted")
	}
	noMarkers := FromString(">xa<x&y")
	if err := noMarkers.ValidateRef(spans.NewVarSet("x"), false); err == nil {
		t.Error("reference to unmarked variable accepted")
	}
}

func TestFromTupleRoundTrip(t *testing.T) {
	doc := []byte("abcacacbbaa")
	tup := spans.NewTuple("x", spans.S(2, 6), "y", spans.S(4, 8), "z", spans.S(1, 8))
	w := FromTuple(doc, tup)
	if string(w.Erase()) != string(doc) {
		t.Errorf("Erase after FromTuple = %q", w.Erase())
	}
	if !w.SpanTuple().Equal(tup) {
		t.Errorf("SpanTuple after FromTuple = %v", w.SpanTuple())
	}
	if err := w.Validate(tup.Vars(), true); err != nil {
		t.Errorf("FromTuple produced invalid word: %v", err)
	}
}

func TestFromTupleEmptySpan(t *testing.T) {
	doc := []byte("ab")
	tup := spans.NewTuple("x", spans.S(2, 2))
	w := FromTuple(doc, tup)
	if err := w.Validate(tup.Vars(), true); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !w.SpanTuple().Equal(tup) {
		t.Errorf("empty span round trip = %v", w.SpanTuple())
	}
	if got := w.String(); got != "a>x<xb" {
		t.Errorf("canonical empty-span word = %q", got)
	}
}

func TestCanonicalInvariance(t *testing.T) {
	// Two words with the same (doc, tuple) but different consecutive-marker
	// order must canonicalize identically (Section 2.2).
	a := FromString("a<x>yb<y")
	b := FromString("a>y<xb<y")
	// give both an open for x first
	a = append(Word{Open("x")}, a...)
	b = append(Word{Open("x")}, b...)
	ca, cb := a.Canonical(), b.Canonical()
	if ca.String() != cb.String() {
		t.Errorf("canonical forms differ: %q vs %q", ca, cb)
	}
}

func TestDerefSimple(t *testing.T) {
	// α' from (3): a ref-word like a b x▷ab◁x c y▷ x ◁y b
	w := FromString("ab>xab<xc>y&x<yb")
	d, err := w.Deref()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(d.Erase()); got != "ababcabb" {
		t.Errorf("Deref doc = %q", got)
	}
	tup := d.SpanTuple()
	want := spans.NewTuple("x", spans.S(3, 5), "y", spans.S(6, 8))
	if !tup.Equal(want) {
		t.Errorf("Deref tuple = %v, want %v", tup, want)
	}
}

func TestDerefChained(t *testing.T) {
	// The survey's involved example (Section 3.1):
	// w = x▷ aa y▷ bbb ◁x cc x ◁y abc y
	// dereferences to aabbbccaabbbabcbbbccaabbb.
	w := FromString(">xaa>ybbb<xcc&x<yabc&y")
	d, err := w.Deref()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(d.Erase()); got != "aabbbccaabbbabcbbbccaabbb" {
		t.Errorf("Deref doc = %q", got)
	}
	tup := d.SpanTuple()
	// x spans aabbb = [1,6⟩; y spans bbbccaabbb = [3,13⟩.
	want := spans.NewTuple("x", spans.S(1, 6), "y", spans.S(3, 13))
	if !tup.Equal(want) {
		t.Errorf("Deref tuple = %v, want %v", tup, want)
	}
}

func TestDerefCycle(t *testing.T) {
	// x's span references y and y's span references x: unresolvable.
	w := FromString(">xa&y<x>yb&x<y")
	if _, err := w.Deref(); err == nil {
		t.Error("cyclic references accepted")
	}
}

func TestDerefNoRefs(t *testing.T) {
	w := FromString(">xa<x")
	d, err := w.Deref()
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != w.String() {
		t.Error("Deref changed a reference-free word")
	}
}

func TestMarkerSetRoundTrip(t *testing.T) {
	w := FromString(">za>xbc>yac<xac<y<zbbaa")
	msw := w.ToMarkerSets()
	if string(msw.Doc) != "abcacacbbaa" {
		t.Errorf("Doc = %q", msw.Doc)
	}
	// Position 7 (0-based boundary): both ◁y and ◁z occur.
	if len(msw.Sets[7]) != 2 {
		t.Errorf("Sets[7] = %v", msw.Sets[7])
	}
	back := msw.ToWord()
	if !back.SpanTuple().Equal(w.SpanTuple()) {
		t.Errorf("round trip tuple = %v", back.SpanTuple())
	}
	if string(back.Erase()) != string(msw.Doc) {
		t.Error("round trip doc mismatch")
	}
}

func TestMarkerSetEmptySpan(t *testing.T) {
	w := FromString("a>x<xb")
	msw := w.ToMarkerSets()
	back := msw.ToWord()
	if err := back.Validate(spans.NewVarSet("x"), true); err != nil {
		t.Fatalf("flattened empty-span word invalid: %v", err)
	}
	if !back.SpanTuple().Equal(w.SpanTuple()) {
		t.Error("empty span lost in set round trip")
	}
}

// Property: FromTuple/SpanTuple/Erase round trip for random tuples.
func TestRoundTripQuick(t *testing.T) {
	f := func(docSeed []byte, b1, l1, b2, l2 uint8) bool {
		doc := make([]byte, len(docSeed)%16+1)
		for i := range doc {
			var seed byte
			if len(docSeed) > 0 {
				seed = docSeed[i%len(docSeed)]
			}
			doc[i] = 'a' + seed%3
		}
		n := len(doc)
		mk := func(b, l uint8) spans.Span {
			begin := int(b)%n + 1
			end := begin + int(l)%(n+2-begin)
			return spans.S(begin, end)
		}
		tup := spans.NewTuple("x", mk(b1, l1), "y", mk(b2, l2))
		w := FromTuple(doc, tup)
		return string(w.Erase()) == string(doc) &&
			w.SpanTuple().Equal(tup) &&
			w.Validate(tup.Vars(), true) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestItemAndMarkerString(t *testing.T) {
	if got := (Marker{Var: "x"}).String(); got != "x▷" {
		t.Errorf("open marker String = %q", got)
	}
	if got := (Marker{Var: "x", Close: true}).String(); got != "◁x" {
		t.Errorf("close marker String = %q", got)
	}
	if got := Letter('a').String(); got != "a" {
		t.Errorf("letter String = %q", got)
	}
	if got := Open("y").String(); got != "y▷" {
		t.Errorf("open item String = %q", got)
	}
	if got := Ref("z").String(); got != "↩z" {
		t.Errorf("ref item String = %q", got)
	}
}

func TestWordVars(t *testing.T) {
	w := FromString(">xa<x&y")
	if !w.Vars().Equal(spans.NewVarSet("x", "y")) {
		t.Errorf("Vars = %v", w.Vars())
	}
}

func TestMultiCharVarNames(t *testing.T) {
	w := FromString(">(v1)ab<(v1)")
	if !w.Vars().Equal(spans.NewVarSet("v1")) {
		t.Errorf("Vars = %v", w.Vars())
	}
	if got := w.String(); got != ">(v1)ab<(v1)" {
		t.Errorf("String = %q", got)
	}
}
