// Package refwords implements the declarative string representations of
// document spanners described in Section 2.1 and Section 3.1 of Schmid and
// Schweikardt's PODS 2022 survey: subword-marked words (documents with
// marker symbols x▷ and ◁x delimiting the spans of a tuple) and ref-words
// (subword-marked words that additionally contain reference symbols x
// denoting a copy of the factor extracted by variable x).
//
// A set of subword-marked words over Σ and X is exactly a document spanner
// via ⟦L⟧(D) = { st(w) : w ∈ L, e(w) = D }, where e(·) erases markers and
// st(·) reads off the span tuple. Ref-words are first dereferenced by 𝔡(·)
// (Deref) and then interpreted the same way.
package refwords

import (
	"fmt"
	"sort"
	"strings"

	"docspanner/internal/spans"
)

// Kind discriminates the three item kinds of a ref-word.
type Kind uint8

const (
	// KindLetter is a plain alphabet symbol.
	KindLetter Kind = iota
	// KindMarker is an opening or closing marker x▷ / ◁x.
	KindMarker
	// KindRef is a reference symbol x (only in ref-words, Section 3.1).
	KindRef
)

// Marker is one of the meta symbols x▷ (open) or ◁x (close).
type Marker struct {
	Var   spans.Var
	Close bool
}

// String renders the marker in the survey's notation.
func (m Marker) String() string {
	if m.Close {
		return "◁" + string(m.Var)
	}
	return string(m.Var) + "▷"
}

// Item is a single symbol of a (ref-)word: a letter, a marker, or a
// reference.
type Item struct {
	Kind   Kind
	Letter byte      // valid when Kind == KindLetter
	Var    spans.Var // valid when Kind != KindLetter
	Close  bool      // valid when Kind == KindMarker
}

// Letter returns a letter item.
func Letter(b byte) Item { return Item{Kind: KindLetter, Letter: b} }

// Open returns the marker item x▷.
func Open(v spans.Var) Item { return Item{Kind: KindMarker, Var: v} }

// CloseM returns the marker item ◁x.
func CloseM(v spans.Var) Item { return Item{Kind: KindMarker, Var: v, Close: true} }

// Ref returns the reference item x.
func Ref(v spans.Var) Item { return Item{Kind: KindRef, Var: v} }

// String renders the item.
func (it Item) String() string {
	switch it.Kind {
	case KindLetter:
		return string(it.Letter)
	case KindMarker:
		return Marker{it.Var, it.Close}.String()
	default:
		return "↩" + string(it.Var)
	}
}

// Word is a sequence of items; depending on its content it is a plain
// word, a subword-marked word, or a ref-word.
type Word []Item

// FromString parses a compact textual notation: ">x" is the open marker
// x▷, "<x" is the close marker ◁x, "&x" is the reference x, spaces are
// ignored, and every other character is an alphabet symbol. Variable names
// are a single character, or a parenthesized run such as ">(x1)". It is a
// convenience for tests and examples.
func FromString(s string) Word {
	var w Word
	for i := 0; i < len(s); {
		c := s[i]
		if (c == '>' || c == '<' || c == '&') && i+1 < len(s) {
			var v spans.Var
			j := i + 1
			if s[j] == '(' {
				k := strings.IndexByte(s[j:], ')')
				if k < 0 {
					panic(fmt.Sprintf("refwords.FromString: unclosed variable name in %q", s))
				}
				v = spans.Var(s[j+1 : j+k])
				j += k + 1
			} else {
				v = spans.Var(s[j : j+1])
				j++
			}
			switch c {
			case '>':
				w = append(w, Open(v))
			case '<':
				w = append(w, CloseM(v))
			case '&':
				w = append(w, Ref(v))
			}
			i = j
			continue
		}
		if c == ' ' {
			i++
			continue
		}
		w = append(w, Letter(c))
		i++
	}
	return w
}

// String renders the word in the FromString notation (markers as >x / <x,
// references as &x).
func (w Word) String() string {
	var sb strings.Builder
	writeVar := func(v spans.Var) {
		if len(v) == 1 {
			sb.WriteString(string(v))
		} else {
			sb.WriteByte('(')
			sb.WriteString(string(v))
			sb.WriteByte(')')
		}
	}
	for _, it := range w {
		switch it.Kind {
		case KindLetter:
			sb.WriteByte(it.Letter)
		case KindMarker:
			if it.Close {
				sb.WriteByte('<')
			} else {
				sb.WriteByte('>')
			}
			writeVar(it.Var)
		case KindRef:
			sb.WriteByte('&')
			writeVar(it.Var)
		}
	}
	return sb.String()
}

// Erase implements e(·): it removes all markers and returns the document.
// References must have been dereferenced first; Erase panics on them.
func (w Word) Erase() []byte {
	doc := make([]byte, 0, len(w))
	for _, it := range w {
		switch it.Kind {
		case KindLetter:
			doc = append(doc, it.Letter)
		case KindRef:
			panic("refwords: Erase on word with unresolved references")
		}
	}
	return doc
}

// HasRefs reports whether the word contains reference items.
func (w Word) HasRefs() bool {
	for _, it := range w {
		if it.Kind == KindRef {
			return true
		}
	}
	return false
}

// Vars returns the set of variables whose markers or references occur in w.
func (w Word) Vars() spans.VarSet {
	var vs []spans.Var
	for _, it := range w {
		if it.Kind != KindLetter {
			vs = append(vs, it.Var)
		}
	}
	return spans.NewVarSet(vs...)
}

// Validate checks that w is a well-formed subword-marked word over the
// given variables: for every variable, the open marker occurs at most once,
// the close marker occurs at most once, opens precede closes, and a close
// requires an open. If functional is true, every variable in vars must have
// both markers (the classical total semantics of Fagin et al.); otherwise
// markers may be missing entirely (the schemaless semantics, Section 2.2).
// References are rejected; use ValidateRef for ref-words.
func (w Word) Validate(vars spans.VarSet, functional bool) error {
	state := make(map[spans.Var]int) // 0 unseen, 1 open, 2 closed
	for _, it := range w {
		switch it.Kind {
		case KindRef:
			return fmt.Errorf("refwords: unexpected reference &%s in subword-marked word", it.Var)
		case KindMarker:
			if !vars.Contains(it.Var) {
				return fmt.Errorf("refwords: marker for unknown variable %s", it.Var)
			}
			st := state[it.Var]
			if !it.Close {
				if st != 0 {
					return fmt.Errorf("refwords: duplicate open marker %s▷", it.Var)
				}
				state[it.Var] = 1
			} else {
				if st == 0 {
					return fmt.Errorf("refwords: close marker ◁%s before open", it.Var)
				}
				if st == 2 {
					return fmt.Errorf("refwords: duplicate close marker ◁%s", it.Var)
				}
				state[it.Var] = 2
			}
		}
	}
	for v, st := range state {
		if st == 1 {
			return fmt.Errorf("refwords: unclosed marker %s▷", v)
		}
	}
	if functional {
		for _, v := range vars {
			if state[v] != 2 {
				return fmt.Errorf("refwords: variable %s unassigned in functional word", v)
			}
		}
	}
	return nil
}

// ValidateRef checks that w is a well-formed ref-word: marker structure as
// in Validate, plus no reference x occurs between x▷ and ◁x, and every
// reference is to a variable whose markers occur in w.
func (w Word) ValidateRef(vars spans.VarSet, functional bool) error {
	stripped := make(Word, 0, len(w))
	for _, it := range w {
		if it.Kind != KindRef {
			stripped = append(stripped, it)
		}
	}
	if err := stripped.Validate(vars, functional); err != nil {
		return err
	}
	open := make(map[spans.Var]bool)
	seen := make(map[spans.Var]bool)
	for _, it := range w {
		switch it.Kind {
		case KindMarker:
			open[it.Var] = !it.Close
			if it.Close {
				seen[it.Var] = true
			}
		case KindRef:
			if open[it.Var] {
				return fmt.Errorf("refwords: reference &%s inside its own span", it.Var)
			}
		}
	}
	for _, it := range w {
		if it.Kind == KindRef {
			found := false
			for _, jt := range w {
				if jt.Kind == KindMarker && jt.Var == it.Var {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("refwords: reference &%s to variable without markers", it.Var)
			}
		}
	}
	return nil
}

// SpanTuple implements st(·): it reads off the span tuple encoded by the
// marker positions of a subword-marked word. The word must be valid and
// reference-free.
func (w Word) SpanTuple() spans.Tuple {
	t := make(spans.Tuple)
	pos := 1 // 1-based position of the next letter
	for _, it := range w {
		switch it.Kind {
		case KindLetter:
			pos++
		case KindMarker:
			if it.Close {
				s := t[it.Var]
				s.End = pos
				t[it.Var] = s
			} else {
				t[it.Var] = spans.Span{Begin: pos, End: pos}
			}
		case KindRef:
			panic("refwords: SpanTuple on word with unresolved references")
		}
	}
	return t
}

// FromTuple inserts markers into doc as described by t, producing the
// canonical subword-marked word for (doc, t). At every boundary position
// the canonical order is: closes of non-empty spans (by variable), then
// complete empty spans as open-close pairs (by variable), then opens of
// non-empty spans (by variable). This is the normalization referred to as
// "Option 1" in Section 2.2 of the survey.
func FromTuple(doc []byte, t spans.Tuple) Word {
	n := len(doc)
	w := make(Word, 0, n+2*len(t))
	vars := t.Vars()
	for pos := 1; pos <= n+1; pos++ {
		w = appendBoundary(w, t, vars, pos)
		if pos <= n {
			w = append(w, Letter(doc[pos-1]))
		}
	}
	return w
}

func appendBoundary(w Word, t spans.Tuple, vars spans.VarSet, pos int) Word {
	for _, v := range vars {
		s := t[v]
		if s.End == pos && s.Begin < pos {
			w = append(w, CloseM(v))
		}
	}
	for _, v := range vars {
		s := t[v]
		if s.Begin == pos && s.End == pos {
			w = append(w, Open(v), CloseM(v))
		}
	}
	for _, v := range vars {
		s := t[v]
		if s.Begin == pos && s.End > pos {
			w = append(w, Open(v))
		}
	}
	return w
}

// Canonical reorders every block of consecutive markers into the canonical
// order of FromTuple, so that two subword-marked words represent the same
// (document, tuple) pair iff their canonical forms are identical.
func (w Word) Canonical() Word {
	doc := w.Erase()
	return FromTuple(doc, w.SpanTuple())
}

// Deref implements the dereference function 𝔡(·) of Section 3.1: every
// reference x is replaced by the factor extracted for variable x, iterating
// until no references remain (references may depend on each other, as in
// the survey's example where y's span contains a reference to x). The
// substituted content is the letter-and-reference sequence between x▷ and
// ◁x with markers of other variables stripped. Deref returns an error on
// cyclic dependencies or references to unmarked variables.
func (w Word) Deref() (Word, error) {
	cur := w
	for round := 0; ; round++ {
		if !cur.HasRefs() {
			return cur, nil
		}
		if round > len(w)+2 {
			return nil, fmt.Errorf("refwords: cyclic references in %s", w)
		}
		content, err := resolvedContents(cur)
		if err != nil {
			return nil, err
		}
		next := make(Word, 0, len(cur))
		changed := false
		for _, it := range cur {
			if it.Kind == KindRef {
				if c, ok := content[it.Var]; ok {
					next = append(next, c...)
					changed = true
					continue
				}
			}
			next = append(next, it)
		}
		if !changed {
			return nil, fmt.Errorf("refwords: unresolvable references in %s", w)
		}
		cur = next
	}
}

// resolvedContents returns, for every variable whose span content contains
// no unresolved references, that content (letters only).
func resolvedContents(w Word) (map[spans.Var]Word, error) {
	out := make(map[spans.Var]Word)
	depth := make(map[spans.Var]bool)
	partial := make(map[spans.Var]Word)
	poisoned := make(map[spans.Var]bool)
	for _, it := range w {
		switch it.Kind {
		case KindLetter:
			for v, on := range depth {
				if on && !poisoned[v] {
					partial[v] = append(partial[v], it)
				}
			}
		case KindRef:
			for v, on := range depth {
				if on {
					poisoned[v] = true
				}
			}
		case KindMarker:
			if it.Close {
				if depth[it.Var] {
					depth[it.Var] = false
					if !poisoned[it.Var] {
						c := partial[it.Var]
						if c == nil {
							c = Word{}
						}
						out[it.Var] = c
					}
				}
			} else {
				depth[it.Var] = true
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("refwords: no resolvable variable content")
	}
	return out, nil
}

// MarkerSetWord is the extended representation of Section 2.2 (Option 2):
// a document plus, for every boundary position 1..n+1, the set of markers
// occurring there. Sets make the representation canonical because the
// order of consecutive markers is abstracted away.
type MarkerSetWord struct {
	Doc  []byte
	Sets []MarkerSet // length len(Doc)+1; Sets[i] precedes letter i (0-based)
}

// MarkerSet is an ordered list of distinct markers (canonically sorted).
type MarkerSet []Marker

// SortMarkers puts a marker set into canonical order: by variable, with
// the open marker before the close marker of the same variable (so that an
// empty span flattens into a valid open-close pair). Within a set the
// relative order of markers carries no meaning (that is the point of the
// extended representation), so any fixed total order works.
func SortMarkers(ms MarkerSet) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		return !a.Close && b.Close
	})
}

// ToMarkerSets converts a subword-marked word into the extended
// representation, collapsing consecutive markers into sets.
func (w Word) ToMarkerSets() MarkerSetWord {
	doc := w.Erase()
	msw := MarkerSetWord{Doc: doc, Sets: make([]MarkerSet, len(doc)+1)}
	pos := 0
	for _, it := range w {
		switch it.Kind {
		case KindLetter:
			pos++
		case KindMarker:
			msw.Sets[pos] = append(msw.Sets[pos], Marker{it.Var, it.Close})
		}
	}
	for i := range msw.Sets {
		SortMarkers(msw.Sets[i])
	}
	return msw
}

// ToWord flattens the extended representation back into the canonical
// subword-marked word.
func (m MarkerSetWord) ToWord() Word {
	w := make(Word, 0, len(m.Doc)+4)
	for i := 0; i <= len(m.Doc); i++ {
		for _, mk := range m.Sets[i] {
			if mk.Close {
				w = append(w, CloseM(mk.Var))
			} else {
				w = append(w, Open(mk.Var))
			}
		}
		if i < len(m.Doc) {
			w = append(w, Letter(m.Doc[i]))
		}
	}
	// Re-canonicalize: sets may interleave opens/closes arbitrarily, but
	// the flat word must have opens before closes per variable. ToWord is
	// only used for valid set-words, where SortMarkers already guarantees
	// open-before-close within each set.
	return w
}
