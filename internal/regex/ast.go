// Package regex implements the spanner regular-expression dialect of the
// library: ordinary regular expressions extended with variable bindings
// !x{...} (the x▷...◁x of regex-formulas, Section 2.2 of Schmid and
// Schweikardt's PODS 2022 survey) and references &x (the reference symbols
// of ref-words, Section 3.1). Expressions without references compile to
// vset-automata representing regular spanners; expressions built from
// bindings only (no references) are exactly the regex-formulas RGX of
// Fagin et al., which are hierarchical by construction.
package regex

import (
	"fmt"
	"strings"

	"docspanner/internal/spans"
)

// Node is a node of the abstract syntax tree.
type Node interface {
	// render writes the canonical textual form.
	render(sb *strings.Builder)
}

// Empty matches the empty word ε.
type Empty struct{}

// Lit matches one letter from a byte class. Negated classes ([^...]) and
// the any-letter wildcard (.) are resolved against the compilation
// alphabet, so they are stored symbolically here.
type Lit struct {
	Set     ByteSet
	Negated bool // complement of Set within the alphabet
	Any     bool // any alphabet letter (the . wildcard)
}

// Concat matches the concatenation of its items.
type Concat struct {
	Items []Node
}

// Alt matches the union of its items.
type Alt struct {
	Items []Node
}

// Repeat matches Min..Max repetitions of Sub (Max = -1 means unbounded).
type Repeat struct {
	Sub      Node
	Min, Max int
}

// Bind matches Sub and binds the matched span to Var: !x{Sub} ≙ x▷ Sub ◁x.
type Bind struct {
	Var spans.Var
	Sub Node
}

// Ref matches a copy of the factor bound to Var: the reference symbol of
// ref-words (&x). Only meaningful for refl-spanners.
type Ref struct {
	Var spans.Var
}

// ByteSet is a set of byte values.
type ByteSet [4]uint64

// Add inserts b.
func (s *ByteSet) Add(b byte) { s[b/64] |= 1 << uint(b%64) }

// AddRange inserts lo..hi inclusive.
func (s *ByteSet) AddRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.Add(byte(c))
	}
}

// Has reports membership.
func (s ByteSet) Has(b byte) bool { return s[b/64]&(1<<uint(b%64)) != 0 }

// Complement returns the complement within the given alphabet.
func (s ByteSet) Complement(alphabet []byte) ByteSet {
	var out ByteSet
	for _, b := range alphabet {
		if !s.Has(b) {
			out.Add(b)
		}
	}
	return out
}

// Bytes lists the members in ascending order.
func (s ByteSet) Bytes() []byte {
	var out []byte
	for c := 0; c < 256; c++ {
		if s.Has(byte(c)) {
			out = append(out, byte(c))
		}
	}
	return out
}

// Count returns the number of members.
func (s ByteSet) Count() int {
	n := 0
	for c := 0; c < 256; c++ {
		if s.Has(byte(c)) {
			n++
		}
	}
	return n
}

// SetOf returns the set containing exactly the given bytes.
func SetOf(bs ...byte) ByteSet {
	var s ByteSet
	for _, b := range bs {
		s.Add(b)
	}
	return s
}

func (Empty) render(sb *strings.Builder) { sb.WriteString("()") }

func (l Lit) render(sb *strings.Builder) {
	if l.Any {
		sb.WriteByte('.')
		return
	}
	if l.Negated {
		sb.WriteString("[^")
		for _, b := range l.Set.Bytes() {
			writeEscaped(sb, b)
		}
		sb.WriteByte(']')
		return
	}
	bs := l.Set.Bytes()
	if len(bs) == 1 {
		writeEscaped(sb, bs[0])
		return
	}
	sb.WriteByte('[')
	for i := 0; i < len(bs); {
		j := i
		for j+1 < len(bs) && bs[j+1] == bs[j]+1 {
			j++
		}
		writeEscaped(sb, bs[i])
		if j > i {
			if j > i+1 {
				sb.WriteByte('-')
			}
			writeEscaped(sb, bs[j])
		}
		i = j + 1
	}
	sb.WriteByte(']')
}

func (c Concat) render(sb *strings.Builder) {
	for _, it := range c.Items {
		if a, ok := it.(Alt); ok && len(a.Items) > 1 {
			sb.WriteByte('(')
			it.render(sb)
			sb.WriteByte(')')
		} else {
			it.render(sb)
		}
	}
}

func (a Alt) render(sb *strings.Builder) {
	for i, it := range a.Items {
		if i > 0 {
			sb.WriteByte('|')
		}
		it.render(sb)
	}
}

func (r Repeat) render(sb *strings.Builder) {
	needParens := true
	switch s := r.Sub.(type) {
	case Lit:
		needParens = false
		_ = s
	case Bind, Ref, Empty:
		needParens = false
	}
	if needParens {
		sb.WriteByte('(')
	}
	r.Sub.render(sb)
	if needParens {
		sb.WriteByte(')')
	}
	switch {
	case r.Min == 0 && r.Max == -1:
		sb.WriteByte('*')
	case r.Min == 1 && r.Max == -1:
		sb.WriteByte('+')
	case r.Min == 0 && r.Max == 1:
		sb.WriteByte('?')
	case r.Max == -1:
		fmt.Fprintf(sb, "{%d,}", r.Min)
	case r.Min == r.Max:
		fmt.Fprintf(sb, "{%d}", r.Min)
	default:
		fmt.Fprintf(sb, "{%d,%d}", r.Min, r.Max)
	}
}

func (b Bind) render(sb *strings.Builder) {
	sb.WriteByte('!')
	sb.WriteString(string(b.Var))
	sb.WriteByte('{')
	b.Sub.render(sb)
	sb.WriteByte('}')
}

func (r Ref) render(sb *strings.Builder) {
	sb.WriteByte('&')
	sb.WriteString(string(r.Var))
}

func writeEscaped(sb *strings.Builder, b byte) {
	if strings.IndexByte(`\.[](){}|*+?!&-^`, b) >= 0 {
		sb.WriteByte('\\')
	}
	sb.WriteByte(b)
}

// Render returns the canonical textual form of the AST.
func Render(n Node) string {
	var sb strings.Builder
	n.render(&sb)
	return sb.String()
}

// Vars returns the set of variables bound in n.
func Vars(n Node) spans.VarSet {
	var out []spans.Var
	walk(n, func(m Node) {
		if b, ok := m.(Bind); ok {
			out = append(out, b.Var)
		}
	})
	return spans.NewVarSet(out...)
}

// RefVars returns the set of variables referenced (&x) in n.
func RefVars(n Node) spans.VarSet {
	var out []spans.Var
	walk(n, func(m Node) {
		if r, ok := m.(Ref); ok {
			out = append(out, r.Var)
		}
	})
	return spans.NewVarSet(out...)
}

// HasRefs reports whether n contains any reference.
func HasRefs(n Node) bool {
	return len(RefVars(n)) > 0
}

func walk(n Node, f func(Node)) {
	f(n)
	switch m := n.(type) {
	case Concat:
		for _, it := range m.Items {
			walk(it, f)
		}
	case Alt:
		for _, it := range m.Items {
			walk(it, f)
		}
	case Repeat:
		walk(m.Sub, f)
	case Bind:
		walk(m.Sub, f)
	}
}
