package regex

import (
	"fmt"

	"docspanner/internal/automata"
)

// Options configures compilation.
type Options struct {
	// Alphabet is the document alphabet Σ used to resolve the wildcard .
	// and negated classes [^...]. If nil, the alphabet defaults to the
	// letters occurring literally in the expression; if the expression
	// uses . or [^...] and mentions no letters, DefaultAlphabet is used.
	Alphabet []byte
}

// DefaultAlphabet is the printable-ASCII fallback alphabet (space through
// tilde, plus tab and newline).
func DefaultAlphabet() []byte {
	out := make([]byte, 0, 97)
	out = append(out, '\t', '\n')
	for c := byte(' '); c <= '~'; c++ {
		out = append(out, c)
	}
	return out
}

// Compile translates a parsed expression into a vset-automaton over the
// extended alphabet (or, if the expression contains references, into a
// ref-automaton with reference transitions). The result is a Thompson-
// style construction of size linear in the expression (with bounded
// repetitions expanded).
func Compile(n Node, opts Options) (*automata.NFA, error) {
	alphabet := opts.Alphabet
	if alphabet == nil {
		alphabet = inferAlphabet(n)
	}
	c := &compiler{alphabet: alphabet}
	nfa := automata.NewNFA(Vars(n).Union(RefVars(n)))
	start, end, err := c.build(nfa, n)
	if err != nil {
		return nil, err
	}
	nfa.AddEps(nfa.Start, start)
	nfa.SetFinal(end)
	return nfa, nil
}

// MustCompile parses and compiles src, panicking on error. For tests and
// package-level variables.
func MustCompile(src string, opts Options) *automata.NFA {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	a, err := Compile(n, opts)
	if err != nil {
		panic(err)
	}
	return a
}

func inferAlphabet(n Node) []byte {
	var set ByteSet
	sawLetter := false
	walk(n, func(m Node) {
		if l, ok := m.(Lit); ok && !l.Any {
			for _, b := range l.Set.Bytes() {
				set.Add(b)
				sawLetter = true
			}
		}
	})
	if !sawLetter {
		return DefaultAlphabet()
	}
	return set.Bytes()
}

type compiler struct {
	alphabet []byte
}

// build adds a fragment for n to the automaton and returns its entry and
// exit states (single entry, single exit, à la Thompson).
func (c *compiler) build(nfa *automata.NFA, n Node) (start, end int, err error) {
	switch m := n.(type) {
	case Empty:
		s := nfa.AddState()
		return s, s, nil

	case Lit:
		s := nfa.AddState()
		e := nfa.AddState()
		var bytes []byte
		switch {
		case m.Any:
			bytes = c.alphabet
		case m.Negated:
			bytes = m.Set.Complement(c.alphabet).Bytes()
		default:
			bytes = m.Set.Bytes()
		}
		if len(bytes) == 0 {
			return 0, 0, fmt.Errorf("regex: empty character class (alphabet too small?)")
		}
		for _, b := range bytes {
			nfa.AddLetter(s, b, e)
		}
		return s, e, nil

	case Ref:
		s := nfa.AddState()
		e := nfa.AddState()
		nfa.AddRef(s, m.Var, e)
		return s, e, nil

	case Bind:
		s := nfa.AddState()
		e := nfa.AddState()
		is, ie, err := c.build(nfa, m.Sub)
		if err != nil {
			return 0, 0, err
		}
		nfa.AddMarker(s, automata.Marker{Var: m.Var}, is)
		nfa.AddMarker(ie, automata.Marker{Var: m.Var, Close: true}, e)
		return s, e, nil

	case Concat:
		s := nfa.AddState()
		cur := s
		for _, it := range m.Items {
			is, ie, err := c.build(nfa, it)
			if err != nil {
				return 0, 0, err
			}
			nfa.AddEps(cur, is)
			cur = ie
		}
		return s, cur, nil

	case Alt:
		s := nfa.AddState()
		e := nfa.AddState()
		for _, it := range m.Items {
			is, ie, err := c.build(nfa, it)
			if err != nil {
				return 0, 0, err
			}
			nfa.AddEps(s, is)
			nfa.AddEps(ie, e)
		}
		return s, e, nil

	case Repeat:
		s := nfa.AddState()
		cur := s
		// Mandatory copies.
		for i := 0; i < m.Min; i++ {
			is, ie, err := c.build(nfa, m.Sub)
			if err != nil {
				return 0, 0, err
			}
			nfa.AddEps(cur, is)
			cur = ie
		}
		if m.Max == -1 {
			// Kleene tail.
			is, ie, err := c.build(nfa, m.Sub)
			if err != nil {
				return 0, 0, err
			}
			loop := nfa.AddState()
			nfa.AddEps(cur, loop)
			nfa.AddEps(loop, is)
			nfa.AddEps(ie, loop)
			return s, loop, nil
		}
		// Optional copies.
		e := nfa.AddState()
		nfa.AddEps(cur, e)
		for i := m.Min; i < m.Max; i++ {
			is, ie, err := c.build(nfa, m.Sub)
			if err != nil {
				return 0, 0, err
			}
			nfa.AddEps(cur, is)
			nfa.AddEps(ie, e)
			cur = ie
		}
		return s, e, nil

	default:
		return 0, 0, fmt.Errorf("regex: cannot compile node %T", n)
	}
}
