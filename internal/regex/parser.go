package regex

import (
	"fmt"

	"docspanner/internal/spans"
)

// Parse parses the spanner regex dialect:
//
//	literal characters          a b 0 , _ ...
//	escapes                     \. \* \\ \n \t and any escaped special
//	any letter of the alphabet  .
//	character classes           [abc] [a-z0-9] [^ab]
//	grouping                    ( ... )
//	empty word                  ()
//	union                       α|β
//	repetition                  α* α+ α? α{m} α{m,} α{m,n}
//	variable binding            !x{α}        (x▷ α ◁x)
//	reference                   &x           (refl-spanners, Section 3.1)
//
// Variable names are runs of letters, digits, and underscores. Parse
// reports syntax errors and static binding errors: a variable bound more
// than once on a path (e.g. !x{a}!x{b} or !x{a}* ) and a reference inside
// its own binding (&x within !x{...}).
func Parse(src string) (Node, error) {
	p := &parser{src: src}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	if err := checkBindings(n); err != nil {
		return nil, err
	}
	return n, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) peek() (byte, bool) {
	if p.pos < len(p.src) {
		return p.src[p.pos], true
	}
	return 0, false
}

func (p *parser) parseAlt() (Node, error) {
	var items []Node
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	items = append(items, first)
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		items = append(items, next)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return Alt{Items: items}, nil
}

func (p *parser) parseConcat() (Node, error) {
	var items []Node
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' || c == '}' {
			break
		}
		item, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	switch len(items) {
	case 0:
		return Empty{}, nil
	case 1:
		return items[0], nil
	}
	return Concat{Items: items}, nil
}

func (p *parser) parseRepeat() (Node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch c {
		case '*':
			p.pos++
			atom = Repeat{Sub: atom, Min: 0, Max: -1}
		case '+':
			p.pos++
			atom = Repeat{Sub: atom, Min: 1, Max: -1}
		case '?':
			p.pos++
			atom = Repeat{Sub: atom, Min: 0, Max: 1}
		case '{':
			min, max, ok, err := p.tryParseBounds()
			if err != nil {
				return nil, err
			}
			if !ok {
				return atom, nil
			}
			atom = Repeat{Sub: atom, Min: min, Max: max}
		default:
			return atom, nil
		}
	}
}

// tryParseBounds parses {m}, {m,}, {m,n}; it reports ok=false without
// consuming input if the braces do not contain a bound spec.
func (p *parser) tryParseBounds() (min, max int, ok bool, err error) {
	save := p.pos
	p.pos++ // consume '{'
	readInt := func() (int, bool) {
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == start {
			return 0, false
		}
		v := 0
		for _, d := range p.src[start:p.pos] {
			v = v*10 + int(d-'0')
		}
		return v, true
	}
	m, has := readInt()
	if !has {
		p.pos = save
		return 0, 0, false, nil
	}
	min, max = m, m
	if c, _ := p.peek(); c == ',' {
		p.pos++
		if n, has := readInt(); has {
			max = n
		} else {
			max = -1
		}
	}
	if c, okc := p.peek(); !okc || c != '}' {
		p.pos = save
		return 0, 0, false, nil
	}
	p.pos++
	if max != -1 && max < min {
		return 0, 0, false, fmt.Errorf("regex: invalid bounds {%d,%d}", min, max)
	}
	return min, max, true, nil
}

func (p *parser) parseAtom() (Node, error) {
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("regex: unexpected end of expression")
	}
	switch c {
	case '(':
		p.pos++
		if c2, ok := p.peek(); ok && c2 == ')' {
			p.pos++
			return Empty{}, nil
		}
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if c2, ok := p.peek(); !ok || c2 != ')' {
			return nil, fmt.Errorf("regex: missing ) at offset %d", p.pos)
		}
		p.pos++
		return inner, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return Lit{Any: true}, nil
	case '!':
		p.pos++
		v, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		if c2, ok := p.peek(); !ok || c2 != '{' {
			return nil, fmt.Errorf("regex: expected { after !%s", v)
		}
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if c2, ok := p.peek(); !ok || c2 != '}' {
			return nil, fmt.Errorf("regex: missing } closing !%s{", v)
		}
		p.pos++
		return Bind{Var: v, Sub: inner}, nil
	case '&':
		p.pos++
		v, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		return Ref{Var: v}, nil
	case '\\':
		p.pos++
		e, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("regex: dangling escape")
		}
		p.pos++
		if set, ok := classEscape(e); ok {
			return Lit{Set: set}, nil
		}
		return Lit{Set: SetOf(unescape(e))}, nil
	case '*', '+', '?', '|', ')', '}', ']':
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", c, p.pos)
	default:
		p.pos++
		return Lit{Set: SetOf(c)}, nil
	}
}

// classEscape resolves the predefined classes \d (digits), \w (word
// characters), and \s (whitespace).
func classEscape(e byte) (ByteSet, bool) {
	var set ByteSet
	switch e {
	case 'd':
		set.AddRange('0', '9')
	case 'w':
		set.AddRange('a', 'z')
		set.AddRange('A', 'Z')
		set.AddRange('0', '9')
		set.Add('_')
	case 's':
		for _, c := range []byte(" \t\n\r") {
			set.Add(c)
		}
	default:
		return set, false
	}
	return set, true
}

func unescape(e byte) byte {
	switch e {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	}
	return e
}

func (p *parser) parseVarName() (spans.Var, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdent(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("regex: missing variable name at offset %d", p.pos)
	}
	return spans.Var(p.src[start:p.pos]), nil
}

func isIdent(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

func (p *parser) parseClass() (Node, error) {
	p.pos++ // consume '['
	negate := false
	if c, ok := p.peek(); ok && c == '^' {
		negate = true
		p.pos++
	}
	var set ByteSet
	count := 0
	for {
		c, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("regex: unterminated character class")
		}
		if c == ']' && count > 0 {
			p.pos++
			break
		}
		if c == '\\' {
			p.pos++
			e, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("regex: dangling escape in class")
			}
			if cls, isClass := classEscape(e); isClass {
				p.pos++
				for _, cb := range cls.Bytes() {
					set.Add(cb)
				}
				count++
				continue
			}
			c = unescape(e)
		}
		p.pos++
		// Range?
		if r, ok := p.peek(); ok && r == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++
			hi, _ := p.peek()
			if hi == '\\' {
				p.pos++
				hi2, ok := p.peek()
				if !ok {
					return nil, fmt.Errorf("regex: dangling escape in class")
				}
				hi = unescape(hi2)
			}
			p.pos++
			if hi < c {
				return nil, fmt.Errorf("regex: inverted range %c-%c", c, hi)
			}
			set.AddRange(c, hi)
		} else {
			set.Add(c)
		}
		count++
	}
	if negate {
		return Lit{Set: set, Negated: true}, nil
	}
	return Lit{Set: set}, nil
}

// checkBindings rejects expressions whose bindings could repeat on a match
// path, nested rebinding of the same variable, and references inside their
// own binding. These are exactly the syntactic conditions making an
// expression a well-formed spanner regex.
func checkBindings(n Node) error {
	_, err := bindCheck(n, nil)
	return err
}

// bindCheck returns the set of variables that MAY be bound by n and
// validates. enclosing is the set of variables whose Bind encloses n.
func bindCheck(n Node, enclosing spans.VarSet) (spans.VarSet, error) {
	switch m := n.(type) {
	case Empty, Lit:
		return nil, nil
	case Ref:
		if enclosing.Contains(m.Var) {
			return nil, fmt.Errorf("regex: reference &%s inside its own binding", m.Var)
		}
		return nil, nil
	case Bind:
		if enclosing.Contains(m.Var) {
			return nil, fmt.Errorf("regex: variable %s bound inside its own binding", m.Var)
		}
		sub, err := bindCheck(m.Sub, enclosing.Union(spans.NewVarSet(m.Var)))
		if err != nil {
			return nil, err
		}
		if sub.Contains(m.Var) {
			return nil, fmt.Errorf("regex: variable %s bound twice", m.Var)
		}
		return sub.Union(spans.NewVarSet(m.Var)), nil
	case Concat:
		var all spans.VarSet
		for _, it := range m.Items {
			vs, err := bindCheck(it, enclosing)
			if err != nil {
				return nil, err
			}
			if dup := all.Intersect(vs); len(dup) > 0 {
				return nil, fmt.Errorf("regex: variable %s bound twice in concatenation", dup[0])
			}
			all = all.Union(vs)
		}
		return all, nil
	case Alt:
		var all spans.VarSet
		for _, it := range m.Items {
			vs, err := bindCheck(it, enclosing)
			if err != nil {
				return nil, err
			}
			all = all.Union(vs)
		}
		return all, nil
	case Repeat:
		vs, err := bindCheck(m.Sub, enclosing)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 && (m.Max == -1 || m.Max > 1) {
			return nil, fmt.Errorf("regex: variable %s bound under repetition", vs[0])
		}
		return vs, nil
	}
	return nil, fmt.Errorf("regex: unknown node %T", n)
}
