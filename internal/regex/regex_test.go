package regex

import (
	"strings"
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

func mustParse(t *testing.T, src string) Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestParseBasics(t *testing.T) {
	for _, src := range []string{
		"abc", "a|b", "a*", "a+", "a?", "(ab)*", "a{3}", "a{2,}", "a{2,4}",
		"[abc]", "[a-z]", "[^ab]", ".", "()", "!x{ab}", "!x{a|b}c", "&x",
		"!x{a}!y{b}", "!x{!y{a}b}", "a\\*b", "\\\\",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) failed: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"(", ")", "a)", "*", "a**b(", "[", "[]", "[z-a]", "!x", "!x{a",
		"!x{a}!x{b}", // double binding
		"!x{!x{a}}",  // nested rebinding
		"(!x{a})*",   // binding under star
		"(!x{a}){2}", // binding under bounded repeat > 1
		"!x{a&x}",    // reference inside own binding
		"a{3,2}", "\\", "&",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseBindingUnderOptionalAllowed(t *testing.T) {
	// max = 1 repetitions keep the binding at most once: allowed.
	for _, src := range []string{"(!x{a})?", "(!x{a}){1}", "(!x{a}){0,1}"} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) rejected: %v", src, err)
		}
	}
}

func TestVarsAndRefs(t *testing.T) {
	n := mustParse(t, "!x{a!y{b}}&z")
	if !Vars(n).Equal(spans.NewVarSet("x", "y")) {
		t.Errorf("Vars = %v", Vars(n))
	}
	if !RefVars(n).Equal(spans.NewVarSet("z")) {
		t.Errorf("RefVars = %v", RefVars(n))
	}
	if !HasRefs(n) {
		t.Error("HasRefs = false")
	}
	if HasRefs(mustParse(t, "!x{a}")) {
		t.Error("HasRefs on plain bind")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	for _, src := range []string{
		"abc", "a|b", "(a|b)c", "a*", "!x{a|b}", "[a-c]", "a{2,4}", "&x",
		"!x{!y{ab}}", "a?b+c*",
	} {
		n := mustParse(t, src)
		rendered := Render(n)
		n2 := mustParse(t, rendered)
		if Render(n2) != rendered {
			t.Errorf("render not stable: %q -> %q -> %q", src, rendered, Render(n2))
		}
	}
}

func TestByteSet(t *testing.T) {
	s := SetOf('a', 'c')
	if !s.Has('a') || s.Has('b') {
		t.Error("Has wrong")
	}
	var r ByteSet
	r.AddRange('a', 'e')
	if r.Count() != 5 {
		t.Errorf("Count = %d", r.Count())
	}
	comp := s.Complement([]byte("abc"))
	if comp.Has('a') || !comp.Has('b') || comp.Has('c') {
		t.Error("Complement wrong")
	}
}

// accepts runs a compiled marker-free automaton on a document.
func accepts(t *testing.T, nfa *automata.NFA, doc string) bool {
	t.Helper()
	d := automata.Determinize(nfa)
	return d.AcceptsExtended([]byte(doc), nil)
}

func TestCompilePlain(t *testing.T) {
	cases := []struct {
		re  string
		yes []string
		no  []string
	}{
		{"abc", []string{"abc"}, []string{"", "ab", "abcd"}},
		{"a|b", []string{"a", "b"}, []string{"", "ab"}},
		{"a*", []string{"", "a", "aaaa"}, []string{"b", "ab"}},
		{"a+b?", []string{"a", "ab", "aab"}, []string{"", "b", "abb"}},
		{"(ab)*", []string{"", "ab", "abab"}, []string{"a", "aba"}},
		{"a{2,3}", []string{"aa", "aaa"}, []string{"a", "aaaa"}},
		{"a{2,}", []string{"aa", "aaaaa"}, []string{"a", ""}},
		{"[ab]c", []string{"ac", "bc"}, []string{"cc", "c"}},
		{"[^a]", []string{"b", "c"}, []string{"a", ""}}, // alphabet inferred {a,b,c}? no letters b,c...
	}
	for _, c := range cases {
		n := mustParse(t, c.re)
		nfa, err := Compile(n, Options{Alphabet: []byte("abc")})
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.re, err)
		}
		for _, w := range c.yes {
			if !accepts(t, nfa, w) {
				t.Errorf("%q should accept %q", c.re, w)
			}
		}
		for _, w := range c.no {
			if accepts(t, nfa, w) {
				t.Errorf("%q should reject %q", c.re, w)
			}
		}
	}
}

func TestCompileDotUsesAlphabet(t *testing.T) {
	nfa := MustCompile(".", Options{Alphabet: []byte("xy")})
	if !accepts(t, nfa, "x") || !accepts(t, nfa, "y") || accepts(t, nfa, "z") {
		t.Error("dot should match exactly the alphabet")
	}
}

func TestCompileExample11(t *testing.T) {
	// α := !x{(a|b)*} !y{b} !z{(a|b)*} — Example 1.1.
	nfa := MustCompile("!x{(a|b)*}!y{b}!z{(a|b)*}", Options{})
	if err := nfa.Validate(true); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d := automata.Determinize(nfa)
	ix := d.Index
	doc := []byte("ababbab")
	masks := make([]automata.Mask, len(doc)+1)
	masks[0] = ix.MaskOf(automata.Marker{Var: "x"})
	masks[3] = ix.MaskOf(automata.Marker{Var: "x", Close: true}, automata.Marker{Var: "y"})
	masks[4] = ix.MaskOf(automata.Marker{Var: "y", Close: true}, automata.Marker{Var: "z"})
	masks[7] = ix.MaskOf(automata.Marker{Var: "z", Close: true})
	if !d.AcceptsExtended(doc, masks) {
		t.Error("Example 1.1 tuple rejected")
	}
}

func TestCompileRefTransitions(t *testing.T) {
	nfa := MustCompile("!x{a+}&x", Options{})
	if !nfa.HasRefs() {
		t.Error("compiled automaton should have ref transitions")
	}
	defer func() {
		if recover() == nil {
			t.Error("Determinize on ref automaton should panic")
		}
	}()
	automata.Determinize(nfa)
}

func TestCompileEmptyClassError(t *testing.T) {
	n := mustParse(t, "[^abc]")
	if _, err := Compile(n, Options{Alphabet: []byte("abc")}); err == nil {
		t.Error("negation covering whole alphabet should fail")
	}
}

func TestRenderEscaping(t *testing.T) {
	n := mustParse(t, `a\*b`)
	r := Render(n)
	if !strings.Contains(r, `\*`) {
		t.Errorf("Render = %q, want escaped star", r)
	}
	if _, err := Parse(r); err != nil {
		t.Errorf("re-parse of %q failed: %v", r, err)
	}
}

func TestClassEscapes(t *testing.T) {
	d := MustCompile(`\d+`, Options{Alphabet: []byte("0123456789x")})
	if !accepts(t, d, "42") || accepts(t, d, "4x") {
		t.Error(`\d wrong`)
	}
	w := MustCompile(`\w+`, Options{Alphabet: []byte("aZ0_ ")})
	if !accepts(t, w, "aZ0_") || accepts(t, w, "a b") {
		t.Error(`\w wrong`)
	}
	sp := MustCompile(`a\sb`, Options{Alphabet: []byte("ab \t")})
	if !accepts(t, sp, "a b") || !accepts(t, sp, "a\tb") || accepts(t, sp, "ab") {
		t.Error(`\s wrong`)
	}
	// Inside classes.
	mix := MustCompile(`[\dx]+`, Options{Alphabet: []byte("0123456789xy")})
	if !accepts(t, mix, "1x2") || accepts(t, mix, "y") {
		t.Error(`[\d...] wrong`)
	}
	// Escaped literal d still works.
	lit := MustCompile(`\t`, Options{Alphabet: []byte("\t")})
	if !accepts(t, lit, "\t") {
		t.Error(`\t wrong`)
	}
}

func TestDefaultAlphabetUsed(t *testing.T) {
	// No letters in the pattern and no explicit alphabet: the printable
	// ASCII default resolves the dot.
	nfa := MustCompile("!x{.}", Options{})
	d := automata.Determinize(nfa)
	ix := d.Index
	masks := make([]automata.Mask, 2)
	masks[0] = ix.MaskOf(automata.Marker{Var: "x"})
	masks[1] = ix.MaskOf(automata.Marker{Var: "x", Close: true})
	for _, c := range []byte{'a', 'Z', '~', ' ', '\t'} {
		if !d.AcceptsExtended([]byte{c}, masks) {
			t.Errorf("default alphabet misses %q", c)
		}
	}
}

func TestRenderNegatedAndWildcard(t *testing.T) {
	n := mustParse(t, "[^ab].")
	r := Render(n)
	if r != "[^ab]." {
		t.Errorf("Render = %q", r)
	}
	if _, err := Parse(r); err != nil {
		t.Errorf("re-parse: %v", err)
	}
}

func TestUnescapeControl(t *testing.T) {
	for _, c := range []struct {
		src string
		b   byte
	}{{`\r`, '\r'}, {`\0`, 0}, {`\n`, '\n'}} {
		nfa := MustCompile(c.src, Options{Alphabet: []byte{c.b}})
		d := automata.Determinize(nfa)
		if !d.AcceptsExtended([]byte{c.b}, nil) {
			t.Errorf("escape %q does not match %q", c.src, c.b)
		}
	}
}
