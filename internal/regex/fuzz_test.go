package regex

import (
	"testing"
)

// FuzzParse feeds arbitrary inputs to the pattern parser. Accepted
// patterns must render to a stable, re-parseable form and must compile
// without panicking; rejected patterns must fail with an error, never a
// panic.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		// Accepted patterns from the parser tests.
		"abc", "a|b", "a*", "a+", "a?", "(ab)*", "a{3}", "a{2,}", "a{2,4}",
		"[abc]", "[a-z]", "[^ab]", ".", "()", "!x{ab}", "!x{a|b}c", "&x",
		"!x{a}!y{b}", "!x{!y{a}b}", "a\\*b", "\\\\",
		"(!x{a})?", "(!x{a}){1}", "(!x{a}){0,1}",
		"!x{(a|b)*}!y{b}!z{(a|b)*}", "!x{a+}&x", "!x{.}",
		"!key{[a-z]+}=!val{[0-9]+}",
		// Rejected patterns from the parser tests.
		"(", ")", "a)", "*", "a**b(", "[", "[]", "[z-a]", "!x", "!x{a",
		"!x{a}!x{b}", "!x{!x{a}}", "(!x{a})*", "(!x{a}){2}", "!x{a&x}",
		"a{3,2}", "\\", "&",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return // rejection without panicking is a pass
		}
		rendered := Render(n)
		n2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Render of accepted pattern does not re-parse: %q -> %q: %v", src, rendered, err)
		}
		if again := Render(n2); again != rendered {
			t.Fatalf("Render not stable: %q -> %q -> %q", src, rendered, again)
		}
		// Compilation must not panic. Nested bounded repeats multiply
		// automaton size geometrically from tiny sources, so skip
		// pathological blowups the parser legitimately accepts — the fuzz
		// target is about robustness, not capacity.
		if len(src) > 64 || sizeEstimate(n) > 20000 {
			return
		}
		nfa, err := Compile(n, Options{})
		if err != nil {
			return
		}
		_ = nfa.Validate(false)
	})
}

// sizeEstimate bounds the compiled automaton size of an AST, counting a
// bounded repeat as Max copies of its body.
func sizeEstimate(n Node) int {
	const limit = 1 << 30
	switch m := n.(type) {
	case Concat:
		total := 1
		for _, it := range m.Items {
			if total += sizeEstimate(it); total > limit {
				return limit
			}
		}
		return total
	case Alt:
		total := 1
		for _, it := range m.Items {
			if total += sizeEstimate(it); total > limit {
				return limit
			}
		}
		return total
	case Repeat:
		reps := m.Max
		if reps < 0 {
			reps = m.Min + 1
		}
		if reps < 1 {
			reps = 1
		}
		sub := sizeEstimate(m.Sub)
		if sub > limit/reps {
			return limit
		}
		return sub*reps + 1
	case Bind:
		return sizeEstimate(m.Sub) + 2
	default:
		return 1
	}
}
