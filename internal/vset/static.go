package vset

import (
	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// Hierarchical decides the Hierarchicality problem: whether every tuple
// the spanner extracts from any document has pairwise nested-or-disjoint
// spans (Section 2.2). The decision procedure runs, for every pair of
// variables, a product of the automaton with a small monitor that tracks
// the relative order (with ties) in which the four markers x▷ ◁x y▷ ◁y
// fire; a reachable accepting configuration whose order pattern implies a
// proper overlap refutes hierarchicality.
func Hierarchical(n *automata.NFA) bool {
	if n.HasRefs() {
		panic("vset: Hierarchical on an automaton with reference transitions")
	}
	trimmed := n.Trim()
	for i := 0; i < len(n.Vars); i++ {
		for j := i + 1; j < len(n.Vars); j++ {
			if overlapPossible(trimmed, n.Vars[i], n.Vars[j]) {
				return false
			}
		}
	}
	return true
}

// monitor encodes the firing history of the four markers of a variable
// pair as an ordered partition: groups[g] is the set (bitmask over
// {openX:1, closeX:2, openY:4, closeY:8}) of markers that fired at the
// same boundary g. sealed marks whether a letter has been read since the
// last marker (so the next marker starts a new group).
type monitor struct {
	groups [4]uint8
	ngroup uint8
	sealed bool
}

func (m monitor) fire(bit uint8) monitor {
	if (m.ngroup == 0 || m.sealed) && m.ngroup < 4 {
		m.groups[m.ngroup] = bit
		m.ngroup++
		m.sealed = false
		return m
	}
	// Merging into the current group; the ngroup == 4 guard only matters
	// for invalid automata that re-fire a marker.
	m.groups[m.ngroup-1] |= bit
	return m
}

func (m monitor) seal() monitor {
	m.sealed = true
	return m
}

// groupOf returns the group index at which the marker bit fired, or -1.
func (m monitor) groupOf(bit uint8) int {
	for g := 0; g < int(m.ngroup); g++ {
		if m.groups[g]&bit != 0 {
			return g
		}
	}
	return -1
}

// properOverlap evaluates, at acceptance, whether the firing pattern
// encodes two spans that are neither disjoint nor nested. Group indices
// serve as (order-isomorphic) boundary positions.
func (m monitor) properOverlap() bool {
	b1, e1 := m.groupOf(1), m.groupOf(2)
	b2, e2 := m.groupOf(4), m.groupOf(8)
	if b1 < 0 || e1 < 0 || b2 < 0 || e2 < 0 {
		return false // a variable unassigned: no overlap constraint
	}
	s1 := spans.S(b1+1, e1+1)
	s2 := spans.S(b2+1, e2+1)
	return !s1.DisjointOrNested(s2)
}

// sameSpan evaluates, at acceptance, whether both variables were assigned
// and their spans coincide boundary-for-boundary.
func (m monitor) sameSpan() bool {
	b1, e1 := m.groupOf(1), m.groupOf(2)
	b2, e2 := m.groupOf(4), m.groupOf(8)
	if b1 < 0 || e1 < 0 || b2 < 0 || e2 < 0 {
		return false
	}
	return b1 == b2 && e1 == e2
}

func overlapPossible(n *automata.NFA, x, y spans.Var) bool {
	return pairAcceptPossible(n, x, y, monitor.properOverlap)
}

// AlwaysSameSpan decides whether, on every accepting run of the automaton,
// the variables x and y are both assigned and extract the same span. When
// it holds, a string-equality selection over {x, y} is provably a no-op:
// equal spans denote equal factors on every document. The check runs the
// same order-monitor product as Hierarchical, rejecting if any accepting
// configuration leaves a variable unassigned or separates the boundaries.
func AlwaysSameSpan(n *automata.NFA, x, y spans.Var) bool {
	if n.HasRefs() {
		panic("vset: AlwaysSameSpan on an automaton with reference transitions")
	}
	trimmed := n.Trim()
	if trimmed.Empty() {
		return true // vacuously: no accepting run at all
	}
	return !pairAcceptPossible(trimmed, x, y, func(m monitor) bool { return !m.sameSpan() })
}

// JointlyBindable decides whether some accepting run assigns every variable
// of z. When it fails, a string-equality selection over z is provably
// always empty: the schemaless selection semantics keeps only tuples that
// assign all of z. The search runs the automaton in product with a bitmask
// of the z-variables whose close markers have fired.
func JointlyBindable(n *automata.NFA, z spans.VarSet) bool {
	if n.HasRefs() {
		panic("vset: JointlyBindable on an automaton with reference transitions")
	}
	if len(z.Minus(n.Vars)) > 0 {
		return false // a variable the automaton cannot bind at all
	}
	if len(z) > 64 {
		return true // give up rather than overflow the bitmask; sound for lint hints
	}
	full := uint64(1)<<uint(len(z)) - 1
	type cfg struct {
		q    int
		mask uint64
	}
	start := cfg{n.Start, 0}
	seen := map[cfg]bool{start: true}
	stack := []cfg{start}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.mask == full && n.Final[c.q] {
			return true
		}
		push := func(nc cfg) {
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(cfg{r, c.mask})
		}
		for _, rs := range n.Letters[c.q] {
			for _, r := range rs {
				push(cfg{r, c.mask})
			}
		}
		for mk, rs := range n.Markers[c.q] {
			nm := c.mask
			if mk.Close {
				if i := z.Index(mk.Var); i >= 0 {
					nm |= 1 << uint(i)
				}
			}
			for _, r := range rs {
				push(cfg{r, nm})
			}
		}
	}
	return false
}

// AlwaysBound decides whether every accepting run of the automaton
// assigns the variable v. It is the static guard behind the planner's
// functional-semantics rewrites: when it holds, the schemaless and
// functional relations agree on v (no partial tuple can leave v
// unassigned), so projections and selections involving v may be fused
// into the regular layer. The decision deletes v's marker transitions
// from a copy of the automaton and checks emptiness — a surviving
// accepting path is exactly a run that never touches v.
//
// The automaton is assumed well-formed (markers well-nested on every
// accepting path, as Validate checks), so "touches some v marker" and
// "assigns v" coincide.
func AlwaysBound(n *automata.NFA, v spans.Var) bool {
	if n.HasRefs() {
		panic("vset: AlwaysBound on an automaton with reference transitions")
	}
	c := n.Clone()
	for q := range c.Markers {
		for mk := range c.Markers[q] {
			if mk.Var == v {
				delete(c.Markers[q], mk)
			}
		}
	}
	return c.Empty()
}

// AllBound reports AlwaysBound for every variable of vars.
func AllBound(n *automata.NFA, vars spans.VarSet) bool {
	for _, v := range vars {
		if !AlwaysBound(n, v) {
			return false
		}
	}
	return true
}

// pairAcceptPossible reports whether some accepting configuration of the
// automaton-with-monitor product for the pair (x, y) satisfies bad.
func pairAcceptPossible(n *automata.NFA, x, y spans.Var, bad func(monitor) bool) bool {
	type cfg struct {
		q int
		m monitor
	}
	bitFor := func(mk automata.Marker) uint8 {
		switch {
		case mk.Var == x && !mk.Close:
			return 1
		case mk.Var == x && mk.Close:
			return 2
		case mk.Var == y && !mk.Close:
			return 4
		case mk.Var == y && mk.Close:
			return 8
		}
		return 0
	}
	start := cfg{n.Start, monitor{}}
	seen := map[cfg]bool{start: true}
	stack := []cfg{start}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Final[c.q] && bad(c.m) {
			return true
		}
		push := func(nc cfg) {
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(cfg{r, c.m})
		}
		for _, rs := range n.Letters[c.q] {
			for _, r := range rs {
				push(cfg{r, c.m.seal()})
			}
		}
		for mk, rs := range n.Markers[c.q] {
			nm := c.m
			if bit := bitFor(mk); bit != 0 {
				nm = c.m.fire(bit)
			}
			for _, r := range rs {
				push(cfg{r, nm})
			}
		}
	}
	return false
}

// alignVars returns copies of a and b whose Vars fields are both the
// union, so that their determinizations share one mask layout.
func alignVars(a, b *automata.NFA) (*automata.NFA, *automata.NFA) {
	union := a.Vars.Union(b.Vars)
	ca, cb := a, b
	if !a.Vars.Equal(union) {
		ca = a.Clone()
		ca.Vars = union
	}
	if !b.Vars.Equal(union) {
		cb = b.Clone()
		cb.Vars = union
	}
	return ca, cb
}

// Contains decides the Containment problem for regular spanners:
// ⟦a⟧(D) ⊆ ⟦b⟧(D) for all documents D. It determinizes both automata over
// the extended alphabet and checks language containment — PSpace-style
// worst case in the automata, independent of any document.
func Contains(a, b *automata.NFA) bool {
	ca, cb := alignVars(a, b)
	return automata.Contains(automata.Determinize(ca), automata.Determinize(cb))
}

// Equivalent decides the Equivalence problem for regular spanners.
func Equivalent(a, b *automata.NFA) bool {
	ca, cb := alignVars(a, b)
	return automata.Equivalent(automata.Determinize(ca), automata.Determinize(cb))
}

// Difference returns a vset-automaton for the spanner
// D ↦ ⟦a⟧(D) ∖ ⟦b⟧(D) — regular spanners are closed under difference,
// via determinization over the extended-word alphabet.
func Difference(a, b *automata.NFA) *automata.NFA {
	ca, cb := alignVars(a, b)
	d := automata.Difference(automata.Determinize(ca), automata.Determinize(cb))
	return automata.DEVAToNFA(automata.Minimize(d))
}
