// Package vset interprets NFAs over the extended alphabet as document
// spanners (vset-automata) and implements their evaluation and static
// analysis: the problems ModelChecking, NonEmptiness, Satisfiability,
// Hierarchicality, Containment, and Equivalence of Section 2.4 of Schmid
// and Schweikardt's PODS 2022 survey. For regular spanners all of these
// are decidable with the complexities the survey reports: the evaluation
// problems are polynomial in the document, the static analysis problems
// are polynomial to exponential in the automaton (query complexity only).
package vset

import (
	"fmt"
	"sort"

	"docspanner/internal/automata"
	"docspanner/internal/refwords"
	"docspanner/internal/spans"
)

// Semantics selects between the classical total-function semantics of
// Fagin et al. and the schemaless (partial tuple) semantics of Maturana,
// Riveros, and Vrgoč (Section 2.2).
type Semantics int

const (
	// Functional requires every variable to be assigned in every tuple.
	Functional Semantics = iota
	// Schemaless permits unassigned variables (t(x) = ⊥).
	Schemaless
)

// Eval computes the span relation ⟦M⟧(doc) by a breadth-first search over
// configurations (state, position, partial assignment). This is the
// reference ("naive") evaluation: correct for every valid vset-automaton,
// polynomial in |doc| for a fixed automaton, with output-sensitive cost in
// the number of result tuples. The enumeration package provides the
// linear-preprocessing/constant-delay alternative of Section 2.5.
func Eval(n *automata.NFA, doc []byte, sem Semantics) *spans.Relation {
	if n.HasRefs() {
		panic("vset: Eval on an automaton with reference transitions; use package refl")
	}
	k := len(n.Vars)
	type cfg struct {
		q   int
		pos int
		asg string // 2k little-endian uint32 begin/end marks; 0 = unset
	}
	zero := make([]byte, 8*k)
	encode := func(b []byte) string { return string(b) }

	setMark := func(asg string, idx int, val int) string {
		b := []byte(asg)
		off := idx * 4
		b[off] = byte(val)
		b[off+1] = byte(val >> 8)
		b[off+2] = byte(val >> 16)
		b[off+3] = byte(val >> 24)
		return encode(b)
	}
	getMark := func(asg string, idx int) int {
		off := idx * 4
		return int(asg[off]) | int(asg[off+1])<<8 | int(asg[off+2])<<16 | int(asg[off+3])<<24
	}

	start := cfg{n.Start, 0, encode(zero)}
	seen := map[cfg]bool{start: true}
	queue := []cfg{start}
	out := spans.NewRelation()

	push := func(c cfg, queueRef *[]cfg) {
		if !seen[c] {
			seen[c] = true
			*queueRef = append(*queueRef, c)
		}
	}

	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if c.pos == len(doc) && n.Final[c.q] {
			t := make(spans.Tuple)
			complete := true
			for i, v := range n.Vars {
				b := getMark(c.asg, 2*i)
				e := getMark(c.asg, 2*i+1)
				switch {
				case b > 0 && e > 0:
					t[v] = spans.S(b, e)
				case b == 0 && e == 0:
					complete = false
				default:
					complete = false // half-open assignment: invalid word
					t = nil
				}
				if t == nil {
					break
				}
			}
			if t != nil && (sem == Schemaless || complete) {
				out.Add(t)
			}
		}

		for _, r := range n.Eps[c.q] {
			push(cfg{r, c.pos, c.asg}, &queue)
		}
		if c.pos < len(doc) {
			for _, r := range n.Letters[c.q][doc[c.pos]] {
				push(cfg{r, c.pos + 1, c.asg}, &queue)
			}
		}
		for m, rs := range n.Markers[c.q] {
			i := n.Vars.Index(m.Var)
			if i < 0 {
				continue
			}
			var idx int
			if m.Close {
				idx = 2*i + 1
				if getMark(c.asg, 2*i) == 0 || getMark(c.asg, idx) != 0 {
					continue // close before open, or duplicate close
				}
			} else {
				idx = 2 * i
				if getMark(c.asg, idx) != 0 {
					continue // duplicate open
				}
			}
			nasg := setMark(c.asg, idx, c.pos+1)
			for _, r := range rs {
				push(cfg{r, c.pos, nasg}, &queue)
			}
		}
	}
	return out
}

// AcceptsMarked decides whether the NFA accepts the subword-marked word
// given in extended (marker-set) form, simulating marker-order
// non-determinism at each boundary. It runs in O(|doc| · poly(|M|)) time —
// the ModelChecking routine for regular spanners.
func AcceptsMarked(n *automata.NFA, msw refwords.MarkerSetWord) bool {
	cur := n.EpsClosure([]int{n.Start})
	for i := 0; i <= len(msw.Doc); i++ {
		if len(msw.Sets[i]) > 0 {
			cur = boundaryStep(n, cur, msw.Sets[i])
			if len(cur) == 0 {
				return false
			}
		}
		if i < len(msw.Doc) {
			cur = letterStep(n, cur, msw.Doc[i])
			if len(cur) == 0 {
				return false
			}
		}
	}
	for _, q := range cur {
		if n.Final[q] {
			return true
		}
	}
	return false
}

// boundaryStep returns the ε-closed set of states reachable from cur by
// reading exactly the markers of set (in any order, ε interleaved).
func boundaryStep(n *automata.NFA, cur []int, set refwords.MarkerSet) []int {
	full := uint32(1)<<uint(len(set)) - 1
	bitOf := make(map[automata.Marker]uint32, len(set))
	for i, m := range set {
		bitOf[m] = 1 << uint(i)
	}
	type cfg struct {
		q    int
		used uint32
	}
	seen := make(map[cfg]bool)
	var stack []cfg
	for _, q := range cur {
		c := cfg{q, 0}
		seen[c] = true
		stack = append(stack, c)
	}
	var outSet map[int]bool
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.used == full {
			if outSet == nil {
				outSet = make(map[int]bool)
			}
			outSet[c.q] = true
		}
		push := func(nc cfg) {
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(cfg{r, c.used})
		}
		for m, rs := range n.Markers[c.q] {
			bit, ok := bitOf[m]
			if !ok || c.used&bit != 0 {
				continue
			}
			for _, r := range rs {
				push(cfg{r, c.used | bit})
			}
		}
	}
	if outSet == nil {
		return nil
	}
	out := make([]int, 0, len(outSet))
	for q := range outSet {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

func letterStep(n *automata.NFA, cur []int, b byte) []int {
	next := make(map[int]bool)
	for _, q := range cur {
		for _, r := range n.Letters[q][b] {
			next[r] = true
		}
	}
	if len(next) == 0 {
		return nil
	}
	out := make([]int, 0, len(next))
	for q := range next {
		out = append(out, q)
	}
	sort.Ints(out)
	return n.EpsClosure(out)
}

// ModelCheck decides t ∈ ⟦M⟧(doc) (the ModelChecking problem). For
// regular spanners this runs in time linear in |doc| (data complexity):
// the tuple is turned into an extended subword-marked word and membership
// is checked on the fly, handling the consecutive-marker-order issue of
// Section 2.2 by working with marker sets.
func ModelCheck(n *automata.NFA, doc []byte, t spans.Tuple, sem Semantics) (bool, error) {
	for v, s := range t {
		if !n.Vars.Contains(v) {
			return false, fmt.Errorf("vset: tuple assigns unknown variable %s", v)
		}
		if !s.In(len(doc)) {
			return false, fmt.Errorf("vset: span %v of %s out of range for document of length %d", s, v, len(doc))
		}
	}
	if sem == Functional && !t.TotalOn(n.Vars) {
		return false, nil
	}
	w := refwords.FromTuple(doc, t)
	return AcceptsMarked(n, w.ToMarkerSets()), nil
}

// NonEmpty decides ⟦M⟧(doc) ≠ ∅ (the NonEmptiness problem) by treating
// marker transitions as ε and checking plain NFA membership of doc —
// polynomial, as the survey describes for regular spanners.
func NonEmpty(n *automata.NFA, doc []byte) bool {
	if n.HasRefs() {
		panic("vset: NonEmpty on an automaton with reference transitions; use package refl")
	}
	cur := markerFreeClosure(n, []int{n.Start})
	for i := 0; i < len(doc); i++ {
		next := make(map[int]bool)
		for _, q := range cur {
			for _, r := range n.Letters[q][doc[i]] {
				next[r] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		lst := make([]int, 0, len(next))
		for q := range next {
			lst = append(lst, q)
		}
		sort.Ints(lst)
		cur = markerFreeClosure(n, lst)
	}
	for _, q := range cur {
		if n.Final[q] {
			return true
		}
	}
	return false
}

// markerFreeClosure closes a state set under ε and marker transitions.
func markerFreeClosure(n *automata.NFA, states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, q := range states {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push := func(r int) {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
		for _, r := range n.Eps[q] {
			push(r)
		}
		for _, rs := range n.Markers[q] {
			for _, r := range rs {
				push(r)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// Satisfiable decides whether some document yields a non-empty result
// (the Satisfiability problem): NFA non-emptiness, polynomial time.
func Satisfiable(n *automata.NFA) bool {
	return !n.Empty()
}

// Witness returns a document witnessing satisfiability along with the
// extracted tuple of a shortest accepting run, or ok=false.
func Witness(n *automata.NFA) (doc []byte, t spans.Tuple, ok bool) {
	w := n.ShortestWitness()
	if w == nil {
		return nil, nil, false
	}
	return w.Erase(), w.SpanTuple(), true
}
