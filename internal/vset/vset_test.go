package vset

import (
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/refwords"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
)

func compile(t *testing.T, src string) *automata.NFA {
	t.Helper()
	n, err := regex.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("abc")})
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return a
}

func TestEvalExample11(t *testing.T) {
	// Example 1.1: S(ababbab) has exactly four tuples.
	a := compile(t, "!x{(a|b)*}!y{b}!z{(a|b)*}")
	got := Eval(a, []byte("ababbab"), Functional)
	want := spans.NewRelation(
		spans.NewTuple("x", spans.S(1, 2), "y", spans.S(2, 3), "z", spans.S(3, 8)),
		spans.NewTuple("x", spans.S(1, 4), "y", spans.S(4, 5), "z", spans.S(5, 8)),
		spans.NewTuple("x", spans.S(1, 5), "y", spans.S(5, 6), "z", spans.S(6, 8)),
		spans.NewTuple("x", spans.S(1, 7), "y", spans.S(7, 8), "z", spans.S(8, 8)),
	)
	if !got.Equal(want) {
		t.Errorf("Eval = %v\nwant %v", got, want)
	}
}

func TestEvalEmptyDocument(t *testing.T) {
	a := compile(t, "!x{a*}")
	got := Eval(a, nil, Functional)
	if got.Len() != 1 || !got.Contains(spans.NewTuple("x", spans.S(1, 1))) {
		t.Errorf("Eval on empty doc = %v", got)
	}
}

func TestEvalNoMatch(t *testing.T) {
	a := compile(t, "!x{a}")
	got := Eval(a, []byte("b"), Functional)
	if got.Len() != 0 {
		t.Errorf("Eval = %v, want empty", got)
	}
}

func TestEvalSchemaless(t *testing.T) {
	// x is bound only on the 'a' branch.
	a := compile(t, "!x{a}|b")
	got := Eval(a, []byte("b"), Schemaless)
	if got.Len() != 1 || !got.Contains(spans.Tuple{}) {
		t.Errorf("schemaless Eval = %v", got)
	}
	// Under functional semantics the b-branch tuple is dropped.
	gf := Eval(a, []byte("b"), Functional)
	if gf.Len() != 0 {
		t.Errorf("functional Eval = %v", gf)
	}
}

func TestEvalOverlappingSpanner(t *testing.T) {
	// Non-hierarchical regular spanner: x covers a prefix ending with b,
	// y covers a suffix starting at that b: spans overlap at one letter.
	vars := spans.NewVarSet("x", "y")
	n := automata.NewNFA(vars)
	s1 := n.AddState() // inside x, before y opens
	s2 := n.AddState() // y opened, reading the shared b
	s3 := n.AddState() // x closed, inside y
	s4 := n.AddState() // y closed
	n.AddMarker(n.Start, automata.Marker{Var: "x"}, s1)
	n.AddLetter(s1, 'a', s1)
	n.AddMarker(s1, automata.Marker{Var: "y"}, s2)
	s2x := n.AddState()
	n.AddLetter(s2, 'b', s2x)
	n.AddMarker(s2x, automata.Marker{Var: "x", Close: true}, s3)
	n.AddLetter(s3, 'a', s3)
	n.AddMarker(s3, automata.Marker{Var: "y", Close: true}, s4)
	n.SetFinal(s4)

	got := Eval(n, []byte("aba"), Functional)
	want := spans.NewRelation(
		spans.NewTuple("x", spans.S(1, 3), "y", spans.S(2, 4)),
	)
	if !got.Equal(want) {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	if Hierarchical(n) {
		t.Error("overlapping spanner reported hierarchical")
	}
}

func TestModelCheck(t *testing.T) {
	a := compile(t, "!x{(a|b)*}!y{b}!z{(a|b)*}")
	doc := []byte("ababbab")
	in := spans.NewTuple("x", spans.S(1, 4), "y", spans.S(4, 5), "z", spans.S(5, 8))
	ok, err := ModelCheck(a, doc, in, Functional)
	if err != nil || !ok {
		t.Errorf("ModelCheck(in) = %v, %v", ok, err)
	}
	outT := spans.NewTuple("x", spans.S(1, 2), "y", spans.S(2, 4), "z", spans.S(4, 8))
	ok, err = ModelCheck(a, doc, outT, Functional)
	if err != nil || ok {
		t.Errorf("ModelCheck(out) = %v, %v", ok, err)
	}

	// Partial tuple under functional semantics: no.
	part := spans.NewTuple("x", spans.S(1, 4))
	if ok, _ := ModelCheck(a, doc, part, Functional); ok {
		t.Error("partial tuple accepted under functional semantics")
	}

	// Errors: unknown variable, out-of-range span.
	if _, err := ModelCheck(a, doc, spans.NewTuple("w", spans.S(1, 2)), Functional); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := ModelCheck(a, doc, spans.NewTuple("x", spans.S(1, 99)), Functional); err == nil {
		t.Error("out-of-range span accepted")
	}
}

func TestModelCheckConsecutiveMarkers(t *testing.T) {
	// The order of consecutive markers must not matter (Section 2.2):
	// tuple with ◁x and y▷ at the same boundary.
	a := compile(t, "!x{a}!y{b}")
	doc := []byte("ab")
	tup := spans.NewTuple("x", spans.S(1, 2), "y", spans.S(2, 3))
	ok, err := ModelCheck(a, doc, tup, Functional)
	if err != nil || !ok {
		t.Errorf("ModelCheck = %v, %v", ok, err)
	}
}

func TestAcceptsMarkedAgainstEval(t *testing.T) {
	a := compile(t, "!x{(a|b)+}c!y{(a|c)*}")
	doc := []byte("abcac")
	rel := Eval(a, doc, Functional)
	if rel.Len() == 0 {
		t.Fatal("expected matches")
	}
	for _, tup := range rel.Tuples() {
		w := refwords.FromTuple(doc, tup)
		if !AcceptsMarked(a, w.ToMarkerSets()) {
			t.Errorf("AcceptsMarked rejects %v from Eval", tup)
		}
	}
	// A tuple not in the relation must be rejected.
	bad := spans.NewTuple("x", spans.S(1, 2), "y", spans.S(2, 3))
	if ok, _ := ModelCheck(a, doc, bad, Functional); ok {
		t.Error("bad tuple accepted")
	}
}

func TestNonEmpty(t *testing.T) {
	a := compile(t, "!x{(a|b)*}!y{b}!z{(a|b)*}")
	if !NonEmpty(a, []byte("ab")) {
		t.Error("NonEmpty(ab) = false")
	}
	if NonEmpty(a, []byte("aaa")) {
		t.Error("NonEmpty(aaa) = true (no b)")
	}
	if NonEmpty(a, []byte("c")) {
		t.Error("NonEmpty(c) = true")
	}
}

func TestSatisfiableAndWitness(t *testing.T) {
	a := compile(t, "!x{ab}c")
	if !Satisfiable(a) {
		t.Error("Satisfiable = false")
	}
	doc, tup, ok := Witness(a)
	if !ok || string(doc) != "abc" {
		t.Errorf("Witness = %q, %v, %v", doc, tup, ok)
	}
	if tup.Get("x") != spans.S(1, 3) {
		t.Errorf("witness tuple = %v", tup)
	}

	// a ∩ b = ∅ via an automaton with unreachable final state.
	empty := automata.NewNFA(nil)
	if Satisfiable(empty) {
		t.Error("empty automaton satisfiable")
	}
	if _, _, ok := Witness(empty); ok {
		t.Error("witness for empty automaton")
	}
}

func TestHierarchicalRegexFormulas(t *testing.T) {
	// Regex-formulas are hierarchical by construction (Section 2.2).
	for _, src := range []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		"!x{a!y{b}c}",
		"!x{a}|!x{b}",
	} {
		if !Hierarchical(compile(t, src)) {
			t.Errorf("regex-formula %q reported non-hierarchical", src)
		}
	}
}

func TestHierarchicalNestedSameBoundary(t *testing.T) {
	// x and y open at the same boundary and close at the same boundary:
	// equal spans are nested (x ⊆ y), hence hierarchical.
	a := compile(t, "!x{!y{ab}}")
	if !Hierarchical(a) {
		t.Error("equal spans reported overlapping")
	}
}

func TestContainsAndEquivalent(t *testing.T) {
	a := compile(t, "!x{a}")
	b := compile(t, "!x{a|b}")
	if !Contains(a, b) {
		t.Error("a ⊆ b fails")
	}
	if Contains(b, a) {
		t.Error("b ⊆ a should fail")
	}
	if Equivalent(a, b) {
		t.Error("a ≡ b should fail")
	}

	// Same spanner, different expressions: (a|b) vs (b|a).
	c := compile(t, "!x{b|a}")
	if !Equivalent(b, c) {
		t.Error("b ≡ c fails")
	}

	// Different variable sets are never equivalent when both bind.
	d := compile(t, "!y{a}")
	if Equivalent(a, d) {
		t.Error("x-spanner equivalent to y-spanner")
	}
}

func TestEquivalentMarkerOrderInsensitive(t *testing.T) {
	// Adjacent-span spanners written with different consecutive-marker
	// orders: !x{a}!y{b} built from regex, and a hand-built automaton that
	// emits y▷ before ◁x at the shared boundary.
	a := compile(t, "!x{a}!y{b}")

	vars := spans.NewVarSet("x", "y")
	h := automata.NewNFA(vars)
	s1 := h.AddState()
	s2 := h.AddState()
	s3 := h.AddState() // y▷ fired before ◁x
	s4 := h.AddState()
	s5 := h.AddState()
	s6 := h.AddState()
	h.AddMarker(h.Start, automata.Marker{Var: "x"}, s1)
	h.AddLetter(s1, 'a', s2)
	h.AddMarker(s2, automata.Marker{Var: "y"}, s3) // y▷ first…
	h.AddMarker(s3, automata.Marker{Var: "x", Close: true}, s4)
	h.AddLetter(s4, 'b', s5)
	h.AddMarker(s5, automata.Marker{Var: "y", Close: true}, s6)
	h.SetFinal(s6)

	if !Equivalent(a, h) {
		t.Error("marker-order variants reported inequivalent")
	}
}

func TestEvalAgainstModelCheckQuick(t *testing.T) {
	// Cross-validate: every tuple Eval returns passes ModelCheck, and
	// ModelCheck finds no tuple outside Eval's relation on a small doc.
	a := compile(t, "!x{(a|b)+}!y{(b|c)*}")
	doc := []byte("abbc")
	rel := Eval(a, doc, Functional)
	n := len(doc)
	count := 0
	for xb := 1; xb <= n+1; xb++ {
		for xe := xb; xe <= n+1; xe++ {
			for yb := 1; yb <= n+1; yb++ {
				for ye := yb; ye <= n+1; ye++ {
					tup := spans.NewTuple("x", spans.S(xb, xe), "y", spans.S(yb, ye))
					ok, err := ModelCheck(a, doc, tup, Functional)
					if err != nil {
						t.Fatal(err)
					}
					if ok != rel.Contains(tup) {
						t.Fatalf("ModelCheck(%v) = %v but Eval relation says %v", tup, ok, rel.Contains(tup))
					}
					if ok {
						count++
					}
				}
			}
		}
	}
	if count != rel.Len() {
		t.Errorf("count mismatch: %d vs %d", count, rel.Len())
	}
}

func TestDifference(t *testing.T) {
	a := compile(t, ".*!x{(a|b)}.*")
	b := compile(t, ".*!x{b}.*")
	diff := Difference(a, b) // x over an 'a' only
	for _, doc := range []string{"", "a", "ab", "abba", "bbb", "aabba"} {
		want := Eval(a, []byte(doc), Schemaless).Minus(Eval(b, []byte(doc), Schemaless))
		got := Eval(diff, []byte(doc), Schemaless)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n got  %v\n want %v", doc, got, want)
		}
	}
	// a ∖ a is the empty spanner.
	empty := Difference(a, a)
	if Satisfiable(empty.Trim()) {
		t.Error("a ∖ a satisfiable")
	}
}

func TestDifferenceRandom(t *testing.T) {
	exprs := [][2]string{
		{"!x{(a|b)+}", "!x{a+}"},
		{".*!x{ab}.*", ".*!x{ab}b.*"},
		{"!x{a*}!y{b*}", "!x{a}!y{b*}"},
	}
	docs := []string{"", "a", "ab", "ba", "aabb", "abab"}
	for _, pair := range exprs {
		a, b := compile(t, pair[0]), compile(t, pair[1])
		diff := Difference(a, b)
		for _, doc := range docs {
			want := Eval(a, []byte(doc), Schemaless).Minus(Eval(b, []byte(doc), Schemaless))
			got := Eval(diff, []byte(doc), Schemaless)
			if !got.Equal(want) {
				t.Errorf("%v on %q:\n got  %v\n want %v", pair, doc, got, want)
			}
		}
	}
}
