package vset

import (
	"testing"

	"docspanner/internal/spans"
)

func TestAlwaysBound(t *testing.T) {
	cases := []struct {
		src  string
		v    spans.Var
		want bool
	}{
		{"!x{a+}", "x", true},
		{"!x{a+}b*", "x", true},
		{"(!x{a}|b)", "x", false},    // x unbound on the b-branch
		{"(!x{a}|!x{b})", "x", true}, // bound on both branches
		{"!x{a}?b", "x", false},      // the optional binding can be skipped
		{"!x{a*}", "x", true},        // binds the empty span, but binds
		{"(!x{a}|!y{b})", "y", false},
	}
	for _, c := range cases {
		a := compile(t, c.src)
		if got := AlwaysBound(a, c.v); got != c.want {
			t.Errorf("AlwaysBound(%q, %s) = %v, want %v", c.src, c.v, got, c.want)
		}
	}
}

func TestAllBound(t *testing.T) {
	a := compile(t, "!x{a+}!y{b+}")
	if !AllBound(a, a.Vars) {
		t.Error("AllBound false for a spanner binding every variable on every path")
	}
	b := compile(t, "(!x{a}|!y{b})")
	if AllBound(b, b.Vars) {
		t.Error("AllBound true for branch-only bindings")
	}
	if !AllBound(b, nil) {
		t.Error("AllBound false on the empty variable set")
	}
}
