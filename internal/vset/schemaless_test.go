package vset

import (
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// TestWitnessSchemaless pins Witness on spanners that genuinely use the
// schemaless semantics: variables unbound on some accepting runs.
func TestWitnessSchemaless(t *testing.T) {
	// Two alternatives, each binding only one variable: any witness is a
	// one-letter document with a partial tuple.
	a := compile(t, "!x{a}|!y{b}")
	doc, tup, ok := Witness(a)
	if !ok {
		t.Fatal("Witness not found for a satisfiable schemaless spanner")
	}
	if len(doc) != 1 {
		t.Errorf("witness doc = %q, want a single letter", doc)
	}
	bound := tup.Vars()
	if len(bound) != 1 {
		t.Fatalf("witness tuple %v should bind exactly one of x, y", tup)
	}
	switch bound[0] {
	case "x":
		if string(doc) != "a" || tup.Get("x") != spans.S(1, 2) {
			t.Errorf("x-witness = %q, %v", doc, tup)
		}
	case "y":
		if string(doc) != "b" || tup.Get("y") != spans.S(1, 2) {
			t.Errorf("y-witness = %q, %v", doc, tup)
		}
	default:
		t.Errorf("unexpected bound variable %v", bound)
	}
	// The witness must be a genuine member of the schemaless evaluation.
	if in, err := ModelCheck(a, doc, tup, Schemaless); err != nil || !in {
		t.Errorf("witness does not model-check: %v, %v", in, err)
	}

	// Optional binding: the shortest run skips the binding entirely, so
	// the witness tuple is fully unassigned.
	opt := compile(t, "(!x{a})?b")
	doc, tup, ok = Witness(opt)
	if !ok || string(doc) != "b" {
		t.Fatalf("Witness = %q, %v, %v; want doc \"b\"", doc, tup, ok)
	}
	if len(tup.Vars()) != 0 {
		t.Errorf("witness tuple %v should leave x unassigned on the shortest run", tup)
	}
}

// TestAutomataDifferenceSchemaless exercises automata.Difference directly
// on determinized schemaless spanners: extended-word difference must agree
// with set difference of the schemaless evaluations, preserving partial
// tuples.
func TestAutomataDifferenceSchemaless(t *testing.T) {
	a := compile(t, "!x{a}|!y{b}")
	b := compile(t, "!y{b}")
	ca, cb := alignVars(a, b)
	d := automata.Difference(automata.Determinize(ca), automata.Determinize(cb))
	n := automata.DEVAToNFA(d)

	for _, doc := range []string{"", "a", "b", "ab", "ba"} {
		want := Eval(a, []byte(doc), Schemaless).Minus(Eval(b, []byte(doc), Schemaless))
		got := Eval(n, []byte(doc), Schemaless)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n got  %v\n want %v", doc, got, want)
		}
	}

	// The partial x-tuple survives, the y-branch is subtracted exactly.
	onA := Eval(n, []byte("a"), Schemaless)
	if onA.Len() != 1 || !onA.Contains(spans.NewTuple("x", spans.S(1, 2))) {
		t.Errorf("difference on \"a\" = %v, want exactly {x=[1,2)}", onA)
	}
	if onB := Eval(n, []byte("b"), Schemaless); onB.Len() != 0 {
		t.Errorf("difference on \"b\" = %v, want empty", onB)
	}

	// Subtracting a spanner from itself leaves nothing, partial tuples
	// included.
	self := automata.Difference(automata.Determinize(a), automata.Determinize(a))
	if Satisfiable(automata.DEVAToNFA(self).Trim()) {
		t.Error("a ∖ a should be unsatisfiable")
	}
}

// TestDifferenceSchemalessPartialOverlap pins the subtle case where the
// same document yields both a partial and a total tuple: the difference
// must distinguish them as distinct extended words.
func TestDifferenceSchemalessPartialOverlap(t *testing.T) {
	// On "ab": binds x always, y optionally — tuples {x} and {x, y}.
	a := compile(t, "!x{a}(!y{b})?b*")
	// Subtracts exactly the partial tuple {x}.
	b := compile(t, "!x{a}b*")
	diff := Difference(a, b)
	got := Eval(diff, []byte("ab"), Schemaless)
	want := spans.NewRelation(
		spans.NewTuple("x", spans.S(1, 2), "y", spans.S(2, 3)),
	)
	if !got.Equal(want) {
		t.Errorf("difference on \"ab\" = %v, want %v", got, want)
	}

	// And the total tuple model-checks in the difference while the partial
	// one does not.
	if in, err := ModelCheck(diff, []byte("ab"), spans.NewTuple("x", spans.S(1, 2)), Schemaless); err != nil || in {
		t.Errorf("partial tuple should be subtracted: %v, %v", in, err)
	}
}
