package split

import (
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

const alphabet = "ab;"

func compile(t *testing.T, src string) *automata.NFA {
	t.Helper()
	ast, err := regex.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte(alphabet)})
	if err != nil {
		t.Fatal(err)
	}
	return nfa
}

// segmentSplitter splits the document at semicolons: s ranges over the
// maximal ;-free segments.
func segmentSplitter(t *testing.T) *automata.NFA {
	return compile(t, "(.*;)?!s{[ab]*}(;.*)?")
}

func TestSplits(t *testing.T) {
	sp := segmentSplitter(t)
	doc := []byte("ab;a;;bb")
	got := Splits(sp, "s", doc)
	want := []spans.Span{spans.S(1, 3), spans.S(4, 5), spans.S(6, 6), spans.S(7, 9)}
	if len(got) != len(want) {
		t.Fatalf("Splits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("split %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvalSplitShiftsSpans(t *testing.T) {
	sp := segmentSplitter(t)
	p := compile(t, ".*!x{aa}.*")
	doc := []byte("b;aab;aa")
	rel := EvalSplit(p, sp, "s", doc, vset.Schemaless)
	want := spans.NewRelation(
		spans.NewTuple("x", spans.S(3, 5)),
		spans.NewTuple("x", spans.S(7, 9)),
	)
	if !rel.Equal(want) {
		t.Errorf("EvalSplit = %v, want %v", rel, want)
	}
}

func TestComposeMatchesEvalSplit(t *testing.T) {
	sp := segmentSplitter(t)
	for _, psrc := range []string{
		".*!x{aa}.*",
		"!x{[ab]*}",
		".*!x{a}!y{b}.*",
		".*!x{a;a}.*", // cannot match inside any split
	} {
		p := compile(t, psrc)
		composed, err := Compose(p, sp, "s")
		if err != nil {
			t.Fatal(err)
		}
		for _, doc := range []string{"", "a", "ab;ba", "aa;a;aa", "a;a", ";;", "ab", "aabb;ab"} {
			want := EvalSplit(p, sp, "s", []byte(doc), vset.Schemaless)
			got := vset.Eval(composed, []byte(doc), vset.Schemaless)
			if !got.Equal(want) {
				t.Errorf("%s on %q:\n composed  %v\n evalsplit %v", psrc, doc, got, want)
			}
		}
	}
}

func TestCorrectPositive(t *testing.T) {
	// aa cannot cross a semicolon, so extracting it per segment is
	// split-correct.
	sp := segmentSplitter(t)
	p := compile(t, ".*!x{aa}.*")
	res, err := Correct(p, sp, "s", []byte(alphabet), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Errorf("expected split-correct; counterexample %q", res.Counterexample)
	}
}

func TestCorrectNegative(t *testing.T) {
	// a;a crosses segment boundaries: not split-correct, with a short
	// counterexample.
	sp := segmentSplitter(t)
	p := compile(t, ".*!x{a;a}.*")
	res, err := Correct(p, sp, "s", []byte(alphabet), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct {
		t.Fatal("expected split-incorrect")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample found")
	}
	doc := res.Counterexample
	direct := vset.Eval(p, doc, vset.Schemaless)
	splitEval := EvalSplit(p, sp, "s", doc, vset.Schemaless)
	if direct.Equal(splitEval) {
		t.Errorf("counterexample %q does not separate the evaluations", doc)
	}
}

func TestCorrectErrors(t *testing.T) {
	sp := segmentSplitter(t)
	p := compile(t, ".*!x{aa}.*")
	if _, err := Correct(p, sp, "nosuchvar", []byte(alphabet), 2); err == nil {
		t.Error("unknown split variable accepted")
	}
	// Reference automaton rejected.
	ast, err := regex.Parse("!x{a}&x")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := regex.Compile(ast, regex.Options{Alphabet: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose(ref, sp, "s"); err == nil {
		t.Error("ref automaton accepted")
	}
}

func TestComposeEmptySplit(t *testing.T) {
	// Empty segments: p must accept ε to contribute.
	sp := segmentSplitter(t)
	pEps := compile(t, "!x{a*}")
	composed, err := Compose(pEps, sp, "s")
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte(";;")
	got := vset.Eval(composed, doc, vset.Schemaless)
	want := EvalSplit(pEps, sp, "s", doc, vset.Schemaless)
	if !got.Equal(want) {
		t.Errorf("empty-split compose = %v, want %v", got, want)
	}
	if want.Len() != 3 { // empty x at positions 1, 2, 3
		t.Errorf("EvalSplit = %v", want)
	}
}
