// Package split implements split-correctness for regular spanners, after
// Doleschal, Kimelfeld, Martens, Nahshon, and Neven (PODS 2019), cited in
// the survey's bibliography: in practice a document is often split (into
// lines, sentences, records) by a *splitter* spanner, and the extraction
// spanner runs on each split separately. The spanner P is split-correct
// with respect to splitter S when evaluating P inside every split (and
// shifting the spans back) yields exactly P's result on the whole
// document.
//
// For regular spanners the package offers the real decision procedure:
// the split evaluation itself is a regular spanner obtained by a product
// construction (Compose), so split-correctness reduces to spanner
// equivalence — decidable, unlike for core spanners.
package split

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Splits returns the spans extracted by the splitter's split variable on
// doc, in document order.
func Splits(splitter *automata.NFA, splitVar spans.Var, doc []byte) []spans.Span {
	rel := vset.Eval(splitter, doc, vset.Schemaless)
	var out []spans.Span
	seen := map[spans.Span]bool{}
	for _, t := range rel.Tuples() {
		if s, ok := t[splitVar]; ok && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	// Document order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Compare(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EvalSplit evaluates p on every split of doc and shifts the extracted
// spans back into whole-document coordinates — the operational
// "split-then-extract" pipeline.
func EvalSplit(p *automata.NFA, splitter *automata.NFA, splitVar spans.Var, doc []byte, sem vset.Semantics) *spans.Relation {
	out := spans.NewRelation()
	for _, s := range Splits(splitter, splitVar, doc) {
		factor := s.Content(doc)
		rel := vset.Eval(p, factor, sem)
		for _, t := range rel.Tuples() {
			shifted := make(spans.Tuple, len(t))
			for v, sp := range t {
				shifted[v] = spans.S(sp.Begin+s.Begin-1, sp.End+s.Begin-1)
			}
			out.Add(shifted)
		}
	}
	return out
}

// Compose builds the split evaluation as a single regular spanner: a
// product automaton that runs the splitter over the whole document and,
// inside the chosen split, runs p on the split's factor as if it were the
// entire document. The splitter's own variables are hidden; the result's
// variables are p's. Both automata must be reference-free.
func Compose(p *automata.NFA, splitter *automata.NFA, splitVar spans.Var) (*automata.NFA, error) {
	if p.HasRefs() || splitter.HasRefs() {
		return nil, fmt.Errorf("split: reference transitions unsupported")
	}
	if !splitter.Vars.Contains(splitVar) {
		return nil, fmt.Errorf("split: splitter does not bind %s", splitVar)
	}
	// Hide the splitter's other variables; keep splitVar markers as the
	// region delimiters.
	s := automata.Project(splitter, spans.NewVarSet(splitVar))

	out := automata.NewNFA(p.Vars)
	type phase uint8
	const (
		before phase = iota
		inside
		after
	)
	type state struct {
		qs int
		ph phase
		qp int // meaningful when ph == inside
	}
	ids := map[state]int{}
	var order []state
	intern := func(st state) int {
		if id, ok := ids[st]; ok {
			return id
		}
		var id int
		if len(ids) == 0 {
			id = out.Start
		} else {
			id = out.AddState()
		}
		ids[st] = id
		order = append(order, st)
		if st.ph == after && s.Final[st.qs] {
			out.SetFinal(id)
		}
		return id
	}
	intern(state{s.Start, before, -1})

	openM := automata.Marker{Var: splitVar}
	closeM := automata.Marker{Var: splitVar, Close: true}

	for i := 0; i < len(order); i++ {
		st := order[i]
		src := ids[st]
		switch st.ph {
		case before, after:
			for _, r := range s.Eps[st.qs] {
				out.AddEps(src, intern(state{r, st.ph, -1}))
			}
			for b, rs := range s.Letters[st.qs] {
				for _, r := range rs {
					out.AddLetter(src, b, intern(state{r, st.ph, -1}))
				}
			}
			if st.ph == before {
				for _, r := range s.Markers[st.qs][openM] {
					// Enter the split: activate p at its start.
					out.AddEps(src, intern(state{r, inside, p.Start}))
				}
			}
		case inside:
			// Either automaton's ε moves.
			for _, r := range s.Eps[st.qs] {
				out.AddEps(src, intern(state{r, inside, st.qp}))
			}
			for _, r := range p.Eps[st.qp] {
				out.AddEps(src, intern(state{st.qs, inside, r}))
			}
			// p's markers fire freely inside.
			for m, rs := range p.Markers[st.qp] {
				for _, r := range rs {
					out.AddMarker(src, m, intern(state{st.qs, inside, r}))
				}
			}
			// Letters advance both.
			for b, rsS := range s.Letters[st.qs] {
				rsP, ok := p.Letters[st.qp][b]
				if !ok {
					continue
				}
				for _, rS := range rsS {
					for _, rP := range rsP {
						out.AddLetter(src, b, intern(state{rS, inside, rP}))
					}
				}
			}
			// Leave the split: p must accept its factor.
			if p.Final[st.qp] {
				for _, r := range s.Markers[st.qs][closeM] {
					out.AddEps(src, intern(state{r, after, -1}))
				}
			}
		}
	}
	return out, nil
}

// Result reports the outcome of a split-correctness check.
type Result struct {
	Correct bool
	// Counterexample is a document on which split evaluation and direct
	// evaluation differ (present when Correct is false and the witness
	// search succeeded).
	Counterexample []byte
}

// Correct decides split-correctness of p with respect to the splitter —
// exactly, via equivalence of regular spanners (Compose(p, splitter) ≡ p).
// When incorrect, a short counterexample document is searched for by
// bounded enumeration over the given alphabet.
func Correct(p *automata.NFA, splitter *automata.NFA, splitVar spans.Var, alphabet []byte, maxWitness int) (Result, error) {
	composed, err := Compose(p, splitter, splitVar)
	if err != nil {
		return Result{}, err
	}
	if vset.Equivalent(composed, p) {
		return Result{Correct: true}, nil
	}
	// Find a witness by bounded search.
	var doc []byte
	var rec func(depth int) []byte
	rec = func(depth int) []byte {
		direct := vset.Eval(p, doc, vset.Schemaless)
		split := EvalSplit(p, splitter, splitVar, doc, vset.Schemaless)
		if !direct.Equal(split) {
			return append([]byte(nil), doc...)
		}
		if depth == maxWitness {
			return nil
		}
		for _, c := range alphabet {
			doc = append(doc, c)
			if w := rec(depth + 1); w != nil {
				return w
			}
			doc = doc[:len(doc)-1]
		}
		return nil
	}
	return Result{Correct: false, Counterexample: rec(0)}, nil
}
