package spans

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tuple is an (X,D)-tuple: a mapping from variables to spans of a document.
// Under the classical semantics the mapping is total on the spanner's
// variable set; under the schemaless semantics of Maturana, Riveros, and
// Vrgoč variables may be unassigned, represented by absence from the map
// (equivalently, by the Undefined span).
type Tuple map[Var]Span

// NewTuple builds a tuple from alternating variable/span pairs.
func NewTuple(pairs ...any) Tuple {
	if len(pairs)%2 != 0 {
		panic("spans.NewTuple: odd number of arguments")
	}
	t := make(Tuple, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		v, ok := pairs[i].(Var)
		if !ok {
			v = Var(pairs[i].(string))
		}
		t[v] = pairs[i+1].(Span)
	}
	return t
}

// Get returns the span assigned to v, or Undefined.
func (t Tuple) Get(v Var) Span {
	if s, ok := t[v]; ok {
		return s
	}
	return Undefined
}

// Vars returns the canonical set of variables assigned by t.
func (t Tuple) Vars() VarSet {
	vars := make([]Var, 0, len(t))
	for v := range t {
		vars = append(vars, v)
	}
	return NewVarSet(vars...)
}

// TotalOn reports whether t assigns a span to every variable in vars,
// i.e. whether t is functional with respect to vars (Section 2.2).
func (t Tuple) TotalOn(vars VarSet) bool {
	for _, v := range vars {
		if _, ok := t[v]; !ok {
			return false
		}
	}
	return true
}

// Hierarchical reports whether the assigned spans are pairwise nested or
// disjoint (Section 2.2): no two bracket pairs interleave.
func (t Tuple) Hierarchical() bool {
	vars := t.Vars()
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if !t[vars[i]].DisjointOrNested(t[vars[j]]) {
				return false
			}
		}
	}
	return true
}

// Project returns the restriction of t to vars. Variables in vars that t
// does not assign stay unassigned in the result.
func (t Tuple) Project(vars VarSet) Tuple {
	out := make(Tuple, len(vars))
	for _, v := range vars {
		if s, ok := t[v]; ok {
			out[v] = s
		}
	}
	return out
}

// Compatible reports whether t and u agree on every variable they share,
// the precondition for their natural join.
func (t Tuple) Compatible(u Tuple) bool {
	for v, s := range t {
		if s2, ok := u[v]; ok && s2 != s {
			return false
		}
	}
	return true
}

// Join returns the union of two compatible tuples. The caller must have
// checked Compatible.
func (t Tuple) Join(u Tuple) Tuple {
	out := make(Tuple, len(t)+len(u))
	for v, s := range t {
		out[v] = s
	}
	for v, s := range u {
		out[v] = s
	}
	return out
}

// Equal reports whether two tuples assign exactly the same spans.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for v, s := range t {
		if s2, ok := u[v]; !ok || s2 != s {
			return false
		}
	}
	return true
}

// Fuse implements the column-fusion operator ⨄_{λ→x} of Schmid and
// Schweikardt (Section 3.2): the variables in lambda are removed and a new
// variable target is assigned the span from the minimum left bound to the
// maximum right bound of their spans. Variables in lambda that are
// unassigned are ignored; if none of them is assigned, target is left
// unassigned. It panics if target is already assigned and not in lambda.
func (t Tuple) Fuse(lambda VarSet, target Var) Tuple {
	out := make(Tuple, len(t))
	begin, end := 0, 0
	for v, s := range t {
		if lambda.Contains(v) {
			if begin == 0 || s.Begin < begin {
				begin = s.Begin
			}
			if s.End > end {
				end = s.End
			}
			continue
		}
		if v == target {
			panic(fmt.Sprintf("spans.Fuse: target %s already assigned", target))
		}
		out[v] = s
	}
	if begin != 0 {
		out[target] = Span{begin, end}
	}
	return out
}

// Key returns a canonical string encoding of t, usable as a set key.
// Variables appear in sorted order. This sits on the dedup path of every
// Relation.Add, so it avoids fmt and sorts its small scratch in place —
// one allocation (the returned string) for typical tuples.
func (t Tuple) Key() string {
	if len(t) == 0 {
		return ""
	}
	var varArr [8]Var
	vars := varArr[:0]
	if len(t) > len(varArr) {
		vars = make([]Var, 0, len(t))
	}
	for v := range t {
		vars = append(vars, v)
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	var bufArr [64]byte
	buf := bufArr[:0]
	for _, v := range vars {
		s := t[v]
		buf = append(buf, v...)
		buf = append(buf, '=')
		buf = strconv.AppendInt(buf, int64(s.Begin), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(s.End), 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// String renders the tuple with variables in sorted order, e.g.
// (x: [1,2⟩, y: [2,3⟩).
func (t Tuple) String() string {
	vars := t.Vars()
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("%s: %s", v, t[v])
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Compare orders tuples first by their variable sets, then pointwise by
// span. It induces the deterministic output order used by Relation.Sorted.
func (t Tuple) Compare(u Tuple) int {
	return compareWithVars(t, u, t.Vars(), u.Vars())
}

// compareWithVars is Compare with the canonical variable sets computed
// by the caller — the sort below derives them once per tuple instead of
// twice per comparison.
func compareWithVars(t, u Tuple, tv, uv VarSet) int {
	for i := 0; i < len(tv) && i < len(uv); i++ {
		if tv[i] != uv[i] {
			if tv[i] < uv[i] {
				return -1
			}
			return 1
		}
		if c := t[tv[i]].Compare(u[uv[i]]); c != 0 {
			return c
		}
	}
	switch {
	case len(tv) < len(uv):
		return -1
	case len(tv) > len(uv):
		return 1
	}
	return 0
}

// SortTuples sorts ts in place into the canonical Compare order,
// decorating each tuple with its variable set once up front (Compare
// would otherwise rebuild and re-sort both sets on every comparison).
func SortTuples(ts []Tuple) {
	if len(ts) < 2 {
		return
	}
	type dec struct {
		t Tuple
		v VarSet
	}
	ds := make([]dec, len(ts))
	for i, t := range ts {
		ds[i] = dec{t, t.Vars()}
	}
	sort.Slice(ds, func(i, j int) bool {
		return compareWithVars(ds[i].t, ds[j].t, ds[i].v, ds[j].v) < 0
	})
	for i := range ds {
		ts[i] = ds[i].t
	}
}
