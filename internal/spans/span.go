// Package spans defines the basic data model of document spanners: spans,
// span tuples, and span relations over a document.
//
// A document D = a1 a2 ... an is a []byte over a finite alphabet. Following
// Fagin, Kimelfeld, Reiss, and Vansummeren (J. ACM 2015) and the survey by
// Schmid and Schweikardt (PODS 2022), a span of D is an interval [i,j⟩ with
// 1 <= i <= j <= |D|+1 that represents the factor a_i ... a_{j-1}. Span
// tuples map variables to spans (possibly partially, under the schemaless
// semantics), and span relations are sets of span tuples.
package spans

import (
	"fmt"
	"sort"
	"strings"
)

// Span is an interval [Begin,End⟩ of a document, using the paper's 1-based
// convention: a span of a document D satisfies 1 <= Begin <= End <= |D|+1
// and denotes the factor D[Begin-1 : End-1].
type Span struct {
	Begin int
	End   int
}

// Undefined is the span value used for unassigned variables under the
// schemaless semantics (written ⊥ in the literature). It is not a valid
// span of any document.
var Undefined = Span{0, 0}

// S is a shorthand constructor for the span [begin,end⟩.
func S(begin, end int) Span { return Span{Begin: begin, End: end} }

// IsDefined reports whether s is an actual span rather than ⊥.
func (s Span) IsDefined() bool { return s.Begin >= 1 }

// Len returns the length of the factor denoted by s.
func (s Span) Len() int { return s.End - s.Begin }

// In reports whether s is a valid span of a document of length n, i.e.
// whether 1 <= Begin <= End <= n+1.
func (s Span) In(n int) bool {
	return 1 <= s.Begin && s.Begin <= s.End && s.End <= n+1
}

// Content returns the factor of doc denoted by s. It panics if s is not a
// valid span of doc, mirroring out-of-range slice indexing.
func (s Span) Content(doc []byte) []byte {
	return doc[s.Begin-1 : s.End-1]
}

// Overlaps reports whether s and t overlap without one containing the
// other being required; two spans overlap if they share at least one
// position, i.e. their intersection [max(b), min(e)⟩ is non-empty.
// Empty spans overlap nothing.
func (s Span) Overlaps(t Span) bool {
	b := s.Begin
	if t.Begin > b {
		b = t.Begin
	}
	e := s.End
	if t.End < e {
		e = t.End
	}
	return b < e
}

// Contains reports whether t lies fully inside s ([s ⊇ t]).
func (s Span) Contains(t Span) bool {
	return s.Begin <= t.Begin && t.End <= s.End
}

// DisjointOrNested reports whether s and t are hierarchically compatible:
// either one contains the other, or they do not properly overlap. This is
// the pairwise condition defining hierarchical span tuples (Section 2.2 of
// the survey): bracket pairs are strictly nested or disjoint.
func (s Span) DisjointOrNested(t Span) bool {
	if s.Contains(t) || t.Contains(s) {
		return true
	}
	// Disjoint as intervals of *positions between letters*: the bracket
	// sequence x▷ ... ◁x  y▷ ... ◁y is well-nested iff the intervals
	// [Begin,End] viewed on marker positions do not interleave.
	return s.End <= t.Begin || t.End <= s.Begin
}

// String renders the span in the paper's [i,j⟩ notation.
func (s Span) String() string {
	if !s.IsDefined() {
		return "⊥"
	}
	return fmt.Sprintf("[%d,%d⟩", s.Begin, s.End)
}

// Compare orders spans lexicographically by (Begin, End); Undefined sorts
// before all defined spans.
func (s Span) Compare(t Span) int {
	switch {
	case s.Begin < t.Begin:
		return -1
	case s.Begin > t.Begin:
		return 1
	case s.End < t.End:
		return -1
	case s.End > t.End:
		return 1
	}
	return 0
}

// Var is a capture variable of a spanner. Variables are identified by
// name; the ordering used to present tuples is lexicographic.
type Var string

// VarSet is an ordered set of variables. The canonical form is sorted and
// duplicate-free; NewVarSet establishes it.
type VarSet []Var

// NewVarSet returns the canonical (sorted, deduplicated) variable set
// containing the given variables.
func NewVarSet(vars ...Var) VarSet {
	vs := make(VarSet, len(vars))
	copy(vs, vars)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether v is a member of the set.
func (vs VarSet) Contains(v Var) bool {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	return i < len(vs) && vs[i] == v
}

// Index returns the position of v in the canonical order, or -1.
func (vs VarSet) Index(v Var) int {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	if i < len(vs) && vs[i] == v {
		return i
	}
	return -1
}

// Union returns the canonical union of vs and other.
func (vs VarSet) Union(other VarSet) VarSet {
	all := make([]Var, 0, len(vs)+len(other))
	all = append(all, vs...)
	all = append(all, other...)
	return NewVarSet(all...)
}

// Intersect returns the canonical intersection of vs and other.
func (vs VarSet) Intersect(other VarSet) VarSet {
	var out []Var
	for _, v := range vs {
		if other.Contains(v) {
			out = append(out, v)
		}
	}
	return NewVarSet(out...)
}

// Minus returns vs \ other in canonical form.
func (vs VarSet) Minus(other VarSet) VarSet {
	var out []Var
	for _, v := range vs {
		if !other.Contains(v) {
			out = append(out, v)
		}
	}
	return NewVarSet(out...)
}

// Equal reports whether two canonical variable sets are equal.
func (vs VarSet) Equal(other VarSet) bool {
	if len(vs) != len(other) {
		return false
	}
	for i := range vs {
		if vs[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the set as {x, y, z}.
func (vs VarSet) String() string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
