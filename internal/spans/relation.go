package spans

import (
	"strings"
)

// Relation is an (X,D)-relation: a set of span tuples. The zero value is
// the empty relation. Set semantics are maintained through Add, which
// deduplicates by the canonical tuple key.
type Relation struct {
	tuples []Tuple
	index  map[string]int
}

// NewRelation returns a relation containing the given tuples (with
// duplicates removed).
func NewRelation(tuples ...Tuple) *Relation {
	r := &Relation{}
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Add inserts t if not already present and reports whether it was new.
func (r *Relation) Add(t Tuple) bool {
	if r.index == nil {
		r.index = make(map[string]int)
	}
	k := t.Key()
	if _, ok := r.index[k]; ok {
		return false
	}
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return true
}

// Contains reports whether t is a member of the relation.
func (r *Relation) Contains(t Tuple) bool {
	if r == nil || r.index == nil {
		return false
	}
	_, ok := r.index[t.Key()]
	return ok
}

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	return len(r.tuples)
}

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.Len() == 0 }

// Tuples returns the tuples in insertion order. The slice is shared;
// callers must not modify it.
func (r *Relation) Tuples() []Tuple {
	if r == nil {
		return nil
	}
	return r.tuples
}

// Sorted returns the tuples in the canonical Compare order (a fresh slice).
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, r.Len())
	copy(out, r.Tuples())
	SortTuples(out)
	return out
}

// Equal reports whether two relations contain exactly the same tuples.
func (r *Relation) Equal(other *Relation) bool {
	if r.Len() != other.Len() {
		return false
	}
	for _, t := range r.Tuples() {
		if !other.Contains(t) {
			return false
		}
	}
	return true
}

// Union returns r ∪ other as a new relation.
func (r *Relation) Union(other *Relation) *Relation {
	out := NewRelation()
	for _, t := range r.Tuples() {
		out.Add(t)
	}
	for _, t := range other.Tuples() {
		out.Add(t)
	}
	return out
}

// Join returns the natural join r ⋈ other: all unions of compatible
// tuples. Under the schemaless semantics, compatibility only constrains
// variables assigned on both sides.
func (r *Relation) Join(other *Relation) *Relation {
	out := NewRelation()
	for _, t := range r.Tuples() {
		for _, u := range other.Tuples() {
			if t.Compatible(u) {
				out.Add(t.Join(u))
			}
		}
	}
	return out
}

// Project returns π_vars(r): every tuple restricted to vars.
func (r *Relation) Project(vars VarSet) *Relation {
	out := NewRelation()
	for _, t := range r.Tuples() {
		out.Add(t.Project(vars))
	}
	return out
}

// SelectEqual returns ς=_Z(r) on document doc: the tuples of r for which
// the spans of all variables in z denote the same factor of doc.
// Following the schemaless convention of Schmid and Schweikardt, a tuple
// passes the selection only if it assigns every variable in z.
func (r *Relation) SelectEqual(doc []byte, z VarSet) *Relation {
	out := NewRelation()
	for _, t := range r.Tuples() {
		if tupleSatisfiesEquality(doc, t, z) {
			out.Add(t)
		}
	}
	return out
}

func tupleSatisfiesEquality(doc []byte, t Tuple, z VarSet) bool {
	if len(z) == 0 {
		return true
	}
	first, ok := t[z[0]]
	if !ok {
		return false
	}
	ref := first.Content(doc)
	for _, v := range z[1:] {
		s, ok := t[v]
		if !ok {
			return false
		}
		if string(s.Content(doc)) != string(ref) {
			return false
		}
	}
	return true
}

// Fuse applies the column-fusion operator ⨄_{λ→x} to every tuple.
func (r *Relation) Fuse(lambda VarSet, target Var) *Relation {
	out := NewRelation()
	for _, t := range r.Tuples() {
		out.Add(t.Fuse(lambda, target))
	}
	return out
}

// Functional reports whether every tuple is total on vars (Section 2.2).
func (r *Relation) Functional(vars VarSet) bool {
	for _, t := range r.Tuples() {
		if !t.TotalOn(vars) {
			return false
		}
	}
	return true
}

// Hierarchical reports whether every tuple is hierarchical.
func (r *Relation) Hierarchical() bool {
	for _, t := range r.Tuples() {
		if !t.Hierarchical() {
			return false
		}
	}
	return true
}

// String renders the relation as one tuple per line in canonical order.
func (r *Relation) String() string {
	ts := r.Sorted()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, "\n ") + "}"
}

// Minus returns r ∖ other as a new relation.
func (r *Relation) Minus(other *Relation) *Relation {
	out := NewRelation()
	for _, t := range r.Tuples() {
		if !other.Contains(t) {
			out.Add(t)
		}
	}
	return out
}
