package spans

import (
	"testing"
)

func TestTupleBasics(t *testing.T) {
	tp := NewTuple("x", Span{1, 2}, "y", Span{2, 3})
	if tp.Get("x") != (Span{1, 2}) {
		t.Error("Get x wrong")
	}
	if tp.Get("z") != Undefined {
		t.Error("Get missing should be Undefined")
	}
	if !tp.Vars().Equal(NewVarSet("x", "y")) {
		t.Errorf("Vars = %v", tp.Vars())
	}
	if !tp.TotalOn(NewVarSet("x", "y")) {
		t.Error("TotalOn {x,y} should hold")
	}
	if tp.TotalOn(NewVarSet("x", "y", "z")) {
		t.Error("TotalOn {x,y,z} should fail")
	}
}

func TestTupleHierarchical(t *testing.T) {
	// The overlapping example of Section 2.1: x=[2,6⟩ y=[4,8⟩ z=[1,8⟩.
	overlapping := NewTuple("x", Span{2, 6}, "y", Span{4, 8}, "z", Span{1, 8})
	if overlapping.Hierarchical() {
		t.Error("overlapping tuple reported hierarchical")
	}
	nested := NewTuple("x", Span{1, 5}, "y", Span{2, 4}, "z", Span{5, 9})
	if !nested.Hierarchical() {
		t.Error("nested tuple reported non-hierarchical")
	}
}

func TestTupleProjectJoin(t *testing.T) {
	tp := NewTuple("x", Span{1, 2}, "y", Span{2, 3})
	p := tp.Project(NewVarSet("x", "z"))
	if !p.Equal(NewTuple("x", Span{1, 2})) {
		t.Errorf("Project = %v", p)
	}

	u := NewTuple("y", Span{2, 3}, "z", Span{3, 4})
	if !tp.Compatible(u) {
		t.Fatal("should be compatible")
	}
	j := tp.Join(u)
	if !j.Equal(NewTuple("x", Span{1, 2}, "y", Span{2, 3}, "z", Span{3, 4})) {
		t.Errorf("Join = %v", j)
	}

	bad := NewTuple("y", Span{5, 6})
	if tp.Compatible(bad) {
		t.Error("should be incompatible")
	}
}

func TestTupleFuse(t *testing.T) {
	// The paper's example (§3.2): t = ([1,3⟩, [2,6⟩, [3,7⟩) on x1,x2,x3;
	// fusing {x1,x3} into y yields ([1,7⟩, [2,6⟩) on (y, x2).
	tp := NewTuple("x1", Span{1, 3}, "x2", Span{2, 6}, "x3", Span{3, 7})
	got := tp.Fuse(NewVarSet("x1", "x3"), "y")
	want := NewTuple("y", Span{1, 7}, "x2", Span{2, 6})
	if !got.Equal(want) {
		t.Errorf("Fuse = %v, want %v", got, want)
	}
}

func TestTupleFuseUnassigned(t *testing.T) {
	tp := NewTuple("x", Span{1, 3})
	got := tp.Fuse(NewVarSet("a", "b"), "y")
	if !got.Equal(NewTuple("x", Span{1, 3})) {
		t.Errorf("Fuse over unassigned vars = %v", got)
	}
}

func TestTupleKeyAndCompare(t *testing.T) {
	a := NewTuple("x", Span{1, 2})
	b := NewTuple("x", Span{1, 2})
	c := NewTuple("x", Span{1, 3})
	if a.Key() != b.Key() {
		t.Error("equal tuples with different keys")
	}
	if a.Key() == c.Key() {
		t.Error("distinct tuples with equal keys")
	}
	if a.Compare(c) >= 0 {
		t.Error("Compare order wrong")
	}
	d := NewTuple("x", Span{1, 2}, "y", Span{2, 2})
	if a.Compare(d) >= 0 {
		t.Error("shorter tuple should sort first")
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation()
	if !r.Add(NewTuple("x", Span{1, 2})) {
		t.Error("first Add should be new")
	}
	if r.Add(NewTuple("x", Span{1, 2})) {
		t.Error("duplicate Add should report false")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(NewTuple("x", Span{1, 2})) {
		t.Error("Contains failed")
	}
}

func TestRelationAlgebra(t *testing.T) {
	doc := []byte("abaaab")
	r := NewRelation(
		NewTuple("x", Span{1, 3}, "y", Span{5, 7}), // ab vs ab -> equal
		NewTuple("x", Span{1, 3}, "y", Span{4, 7}), // ab vs aab -> not equal
	)
	sel := r.SelectEqual(doc, NewVarSet("x", "y"))
	if sel.Len() != 1 || !sel.Contains(NewTuple("x", Span{1, 3}, "y", Span{5, 7})) {
		t.Errorf("SelectEqual = %v", sel)
	}

	p := r.Project(NewVarSet("x"))
	if p.Len() != 1 { // both tuples project to the same x
		t.Errorf("Project len = %d", p.Len())
	}

	other := NewRelation(NewTuple("x", Span{1, 3}, "z", Span{2, 2}))
	j := r.Join(other)
	if j.Len() != 2 {
		t.Errorf("Join len = %d", j.Len())
	}
	u := r.Union(other)
	if u.Len() != 3 {
		t.Errorf("Union len = %d", u.Len())
	}
}

func TestRelationSelectEqualSchemaless(t *testing.T) {
	doc := []byte("aa")
	r := NewRelation(NewTuple("x", Span{1, 2})) // y unassigned
	sel := r.SelectEqual(doc, NewVarSet("x", "y"))
	if sel.Len() != 0 {
		t.Error("tuple with unassigned equality variable must be discarded")
	}
}

func TestRelationFunctionalHierarchical(t *testing.T) {
	r := NewRelation(
		NewTuple("x", Span{1, 2}, "y", Span{2, 3}),
		NewTuple("x", Span{1, 2}),
	)
	if r.Functional(NewVarSet("x", "y")) {
		t.Error("relation with partial tuple reported functional")
	}
	if !r.Hierarchical() {
		t.Error("disjoint spans reported non-hierarchical")
	}
}

func TestRelationEqualSorted(t *testing.T) {
	a := NewRelation(NewTuple("x", Span{2, 3}), NewTuple("x", Span{1, 2}))
	b := NewRelation(NewTuple("x", Span{1, 2}), NewTuple("x", Span{2, 3}))
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	s := a.Sorted()
	if s[0].Get("x") != (Span{1, 2}) {
		t.Error("Sorted order wrong")
	}
}

func TestRelationExample11(t *testing.T) {
	// Example 1.1 of the survey: on ababbab, spanner S extracts
	// ([1,i⟩,[i,i+1⟩,[i+1,8⟩) for every position i of a 'b'.
	doc := []byte("ababbab")
	want := NewRelation(
		NewTuple("x", Span{1, 2}, "y", Span{2, 3}, "z", Span{3, 8}),
		NewTuple("x", Span{1, 4}, "y", Span{4, 5}, "z", Span{5, 8}),
		NewTuple("x", Span{1, 5}, "y", Span{5, 6}, "z", Span{6, 8}),
		NewTuple("x", Span{1, 7}, "y", Span{7, 8}, "z", Span{8, 8}),
	)
	got := NewRelation()
	for i := 1; i <= len(doc); i++ {
		if doc[i-1] == 'b' {
			got.Add(NewTuple("x", Span{1, i}, "y", Span{i, i + 1}, "z", Span{i + 1, len(doc) + 1}))
		}
	}
	if !got.Equal(want) {
		t.Errorf("Example 1.1 relation mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestRelationMiscAccessors(t *testing.T) {
	var nilRel *Relation
	if nilRel.Len() != 0 || nilRel.Contains(NewTuple("x", S(1, 2))) || nilRel.Tuples() != nil {
		t.Error("nil relation accessors wrong")
	}
	r := NewRelation()
	if !r.Empty() {
		t.Error("fresh relation not empty")
	}
	r.Add(NewTuple("x", S(1, 2)))
	if r.Empty() {
		t.Error("non-empty relation reported empty")
	}
	if s := r.String(); s != "{(x: [1,2⟩)}" {
		t.Errorf("String = %q", s)
	}
}

func TestRelationFuseAndMinus(t *testing.T) {
	r := NewRelation(
		NewTuple("a", S(1, 2), "b", S(3, 5)),
		NewTuple("a", S(2, 3), "b", S(3, 4)),
	)
	fused := r.Fuse(NewVarSet("a", "b"), "c")
	if fused.Len() != 2 || !fused.Contains(NewTuple("c", S(1, 5))) || !fused.Contains(NewTuple("c", S(2, 4))) {
		t.Errorf("Fuse = %v", fused)
	}
	other := NewRelation(NewTuple("a", S(1, 2), "b", S(3, 5)))
	m := r.Minus(other)
	if m.Len() != 1 || !m.Contains(NewTuple("a", S(2, 3), "b", S(3, 4))) {
		t.Errorf("Minus = %v", m)
	}
}
