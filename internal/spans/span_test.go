package spans

import (
	"testing"
	"testing/quick"
)

func TestSpanContent(t *testing.T) {
	doc := []byte("ababbab")
	cases := []struct {
		s    Span
		want string
	}{
		{Span{1, 2}, "a"},
		{Span{2, 3}, "b"},
		{Span{3, 8}, "abbab"},
		{Span{1, 8}, "ababbab"},
		{Span{4, 4}, ""},
		{Span{8, 8}, ""},
	}
	for _, c := range cases {
		if got := string(c.s.Content(doc)); got != c.want {
			t.Errorf("Content(%v) = %q, want %q", c.s, got, c.want)
		}
		if !c.s.In(len(doc)) {
			t.Errorf("%v.In(%d) = false, want true", c.s, len(doc))
		}
	}
}

func TestSpanIn(t *testing.T) {
	n := 5
	invalid := []Span{{0, 1}, {1, 0}, {3, 2}, {1, 7}, {7, 7}, {-1, 2}}
	for _, s := range invalid {
		if s.In(n) {
			t.Errorf("%v.In(%d) = true, want false", s, n)
		}
	}
	valid := []Span{{1, 1}, {1, 6}, {6, 6}, {3, 4}}
	for _, s := range valid {
		if !s.In(n) {
			t.Errorf("%v.In(%d) = false, want true", s, n)
		}
	}
}

func TestSpanLenAndDefined(t *testing.T) {
	if Undefined.IsDefined() {
		t.Error("Undefined.IsDefined() = true")
	}
	if !(Span{2, 5}).IsDefined() {
		t.Error("Span{2,5}.IsDefined() = false")
	}
	if got := (Span{2, 5}).Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := (Span{4, 4}).Len(); got != 0 {
		t.Errorf("Len = %d, want 0", got)
	}
}

func TestSpanOverlaps(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{Span{1, 3}, Span{2, 4}, true},
		{Span{1, 3}, Span{3, 5}, false},
		{Span{1, 5}, Span{2, 3}, true},
		{Span{2, 2}, Span{1, 5}, false}, // empty span overlaps nothing
		{Span{1, 2}, Span{4, 6}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlaps not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestSpanDisjointOrNested(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{Span{1, 5}, Span{2, 3}, true},  // nested
		{Span{1, 3}, Span{3, 5}, true},  // adjacent = disjoint
		{Span{1, 3}, Span{2, 4}, false}, // proper overlap
		{Span{2, 6}, Span{4, 8}, false}, // the overlapping pair from §2.1
		{Span{1, 8}, Span{2, 6}, true},
		{Span{1, 8}, Span{4, 8}, true},
	}
	for _, c := range cases {
		if got := c.a.DisjointOrNested(c.b); got != c.want {
			t.Errorf("%v.DisjointOrNested(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.DisjointOrNested(c.a); got != c.want {
			t.Errorf("DisjointOrNested not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestSpanString(t *testing.T) {
	if got := (Span{1, 4}).String(); got != "[1,4⟩" {
		t.Errorf("String = %q", got)
	}
	if got := Undefined.String(); got != "⊥" {
		t.Errorf("Undefined.String = %q", got)
	}
}

func TestSpanCompare(t *testing.T) {
	if (Span{1, 2}).Compare(Span{1, 3}) != -1 {
		t.Error("Compare by End failed")
	}
	if (Span{2, 2}).Compare(Span{1, 9}) != 1 {
		t.Error("Compare by Begin failed")
	}
	if (Span{3, 4}).Compare(Span{3, 4}) != 0 {
		t.Error("Compare equal failed")
	}
}

func TestVarSetBasics(t *testing.T) {
	vs := NewVarSet("z", "x", "y", "x")
	if len(vs) != 3 {
		t.Fatalf("len = %d, want 3 (dedup)", len(vs))
	}
	if vs[0] != "x" || vs[1] != "y" || vs[2] != "z" {
		t.Fatalf("not sorted: %v", vs)
	}
	if !vs.Contains("y") || vs.Contains("w") {
		t.Error("Contains wrong")
	}
	if vs.Index("z") != 2 || vs.Index("q") != -1 {
		t.Error("Index wrong")
	}
}

func TestVarSetOps(t *testing.T) {
	a := NewVarSet("x", "y")
	b := NewVarSet("y", "z")
	if got := a.Union(b); !got.Equal(NewVarSet("x", "y", "z")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewVarSet("y")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewVarSet("x")) {
		t.Errorf("Minus = %v", got)
	}
	if a.Equal(b) {
		t.Error("Equal wrong")
	}
}

func TestVarSetString(t *testing.T) {
	if got := NewVarSet("y", "x").String(); got != "{x, y}" {
		t.Errorf("String = %q", got)
	}
}

// Property: spans overlap symmetric; DisjointOrNested is the negation of
// proper interleaving.
func TestSpanPropertiesQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		a := Span{int(a1%20) + 1, int(a1%20) + 1 + int(a2%20)}
		b := Span{int(b1%20) + 1, int(b1%20) + 1 + int(b2%20)}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		if a.DisjointOrNested(b) != b.DisjointOrNested(a) {
			return false
		}
		// Containment implies DisjointOrNested.
		if a.Contains(b) && !a.DisjointOrNested(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
