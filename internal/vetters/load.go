package vetters

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds the package's own type-check errors. Analysis
	// over a package with type errors is unreliable; cmd/spanvet treats
	// them as load failures.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, the
// module root) with `go list -json -deps` and type-checks the whole
// graph from source in dependency order, using only the standard
// library: no export data, no network, no third-party loader. Only the
// packages matched by the patterns are returned; their dependencies are
// type-checked (without syntax retention) so that method sets and
// signatures resolve exactly.
//
// The go list run pins CGO_ENABLED=0 so the file sets of cgo-using
// dependencies (net, ...) stay self-contained pure-Go; any residual
// type errors in dependencies are tolerated — go/types produces a
// usable (if incomplete) package — while type errors in the analyzed
// packages themselves are reported on the returned Package.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := &graphImporter{pkgs: map[string]*types.Package{"unsafe": types.Unsafe}}
	var out []*Package
	for _, m := range metas {
		if m.ImportPath == "unsafe" {
			continue
		}
		if m.Error != nil && m.DepOnly {
			continue
		}
		target := !m.DepOnly && !m.Standard
		mode := parser.SkipObjectResolution
		if target {
			mode |= parser.ParseComments
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, mode)
			if err != nil {
				if target {
					return nil, fmt.Errorf("parse %s: %w", name, err)
				}
				continue
			}
			files = append(files, af)
		}

		var info *types.Info
		if target {
			info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Implicits:  map[ast.Node]types.Object{},
				Scopes:     map[ast.Node]*types.Scope{},
			}
		}
		var typeErrs []error
		conf := types.Config{
			Importer:         imp,
			FakeImportC:      true,
			IgnoreFuncBodies: false,
			Error:            func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(m.ImportPath, fset, files, info)
		imp.pkgs[m.ImportPath] = tpkg
		if target {
			out = append(out, &Package{
				ImportPath: m.ImportPath,
				Dir:        m.Dir,
				Fset:       fset,
				Files:      files,
				Types:      tpkg,
				Info:       info,
				TypeErrors: typeErrs,
			})
		}
	}
	return out, nil
}

// goList runs `go list -json -deps` and decodes the package stream,
// which arrives in dependency order (dependencies before dependents) —
// exactly the type-checking order Load needs.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []listedPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var m listedPkg
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// graphImporter resolves imports against the packages type-checked so
// far. The stdlib vendors golang.org/x dependencies under "vendor/";
// source files import them by the unvendored path, so resolution falls
// back to the vendored entry.
type graphImporter struct {
	pkgs map[string]*types.Package
}

func (g *graphImporter) Import(path string) (*types.Package, error) {
	if p, ok := g.pkgs[path]; ok {
		return p, nil
	}
	if p, ok := g.pkgs["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not loaded (not a dependency of the analyzed packages)", path)
}

// LoadDir type-checks a single directory of Go files as one package —
// the vettest harness's entry point for analysistest-style testdata
// packages, which live outside the module's package graph. Imports are
// resolved by loading the imported paths (and their dependencies)
// through the same source-level pipeline.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		for _, imp := range af.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	imp := &graphImporter{pkgs: map[string]*types.Package{"unsafe": types.Unsafe}}
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		metas, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, m := range metas {
			if m.ImportPath == "unsafe" {
				continue
			}
			var depFiles []*ast.File
			for _, name := range m.GoFiles {
				af, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.SkipObjectResolution)
				if err != nil {
					continue
				}
				depFiles = append(depFiles, af)
			}
			conf := types.Config{Importer: imp, FakeImportC: true, Error: func(error) {}}
			tpkg, _ := conf.Check(m.ImportPath, fset, depFiles, nil)
			imp.pkgs[m.ImportPath] = tpkg
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	name := files[0].Name.Name
	tpkg, _ := conf.Check(name, fset, files, info)
	return &Package{
		ImportPath: name,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}
