package vetters_test

import (
	"path/filepath"
	"strings"
	"testing"

	"docspanner/internal/vetters"
	"docspanner/internal/vetters/vettest"
)

func testdata(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestAliasInto(t *testing.T)  { vettest.Run(t, testdata("aliasinto"), vetters.AliasInto) }
func TestPoolEscape(t *testing.T) { vettest.Run(t, testdata("poolescape"), vetters.PoolEscape) }
func TestErrFlush(t *testing.T)   { vettest.Run(t, testdata("errflush"), vetters.ErrFlush) }
func TestCtxFlow(t *testing.T)    { vettest.Run(t, testdata("ctxflow"), vetters.CtxFlow) }
func TestLockShard(t *testing.T)  { vettest.Run(t, testdata("lockshard"), vetters.LockShard) }

func TestByName(t *testing.T) {
	as, err := vetters.ByName("aliasinto, errflush")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "aliasinto" || as[1].Name != "errflush" {
		t.Fatalf("ByName resolved %v", as)
	}
	if _, err := vetters.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error naming the valid analyzers")
	} else if !strings.Contains(err.Error(), "lockshard") {
		t.Fatalf("ByName error does not list valid analyzers: %v", err)
	}
}

func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range vetters.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 5 {
		t.Fatalf("expected 5 analyzers, have %d", len(seen))
	}
}

// TestSpanvetRepoClean is the self-gate (experiment E20): the entire
// repository must analyze clean under every spanvet analyzer. Loading
// the full dependency graph from source takes a few seconds, so the
// test is skipped in -short mode.
func TestSpanvetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo load in -short mode")
	}
	pkgs, err := vetters.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.ImportPath, e)
		}
		for _, d := range vetters.Run(pkg, vetters.All()) {
			t.Errorf("%s: %s", pkg.ImportPath, d)
		}
	}
}
