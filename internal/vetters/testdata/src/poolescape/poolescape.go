// Package poolescape exercises the poolescape analyzer: unpaired
// sync.Pool Gets, unpaired get*/put* accessor calls, and pooled
// buffers escaping their scope.
package poolescape

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

type evalBuf struct{ rows [][]int }

var evalBufPool = sync.Pool{New: func() any { return new(evalBuf) }}

func getEvalBuf() *evalBuf  { return evalBufPool.Get().(*evalBuf) }
func putEvalBuf(b *evalBuf) { b.rows = b.rows[:0]; evalBufPool.Put(b) }

type server struct{ stash []byte }

var global []byte

func leakGet() {
	buf := bufPool.Get().([]byte) // want `bufPool\.Get without a matching Put`
	_ = buf
}

func leakAccessor() {
	b := getEvalBuf() // want `getEvalBuf without a matching putEvalBuf`
	_ = b
}

func escapeReturn() []byte {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	return buf // want `pooled buffer buf escapes escapeReturn via return`
}

func (s *server) escapeField() {
	b := getEvalBuf()
	defer putEvalBuf(b)
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	s.stash = buf // want `pooled buffer buf stored into s\.stash`
}

func escapeGlobal() {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	global = buf // want `pooled buffer buf stored into global`
}

func paired() {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	b := getEvalBuf()
	defer putEvalBuf(b)
	b.rows = append(b.rows, []int{len(buf)})
}

// getScratch is a get* accessor: returning the pooled value is its job;
// call sites carry the Put obligation.
func getScratch() []byte { return bufPool.Get().([]byte) }

func localCopyIsFine() {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	local := buf // stack-local alias, released with the buffer
	_ = local
}

// putRows is a clear-before-put wrapper: it nils the element
// references, then returns the buffer to the pool.
func putRows(rows []byte) {
	for i := range rows {
		rows[i] = 0
	}
	bufPool.Put(rows[:0])
}

// wrapperHandoff Gets directly but Puts through the wrapper — the
// enumerateBatch idiom. Not a leak.
func wrapperHandoff() {
	buf := bufPool.Get().([]byte)
	defer putRows(buf)
	_ = buf
}

func suppressed() {
	buf := bufPool.Get().([]byte) //spanvet:ignore poolescape
	global = buf                  //spanvet:ignore
}
