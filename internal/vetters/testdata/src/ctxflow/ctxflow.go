// Package ctxflow exercises the ctxflow analyzer: fresh background
// contexts handed to evaluation entry points inside request-scoped
// functions must be flagged; legitimate uses must not.
package ctxflow

import (
	"context"
	"net/http"
)

type engine struct{}

func (engine) EvalDocs(ctx context.Context, doc string) int            { return 0 }
func (engine) EnumerateCompressed(ctx context.Context, doc string) int { return 0 }
func (engine) CountPoll(ctx context.Context) int                       { return 0 }
func (engine) Close(ctx context.Context)                               {}

func handler(w http.ResponseWriter, r *http.Request) {
	var e engine
	e.EvalDocs(context.Background(), "doc") // want `context\.Background\(\) passed to EvalDocs`
	e.CountPoll(context.TODO())             // want `context\.TODO\(\) passed to CountPoll`
	e.EvalDocs(r.Context(), "doc")          // correct: request context flows through
}

func withCtx(ctx context.Context, e engine) {
	e.EnumerateCompressed(context.Background(), "doc") // want `context\.Background\(\) passed to EnumerateCompressed`
	e.EnumerateCompressed(ctx, "doc")
}

// closureInherits: the func literal has no context parameter of its
// own, but the enclosing handler does — the closure is still on the
// request path.
func closureInherits(ctx context.Context, e engine) {
	work := func() {
		e.EvalDocs(context.Background(), "doc") // want `context\.Background\(\) passed to EvalDocs`
	}
	work()
}

// batchJob has no request context: a background context is the honest
// choice here, not a detached request.
func batchJob(e engine) {
	e.EvalDocs(context.Background(), "doc")
}

// nonEntryPoint: Background flowing into a non-Eval/Enumerate/Count
// callee is out of scope.
func nonEntryPoint(ctx context.Context, e engine) {
	e.Close(context.Background())
}

func suppressed(ctx context.Context, e engine) {
	// Detaching deliberately (audit spool continues after disconnect):
	e.EvalDocs(context.Background(), "doc") //spanvet:ignore ctxflow
}
