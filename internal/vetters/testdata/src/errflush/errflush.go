// Package errflush exercises the errflush analyzer: statements that
// drop the error of Flush/Write must be flagged; checked or explicitly
// discarded errors must not.
package errflush

import (
	"bufio"
	"io"
	"net/http"
)

type flusherNoErr struct{}

func (flusherNoErr) Flush() {} // error-less Flush (http.Flusher shape): not flagged

type encoder struct{ w io.Writer }

func (e *encoder) Flush(rc *http.ResponseController) error { return rc.Flush() }

func bad(bw *bufio.Writer, w io.Writer, enc *encoder, rc *http.ResponseController) {
	bw.Flush()                    // want `statement drops the error of bw\.Flush`
	w.Write([]byte("x"))          // want `statement drops the error of w\.Write`
	defer bw.Flush()              // want `deferred call drops the error of bw\.Flush`
	go bw.Flush()                 // want `statement drops the error of bw\.Flush`
	enc.Flush(rc)                 // want `statement drops the error of enc\.Flush`
	defer func() { bw.Flush() }() // want `statement drops the error of bw\.Flush`
}

func good(bw *bufio.Writer, w io.Writer, f flusherNoErr, enc *encoder, rc *http.ResponseController) error {
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, err := w.Write([]byte("x")); err != nil {
		return err
	}
	f.Flush()         // no error result
	_ = enc.Flush(rc) // explicit, reviewable discard
	err := bw.Flush() // bound to a variable
	return err
}

func suppressed(bw *bufio.Writer) {
	bw.Flush() //spanvet:ignore errflush
}
