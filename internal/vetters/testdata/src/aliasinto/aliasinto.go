// Package aliasinto exercises the aliasinto analyzer: Into-kernel
// calls where the destination aliases a source must be flagged; calls
// over distinct operands must not.
package aliasinto

type Matrix struct{ bits []uint64 }

func (m *Matrix) MulInto(a, b *Matrix)           {}
func (m *Matrix) MulTransposedInto(a, b *Matrix) {}
func (m *Matrix) TransposeInto(a *Matrix)        {}

func ApplyLeftInto(dst, v []uint64)  {}
func ApplyRightInto(dst, v []uint64) {}

type kernels struct{}

func (kernels) ApplyLeftInto(dst, v []uint64)  {}
func (kernels) ApplyRightInto(dst, v []uint64) {}

type wrapper struct {
	scratch *Matrix
	vec     []uint64
}

func bad(x, y *Matrix, w *wrapper, k kernels) {
	x.MulInto(x, y)           // want `destination x aliases source operand x`
	x.MulInto(y, x)           // want `destination x aliases source operand x`
	x.MulTransposedInto(x, x) // want `destination x aliases source operand x`
	x.TransposeInto(x)        // want `destination x aliases source operand x`

	w.scratch.MulInto(w.scratch, y) // want `destination w\.scratch aliases source operand w\.scratch`

	k.ApplyLeftInto(w.vec, w.vec)  // want `dst w\.vec aliases the source vector`
	k.ApplyRightInto(w.vec, w.vec) // want `dst w\.vec aliases the source vector`
}

func good(x, y, z *Matrix, w *wrapper, k kernels, u []uint64) {
	x.MulInto(y, z)
	x.MulTransposedInto(y, y) // sources may alias each other; only dst must be distinct
	x.TransposeInto(y)
	w.scratch.MulInto(y, z)
	k.ApplyLeftInto(w.vec, u)
	k.ApplyRightInto(u, w.vec)
	// Plain function call (not a method): not a kernel call site.
	ApplyLeftInto(u, u)
}

func suppressed(x *Matrix) {
	x.TransposeInto(x) //spanvet:ignore aliasinto
}
