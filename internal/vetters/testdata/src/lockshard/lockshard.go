// Package lockshard exercises the lockshard analyzer: nested shard
// lock acquisition, same-shard re-lock, and by-value copies of
// lock-bearing shard structs.
package lockshard

import "sync"

type shard struct {
	mu sync.RWMutex
	m  map[uint64]int
}

type cache struct {
	shards [64]shard
}

func (c *cache) nestedLock(i, j uint64) {
	a := &c.shards[i&63]
	a.mu.Lock()
	defer a.mu.Unlock()
	b := &c.shards[j&63]
	b.mu.Lock() // want `acquired while holding shard lock`
	b.mu.Unlock()
}

func (c *cache) nestedDirect(i, j uint64) {
	c.shards[i&63].mu.Lock()
	defer c.shards[i&63].mu.Unlock()
	c.shards[j&63].mu.RLock() // want `acquired while holding shard lock`
	c.shards[j&63].mu.RUnlock()
}

func (c *cache) selfDeadlock(i uint64) {
	s := &c.shards[i&63]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `self-deadlock`
}

func (c *cache) sequential(i, j uint64) {
	a := &c.shards[i&63]
	a.mu.Lock()
	n := len(a.m)
	a.mu.Unlock()
	b := &c.shards[j&63]
	b.mu.Lock()
	b.m[0] = n
	b.mu.Unlock()
}

func (c *cache) singleDeferred(i uint64) int {
	s := &c.shards[i&63]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// branches: each arm locks one shard and releases it; the arms must
// not see each other's held set.
func (c *cache) branches(i uint64, fast bool) int {
	if fast {
		s := &c.shards[i&63]
		s.mu.RLock()
		defer s.mu.RUnlock()
		return len(s.m)
	}
	s := &c.shards[i&63]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[0] = 1
	return 0
}

func copyByParam(s shard) int { // want `parameter passes lockshard\.shard by value`
	return len(s.m)
}

func (c *cache) copyByRange() int {
	n := 0
	for _, s := range c.shards { // want `range copies lockshard\.shard by value`
		n += len(s.m)
	}
	return n
}

func (c *cache) copyByIndex(i int) {
	s := c.shards[i] // want `assignment copies lockshard\.shard by value`
	_ = s
}

func (c *cache) byPointerIsFine(i int) {
	s := &c.shards[i]
	s.mu.Lock()
	s.m[0] = 1
	s.mu.Unlock()
	for i := range c.shards {
		_ = len(c.shards[i].m)
	}
}

// otherMutexesIgnored: nested locks on non-shard mutexes are the
// business of a general deadlock detector, not this one.
type twoLocks struct{ a, b sync.Mutex }

func (t *twoLocks) nested() {
	t.a.Lock()
	defer t.a.Unlock()
	t.b.Lock()
	t.b.Unlock()
}

func (c *cache) suppressed(i, j uint64) {
	a := &c.shards[i&63]
	a.mu.Lock()
	defer a.mu.Unlock()
	b := &c.shards[j&63]
	b.mu.Lock() //spanvet:ignore lockshard
	b.mu.Unlock()
}
