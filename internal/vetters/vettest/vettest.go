// Package vettest is an analysistest-style harness for spanvet
// analyzers: testdata packages annotate expected findings with
//
//	x.MulInto(x, y) // want `destination x aliases`
//
// comments, where the backquoted text is a regular expression matched
// against the finding message on that line. Lines without a want
// comment must produce no finding; a want comment without a finding is
// a miss. Both directions fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"docspanner/internal/vetters"
)

// expectation is one `// want ...` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+`([^`]*)`")

// Run loads dir as one package, runs the analyzer over it, and checks
// the findings against the package's want annotations.
func Run(t *testing.T, dir string, a *vetters.Analyzer) {
	t.Helper()
	pkg, err := vetters.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("type error in testdata: %v", e)
	}
	if t.Failed() {
		t.FailNow()
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	diags := vetters.Run(pkg, []*vetters.Analyzer{a})

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched `%s`", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts the want annotations from the package's
// comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "want") {
					continue
				}
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want `") {
						t.Fatalf("malformed want comment: %s", c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// Findings runs the analyzer and returns the raw findings — for tests
// that assert on suppression or counts rather than annotations.
func Findings(dir string, a *vetters.Analyzer) ([]vetters.Diagnostic, error) {
	pkg, err := vetters.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("type errors in %s: %v", dir, pkg.TypeErrors[0])
	}
	return vetters.Run(pkg, []*vetters.Analyzer{a}), nil
}
