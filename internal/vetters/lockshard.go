package vetters

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockShard guards the sharded-cache locking discipline of
// internal/slpmatch: the node cache is split into 64 shards, each with
// its own RWMutex, and the whole design depends on a goroutine holding
// at most one shard lock at a time. Two shards locked together — with
// shard indices arriving in data-dependent order — is the classic
// lock-ordering deadlock; it cannot be observed in small tests and is
// miserable to reproduce.
//
// Two checks:
//
//  1. nested shard locks: a Lock/RLock on a shard-indexed mutex while
//     another shard-indexed lock is held (not yet released by Unlock;
//     deferred Unlocks hold to function end). Re-locking the same
//     shard expression is reported as self-deadlock.
//  2. copylocks-lite: copying a lock-bearing shard/cache struct by
//     value — range over a shard array, by-value parameter, or deref
//     assignment — which silently forks the mutex.
var LockShard = &Analyzer{
	Name: "lockshard",
	Doc: "flags holding one shard's lock while acquiring another (sharded caches require at most " +
		"one shard lock per goroutine) and copying lock-bearing shard structs by value",
	Run: runLockShard,
}

func runLockShard(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShardLocks(p, fd)
		}
	}
	checkLockCopies(p)
}

// heldLock is one currently-held shard lock.
type heldLock struct {
	key      string // canonical text of the locked expression
	deferred bool   // released by defer: held to function end
}

// checkShardLocks walks the function's statements in order, tracking
// which shard locks are held. The walk is linear (statement order
// within each block); branches are walked with the held-set they
// inherit, which over-approximates but matches the flat lock/defer
// style of the cache code.
func checkShardLocks(p *Pass, fd *ast.FuncDecl) {
	aliases := shardAliases(p, fd.Body)
	var held []heldLock

	release := func(key string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key && !held[i].deferred {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	var walkStmt func(s ast.Stmt)
	walkBlock := func(stmts []ast.Stmt) {
		for _, s := range stmts {
			walkStmt(s)
		}
	}
	walkStmt = func(s ast.Stmt) {
		switch v := s.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				handleLockCall(p, call, aliases, &held, release, false)
			}
		case *ast.DeferStmt:
			handleLockCall(p, v.Call, aliases, &held, release, true)
		case *ast.BlockStmt:
			walkBlock(v.List)
		case *ast.IfStmt:
			if v.Init != nil {
				walkStmt(v.Init)
			}
			before := len(held)
			walkBlock(v.Body.List)
			if len(held) > before {
				held = held[:before]
			}
			if v.Else != nil {
				walkStmt(v.Else)
				if len(held) > before {
					held = held[:before]
				}
			}
		case *ast.ForStmt:
			walkBlock(v.Body.List)
		case *ast.RangeStmt:
			walkBlock(v.Body.List)
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					before := len(held)
					walkBlock(cc.Body)
					if len(held) > before {
						held = held[:before]
					}
				}
			}
		}
	}
	walkBlock(fd.Body.List)
}

// handleLockCall classifies one call as a shard Lock/RLock/Unlock and
// updates the held set, reporting nested acquisitions.
func handleLockCall(p *Pass, call *ast.CallExpr, aliases map[types.Object]string, held *[]heldLock, release func(string), deferred bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return
	}
	key, isShard := shardLockKey(p, sel.X, aliases)
	if !isShard {
		return
	}
	switch method {
	case "Lock", "RLock":
		if deferred {
			return // defer s.mu.Lock() is nonsense; not this analyzer's business
		}
		for _, h := range *held {
			if h.key == key {
				p.Reportf(call.Pos(),
					"%s.%s while the same shard lock is already held: self-deadlock", key, method)
				return
			}
		}
		if len(*held) > 0 {
			p.Reportf(call.Pos(),
				"%s.%s acquired while holding shard lock %s; shard indices are data-dependent, so nested shard locks deadlock under inverted order — release the first shard before touching the second",
				key, method, (*held)[0].key)
		}
		*held = append(*held, heldLock{key: key})
	case "Unlock", "RUnlock":
		if deferred {
			for i := range *held {
				if (*held)[i].key == key {
					(*held)[i].deferred = true
				}
			}
			return
		}
		release(key)
	}
}

// shardLockKey reports whether lockExpr (the receiver of Lock/RLock)
// is a shard mutex: an expression containing an index into something
// named like a shard array (c.shards[i].mu), directly or through a
// one-level local alias (s := &c.shards[i]; s.mu.Lock()).
func shardLockKey(p *Pass, lockExpr ast.Expr, aliases map[types.Object]string) (string, bool) {
	if base, ok := shardIndexedBase(lockExpr); ok {
		return base, true
	}
	// Alias form: the receiver chain bottoms out in a local whose
	// initializer indexed a shard array.
	e := unparen(lockExpr)
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = unparen(v.X)
		case *ast.StarExpr:
			e = unparen(v.X)
		case *ast.Ident:
			if obj := p.Info.ObjectOf(v); obj != nil {
				if key, ok := aliases[obj]; ok {
					return key, true
				}
			}
			return "", false
		default:
			return "", false
		}
	}
}

// shardIndexedBase finds an IndexExpr over a shard-named operand inside
// the expression chain and returns the canonical shard element text
// ("c.shards[i]").
func shardIndexedBase(e ast.Expr) (string, bool) {
	for {
		switch v := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			if isShardNamed(v.X) {
				return exprString(v), true
			}
			e = v.X
		default:
			return "", false
		}
	}
}

// isShardNamed reports whether the indexed operand's name contains
// "shard" (c.shards, table.shard, ...).
func isShardNamed(e ast.Expr) bool {
	var name string
	switch v := unparen(e).(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "shard")
}

// shardAliases collects locals initialized to a shard element address:
// s := &c.shards[i] (or s := c.shards[i] for pointer-element arrays).
func shardAliases(p *Pass, body *ast.BlockStmt) map[types.Object]string {
	aliases := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			key, ok := shardIndexedBase(rhs)
			if !ok {
				continue
			}
			if id, ok := unparen(assign.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj := p.Info.ObjectOf(id); obj != nil {
					aliases[obj] = key
				}
			}
		}
		return true
	})
	return aliases
}

// --- copylocks-lite ---

// checkLockCopies flags by-value copies of lock-bearing structs:
// by-value parameters, range-value copies over arrays/slices of them,
// and plain value assignments from a deref or element load.
func checkLockCopies(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					t := p.Info.TypeOf(field.Type)
					if t == nil || isPointerLike(t) {
						continue
					}
					if lockPath := containsLock(t, nil); lockPath != "" {
						p.Reportf(field.Type.Pos(),
							"parameter passes %s by value, copying %s; pass a pointer so the mutex is shared, not forked",
							typeShort(t), lockPath)
					}
				}
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.RangeStmt:
					if v.Value == nil {
						return true
					}
					t := p.Info.TypeOf(v.Value)
					if t == nil || isPointerLike(t) {
						return true
					}
					if lockPath := containsLock(t, nil); lockPath != "" {
						p.Reportf(v.Value.Pos(),
							"range copies %s by value (contains %s); iterate by index (&xs[i]) so each shard's mutex stays unique",
							typeShort(t), lockPath)
					}
				case *ast.AssignStmt:
					for i, rhs := range v.Rhs {
						if i >= len(v.Lhs) {
							break
						}
						if !isValueLoad(rhs) {
							continue
						}
						t := p.Info.TypeOf(rhs)
						if t == nil || isPointerLike(t) {
							continue
						}
						if lockPath := containsLock(t, nil); lockPath != "" {
							p.Reportf(rhs.Pos(),
								"assignment copies %s by value (contains %s); take its address instead",
								typeShort(t), lockPath)
						}
					}
				}
				return true
			})
		}
	}
}

// isValueLoad reports whether the expression loads a struct value out
// of a longer-lived location: a deref, an index into an array, or a
// field selection. A composite literal or function call result is a
// fresh value and fine to bind.
func isValueLoad(e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.SelectorExpr:
		_ = v
		return true
	}
	return false
}

// isPointerLike reports whether copying t does not copy a mutex:
// pointers, interfaces, maps, chans, funcs, slices.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Signature, *types.Slice:
		return true
	}
	return false
}

// lockTypes are the sync types whose by-value copy is a bug.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true,
	"WaitGroup": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports the path to a sync lock type contained (by
// value, transitively through structs and arrays) in t; "" if none.
// seen guards against recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if sub := containsLock(f.Type(), seen); sub != "" {
				return f.Name() + " (" + sub + ")"
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return ""
}

// typeShort renders a type without package qualification noise.
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
