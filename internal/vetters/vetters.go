// Package vetters implements spanvet: a suite of repository-specific
// static analyzers that enforce, at compile time, the runtime contracts
// the engine's hot paths rely on — the aliasing panics of the
// Four-Russians Into-kernels, the sync.Pool buffer discipline of the
// serving layer, the flush-error abort contract of /stream, the
// request-context flow into Eval*/Enumerate*/Count*, and the lock
// ordering of the 64-shard slpmatch caches.
//
// The analyzers follow the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Reportf) but are implemented on the standard
// library's go/ast and go/types only, so the tool builds with zero
// third-party dependencies: packages are enumerated with `go list
// -json -deps` and type-checked from source (see load.go). Each
// analyzer documents exactly what it flags; a finding can be silenced
// with a trailing or preceding
//
//	//spanvet:ignore            (silences every analyzer on that line)
//	//spanvet:ignore aliasinto  (silences the named analyzers)
//
// comment, mirroring //lint:ignore. Suppressions are deliberate and
// visible in review — prefer fixing the code.
package vetters

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects the package in Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer (spanvet -run, suppression comments,
	// finding output).
	Name string
	// Doc is the one-paragraph description shown by spanvet -list.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// A Pass is one (analyzer, package) execution: the syntax, the
// type-checked package, and the reporting sink.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	ignores  map[string]map[int][]string // filename → line → analyzer names ("" = all)
	diags    *[]Diagnostic
}

// Diagnostic is one spanvet finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the go-vet style used by cmd/spanvet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a //spanvet:ignore comment on
// the same or the preceding line suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.ignores[pos.Filename]
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "" || name == p.analyzer.Name {
				return true
			}
		}
	}
	return false
}

// ObjectOf resolves an identifier to its object (uses or defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// TypeOf returns the static type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// collectIgnores scans the files' comments for //spanvet:ignore
// directives and indexes them by file and line.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "spanvet:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "spanvet:ignore"))
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					out[pos.Filename] = lines
				}
				if rest == "" {
					lines[pos.Line] = append(lines[pos.Line], "")
					continue
				}
				for _, name := range strings.Split(rest, ",") {
					lines[pos.Line] = append(lines[pos.Line], strings.TrimSpace(name))
				}
			}
		}
	}
	return out
}

// All returns every spanvet analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AliasInto,
		PoolEscape,
		ErrFlush,
		CtxFlow,
		LockShard,
	}
}

// ByName resolves a comma-separated analyzer list; unknown names error
// with the valid set.
func ByName(names string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			valid := make([]string, len(all))
			for i, a := range all {
				valid[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
		}
	}
	return out, nil
}

// Run executes the analyzers over one loaded package and returns the
// findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			ignores:  ignores,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- small AST/type helpers shared by the analyzers ---

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// sameExpr conservatively reports whether two expressions are
// guaranteed to denote the same storage: identical identifiers (same
// object), identical selector chains, identical index expressions over
// the same base with provably equal indexes, and address/deref wrappers
// thereof. Function calls never compare equal (each call may yield a
// fresh value).
func sameExpr(info *types.Info, a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := info.ObjectOf(av), info.ObjectOf(bv)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return av.Sel.Name == bv.Sel.Name && sameExpr(info, av.X, bv.X)
	case *ast.IndexExpr:
		bv, ok := b.(*ast.IndexExpr)
		if !ok {
			return false
		}
		return sameExpr(info, av.X, bv.X) && sameIndex(info, av.Index, bv.Index)
	case *ast.StarExpr:
		bv, ok := b.(*ast.StarExpr)
		if !ok {
			return false
		}
		return sameExpr(info, av.X, bv.X)
	case *ast.UnaryExpr:
		bv, ok := b.(*ast.UnaryExpr)
		if !ok || av.Op != bv.Op {
			return false
		}
		return sameExpr(info, av.X, bv.X)
	}
	return false
}

// sameIndex compares index expressions: equal constants, or the same
// expression per sameExpr.
func sameIndex(info *types.Info, a, b ast.Expr) bool {
	av, aok := info.Types[a]
	bv, bok := info.Types[b]
	if aok && bok && av.Value != nil && bv.Value != nil {
		return av.Value.String() == bv.Value.String()
	}
	return sameExpr(info, a, b)
}

// calleeName returns the bare name a call invokes: the selector's field
// name for method/package calls, the identifier for direct calls, ""
// otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isPkgFunc reports whether the call invokes the named function of the
// named package (e.g. context.Background).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// exprString renders an expression compactly for messages (best-effort;
// falls back to the type name).
func exprString(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	case *ast.BasicLit:
		return v.Value
	case *ast.BinaryExpr:
		return exprString(v.X) + v.Op.String() + exprString(v.Y)
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	}
	return fmt.Sprintf("%T", e)
}
