package vetters

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the request-context flow contract of the serving
// layer: inside a function that already has a context (a
// context.Context parameter or an *http.Request, whose Context method
// carries the request deadline and cancellation), evaluation entry
// points — Eval*, Enumerate*, Count* — must receive that context, not a
// fresh context.Background() or context.TODO(). A background context
// silently detaches the evaluation from the request: timeouts stop
// applying and client disconnects no longer cancel the enumeration,
// re-introducing exactly the dead-connection work the per-tuple
// cancellation contract exists to prevent.
//
// Closures inherit the enclosing function's context access, so a
// handler's worker func literal is checked too.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/context.TODO() passed to Eval*/Enumerate*/Count* " +
		"inside functions that have a request context (a context.Context or *http.Request parameter)",
	Run: runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(p, fd.Type, fd.Body, hasRequestContext(p, fd.Type))
		}
	}
}

// checkCtxFlow walks a function body. hasCtx carries whether any
// enclosing function gives access to a request context; nested function
// literals extend it with their own parameters.
func checkCtxFlow(p *Pass, _ *ast.FuncType, body ast.Node, hasCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			checkCtxFlow(p, v.Type, v.Body, hasCtx || hasRequestContext(p, v.Type))
			return false
		case *ast.CallExpr:
			if !hasCtx {
				return true
			}
			name := calleeName(v)
			if !isEvalEntryPoint(name) {
				return true
			}
			for _, arg := range v.Args {
				argCall, ok := unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				for _, bg := range [2]string{"Background", "TODO"} {
					if isPkgFunc(p.Info, argCall, "context", bg) {
						p.Reportf(arg.Pos(),
							"context.%s() passed to %s inside a function that has the request context; "+
								"pass the request's context (ctx / r.Context()) so deadlines and disconnects cancel the evaluation",
							bg, name)
					}
				}
			}
		}
		return true
	})
}

// isEvalEntryPoint matches the evaluation entry points of the engine:
// Eval*, Enumerate*, Count* (EvalDocs, EnumerateCompressedContext,
// CountPoll, ...).
func isEvalEntryPoint(name string) bool {
	for _, prefix := range [3]string{"Eval", "Enumerate", "Count"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// hasRequestContext reports whether the function type declares a
// context.Context or *http.Request parameter.
func hasRequestContext(p *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if namedType(t, "context", "Context") || namedType(t, "net/http", "Request") {
			return true
		}
		if isContextInterface(t) {
			return true
		}
	}
	return false
}

// isContextInterface also accepts interface types that embed
// context.Context (rare, but cheap to honor).
func isContextInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		if namedType(iface.EmbeddedType(i), "context", "Context") {
			return true
		}
	}
	return false
}
