package vetters

import (
	"go/ast"
)

// AliasInto is the static complement of the runtime aliasing panics in
// the BoolMatrix Into-kernels (internal/automata): MulInto,
// MulTransposedInto, and TransposeInto require the destination
// (receiver) to be distinct from every source operand, and
// ApplyLeftInto/ApplyRightInto require dst and v to be distinct slices
// — the blocked Four-Russians kernels read sources while writing the
// destination, so an aliased call silently computes garbage (which is
// why the kernels panic at runtime). This analyzer flags call sites
// where the destination provably aliases a source: the same variable,
// field chain, or index expression. The check is name+arity based, so
// it guards any implementation of the kernel contract, not just the
// one in internal/automata.
var AliasInto = &Analyzer{
	Name: "aliasinto",
	Doc: "flags MulInto/MulTransposedInto/TransposeInto calls whose receiver (the destination) " +
		"aliases a source operand, and ApplyLeftInto/ApplyRightInto calls where dst aliases v; " +
		"such calls panic at runtime (internal/automata aliasing contract)",
	Run: runAliasInto,
}

// intoKernels maps the kernel method names to their argument count; the
// receiver is the destination for the matrix kernels, the first
// argument for the vector kernels.
var intoKernels = map[string]struct {
	args     int
	dstIsArg bool
}{
	"MulInto":           {args: 2},
	"MulTransposedInto": {args: 2},
	"TransposeInto":     {args: 1},
	"ApplyLeftInto":     {args: 2, dstIsArg: true},
	"ApplyRightInto":    {args: 2, dstIsArg: true},
}

func runAliasInto(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			k, ok := intoKernels[sel.Sel.Name]
			if !ok || len(call.Args) != k.args {
				return true
			}
			// Method calls only: a selector that resolves to a plain
			// package function is not a kernel.
			if s, found := p.Info.Selections[sel]; !found || s == nil {
				return true
			}
			if k.dstIsArg {
				if sameExpr(p.Info, call.Args[0], call.Args[1]) {
					p.Reportf(call.Pos(),
						"%s: dst %s aliases the source vector; the kernel writes dst while reading it (runtime panic)",
						sel.Sel.Name, exprString(call.Args[0]))
				}
				return true
			}
			for _, arg := range call.Args {
				if sameExpr(p.Info, sel.X, arg) {
					p.Reportf(call.Pos(),
						"%s: destination %s aliases source operand %s; the kernel writes the destination while reading the sources (runtime panic)",
						sel.Sel.Name, exprString(sel.X), exprString(arg))
				}
			}
			return true
		})
	}
}
