package vetters

import (
	"go/ast"
	"go/types"
)

// ErrFlush flags dropped errors from Flush and Write calls — the exact
// bug class behind the /stream handler regression where
// ResponseController.Flush errors were discarded and the enumeration
// kept serializing the full result into a dead connection. A dropped
// flush or write error on a streaming path means the producer never
// learns the consumer is gone.
//
// Flagged: expression statements and defer statements whose call
// invokes a method named Flush or Write whose final result is error,
// with every result discarded. An explicit `_ = x.Flush()` assignment
// is a visible, reviewable discard and is not flagged.
var ErrFlush = &Analyzer{
	Name: "errflush",
	Doc: "flags statements that drop the error result of Flush/Write calls " +
		"(streaming paths must abort on a failed flush instead of writing into a dead connection)",
	Run: runErrFlush,
}

func runErrFlush(p *Pass) {
	check := func(call *ast.CallExpr, deferred bool) {
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		name := sel.Sel.Name
		if name != "Flush" && name != "Write" {
			return
		}
		sig := callSignature(p.Info, call)
		if sig == nil || !lastResultIsError(sig) {
			return
		}
		how := "statement drops"
		if deferred {
			how = "deferred call drops"
		}
		p.Reportf(call.Pos(),
			"%s the error of %s.%s; check it (a failed flush/write means the consumer is gone — abort instead of producing into a dead sink)",
			how, exprString(sel.X), name)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.DeferStmt:
				check(s.Call, true)
			case *ast.GoStmt:
				check(s.Call, false)
			}
			return true
		})
	}
}

// callSignature returns the signature of the invoked function, or nil.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// lastResultIsError reports whether the signature's final result is the
// built-in error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}
