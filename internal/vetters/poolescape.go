package vetters

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolEscape enforces the pooled-buffer discipline of the serving and
// kernel layers (sync.Pool scratch in the Four-Russians kernels, pooled
// tuple buffers and NDJSON encoders in internal/server): a buffer taken
// from a pool is scoped to one request or one kernel invocation. It
// must go back — via Put, usually deferred — and it must not outlive
// the scope by being returned or stored into longer-lived state, or two
// requests end up sharing (and concurrently mutating) one buffer.
//
// Checks, per function:
//
//  1. a sync.Pool Get with no Put on the same pool anywhere in the
//     function — unless the function is a get*/new* accessor that
//     returns the pooled value (the repo's wrapper idiom, paired at the
//     call sites);
//  2. a call to a package-local get* accessor with no call to the
//     matching put* in the same function (getEvalBuf/putEvalBuf, ...);
//  3. a pooled value (from either source) escaping through a return
//     statement (outside accessors) or an assignment to a struct field
//     or package-level variable.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "flags sync.Pool Gets without a matching Put, unpaired get*/put* buffer accessors, " +
		"and pooled buffers escaping their request or kernel scope via returns or stores",
	Run: runPoolEscape,
}

func runPoolEscape(p *Pass) {
	pairs := accessorPairs(p)
	wrappers := putWrappers(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(p, fd, pairs, wrappers)
		}
	}
}

// putWrappers maps package-level function names to the set of pool
// expressions they Put to — the repo's clear-before-put idiom
// (putTupleBuf nils the tuple references, then Puts). A direct Get is
// matched by a call to a wrapper that Puts to the same pool.
func putWrappers(p *Pass) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Put" || !isSyncPool(p.Info.TypeOf(sel.X)) {
					return true
				}
				key := exprString(sel.X)
				if out[fd.Name.Name] == nil {
					out[fd.Name.Name] = map[string]bool{}
				}
				out[fd.Name.Name][key] = true
				return true
			})
		}
	}
	return out
}

// accessorPairs finds the package's get*/put* accessor pairs: for every
// top-level getX with a matching top-level putX, call sites must pair
// them.
func accessorPairs(p *Pass) map[string]string {
	names := map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				names[fd.Name.Name] = true
			}
		}
	}
	pairs := map[string]string{} // getX → putX
	for name := range names {
		if strings.HasPrefix(name, "get") {
			put := "put" + strings.TrimPrefix(name, "get")
			if names[put] {
				pairs[name] = put
			}
		}
	}
	return pairs
}

// isAccessor reports whether the function is a pool accessor by the
// repo's naming convention: get*/new* functions may return pooled
// values; their call sites carry the pairing obligation.
func isAccessor(name string) bool {
	for _, prefix := range [4]string{"get", "Get", "new", "New"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func checkPoolFunc(p *Pass, fd *ast.FuncDecl, pairs map[string]string, wrappers map[string]map[string]bool) {
	type poolUse struct {
		expr ast.Expr // the pool expression of the first Get
		gets int
		puts int
	}
	pools := map[string]*poolUse{} // canonical pool expr → use
	accessorCalls := map[string][]token.Pos{}
	calledFuncs := map[string]bool{}
	pooledVars := map[types.Object]ast.Expr{} // var → acquisition site

	// recordPooled marks LHS variables of an assignment whose RHS
	// contains the acquisition call.
	recordPooled := func(assign *ast.AssignStmt, from ast.Expr) {
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) && len(assign.Rhs) != 1 {
				break
			}
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := p.Info.ObjectOf(id); obj != nil {
				pooledVars[obj] = from
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := directCallee(call); name != "" {
			calledFuncs[name] = true
			if _, isGet := pairs[name]; isGet {
				accessorCalls[name] = append(accessorCalls[name], call.Pos())
			}
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isSyncPool(p.Info.TypeOf(sel.X)) {
			return true
		}
		switch sel.Sel.Name {
		case "Get":
			key := exprString(sel.X)
			u := pools[key]
			if u == nil {
				u = &poolUse{expr: sel.X}
				pools[key] = u
			}
			u.gets++
		case "Put":
			key := exprString(sel.X)
			u := pools[key]
			if u == nil {
				u = &poolUse{expr: sel.X}
				pools[key] = u
			}
			u.puts++
		}
		return true
	})

	// Track variables bound to pooled values: x := pool.Get().(T) and
	// x := getEvalBuf().
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range assign.Rhs {
			if src := pooledSource(p, rhs, pairs); src != nil {
				recordPooled(assign, src)
			}
		}
		return true
	})

	accessor := isAccessor(fd.Name.Name)

	// Rule 1: Get without Put — direct, or through a put-wrapper call.
	for key, u := range pools {
		if u.puts == 0 {
			for name := range calledFuncs {
				if wrappers[name][key] {
					u.puts++
					break
				}
			}
		}
		if u.gets > 0 && u.puts == 0 && !accessor {
			p.Reportf(u.expr.Pos(),
				"%s.Get without a matching Put in %s; return the buffer to the pool (defer %s.Put(...)), or make this a get*/new* accessor paired at the call sites",
				exprString(u.expr), fd.Name.Name, exprString(u.expr))
		}
	}

	// Rule 2: get* accessor call without the paired put*.
	for getName, positions := range accessorCalls {
		putName := pairs[getName]
		if calledFuncs[putName] {
			continue
		}
		p.Reportf(positions[0],
			"%s without a matching %s in %s; pooled buffers are request-scoped (defer %s(...))",
			getName, putName, fd.Name.Name, putName)
	}

	// Rule 3: escapes.
	if !accessor {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range v.Results {
					if obj := identObject(p, res); obj != nil {
						if _, pooled := pooledVars[obj]; pooled {
							p.Reportf(res.Pos(),
								"pooled buffer %s escapes %s via return; the pool may hand it to a concurrent caller while this one still holds it",
								obj.Name(), fd.Name.Name)
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					obj := identObject(p, rhs)
					if obj == nil {
						continue
					}
					if _, pooled := pooledVars[obj]; !pooled {
						continue
					}
					if i >= len(v.Lhs) {
						continue
					}
					if storesBeyondScope(p, v.Lhs[i]) {
						p.Reportf(rhs.Pos(),
							"pooled buffer %s stored into %s, which outlives the request/kernel scope",
							obj.Name(), exprString(v.Lhs[i]))
					}
				}
			}
			return true
		})
	}
}

// pooledSource reports whether rhs acquires a pooled value: a
// (possibly type-asserted, dereferenced, or sliced) sync.Pool Get, or a
// call to a paired get* accessor. Returns the acquisition expression.
func pooledSource(p *Pass, rhs ast.Expr, pairs map[string]string) ast.Expr {
	switch v := unparen(rhs).(type) {
	case *ast.TypeAssertExpr:
		return pooledSource(p, v.X, pairs)
	case *ast.StarExpr:
		return pooledSource(p, v.X, pairs)
	case *ast.SliceExpr:
		return pooledSource(p, v.X, pairs)
	case *ast.CallExpr:
		if name := directCallee(v); name != "" {
			if _, isGet := pairs[name]; isGet {
				return v
			}
		}
		if sel, ok := unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" && isSyncPool(p.Info.TypeOf(sel.X)) {
			return v
		}
	}
	return nil
}

// directCallee names a plain (non-method) call target.
func directCallee(call *ast.CallExpr) string {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// identObject resolves an expression to a variable object when it is a
// bare identifier (possibly sliced: buf[:0] still aliases buf).
func identObject(p *Pass, e ast.Expr) types.Object {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return p.Info.ObjectOf(v)
	case *ast.SliceExpr:
		return identObject(p, v.X)
	}
	return nil
}

// storesBeyondScope reports whether the assignment target outlives the
// function: a struct field (selector) or a package-level variable.
func storesBeyondScope(p *Pass, lhs ast.Expr) bool {
	switch v := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return storesBeyondScope(p, v.X)
	case *ast.Ident:
		obj := p.Info.ObjectOf(v)
		return obj != nil && obj.Parent() == p.Pkg.Scope()
	}
	return false
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	return namedType(t, "sync", "Pool")
}
