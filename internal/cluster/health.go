package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// WorkerStatus is the prober's last verdict on one worker, plus the
// object counts its /healthz reported — the coordinator aggregates
// these into cluster-wide gauges without fanning out on every /metrics
// scrape.
type WorkerStatus struct {
	URL       string        `json:"url"`
	Up        bool          `json:"up"`
	Err       string        `json:"error,omitempty"`
	LastProbe time.Time     `json:"last_probe"`
	RTT       time.Duration `json:"rtt_ns"`
	Docs      int           `json:"docs"`
	Queries   int           `json:"queries"`
	Views     int           `json:"views"`
	// Transitions counts up/down flips since the prober started — a
	// flapping worker shows up here.
	Transitions uint64 `json:"transitions"`
}

// Prober drives the ring's up/down bits: every interval it GETs each
// worker's /readyz (which answers 503 while the worker is recovering
// its WAL/snapshot, so a booting worker is not routed to until it is
// actually serving) and, when ready, scrapes /healthz for object
// counts. One goroutine per worker, jittered so N probes don't land in
// lockstep.
type Prober struct {
	ring     *Ring
	interval time.Duration
	hc       *http.Client

	mu     sync.Mutex
	status []WorkerStatus

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewProber builds the prober; interval <= 0 means 500ms. The probe
// timeout is clamped to [1s, 2s] regardless of interval: a hung worker
// cannot stall the loop for long, but an aggressive probe cadence must
// not turn a momentarily slow (GC pause, load spike) worker into a
// down one — down means refused or timed out on a generous deadline,
// not "answered slower than the interval".
func NewProber(ring *Ring, interval time.Duration) *Prober {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	to := interval
	if to < time.Second {
		to = time.Second
	}
	if to > 2*time.Second {
		to = 2 * time.Second
	}
	p := &Prober{
		ring:     ring,
		interval: interval,
		hc:       &http.Client{Timeout: to},
		status:   make([]WorkerStatus, ring.N()),
		stop:     make(chan struct{}),
	}
	for i := range p.status {
		p.status[i] = WorkerStatus{URL: ring.URL(i), Up: true}
	}
	return p
}

// Start probes every worker once synchronously (so the ring reflects
// reality before the coordinator serves its first request) and then
// launches the background loops.
func (p *Prober) Start() {
	for i := 0; i < p.ring.N(); i++ {
		p.probe(i)
	}
	for i := 0; i < p.ring.N(); i++ {
		p.wg.Add(1)
		go p.loop(i)
	}
}

// Stop halts the loops and waits for them.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

func (p *Prober) loop(i int) {
	defer p.wg.Done()
	// Spread worker i's first tick across the interval.
	t := time.NewTimer(p.interval * time.Duration(i+1) / time.Duration(p.ring.N()+1))
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probe(i)
			t.Reset(p.interval)
		}
	}
}

// probe runs one readiness check against worker i and flips the ring.
func (p *Prober) probe(i int) {
	url := p.ring.URL(i)
	start := time.Now()
	up, errMsg := p.ready(url)
	rtt := time.Since(start)

	var counts struct {
		Docs    int `json:"docs"`
		Queries int `json:"queries"`
		Views   int `json:"views"`
	}
	if up {
		if resp, err := p.hc.Get(url + "/healthz"); err == nil {
			_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&counts)
			_ = resp.Body.Close()
		}
	}

	p.ring.SetUp(i, up)

	p.mu.Lock()
	st := &p.status[i]
	if st.Up != up {
		st.Transitions++
	}
	st.Up = up
	st.Err = errMsg
	st.LastProbe = start
	st.RTT = rtt
	if up {
		st.Docs, st.Queries, st.Views = counts.Docs, counts.Queries, counts.Views
	}
	p.mu.Unlock()
}

// ready GETs /readyz: 200 means serving; 503 means alive but still
// recovering (not routable); anything else — including transport
// errors — means down.
func (p *Prober) ready(url string) (bool, string) {
	ctx, cancel := context.WithTimeout(context.Background(), p.hc.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false, err.Error()
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return false, err.Error()
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return true, ""
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return false, "recovering (readyz 503)"
	}
	return false, "readyz status " + resp.Status
}

// Status snapshots every worker's last probe result.
func (p *Prober) Status() []WorkerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerStatus, len(p.status))
	copy(out, p.status)
	return out
}
