package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- ring ---

func TestRingDeterministicAndBalanced(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r1, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(workers, 0)
	counts := make([]int, len(workers))
	const docs = 4096
	for i := 0; i < docs; i++ {
		key := fmt.Sprintf("doc-%d", i)
		o := r1.Owner(key)
		if o2 := r2.Owner(key); o2 != o {
			t.Fatalf("owner(%q) not deterministic: %d vs %d", key, o, o2)
		}
		counts[o]++
	}
	// With 64 vnodes per worker the shards should be within a factor of
	// ~2 of the mean (the bound is loose on purpose; this guards gross
	// imbalance, not perfection).
	mean := docs / len(workers)
	for i, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("worker %d owns %d of %d docs (mean %d): imbalanced ring %v", i, c, docs, mean, counts)
		}
	}
}

func TestRingOwnershipIgnoresUpDown(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]int{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%d", i)
		owners[k] = r.Owner(k)
	}
	r.SetUp(0, false)
	for k, o := range owners {
		if r.Owner(k) != o {
			t.Fatalf("owner(%q) moved when a worker went down: placement must be static", k)
		}
	}
	if r.UpCount() != 1 || r.FirstUp() != 1 {
		t.Fatalf("UpCount=%d FirstUp=%d after downing worker 0", r.UpCount(), r.FirstUp())
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 4); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 4); err == nil {
		t.Fatal("duplicate worker accepted")
	}
}

// --- breaker ---

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != "open" {
		t.Fatalf("state after threshold failures = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	b.Failure() // probe fails: re-open
	if b.State() != "open" || b.Allow() {
		t.Fatalf("failed probe should re-open (state=%s)", b.State())
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatalf("successful probe should close (state=%s)", b.State())
	}
}

func TestBreakerCancelUnwedgesProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(1, time.Second)
	b.now = func() time.Time { return now }
	b.Failure()
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Cancel() // probe never reached the worker
	if !b.Allow() {
		t.Fatal("cancelled probe left the breaker wedged")
	}
}

// --- frame scanner ---

func TestFrameScannerCompleteStream(t *testing.T) {
	body := `{"x":{"begin":1,"end":3}}` + "\n" +
		`{"x":{"begin":2,"end":4}}` + "\n" +
		`{"count":2,"done":true,"took":"1ms","version":3}` + "\n"
	s := NewFrameScanner(strings.NewReader(body))
	var frames []string
	for {
		f, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, string(f))
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %v, want 2 tuple lines", frames)
	}
	sum := s.Summary()
	if sum == nil || !sum.Done || sum.Count != 2 || sum.Version != 3 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestFrameScannerTornStreams(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"torn mid-line":     `{"x":{"begin":1,`,
		"no trailer":        `{"x":{"begin":1,"end":3}}` + "\n",
		"torn after tuples": `{"x":{"begin":1,"end":3}}` + "\n" + `{"x":{"beg`,
	}
	for name, body := range cases {
		s := NewFrameScanner(strings.NewReader(body))
		var got error
		for {
			_, err := s.Next()
			if err != nil {
				got = err
				break
			}
		}
		if !errors.Is(got, ErrNoSummary) {
			t.Errorf("%s: error = %v, want ErrNoSummary", name, got)
		}
		if s.Summary() != nil {
			t.Errorf("%s: summary should be nil on a torn stream", name)
		}
	}
}

func TestFrameScannerInBandAbort(t *testing.T) {
	// A worker that hit its deadline mid-stream reports done:false on the
	// trailer; the scanner surfaces that as a valid summary — the
	// coordinator decides what partiality means.
	body := `{"x":{"begin":1,"end":3}}` + "\n" +
		`{"count":1,"done":false,"error":"evaluation deadline exceeded","took":"5ms"}` + "\n"
	s := NewFrameScanner(strings.NewReader(body))
	n := 0
	for {
		_, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	sum := s.Summary()
	if n != 1 || sum == nil || sum.Done || sum.Error == "" {
		t.Fatalf("n=%d summary=%+v", n, sum)
	}
}

// --- client ---

func TestClientRetriesTransportErrorThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Kill the connection without a response: a transport error at
			// the client.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	ring, _ := NewRing([]string{ts.URL}, 4)
	c := NewClient(ring, ClientConfig{RetryMax: 2, RetryBase: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, release, err := c.GetIdempotent(ctx, 0, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/x", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	b, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(b) != "ok" || c.Retries.Load() != 1 {
		t.Fatalf("body=%q retries=%d", b, c.Retries.Load())
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && n == 2 {
			gap.Store(now - prev)
		}
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	ring, _ := NewRing([]string{ts.URL}, 4)
	// RetryCap below Retry-After bounds the wait: the header is honored
	// up to the cap, so the test stays fast while still proving the
	// hint raises the backoff above its tiny base.
	c := NewClient(ring, ClientConfig{RetryMax: 1, RetryBase: time.Millisecond, RetryCap: 150 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, release, err := c.GetIdempotent(ctx, 0, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/x", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || calls.Load() != 2 {
		t.Fatalf("status=%d calls=%d", resp.StatusCode, calls.Load())
	}
	// The second attempt must have waited at least ~RetryCap (the capped
	// Retry-After), far above the 1ms base backoff.
	if g := time.Duration(gap.Load()); g < 100*time.Millisecond {
		t.Fatalf("retry gap %v: Retry-After hint not honored", g)
	}
}

func TestClientFailsFastOnDownWorker(t *testing.T) {
	ring, _ := NewRing([]string{"http://127.0.0.1:1"}, 4)
	ring.SetUp(0, false)
	c := NewClient(ring, ClientConfig{})
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://127.0.0.1:1/x", nil)
	_, _, err := c.Do(req, 0)
	if !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("err = %v, want ErrWorkerDown", err)
	}
	if StatusFor(err) != http.StatusServiceUnavailable {
		t.Fatalf("StatusFor(down) = %d, want 503", StatusFor(err))
	}
	if c.DownFastFails.Load() != 1 {
		t.Fatalf("DownFastFails = %d", c.DownFastFails.Load())
	}
}

func TestClientBreakerOpensAfterRepeatedFailures(t *testing.T) {
	// Nothing listens on this port: every attempt is a transport error.
	ring, _ := NewRing([]string{"http://127.0.0.1:1"}, 4)
	c := NewClient(ring, ClientConfig{RetryMax: 0, BreakerThreshold: 3, BreakerCooldown: time.Hour})
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://127.0.0.1:1/x", nil)
		if _, _, err := c.Do(req, 0); err == nil {
			t.Fatal("dial to a closed port succeeded?")
		}
	}
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://127.0.0.1:1/x", nil)
	_, _, err := c.Do(req, 0)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen after %d failures", err, 3)
	}
	if c.BreakerFastFails.Load() != 1 {
		t.Fatalf("BreakerFastFails = %d", c.BreakerFastFails.Load())
	}
}

func TestClientBoundsPerWorkerInflight(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	defer close(release)
	ring, _ := NewRing([]string{ts.URL}, 4)
	c := NewClient(ring, ClientConfig{MaxInflight: 1})

	started := make(chan struct{})
	go func() {
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL+"/slow", nil)
		close(started)
		resp, rel, err := c.Do(req, 0)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			rel()
		}
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the first request take the slot
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/second", nil)
	_, _, err := c.Do(req, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second request err = %v, want DeadlineExceeded (slot never freed)", err)
	}
}

// --- scatter ---

func TestScatterPreservesOrder(t *testing.T) {
	tasks := make([]int, 100)
	for i := range tasks {
		tasks[i] = i * 3
	}
	got := Scatter(context.Background(), tasks, 7, func(_ context.Context, i, task int) int {
		return task + i
	})
	for i, g := range got {
		if g != i*4 {
			t.Fatalf("result[%d] = %d, want %d", i, g, i*4)
		}
	}
}

func TestScatterStopsDispatchOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	tasks := make([]int, 1000)
	_ = Scatter(ctx, tasks, 2, func(ctx context.Context, i, _ int) bool {
		if ran.Add(1) == 2 {
			cancel()
		}
		return true
	})
	if n := ran.Load(); n > 10 {
		t.Fatalf("%d tasks ran after cancel; dispatch should stop promptly", n)
	}
}
