package cluster

import (
	"context"
	"sync"
)

// Scatter runs fn over every task on at most parallel goroutines and
// returns the results in task order. It never fails as a whole: each
// task's outcome (success or error) is encoded in its R by fn, so a
// dead shard degrades its own slots instead of aborting the gather.
// A cancelled ctx stops dispatching new tasks; already-running fn calls
// observe ctx themselves. parallel <= 0 means len(tasks).
//
// The per-worker in-flight bound lives in Client, not here: Scatter
// bounds the coordinator's own goroutine fan-out, Client.Do bounds what
// actually lands on each worker.
func Scatter[T, R any](ctx context.Context, tasks []T, parallel int, fn func(ctx context.Context, i int, task T) R) []R {
	results := make([]R, len(tasks))
	if len(tasks) == 0 {
		return results
	}
	if parallel <= 0 || parallel > len(tasks) {
		parallel = len(tasks)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = fn(ctx, i, tasks[i])
			}
		}()
	}
	for i := range tasks {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Leave the remaining slots at their zero R; the caller's fn
			// encoding treats an untouched slot as "not attempted".
			close(idx)
			wg.Wait()
			return results
		}
	}
	close(idx)
	wg.Wait()
	return results
}
