// Package cluster implements the coordinator side of a sharded spannerd
// deployment: consistent-hash placement of named documents across a set
// of worker processes, a health-probed up/down view of those workers,
// bounded per-worker fan-out with retries and circuit breaking, and the
// NDJSON frame discipline for merging worker streams.
//
// Placement is static: a document's owner is determined by the hash
// ring over the *configured* worker list, never by which workers are
// currently up. Documents do not move when a worker dies (there is no
// replication); a down worker makes its shard unavailable — requests
// for its documents fail fast with 502/503 — while every other shard
// keeps serving. This keeps ownership stable across worker restarts and
// coordinator restarts alike: the same -workers list always produces
// the same placement.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
)

// DefaultVNodes is the virtual-node count per worker when RingConfig
// leaves it zero: enough points that the shard sizes stay within a few
// percent of each other for realistic worker counts.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a fixed worker list with virtual
// nodes, plus an up/down bit per worker maintained by the health prober.
// Owner lookups and up/down flips are safe for concurrent use; the
// worker list itself is immutable after New.
type Ring struct {
	workers []string
	vnodes  int
	points  []ringPoint // sorted by hash
	up      []atomic.Bool
}

type ringPoint struct {
	hash   uint64
	worker int
}

// NewRing builds the ring. Workers are base URLs (http://host:port) in
// a stable order; vnodes <= 0 uses DefaultVNodes. Every worker starts
// up — the prober downs them on its first failed probe.
func NewRing(workers []string, vnodes int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	seen := map[string]bool{}
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("cluster: empty worker URL")
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker URL %q", w)
		}
		seen[w] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		workers: workers,
		vnodes:  vnodes,
		points:  make([]ringPoint, 0, len(workers)*vnodes),
		up:      make([]atomic.Bool, len(workers)),
	}
	for i, w := range workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", w, v)), worker: i})
		}
		r.up[i].Store(true)
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare with 64-bit FNV) break by worker
		// index so the ring is deterministic regardless of sort stability.
		return r.points[a].worker < r.points[b].worker
	})
	return r, nil
}

// hashKey is FNV-1a followed by the murmur3 fmix64 finalizer. Raw FNV
// over near-identical strings ("url#0", "url#1", …) leaves the vnode
// points visibly clustered — measured shard sizes varied by ~10x over
// 4 workers × 64 vnodes; the avalanche step evens them to within a few
// percent.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the index of the worker that owns key: the first ring
// point clockwise from the key's hash. Ownership ignores up/down state
// — see the package comment.
func (r *Ring) Owner(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}

// N is the number of configured workers.
func (r *Ring) N() int { return len(r.workers) }

// URL returns the base URL of worker i.
func (r *Ring) URL(i int) string { return r.workers[i] }

// Workers returns the configured worker URLs (the caller must not
// mutate the slice).
func (r *Ring) Workers() []string { return r.workers }

// VNodes is the virtual-node count per worker.
func (r *Ring) VNodes() int { return r.vnodes }

// SetUp flips worker i's availability bit (the health prober's verdict).
func (r *Ring) SetUp(i int, up bool) { r.up[i].Store(up) }

// Up reports whether worker i is currently considered available.
func (r *Ring) Up(i int) bool { return r.up[i].Load() }

// UpCount counts available workers.
func (r *Ring) UpCount() int {
	n := 0
	for i := range r.up {
		if r.up[i].Load() {
			n++
		}
	}
	return n
}

// FirstUp returns the lowest-indexed available worker, or -1 when the
// whole cluster is down. Used for shard-agnostic reads (query metadata
// lives on every worker).
func (r *Ring) FirstUp() int {
	for i := range r.up {
		if r.up[i].Load() {
			return i
		}
	}
	return -1
}
