package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
)

// ErrNoSummary reports an NDJSON worker stream that ended without a
// parseable summary trailer — the worker died (or the connection was
// cut) mid-stream, so the tuple lines that did arrive may be a prefix
// of the true result.
var ErrNoSummary = errors.New("cluster: worker stream ended without a summary trailer")

// StreamSummary is the trailer line a worker's /stream emits after its
// tuples: {"done": true, "count": N, "took": "..."} (done=false with an
// error when the worker aborted in-band).
type StreamSummary struct {
	Done    bool   `json:"done"`
	Count   int    `json:"count"`
	Took    string `json:"took"`
	Version int    `json:"version"`
	Error   string `json:"error"`
}

// FrameScanner splits a worker NDJSON stream into data frames and the
// final summary without parsing tuple lines: it reads one line ahead,
// so the line that turns out to be last — the summary — is never
// surfaced as data. This keeps the merge path free of per-tuple JSON
// parsing; the only line ever unmarshaled is the trailer.
type FrameScanner struct {
	br      *bufio.Reader
	held    []byte // the candidate summary line (last line read)
	started bool
	summary *StreamSummary
	err     error
}

// maxFrameBytes bounds one NDJSON line (a tuple can carry span contents
// of a large document; 16 MiB is far past anything the encoder emits
// for sane documents and stops a corrupt stream from buffering without
// bound).
const maxFrameBytes = 16 << 20

// NewFrameScanner wraps a worker stream body.
func NewFrameScanner(r io.Reader) *FrameScanner {
	return &FrameScanner{br: bufio.NewReaderSize(r, 64<<10)}
}

// readLine returns the next complete line without its newline. A final
// unterminated fragment (torn mid-line by a dying worker) is reported
// as ErrNoSummary — it cannot be trusted as either tuple or trailer.
func (s *FrameScanner) readLine() ([]byte, error) {
	var line []byte
	for {
		chunk, err := s.br.ReadSlice('\n')
		// ReadSlice's buffer is reused; accumulate into our own slice only
		// when a line spans reads.
		if err == nil {
			if line == nil {
				out := make([]byte, len(chunk)-1)
				copy(out, chunk[:len(chunk)-1])
				return out, nil
			}
			line = append(line, chunk[:len(chunk)-1]...)
			return line, nil
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			line = append(line, chunk...)
			if len(line) > maxFrameBytes {
				return nil, errors.New("cluster: NDJSON frame exceeds 16MiB")
			}
			continue
		}
		if errors.Is(err, io.EOF) {
			if len(chunk) > 0 || len(line) > 0 {
				return nil, ErrNoSummary // torn final fragment
			}
			return nil, io.EOF
		}
		return nil, err
	}
}

// Next returns the next data frame. io.EOF means the stream completed
// and Summary() is valid; any other error (including ErrNoSummary)
// means the worker died mid-stream.
func (s *FrameScanner) Next() ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.started {
		s.started = true
		first, err := s.readLine()
		if err != nil {
			// Zero lines at all: no data and no summary.
			if errors.Is(err, io.EOF) {
				err = ErrNoSummary
			}
			s.err = err
			return nil, s.err
		}
		s.held = first
	}
	next, err := s.readLine()
	if err != nil {
		if errors.Is(err, io.EOF) {
			// The held line is the trailer.
			var sum StreamSummary
			if jsonErr := json.Unmarshal(s.held, &sum); jsonErr != nil || !bytes.Contains(s.held, []byte(`"done"`)) {
				s.err = ErrNoSummary
			} else {
				s.summary = &sum
				s.err = io.EOF
			}
		} else {
			s.err = err
		}
		return nil, s.err
	}
	frame := s.held
	s.held = next
	return frame, nil
}

// Summary returns the parsed trailer after Next returned io.EOF, nil
// otherwise.
func (s *FrameScanner) Summary() *StreamSummary { return s.summary }
