package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrWorkerDown reports a request aimed at a worker the health prober
// currently considers down. Maps to 503 at the coordinator: the worker
// may come back, the client should retry later.
var ErrWorkerDown = errors.New("cluster: worker is down")

// ErrBreakerOpen reports a request refused by an open circuit breaker
// — the worker failed repeatedly and the cooldown has not elapsed.
// Maps to 503 like ErrWorkerDown.
var ErrBreakerOpen = errors.New("cluster: worker circuit breaker open")

// ClientConfig tunes the coordinator's worker client pool. The zero
// value gets sensible defaults.
type ClientConfig struct {
	// MaxInflight bounds concurrent requests per worker (the
	// coordinator-side analogue of the worker's own concurrency limiter);
	// excess requests wait for a slot until their context expires.
	// Default 32.
	MaxInflight int
	// RetryMax is how many times an idempotent request is retried after
	// its first attempt. Default 2.
	RetryMax int
	// RetryBase is the first backoff step; attempt k waits
	// base·2^k + jitter, capped at RetryCap. Defaults 25ms / 500ms.
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold / BreakerCooldown tune the per-worker circuit
	// breaker (see Breaker). Defaults 5 / 1s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the HTTP transport (tests inject failures).
	Transport http.RoundTripper
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 500 * time.Millisecond
	}
	return c
}

// Client is the coordinator's connection pool onto the workers: one
// shared HTTP transport, a per-worker in-flight semaphore, and a
// per-worker circuit breaker. Safe for concurrent use.
type Client struct {
	ring *Ring
	cfg  ClientConfig
	hc   *http.Client
	sem  []chan struct{}
	brk  []*Breaker

	// Counters for /metrics.
	Retries          atomic.Uint64 // idempotent retries performed
	BreakerFastFails atomic.Uint64 // requests refused by an open breaker
	DownFastFails    atomic.Uint64 // requests refused because the worker is down
}

// NewClient builds the pool over the ring's workers.
func NewClient(ring *Ring, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	tr := cfg.Transport
	if tr == nil {
		tr = &http.Transport{
			MaxIdleConns:        ring.N() * cfg.MaxInflight,
			MaxIdleConnsPerHost: cfg.MaxInflight,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	c := &Client{
		ring: ring,
		cfg:  cfg,
		hc:   &http.Client{Transport: tr},
		sem:  make([]chan struct{}, ring.N()),
		brk:  make([]*Breaker, ring.N()),
	}
	for i := range c.sem {
		c.sem[i] = make(chan struct{}, cfg.MaxInflight)
		c.brk[i] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	return c
}

// Breaker exposes worker i's breaker for observability.
func (c *Client) Breaker(i int) *Breaker { return c.brk[i] }

// Ring returns the ring the client routes over.
func (c *Client) Ring() *Ring { return c.ring }

// Do sends one request to worker i, enforcing the up/down ring, the
// circuit breaker, and the per-worker in-flight bound. The request must
// already carry the caller's context. On success the returned release
// func MUST be called once the response body is no longer needed — it
// frees the worker's in-flight slot (held for the whole body lifetime
// so a slow stream counts against the worker's fan-out budget).
//
// Transport errors count against the breaker; any HTTP response —
// including 5xx — counts as the worker being alive (its own limiter and
// deadline taxonomy speak for themselves and are handled by the retry
// layer, not the liveness layer).
func (c *Client) Do(req *http.Request, worker int) (*http.Response, func(), error) {
	if !c.ring.Up(worker) {
		c.DownFastFails.Add(1)
		return nil, nil, fmt.Errorf("%w: %s", ErrWorkerDown, c.ring.URL(worker))
	}
	b := c.brk[worker]
	if !b.Allow() {
		c.BreakerFastFails.Add(1)
		return nil, nil, fmt.Errorf("%w: %s", ErrBreakerOpen, c.ring.URL(worker))
	}
	ctx := req.Context()
	select {
	case c.sem[worker] <- struct{}{}:
	case <-ctx.Done():
		// The slot never freed up; the probe neither succeeded nor failed
		// from the worker's point of view, so the breaker must not stay
		// wedged in "probing".
		b.Cancel()
		return nil, nil, ctx.Err()
	}
	var released atomic.Bool
	release := func() {
		if released.CompareAndSwap(false, true) {
			<-c.sem[worker]
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		release()
		// A cancelled/expired context is the caller's deadline, not worker
		// ill health.
		if ctx.Err() != nil {
			b.Cancel()
			return nil, nil, ctx.Err()
		}
		b.Failure()
		return nil, nil, fmt.Errorf("worker %s: %w", c.ring.URL(worker), err)
	}
	b.Success()
	return resp, release, nil
}

// GetIdempotent sends a GET (or other side-effect-free request built by
// mkReq, fresh per attempt) to worker i with retries: transport errors
// back off exponentially with jitter; a 503 honors the worker's
// Retry-After header before the next attempt. Down-worker and
// open-breaker refusals are not retried — there is no replica to fail
// over to, and the prober/breaker decide when the worker is worth
// trying again.
func (c *Client) GetIdempotent(ctx context.Context, worker int, mkReq func(ctx context.Context) (*http.Request, error)) (*http.Response, func(), error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := mkReq(ctx)
		if err != nil {
			return nil, nil, err
		}
		resp, release, err := c.Do(req, worker)
		if err != nil {
			if errors.Is(err, ErrWorkerDown) || errors.Is(err, ErrBreakerOpen) || ctx.Err() != nil {
				return nil, nil, err
			}
			lastErr = err
			if attempt >= c.cfg.RetryMax {
				return nil, nil, lastErr
			}
			if err := c.sleep(ctx, c.backoff(attempt, 0)); err != nil {
				return nil, nil, lastErr
			}
			c.Retries.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < c.cfg.RetryMax {
			ra := retryAfter(resp)
			// Drain so the connection is reusable, then give the slot back
			// before sleeping.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			_ = resp.Body.Close()
			release()
			if err := c.sleep(ctx, c.backoff(attempt, ra)); err != nil {
				return nil, nil, fmt.Errorf("worker %s: 503 and retry budget exhausted by deadline", c.ring.URL(worker))
			}
			c.Retries.Add(1)
			continue
		}
		return resp, release, nil
	}
}

// backoff computes attempt k's wait: base·2^k plus up to one base of
// jitter, capped — but never less than the worker's own Retry-After
// hint (still capped, so a hostile header cannot park the coordinator).
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	d += time.Duration(rand.Int64N(int64(c.cfg.RetryBase) + 1))
	if d < hint {
		d = hint
	}
	if d > c.cfg.RetryCap {
		d = c.cfg.RetryCap
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfter parses a delay-seconds Retry-After header (the only form
// spannerd emits); absent or unparsable yields 0.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// StatusFor maps a client error onto the coordinator's HTTP taxonomy:
// 503 for down/breaker-open workers (retryable outage), 504 for a
// deadline that expired inside the fan-out, 502 for a worker that was
// reachable on paper but failed at the transport level.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrWorkerDown), errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadGateway
	}
}
