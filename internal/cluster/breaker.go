package cluster

import (
	"sync"
	"time"
)

// Breaker is a per-worker circuit breaker. Consecutive failures at or
// past the threshold open it; while open, Allow fails fast without
// touching the worker. After the cooldown one probe request is let
// through (half-open): its success closes the breaker, its failure
// re-opens it for another cooldown. This bounds the latency a dead
// worker can inject into scatter-gather requests to one timeout per
// cooldown instead of one per request.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook

	mu       sync.Mutex
	failures int
	state    breakerState
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// NewBreaker builds a breaker; threshold <= 0 means 5 consecutive
// failures, cooldown <= 0 means 1s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In the open state it
// returns false until the cooldown elapses, then admits exactly one
// probe (half-open); further requests keep failing fast until that
// probe settles via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a request that reached the worker and got a
// non-5xx answer; it closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = breakerClosed
	b.probing = false
}

// Failure records a transport error or 5xx from the worker. Reaching
// the threshold — or failing the half-open probe — opens the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// Cancel records a request that was admitted but never got a verdict
// from the worker (the caller's own deadline expired first). It only
// un-wedges a half-open probe so the next request may probe again; it
// neither closes nor opens the breaker.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Open reports whether the breaker is currently open (failing fast).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}

// State returns "closed" | "open" | "half-open" for observability.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
