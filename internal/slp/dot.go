package slp

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the SLP DAG in Graphviz DOT format in the style of the
// survey's Figure 1: inner nodes with l/r labeled arcs, leaves as the
// terminal boxes T_x. roots maps display names (e.g. "A1") to designated
// nodes; shared structure appears once.
func Dot(name string, roots map[string]*Node) string {
	// Stable ids via DFS over sorted root names.
	names := make([]string, 0, len(roots))
	for n := range roots {
		names = append(names, n)
	}
	sort.Strings(names)

	ids := map[*Node]string{}
	counter := 0
	var assign func(n *Node)
	assign = func(n *Node) {
		if n == nil || ids[n] != "" {
			return
		}
		if n.IsLeaf() {
			ids[n] = fmt.Sprintf("T_%c", n.LeafByte())
			return
		}
		counter++
		ids[n] = fmt.Sprintf("n%d", counter)
		assign(n.left)
		assign(n.right)
	}
	for _, nm := range names {
		assign(roots[nm])
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	emitted := map[*Node]bool{}
	var emit func(n *Node)
	emit = func(n *Node) {
		if n == nil || emitted[n] {
			return
		}
		emitted[n] = true
		if n.IsLeaf() {
			fmt.Fprintf(&sb, "  %q [shape=box, label=\"T_%c\"];\n", ids[n], n.LeafByte())
			return
		}
		fmt.Fprintf(&sb, "  %q [label=\"%s\\nlen=%d ord=%d\"];\n", ids[n], ids[n], n.Len(), n.Order())
		fmt.Fprintf(&sb, "  %q -> %q [label=\"l\"];\n", ids[n], ids[n.left])
		fmt.Fprintf(&sb, "  %q -> %q [label=\"r\"];\n", ids[n], ids[n.right])
		emit(n.left)
		emit(n.right)
	}
	for _, nm := range names {
		emit(roots[nm])
	}
	for _, nm := range names {
		fmt.Fprintf(&sb, "  %q [shape=plaintext];\n  %q -> %q [style=dotted];\n", "doc_"+nm, "doc_"+nm, ids[roots[nm]])
	}
	sb.WriteString("}\n")
	return sb.String()
}
