package slp

// AVL-style operations on strongly balanced SLPs, following the approach
// the survey attributes to Rytter (Section 4.1) and used for complex
// document editing (Section 4.3): concatenation inserts the smaller tree
// at the right depth of the larger one and repairs the at-most-2
// imbalances with rotations, in time O(|ord(a) − ord(b)|); extraction
// splits along one root-to-leaf path in O(ord). All operations are
// persistent: existing nodes are never mutated, so every intermediate
// document version in a database remains valid and shares structure.

// Concat returns an SLP deriving 𝔇(a)·𝔇(b). If both operands are strongly
// balanced, the result is strongly balanced and the operation creates
// O(|ord(a) − ord(b)| + 1) new nodes.
func Concat(a, b *Node) *Node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return join(a, b)
}

func join(l, r *Node) *Node {
	d := l.order - r.order
	if -1 <= d && d <= 1 {
		return Pair(l, r)
	}
	if d > 0 {
		// Descend the right spine of l.
		return rebalance(l.left, join(l.right, r))
	}
	return rebalance(join(l, r.left), r.right)
}

// rebalance combines two subtrees whose orders may differ by 2 (the
// invariant maintained by join) using the AVL single/double rotations.
func rebalance(l, r *Node) *Node {
	d := l.order - r.order
	switch {
	case d >= -1 && d <= 1:
		return Pair(l, r)
	case d == 2:
		if l.left.order >= l.right.order {
			// single rotation:  (ll lr) r  →  ll (lr r)
			return Pair(l.left, Pair(l.right, r))
		}
		// double rotation: (ll (lrl lrr)) r → (ll lrl) (lrr r)
		lr := l.right
		return Pair(Pair(l.left, lr.left), Pair(lr.right, r))
	case d == -2:
		if r.right.order >= r.left.order {
			return Pair(Pair(l, r.left), r.right)
		}
		rl := r.left
		return Pair(Pair(l, rl.left), Pair(rl.right, r.right))
	}
	// Orders differ by more than 2: fall back to a full join (can only
	// happen when operands were not strongly balanced to begin with).
	if d > 0 {
		return join(Pair(l.left, l.right), r)
	}
	return join(l, Pair(r.left, r.right))
}

// Extract returns an SLP deriving the factor doc[i:j] (0-based byte
// offsets, i ≤ j ≤ len). On strongly balanced SLPs it creates O(ord(n))
// new nodes and preserves strong balance. The empty factor is nil.
func Extract(n *Node, i, j int64) *Node {
	if n == nil || i >= j {
		return nil
	}
	if i <= 0 && j >= n.length {
		return n
	}
	if n.IsLeaf() {
		return n // i < j and length 1 implies the whole leaf
	}
	ll := n.left.length
	if j <= ll {
		return Extract(n.left, i, j)
	}
	if i >= ll {
		return Extract(n.right, i-ll, j-ll)
	}
	return Concat(Extract(n.left, i, ll), Extract(n.right, 0, j-ll))
}

// Balance returns a strongly balanced SLP deriving the same document,
// processing the DAG bottom-up with memoization: bal(A) =
// Concat(bal(left), bal(right)). Shared nodes are converted once, so the
// running time is O(|S| · ord) — the Rytter-style bound the survey quotes
// in Section 4.1 (the log-factor is unavoidable by Ganardi's lower
// bound for strongly balanced SLPs).
func Balance(n *Node) *Node {
	memo := map[*Node]*Node{}
	var rec func(*Node) *Node
	rec = func(m *Node) *Node {
		if m == nil {
			return nil
		}
		if m.IsLeaf() {
			return m
		}
		if r, ok := memo[m]; ok {
			return r
		}
		r := Concat(rec(m.left), rec(m.right))
		memo[m] = r
		return r
	}
	return rec(n)
}
