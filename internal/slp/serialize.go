package slp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization of SLP document databases, so compressed archives
// persist without ever being decompressed. The format stores the shared
// DAG once — nodes in topological order, leaves inline — and the list of
// designated roots, mirroring how Figure 1 of the survey presents a
// database as one grammar with designated nonterminals.
//
// Layout (all integers little-endian):
//
//	magic   "SLP1"
//	uint32  node count N
//	N ×     node: tag byte (0 = leaf, 1 = pair);
//	        leaf: 1 byte symbol; pair: uvarint left id, uvarint right id
//	        (ids index previously written nodes)
//	uint32  root count R
//	R ×     uvarint name length, name bytes, uvarint node id + 1 (0 = ε)

const slpMagic = "SLP1"

// WriteTo serializes the database to w.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}

	// Topological order over the shared DAG.
	ids := map[*Node]uint64{}
	var order []*Node
	var visit func(*Node)
	visit = func(n *Node) {
		if n == nil {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		visit(n.left)
		visit(n.right)
		ids[n] = uint64(len(order))
		order = append(order, n)
	}
	for _, name := range db.names {
		visit(db.docs[name])
	}

	if err := count(bw.WriteString(slpMagic)); err != nil {
		return written, err
	}
	var buf [binary.MaxVarintLen64]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		return count(bw.Write(buf[:4]))
	}
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		return count(bw.Write(buf[:n]))
	}
	if err := writeU32(uint32(len(order))); err != nil {
		return written, err
	}
	for _, n := range order {
		if n.IsLeaf() {
			if err := count(bw.Write([]byte{0, n.leaf})); err != nil {
				return written, err
			}
			continue
		}
		if err := count(bw.Write([]byte{1})); err != nil {
			return written, err
		}
		if err := writeUvarint(ids[n.left]); err != nil {
			return written, err
		}
		if err := writeUvarint(ids[n.right]); err != nil {
			return written, err
		}
	}
	if err := writeU32(uint32(len(db.names))); err != nil {
		return written, err
	}
	for _, name := range db.names {
		if err := writeUvarint(uint64(len(name))); err != nil {
			return written, err
		}
		if err := count(bw.WriteString(name)); err != nil {
			return written, err
		}
		id := uint64(0)
		if n := db.docs[name]; n != nil {
			id = ids[n] + 1
		}
		if err := writeUvarint(id); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadDB deserializes a database written by WriteTo. Structure sharing is
// restored exactly (shared subtrees are one node again).
func ReadDB(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("slp: reading magic: %w", err)
	}
	if string(magic) != slpMagic {
		return nil, fmt.Errorf("slp: bad magic %q", magic)
	}
	readU32 := func() (uint32, error) {
		b := make([]byte, 4)
		if _, err := io.ReadFull(br, b); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b), nil
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxNodes = 1 << 28
	if n > maxNodes {
		return nil, fmt.Errorf("slp: node count %d exceeds limit", n)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case 0:
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			nodes[i] = Leaf(b)
		case 1:
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			r2, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if l >= uint64(i) || r2 >= uint64(i) {
				return nil, fmt.Errorf("slp: node %d references forward node", i)
			}
			nodes[i] = Pair(nodes[l], nodes[r2])
		default:
			return nil, fmt.Errorf("slp: bad node tag %d", tag)
		}
	}
	rootCount, err := readU32()
	if err != nil {
		return nil, err
	}
	if rootCount > maxNodes {
		return nil, fmt.Errorf("slp: root count %d exceeds limit", rootCount)
	}
	db := NewDB()
	for i := uint32(0); i < rootCount; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("slp: name length %d exceeds limit", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if id == 0 {
			db.Add(string(name), nil)
			continue
		}
		if id > uint64(len(nodes)) {
			return nil, fmt.Errorf("slp: root %q references node %d of %d", name, id-1, len(nodes))
		}
		db.Add(string(name), nodes[id-1])
	}
	return db, nil
}
