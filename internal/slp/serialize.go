package slp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary serialization of SLP document databases, so compressed archives
// persist without ever being decompressed. The format stores the shared
// DAG once — nodes in topological order, leaves inline — and the list of
// designated roots, mirroring how Figure 1 of the survey presents a
// database as one grammar with designated nonterminals.
//
// Layout (all integers little-endian):
//
//	magic   "SLP1"
//	uint32  node count N
//	N ×     node: tag byte (0 = leaf, 1 = pair);
//	        leaf: 1 byte symbol; pair: uvarint left id, uvarint right id
//	        (ids index previously written nodes)
//	uint32  root count R
//	R ×     uvarint name length, name bytes, uvarint node id + 1 (0 = ε)

const slpMagic = "SLP1"

// WriteTo serializes the database to w.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}

	// Topological order over the shared DAG.
	ids := map[*Node]uint64{}
	var order []*Node
	var visit func(*Node)
	visit = func(n *Node) {
		if n == nil {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		visit(n.left)
		visit(n.right)
		ids[n] = uint64(len(order))
		order = append(order, n)
	}
	for _, name := range db.names {
		visit(db.docs[name])
	}

	if err := count(bw.WriteString(slpMagic)); err != nil {
		return written, err
	}
	var buf [binary.MaxVarintLen64]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		return count(bw.Write(buf[:4]))
	}
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		return count(bw.Write(buf[:n]))
	}
	if err := writeU32(uint32(len(order))); err != nil {
		return written, err
	}
	for _, n := range order {
		if n.IsLeaf() {
			if err := count(bw.Write([]byte{0, n.leaf})); err != nil {
				return written, err
			}
			continue
		}
		if err := count(bw.Write([]byte{1})); err != nil {
			return written, err
		}
		if err := writeUvarint(ids[n.left]); err != nil {
			return written, err
		}
		if err := writeUvarint(ids[n.right]); err != nil {
			return written, err
		}
	}
	if err := writeU32(uint32(len(db.names))); err != nil {
		return written, err
	}
	for _, name := range db.names {
		if err := writeUvarint(uint64(len(name))); err != nil {
			return written, err
		}
		if err := count(bw.WriteString(name)); err != nil {
			return written, err
		}
		id := uint64(0)
		if n := db.docs[name]; n != nil {
			id = ids[n] + 1
		}
		if err := writeUvarint(id); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadDB deserializes a database written by WriteTo. Structure sharing is
// restored exactly (shared subtrees are one node again).
func ReadDB(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("slp: reading magic: %w", err)
	}
	if string(magic) != slpMagic {
		return nil, fmt.Errorf("slp: bad magic %q", magic)
	}
	readU32 := func() (uint32, error) {
		b := make([]byte, 4)
		if _, err := io.ReadFull(br, b); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b), nil
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxNodes = 1 << 28
	if n > maxNodes {
		return nil, fmt.Errorf("slp: node count %d exceeds limit", n)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case 0:
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			nodes[i] = Leaf(b)
		case 1:
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			r2, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if l >= uint64(i) || r2 >= uint64(i) {
				return nil, fmt.Errorf("slp: node %d references forward node", i)
			}
			nodes[i] = Pair(nodes[l], nodes[r2])
		default:
			return nil, fmt.Errorf("slp: bad node tag %d", tag)
		}
	}
	rootCount, err := readU32()
	if err != nil {
		return nil, err
	}
	if rootCount > maxNodes {
		return nil, fmt.Errorf("slp: root count %d exceeds limit", rootCount)
	}
	db := NewDB()
	for i := uint32(0); i < rootCount; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("slp: name length %d exceeds limit", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if id == 0 {
			db.Add(string(name), nil)
			continue
		}
		if id > uint64(len(nodes)) {
			return nil, fmt.Errorf("slp: root %q references node %d of %d", name, id-1, len(nodes))
		}
		db.Add(string(name), nodes[id-1])
	}
	return db, nil
}

// Checksummed framing around WriteTo/ReadDB, for callers that persist a
// database to storage that can be torn or corrupted (snapshots of a
// write-ahead-logged store). The frame is
//
//	magic   "SLPC"
//	uint64  payload length (little-endian)
//	uint32  CRC-32C (Castagnoli) of the payload (little-endian)
//	payload the plain WriteTo stream
//
// so a truncated or bit-flipped snapshot is detected before any of its
// nodes are trusted. The length prefix also lets a reader consume exactly
// the frame from a stream that continues past it.

const slpCheckedMagic = "SLPC"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// countWriter counts and checksums everything written through it.
type countWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (cw *countWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteToChecked serializes the database like WriteTo, wrapped in a
// length-prefixed checksummed frame that ReadDBChecked verifies before
// returning any node. The payload is staged in memory to compute length
// and checksum up front — it is grammar-sized, not document-sized, which
// is exactly what makes this affordable.
func (db *DB) WriteToChecked(w io.Writer) (int64, error) {
	var staging bytes.Buffer
	cw := &countWriter{w: &staging}
	if _, err := db.WriteTo(cw); err != nil {
		return 0, err
	}
	var written int64
	header := make([]byte, 0, 16)
	header = append(header, slpCheckedMagic...)
	header = binary.LittleEndian.AppendUint64(header, uint64(cw.n))
	header = binary.LittleEndian.AppendUint32(header, cw.crc)
	n, err := w.Write(header)
	written += int64(n)
	if err != nil {
		return written, err
	}
	m, err := staging.WriteTo(w)
	return written + m, err
}

// ReadDBChecked deserializes a database written by WriteToChecked,
// verifying the checksum before parsing. A torn or corrupted frame fails
// loudly instead of yielding a database missing an arbitrary suffix of
// its nodes. Exactly the frame is consumed from r.
func ReadDBChecked(r io.Reader) (*DB, error) {
	header := make([]byte, 16)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("slp: reading checked header: %w", err)
	}
	if string(header[:4]) != slpCheckedMagic {
		return nil, fmt.Errorf("slp: bad checked magic %q", header[:4])
	}
	length := binary.LittleEndian.Uint64(header[4:12])
	want := binary.LittleEndian.Uint32(header[12:16])
	const maxPayload = 1 << 33
	if length > maxPayload {
		return nil, fmt.Errorf("slp: checked payload length %d exceeds limit", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("slp: reading checked payload: %w", err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("slp: checked payload CRC mismatch (got %08x, want %08x)", got, want)
	}
	return ReadDB(bytes.NewReader(payload))
}
