// Package slp implements straight-line programs (SLPs): DAG-shaped
// grammars in Chomsky normal form in which every node derives exactly one
// string. SLPs are the compressed document representation of Section 4 of
// Schmid and Schweikardt's PODS 2022 survey. The package provides
//
//   - persistent (immutable, structure-shared) SLP nodes with cached
//     length and order, so documents can be composed without copying;
//   - the balance notions of Section 4.1 (order, bal, strongly balanced,
//     c-shallow) and a Balance transformation in the style of Rytter that
//     makes any SLP strongly balanced in O(|S|·log n);
//   - AVL-style Concat/Extract in O(log n) — the machinery behind complex
//     document editing (Section 4.3);
//   - a Re-Pair compressor producing small SLPs from plain documents;
//   - document databases with the CDE expression algebra (concat,
//     extract, delete, insert, copy).
package slp

import (
	"fmt"
)

// Node is an SLP node. A leaf derives a single byte; an inner node derives
// the concatenation of its children's derivations. Nodes are immutable;
// different documents share subtrees freely (that is the compression).
// The nil *Node derives the empty document ε.
type Node struct {
	left, right *Node
	length      int64
	order       int32
	leaf        byte
}

var leaves [256]*Node

func init() {
	for b := 0; b < 256; b++ {
		leaves[b] = &Node{length: 1, order: 1, leaf: byte(b)}
	}
}

// Leaf returns the (interned) leaf node deriving the byte b.
func Leaf(b byte) *Node { return leaves[b] }

// Pair returns the raw inner node with the given children, without any
// rebalancing — this is how arbitrary (unbalanced) SLPs such as Re-Pair
// grammars are represented. Both children must be non-nil.
func Pair(l, r *Node) *Node {
	if l == nil || r == nil {
		panic("slp: Pair with nil child")
	}
	o := l.order
	if r.order > o {
		o = r.order
	}
	return &Node{left: l, right: r, length: l.length + r.length, order: o + 1}
}

// Len returns the length of the derived document (0 for nil).
func (n *Node) Len() int64 {
	if n == nil {
		return 0
	}
	return n.length
}

// Order returns ord(n) as defined in Section 4.1: leaves have order 1, an
// inner node has 1 + max of its children's orders.
func (n *Node) Order() int32 {
	if n == nil {
		return 0
	}
	return n.order
}

// IsLeaf reports whether the node derives a single byte.
func (n *Node) IsLeaf() bool { return n != nil && n.left == nil }

// Left and Right return the children (nil for leaves).
func (n *Node) Left() *Node  { return n.left }
func (n *Node) Right() *Node { return n.right }

// LeafByte returns the byte of a leaf node.
func (n *Node) LeafByte() byte { return n.leaf }

// Bal returns bal(n) = ord(left) − ord(right) for inner nodes, 0 for
// leaves (Section 4.1).
func (n *Node) Bal() int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return int(n.left.order - n.right.order)
}

// StronglyBalanced reports whether n and all its descendants have
// bal ∈ {−1, 0, 1} (Section 4.1, the AVL condition).
func (n *Node) StronglyBalanced() bool {
	ok := true
	visited := map[*Node]bool{}
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil || m.IsLeaf() || visited[m] || !ok {
			return
		}
		visited[m] = true
		if b := m.Bal(); b < -1 || b > 1 {
			ok = false
			return
		}
		rec(m.left)
		rec(m.right)
	}
	rec(n)
	return ok
}

// CShallow reports whether every node m reachable from n satisfies
// ord(m) ≤ c·log₂|𝔇(m)| + 1 (Section 4.1; the +1 accounts for leaves,
// whose derivation has length 1 and order 1).
func (n *Node) CShallow(c float64) bool {
	ok := true
	visited := map[*Node]bool{}
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil || visited[m] || !ok {
			return
		}
		visited[m] = true
		if float64(m.order) > c*log2(m.length)+1 {
			ok = false
			return
		}
		rec(m.left)
		rec(m.right)
	}
	rec(n)
	return ok
}

func log2(n int64) float64 {
	l := 0.0
	for n > 1 {
		l++
		n >>= 1
	}
	return l
}

// Size returns the number of distinct nodes in the DAG rooted at n — the
// size |S| of the SLP.
func (n *Node) Size() int {
	visited := map[*Node]bool{}
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil || visited[m] {
			return
		}
		visited[m] = true
		rec(m.left)
		rec(m.right)
	}
	rec(n)
	return len(visited)
}

// Byte returns the i-th byte (0-based) of the derived document, in
// O(ord(n)) time — random access on the compressed representation.
func (n *Node) Byte(i int64) byte {
	for !n.IsLeaf() {
		if i < n.left.length {
			n = n.left
		} else {
			i -= n.left.length
			n = n.right
		}
	}
	return n.leaf
}

// Bytes decompresses the full document. O(|𝔇(n)|).
func (n *Node) Bytes() []byte {
	out := make([]byte, 0, n.Len())
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil {
			return
		}
		if m.IsLeaf() {
			out = append(out, m.leaf)
			return
		}
		rec(m.left)
		rec(m.right)
	}
	rec(n)
	return out
}

// WriteRange appends doc[i:j] (0-based byte offsets) to dst without
// decompressing the rest. O(ord(n) + (j−i)).
func (n *Node) WriteRange(dst []byte, i, j int64) []byte {
	var rec func(m *Node, i, j int64)
	rec = func(m *Node, i, j int64) {
		if m == nil || i >= j {
			return
		}
		if m.IsLeaf() {
			dst = append(dst, m.leaf)
			return
		}
		ll := m.left.length
		if i < ll {
			e := j
			if e > ll {
				e = ll
			}
			rec(m.left, i, e)
		}
		if j > ll {
			s := i - ll
			if s < 0 {
				s = 0
			}
			rec(m.right, s, j-ll)
		}
	}
	rec(n, i, j)
	return dst
}

// FromBytes builds a perfectly balanced SLP for the document — the
// uncompressed baseline: 2n−1 nodes (leaves interned), order ⌈log n⌉+1.
func FromBytes(doc []byte) *Node {
	if len(doc) == 0 {
		return nil
	}
	var build func(lo, hi int) *Node
	build = func(lo, hi int) *Node {
		if hi-lo == 1 {
			return Leaf(doc[lo])
		}
		mid := (lo + hi) / 2
		return Pair(build(lo, mid), build(mid, hi))
	}
	return build(0, len(doc))
}

// Repeat returns an SLP for k copies of base using O(log k) extra nodes
// (binary powering with full sharing) — the construction achieving
// exponential compression, |S| = O(log |D|).
func Repeat(base *Node, k int64) *Node {
	if base == nil || k <= 0 {
		return nil
	}
	var out *Node
	pow := base
	for k > 0 {
		if k&1 == 1 {
			out = Concat(out, pow)
		}
		k >>= 1
		if k > 0 {
			pow = Concat(pow, pow)
		}
	}
	return out
}

// String summarizes the SLP.
func (n *Node) String() string {
	return fmt.Sprintf("SLP{len=%d, size=%d, ord=%d}", n.Len(), n.Size(), n.Order())
}
