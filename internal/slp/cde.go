package slp

import (
	"fmt"
	"strconv"
	"strings"
)

// Complex document editing (CDE), Section 4.3 of the survey: expressions
// over a document database built from the operations concat, extract,
// delete, insert, and copy. Evaluating a CDE expression φ on a strongly
// balanced SLP-represented database takes O(|φ|·log d) time, where d
// bounds the documents involved — the documents are never decompressed.
//
// Positions follow the paper's convention: 1-based and inclusive, so
// extract(D, i, j) is the factor from position i to position j.

// CDE is a node of a CDE expression.
type CDE interface {
	cde()
	String() string
}

// CDE error codes, stable identifiers for machine consumption (servers
// map them onto structured diagnostics).
const (
	// CDEParseCode: the expression text does not parse.
	CDEParseCode = "CDE001"
	// CDEUnknownDocCode: a DocRef names a document the database lacks.
	CDEUnknownDocCode = "CDE002"
	// CDERangeCode: an extract/delete/copy range or an insert/copy
	// position is outside the operand document.
	CDERangeCode = "CDE003"
)

// CDEError is the typed error for CDE parsing and evaluation failures.
// Code identifies the failure shape, Offset locates parse errors in the
// source text (-1 for evaluation errors), and Op is the textual form of
// the offending operation for evaluation errors ("" for parse errors).
type CDEError struct {
	Code    string
	Offset  int
	Op      string
	Message string
	Hint    string
}

func (e *CDEError) Error() string { return "slp: " + e.Message }

func parseErr(offset int, format string, args ...any) error {
	return &CDEError{
		Code:    CDEParseCode,
		Offset:  offset,
		Message: fmt.Sprintf(format, args...),
		Hint:    "operations are concat/2, extract/3, delete/3, insert/3, copy/4; positions are 1-based decimal integers",
	}
}

// DocRef names a document of the database.
type DocRef struct{ Name string }

// CDEConcat is concat(L, R).
type CDEConcat struct{ L, R CDE }

// CDEExtract is extract(D, I, J).
type CDEExtract struct {
	D    CDE
	I, J int64
}

// CDEDelete is delete(D, I, J).
type CDEDelete struct {
	D    CDE
	I, J int64
}

// CDEInsert is insert(D, D', K): insert D' at position K of D.
type CDEInsert struct {
	D, D2 CDE
	K     int64
}

// CDECopy is copy(D, I, J, K): copy the factor from I to J and paste it
// at position K.
type CDECopy struct {
	D       CDE
	I, J, K int64
}

func (DocRef) cde()     {}
func (CDEConcat) cde()  {}
func (CDEExtract) cde() {}
func (CDEDelete) cde()  {}
func (CDEInsert) cde()  {}
func (CDECopy) cde()    {}

func (d DocRef) String() string { return d.Name }
func (c CDEConcat) String() string {
	return fmt.Sprintf("concat(%s,%s)", c.L, c.R)
}
func (e CDEExtract) String() string {
	return fmt.Sprintf("extract(%s,%d,%d)", e.D, e.I, e.J)
}
func (e CDEDelete) String() string {
	return fmt.Sprintf("delete(%s,%d,%d)", e.D, e.I, e.J)
}
func (e CDEInsert) String() string {
	return fmt.Sprintf("insert(%s,%s,%d)", e.D, e.D2, e.K)
}
func (e CDECopy) String() string {
	return fmt.Sprintf("copy(%s,%d,%d,%d)", e.D, e.I, e.J, e.K)
}

// SizeOf returns |φ|, the number of operations in the expression.
func SizeOf(e CDE) int {
	switch m := e.(type) {
	case DocRef:
		return 1
	case CDEConcat:
		return 1 + SizeOf(m.L) + SizeOf(m.R)
	case CDEExtract:
		return 1 + SizeOf(m.D)
	case CDEDelete:
		return 1 + SizeOf(m.D)
	case CDEInsert:
		return 1 + SizeOf(m.D) + SizeOf(m.D2)
	case CDECopy:
		return 1 + SizeOf(m.D)
	}
	return 1
}

// DB is an SLP-represented document database: named documents whose SLP
// nodes may share structure (a single underlying DAG, as in Figure 1 of
// the survey).
type DB struct {
	docs  map[string]*Node
	names []string
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{docs: map[string]*Node{}} }

// Add stores a document under a name (replacing any previous binding).
// The node should be strongly balanced for the CDE complexity guarantees;
// use Balance if in doubt.
func (db *DB) Add(name string, n *Node) {
	if _, ok := db.docs[name]; !ok {
		db.names = append(db.names, name)
	}
	db.docs[name] = n
}

// Get returns the named document's SLP node.
func (db *DB) Get(name string) (*Node, bool) {
	n, ok := db.docs[name]
	return n, ok
}

// Names lists the documents in insertion order.
func (db *DB) Names() []string { return append([]string(nil), db.names...) }

// Remove drops the named document binding. Nodes shared with other
// documents stay reachable through them; removing an unknown name is a
// no-op.
func (db *DB) Remove(name string) {
	if _, ok := db.docs[name]; !ok {
		return
	}
	delete(db.docs, name)
	for i, n := range db.names {
		if n == name {
			db.names = append(db.names[:i], db.names[i+1:]...)
			break
		}
	}
}

// Size returns the number of distinct nodes of the whole database DAG.
func (db *DB) Size() int {
	visited := map[*Node]bool{}
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil || visited[m] {
			return
		}
		visited[m] = true
		rec(m.left)
		rec(m.right)
	}
	for _, n := range db.docs {
		rec(n)
	}
	return len(visited)
}

// Eval evaluates a CDE expression against the database, returning the SLP
// node of the resulting document without decompressing anything. Each
// operation costs O(log d) on strongly balanced operands.
func (db *DB) Eval(e CDE) (*Node, error) {
	switch m := e.(type) {
	case DocRef:
		n, ok := db.docs[m.Name]
		if !ok {
			return nil, &CDEError{
				Code:    CDEUnknownDocCode,
				Offset:  -1,
				Op:      m.Name,
				Message: fmt.Sprintf("unknown document %q", m.Name),
				Hint:    "add the document to the database before referring to it",
			}
		}
		return n, nil
	case CDEConcat:
		l, err := db.Eval(m.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Eval(m.R)
		if err != nil {
			return nil, err
		}
		return Concat(l, r), nil
	case CDEExtract:
		d, err := db.Eval(m.D)
		if err != nil {
			return nil, err
		}
		if err := checkRange(m, d, m.I, m.J); err != nil {
			return nil, err
		}
		return Extract(d, m.I-1, m.J), nil
	case CDEDelete:
		d, err := db.Eval(m.D)
		if err != nil {
			return nil, err
		}
		if err := checkRange(m, d, m.I, m.J); err != nil {
			return nil, err
		}
		return Concat(Extract(d, 0, m.I-1), Extract(d, m.J, d.Len())), nil
	case CDEInsert:
		d, err := db.Eval(m.D)
		if err != nil {
			return nil, err
		}
		d2, err := db.Eval(m.D2)
		if err != nil {
			return nil, err
		}
		if m.K < 1 || m.K > d.Len()+1 {
			return nil, posErr(m, "insert", m.K, d.Len())
		}
		return Concat(Concat(Extract(d, 0, m.K-1), d2), Extract(d, m.K-1, d.Len())), nil
	case CDECopy:
		d, err := db.Eval(m.D)
		if err != nil {
			return nil, err
		}
		if err := checkRange(m, d, m.I, m.J); err != nil {
			return nil, err
		}
		if m.K < 1 || m.K > d.Len()+1 {
			return nil, posErr(m, "paste", m.K, d.Len())
		}
		factor := Extract(d, m.I-1, m.J)
		return Concat(Concat(Extract(d, 0, m.K-1), factor), Extract(d, m.K-1, d.Len())), nil
	}
	return nil, fmt.Errorf("slp: unknown CDE node %T", e)
}

func checkRange(op CDE, d *Node, i, j int64) error {
	if i < 1 || j < i-1 || j > d.Len() {
		return &CDEError{
			Code:    CDERangeCode,
			Offset:  -1,
			Op:      op.String(),
			Message: fmt.Sprintf("range [%d,%d] out of bounds for document of length %d", i, j, d.Len()),
			Hint:    fmt.Sprintf("positions are 1-based and inclusive; valid ranges satisfy 1 ≤ i, i-1 ≤ j ≤ %d", d.Len()),
		}
	}
	return nil
}

func posErr(op CDE, what string, k, docLen int64) error {
	return &CDEError{
		Code:    CDERangeCode,
		Offset:  -1,
		Op:      op.String(),
		Message: fmt.Sprintf("%s position %d out of range 1..%d", what, k, docLen+1),
		Hint:    fmt.Sprintf("position k means 'before the k-th symbol'; k = %d appends at the end", docLen+1),
	}
}

// EvalAndAdd evaluates φ and stores the result, implementing the update
// task of Section 4.3: DDB becomes DDB ∪ {eval(φ)}.
func (db *DB) EvalAndAdd(name string, e CDE) (*Node, error) {
	n, err := db.Eval(e)
	if err != nil {
		return nil, err
	}
	db.Add(name, n)
	return n, nil
}

// ParseCDE parses the textual form of a CDE expression, e.g.
//
//	insert(delete(D3,2,5), extract(D7,5,21), 12)
//
// Identifiers are document names; the operations are concat/2, extract/3,
// delete/3, insert/3, and copy/4.
func ParseCDE(src string) (CDE, error) {
	p := &cdeParser{src: src}
	e, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, parseErr(p.pos, "trailing input at offset %d", p.pos)
	}
	return e, nil
}

type cdeParser struct {
	src string
	pos int
}

func (p *cdeParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *cdeParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *cdeParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return parseErr(p.pos, "expected %q at offset %d", c, p.pos)
	}
	p.pos++
	return nil
}

func (p *cdeParser) number() (int64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, parseErr(start, "expected number at offset %d", start)
	}
	v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return 0, parseErr(start, "number %q out of int64 range", p.src[start:p.pos])
	}
	return v, nil
}

func (p *cdeParser) parse() (CDE, error) {
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return nil, parseErr(p.pos, "expected identifier at offset %d", p.pos)
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return DocRef{Name: name}, nil
	}
	op := strings.ToLower(name)
	p.pos++ // consume '('
	switch op {
	case "concat":
		l, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		r, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return CDEConcat{L: l, R: r}, nil
	case "extract", "delete":
		d, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		i, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		j, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if op == "extract" {
			return CDEExtract{D: d, I: i, J: j}, nil
		}
		return CDEDelete{D: d, I: i, J: j}, nil
	case "insert":
		d, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		d2, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		k, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return CDEInsert{D: d, D2: d2, K: k}, nil
	case "copy":
		d, err := p.parse()
		if err != nil {
			return nil, err
		}
		var nums [3]int64
		for i := 0; i < 3; i++ {
			if err := p.expect(','); err != nil {
				return nil, err
			}
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			nums[i] = v
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return CDECopy{D: d, I: nums[0], J: nums[1], K: nums[2]}, nil
	}
	return nil, parseErr(p.pos, "unknown operation %q", name)
}
