package slp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomNode(rng *rand.Rand, maxLen int) *Node {
	n := rng.Intn(maxLen)
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = "abc"[rng.Intn(3)]
	}
	switch rng.Intn(3) {
	case 0:
		return FromBytes(b)
	case 1:
		return Balance(Compress(b))
	default:
		// Repetitive with a random base.
		base := FromBytes(b[:rng.Intn(len(b))+1])
		return Extract(Repeat(base, int64(n/int(base.Len())+1)), 0, int64(n))
	}
}

func TestConcatAssociativeLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		a := randomNode(rng, 60)
		b := randomNode(rng, 60)
		c := randomNode(rng, 60)
		l := Concat(Concat(a, b), c)
		r := Concat(a, Concat(b, c))
		if string(l.Bytes()) != string(r.Bytes()) {
			t.Fatalf("trial %d: associativity violated", trial)
		}
		if l != nil && !l.StronglyBalanced() {
			t.Fatalf("trial %d: left association unbalanced", trial)
		}
		if r != nil && !r.StronglyBalanced() {
			t.Fatalf("trial %d: right association unbalanced", trial)
		}
	}
}

func TestConcatIdentityLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := randomNode(rng, 40)
	if Concat(a, nil) != a || Concat(nil, a) != a {
		t.Error("nil is not a Concat identity")
	}
}

func TestExtractComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 60; trial++ {
		a := randomNode(rng, 80)
		if a == nil {
			continue
		}
		n := a.Len()
		i := rng.Int63n(n + 1)
		j := i + rng.Int63n(n+1-i)
		inner := Extract(a, i, j)
		if inner == nil {
			continue
		}
		m := inner.Len()
		p := rng.Int63n(m + 1)
		q := p + rng.Int63n(m+1-p)
		// Extract(Extract(a,i,j),p,q) ≡ Extract(a, i+p, i+q).
		l := Extract(inner, p, q)
		r := Extract(a, i+p, i+q)
		var ls, rs string
		if l != nil {
			ls = string(l.Bytes())
		}
		if r != nil {
			rs = string(r.Bytes())
		}
		if ls != rs {
			t.Fatalf("trial %d: composition violated: %q vs %q", trial, ls, rs)
		}
	}
}

func TestConcatExtractInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 40; trial++ {
		a := randomNode(rng, 60)
		if a == nil {
			continue
		}
		k := rng.Int63n(a.Len() + 1)
		// Concat(Extract(a,0,k), Extract(a,k,n)) ≡ a (by content).
		back := Concat(Extract(a, 0, k), Extract(a, k, a.Len()))
		if string(back.Bytes()) != string(a.Bytes()) {
			t.Fatalf("trial %d: split/concat roundtrip failed", trial)
		}
	}
}

func TestBalanceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 20; trial++ {
		a := randomNode(rng, 80)
		b1 := Balance(a)
		b2 := Balance(b1)
		var s1, s2 string
		if b1 != nil {
			s1 = string(b1.Bytes())
		}
		if b2 != nil {
			s2 = string(b2.Bytes())
		}
		if s1 != s2 {
			t.Fatalf("trial %d: Balance changed content on second application", trial)
		}
		if b2 != nil && !b2.StronglyBalanced() {
			t.Fatalf("trial %d: Balance∘Balance unbalanced", trial)
		}
	}
}

func TestByteMatchesBytesQuick(t *testing.T) {
	f := func(seed []byte, idx uint16) bool {
		if len(seed) == 0 {
			return true
		}
		doc := make([]byte, len(seed))
		for i := range seed {
			doc[i] = 'a' + seed[i]%3
		}
		n := Balance(Compress(doc))
		i := int64(idx) % int64(len(doc))
		return n.Byte(i) == doc[i]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteRangeMatchesBytesQuick(t *testing.T) {
	f := func(seed []byte, a, b uint16) bool {
		if len(seed) == 0 {
			return true
		}
		doc := make([]byte, len(seed))
		for i := range seed {
			doc[i] = 'a' + seed[i]%3
		}
		n := FromBytes(doc)
		i := int64(a) % int64(len(doc)+1)
		j := i + int64(b)%(int64(len(doc))+1-i)
		got := n.WriteRange(nil, i, j)
		return string(got) == string(doc[i:j])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepeatMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for trial := 0; trial < 20; trial++ {
		base := randomNode(rng, 10)
		if base == nil {
			continue
		}
		k := int64(rng.Intn(20))
		r := Repeat(base, k)
		want := ""
		s := string(base.Bytes())
		for i := int64(0); i < k; i++ {
			want += s
		}
		var got string
		if r != nil {
			got = string(r.Bytes())
		}
		if got != want {
			t.Fatalf("Repeat(%q, %d) = %q", s, k, got)
		}
	}
}
