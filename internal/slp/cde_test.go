package slp

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func figure1DB() *DB {
	a1, a2, a3, _, _, _, _, _ := figure1()
	db := NewDB()
	db.Add("D1", Balance(a1))
	db.Add("D2", Balance(a2))
	db.Add("D3", Balance(a3))
	return db
}

func TestCDEBasicOps(t *testing.T) {
	db := figure1DB()
	d1 := "ababbcabca"
	d2 := "bcabcaabbca"

	cases := []struct {
		expr string
		want string
	}{
		{"D1", d1},
		{"concat(D2,D1)", d2 + d1},
		{"extract(D1,3,6)", d1[2:6]},
		{"extract(D1,1,10)", d1},
		{"delete(D1,3,6)", d1[:2] + d1[6:]},
		{"delete(D1,1,10)", ""},
		{"insert(D1,D2,1)", d2 + d1},
		{"insert(D1,D2,11)", d1 + d2},
		{"insert(D1,D2,3)", d1[:2] + d2 + d1[2:]},
		{"copy(D1,2,4,1)", d1[1:4] + d1},
		{"copy(D1,1,3,11)", d1 + d1[0:3]},
		{"concat(extract(D1,1,2),delete(D2,2,10))", d1[:2] + "b" + "a"},
	}
	for _, c := range cases {
		e, err := ParseCDE(c.expr)
		if err != nil {
			t.Errorf("ParseCDE(%q): %v", c.expr, err)
			continue
		}
		n, err := db.Eval(e)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.expr, err)
			continue
		}
		if got := string(n.Bytes()); got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.expr, got, c.want)
		}
		if n != nil && !n.StronglyBalanced() {
			t.Errorf("Eval(%q) result not strongly balanced", c.expr)
		}
	}
}

func TestCDEPaperExample(t *testing.T) {
	// The paper's running example (Section 4): "cut the subword from
	// position 5 to 21 from document D7, insert it at position 12 into
	// document D3, append this document to D1."
	db := NewDB()
	d7 := strings.Repeat("abcde", 10)
	d3 := strings.Repeat("xyz", 8)
	d1 := "header:"
	db.Add("D7", Balance(Compress([]byte(d7))))
	db.Add("D3", Balance(Compress([]byte(d3))))
	db.Add("D1", FromBytes([]byte(d1)))

	expr, err := ParseCDE("concat(D1, insert(D3, extract(D7,5,21), 12))")
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.EvalAndAdd("D8", expr)
	if err != nil {
		t.Fatal(err)
	}
	want := d1 + d3[:11] + d7[4:21] + d3[11:]
	if got := string(n.Bytes()); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	if _, ok := db.Get("D8"); !ok {
		t.Error("D8 not stored")
	}
	if len(db.Names()) != 4 {
		t.Errorf("Names = %v", db.Names())
	}
}

func TestCDEErrors(t *testing.T) {
	db := figure1DB()
	bad := []string{
		"D9",               // unknown document
		"extract(D1,0,3)",  // position < 1
		"extract(D1,3,99)", // j out of range
		"insert(D1,D2,99)", // insert position out of range
		"copy(D1,2,4,99)",  // paste position out of range
		"delete(D1,5,2)",   // inverted range
	}
	for _, src := range bad {
		e, err := ParseCDE(src)
		if err != nil {
			continue // parse error also acceptable for malformed input
		}
		if _, err := db.Eval(e); err == nil {
			t.Errorf("Eval(%q) accepted", src)
		}
	}
}

func TestCDEErrorsAreTyped(t *testing.T) {
	db := figure1DB()
	cases := []struct {
		src  string
		code string
	}{
		{"D9", CDEUnknownDocCode},
		{"extract(D9,1,2)", CDEUnknownDocCode},
		{"extract(D1,0,3)", CDERangeCode},
		{"extract(D1,3,99)", CDERangeCode},
		{"delete(D1,5,2)", CDERangeCode},
		{"insert(D1,D2,99)", CDERangeCode},
		{"copy(D1,2,4,99)", CDERangeCode},
	}
	for _, c := range cases {
		e, err := ParseCDE(c.src)
		if err != nil {
			t.Fatalf("ParseCDE(%q): %v", c.src, err)
		}
		_, err = db.Eval(e)
		var ce *CDEError
		if !errors.As(err, &ce) {
			t.Errorf("Eval(%q) = %v, want *CDEError", c.src, err)
			continue
		}
		if ce.Code != c.code {
			t.Errorf("Eval(%q) code = %s, want %s", c.src, ce.Code, c.code)
		}
		if ce.Offset != -1 {
			t.Errorf("Eval(%q) offset = %d, want -1 for an eval error", c.src, ce.Offset)
		}
		if ce.Op == "" || ce.Message == "" || ce.Hint == "" {
			t.Errorf("Eval(%q) error lacks op/message/hint: %+v", c.src, ce)
		}
	}
}

func TestCDEParseErrorsAreTyped(t *testing.T) {
	for _, src := range []string{
		"", "concat(D1)", "extract(D1,a,b)", "concat(D1,D2", "foo(D1,2,3)",
		"extract(D1,2,3)x", "extract(D1,99999999999999999999,3)",
	} {
		_, err := ParseCDE(src)
		var ce *CDEError
		if !errors.As(err, &ce) {
			t.Errorf("ParseCDE(%q) = %v, want *CDEError", src, err)
			continue
		}
		if ce.Code != CDEParseCode {
			t.Errorf("ParseCDE(%q) code = %s, want %s", src, ce.Code, CDEParseCode)
		}
		if ce.Offset < 0 || ce.Offset > len(src) {
			t.Errorf("ParseCDE(%q) offset = %d outside the source", src, ce.Offset)
		}
	}
}

func TestCDEParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "concat(D1)", "extract(D1,a,b)", "concat(D1,D2", "foo(D1,2,3)",
		"extract(D1,2,3)x",
	} {
		if _, err := ParseCDE(src); err == nil {
			t.Errorf("ParseCDE(%q) accepted", src)
		}
	}
}

func TestCDESizeAndString(t *testing.T) {
	e, err := ParseCDE("insert(delete(D3,2,5), extract(D7,5,21), 12)")
	if err != nil {
		t.Fatal(err)
	}
	if SizeOf(e) != 5 {
		t.Errorf("SizeOf = %d, want 5", SizeOf(e))
	}
	round, err := ParseCDE(e.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", e.String(), err)
	}
	if round.String() != e.String() {
		t.Error("String not stable")
	}
}

func TestCDEUpdatePreservesBalanceChain(t *testing.T) {
	// A long chain of edits must keep the SLP strongly balanced — the
	// invariant behind the O(|φ|·log d) bound of Section 4.3.
	db := NewDB()
	db.Add("D", FromBytes([]byte(strings.Repeat("abcd", 64))))
	cur := "D"
	doc := strings.Repeat("abcd", 64)
	for i := 0; i < 40; i++ {
		var src string
		switch i % 4 {
		case 0:
			src = "copy(" + cur + ",1,8,5)"
			doc = doc[:4] + doc[0:8] + doc[4:]
		case 1:
			src = "delete(" + cur + ",2,9)"
			doc = doc[:1] + doc[9:]
		case 2:
			src = "concat(" + cur + "," + cur + ")"
			doc = doc + doc
		case 3:
			src = "extract(" + cur + ",2,33)"
			doc = doc[1:33]
		}
		e, err := ParseCDE(src)
		if err != nil {
			t.Fatal(err)
		}
		next := fmt.Sprintf("D%d", i)
		n, err := db.EvalAndAdd(next, e)
		if err != nil {
			t.Fatalf("step %d (%s): %v", i, src, err)
		}
		if string(n.Bytes()) != doc {
			t.Fatalf("step %d: content mismatch", i)
		}
		if n != nil && !n.StronglyBalanced() {
			t.Fatalf("step %d: unbalanced", i)
		}
		cur = next
	}
}

func TestCDEStringsAllOps(t *testing.T) {
	cases := []string{
		"D1",
		"concat(D1,D2)",
		"extract(D1,2,3)",
		"delete(D1,2,3)",
		"insert(D1,D2,4)",
		"copy(D1,2,3,4)",
	}
	for _, src := range cases {
		e, err := ParseCDE(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if e.String() != src {
			t.Errorf("String(%q) = %q", src, e.String())
		}
	}
	if SizeOf(CDEConcat{L: DocRef{Name: "a"}, R: DocRef{Name: "b"}}) != 3 {
		t.Error("SizeOf concat wrong")
	}
}

func TestNodeAccessors(t *testing.T) {
	n := Pair(Leaf('a'), Leaf('b'))
	if n.Left().LeafByte() != 'a' || n.Right().LeafByte() != 'b' {
		t.Error("Left/Right wrong")
	}
	if n.String() != "SLP{len=2, size=3, ord=2}" {
		t.Errorf("String = %q", n.String())
	}
	var nilNode *Node
	if nilNode.Order() != 0 || nilNode.Len() != 0 || nilNode.Bal() != 0 {
		t.Error("nil node accessors wrong")
	}
	if Leaf('a').Bal() != 0 {
		t.Error("leaf Bal wrong")
	}
}
