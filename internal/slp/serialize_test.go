package slp

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestSerializeRoundTripFigure1(t *testing.T) {
	db := figure1DB()
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Names() {
		orig, _ := db.Get(name)
		got, ok := back.Get(name)
		if !ok {
			t.Fatalf("document %s missing", name)
		}
		if string(got.Bytes()) != string(orig.Bytes()) {
			t.Errorf("document %s content changed", name)
		}
	}
	// Structure sharing restored: same DAG size.
	if back.Size() != db.Size() {
		t.Errorf("DAG size %d, want %d (sharing lost)", back.Size(), db.Size())
	}
}

func TestSerializeEmptyAndNilDocs(t *testing.T) {
	db := NewDB()
	db.Add("empty", nil)
	db.Add("one", FromBytes([]byte("x")))
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := back.Get("empty"); !ok || n.Len() != 0 {
		t.Error("empty document lost")
	}
	if n, ok := back.Get("one"); !ok || string(n.Bytes()) != "x" {
		t.Error("one-byte document lost")
	}
}

func TestSerializeRandomDatabases(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 10; trial++ {
		db := NewDB()
		contents := map[string]string{}
		for d := 0; d < rng.Intn(5)+1; d++ {
			name := string(rune('A' + d))
			doc := make([]byte, rng.Intn(200))
			for i := range doc {
				doc[i] = "abcd"[rng.Intn(4)]
			}
			contents[name] = string(doc)
			db.Add(name, Balance(Compress(doc)))
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDB(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range contents {
			n, ok := back.Get(name)
			if !ok {
				t.Fatalf("trial %d: %s missing", trial, name)
			}
			var got string
			if n != nil {
				got = string(n.Bytes())
			}
			if got != want {
				t.Fatalf("trial %d: %s changed", trial, name)
			}
		}
	}
}

func TestSerializeCompactness(t *testing.T) {
	// A 2^20-byte repetitive document must serialize in O(log n) bytes.
	db := NewDB()
	db.Add("big", Repeat(FromBytes([]byte("ab")), 1<<19))
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 1024 {
		t.Errorf("serialized 1MB repetitive doc to %d bytes, want few hundred", buf.Len())
	}
	back, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := back.Get("big")
	if n.Len() != 1<<20 || n.Byte(0) != 'a' || n.Byte(1<<20-1) != 'b' {
		t.Error("content wrong after round trip")
	}
}

func TestReadDBRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SLP1"),                     // truncated counts
		append([]byte("SLP1"), 1, 0, 0, 0), // truncated node
		append([]byte("SLP1"), 1, 0, 0, 0, 1, 0, 0), // pair referencing forward
	}
	for i, c := range cases {
		if _, err := ReadDB(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// TestCDEFuzzAgainstPlainModel drives the SLP database with random CDE
// operations and cross-checks every result against a plain-bytes
// reference model, including balance invariants — a model-based fuzz of
// the whole Section 4.3 machinery.
func TestCDEFuzzAgainstPlainModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		db := NewDB()
		model := map[string]string{}
		// Seed documents of assorted representations.
		seed := strings.Repeat("abrakadabra", rng.Intn(20)+1)
		db.Add("D0", Balance(Compress([]byte(seed))))
		model["D0"] = seed
		db.Add("D1", FromBytes([]byte("xyxy")))
		model["D1"] = "xyxy"

		names := []string{"D0", "D1"}
		for step := 0; step < 30; step++ {
			src := names[rng.Intn(len(names))]
			cur := model[src]
			n := int64(len(cur))
			var expr string
			var want string
			switch op := rng.Intn(5); {
			case op == 0: // concat with a random existing doc
				other := names[rng.Intn(len(names))]
				expr = "concat(" + src + "," + other + ")"
				want = cur + model[other]
			case op == 1 && n >= 1: // extract
				i := rng.Int63n(n) + 1
				j := i + rng.Int63n(n-i+1)
				expr = sprintf("extract(%s,%d,%d)", src, i, j)
				want = cur[i-1 : j]
			case op == 2 && n >= 1: // delete
				i := rng.Int63n(n) + 1
				j := i + rng.Int63n(n-i+1)
				expr = sprintf("delete(%s,%d,%d)", src, i, j)
				want = cur[:i-1] + cur[j:]
			case op == 3: // insert
				other := names[rng.Intn(len(names))]
				k := rng.Int63n(n+1) + 1
				expr = sprintf("insert(%s,%s,%d)", src, other, k)
				want = cur[:k-1] + model[other] + cur[k-1:]
			case op == 4 && n >= 1: // copy
				i := rng.Int63n(n) + 1
				j := i + rng.Int63n(n-i+1)
				k := rng.Int63n(n+1) + 1
				expr = sprintf("copy(%s,%d,%d,%d)", src, i, j, k)
				want = cur[:k-1] + cur[i-1:j] + cur[k-1:]
			default:
				continue
			}
			if len(want) > 1<<16 {
				continue // keep the model cheap
			}
			e, err := ParseCDE(expr)
			if err != nil {
				t.Fatalf("trial %d step %d: parse %q: %v", trial, step, expr, err)
			}
			name := sprintf("S%d_%d", trial, step)
			node, err := db.EvalAndAdd(name, e)
			if err != nil {
				t.Fatalf("trial %d step %d: eval %q: %v", trial, step, expr, err)
			}
			var got string
			if node != nil {
				got = string(node.Bytes())
			}
			if got != want {
				t.Fatalf("trial %d step %d: %q\n got  %q\n want %q", trial, step, expr, got, want)
			}
			if node != nil && !node.StronglyBalanced() {
				t.Fatalf("trial %d step %d: %q result unbalanced", trial, step, expr)
			}
			model[name] = want
			names = append(names, name)
		}
	}
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func TestSerializeCheckedRoundTrip(t *testing.T) {
	db := figure1DB()
	var buf bytes.Buffer
	n, err := db.WriteToChecked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteToChecked reported %d bytes, wrote %d", n, buf.Len())
	}
	// The frame is length-prefixed: a reader consumes exactly the frame
	// even when the stream continues past it.
	buf.WriteString("trailing bytes of the enclosing file")
	back, err := ReadDBChecked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Names() {
		orig, _ := db.Get(name)
		got, ok := back.Get(name)
		if !ok {
			t.Fatalf("document %s missing", name)
		}
		if string(got.Bytes()) != string(orig.Bytes()) {
			t.Errorf("document %s content changed", name)
		}
	}
	if back.Size() != db.Size() {
		t.Errorf("DAG size %d, want %d (sharing lost)", back.Size(), db.Size())
	}
	if rest := buf.String(); rest != "trailing bytes of the enclosing file" {
		t.Errorf("frame over-consumed; %q left", rest)
	}
}

func TestSerializeCheckedDetectsCorruption(t *testing.T) {
	db := figure1DB()
	var buf bytes.Buffer
	if _, err := db.WriteToChecked(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every truncation point fails loudly (header, payload, or both).
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadDBChecked(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
	// A single flipped bit anywhere in the payload fails the CRC.
	for _, pos := range []int{16, 20, len(full) / 2, len(full) - 1} {
		bad := append([]byte(nil), full...)
		bad[pos] ^= 0x40
		if _, err := ReadDBChecked(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}
