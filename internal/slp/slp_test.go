package slp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure1 reconstructs the SLP of Figure 1 of the survey:
//
//	E=(Ta,Tb) F=(Tb,Tc) C=(F,Ta) B=(E,C) D=(C,B) A3=(E,B) A1=(A3,C) A2=(C,D)
//
// with designated nodes A1, A2, A3 representing the document database
// DDB = {ababbcabca, bcabcaabbca, ababbca}.
func figure1() (a1, a2, a3, b, c, d, e, f *Node) {
	ta, tb, tc := Leaf('a'), Leaf('b'), Leaf('c')
	e = Pair(ta, tb)
	f = Pair(tb, tc)
	c = Pair(f, ta)
	b = Pair(e, c)
	d = Pair(c, b)
	a3 = Pair(e, b)
	a1 = Pair(a3, c)
	a2 = Pair(c, d)
	return
}

func TestFigure1Documents(t *testing.T) {
	a1, a2, a3, b, c, _, _, _ := figure1()
	if got := string(a1.Bytes()); got != "ababbcabca" {
		t.Errorf("D1 = %q", got)
	}
	if got := string(a2.Bytes()); got != "bcabcaabbca" {
		t.Errorf("D2 = %q", got)
	}
	if got := string(a3.Bytes()); got != "ababbca" {
		t.Errorf("D3 = %q", got)
	}
	if got := string(b.Bytes()); got != "abbca" {
		t.Errorf("𝔇(B) = %q", got)
	}
	if got := string(c.Bytes()); got != "bca" {
		t.Errorf("𝔇(C) = %q", got)
	}
}

func TestFigure1Orders(t *testing.T) {
	a1, a2, a3, b, c, d, e, f := figure1()
	// Section 4.1: ord(F)=ord(E)=2, ord(C)=3, ord(B)=4,
	// ord(D)=ord(A3)=5, ord(A1)=ord(A2)=6.
	for _, tc := range []struct {
		n    *Node
		want int32
		name string
	}{
		{e, 2, "E"}, {f, 2, "F"}, {c, 3, "C"}, {b, 4, "B"},
		{d, 5, "D"}, {a3, 5, "A3"}, {a1, 6, "A1"}, {a2, 6, "A2"},
	} {
		if tc.n.Order() != tc.want {
			t.Errorf("ord(%s) = %d, want %d", tc.name, tc.n.Order(), tc.want)
		}
	}
	// All nodes balanced except A1 (bal 2) and A2, A3 (bal −2).
	if a1.Bal() != 2 || a2.Bal() != -2 || a3.Bal() != -2 {
		t.Errorf("bal(A1,A2,A3) = %d,%d,%d, want 2,-2,-2", a1.Bal(), a2.Bal(), a3.Bal())
	}
	for _, tc := range []struct {
		n    *Node
		name string
	}{{b, "B"}, {c, "C"}, {d, "D"}, {e, "E"}, {f, "F"}} {
		if bl := tc.n.Bal(); bl < -1 || bl > 1 {
			t.Errorf("bal(%s) = %d, want balanced", tc.name, bl)
		}
	}
	if a1.StronglyBalanced() {
		t.Error("A1 reported strongly balanced")
	}
	if !d.StronglyBalanced() {
		t.Error("D not strongly balanced")
	}
}

func TestFigure1GreyExtension(t *testing.T) {
	a1, a2, _, b, _, d, _, _ := figure1()
	// Section 4.3: A4 = (A2, A1) adds D4 = D2·D1; G = (D, B) and
	// A5 = (B, G) add D5 = 𝔇(B)𝔇(D)𝔇(B).
	a4 := Pair(a2, a1)
	g := Pair(d, b)
	a5 := Pair(b, g)
	if got := string(a4.Bytes()); got != "bcabcaabbca"+"ababbcabca" {
		t.Errorf("D4 = %q", got)
	}
	if got := string(a5.Bytes()); got != "abbcabcaabbcaabbca" {
		t.Errorf("D5 = %q", got)
	}
}

func TestFigure1DatabaseSharing(t *testing.T) {
	a1, a2, a3, _, _, _, _, _ := figure1()
	db := NewDB()
	db.Add("D1", a1)
	db.Add("D2", a2)
	db.Add("D3", a3)
	// The shared DAG has exactly the 8 inner nodes + 3 leaves.
	if got := db.Size(); got != 11 {
		t.Errorf("database DAG size = %d, want 11", got)
	}
}

func TestByteAndWriteRange(t *testing.T) {
	a1, _, _, _, _, _, _, _ := figure1()
	doc := "ababbcabca"
	for i := 0; i < len(doc); i++ {
		if got := a1.Byte(int64(i)); got != doc[i] {
			t.Errorf("Byte(%d) = %c, want %c", i, got, doc[i])
		}
	}
	got := a1.WriteRange(nil, 2, 7)
	if string(got) != doc[2:7] {
		t.Errorf("WriteRange = %q, want %q", got, doc[2:7])
	}
}

func TestFromBytesRoundTrip(t *testing.T) {
	for _, doc := range []string{"", "a", "ab", "hello world", strings.Repeat("abc", 100)} {
		n := FromBytes([]byte(doc))
		if string(n.Bytes()) != doc {
			t.Errorf("round trip failed for %q", doc)
		}
		if doc != "" && !n.StronglyBalanced() {
			t.Errorf("FromBytes(%q) not strongly balanced", doc)
		}
	}
}

func TestRepeatExponentialCompression(t *testing.T) {
	base := FromBytes([]byte("ab"))
	n := Repeat(base, 1<<20)
	if n.Len() != 2<<20 {
		t.Errorf("Len = %d", n.Len())
	}
	if n.Size() > 100 {
		t.Errorf("Size = %d, want O(log n)", n.Size())
	}
	if !n.StronglyBalanced() {
		t.Error("Repeat result not strongly balanced")
	}
	// Spot-check contents.
	if n.Byte(0) != 'a' || n.Byte(1) != 'b' || n.Byte(2<<20-1) != 'b' {
		t.Error("content wrong")
	}
}

func TestConcatCorrectAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	mk := func(n int) (*Node, string) {
		b := make([]byte, n)
		for i := range b {
			b[i] = "abc"[rng.Intn(3)]
		}
		return FromBytes(b), string(b)
	}
	for trial := 0; trial < 50; trial++ {
		na, sa := mk(rng.Intn(200))
		nb, sb := mk(rng.Intn(200))
		c := Concat(na, nb)
		if string(c.Bytes()) != sa+sb {
			t.Fatalf("Concat content wrong")
		}
		if c != nil && !c.StronglyBalanced() {
			t.Fatalf("Concat result unbalanced (lens %d+%d)", len(sa), len(sb))
		}
	}
	// Extremely skewed concat.
	big, sbig := mk(1 << 12)
	small, ssmall := mk(1)
	c := Concat(big, small)
	if string(c.Bytes()) != sbig+ssmall || !c.StronglyBalanced() {
		t.Error("skewed Concat wrong")
	}
}

func TestExtractCorrectAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := make([]byte, 500)
	for i := range b {
		b[i] = "ab"[rng.Intn(2)]
	}
	n := FromBytes(b)
	for trial := 0; trial < 100; trial++ {
		i := rng.Int63n(int64(len(b)) + 1)
		j := i + rng.Int63n(int64(len(b))+1-i)
		e := Extract(n, i, j)
		if string(e.Bytes()) != string(b[i:j]) {
			t.Fatalf("Extract(%d,%d) wrong", i, j)
		}
		if e != nil && !e.StronglyBalanced() {
			t.Fatalf("Extract(%d,%d) unbalanced", i, j)
		}
	}
	if Extract(n, 5, 5) != nil {
		t.Error("empty Extract should be nil")
	}
}

func TestBalance(t *testing.T) {
	// A maximally skewed SLP: left-deep chain.
	n := Leaf('a')
	for i := 0; i < 200; i++ {
		n = Pair(n, Leaf('b'))
	}
	if n.StronglyBalanced() {
		t.Fatal("chain should be unbalanced")
	}
	bal := Balance(n)
	if string(bal.Bytes()) != string(n.Bytes()) {
		t.Error("Balance changed the document")
	}
	if !bal.StronglyBalanced() {
		t.Error("Balance result not strongly balanced")
	}
	// Strong balance implies 2-shallowness (Section 4.1).
	if !bal.CShallow(2) {
		t.Error("strongly balanced SLP not 2-shallow")
	}
}

func TestBalancePreservesSharingStructure(t *testing.T) {
	// Balance of an already balanced tree keeps sizes modest.
	base := FromBytes([]byte("abcabcab"))
	n := Repeat(base, 1024)
	bal := Balance(n)
	if string(bal.Bytes()) != string(n.Bytes()) {
		t.Error("content changed")
	}
	if bal.Size() > 4*n.Size()+64 {
		t.Errorf("Balance blew up size: %d -> %d", n.Size(), bal.Size())
	}
}

func TestCompressRoundTripAndShrink(t *testing.T) {
	docs := []string{
		"",
		"a",
		"abab",
		strings.Repeat("abc", 200),
		strings.Repeat("a", 1000),
		"the quick brown fox jumps over the lazy dog",
		strings.Repeat("to be or not to be ", 50),
	}
	for _, doc := range docs {
		n := Compress([]byte(doc))
		if string(n.Bytes()) != doc {
			t.Errorf("Compress round trip failed for %q...", doc[:min(20, len(doc))])
		}
		if len(doc) >= 100 && n.Size() >= len(doc) {
			t.Errorf("no compression on repetitive input: %d nodes for %d bytes", n.Size(), len(doc))
		}
	}
	// Highly repetitive: size should be tiny.
	rep := Compress([]byte(strings.Repeat("ab", 1<<12)))
	if rep.Size() > 64 {
		t.Errorf("repetitive doc compressed to %d nodes", rep.Size())
	}
}

func TestCompressQuick(t *testing.T) {
	f := func(seed []byte) bool {
		doc := make([]byte, len(seed))
		for i := range seed {
			doc[i] = 'a' + seed[i]%4
		}
		n := Compress(doc)
		return string(n.Bytes()) == string(doc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBalanceAfterCompress(t *testing.T) {
	doc := []byte(strings.Repeat("abracadabra", 100))
	n := Compress(doc)
	b := Balance(n)
	if !b.StronglyBalanced() || string(b.Bytes()) != string(doc) {
		t.Error("Balance after Compress broken")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDotFigure1(t *testing.T) {
	a1, a2, a3, _, _, _, _, _ := figure1()
	dot := Dot("figure1", map[string]*Node{"A1": a1, "A2": a2, "A3": a3})
	for _, want := range []string{
		"digraph \"figure1\"",
		"T_a", "T_b", "T_c",
		"doc_A1", "doc_A2", "doc_A3",
		"label=\"l\"", "label=\"r\"",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q", want)
		}
	}
	// Shared nodes emitted once: exactly 8 inner node declarations.
	if got := strings.Count(dot, "ord="); got != 8 {
		t.Errorf("Dot emitted %d inner nodes, want 8", got)
	}
}
