package slp

import (
	"bytes"
	"testing"
)

func TestWriteToReturnsByteCount(t *testing.T) {
	db := figure1DB()
	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
}
