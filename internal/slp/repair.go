package slp

// Re-Pair grammar compression (Larsson & Moffat): repeatedly replace the
// most frequent adjacent symbol pair with a fresh nonterminal until no
// pair occurs twice. The resulting grammar is an SLP; the survey
// (Section 4) treats such practical compressors as the standard way
// documents arrive in SLP form. Computing a *smallest* SLP is NP-complete
// (the survey cites Charikar et al. and Casel et al.), so a greedy
// compressor is the right tool.
//
// This implementation rescans the sequence each round; because every
// round with a repeating pair shrinks the sequence, total work is
// O(n · rounds) with rounds logarithmic on repetitive inputs.

// Compress builds an SLP for doc with Re-Pair. The result is NOT
// necessarily balanced; apply Balance before using algorithms that need
// strong balance or shallowness. Returns nil for the empty document.
func Compress(doc []byte) *Node {
	if len(doc) == 0 {
		return nil
	}
	// Work over int symbols: 0..255 terminals, ≥256 nonterminals.
	seq := make([]int32, len(doc))
	for i, b := range doc {
		seq[i] = int32(b)
	}
	type rule struct{ l, r int32 }
	var rules []rule
	next := int32(256)

	counts := make(map[[2]int32]int32)
	for len(seq) > 1 {
		clear(counts)
		var best [2]int32
		bestCount := int32(1)
		prevPair := [2]int32{-1, -1}
		for i := 0; i+1 < len(seq); i++ {
			p := [2]int32{seq[i], seq[i+1]}
			// Avoid counting overlapping occurrences (aaa has one "aa").
			if p == prevPair && p[0] == p[1] {
				prevPair = [2]int32{-1, -1}
				continue
			}
			prevPair = p
			counts[p]++
			if counts[p] > bestCount || (counts[p] == bestCount && better(p, best)) {
				best = p
				bestCount = counts[p]
			}
		}
		if bestCount < 2 {
			break
		}
		// Replace non-overlapping occurrences of best left to right.
		sym := next
		next++
		rules = append(rules, rule{best[0], best[1]})
		out := seq[:0]
		for i := 0; i < len(seq); {
			if i+1 < len(seq) && seq[i] == best[0] && seq[i+1] == best[1] {
				out = append(out, sym)
				i += 2
			} else {
				out = append(out, seq[i])
				i++
			}
		}
		seq = out
	}

	// Materialize nodes: terminals are leaves, nonterminals are pairs
	// (shared: one node per rule).
	nodes := make([]*Node, int(next))
	for b := 0; b < 256; b++ {
		nodes[b] = Leaf(byte(b))
	}
	for i, r := range rules {
		nodes[256+i] = Pair(nodes[r.l], nodes[r.r])
	}
	// Combine the final sequence with a balanced fold.
	var fold func(lo, hi int) *Node
	fold = func(lo, hi int) *Node {
		if hi-lo == 1 {
			return nodes[seq[lo]]
		}
		mid := (lo + hi) / 2
		return Pair(fold(lo, mid), fold(mid, hi))
	}
	return fold(0, len(seq))
}

// better is an arbitrary deterministic tie-break so compression is
// reproducible across runs.
func better(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
