// Package weighted implements weight annotation for document spanners in
// the sense of Doleschal, Kimelfeld, Martens, and Peterfreund (ICDT
// 2020), cited in the survey's overview of recent developments: a
// K-weighted vset-automaton annotates every transition with an element of
// a commutative semiring K, and the weight of a span tuple is the sum,
// over all accepting runs producing that tuple, of the product of the
// transition weights along the run.
//
// Instantiations provided here: the counting semiring (how ambiguous is a
// tuple?), the Viterbi semiring (most-probable extraction), and the
// tropical semiring (cheapest extraction under per-transition costs).
package weighted

import (
	"fmt"
	"sort"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// Semiring is a commutative semiring over T.
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
	Equal(a, b T) bool
}

// CountSemiring is (ℕ, +, ·): weights count accepting runs.
type CountSemiring struct{}

func (CountSemiring) Zero() int           { return 0 }
func (CountSemiring) One() int            { return 1 }
func (CountSemiring) Add(a, b int) int    { return a + b }
func (CountSemiring) Mul(a, b int) int    { return a * b }
func (CountSemiring) Equal(a, b int) bool { return a == b }

// ViterbiSemiring is ([0,1], max, ·): most probable run per tuple.
type ViterbiSemiring struct{}

func (ViterbiSemiring) Zero() float64 { return 0 }
func (ViterbiSemiring) One() float64  { return 1 }
func (ViterbiSemiring) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (ViterbiSemiring) Mul(a, b float64) float64 { return a * b }
func (ViterbiSemiring) Equal(a, b float64) bool  { return a == b }

// TropicalSemiring is (ℝ∪{∞}, min, +): cheapest run per tuple.
type TropicalSemiring struct{}

// TropicalInf represents +∞ (the semiring zero).
const TropicalInf = 1e308

func (TropicalSemiring) Zero() float64 { return TropicalInf }
func (TropicalSemiring) One() float64  { return 0 }
func (TropicalSemiring) Add(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func (TropicalSemiring) Mul(a, b float64) float64 { return a + b }
func (TropicalSemiring) Equal(a, b float64) bool  { return a == b }

// Automaton is a K-weighted vset-automaton. It wraps an unweighted NFA
// (the support) together with a weight for every transition; transitions
// not present in the weight maps carry weight One. ε-transitions always
// carry One and must not form cycles through useful states (weighted sums
// over infinitely many runs are not defined here; the ICDT 2020 paper
// handles this with ε-trim normalization, which our compiler guarantees).
type Automaton[T any] struct {
	SR  Semiring[T]
	NFA *automata.NFA

	letterW map[edgeKey]T
	markerW map[edgeKey]T
}

type edgeKey struct {
	from, to int
	sym      byte
	marker   automata.Marker
	isMarker bool
}

// New wraps an NFA with all transition weights One.
func New[T any](sr Semiring[T], nfa *automata.NFA) (*Automaton[T], error) {
	if nfa.HasRefs() {
		return nil, fmt.Errorf("weighted: reference transitions unsupported")
	}
	return &Automaton[T]{
		SR:      sr,
		NFA:     nfa,
		letterW: map[edgeKey]T{},
		markerW: map[edgeKey]T{},
	}, nil
}

// SetLetterWeight assigns a weight to the transition from→to on b.
func (a *Automaton[T]) SetLetterWeight(from int, b byte, to int, w T) {
	a.letterW[edgeKey{from: from, to: to, sym: b}] = w
}

// SetMarkerWeight assigns a weight to the marker transition from→to.
func (a *Automaton[T]) SetMarkerWeight(from int, m automata.Marker, to int, w T) {
	a.markerW[edgeKey{from: from, to: to, marker: m, isMarker: true}] = w
}

// WeightLetterClass assigns w to every letter transition whose byte is in
// class — convenient for scoring whole character classes.
func (a *Automaton[T]) WeightLetterClass(class func(byte) bool, w T) {
	for q := range a.NFA.Final {
		for b, rs := range a.NFA.Letters[q] {
			if !class(b) {
				continue
			}
			for _, r := range rs {
				a.SetLetterWeight(q, b, r, w)
			}
		}
	}
}

func (a *Automaton[T]) letterWeight(from int, b byte, to int) T {
	if w, ok := a.letterW[edgeKey{from: from, to: to, sym: b}]; ok {
		return w
	}
	return a.SR.One()
}

func (a *Automaton[T]) markerWeight(from int, m automata.Marker, to int) T {
	if w, ok := a.markerW[edgeKey{from: from, to: to, marker: m, isMarker: true}]; ok {
		return w
	}
	return a.SR.One()
}

// WeightedTuple pairs a span tuple with its annotation.
type WeightedTuple[T any] struct {
	Tuple  spans.Tuple
	Weight T
}

// Eval computes the K-annotated relation of the spanner on doc: the
// weight of every tuple is the semiring sum over its accepting runs of
// the product of transition weights. Runs are explored over the
// configuration DAG (state, position, assignment); ε-cycles through
// useful configurations are reported as an error.
func (a *Automaton[T]) Eval(doc []byte) ([]WeightedTuple[T], error) {
	n := a.NFA
	sr := a.SR
	k := len(n.Vars)

	type cfg struct {
		q   int
		pos int
		asg string
	}
	zero := make([]byte, 8*k)
	getMark := func(asg string, idx int) int {
		off := idx * 4
		return int(asg[off]) | int(asg[off+1])<<8 | int(asg[off+2])<<16 | int(asg[off+3])<<24
	}
	setMark := func(asg string, idx, val int) string {
		b := []byte(asg)
		off := idx * 4
		b[off] = byte(val)
		b[off+1] = byte(val >> 8)
		b[off+2] = byte(val >> 16)
		b[off+3] = byte(val >> 24)
		return string(b)
	}

	// Discover all reachable configurations and their edges.
	type edge struct {
		to cfg
		w  T
	}
	start := cfg{n.Start, 0, string(zero)}
	adj := map[cfg][]edge{}
	seen := map[cfg]bool{start: true}
	queue := []cfg{start}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		push := func(nc cfg, w T) {
			adj[c] = append(adj[c], edge{nc, w})
			if !seen[nc] {
				seen[nc] = true
				queue = append(queue, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(cfg{r, c.pos, c.asg}, sr.One())
		}
		if c.pos < len(doc) {
			for _, r := range n.Letters[c.q][doc[c.pos]] {
				push(cfg{r, c.pos + 1, c.asg}, a.letterWeight(c.q, doc[c.pos], r))
			}
		}
		for m, rs := range n.Markers[c.q] {
			i := n.Vars.Index(m.Var)
			if i < 0 {
				continue
			}
			var idx int
			if m.Close {
				idx = 2*i + 1
				if getMark(c.asg, 2*i) == 0 || getMark(c.asg, idx) != 0 {
					continue
				}
			} else {
				idx = 2 * i
				if getMark(c.asg, idx) != 0 {
					continue
				}
			}
			nasg := setMark(c.asg, idx, c.pos+1)
			for _, r := range rs {
				push(cfg{r, c.pos, nasg}, a.markerWeight(c.q, m, r))
			}
		}
	}

	// Topological order: Kahn over the config DAG; a remaining cycle is
	// an ε-cycle (letters strictly advance pos, markers strictly grow the
	// assignment).
	indeg := map[cfg]int{}
	for c := range seen {
		if _, ok := indeg[c]; !ok {
			indeg[c] = 0
		}
		for _, e := range adj[c] {
			indeg[e.to]++
		}
	}
	order := make([]cfg, 0, len(seen))
	var ready []cfg
	for c, d := range indeg {
		if d == 0 {
			ready = append(ready, c)
		}
	}
	for len(ready) > 0 {
		c := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, c)
		for _, e := range adj[c] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				ready = append(ready, e.to)
			}
		}
	}
	if len(order) != len(seen) {
		return nil, fmt.Errorf("weighted: ε-cycle through useful configurations; weights undefined")
	}

	// Forward DP.
	weight := map[cfg]T{start: sr.One()}
	for c := range seen {
		if c != start {
			weight[c] = sr.Zero()
		}
	}
	for _, c := range order {
		wc := weight[c]
		if sr.Equal(wc, sr.Zero()) {
			continue
		}
		for _, e := range adj[c] {
			weight[e.to] = sr.Add(weight[e.to], sr.Mul(wc, e.w))
		}
	}

	// Collect accepting configurations into tuples.
	byTuple := map[string]WeightedTuple[T]{}
	for c, w := range weight {
		if c.pos != len(doc) || !n.Final[c.q] || sr.Equal(w, sr.Zero()) {
			continue
		}
		t := make(spans.Tuple)
		valid := true
		for i, v := range n.Vars {
			bm := getMark(c.asg, 2*i)
			em := getMark(c.asg, 2*i+1)
			switch {
			case bm > 0 && em > 0:
				t[v] = spans.S(bm, em)
			case bm == 0 && em == 0:
				// unassigned: schemaless
			default:
				valid = false
			}
		}
		if !valid {
			continue
		}
		key := t.Key()
		if prev, ok := byTuple[key]; ok {
			byTuple[key] = WeightedTuple[T]{Tuple: t, Weight: sr.Add(prev.Weight, w)}
		} else {
			byTuple[key] = WeightedTuple[T]{Tuple: t, Weight: w}
		}
	}
	keys := make([]string, 0, len(byTuple))
	for k2 := range byTuple {
		keys = append(keys, k2)
	}
	sort.Strings(keys)
	out := make([]WeightedTuple[T], 0, len(byTuple))
	for _, k2 := range keys {
		out = append(out, byTuple[k2])
	}
	return out, nil
}

// Best returns the tuple with the maximal weight under less (e.g. highest
// Viterbi probability, or pass an inverted comparison for tropical costs).
func Best[T any](rel []WeightedTuple[T], less func(a, b T) bool) (WeightedTuple[T], bool) {
	if len(rel) == 0 {
		return WeightedTuple[T]{}, false
	}
	best := rel[0]
	for _, wt := range rel[1:] {
		if less(best.Weight, wt.Weight) {
			best = wt
		}
	}
	return best, true
}

// WeightLetterClassInside assigns w to letter transitions in class that
// lie strictly inside the binding region of variable v (reachable from
// an open-marker target and co-reachable from a close-marker source) —
// the common way to score the CONTENT of an extraction rather than its
// context.
func (a *Automaton[T]) WeightLetterClassInside(v spans.Var, class func(byte) bool, w T) {
	inside := insideRegion(a.NFA, v)
	for q := range a.NFA.Final {
		if !inside[q] {
			continue
		}
		for b, rs := range a.NFA.Letters[q] {
			if !class(b) {
				continue
			}
			for _, r := range rs {
				if inside[r] {
					a.SetLetterWeight(q, b, r, w)
				}
			}
		}
	}
}

// insideRegion returns the states between v's open and close markers.
func insideRegion(nfa *automata.NFA, v spans.Var) map[int]bool {
	var openTargets, closeSources []int
	for q := range nfa.Final {
		for m, rs := range nfa.Markers[q] {
			if m.Var != v {
				continue
			}
			if m.Close {
				closeSources = append(closeSources, q)
			} else {
				openTargets = append(openTargets, rs...)
			}
		}
	}
	fwd := reachLetters(nfa, openTargets, false)
	bwd := reachLetters(nfa, closeSources, true)
	inside := map[int]bool{}
	for q := range fwd {
		if bwd[q] {
			inside[q] = true
		}
	}
	return inside
}

// reachLetters is reachability over ε and letter transitions only
// (marker transitions delimit the region).
func reachLetters(nfa *automata.NFA, from []int, reverse bool) map[int]bool {
	adj := make([][]int, nfa.NumStates())
	addEdge := func(p, q int) {
		if reverse {
			adj[q] = append(adj[q], p)
		} else {
			adj[p] = append(adj[p], q)
		}
	}
	for p := range nfa.Final {
		for _, q := range nfa.Eps[p] {
			addEdge(p, q)
		}
		for _, qs := range nfa.Letters[p] {
			for _, q := range qs {
				addEdge(p, q)
			}
		}
	}
	seen := map[int]bool{}
	stack := append([]int{}, from...)
	for _, q := range from {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range adj[q] {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return seen
}
