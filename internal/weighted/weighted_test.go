package weighted

import (
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func compile(t *testing.T, src string) *automata.NFA {
	t.Helper()
	ast, err := regex.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte("ab")})
	if err != nil {
		t.Fatal(err)
	}
	return nfa
}

func TestCountSemiringMatchesUnweighted(t *testing.T) {
	// With all weights One, counting weights count the accepting runs per
	// tuple, and the support equals the unweighted relation.
	nfa := compile(t, "!x{(a|b)*}!y{b}!z{(a|b)*}")
	a, err := New[int](CountSemiring{}, nfa)
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("ababbab")
	rel, err := a.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := vset.Eval(nfa, doc, vset.Schemaless)
	if len(rel) != want.Len() {
		t.Fatalf("support size %d, want %d", len(rel), want.Len())
	}
	for _, wt := range rel {
		if !want.Contains(wt.Tuple) {
			t.Errorf("unexpected tuple %v", wt.Tuple)
		}
		if wt.Weight != 1 {
			t.Errorf("tuple %v has %d runs, want 1 (unambiguous spanner)", wt.Tuple, wt.Weight)
		}
	}
}

func TestCountSemiringAmbiguity(t *testing.T) {
	// !x{a}(a|a?a) style ambiguity: two derivations of the same tuple.
	// Pattern: !x{a}(ab|a(b)) — both alternatives read "ab" identically.
	nfa := compile(t, "!x{a}(ab|a(b))")
	a, err := New[int](CountSemiring{}, nfa)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Eval([]byte("aab"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 1 {
		t.Fatalf("rel = %v", rel)
	}
	if rel[0].Weight != 2 {
		t.Errorf("ambiguity count = %d, want 2", rel[0].Weight)
	}
}

func TestViterbiMostProbableExtraction(t *testing.T) {
	// Score 'b' letters INSIDE x with probability 0.5, everything else
	// 1.0: the most probable x minimizes the number of b's it covers.
	nfa := compile(t, ".*!x{(a|b)+}.*")
	a, err := New[float64](ViterbiSemiring{}, nfa)
	if err != nil {
		t.Fatal(err)
	}
	a.WeightLetterClassInside("x", func(b byte) bool { return b == 'b' }, 0.5)
	doc := []byte("babab")
	rel, err := a.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := Best(rel, func(x, y float64) bool { return x < y })
	if !ok {
		t.Fatal("empty relation")
	}
	content := string(best.Tuple.Get("x").Content(doc))
	if content != "a" {
		t.Errorf("most probable x = %q (weight %v), want a single a", content, best.Weight)
	}
	if best.Weight != 1.0 {
		t.Errorf("best weight = %v, want 1.0 (no b inside x)", best.Weight)
	}
	// A tuple covering one b has weight 0.5.
	for _, wt := range rel {
		c := string(wt.Tuple.Get("x").Content(doc))
		bs := 0
		for _, ch := range c {
			if ch == 'b' {
				bs++
			}
		}
		wantW := 1.0
		for i := 0; i < bs; i++ {
			wantW *= 0.5
		}
		if wt.Weight != wantW {
			t.Errorf("x=%q weight %v, want %v", c, wt.Weight, wantW)
		}
	}
}

func TestTropicalCheapestExtraction(t *testing.T) {
	// Cost 1 per letter inside x (length cost): cheapest tuple has the
	// shortest x.
	nfa := compile(t, ".*!x{(a|b)+}.*")
	a, err := New[float64](TropicalSemiring{}, nfa)
	if err != nil {
		t.Fatal(err)
	}
	// Letters inside x: transitions between the marker states. Weight
	// every letter transition 1, then discount context by weighting only
	// transitions reachable... simpler: weight ALL letter transitions 1;
	// every run costs |doc| regardless. Instead weight b's only:
	a.WeightLetterClass(func(b byte) bool { return b == 'b' }, 1)
	doc := []byte("abba")
	rel, err := a.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := Best(rel, func(x, y float64) bool { return x > y }) // min cost
	if !ok {
		t.Fatal("empty")
	}
	// Every run passes both b's somewhere (inside or outside x): total
	// cost 2 for all tuples.
	if best.Weight != 2 {
		t.Errorf("cheapest cost = %v, want 2", best.Weight)
	}
	if len(rel) != vset.Eval(nfa, doc, vset.Schemaless).Len() {
		t.Error("support size mismatch")
	}
}

func TestMarkerWeights(t *testing.T) {
	// Pay a cost for opening x late: weight x▷ transitions by... marker
	// weights are uniform per transition; verify they multiply in.
	nfa := compile(t, "a*!x{b}a*")
	a, err := New[int](CountSemiring{}, nfa)
	if err != nil {
		t.Fatal(err)
	}
	// Double-count runs through the x▷ marker: weight 3.
	for q := range nfa.Final {
		for m, rs := range nfa.Markers[q] {
			if !m.Close {
				for _, r := range rs {
					a.SetMarkerWeight(q, m, r, 3)
				}
			}
		}
	}
	rel, err := a.Eval([]byte("aba"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 1 || rel[0].Weight != 3 {
		t.Errorf("rel = %v, want single tuple with weight 3", rel)
	}
}

func TestRefsRejected(t *testing.T) {
	ast, err := regex.Parse("!x{a}&x")
	if err != nil {
		t.Fatal(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New[int](CountSemiring{}, nfa); err == nil {
		t.Error("ref automaton accepted")
	}
}

func TestEpsilonCycleDetected(t *testing.T) {
	nfa := automata.NewNFA(spans.NewVarSet())
	s1 := nfa.AddState()
	nfa.AddEps(nfa.Start, s1)
	nfa.AddEps(s1, nfa.Start) // ε-cycle
	s2 := nfa.AddState()
	nfa.AddLetter(s1, 'a', s2)
	nfa.SetFinal(s2)
	a, err := New[int](CountSemiring{}, nfa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Eval([]byte("a")); err == nil {
		t.Error("ε-cycle not detected")
	}
}

func TestEmptyRelation(t *testing.T) {
	nfa := compile(t, "!x{a}")
	a, err := New[int](CountSemiring{}, nfa)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Eval([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 0 {
		t.Errorf("rel = %v", rel)
	}
	if _, ok := Best(rel, func(a, b int) bool { return a < b }); ok {
		t.Error("Best on empty relation")
	}
}
