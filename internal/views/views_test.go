package views

import (
	"fmt"
	"sync"
	"testing"

	"docspanner"
)

func testIndex(t *testing.T, src string) *docspanner.Index {
	t.Helper()
	s := docspanner.MustCompile(src, docspanner.Options{Alphabet: []byte("ab")})
	ix, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestViewRefreshTracksEdits(t *testing.T) {
	set := NewSet(Config{})
	ix := testIndex(t, ".*!x{ab}.*")
	s := docspanner.MustCompile(".*!x{ab}.*", docspanner.Options{Alphabet: []byte("ab")})

	db := docspanner.NewDocDB()
	db.Add("d", docspanner.CompressDocument([]byte("abba")))
	doc, _ := db.Get("d")

	v, created, _ := set.Register("d", "q", ix, nil)
	if !created {
		t.Fatal("Register did not create")
	}
	if _, again, _ := set.Register("d", "q", ix, nil); again {
		t.Fatal("Register not idempotent")
	}
	if v.Current() != nil {
		t.Fatal("unrefreshed view has a result")
	}

	res, did := v.Refresh(doc, 1)
	if !did || res.Version != 1 || !res.Materialized {
		t.Fatalf("first refresh: %+v did=%v", res, did)
	}
	version := 1
	for i := 0; i < 5; i++ {
		cur, err := db.Edit("d", fmt.Sprintf("insert(d, d, %d)", i+2))
		if err != nil {
			t.Fatal(err)
		}
		version++
		res, did = v.Refresh(cur, version)
		if !did {
			t.Fatalf("edit %d: refresh skipped", i)
		}
		want := s.Eval(cur.Bytes())
		if res.Count.Int64() != int64(want.Len()) {
			t.Fatalf("edit %d: count = %v, want %d", i, res.Count, want.Len())
		}
		if !docspanner.NewRelation(res.Tuples...).Equal(want) {
			t.Fatalf("edit %d: materialized tuples diverged", i)
		}
		if res.Stats.Recomputed == 0 {
			t.Fatalf("edit %d: refresh recomputed nothing", i)
		}
		if r := res.ReuseRatio(); r < 0 || r > 1 {
			t.Fatalf("edit %d: reuse ratio %v out of [0,1]", i, r)
		}
	}
	refreshes, skipped, recomputed, _ := v.Totals()
	if refreshes != 6 || skipped != 0 || recomputed == 0 {
		t.Fatalf("totals: refreshes=%d skipped=%d recomputed=%d", refreshes, skipped, recomputed)
	}
}

func TestViewRefreshIsVersionMonotonic(t *testing.T) {
	set := NewSet(Config{})
	v, _, _ := set.Register("d", "q", testIndex(t, ".*!x{a}.*"), nil)
	d1 := docspanner.DocumentFromBytes([]byte("ab"))
	d2 := docspanner.DocumentFromBytes([]byte("aab"))

	if _, did := v.Refresh(d2, 2); !did {
		t.Fatal("refresh to v2 skipped")
	}
	// A stale refresh (racing worker that lost) must not rewind.
	if res, did := v.Refresh(d1, 1); did || res.Version != 2 {
		t.Fatalf("stale refresh applied: did=%v version=%d", did, res.Version)
	}
	if res, did := v.Refresh(d2, 2); did || res.Version != 2 {
		t.Fatalf("duplicate refresh applied: did=%v version=%d", did, res.Version)
	}
	_, skipped, _, _ := v.Totals()
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
}

func TestViewChanges(t *testing.T) {
	set := NewSet(Config{})
	v, _, _ := set.Register("d", "q", testIndex(t, ".*!x{ab}.*"), nil)

	db := docspanner.NewDocDB()
	db.Add("d", docspanner.CompressDocument([]byte("ab")))
	d1, _ := db.Get("d")
	v.Refresh(d1, 1)

	// "ab" -> "abab": the old tuple shifts? No — x in {ab at 1..3} stays,
	// and a new match at 3..5 appears.
	d2, err := db.Edit("d", "concat(d, d)")
	if err != nil {
		t.Fatal(err)
	}
	v.Refresh(d2, 2)

	from, to, added, removed, ok := v.Changes(1)
	if !ok {
		t.Fatalf("Changes failed: from=%v to=%v", from, to)
	}
	if from.Version != 1 || to.Version != 2 {
		t.Fatalf("endpoints %d -> %d", from.Version, to.Version)
	}
	if len(added) != 1 || len(removed) != 0 {
		t.Fatalf("added=%v removed=%v", added, removed)
	}
	// Diff against the current version is empty.
	if _, _, added, removed, ok := v.Changes(2); !ok || len(added) != 0 || len(removed) != 0 {
		t.Fatalf("self-diff: ok=%v added=%v removed=%v", ok, added, removed)
	}
	// A version never seen fails cleanly.
	if _, _, _, _, ok := v.Changes(99); ok {
		t.Fatal("Changes(99) succeeded")
	}
}

func TestViewChangesHistoryWindow(t *testing.T) {
	set := NewSet(Config{History: 2})
	v, _, _ := set.Register("d", "q", testIndex(t, ".*!x{ab}.*"), nil)
	db := docspanner.NewDocDB()
	db.Add("d", docspanner.CompressDocument([]byte("ab")))
	d, _ := db.Get("d")
	v.Refresh(d, 1)
	for i := 2; i <= 5; i++ {
		d, _ = db.Edit("d", "concat(d, d)")
		v.Refresh(d, i)
	}
	if _, _, _, _, ok := v.Changes(1); ok {
		t.Fatal("version 1 should have left the history window")
	}
	if _, _, added, _, ok := v.Changes(4); !ok || len(added) == 0 {
		t.Fatalf("Changes(4): ok=%v added=%v", ok, added)
	}
}

func TestViewMaterializationCap(t *testing.T) {
	set := NewSet(Config{MaxMaterialize: 2})
	v, _, _ := set.Register("d", "q", testIndex(t, ".*!x{a}.*"), nil)
	d := docspanner.DocumentFromBytes([]byte("aaaa")) // 4 matches > cap
	res, _ := v.Refresh(d, 1)
	if res.Materialized || res.Tuples != nil {
		t.Fatalf("result over the cap materialized: %+v", res)
	}
	if res.Count.Int64() != 4 {
		t.Fatalf("count = %v, want 4 (exact despite the cap)", res.Count)
	}
	if _, _, _, _, ok := v.Changes(1); ok {
		t.Fatal("Changes over an unmaterialized endpoint succeeded")
	}
}

func TestSetDropScopes(t *testing.T) {
	set := NewSet(Config{})
	ix := testIndex(t, ".*!x{a}.*")
	set.Register("d1", "q1", ix, nil)
	set.Register("d1", "q2", ix, nil)
	set.Register("d2", "q1", ix, nil)
	if set.Len() != 3 {
		t.Fatalf("Len = %d", set.Len())
	}
	if got := len(set.ForDoc("d1")); got != 2 {
		t.Fatalf("ForDoc(d1) = %d views", got)
	}
	if n := set.DropQuery("q1"); n != 2 {
		t.Fatalf("DropQuery(q1) = %d", n)
	}
	if n := set.DropDoc("d1"); n != 1 {
		t.Fatalf("DropDoc(d1) = %d", n)
	}
	if set.Len() != 0 {
		t.Fatalf("Len = %d after drops", set.Len())
	}
	if ok, _ := set.Drop("d1", "q1", nil); ok {
		t.Fatal("Drop of missing view reported true")
	}
}

// TestViewConcurrentRefreshAndRead drives racing refreshes (as the async
// refresher does) against readers; versions must advance monotonically
// and snapshots must be internally consistent.
func TestViewConcurrentRefreshAndRead(t *testing.T) {
	set := NewSet(Config{})
	v, _, _ := set.Register("d", "q", testIndex(t, ".*!x{ab}.*"), nil)

	db := docspanner.NewDocDB()
	db.Add("d", docspanner.CompressDocument([]byte("ab")))
	type ver struct {
		doc *docspanner.Document
		n   int
	}
	versions := []ver{}
	d, _ := db.Get("d")
	versions = append(versions, ver{d, 1})
	for i := 2; i <= 16; i++ {
		d, err := db.Edit("d", "insert(d, d, 2)")
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, ver{d, i})
	}
	counts := make([]int64, len(versions)+1)
	ref := testIndex(t, ".*!x{ab}.*")
	for _, vv := range versions {
		counts[vv.n] = ref.ExactCount(vv.doc).Int64()
	}

	stop := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		last := 0
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
			res := v.Current()
			if res == nil {
				continue
			}
			if res.Version < last {
				readerDone <- fmt.Errorf("version went backwards: %d after %d", res.Version, last)
				return
			}
			if res.Count.Int64() != counts[res.Version] {
				readerDone <- fmt.Errorf("torn result: version %d carries count %v, want %d", res.Version, res.Count, counts[res.Version])
				return
			}
			last = res.Version
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(versions)*4; i++ {
				vv := versions[i%len(versions)]
				v.Refresh(vv.doc, vv.n)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	if res := v.Current(); res == nil || res.Version != len(versions) {
		t.Fatalf("final version = %+v, want %d", res, len(versions))
	}
}
