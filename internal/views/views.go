// Package views maintains materialized (document, query) views over the
// compressed spanner stack: each view pins a prepared query's compressed
// index to a named document and keeps a version-stamped result — exact
// tuple count, and the materialized sorted tuples when small enough —
// that is refreshed incrementally after CDE edits. A refresh recomputes
// only the O(log d) fresh spine of the edited SLP (Index.WarmDelta); the
// rest of the grammar is reused through the shared per-node caches, so
// live views cost per edit what the survey's Section 4.3 promises, not a
// re-evaluation.
//
// A Set is safe for concurrent use; refreshes of one view serialize on
// the view while reads see consistent immutable snapshots. Versions are
// monotonic: a refresh carrying a version at or below the current one is
// skipped, so racing refresh requests (e.g. a coalescing background
// refresher) cannot tear or rewind a view.
package views

import (
	"math/big"
	"sort"
	"sync"
	"time"

	"docspanner"
)

// DefaultMaxMaterialize caps the tuples materialized per view version.
// Counts are exact regardless (big-integer matrix counting); only the
// tuple list and /changes diffs are withheld above the cap.
const DefaultMaxMaterialize = 65536

// DefaultHistory is how many past materialized versions a view keeps for
// Changes(since) diffs.
const DefaultHistory = 8

// Config bounds the materialization work of a Set.
type Config struct {
	// MaxMaterialize caps the tuples materialized per version
	// (DefaultMaxMaterialize if ≤ 0).
	MaxMaterialize int
	// History is the number of past versions kept per view for diffs
	// (DefaultHistory if ≤ 0).
	History int
}

func (c Config) withDefaults() Config {
	if c.MaxMaterialize <= 0 {
		c.MaxMaterialize = DefaultMaxMaterialize
	}
	if c.History <= 0 {
		c.History = DefaultHistory
	}
	return c
}

// Key identifies a view: one prepared query over one named document.
type Key struct {
	Doc   string
	Query string
}

// Result is one immutable version-stamped refresh outcome.
type Result struct {
	// Version is the document version this result evaluates.
	Version int
	// Count is the exact number of result tuples (never nil).
	Count *big.Int
	// Tuples is the sorted materialized result, nil when Count exceeds
	// the materialization cap (Materialized reports which).
	Tuples       []docspanner.Tuple
	Materialized bool
	// Refreshed is when this version was computed; Elapsed how long the
	// refresh took (delta warm + count + materialization).
	Refreshed time.Time
	Elapsed   time.Duration
	// Stats is the WarmDelta work of this refresh: Recomputed is the
	// edit spine (O(log d) per CDE operation), Reused the cached subtree
	// boundary.
	Stats docspanner.WarmStats
	// GrammarSize is the document's SLP size at this version — the
	// denominator of the memo-reuse ratio: a refresh that recomputed r
	// nodes of a g-node grammar reused 1 − r/g of the DAG.
	GrammarSize int
}

// ReuseRatio is the fraction of the document's grammar this refresh did
// NOT recompute — 1 for a pure cache hit, 0 for a cold evaluation.
func (r *Result) ReuseRatio() float64 {
	if r.GrammarSize == 0 {
		return 1
	}
	ratio := 1 - float64(r.Stats.Recomputed)/float64(r.GrammarSize)
	if ratio < 0 {
		return 0
	}
	return ratio
}

// View is one live (doc, query) materialization. All its methods are
// safe for concurrent use.
type View struct {
	key Key
	ix  *docspanner.Index
	cfg Config

	mu      sync.Mutex
	prevDoc *docspanner.Document // snapshot behind cur, for WarmDelta
	cur     *Result
	hist    []*Result // oldest first, at most cfg.History entries

	refreshes  int
	skipped    int
	recomputed uint64
	reused     uint64
}

// Key returns the view's (doc, query) identity.
func (v *View) Key() Key { return v.key }

// Totals reports the view's lifetime refresh counters: refreshes
// performed, stale requests skipped, and the summed WarmDelta node
// counts.
func (v *View) Totals() (refreshes, skipped int, recomputed, reused uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.refreshes, v.skipped, v.recomputed, v.reused
}

// Current returns the latest result, or nil before the first refresh.
// The result is immutable — callers must not modify Tuples.
func (v *View) Current() *Result {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cur
}

// Refresh brings the view to the given document version. It is skipped
// (returning the current result and false) when version is not newer
// than the view's — refreshes are version-monotonic, so stale or
// duplicate requests from a coalescing refresher are harmless. The
// returned Result is immutable.
func (v *View) Refresh(d *docspanner.Document, version int) (*Result, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.cur != nil && version <= v.cur.Version {
		v.skipped++
		return v.cur, false
	}
	start := time.Now()
	st := v.ix.WarmDelta(v.prevDoc, d)
	count := v.ix.ExactCount(d)
	res := &Result{
		Version:     version,
		Count:       count,
		Refreshed:   start,
		Stats:       st,
		GrammarSize: d.GrammarSize(),
	}
	if count.IsInt64() && count.Int64() <= int64(v.cfg.MaxMaterialize) {
		tuples := v.ix.Eval(d).Sorted()
		res.Tuples = tuples
		res.Materialized = true
	}
	res.Elapsed = time.Since(start)

	if v.cur != nil {
		v.hist = append(v.hist, v.cur)
		if len(v.hist) > v.cfg.History {
			v.hist = v.hist[len(v.hist)-v.cfg.History:]
		}
	}
	v.prevDoc = d
	v.cur = res
	v.refreshes++
	v.recomputed += uint64(st.Recomputed)
	v.reused += uint64(st.Reused)
	return res, true
}

// at returns the result for an exact version: the current one or a
// history entry.
func (v *View) at(version int) *Result {
	if v.cur != nil && v.cur.Version == version {
		return v.cur
	}
	for i := len(v.hist) - 1; i >= 0; i-- {
		if v.hist[i].Version == version {
			return v.hist[i]
		}
	}
	return nil
}

// Changes diffs the materialized results between version since and the
// current version: tuples added and removed, each in canonical sorted
// order. It fails (ok = false) when the view has no current result, the
// since version has left the history window, or either endpoint was too
// large to materialize — the caller distinguishes these through the
// returned endpoints.
func (v *View) Changes(since int) (from, to *Result, added, removed []docspanner.Tuple, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	to = v.cur
	if to == nil {
		return nil, nil, nil, nil, false
	}
	from = v.at(since)
	if from == nil || !from.Materialized || !to.Materialized {
		return from, to, nil, nil, false
	}
	added, removed = diffSorted(from.Tuples, to.Tuples)
	return from, to, added, removed, true
}

// diffSorted merges two canonically sorted tuple lists into (added,
// removed) — tuples only in b, tuples only in a.
func diffSorted(a, b []docspanner.Tuple) (added, removed []docspanner.Tuple) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			removed = append(removed, a[i])
			i++
		case c > 0:
			added = append(added, b[j])
			j++
		default:
			i++
			j++
		}
	}
	removed = append(removed, a[i:]...)
	added = append(added, b[j:]...)
	return added, removed
}

// Set is the collection of live views, keyed by (doc, query).
type Set struct {
	cfg Config

	mu    sync.RWMutex
	views map[Key]*View
}

// NewSet returns an empty view set.
func NewSet(cfg Config) *Set {
	return &Set{cfg: cfg.withDefaults(), views: map[Key]*View{}}
}

// Register creates (or returns, idempotently) the view for (doc, query)
// over the given compressed index. The view is registered unrefreshed;
// the caller performs the first Refresh with the current snapshot.
//
// persist, when non-nil, runs under the set lock for a newly created
// view (typically teeing the registration into the storage backend); an
// error undoes the creation before any other caller can observe it, so
// a concurrent Register for the same key never sees — and reports
// success for — a registration that is about to be rolled back.
func (s *Set) Register(doc, query string, ix *docspanner.Index, persist func() error) (*View, bool, error) {
	key := Key{Doc: doc, Query: query}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.views[key]; ok {
		return v, false, nil
	}
	if persist != nil {
		if err := persist(); err != nil {
			return nil, false, err
		}
	}
	v := &View{key: key, ix: ix, cfg: s.cfg}
	s.views[key] = v
	return v, true, nil
}

// Get returns the view for (doc, query) if registered.
func (s *Set) Get(doc, query string) (*View, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.views[Key{Doc: doc, Query: query}]
	return v, ok
}

// Drop removes one view, reporting whether it existed. persist, when
// non-nil, runs under the set lock before the removal becomes visible
// (write-ahead order: a drop the backend refused leaves the view
// registered); it is not called for a view that does not exist.
func (s *Set) Drop(doc, query string, persist func() error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := Key{Doc: doc, Query: query}
	if _, ok := s.views[key]; !ok {
		return false, nil
	}
	if persist != nil {
		if err := persist(); err != nil {
			return false, err
		}
	}
	delete(s.views, key)
	return true, nil
}

// DropDoc removes every view over the named document (the document was
// deleted), returning how many were dropped.
func (s *Set) DropDoc(doc string) int {
	return s.dropIf(func(k Key) bool { return k.Doc == doc })
}

// DropQuery removes every view of the named query (the query was deleted
// or re-registered with a new definition), returning how many were
// dropped.
func (s *Set) DropQuery(query string) int {
	return s.dropIf(func(k Key) bool { return k.Query == query })
}

func (s *Set) dropIf(match func(Key) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.views {
		if match(k) {
			delete(s.views, k)
			n++
		}
	}
	return n
}

// ForDoc returns the views over the named document, sorted by query name
// — the set an edit must refresh.
func (s *Set) ForDoc(doc string) []*View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*View
	for k, v := range s.views {
		if k.Doc == doc {
			out = append(out, v)
		}
	}
	sortViews(out)
	return out
}

// List returns all views sorted by (doc, query).
func (s *Set) List() []*View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*View, 0, len(s.views))
	for _, v := range s.views {
		out = append(out, v)
	}
	sortViews(out)
	return out
}

// Len reports the number of registered views.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.views)
}

func sortViews(vs []*View) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].key.Doc != vs[j].key.Doc {
			return vs[i].key.Doc < vs[j].key.Doc
		}
		return vs[i].key.Query < vs[j].key.Query
	})
}
