package spanlog

import (
	"testing"
)

const negProgram = `
tok(x)      :- "(.*,)?!x{[ab]+}(,.*)?"(x).
dup(x)      :- tok(x), tok(y), eq(x, y), neq_pos(x, y).
neq_pos(x, y) :- tok(x), tok(y), before(x, y).
before(x, y) :- "(.*,)?!x{[ab]+},(.*,)?!y{[ab]+}(,.*)?"(x, y).
uniq(x)     :- tok(x), !dup(x).
`

func TestStratifiedNegation(t *testing.T) {
	prog, err := ParseProgram(negProgram, []byte("ab,"))
	if err != nil {
		t.Fatal(err)
	}
	// dup holds for tokens with an equal-content counterpart at a
	// different position (before, either direction via the two roles);
	// uniq = the rest. Document: ab, b, ab → "b" is unique... note dup as
	// written only marks the EARLIER duplicate (x before y); adjust
	// expectation accordingly.
	doc := []byte("ab,b,ab")
	res, err := prog.Eval(doc) // auto-routes to EvalStratified
	if err != nil {
		t.Fatal(err)
	}
	if res.Count("tok") != 3 {
		t.Fatalf("tok = %d", res.Count("tok"))
	}
	uniqContents := map[string]bool{}
	for _, f := range res.Facts("uniq") {
		uniqContents[string(f[0].Content(doc))] = true
	}
	// The first "ab" has a later equal token -> dup; the second "ab" has
	// none after it -> uniq; "b" is unique.
	if !uniqContents["b"] {
		t.Errorf("b not unique: %v", uniqContents)
	}
	if res.Count("dup") != 1 {
		t.Errorf("dup = %d, want 1 (the earlier ab)", res.Count("dup"))
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	src := `
p(x) :- "!x{a}"(x), !q(x).
q(x) :- "!x{a}"(x), !p(x).
`
	prog, err := ParseProgram(src, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.EvalStratified([]byte("a")); err == nil {
		t.Error("negation through recursion accepted")
	}
}

func TestNegationSafety(t *testing.T) {
	// Variable only in a negated literal: unsafe.
	src := `
p(x) :- "!x{a}"(x), !q(x, y).
q(x, y) :- "!x{a}!y{a}"(x, y).
`
	prog, err := ParseProgram(src, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.EvalStratified([]byte("aa")); err == nil {
		t.Error("unsafe negation accepted")
	}
}

func TestNegatedSpannerLiteralRejected(t *testing.T) {
	src := `p(x) :- "!x{a}"(x), !"!x{b}"(x).`
	if _, err := ParseProgram(src, []byte("ab")); err == nil {
		t.Error("negated spanner literal accepted")
	}
}

func TestStratifyLevels(t *testing.T) {
	prog, err := ParseProgram(negProgram, []byte("ab,"))
	if err != nil {
		t.Fatal(err)
	}
	strata, err := prog.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if !(strata["uniq"] > strata["dup"]) {
		t.Errorf("uniq stratum %d should exceed dup stratum %d", strata["uniq"], strata["dup"])
	}
}

func TestNegationOnPositiveProgramIsNoop(t *testing.T) {
	prog, err := ParseProgram(exampleProgram, []byte("abcdefghijklmnopqrstuvwxyz;->"))
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("a->b;b->c")
	r1, err := prog.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := prog.EvalStratified(doc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count("reach") != r2.Count("reach") {
		t.Errorf("stratified evaluation differs on positive program: %d vs %d",
			r1.Count("reach"), r2.Count("reach"))
	}
}
