package spanlog

import (
	"strings"
	"testing"

	"docspanner/internal/spans"
)

const exampleProgram = `
# causality edges extracted from the document
edge(x, y)  :- "(.*;)?!x{[a-z]+}->!y{[a-z]+}(;.*)?"(x, y).
reach(x, y) :- edge(x, y).
reach(x, z) :- reach(x, y), edge(y2, z), eq(y, y2).
`

func TestParseProgram(t *testing.T) {
	prog, err := ParseProgram(exampleProgram, []byte("abcdefghijklmnopqrstuvwxyz;->"))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("%d rules", len(prog.Rules))
	}
	if prog.Rules[0].Head.Pred != "edge" || len(prog.Rules[0].Body) != 1 {
		t.Errorf("rule 0 = %+v", prog.Rules[0])
	}
	if prog.Rules[0].Body[0].Spanner == nil {
		t.Error("rule 0 body should be a spanner literal")
	}
	if !prog.Rules[2].Body[2].StrEq {
		t.Error("rule 2 third literal should be eq")
	}
}

func TestParsedProgramEvaluates(t *testing.T) {
	prog, err := ParseProgram(exampleProgram, []byte("abcdefghijklmnopqrstuvwxyz;->"))
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("a->b;b->c;c->d")
	res, err := prog.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count("edge") != 3 {
		t.Errorf("edge = %d, want 3", res.Count("edge"))
	}
	// reach: (a,b),(b,c),(c,d),(a,c),(b,d),(a,d) — with distinct span
	// positions for repeated names; count pairs of contents instead.
	contents := map[string]bool{}
	for _, f := range res.Facts("reach") {
		contents[string(f[0].Content(doc))+">"+string(f[1].Content(doc))] = true
	}
	want := []string{"a>b", "b>c", "c>d", "a>c", "b>d", "a>d"}
	for _, w := range want {
		if !contents[w] {
			t.Errorf("missing reach %s (have %v)", w, contents)
		}
	}
	if len(contents) != len(want) {
		t.Errorf("reach contents = %v", contents)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"p(x)",                  // missing period
		"p(x) :- .",             // empty body
		`p(x) :- "unclosed(x).`, // unterminated pattern
		`p(x) :- "!y{a}"(x).`,   // foreign spanner variable
		"p(x) :- eq(x, y, z).",  // eq arity
		"p() :- q(x).",          // empty head args
		"p(x) :- q(x), r(y)",    // missing period at end
		`p(x) :- "!x{["(x).`,    // bad pattern
	} {
		if _, err := ParseProgram(src, []byte("a")); err == nil {
			t.Errorf("ParseProgram(%q) accepted", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := strings.Join([]string{
		"# leading comment",
		`fact(x) :- "!x{a}"(x).`,
		"% trailing comment",
	}, "\n")
	prog, err := ParseProgram(src, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Errorf("%d rules", len(prog.Rules))
	}
}

func TestFactsAsColumns(t *testing.T) {
	prog, err := ParseProgram(`pair(x, y) :- "!x{a}!y{b}"(x, y).`, []byte("ab"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Eval([]byte("ab"))
	if err != nil {
		t.Fatal(err)
	}
	rel := res.FactsAs("pair", "u", "v")
	if rel.Len() != 1 || !rel.Contains(spans.NewTuple("u", spans.S(1, 2), "v", spans.S(2, 3))) {
		t.Errorf("FactsAs = %v", rel)
	}
}
