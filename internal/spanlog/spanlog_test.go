package spanlog

import (
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func sp(t *testing.T, src string) *automata.NFA {
	t.Helper()
	n, err := regex.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("ab,")})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSpanlogBasicExtraction(t *testing.T) {
	// token(x): maximal runs of a/b delimited by commas (here: simply any
	// run between boundaries for test purposes).
	prog := &Program{Rules: []Rule{
		{
			Head: Atom{Pred: "token", Args: []spans.Var{"x"}},
			Body: []Literal{{
				Atom:    Atom{Pred: "m", Args: []spans.Var{"x"}},
				Spanner: sp(t, "(.*,)?!x{(a|b)+}(,.*)?"),
			}},
		},
	}}
	res, err := prog.Eval([]byte("ab,ba"))
	if err != nil {
		t.Fatal(err)
	}
	got := res.FactsAs("token", "x")
	want := spans.NewRelation(
		spans.NewTuple("x", spans.S(1, 3)),
		spans.NewTuple("x", spans.S(4, 6)),
	)
	if !got.Equal(want) {
		t.Errorf("token = %v, want %v", got, want)
	}
}

func TestSpanlogStrEqExpressesCoreSelection(t *testing.T) {
	// same(x,y) :- pair(x,y), eq(x,y) — exactly ς={x,y} on a regular
	// spanner, the core-spanner feature (datalog over regular spanners
	// covers core spanners, Section 1).
	pairSp := sp(t, "!x{(a|b)+},!y{(a|b)+}")
	prog := &Program{Rules: []Rule{
		{
			Head: Atom{Pred: "same", Args: []spans.Var{"x", "y"}},
			Body: []Literal{
				{Atom: Atom{Pred: "p", Args: []spans.Var{"x", "y"}}, Spanner: pairSp},
				{Atom: Atom{Args: []spans.Var{"x", "y"}}, StrEq: true},
			},
		},
	}}
	doc := []byte("ab,ab")
	res, err := prog.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := res.FactsAs("same", "x", "y")
	// Cross-check against the algebraic core spanner.
	rel := vset.Eval(pairSp, doc, vset.Functional).SelectEqual(doc, spans.NewVarSet("x", "y"))
	if !got.Equal(rel) {
		t.Errorf("same = %v, want %v", got, rel)
	}
	if got.Len() != 1 {
		t.Errorf("expected exactly one equal pair, got %v", got)
	}
}

func TestSpanlogRecursion(t *testing.T) {
	// Transitive closure over adjacency: next(x,y) holds for adjacent
	// tokens; reach = next⁺. Document: a,b,a,b → 3 next facts, 6 reach.
	nextSp := sp(t, "(.*,)?!x{(a|b)+},!y{(a|b)+}(,.*)?")
	prog := &Program{Rules: []Rule{
		{
			Head: Atom{Pred: "next", Args: []spans.Var{"x", "y"}},
			Body: []Literal{{Atom: Atom{Args: []spans.Var{"x", "y"}}, Spanner: nextSp}},
		},
		{
			Head: Atom{Pred: "reach", Args: []spans.Var{"x", "y"}},
			Body: []Literal{{Atom: Atom{Pred: "next", Args: []spans.Var{"x", "y"}}}},
		},
		{
			Head: Atom{Pred: "reach", Args: []spans.Var{"x", "z"}},
			Body: []Literal{
				{Atom: Atom{Pred: "reach", Args: []spans.Var{"x", "y"}}},
				{Atom: Atom{Pred: "next", Args: []spans.Var{"y", "z"}}},
			},
		},
	}}
	res, err := prog.Eval([]byte("a,b,a,b"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count("next") != 3 {
		t.Errorf("next has %d facts, want 3", res.Count("next"))
	}
	if res.Count("reach") != 6 {
		t.Errorf("reach has %d facts, want 6", res.Count("reach"))
	}
}

func TestSpanlogSameGeneration(t *testing.T) {
	// Equal-content transitive chains: pairs chained by eq — a datalog
	// query beyond a single core selection.
	tokSp := sp(t, "(.*,)?!x{(a|b)+}(,.*)?")
	prog := &Program{Rules: []Rule{
		{
			Head: Atom{Pred: "tok", Args: []spans.Var{"x"}},
			Body: []Literal{{Atom: Atom{Args: []spans.Var{"x"}}, Spanner: tokSp}},
		},
		{
			Head: Atom{Pred: "cls", Args: []spans.Var{"x", "y"}},
			Body: []Literal{
				{Atom: Atom{Pred: "tok", Args: []spans.Var{"x"}}},
				{Atom: Atom{Pred: "tok", Args: []spans.Var{"y"}}},
				{Atom: Atom{Args: []spans.Var{"x", "y"}}, StrEq: true},
			},
		},
	}}
	res, err := prog.Eval([]byte("ab,b,ab"))
	if err != nil {
		t.Fatal(err)
	}
	// tokens: ab(2) b(1) ab — cls: (t,t) for all + (t1,t3),(t3,t1) = 3+2.
	if res.Count("cls") != 5 {
		t.Errorf("cls has %d facts, want 5: %v", res.Count("cls"), res.Facts("cls"))
	}
}

func TestSpanlogValidation(t *testing.T) {
	// Unrestricted head variable.
	bad := &Program{Rules: []Rule{
		{
			Head: Atom{Pred: "p", Args: []spans.Var{"x"}},
			Body: []Literal{{Atom: Atom{Args: []spans.Var{"x", "x"}}, StrEq: true}},
		},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("unrestricted rule accepted")
	}
	// Spanner literal with foreign variable.
	bad2 := &Program{Rules: []Rule{
		{
			Head: Atom{Pred: "p", Args: []spans.Var{"w"}},
			Body: []Literal{{Atom: Atom{Args: []spans.Var{"w"}}, Spanner: sp(t, "!x{a}")}},
		},
	}}
	if err := bad2.Validate(); err == nil {
		t.Error("foreign spanner variable accepted")
	}
}

func TestSpanlogAtomString(t *testing.T) {
	a := Atom{Pred: "reach", Args: []spans.Var{"x", "y"}}
	if a.String() != "reach(x, y)" {
		t.Errorf("String = %q", a.String())
	}
}
