// Package spanlog implements datalog over regular spanners in the style
// of RGXLog (Peterfreund, ten Cate, Fagin, Kimelfeld, ICDT 2019), which
// the survey cites for the result that datalog over regular spanners
// covers the whole class of core spanners. Programs consist of rules
// whose body literals are (a) spanner atoms — a regular spanner applied
// to the document, binding datalog variables to spans —, (b) IDB atoms,
// and (c) the built-in string-equality predicate eq(x, y), which holds
// when the spans' contents in the document coincide. Evaluation is
// bottom-up semi-naive to a fixpoint.
package spanlog

import (
	"fmt"
	"sort"
	"strings"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Atom is pred(args...).
type Atom struct {
	Pred string
	Args []spans.Var
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, v := range a.Args {
		parts[i] = string(v)
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Literal is one body element.
type Literal struct {
	// Atom is set for IDB/EDB predicate literals.
	Atom Atom
	// Spanner, when non-nil, makes this a spanner literal: the automaton
	// is evaluated on the document and projected to Atom.Args (which must
	// be a subset of the spanner's variables; Atom.Pred is a label).
	Spanner *automata.NFA
	// StrEq makes this the built-in eq(x, y) literal (Atom.Args has the
	// two variables).
	StrEq bool
	// Negated marks a negated IDB literal (stratified negation; see
	// EvalStratified). Spanner and eq literals cannot be negated.
	Negated bool
}

// Rule is Head :- Body.
type Rule struct {
	Head Atom
	Body []Literal
}

// Program is a set of rules.
type Program struct {
	Rules []Rule
}

// Validate checks range restriction (every head variable occurs in a
// positive body literal that binds it: a spanner or IDB atom) and that
// eq literals use bound variables.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		bound := map[spans.Var]bool{}
		for _, l := range r.Body {
			if l.StrEq {
				continue
			}
			for _, v := range l.Atom.Args {
				bound[v] = true
			}
		}
		for _, v := range r.Head.Args {
			if !bound[v] {
				return fmt.Errorf("spanlog: head variable %s of %s is not range-restricted", v, r.Head)
			}
		}
		for _, l := range r.Body {
			if l.StrEq {
				if len(l.Atom.Args) != 2 {
					return fmt.Errorf("spanlog: eq takes two arguments")
				}
				for _, v := range l.Atom.Args {
					if !bound[v] {
						return fmt.Errorf("spanlog: eq argument %s is not bound", v)
					}
				}
			}
			if l.Spanner != nil {
				for _, v := range l.Atom.Args {
					if !l.Spanner.Vars.Contains(v) {
						return fmt.Errorf("spanlog: spanner literal %s uses variable %s not bound by the spanner", l.Atom, v)
					}
				}
			}
		}
	}
	return nil
}

// fact is a ground tuple of spans for a predicate.
type fact []spans.Span

func key(f fact) string {
	var sb strings.Builder
	for _, s := range f {
		fmt.Fprintf(&sb, "%d:%d;", s.Begin, s.End)
	}
	return sb.String()
}

// Result holds the fixpoint: for every IDB predicate, its set of facts.
type Result struct {
	doc   []byte
	preds map[string]map[string]fact
}

// Facts returns the facts of a predicate as span tuples over the
// predicate's argument positions named $1, $2, ...; use FactsAs to name
// the columns.
func (r *Result) Facts(pred string) [][]spans.Span {
	m := r.preds[pred]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]spans.Span, 0, len(m))
	for _, k := range keys {
		out = append(out, append([]spans.Span(nil), m[k]...))
	}
	return out
}

// FactsAs returns the facts of a predicate as a spans.Relation with the
// given column names.
func (r *Result) FactsAs(pred string, cols ...spans.Var) *spans.Relation {
	out := spans.NewRelation()
	for _, f := range r.Facts(pred) {
		if len(f) != len(cols) {
			continue
		}
		t := make(spans.Tuple, len(cols))
		for i, v := range cols {
			t[v] = f[i]
		}
		out.Add(t)
	}
	return out
}

// Count returns the number of facts of a predicate.
func (r *Result) Count(pred string) int { return len(r.preds[pred]) }

// Eval computes the fixpoint of the program on the document. Spanner
// literals are materialized once; IDB predicates are iterated semi-naively
// until no new facts appear.
func (p *Program) Eval(doc []byte) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Negated {
				return p.EvalStratified(doc)
			}
		}
	}
	res := &Result{doc: doc, preds: map[string]map[string]fact{}}

	// Materialize spanner literals (cache by automaton pointer).
	spanRel := map[*automata.NFA]*spans.Relation{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Spanner != nil && spanRel[l.Spanner] == nil {
				spanRel[l.Spanner] = vset.Eval(l.Spanner, doc, vset.Schemaless)
			}
		}
	}

	add := func(pred string, f fact) bool {
		m := res.preds[pred]
		if m == nil {
			m = map[string]fact{}
			res.preds[pred] = m
		}
		k := key(f)
		if _, ok := m[k]; ok {
			return false
		}
		m[k] = f
		return true
	}

	// Naive-to-fixpoint with a semi-naive flavor: iterate until stable.
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			for _, binding := range p.matchBody(doc, r.Body, spanRel, res) {
				f := make(fact, len(r.Head.Args))
				for i, v := range r.Head.Args {
					f[i] = binding[v]
				}
				if add(r.Head.Pred, f) {
					changed = true
				}
			}
		}
	}
	return res, nil
}

// orderLiterals evaluates binding literals (spanner and IDB atoms) in
// their written order, followed by eq literals and then negations, so
// that filters only run once their variables are bound.
func orderLiterals(body []Literal) []Literal {
	out := make([]Literal, 0, len(body))
	for _, l := range body {
		if !l.StrEq && !l.Negated {
			out = append(out, l)
		}
	}
	for _, l := range body {
		if l.StrEq && !l.Negated {
			out = append(out, l)
		}
	}
	for _, l := range body {
		if l.Negated {
			out = append(out, l)
		}
	}
	return out
}

// matchBody enumerates all variable bindings satisfying the body.
func (p *Program) matchBody(doc []byte, body []Literal, spanRel map[*automata.NFA]*spans.Relation, res *Result) []map[spans.Var]spans.Span {
	bindings := []map[spans.Var]spans.Span{{}}
	for _, l := range orderLiterals(body) {
		var next []map[spans.Var]spans.Span
		switch {
		case l.StrEq:
			for _, b := range bindings {
				x, y := b[l.Atom.Args[0]], b[l.Atom.Args[1]]
				if !x.IsDefined() || !y.IsDefined() {
					continue // unbound: cannot satisfy the equality
				}
				if string(x.Content(doc)) == string(y.Content(doc)) {
					next = append(next, b)
				}
			}
		case l.Spanner != nil:
			rel := spanRel[l.Spanner]
			for _, b := range bindings {
				for _, t := range rel.Tuples() {
					nb, ok := extend(b, l.Atom.Args, func(i int) (spans.Span, bool) {
						s, has := t[l.Atom.Args[i]]
						return s, has
					})
					if ok {
						next = append(next, nb)
					}
				}
			}
		default:
			facts := res.preds[l.Atom.Pred]
			for _, b := range bindings {
				for _, f := range facts {
					if len(f) != len(l.Atom.Args) {
						continue
					}
					nb, ok := extend(b, l.Atom.Args, func(i int) (spans.Span, bool) {
						return f[i], true
					})
					if ok {
						next = append(next, nb)
					}
				}
			}
		}
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}
	return bindings
}

// extend unifies a binding with values for args; reports failure on
// conflicts or missing values.
func extend(b map[spans.Var]spans.Span, args []spans.Var, val func(int) (spans.Span, bool)) (map[spans.Var]spans.Span, bool) {
	nb := b
	copied := false
	for i, v := range args {
		s, ok := val(i)
		if !ok {
			return nil, false
		}
		if old, bound := nb[v]; bound {
			if old != s {
				return nil, false
			}
			continue
		}
		if !copied {
			c := make(map[spans.Var]spans.Span, len(nb)+1)
			for k2, v2 := range nb {
				c[k2] = v2
			}
			nb = c
			copied = true
		}
		nb[v] = s
	}
	return nb, true
}
