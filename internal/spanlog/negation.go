package spanlog

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Stratified negation: body literals may be negated (Literal.Negated),
// with the usual safety and stratification conditions. A negated literal
// filters out bindings for which a matching fact exists; its variables
// must all be bound by positive literals of the same rule. Negation
// through recursion is rejected (no negative edge inside a dependency
// cycle), so the stratified fixpoint is well-defined.

// Stratify orders the program's predicates into strata such that every
// negative dependency points to a strictly lower stratum. It returns the
// stratum of each IDB predicate, or an error if the program is not
// stratifiable.
func (p *Program) Stratify() (map[string]int, error) {
	// Dependency edges head -> body predicate with polarity.
	type edge struct {
		to  string
		neg bool
	}
	adj := map[string][]edge{}
	preds := map[string]bool{}
	for _, r := range p.Rules {
		preds[r.Head.Pred] = true
		for _, l := range r.Body {
			if l.Spanner != nil || l.StrEq {
				continue
			}
			adj[r.Head.Pred] = append(adj[r.Head.Pred], edge{l.Atom.Pred, l.Negated})
			preds[l.Atom.Pred] = true
		}
	}
	// Bellman-Ford-style stratum assignment: stratum(head) ≥ stratum(body)
	// and > for negated bodies; more than |preds| rounds means a negative
	// cycle.
	stratum := map[string]int{}
	for pr := range preds {
		stratum[pr] = 0
	}
	for round := 0; ; round++ {
		changed := false
		for head, es := range adj {
			for _, e := range es {
				need := stratum[e.to]
				if e.neg {
					need++
				}
				if stratum[head] < need {
					stratum[head] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if round > len(preds)+1 {
			return nil, fmt.Errorf("spanlog: program is not stratifiable (negation through recursion)")
		}
	}
	return stratum, nil
}

// validateNegation checks safety: every variable of a negated literal is
// bound by a positive, non-negated literal of the same rule.
func (p *Program) validateNegation() error {
	for _, r := range p.Rules {
		bound := map[spans.Var]bool{}
		for _, l := range r.Body {
			if l.Negated || l.StrEq {
				continue
			}
			for _, v := range l.Atom.Args {
				bound[v] = true
			}
		}
		for _, l := range r.Body {
			if !l.Negated {
				continue
			}
			if l.StrEq {
				return fmt.Errorf("spanlog: negated eq is not supported; use a positive helper predicate")
			}
			for _, v := range l.Atom.Args {
				if !bound[v] {
					return fmt.Errorf("spanlog: variable %s of negated literal %s is not bound positively", v, l.Atom)
				}
			}
		}
	}
	return nil
}

// EvalStratified evaluates a program with (possibly) negated literals:
// strata are computed and evaluated bottom-up, each to its own fixpoint,
// so negated literals only consult fully computed predicates.
func (p *Program) EvalStratified(doc []byte) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.validateNegation(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}

	res := &Result{doc: doc, preds: map[string]map[string]fact{}}

	// Materialize spanner literals once.
	srel := map[*automata.NFA]*spans.Relation{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Spanner != nil && srel[l.Spanner] == nil {
				srel[l.Spanner] = vset.Eval(l.Spanner, doc, vset.Schemaless)
			}
		}
	}

	add := func(pred string, f fact) bool {
		m := res.preds[pred]
		if m == nil {
			m = map[string]fact{}
			res.preds[pred] = m
		}
		k := key(f)
		if _, ok := m[k]; ok {
			return false
		}
		m[k] = f
		return true
	}

	for s := 0; s <= maxStratum; s++ {
		for changed := true; changed; {
			changed = false
			for _, r := range p.Rules {
				if strata[r.Head.Pred] != s {
					continue
				}
				for _, binding := range p.matchBodyNeg(doc, r.Body, srel, res) {
					f := make(fact, len(r.Head.Args))
					for i, v := range r.Head.Args {
						f[i] = binding[v]
					}
					if add(r.Head.Pred, f) {
						changed = true
					}
				}
			}
		}
	}
	return res, nil
}

// matchBodyNeg is matchBody extended with negated literals.
func (p *Program) matchBodyNeg(doc []byte, body []Literal, srel map[*automata.NFA]*spans.Relation, res *Result) []map[spans.Var]spans.Span {
	bindings := []map[spans.Var]spans.Span{{}}
	for _, l := range orderLiterals(body) {
		var next []map[spans.Var]spans.Span
		switch {
		case l.Negated:
			facts := res.preds[l.Atom.Pred]
			for _, b := range bindings {
				hit := false
				for _, f := range facts {
					if len(f) != len(l.Atom.Args) {
						continue
					}
					match := true
					for i, v := range l.Atom.Args {
						if b[v] != f[i] {
							match = false
							break
						}
					}
					if match {
						hit = true
						break
					}
				}
				if !hit {
					next = append(next, b)
				}
			}
		case l.StrEq:
			for _, b := range bindings {
				x, y := b[l.Atom.Args[0]], b[l.Atom.Args[1]]
				if !x.IsDefined() || !y.IsDefined() {
					continue
				}
				if string(x.Content(doc)) == string(y.Content(doc)) {
					next = append(next, b)
				}
			}
		case l.Spanner != nil:
			rel := srel[l.Spanner]
			for _, b := range bindings {
				for _, t := range rel.Tuples() {
					nb, ok := extend(b, l.Atom.Args, func(i int) (spans.Span, bool) {
						sp, has := t[l.Atom.Args[i]]
						return sp, has
					})
					if ok {
						next = append(next, nb)
					}
				}
			}
		default:
			facts := res.preds[l.Atom.Pred]
			for _, b := range bindings {
				for _, f := range facts {
					if len(f) != len(l.Atom.Args) {
						continue
					}
					nb, ok := extend(b, l.Atom.Args, func(i int) (spans.Span, bool) {
						return f[i], true
					})
					if ok {
						next = append(next, nb)
					}
				}
			}
		}
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}
	return bindings
}
