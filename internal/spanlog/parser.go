package spanlog

import (
	"fmt"
	"strings"

	"docspanner/internal/regex"
	"docspanner/internal/spans"
)

// ParseProgram reads a spanlog program in a datalog-like syntax, one rule
// per '.', e.g.
//
//	edge(x, y)  :- "(.*;)?!x{[a-z]+}->!y{[a-z]+}(;.*)?"(x, y).
//	reach(x, y) :- edge(x, y).
//	reach(x, z) :- reach(x, y), edge(y, z).
//	same(x, y)  :- edge(x, y), eq(x, y).
//
// Body literals are IDB atoms p(args), the builtin eq(x, y), or a
// double-quoted spanner pattern applied to a subset of its variables.
// Lines starting with # (or % ) are comments. Patterns are compiled over
// the given alphabet.
func ParseProgram(src string, alphabet []byte) (*Program, error) {
	// Strip comments.
	var sb strings.Builder
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, "%") {
			continue
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	p := &ruleParser{src: sb.String(), alphabet: alphabet}
	prog := &Program{}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type ruleParser struct {
	src      string
	pos      int
	alphabet []byte
}

func (p *ruleParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *ruleParser) errf(format string, args ...any) error {
	prefix := p.src[:min(p.pos, len(p.src))]
	line := strings.Count(prefix, "\n") + 1
	return fmt.Errorf("spanlog: line %d: %s", line, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *ruleParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *ruleParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *ruleParser) args() ([]spans.Var, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var out []spans.Var
	for {
		p.skipSpace()
		name := p.ident()
		if name == "" {
			return nil, p.errf("expected variable name")
		}
		out = append(out, spans.Var(name))
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *ruleParser) rule() (Rule, error) {
	p.skipSpace()
	head := p.ident()
	if head == "" {
		return Rule{}, p.errf("expected rule head")
	}
	args, err := p.args()
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: Atom{Pred: head, Args: args}}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], ":-") {
		p.pos += 2
		for {
			lit, err := p.literal()
			if err != nil {
				return Rule{}, err
			}
			r.Body = append(r.Body, lit)
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.expect('.'); err != nil {
		return Rule{}, err
	}
	return r, nil
}

func (p *ruleParser) literal() (Literal, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '!' {
		p.pos++
		lit, err := p.literal()
		if err != nil {
			return Literal{}, err
		}
		if lit.Spanner != nil || lit.StrEq {
			return Literal{}, p.errf("only IDB literals can be negated")
		}
		lit.Negated = true
		return lit, nil
	}
	if p.pos < len(p.src) && p.src[p.pos] == '"' {
		// Spanner literal: quoted pattern followed by (args).
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
			}
			p.pos++
		}
		if p.pos >= len(p.src) {
			return Literal{}, p.errf("unterminated pattern")
		}
		pattern := p.src[start:p.pos]
		p.pos++ // closing quote
		args, err := p.args()
		if err != nil {
			return Literal{}, err
		}
		ast, err := regex.Parse(pattern)
		if err != nil {
			return Literal{}, p.errf("pattern %q: %v", pattern, err)
		}
		nfa, err := regex.Compile(ast, regex.Options{Alphabet: p.alphabet})
		if err != nil {
			return Literal{}, p.errf("pattern %q: %v", pattern, err)
		}
		return Literal{Atom: Atom{Pred: "match", Args: args}, Spanner: nfa}, nil
	}
	name := p.ident()
	if name == "" {
		return Literal{}, p.errf("expected literal")
	}
	args, err := p.args()
	if err != nil {
		return Literal{}, err
	}
	if name == "eq" {
		if len(args) != 2 {
			return Literal{}, p.errf("eq takes two arguments")
		}
		return Literal{Atom: Atom{Pred: "eq", Args: args}, StrEq: true}, nil
	}
	return Literal{Atom: Atom{Pred: name, Args: args}}, nil
}
