// Package plan is the query planner behind the facade's evaluation
// entry points: it lowers a core-spanner algebra expression into a
// logical plan (package algebra's Plan IR), runs the rewrite passes —
// lint-driven dead-subtree pruning and duplicate-union elimination,
// selection/projection pushdown, no-op selection removal, the opt-in
// core→refl rewrite, and the executable core-simplification lemma
// (operator fusion into single vset-automata) — and then selects a
// physical backend per (sub)plan: constant-delay enumeration over the
// determinized automaton, the materializing relational evaluation, or
// compressed slpmatch evaluation when the input is an SLP document.
//
// Planning runs in query complexity only (no document involved) and its
// result is cached: a Planned is immutable, safe for concurrent use,
// and hash-consed per (expression structure, options) so repeated
// queries over the same spanners plan once.
package plan

import (
	"fmt"
	"strings"

	"docspanner/internal/algebra"
	"docspanner/internal/lint"
	"docspanner/internal/refl"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Options configures planning. The zero value gives the default
// pipeline: all rewrites on, refl rewriting off, automatic backend
// selection.
type Options struct {
	// Schemaless selects the result semantics (partial tuples instead
	// of per-primitive totality). Several rewrite guards depend on it.
	Schemaless bool
	// DisableRewrites turns every logical rewrite pass off; the plan
	// mirrors the expression tree and only backend selection remains.
	DisableRewrites bool
	// ReflRewrite opts into the core→refl rewrite (Section 3.2 of the
	// survey; spanlint's SP007): a chain of string-equality selections
	// over a pattern-compiled scan becomes a single refl-spanner scan.
	// Only applied under functional semantics, where the translation's
	// equivalence is established.
	ReflRewrite bool
	// NaiveBackend forces the materializing reference backend (vset
	// configuration search per scan) instead of constant-delay
	// enumeration — the planner-off baseline of the benchmarks.
	NaiveBackend bool
	// MaxFusedStates caps the size of automata the core-simplification
	// pass may build (default 4096).
	MaxFusedStates int
	// MaxNormStates caps the inputs of determinizing normalization
	// during join fusion and union dedup (default 128).
	MaxNormStates int
	// MaxDeterminizeStates is the state-count cost gate of backend
	// selection: scans whose NFA exceeds it fall back to the
	// materializing backend rather than determinizing (default 4096).
	MaxDeterminizeStates int
	// RequireTotal, when non-empty, filters the root result to tuples
	// total on the given variables. The facade uses it to give
	// automatically ToCore-translated refl-spanners their functional
	// semantics: the translation is evaluated schemaless inside and
	// filtered at the root.
	RequireTotal spans.VarSet
	// NoCache bypasses the global plan cache (tests).
	NoCache bool
}

func (o Options) maxDeterminize() int {
	if o.MaxDeterminizeStates > 0 {
		return o.MaxDeterminizeStates
	}
	return 4096
}

func (o Options) policy() algebra.FusePolicy {
	return algebra.FusePolicy{
		Schemaless:    o.Schemaless,
		MaxStates:     o.MaxFusedStates,
		MaxNormStates: o.MaxNormStates,
	}
}

func (o Options) sem() vset.Semantics {
	if o.Schemaless {
		return vset.Schemaless
	}
	return vset.Functional
}

func (o Options) key() string {
	return fmt.Sprintf("%t|%t|%t|%t|%d|%d|%d|%v",
		o.Schemaless, o.DisableRewrites, o.ReflRewrite, o.NaiveBackend,
		o.MaxFusedStates, o.MaxNormStates, o.MaxDeterminizeStates, o.RequireTotal)
}

// New plans an algebra expression. The result is hash-consed on the
// expression's structural fingerprint (automata by pointer identity)
// and the options, so planning a query twice — or sharing compiled
// spanners across queries — pays once.
func New(e algebra.Expr, opts Options) *Planned {
	if opts.NoCache {
		return build(e, opts)
	}
	key := algebra.FromExpr(e).Fingerprint() + "|" + opts.key()
	return cachedPlan(key, func() *Planned { return build(e, opts) })
}

// NewExternal plans a single external (e.g. refl) spanner scan. No
// rewrites apply; the plan exists so that the facade's Spanner methods
// route uniformly through the planner.
func NewExternal(ext algebra.ExternalSpanner, opts Options) *Planned {
	lp := &algebra.Plan{Kind: algebra.PExtScan, Ext: ext, Path: "$"}
	return &Planned{
		logical:      lp,
		root:         buildPhys(lp, opts),
		opts:         opts,
		requireTotal: opts.RequireTotal,
	}
}

func build(e algebra.Expr, opts Options) *Planned {
	lp := algebra.FromExpr(e)
	var notes []string
	if !opts.DisableRewrites {
		lp, notes = rewrite(lp, e, opts)
	}
	return &Planned{
		logical:      lp,
		root:         buildPhys(lp, opts),
		opts:         opts,
		passNotes:    notes,
		requireTotal: opts.RequireTotal,
	}
}

// rewrite runs the logical pass pipeline and reports which passes
// changed the plan.
func rewrite(lp *algebra.Plan, e algebra.Expr, opts Options) (*algebra.Plan, []string) {
	pol := opts.policy()
	bc := algebra.NewBoundCache()
	var applied []string
	step := func(name string, f func(*algebra.Plan) *algebra.Plan) {
		before := lp.Fingerprint()
		lp = f(lp)
		if lp.Fingerprint() != before {
			applied = append(applied, name)
		}
	}

	// Dead-subtree pruning and duplicate-union elimination, driven by
	// the spanlint analyses over the original expression (the plan still
	// mirrors it, so diagnostic paths resolve 1:1). A lone scan skips
	// the lint run: PruneEmpty already covers the only useful finding.
	if _, lone := e.(algebra.Prim); !lone {
		step("lint-prune", func(p *algebra.Plan) *algebra.Plan { return applyLint(p, e, opts, pol, bc) })
	}
	step("prune", algebra.PruneEmpty)
	step("dedup-union", func(p *algebra.Plan) *algebra.Plan { return algebra.DedupUnions(p, pol) })
	step("selection-pushdown", algebra.PushDownSelections)
	step("projection-pushdown", algebra.PushDownProjections)
	step("noop-select", func(p *algebra.Plan) *algebra.Plan { return algebra.DropNoopSelects(p, pol, bc) })
	step("prune", algebra.PruneEmpty)
	if opts.ReflRewrite && !opts.Schemaless {
		step("refl-rewrite", reflRewrite)
	}
	step("core-simplify", func(p *algebra.Plan) *algebra.Plan { return algebra.FuseRegular(p, pol) })
	// Fusing may expose new no-op selections (the fused scan is a
	// single automaton the guards can analyze) and vice versa.
	step("noop-select", func(p *algebra.Plan) *algebra.Plan { return algebra.DropNoopSelects(p, pol, bc) })
	step("prune", algebra.PruneEmpty)
	step("core-simplify", func(p *algebra.Plan) *algebra.Plan { return algebra.FuseRegular(p, pol) })
	return lp, applied
}

// applyLint maps spanlint diagnostics onto plan nodes (the Pos path
// follows the same "$", "$.L", "$.R", "$.Sub" convention) and applies
// the rewrites they license. Only provably sound prunes run; findings
// whose guard fails are left for the evaluation to handle.
func applyLint(lp *algebra.Plan, e algebra.Expr, opts Options, pol algebra.FusePolicy, bc algebra.BoundCache) *algebra.Plan {
	diags := lint.Expr(e, opts.Schemaless)
	for _, d := range diags {
		lp = applyDiag(lp, d, opts, pol, bc)
	}
	return lp
}

func applyDiag(lp *algebra.Plan, d lint.Diagnostic, opts Options, pol algebra.FusePolicy, bc algebra.BoundCache) *algebra.Plan {
	node := locate(lp, d.Pos)
	if node == nil {
		return lp
	}
	replace := func(f func(*algebra.Plan) *algebra.Plan) {
		lp = replaceAt(lp, d.Pos, f)
	}
	switch {
	case d.Code == "SP001" && d.Severity == lint.Error && node.Kind == algebra.PScan:
		replace(func(n *algebra.Plan) *algebra.Plan {
			return algebra.EmptyFor(n, "prune: scan is unsatisfiable (lint SP001)")
		})

	case d.Code == "SP003" && d.Severity == lint.Error && node.Kind == algebra.PJoin:
		// The lint product-automaton emptiness transfers to the
		// relational join only when the synchronized product captures
		// every joinable pair: immediate for functional scans (totality
		// binds the shared variables on both sides), and needing
		// always-bound shared variables under the schemaless semantics.
		l, r := node.Children[0], node.Children[1]
		if l.Kind != algebra.PScan || r.Kind != algebra.PScan || l.Auto.HasRefs() || r.Auto.HasRefs() {
			break
		}
		shared := l.Auto.Vars.Intersect(r.Auto.Vars)
		if opts.Schemaless && !(bc.AllBound(l.Auto, shared) && bc.AllBound(r.Auto, shared)) {
			break
		}
		replace(func(n *algebra.Plan) *algebra.Plan {
			return algebra.EmptyFor(n, "prune: join is provably empty (lint SP003)")
		})

	case d.Code == "SP005" && d.Severity == lint.Error && node.Kind == algebra.PSelect:
		z := node.Z
		child := node.Children[0]
		unbound := len(z.Minus(child.Vars())) > 0
		provable := unbound ||
			(child.Kind == algebra.PScan && !child.Auto.HasRefs() && !vset.JointlyBindable(child.Auto, z))
		if provable {
			replace(func(n *algebra.Plan) *algebra.Plan {
				return algebra.EmptyFor(n, "prune: selection is provably empty (lint SP005)")
			})
		}

	case d.Code == "SP008" && node.Kind == algebra.PUnion:
		replace(func(n *algebra.Plan) *algebra.Plan { return algebra.DedupUnions(n, pol) })
	}
	return lp
}

// locate resolves a lint position path to a plan node, or nil when the
// tree no longer matches (an earlier rewrite replaced an ancestor).
func locate(p *algebra.Plan, pos string) *algebra.Plan {
	segs := strings.Split(pos, ".")
	if len(segs) == 0 || segs[0] != "$" {
		return nil
	}
	for _, s := range segs[1:] {
		var idx int
		switch s {
		case "L", "Sub":
			idx = 0
		case "R":
			idx = 1
		default:
			return nil
		}
		if idx >= len(p.Children) {
			return nil
		}
		p = p.Children[idx]
	}
	return p
}

// replaceAt applies f to the node at pos and splices the result back.
func replaceAt(p *algebra.Plan, pos string, f func(*algebra.Plan) *algebra.Plan) *algebra.Plan {
	segs := strings.Split(pos, ".")
	if len(segs) == 0 || segs[0] != "$" {
		return p
	}
	if len(segs) == 1 {
		return f(p)
	}
	cur := p
	for _, s := range segs[1 : len(segs)-1] {
		cur = child(cur, s)
		if cur == nil {
			return p
		}
	}
	last := segs[len(segs)-1]
	idx := childIndex(last)
	if idx < 0 || idx >= len(cur.Children) {
		return p
	}
	cur.Children[idx] = f(cur.Children[idx])
	return p
}

func childIndex(seg string) int {
	switch seg {
	case "L", "Sub":
		return 0
	case "R":
		return 1
	}
	return -1
}

func child(p *algebra.Plan, seg string) *algebra.Plan {
	idx := childIndex(seg)
	if idx < 0 || idx >= len(p.Children) {
		return nil
	}
	return p.Children[idx]
}

// reflRewrite replaces maximal chains of string-equality selections
// over a pattern-compiled scan by a single refl-spanner scan, when the
// constructive translation of Section 3.2 applies (refl.FromRegexCore;
// spanlint's SP007). Chains are tried outermost-first so the whole
// chain lands in one refl-spanner.
func reflRewrite(p *algebra.Plan) *algebra.Plan {
	if p.Kind == algebra.PSelect {
		if np, ok := tryReflChain(p); ok {
			return np
		}
	}
	for i, c := range p.Children {
		p.Children[i] = reflRewrite(c)
	}
	return p
}

func tryReflChain(p *algebra.Plan) (*algebra.Plan, bool) {
	var classes []spans.VarSet
	cur := p
	for cur.Kind == algebra.PSelect {
		classes = append(classes, cur.Z)
		cur = cur.Children[0]
	}
	if cur.Kind != algebra.PScan || cur.Src == nil || cur.Auto.HasRefs() {
		return nil, false
	}
	real := false
	for _, z := range classes {
		if len(z) >= 2 {
			real = true
		}
	}
	if !real {
		return nil, false
	}
	rs, err := refl.FromRegexCore(cur.Src, classes, cur.Auto.Alphabet())
	if err != nil {
		return nil, false
	}
	np := &algebra.Plan{Kind: algebra.PExtScan, Ext: rs, Path: p.Path, Rewrites: append([]string(nil), cur.Rewrites...)}
	np.Note(fmt.Sprintf("refl-rewrite: selections %v pushed into the regular layer as a refl-spanner (SP007)", classes))
	return np, true
}
