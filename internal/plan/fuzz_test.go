package plan

import (
	"sync"
	"testing"

	"docspanner/internal/algebra"
	"docspanner/internal/slp"
	"docspanner/internal/vset"
)

// fuzzPrimPatterns is the fixed primitive pool the fuzz machine draws
// from: a mix of always-bound, branch-bound, anchored, and multi-
// variable spanners so every rewrite guard gets exercised.
var fuzzPrimPatterns = []string{
	"!x{a+}",
	"(!x{a}|b)",
	"a*!x{a}b*",
	"!x{a+}b!y{a+}",
	"!y{b+}",
	"(!x{a}|!y{b})",
	"(a|b)*!x{(a|b)}",
}

var fuzzPrims struct {
	once  sync.Once
	exprs []algebra.Expr
}

func fuzzPrim(t testing.TB, i int) algebra.Expr {
	fuzzPrims.once.Do(func() {
		for _, src := range fuzzPrimPatterns {
			fuzzPrims.exprs = append(fuzzPrims.exprs, prim(t, src))
		}
	})
	return fuzzPrims.exprs[i%len(fuzzPrims.exprs)]
}

// decodeExpr interprets data as a tiny stack machine building an
// algebra expression: opcode 0 pushes a primitive, 1–4 combine the
// stack with union/join/projection/selection, 5 terminates and leaves
// the rest of the input to become the document. Inputs that underflow
// the stack or build nothing yield (nil, ...).
func decodeExpr(t testing.TB, data []byte) (algebra.Expr, []byte) {
	var stack []algebra.Expr
	ops := 0
	for i := 0; i < len(data); i++ {
		if ops++; ops > 24 {
			return finishExpr(stack), data[i:]
		}
		b := data[i]
		switch b % 6 {
		case 0:
			stack = append(stack, fuzzPrim(t, int(b/6)))
		case 1:
			if len(stack) < 2 {
				continue
			}
			l, r := stack[len(stack)-2], stack[len(stack)-1]
			stack = append(stack[:len(stack)-2], algebra.Union{L: l, R: r})
		case 2:
			if len(stack) < 2 {
				continue
			}
			l, r := stack[len(stack)-2], stack[len(stack)-1]
			stack = append(stack[:len(stack)-2], algebra.Join{L: l, R: r})
		case 3:
			if len(stack) == 0 {
				continue
			}
			sub := stack[len(stack)-1]
			vars := sub.Vars()
			if len(vars) == 0 {
				continue
			}
			stack[len(stack)-1] = algebra.Project{Sub: sub, Keep: vars[:1+int(b/6)%len(vars)]}
		case 4:
			if len(stack) == 0 {
				continue
			}
			sub := stack[len(stack)-1]
			vars := sub.Vars()
			if len(vars) < 2 {
				continue
			}
			stack[len(stack)-1] = algebra.SelectEq{Sub: sub, Z: vars[:2]}
		case 5:
			return finishExpr(stack), data[i+1:]
		}
	}
	return finishExpr(stack), nil
}

func finishExpr(stack []algebra.Expr) algebra.Expr {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// FuzzPlanRewrite cross-validates the whole rewrite pipeline: for every
// fuzz input — decoded into a random algebra expression and a random
// document over {a,b} — the fully rewritten plan (with and without the
// refl rewrite) and the compressed backend must agree exactly with the
// naive bottom-up evaluation, under both semantics.
func FuzzPlanRewrite(f *testing.F) {
	f.Add([]byte{0, 6, 1, 5, 97, 98, 97})       // union of two prims on "aba"
	f.Add([]byte{0, 12, 2, 3, 5, 97, 97})       // projected join on "aa"
	f.Add([]byte{18, 4, 5, 97, 97, 98, 97, 97}) // selection chain on "aabaa"
	f.Add([]byte{0, 0, 1, 6, 1, 5, 98, 97})     // duplicate branches on "ba"
	f.Add([]byte{24, 30, 2, 36, 1, 4, 5, 97})   // mixed tree on "a"
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			return
		}
		expr, rest := decodeExpr(t, data)
		if expr == nil {
			return
		}
		if len(rest) > 12 {
			rest = rest[:12]
		}
		doc := make([]byte, len(rest))
		for i, b := range rest {
			doc[i] = "ab"[b%2]
		}
		for _, schemaless := range []bool{false, true} {
			sem := vset.Functional
			if schemaless {
				sem = vset.Schemaless
			}
			want := expr.Eval(doc, sem)
			for _, opts := range []Options{
				{Schemaless: schemaless, NoCache: true},
				{Schemaless: schemaless, ReflRewrite: true, NoCache: true},
			} {
				pl := New(expr, opts)
				if got := pl.Eval(doc); !got.Equal(want) {
					t.Fatalf("expr %s doc %q schemaless=%v refl=%v:\n got %v\nwant %v\nplan:\n%s",
						algebra.String(expr), doc, schemaless, opts.ReflRewrite, got, want, pl.Explain())
				}
				if got := pl.EvalSLP(slp.FromBytes(doc)); !got.Equal(want) {
					t.Fatalf("expr %s doc %q schemaless=%v refl=%v (SLP):\n got %v\nwant %v\nplan:\n%s",
						algebra.String(expr), doc, schemaless, opts.ReflRewrite, got, want, pl.Explain())
				}
			}
		}
	})
}
