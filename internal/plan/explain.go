package plan

import (
	"fmt"
	"strings"

	"docspanner/internal/algebra"
)

// Explain renders the plan for humans: the rewritten logical shape, the
// physical backend chosen for every node, and the per-node rewrite
// provenance accumulated by the passes.
func (pl *Planned) Explain() string {
	var sb strings.Builder
	sem := "functional"
	if pl.opts.Schemaless {
		sem = "schemaless"
	}
	fmt.Fprintf(&sb, "plan: %s\n", pl.logical.String())
	fmt.Fprintf(&sb, "semantics: %s\n", sem)
	if pl.opts.DisableRewrites {
		sb.WriteString("rewrites: disabled\n")
	} else if len(pl.passNotes) == 0 {
		sb.WriteString("rewrites: none applied\n")
	} else {
		fmt.Fprintf(&sb, "rewrites: %s\n", strings.Join(pl.passNotes, ", "))
	}
	if len(pl.requireTotal) > 0 {
		fmt.Fprintf(&sb, "root filter: total on %v\n", pl.requireTotal)
	}
	if diags := pl.Lint(); len(diags) > 0 {
		sb.WriteString("warnings:\n")
		for _, d := range diags {
			fmt.Fprintf(&sb, "  ! %s\n", d)
		}
	}
	explainNode(&sb, pl.root, 0)
	return sb.String()
}

func explainNode(sb *strings.Builder, n physNode, depth int) {
	indent := strings.Repeat("  ", depth)
	p := n.lp()
	fmt.Fprintf(sb, "%s%s", indent, p.Kind)
	switch {
	case p.Auto != nil:
		fmt.Fprintf(sb, " %dq vars=%v", p.Auto.NumStates(), p.Auto.Vars)
	case p.Ext != nil:
		fmt.Fprintf(sb, " vars=%v", p.Ext.Vars())
	default:
		fmt.Fprintf(sb, " vars=%v", p.Vars())
	}
	switch p.Kind {
	case algebra.PProject:
		fmt.Fprintf(sb, " keep=%v", p.Keep)
	case algebra.PSelect:
		fmt.Fprintf(sb, " class=%v", p.Z)
	case algebra.PFuse:
		fmt.Fprintf(sb, " λ=%v→%s", p.Lambda, p.Target)
	}
	fmt.Fprintf(sb, "  [%s]\n", n.backend())
	for _, rw := range p.Rewrites {
		fmt.Fprintf(sb, "%s  • %s\n", indent, rw)
	}
	for _, c := range n.children() {
		explainNode(sb, c, depth+1)
	}
}
