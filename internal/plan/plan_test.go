package plan

import (
	"strings"
	"testing"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func compile(t testing.TB, src string) (*automata.NFA, regex.Node) {
	t.Helper()
	n, err := regex.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("ab")})
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return a, n
}

func prim(t testing.TB, src string) algebra.Expr {
	t.Helper()
	a, n := compile(t, src)
	return algebra.Prim{A: a, Src: n}
}

// checkAgainstNaive compares the planned evaluation with the naive
// bottom-up reference on a few documents.
func checkAgainstNaive(t *testing.T, e algebra.Expr, opts Options, docs ...string) {
	t.Helper()
	sem := vset.Functional
	if opts.Schemaless {
		sem = vset.Schemaless
	}
	pl := New(e, opts)
	for _, doc := range docs {
		want := e.Eval([]byte(doc), sem)
		if got := pl.Eval([]byte(doc)); !got.Equal(want) {
			t.Fatalf("doc %q: planned %v, want %v\nplan:\n%s", doc, got, want, pl.Explain())
		}
	}
}

func TestLintDrivenJoinPrune(t *testing.T) {
	// Disjoint languages: the lint product automaton is empty, and under
	// functional semantics that licenses pruning the join to ∅.
	e := algebra.Join{L: prim(t, "!x{a}"), R: prim(t, "!x{b}")}
	pl := New(e, Options{NoCache: true})
	if pl.Logical().Kind != algebra.PEmpty {
		t.Fatalf("provably empty join not pruned:\n%s", pl.Explain())
	}
	if !strings.Contains(pl.Explain(), "SP003") {
		t.Errorf("prune provenance missing lint code:\n%s", pl.Explain())
	}
	checkAgainstNaive(t, e, Options{NoCache: true}, "", "a", "b", "ab")
}

func TestLintPruneGuardedUnderSchemaless(t *testing.T) {
	// L=(!v{a}|b), R=!v{b}: lint's product automaton is empty on shared
	// markers, but the schemaless relational join is NOT empty on "b"
	// (the b-branch contributes the empty tuple, compatible with
	// everything). The planner must refuse the prune because v is not
	// always bound on the left.
	e := algebra.Join{L: prim(t, "(!v{a}|b)"), R: prim(t, "!v{b}")}
	pl := New(e, Options{Schemaless: true, NoCache: true})
	if pl.Logical().Kind == algebra.PEmpty {
		t.Fatalf("unsound schemaless lint prune applied:\n%s", pl.Explain())
	}
	checkAgainstNaive(t, e, Options{Schemaless: true, NoCache: true}, "", "a", "b", "ab", "ba")
}

func TestDuplicateUnionElimination(t *testing.T) {
	e := algebra.Union{L: prim(t, "!x{a+}"), R: prim(t, "!x{aa*}")}
	pl := New(e, Options{NoCache: true})
	if got := pl.Logical().Kind; got != algebra.PScan {
		t.Fatalf("duplicate union branches not eliminated (kind %v):\n%s", got, pl.Explain())
	}
	if !strings.Contains(pl.Explain(), "SP008") {
		t.Errorf("dedup provenance missing:\n%s", pl.Explain())
	}
	checkAgainstNaive(t, e, Options{NoCache: true}, "", "a", "aa", "ab")
}

func TestReflRewrite(t *testing.T) {
	e := algebra.SelectEq{Sub: prim(t, "!x{a+}b!y{a+}"), Z: spans.NewVarSet("x", "y")}
	pl := New(e, Options{ReflRewrite: true, NoCache: true})
	if pl.Logical().Kind != algebra.PExtScan {
		t.Fatalf("refl rewrite did not apply:\n%s", pl.Explain())
	}
	if !strings.Contains(pl.Explain(), "SP007") {
		t.Errorf("refl rewrite provenance missing:\n%s", pl.Explain())
	}
	checkAgainstNaive(t, e, Options{ReflRewrite: true, NoCache: true},
		"", "aba", "aabaa", "ab", "aabab")

	// Under schemaless semantics the translation's equivalence is not
	// established; the pass must not run.
	pls := New(e, Options{ReflRewrite: true, Schemaless: true, NoCache: true})
	if pls.Logical().Kind == algebra.PExtScan {
		t.Fatalf("refl rewrite applied under schemaless semantics:\n%s", pls.Explain())
	}
}

func TestFusionCollapsesToSingleScan(t *testing.T) {
	e := algebra.Union{L: prim(t, "!x{a}b"), R: prim(t, "a!x{b}")}
	pl := New(e, Options{NoCache: true})
	if _, ok := pl.SingleScan(); !ok {
		t.Fatalf("fusable union did not collapse to a single scan:\n%s", pl.Explain())
	}
	if !pl.Streaming() {
		t.Error("single-scan plan not streaming")
	}
	checkAgainstNaive(t, e, Options{NoCache: true}, "", "ab", "ba", "abab")
}

func TestDisableRewritesMirrorsExpression(t *testing.T) {
	e := algebra.Union{L: prim(t, "!x{a+}"), R: prim(t, "!x{aa*}")}
	pl := New(e, Options{DisableRewrites: true, NoCache: true})
	if pl.Logical().Kind != algebra.PUnion {
		t.Fatalf("rewrites ran despite DisableRewrites:\n%s", pl.Explain())
	}
	if !strings.Contains(pl.Explain(), "rewrites: disabled") {
		t.Errorf("Explain does not report disabled rewrites:\n%s", pl.Explain())
	}
	checkAgainstNaive(t, e, Options{DisableRewrites: true, NoCache: true}, "", "a", "aa")
}

func TestNaiveBackendSelection(t *testing.T) {
	e := prim(t, "!x{a+}")
	pl := New(e, Options{NaiveBackend: true, DisableRewrites: true, NoCache: true})
	if !strings.Contains(pl.Explain(), "nfa-search") {
		t.Errorf("naive backend not selected:\n%s", pl.Explain())
	}
	if pl.Streaming() {
		t.Error("naive scan reported as streaming")
	}
	checkAgainstNaive(t, e, Options{NaiveBackend: true, DisableRewrites: true, NoCache: true}, "", "a", "aa")
}

func TestRequireTotalFiltersRoot(t *testing.T) {
	e := prim(t, "(!x{a}|b)")
	pl := New(e, Options{Schemaless: true, RequireTotal: spans.NewVarSet("x"), NoCache: true})
	got := pl.Eval([]byte("ab"))
	want := vset.Eval(e.(algebra.Prim).A, []byte("ab"), vset.Functional)
	if !got.Equal(want) {
		t.Fatalf("root totality filter: got %v, want %v", got, want)
	}
}

func TestPlanCacheSharesPlans(t *testing.T) {
	ResetCache()
	e := algebra.Union{L: prim(t, "!x{a}"), R: prim(t, "!x{b}")}
	p1 := New(e, Options{})
	p2 := New(e, Options{})
	if p1 != p2 {
		t.Error("identical (expr, options) did not share a plan")
	}
	if p3 := New(e, Options{Schemaless: true}); p3 == p1 {
		t.Error("different options shared a plan")
	}
	ResetCache()
}

func TestCountAndEnumerate(t *testing.T) {
	e := algebra.Union{L: prim(t, "!x{a}"), R: prim(t, "!x{b}")}
	pl := New(e, Options{NoCache: true})
	if got := pl.Count([]byte("a")); got != 1 {
		t.Errorf("Count = %d", got)
	}
	// Two matches of a on aa; early termination stops after the first.
	e2 := prim(t, "a*!x{a}a*")
	pl2 := New(e2, Options{NoCache: true})
	if got := pl2.Count([]byte("aa")); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	n := 0
	pl2.Enumerate([]byte("aa"), func(spans.Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early termination delivered %d tuples", n)
	}
}
