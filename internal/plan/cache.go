package plan

import (
	"sync"
	"sync/atomic"
)

// The plan cache hash-conses Planned values per (expression structure,
// options), following the same per-key sync.Once discipline as the
// compiled-kernel and DEVA caches: concurrent requests for the same key
// build once and share the result, requests for different keys never
// block each other.
var planCache sync.Map // string -> *planHolder

// Cache traffic counters, monotonic over the process lifetime (a reset
// does not rewind them — long-lived servers export them as Prometheus
// counters and derive the hit rate from the pair).
var cacheHits, cacheMisses atomic.Uint64

type planHolder struct {
	once sync.Once
	p    *Planned
}

func cachedPlan(key string, build func() *Planned) *Planned {
	v, loaded := planCache.LoadOrStore(key, &planHolder{})
	if loaded {
		cacheHits.Add(1)
	} else {
		cacheMisses.Add(1)
	}
	h := v.(*planHolder)
	h.once.Do(func() { h.p = build() })
	return h.p
}

// CacheStats returns the cumulative plan-cache hit and miss counts.
// Safe to call concurrently with planning.
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// CacheLen returns the number of currently cached plans.
func CacheLen() int {
	n := 0
	planCache.Range(func(_, _ any) bool { n++; return true })
	return n
}

// ResetCache drops all cached plans (tests and memory-sensitive
// callers). In-flight plans remain valid; only future lookups miss. The
// hit/miss counters are not reset.
func ResetCache() {
	planCache.Range(func(k, _ any) bool {
		planCache.Delete(k)
		return true
	})
}
