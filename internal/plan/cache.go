package plan

import "sync"

// The plan cache hash-conses Planned values per (expression structure,
// options), following the same per-key sync.Once discipline as the
// compiled-kernel and DEVA caches: concurrent requests for the same key
// build once and share the result, requests for different keys never
// block each other.
var planCache sync.Map // string -> *planHolder

type planHolder struct {
	once sync.Once
	p    *Planned
}

func cachedPlan(key string, build func() *Planned) *Planned {
	v, _ := planCache.LoadOrStore(key, &planHolder{})
	h := v.(*planHolder)
	h.once.Do(func() { h.p = build() })
	return h.p
}

// ResetCache drops all cached plans (tests and memory-sensitive
// callers). In-flight plans remain valid; only future lookups miss.
func ResetCache() {
	planCache.Range(func(k, _ any) bool {
		planCache.Delete(k)
		return true
	})
}
