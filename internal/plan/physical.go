package plan

import (
	"sync"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/lint"
	"docspanner/internal/slp"
	"docspanner/internal/slpmatch"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// physNode is a physical operator. Each node can evaluate against a
// plain document or against an SLP-compressed one; bytes() lazily
// decompresses the SLP and is only invoked by operators that genuinely
// need the raw text (string-equality selections, external spanners,
// naive scans).
type physNode interface {
	lp() *algebra.Plan
	children() []physNode
	backend() string
	// streaming reports whether each() yields tuples incrementally
	// (constant or polynomial delay) rather than materializing first.
	streaming() bool
	eval(doc []byte) *spans.Relation
	each(doc []byte, f func(spans.Tuple) bool) bool
	evalSLP(root *slp.Node, bytes func() []byte) *spans.Relation
	eachSLP(root *slp.Node, bytes func() []byte, f func(spans.Tuple) bool) bool
}

// buildPhys selects a backend per logical node: scans become
// constant-delay enumerators (or naive automaton searches when forced
// by options, by reference transitions, or by the determinization cost
// gate), external spanners call out to their own search, and interior
// operators materialize their children's relations.
func buildPhys(p *algebra.Plan, opts Options) physNode {
	switch p.Kind {
	case algebra.PScan:
		naive := opts.NaiveBackend || p.Auto.HasRefs() || p.Auto.NumStates() > opts.maxDeterminize()
		return &scanPhys{plan: p, functional: !opts.Schemaless, naive: naive}
	case algebra.PExtScan:
		return &extScanPhys{plan: p, functional: !opts.Schemaless}
	case algebra.PEmpty:
		return &emptyPhys{plan: p}
	default:
		kids := make([]physNode, len(p.Children))
		for i, c := range p.Children {
			kids[i] = buildPhys(c, opts)
		}
		return &matPhys{plan: p, kids: kids, sem: opts.sem()}
	}
}

// scanPhys runs a single vset-automaton.
type scanPhys struct {
	plan       *algebra.Plan
	functional bool
	naive      bool
}

func (s *scanPhys) lp() *algebra.Plan    { return s.plan }
func (s *scanPhys) children() []physNode { return nil }
func (s *scanPhys) streaming() bool      { return !s.naive }

func (s *scanPhys) backend() string {
	if s.naive {
		return "nfa-search"
	}
	return "constant-delay"
}

func (s *scanPhys) sem() vset.Semantics {
	if s.functional {
		return vset.Functional
	}
	return vset.Schemaless
}

func (s *scanPhys) eval(doc []byte) *spans.Relation {
	if s.naive {
		return vset.Eval(s.plan.Auto, doc, s.sem())
	}
	out := spans.NewRelation()
	s.each(doc, func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}

func (s *scanPhys) each(doc []byte, f func(spans.Tuple) bool) bool {
	if s.naive {
		return eachOf(s.eval(doc), f)
	}
	e := enum.NewEnumerator(automata.DeterminizeCached(s.plan.Auto), doc)
	ok := true
	wrapped := func(t spans.Tuple) bool {
		if !f(t) {
			ok = false
			return false
		}
		return true
	}
	if s.functional {
		e.EachTotal(s.plan.Auto.Vars, wrapped)
	} else {
		e.Each(wrapped)
	}
	e.Release()
	return ok
}

func (s *scanPhys) evalSLP(root *slp.Node, bytes func() []byte) *spans.Relation {
	out := spans.NewRelation()
	s.eachSLP(root, bytes, func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}

func (s *scanPhys) eachSLP(root *slp.Node, bytes func() []byte, f func(spans.Tuple) bool) bool {
	if s.naive {
		return eachOf(vset.Eval(s.plan.Auto, bytes(), s.sem()), f)
	}
	ix := slpmatch.NewIndex(automata.DeterminizeCached(s.plan.Auto))
	ok := true
	ix.Each(root, func(t spans.Tuple) bool {
		if s.functional && !t.TotalOn(s.plan.Auto.Vars) {
			return true
		}
		if !f(t) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// extScanPhys calls an external (refl) spanner's own search.
type extScanPhys struct {
	plan       *algebra.Plan
	functional bool
}

func (x *extScanPhys) lp() *algebra.Plan    { return x.plan }
func (x *extScanPhys) children() []physNode { return nil }
func (x *extScanPhys) backend() string      { return "refl-search" }
func (x *extScanPhys) streaming() bool      { return true }

func (x *extScanPhys) eval(doc []byte) *spans.Relation {
	return x.plan.Ext.Eval(doc, x.functional)
}

func (x *extScanPhys) each(doc []byte, f func(spans.Tuple) bool) bool {
	ok := true
	x.plan.Ext.Enumerate(doc, x.functional, func(t spans.Tuple) bool {
		if !f(t) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func (x *extScanPhys) evalSLP(root *slp.Node, bytes func() []byte) *spans.Relation {
	return x.eval(bytes())
}

func (x *extScanPhys) eachSLP(root *slp.Node, bytes func() []byte, f func(spans.Tuple) bool) bool {
	return x.each(bytes(), f)
}

// emptyPhys is a pruned subtree.
type emptyPhys struct {
	plan *algebra.Plan
}

func (e *emptyPhys) lp() *algebra.Plan    { return e.plan }
func (e *emptyPhys) children() []physNode { return nil }
func (e *emptyPhys) backend() string      { return "empty" }
func (e *emptyPhys) streaming() bool      { return true }

func (e *emptyPhys) eval([]byte) *spans.Relation { return spans.NewRelation() }
func (e *emptyPhys) each([]byte, func(spans.Tuple) bool) bool {
	return true
}
func (e *emptyPhys) evalSLP(*slp.Node, func() []byte) *spans.Relation { return spans.NewRelation() }
func (e *emptyPhys) eachSLP(*slp.Node, func() []byte, func(spans.Tuple) bool) bool {
	return true
}

// matPhys materializes its children and combines them with the
// relational operators — the classical bottom-up evaluation, used for
// whatever algebraic structure survives the rewrites.
type matPhys struct {
	plan *algebra.Plan
	kids []physNode
	sem  vset.Semantics
}

func (m *matPhys) lp() *algebra.Plan    { return m.plan }
func (m *matPhys) children() []physNode { return m.kids }
func (m *matPhys) backend() string      { return "materialize" }
func (m *matPhys) streaming() bool      { return false }

func (m *matPhys) eval(doc []byte) *spans.Relation {
	return m.combine(doc, func(k physNode) *spans.Relation { return k.eval(doc) })
}

func (m *matPhys) each(doc []byte, f func(spans.Tuple) bool) bool {
	return eachOf(m.eval(doc), f)
}

func (m *matPhys) evalSLP(root *slp.Node, bytes func() []byte) *spans.Relation {
	// bytes is only invoked by the PSelect case: a selection compares
	// substrings of the document, so it is the one interior operator
	// that forces (lazy, shared) decompression.
	return m.combineLazy(bytes, func(k physNode) *spans.Relation { return k.evalSLP(root, bytes) })
}

func (m *matPhys) eachSLP(root *slp.Node, bytes func() []byte, f func(spans.Tuple) bool) bool {
	return eachOf(m.evalSLP(root, bytes), f)
}

func (m *matPhys) combine(doc []byte, ev func(physNode) *spans.Relation) *spans.Relation {
	return m.combineLazy(func() []byte { return doc }, ev)
}

func (m *matPhys) combineLazy(doc func() []byte, ev func(physNode) *spans.Relation) *spans.Relation {
	switch m.plan.Kind {
	case algebra.PUnion:
		out := ev(m.kids[0])
		for _, k := range m.kids[1:] {
			out = out.Union(ev(k))
		}
		return out
	case algebra.PJoin:
		out := ev(m.kids[0])
		for _, k := range m.kids[1:] {
			out = out.Join(ev(k))
		}
		return out
	case algebra.PProject:
		return ev(m.kids[0]).Project(m.plan.Keep)
	case algebra.PSelect:
		return ev(m.kids[0]).SelectEqual(doc(), m.plan.Z)
	case algebra.PFuse:
		return ev(m.kids[0]).Fuse(m.plan.Lambda, m.plan.Target)
	}
	panic("plan: materializing backend: unexpected kind " + m.plan.Kind.String())
}

func eachOf(r *spans.Relation, f func(spans.Tuple) bool) bool {
	for _, t := range r.Tuples() {
		if !f(t) {
			return false
		}
	}
	return true
}

// lazyBytes decompresses an SLP at most once, on first use.
func lazyBytes(root *slp.Node) func() []byte {
	var once sync.Once
	var b []byte
	return func() []byte {
		once.Do(func() { b = root.Bytes() })
		return b
	}
}

// Planned is an executable plan: the rewritten logical tree plus the
// physical operators chosen for it. It is immutable and safe for
// concurrent use.
type Planned struct {
	logical      *algebra.Plan
	root         physNode
	opts         Options
	passNotes    []string
	requireTotal spans.VarSet

	lintOnce  sync.Once
	lintDiags []lint.Diagnostic
}

// Lint runs the plan-level spanlint passes (SP009, SP010) over the
// rewritten logical plan, configured with this plan's options so the
// cost thresholds match what evaluation will actually do. The result is
// computed once and cached — Planned itself is hash-consed, so a hot
// query lints exactly once per process.
func (pl *Planned) Lint() []lint.Diagnostic {
	pl.lintOnce.Do(func() {
		pl.lintDiags = lint.PlanDiags(pl.logical, lint.PlanConfig{
			MaxDeterminizeStates: pl.opts.MaxDeterminizeStates,
			Schemaless:           pl.opts.Schemaless,
		})
	})
	return pl.lintDiags
}

// Logical exposes the rewritten logical plan (EXPLAIN, tests).
func (pl *Planned) Logical() *algebra.Plan { return pl.logical }

// Passes lists the rewrite passes that changed the plan, in order.
func (pl *Planned) Passes() []string { return pl.passNotes }

// Streaming reports whether Enumerate yields tuples incrementally
// rather than materializing the full relation first.
func (pl *Planned) Streaming() bool { return pl.root.streaming() }

// DistinctEnumeration reports whether Enumerate delivers every result
// tuple exactly once, so collecting its output needs no deduplication.
// True for every root operator with an inherent distinctness guarantee:
// scans enumerate the runs of a deterministic automaton (one run per
// tuple), and materializing roots iterate a set-semantics relation.
// Only refl-spanner scans, whose search may revisit a tuple through
// different reference valuations, answer false.
func (pl *Planned) DistinctEnumeration() bool {
	_, refl := pl.root.(*extScanPhys)
	return !refl
}

// Eval materializes the plan's relation on doc.
func (pl *Planned) Eval(doc []byte) *spans.Relation {
	if len(pl.requireTotal) == 0 {
		return pl.root.eval(doc)
	}
	out := spans.NewRelation()
	pl.Enumerate(doc, func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}

// Enumerate streams the plan's tuples on doc; f returning false stops
// the enumeration early.
func (pl *Planned) Enumerate(doc []byte, f func(spans.Tuple) bool) {
	pl.root.each(doc, pl.filter(f))
}

// Count returns the number of result tuples on doc.
func (pl *Planned) Count(doc []byte) int {
	n, _ := pl.CountPoll(doc, nil)
	return n
}

// fastCountVars reports whether the plan counts via the tuple-free
// counting walks (a single non-naive scan) and, if so, the variable set
// tuples must be total on: the plan-level totality requirement plus the
// automaton's variables under functional semantics.
func (pl *Planned) fastCountVars() (*scanPhys, spans.VarSet, bool) {
	s, ok := pl.root.(*scanPhys)
	if !ok || s.naive {
		return nil, nil, false
	}
	vars := pl.requireTotal
	if s.functional {
		vars = vars.Union(s.plan.Auto.Vars)
	}
	return s, vars, true
}

// CountPoll counts result tuples without materializing them whenever the
// plan is a single constant-delay scan. Such plans first try the
// counting DP of internal/enum — output-independent time, no
// preprocessing tables — and fall back to the mask-accumulating
// enumeration walk when the DP declines (many required variables, or an
// int64-overflowing count). poll, if non-nil, is the cancellation hook
// of the service layer: it runs once per document position on the DP
// path and once per counted tuple on the walk paths; returning false
// aborts the count, reporting complete=false with the partial count
// (zero on the DP path — it counts nothing until it finishes). Other
// plan shapes fall back to counting the enumeration.
func (pl *Planned) CountPoll(doc []byte, poll func() bool) (int, bool) {
	if s, vars, ok := pl.fastCountVars(); ok {
		d := automata.DeterminizeCached(s.plan.Auto)
		if n, complete, ok := enum.CountTotalFast(d, doc, vars, poll); ok {
			return n, complete
		}
		e := enum.NewEnumerator(d, doc)
		n, complete := e.CountTotal(vars, poll)
		e.Release()
		return n, complete
	}
	return pl.countEach(poll, func(f func(spans.Tuple) bool) { pl.Enumerate(doc, f) })
}

func (pl *Planned) countEach(poll func() bool, run func(func(spans.Tuple) bool)) (int, bool) {
	n, complete := 0, true
	run(func(spans.Tuple) bool {
		n++
		if poll != nil && !poll() {
			complete = false
			return false
		}
		return true
	})
	return n, complete
}

// EvalSLP evaluates the plan directly on an SLP-compressed document;
// the raw text is only decompressed if an operator requires it.
func (pl *Planned) EvalSLP(root *slp.Node) *spans.Relation {
	if len(pl.requireTotal) == 0 {
		return pl.root.evalSLP(root, lazyBytes(root))
	}
	out := spans.NewRelation()
	pl.EnumerateSLP(root, func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}

// EnumerateSLP streams the plan's tuples on an SLP-compressed document.
func (pl *Planned) EnumerateSLP(root *slp.Node, f func(spans.Tuple) bool) {
	pl.root.eachSLP(root, lazyBytes(root), pl.filter(f))
}

// CountSLP counts result tuples on an SLP-compressed document.
func (pl *Planned) CountSLP(root *slp.Node) int {
	n, _ := pl.CountSLPPoll(root, nil)
	return n
}

// CountSLPPoll is CountPoll over an SLP-compressed document: single
// constant-delay scans count through the compressed index's tuple-free
// walk.
func (pl *Planned) CountSLPPoll(root *slp.Node, poll func() bool) (int, bool) {
	if s, vars, ok := pl.fastCountVars(); ok {
		ix := slpmatch.NewIndex(automata.DeterminizeCached(s.plan.Auto))
		return ix.CountTotal(root, vars, poll)
	}
	return pl.countEach(poll, func(f func(spans.Tuple) bool) { pl.EnumerateSLP(root, f) })
}

func (pl *Planned) filter(f func(spans.Tuple) bool) func(spans.Tuple) bool {
	if len(pl.requireTotal) == 0 {
		return f
	}
	rt := pl.requireTotal
	return func(t spans.Tuple) bool {
		if !t.TotalOn(rt) {
			return true
		}
		return f(t)
	}
}

// SingleScan reports whether the whole plan collapsed to one regular
// scan and, if so, returns its automaton. This is the gateway to the
// compressed-evaluation index: a single-automaton plan can be matched
// over SLPs with the shared matrix cache.
func (pl *Planned) SingleScan() (*automata.NFA, bool) {
	s, ok := pl.root.(*scanPhys)
	if !ok || s.naive || len(pl.requireTotal) > 0 {
		return nil, false
	}
	return s.plan.Auto, true
}
