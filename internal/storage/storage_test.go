package storage

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"docspanner"
)

func ts(i int) time.Time { return time.Unix(1700000000+int64(i), int64(i)*1000).UTC() }

func TestRecordRoundTrip(t *testing.T) {
	recs := []*record{
		{kind: recPutDoc, seq: 1, name: "doc-a", version: 1, stamp: ts(1).UnixNano(), flags: recFlagCompressed, data: []byte("abracadabra")},
		{kind: recEditDoc, seq: 2, name: "doc-a", version: 2, stamp: ts(2).UnixNano(), data: []byte("delete(doc-a,1,2)")},
		{kind: recDeleteDoc, seq: 3, name: "doc-a"},
		{kind: recPutQuery, seq: 4, name: "q", stamp: ts(4).UnixNano(), data: []byte(`{"src":"x{a}"}`)},
		{kind: recDeleteQuery, seq: 5, name: "q"},
		{kind: recPutView, seq: 6, name: "doc-a", query: "q"},
		{kind: recDeleteView, seq: 7, name: "doc-a", query: "q"},
		{kind: recPutDoc, seq: 8, name: "", version: 0, data: nil}, // degenerate fields
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	path := filepath.Join(t.TempDir(), "wal-0000000000000001.log")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []*record
	good, torn, err := scanWAL(path, func(r *record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log reported torn")
	}
	if good != int64(len(buf)) {
		t.Fatalf("good bytes = %d, want %d", good, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, want := range recs {
		g := got[i]
		if g.kind != want.kind || g.seq != want.seq || g.name != want.name ||
			g.query != want.query || g.version != want.version || g.stamp != want.stamp ||
			g.flags != want.flags || !bytes.Equal(g.data, want.data) {
			t.Errorf("record %d: got %+v, want %+v", i, g, want)
		}
	}
}

func TestScanWALTornAndCorrupt(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = appendFrame(buf, &record{kind: recPutDoc, seq: uint64(i + 1), name: "d", data: []byte("payload")})
	}
	// Frame boundaries for expectation checks.
	var ends []int64
	off := int64(0)
	for off < int64(len(buf)) {
		n := int64(binary.LittleEndian.Uint32(buf[off:]))
		off += frameOverhead + n
		ends = append(ends, off)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0000000000000001.log")

	wholeFramesBefore := func(l int64) (count int, end int64) {
		for _, e := range ends {
			if e <= l {
				count++
				end = e
			}
		}
		return
	}

	for l := int64(0); l <= int64(len(buf)); l++ {
		if err := os.WriteFile(path, buf[:l], 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		good, torn, err := scanWAL(path, func(*record) error { n++; return nil })
		if err != nil {
			t.Fatalf("len %d: %v", l, err)
		}
		wantN, wantGood := wholeFramesBefore(l)
		if n != wantN || good != wantGood {
			t.Fatalf("len %d: decoded %d records to offset %d, want %d to %d", l, n, good, wantN, wantGood)
		}
		if wantTorn := l != wantGood; torn != wantTorn {
			t.Fatalf("len %d: torn = %v, want %v", l, torn, wantTorn)
		}
	}

	// A flipped bit mid-log stops the scan at the preceding frame.
	corrupt := append([]byte(nil), buf...)
	corrupt[ends[1]+frameOverhead+2] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	good, torn, err := scanWAL(path, func(*record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || !torn || good != ends[1] {
		t.Fatalf("corrupt frame: decoded %d to offset %d (torn=%v), want 2 to %d (torn=true)", n, good, torn, ends[1])
	}
}

// model mirrors the externally observable store state for comparison.
type model struct {
	docs    map[string]string // name -> plain bytes
	docMeta map[string]DocState
	queries map[string]string // name -> spec JSON
	views   map[ViewKey]struct{}
}

func snapshotModel(t *testing.T, s *State) model {
	t.Helper()
	m := model{
		docs:    map[string]string{},
		docMeta: map[string]DocState{},
		queries: map[string]string{},
		views:   map[ViewKey]struct{}{},
	}
	for name, ds := range s.Docs {
		d, ok := s.DB.Get(name)
		if !ok {
			t.Fatalf("doc %q in metadata but not in DB", name)
		}
		m.docs[name] = string(d.Bytes())
		m.docMeta[name] = ds
	}
	if len(s.DB.Names()) != len(s.Docs) {
		t.Fatalf("DB holds %d documents, metadata %d", len(s.DB.Names()), len(s.Docs))
	}
	for name, qs := range s.Queries {
		m.queries[name] = string(qs.Spec)
	}
	for k := range s.Views {
		m.views[k] = struct{}{}
	}
	return m
}

func (m model) equal(o model) bool {
	return reflect.DeepEqual(m.docs, o.docs) && reflect.DeepEqual(m.docMeta, o.docMeta) &&
		reflect.DeepEqual(m.queries, o.queries) && reflect.DeepEqual(m.views, o.views)
}

// mutation drives one Backend call and the matching model expectation.
type mutation func(t *testing.T, b Backend, s *State)

// script is a deterministic workload exercising every record kind,
// including re-puts, edits on edited docs, re-registrations (view
// cascade), and deletes.
func script() []mutation {
	put := func(name, data string, compress bool, version int, i int) mutation {
		return func(t *testing.T, b Backend, s *State) {
			var d *docspanner.Document
			if compress {
				d = docspanner.CompressDocument([]byte(data))
			} else {
				d = docspanner.DocumentFromBytes([]byte(data))
			}
			if err := b.PutDoc(name, []byte(data), d, compress, version, ts(i)); err != nil {
				t.Fatal(err)
			}
			s.applyDoc(name, d, compress, version, ts(i))
		}
	}
	edit := func(name, expr string, version, i int) mutation {
		return func(t *testing.T, b Backend, s *State) {
			d, err := s.DB.Edit(name, expr)
			if err != nil {
				t.Fatalf("edit %q: %v", expr, err)
			}
			if err := b.EditDoc(name, expr, d, version, ts(i)); err != nil {
				t.Fatal(err)
			}
			s.Docs[name] = DocState{Name: name, Compressed: true, Version: version, Updated: ts(i)}
		}
	}
	delDoc := func(name string) mutation {
		return func(t *testing.T, b Backend, s *State) {
			if err := b.DeleteDoc(name); err != nil {
				t.Fatal(err)
			}
			s.applyDeleteDoc(name)
		}
	}
	putQuery := func(name, spec string, i int) mutation {
		return func(t *testing.T, b Backend, s *State) {
			if err := b.PutQuery(name, []byte(spec), ts(i)); err != nil {
				t.Fatal(err)
			}
			s.applyPutQuery(name, []byte(spec), ts(i))
		}
	}
	delQuery := func(name string) mutation {
		return func(t *testing.T, b Backend, s *State) {
			if err := b.DeleteQuery(name); err != nil {
				t.Fatal(err)
			}
			s.applyDeleteQuery(name)
		}
	}
	putView := func(doc, query string) mutation {
		return func(t *testing.T, b Backend, s *State) {
			if err := b.PutView(doc, query); err != nil {
				t.Fatal(err)
			}
			s.Views[ViewKey{Doc: doc, Query: query}] = struct{}{}
		}
	}
	delView := func(doc, query string) mutation {
		return func(t *testing.T, b Backend, s *State) {
			if err := b.DeleteView(doc, query); err != nil {
				t.Fatal(err)
			}
			delete(s.Views, ViewKey{Doc: doc, Query: query})
		}
	}
	return []mutation{
		put("alpha", "abracadabra, abracadabra!", true, 1, 1),
		put("beta", "to be or not to be", false, 1, 2),
		putQuery("caps", `{"src":"x{[a-z]+}"}`, 3),
		putView("alpha", "caps"),
		putView("beta", "caps"),
		edit("alpha", "concat(alpha,beta)", 2, 4),
		put("alpha", "rewritten from scratch", true, 3, 5),
		edit("gamma", "insert(extract(alpha,1,9), beta, 4)", 1, 6),
		putQuery("caps", `{"src":"y{[A-Z]+}"}`, 7), // re-register: drops caps views
		putView("gamma", "caps"),
		edit("gamma", "delete(gamma,2,5)", 2, 8),
		delView("gamma", "caps"),
		putView("alpha", "caps"),
		putQuery("other", `{"src":"z{.}"}`, 9),
		putView("beta", "other"),
		delDoc("beta"), // cascades beta's views
		delQuery("caps"),
		put("delta", "", true, 1, 10), // empty document
		edit("alpha", "copy(alpha,3,7,1)", 4, 11),
		delDoc("gamma"),
	}
}

// runScript applies muts[:n] to a fresh backend and model.
func runScript(t *testing.T, b Backend, muts []mutation) *State {
	t.Helper()
	want := NewState()
	for _, m := range muts {
		m(t, b, want)
	}
	return want
}

func openDir(t *testing.T, dir string) *Disk {
	t.Helper()
	d, err := OpenDisk(DiskOptions{Dir: dir, Fsync: FsyncNever, SnapshotBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir)
	if s, err := d.Load(); err != nil || s.Seq != 0 || len(s.Docs) != 0 {
		t.Fatalf("fresh load: %+v, %v", s, err)
	}
	if _, err := d.Load(); err == nil {
		t.Fatal("second Load succeeded")
	}
	want := runScript(t, d, script())
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("double close:", err)
	}

	re := openDir(t, dir)
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != uint64(len(script())) {
		t.Fatalf("recovered seq %d, want %d", got.Seq, len(script()))
	}
	if !snapshotModel(t, got).equal(snapshotModel(t, want)) {
		t.Fatalf("recovered state diverges:\n got %+v\nwant %+v", snapshotModel(t, got), snapshotModel(t, want))
	}
	if st := re.Stats(); st.RecoveredRecords != uint64(len(script())) || st.RecoveredTornTail {
		t.Fatalf("recovery stats: %+v", st)
	}
}

func TestDiskSnapshotAndRotation(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir)
	if _, err := d.Load(); err != nil {
		t.Fatal(err)
	}
	muts := script()
	want := NewState()
	for i, m := range muts {
		m(t, d, want)
		if i == 7 || i == 14 {
			if err := d.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Idempotent: nothing new since... there were mutations after 14, so
	// take one more and then a no-op repeat.
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Snapshots != 3 || st.LastSnapshotUnixNano == 0 || st.SnapshotBytes == 0 {
		t.Fatalf("snapshot stats: %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := listSeqFiles(dir, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshot generations, want 2: %v", len(snaps), snaps)
	}
	wals, err := listSeqFiles(dir, walPrefix, walSuffix)
	if err != nil {
		t.Fatal(err)
	}
	// Every retained log must be reachable from the oldest retained
	// snapshot; the pre-oldest logs must be gone.
	for _, start := range wals {
		if start != 1 && start <= snaps[0] {
			t.Fatalf("log %016x predates oldest retained snapshot %016x: %v", start, snaps[0], wals)
		}
	}

	re := openDir(t, dir)
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotModel(t, got).equal(snapshotModel(t, want)) {
		t.Fatalf("post-snapshot recovery diverges")
	}
	if got.Seq != uint64(len(muts)) {
		t.Fatalf("recovered seq %d, want %d", got.Seq, len(muts))
	}
}

func TestDiskSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir)
	if _, err := d.Load(); err != nil {
		t.Fatal(err)
	}
	muts := script()
	want := NewState()
	for i, m := range muts {
		m(t, d, want)
		if i == 7 || i == 14 {
			if err := d.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot; recovery must fall back to the
	// previous generation and replay the retained logs to the same state.
	snaps, _ := listSeqFiles(dir, snapPrefix, snapSuffix)
	if len(snaps) != 2 {
		t.Fatalf("want 2 snapshots, have %v", snaps)
	}
	path := filepath.Join(dir, snapName(snaps[1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openDir(t, dir)
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotModel(t, got).equal(snapshotModel(t, want)) {
		t.Fatal("fallback recovery diverges")
	}
	if got.Seq != uint64(len(muts)) {
		t.Fatalf("recovered seq %d, want %d", got.Seq, len(muts))
	}
}

func TestDiskAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(DiskOptions{Dir: dir, Fsync: FsyncNever, SnapshotBytes: 256, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(); err != nil {
		t.Fatal(err)
	}
	want := runScript(t, d, script())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Snapshots == 0 {
		t.Fatalf("no automatic snapshot despite 256-byte threshold: %+v", st)
	}
	re := openDir(t, dir)
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotModel(t, got).equal(snapshotModel(t, want)) {
		t.Fatal("recovery after automatic snapshots diverges")
	}
}

func TestDiskFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDisk(DiskOptions{Dir: dir, Fsync: pol, FsyncInterval: time.Millisecond, SnapshotBytes: -1, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Load(); err != nil {
				t.Fatal(err)
			}
			want := runScript(t, d, script())
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
			if pol == FsyncInterval {
				time.Sleep(20 * time.Millisecond) // let the ticker run at least once
			}
			st := d.Stats()
			if pol == FsyncAlways && st.Fsyncs == 0 {
				t.Fatal("FsyncAlways never fsynced")
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			re := openDir(t, dir)
			defer re.Close()
			got, err := re.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !snapshotModel(t, got).equal(snapshotModel(t, want)) {
				t.Fatalf("policy %v: recovery diverges", pol)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := map[string]FsyncPolicy{"always": FsyncAlways, "": FsyncAlways, "Interval": FsyncInterval, "never": FsyncNever}
	for in, want := range cases {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}

func TestMemoryBackendIsEphemeral(t *testing.T) {
	m := NewMemory()
	s, err := m.Load()
	if err != nil || s.Seq != 0 {
		t.Fatalf("Load: %+v, %v", s, err)
	}
	runScript(t, m, script())
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s2, err := m.Load()
	if err != nil || len(s2.Docs) != 0 || len(s2.Queries) != 0 {
		t.Fatalf("memory backend retained state: %+v, %v", s2, err)
	}
	if st := m.Stats(); st.Kind != "memory" || st.Persistent {
		t.Fatalf("stats: %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// Two backends must never share a data directory: independent file
// handles appending to the same WAL interleave frames into damage no
// torn-tail tolerance can repair. The lock is a kernel flock, so it
// dies with the process (kill -9 leaves no stale lock) and a clean
// Close releases it for the next opener.
func TestOpenDiskExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(DiskOptions{Dir: dir, Fsync: FsyncNever, SnapshotBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	if _, err := OpenDisk(DiskOptions{Dir: dir, Fsync: FsyncNever, SnapshotBytes: -1, Logf: t.Logf}); err == nil {
		t.Fatal("second OpenDisk on a held directory succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := OpenDisk(DiskOptions{Dir: dir, Fsync: FsyncNever, SnapshotBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	re.Close()
}

// Crash (the kill -9 stand-in) must also free the directory for the
// next recovery, without flushing anything on the way out.
func TestOpenDiskAfterCrashRelock(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(DiskOptions{Dir: dir, Fsync: FsyncAlways, SnapshotBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	if err := d.PutQuery("q", []byte(`{"src":".*"}`), time.Unix(1, 0)); err != nil {
		t.Fatalf("PutQuery: %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, err := OpenDisk(DiskOptions{Dir: dir, Fsync: FsyncAlways, SnapshotBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	state, err := re.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, ok := state.Queries["q"]; !ok {
		t.Fatal("synced record lost across crash")
	}
}
