package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"docspanner"
)

// The WAL is a sequence of frames, each
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32C (Castagnoli) of the payload (little-endian)
//	payload one encoded record
//
// A record payload is
//
//	byte    kind
//	uvarint seq           (contiguous, 1-based across the store's life)
//	string  name          (uvarint length + bytes; doc or query name)
//	string  query         (view records; "" otherwise)
//	uvarint version       (document records; 0 otherwise)
//	varint  stamp         (unix-nano updated/registered time; 0 otherwise)
//	byte    flags         (bit 0: document is SLP-compressed)
//	bytes   data          (uvarint length + bytes: put = raw document,
//	                       edit = CDE expression, put-query = spec JSON)
//
// Every kind encodes every field — the few spare zero bytes buy one
// encoder, one decoder, and no per-kind drift.

type recKind uint8

const (
	recPutDoc recKind = iota + 1
	recEditDoc
	recDeleteDoc
	recPutQuery
	recDeleteQuery
	recPutView
	recDeleteView
)

func (k recKind) String() string {
	switch k {
	case recPutDoc:
		return "put-doc"
	case recEditDoc:
		return "edit-doc"
	case recDeleteDoc:
		return "delete-doc"
	case recPutQuery:
		return "put-query"
	case recDeleteQuery:
		return "delete-query"
	case recPutView:
		return "put-view"
	case recDeleteView:
		return "delete-view"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

const recFlagCompressed = 0x1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes bounds a single decoded frame; anything larger is
// corruption, not data (document bodies are bounded by the server's
// MaxBodyBytes, far below this).
const maxRecordBytes = 1 << 31

// record is one decoded WAL entry.
type record struct {
	kind    recKind
	seq     uint64
	name    string
	query   string
	version int
	stamp   int64
	flags   byte
	data    []byte
}

// frameOverhead is the per-record framing cost in bytes.
const frameOverhead = 8

// appendFrame appends the framed encoding of r to buf.
func appendFrame(buf []byte, r *record) []byte {
	head := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC placeholder
	buf = append(buf, byte(r.kind))
	buf = binary.AppendUvarint(buf, r.seq)
	buf = binary.AppendUvarint(buf, uint64(len(r.name)))
	buf = append(buf, r.name...)
	buf = binary.AppendUvarint(buf, uint64(len(r.query)))
	buf = append(buf, r.query...)
	buf = binary.AppendUvarint(buf, uint64(r.version))
	buf = binary.AppendVarint(buf, r.stamp)
	buf = append(buf, r.flags)
	buf = binary.AppendUvarint(buf, uint64(len(r.data)))
	buf = append(buf, r.data...)
	payload := buf[head+frameOverhead:]
	binary.LittleEndian.PutUint32(buf[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[head+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeRecord parses one frame payload.
func decodeRecord(payload []byte) (*record, error) {
	r := &record{}
	if len(payload) < 1 {
		return nil, fmt.Errorf("storage: empty record payload")
	}
	r.kind = recKind(payload[0])
	if r.kind < recPutDoc || r.kind > recDeleteView {
		return nil, fmt.Errorf("storage: unknown record kind %d", payload[0])
	}
	p := payload[1:]
	var err error
	if r.seq, p, err = takeUvarint(p); err != nil {
		return nil, fmt.Errorf("storage: record seq: %w", err)
	}
	var b []byte
	if b, p, err = takeBytes(p); err != nil {
		return nil, fmt.Errorf("storage: record name: %w", err)
	}
	r.name = string(b)
	if b, p, err = takeBytes(p); err != nil {
		return nil, fmt.Errorf("storage: record query: %w", err)
	}
	r.query = string(b)
	var v uint64
	if v, p, err = takeUvarint(p); err != nil {
		return nil, fmt.Errorf("storage: record version: %w", err)
	}
	r.version = int(v)
	var sv int64
	if sv, p, err = takeVarint(p); err != nil {
		return nil, fmt.Errorf("storage: record stamp: %w", err)
	}
	r.stamp = sv
	if len(p) < 1 {
		return nil, fmt.Errorf("storage: record flags: short payload")
	}
	r.flags = p[0]
	p = p[1:]
	if b, p, err = takeBytes(p); err != nil {
		return nil, fmt.Errorf("storage: record data: %w", err)
	}
	r.data = b
	if len(p) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes after record", len(p))
	}
	return r, nil
}

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, p[n:], nil
}

func takeVarint(p []byte) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad varint")
	}
	return v, p[n:], nil
}

func takeBytes(p []byte) ([]byte, []byte, error) {
	v, p, err := takeUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if v > uint64(len(p)) {
		return nil, nil, fmt.Errorf("length %d exceeds remaining %d", v, len(p))
	}
	return p[:v], p[v:], nil
}

// replay folds one WAL record into the state, reconstructing documents
// from the logged operation: a put re-derives the SLP from the raw bytes
// (Re-Pair is deterministic), an edit re-evaluates the CDE expression
// against the recovered database in O(|φ|·log d). Timestamps and
// versions come from the record, never from the clock — recovery must be
// invisible to clients watching versions and updated stamps.
func (s *State) replay(r *record) error {
	switch r.kind {
	case recPutDoc:
		var d *docspanner.Document
		if r.flags&recFlagCompressed != 0 {
			d = docspanner.CompressDocument(r.data)
		} else {
			d = docspanner.DocumentFromBytes(r.data)
		}
		s.applyDoc(r.name, d, r.flags&recFlagCompressed != 0, r.version, time.Unix(0, r.stamp).UTC())
	case recEditDoc:
		d, err := s.DB.Edit(r.name, string(r.data))
		if err != nil {
			return fmt.Errorf("storage: replaying edit %q of %q (seq %d): %w", r.data, r.name, r.seq, err)
		}
		s.applyDoc(r.name, d, true, r.version, time.Unix(0, r.stamp).UTC())
	case recDeleteDoc:
		s.applyDeleteDoc(r.name)
	case recPutQuery:
		s.applyPutQuery(r.name, r.data, time.Unix(0, r.stamp).UTC())
	case recDeleteQuery:
		s.applyDeleteQuery(r.name)
	case recPutView:
		s.Views[ViewKey{Doc: r.name, Query: r.query}] = struct{}{}
	case recDeleteView:
		delete(s.Views, ViewKey{Doc: r.name, Query: r.query})
	default:
		return fmt.Errorf("storage: replaying unknown record kind %d", r.kind)
	}
	return nil
}
