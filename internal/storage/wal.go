package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// FsyncPolicy says when appended WAL records become durable.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs in Sync, i.e. before every mutation is
	// acknowledged. Group commit: concurrent callers share one fsync.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background ticker; a crash loses at most
	// the last interval of acknowledged mutations (never corrupts — the
	// tail is torn, not wrong).
	FsyncInterval
	// FsyncNever leaves flushing to the OS. Crash loss is unbounded;
	// useful for benchmarks and bulk loads.
	FsyncNever
)

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

const (
	walPrefix  = "wal-"
	walSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// walName names the log whose first record has sequence number seq.
func walName(seq uint64) string { return fmt.Sprintf("%s%016x%s", walPrefix, seq, walSuffix) }

// snapName names the snapshot whose state includes every record up to
// and including seq.
func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }

// parseSeqName extracts the hex sequence number from a wal/snap file
// name; ok is false for names that are not ours.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSeqFiles returns the directory's wal or snapshot files sorted by
// their embedded sequence number.
func listSeqFiles(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if v, ok := parseSeqName(e.Name(), prefix, suffix); ok {
			seqs = append(seqs, v)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanWAL streams the decoded records of one log file into fn, in order.
// It returns the byte offset of the end of the last whole, checksummed
// frame and whether bytes after it formed a torn (incomplete or
// corrupt) final frame. An error from fn aborts the scan; framing
// damage is not an error here — the caller decides whether a torn tail
// is tolerable (it is only at the very end of the newest log).
func scanWAL(path string, fn func(*record) error) (goodBytes int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := int64(0)
	for int64(len(data))-off >= frameOverhead {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || off+frameOverhead+n > int64(len(data)) {
			return off, true, nil
		}
		payload := data[off+frameOverhead : off+frameOverhead+n]
		if crc32.Checksum(payload, castagnoli) != want {
			return off, true, nil
		}
		r, derr := decodeRecord(payload)
		if derr != nil {
			// The checksum matched, so these bytes are what was written —
			// an undecodable record is a bug or version skew, not a torn
			// append. Fail loudly.
			return off, false, fmt.Errorf("storage: %s at offset %d: %w", filepath.Base(path), off, derr)
		}
		if err := fn(r); err != nil {
			return off, false, err
		}
		off += frameOverhead + n
	}
	return off, off != int64(len(data)), nil
}

// walStats are cumulative append/fsync counters, shared by every log
// file generation a backend opens so /metrics sees monotone counters
// across rotations.
type walStats struct {
	records  atomic.Uint64
	bytes    atomic.Uint64
	fsyncs   atomic.Uint64
	fsyncTot atomic.Int64
	fsyncMax atomic.Int64
}

// wal is an append-only log file plus the bookkeeping for group-commit
// fsync. Appends are serialized by the owning backend's mutex; Sync is
// called outside it and synchronizes independently.
type wal struct {
	f     *os.File
	path  string
	size  int64 // durable-scan end at open + bytes appended since
	stats *walStats

	appended atomic.Uint64 // appends completed
	synced   atomic.Uint64 // appends covered by a finished fsync

	syncMu chan struct{} // capacity-1 semaphore serializing fsyncs
}

// openWAL opens (creating if needed) the log at path for appending at
// offset size — the end of its last whole frame, as found by scanWAL.
// Any torn tail beyond it is truncated away so new frames start clean.
func openWAL(path string, size int64, stats *walStats) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncating torn tail of %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, size: size, stats: stats, syncMu: make(chan struct{}, 1)}, nil
}

// append writes one framed record. Callers serialize appends (the
// backend's mutex); the frame is written with a single Write so a crash
// tears at most the final frame.
func (w *wal) append(buf []byte) error {
	n, err := w.f.Write(buf)
	w.size += int64(n)
	if err != nil {
		return err
	}
	w.stats.records.Add(1)
	w.stats.bytes.Add(uint64(len(buf)))
	w.appended.Add(1)
	return nil
}

// sync makes every append that completed before the call durable,
// sharing fsyncs across concurrent callers: whoever holds the semaphore
// syncs for everyone who arrived while they waited.
func (w *wal) sync() error {
	target := w.appended.Load()
	for {
		if w.synced.Load() >= target {
			return nil
		}
		w.syncMu <- struct{}{}
		if w.synced.Load() >= target {
			<-w.syncMu
			return nil
		}
		covers := w.appended.Load()
		start := time.Now()
		err := w.f.Sync()
		d := time.Since(start).Nanoseconds()
		w.stats.fsyncs.Add(1)
		w.stats.fsyncTot.Add(d)
		for {
			prev := w.stats.fsyncMax.Load()
			if d <= prev || w.stats.fsyncMax.CompareAndSwap(prev, d) {
				break
			}
		}
		if err == nil {
			for {
				cur := w.synced.Load()
				if cur >= covers || w.synced.CompareAndSwap(cur, covers) {
					break
				}
			}
		}
		<-w.syncMu
		if err != nil {
			return err
		}
	}
}

// close fsyncs and closes the file.
func (w *wal) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// fsyncDir fsyncs a directory, making renames and creates inside it
// durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
