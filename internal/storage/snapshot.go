package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"docspanner"
)

// A snapshot file is
//
//	magic   "SPN1"
//	uint32  metadata length (little-endian)
//	uint32  CRC-32C of the metadata (little-endian)
//	bytes   metadata: JSON snapMeta
//	frame   the SLP database, as DocDB.WriteToChecked
//
// Metadata and database are independently checksummed, so any
// truncation or corruption fails the load and recovery falls back to
// the previous snapshot generation.

const snapMagic = "SPN1"

type snapMeta struct {
	Seq     uint64         `json:"seq"`
	Docs    []snapDoc      `json:"docs"`
	Queries []snapQuery    `json:"queries"`
	Views   []snapViewMeta `json:"views"`
}

type snapDoc struct {
	Name       string `json:"name"`
	Compressed bool   `json:"compressed"`
	Version    int    `json:"version"`
	Updated    int64  `json:"updated"` // unix nanos
}

type snapQuery struct {
	Name       string          `json:"name"`
	Spec       json.RawMessage `json:"spec"`
	Registered int64           `json:"registered"` // unix nanos
}

type snapViewMeta struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
}

// writeSnapshot durably writes s as dir's snapshot for s.Seq: staged in
// a temp file, fsynced, renamed into place, directory fsynced. Returns
// the snapshot's size in bytes.
func writeSnapshot(dir string, s *State) (int64, error) {
	meta := snapMeta{Seq: s.Seq}
	for _, d := range s.SortedDocs() {
		meta.Docs = append(meta.Docs, snapDoc{Name: d.Name, Compressed: d.Compressed, Version: d.Version, Updated: d.Updated.UnixNano()})
	}
	for _, q := range s.SortedQueries() {
		meta.Queries = append(meta.Queries, snapQuery{Name: q.Name, Spec: q.Spec, Registered: q.Registered.UnixNano()})
	}
	for _, v := range s.SortedViews() {
		meta.Views = append(meta.Views, snapViewMeta{Doc: v.Doc, Query: v.Query})
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return 0, err
	}

	final := filepath.Join(dir, snapName(s.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	var size int64
	bw := bufio.NewWriter(f)
	head := make([]byte, 0, len(snapMagic)+8)
	head = append(head, snapMagic...)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(metaJSON)))
	head = binary.LittleEndian.AppendUint32(head, crc32.Checksum(metaJSON, castagnoli))
	for _, chunk := range [][]byte{head, metaJSON} {
		n, werr := bw.Write(chunk)
		size += int64(n)
		if werr != nil {
			f.Close()
			return size, werr
		}
	}
	n, err := s.DB.WriteToChecked(bw)
	size += n
	if err != nil {
		f.Close()
		return size, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return size, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return size, err
	}
	if err := f.Close(); err != nil {
		return size, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return size, err
	}
	return size, fsyncDir(dir)
}

// readSnapshot loads one snapshot file into a State, verifying both
// checksums before trusting anything.
func readSnapshot(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)

	head := make([]byte, len(snapMagic)+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("storage: reading snapshot header: %w", err)
	}
	if string(head[:4]) != snapMagic {
		return nil, fmt.Errorf("storage: bad snapshot magic %q", head[:4])
	}
	metaLen := binary.LittleEndian.Uint32(head[4:8])
	metaCRC := binary.LittleEndian.Uint32(head[8:12])
	if metaLen > maxRecordBytes {
		return nil, fmt.Errorf("storage: snapshot metadata length %d exceeds limit", metaLen)
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaJSON); err != nil {
		return nil, fmt.Errorf("storage: reading snapshot metadata: %w", err)
	}
	if got := crc32.Checksum(metaJSON, castagnoli); got != metaCRC {
		return nil, fmt.Errorf("storage: snapshot metadata CRC mismatch (got %08x, want %08x)", got, metaCRC)
	}
	var meta snapMeta
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return nil, fmt.Errorf("storage: decoding snapshot metadata: %w", err)
	}

	db, err := docspanner.ReadDocDBChecked(br)
	if err != nil {
		return nil, fmt.Errorf("storage: loading snapshot database: %w", err)
	}

	s := NewState()
	s.Seq = meta.Seq
	s.DB = db
	for _, d := range meta.Docs {
		if _, ok := db.Get(d.Name); !ok {
			return nil, fmt.Errorf("storage: snapshot lists document %q absent from its database", d.Name)
		}
		s.Docs[d.Name] = DocState{Name: d.Name, Compressed: d.Compressed, Version: d.Version, Updated: time.Unix(0, d.Updated).UTC()}
	}
	for _, q := range meta.Queries {
		s.Queries[q.Name] = QueryState{Name: q.Name, Spec: q.Spec, Registered: time.Unix(0, q.Registered).UTC()}
	}
	for _, v := range meta.Views {
		s.Views[ViewKey{Doc: v.Doc, Query: v.Query}] = struct{}{}
	}
	return s, nil
}
