package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"docspanner"
)

// DiskOptions configures a disk backend.
type DiskOptions struct {
	// Dir is the data directory; created if missing.
	Dir string
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotBytes triggers an automatic snapshot + log rotation when
	// the live WAL grows past it (default 64 MiB; negative disables
	// automatic snapshots).
	SnapshotBytes int64
	// Logf receives recovery and background-maintenance messages; nil
	// discards them.
	Logf func(format string, args ...any)
}

// Disk is the durable backend: every mutation appends one logical
// record to a CRC-framed write-ahead log, a shadow State mirrors the
// server's store (sharing the immutable SLP nodes of the documents the
// server passes in), and snapshots serialize the shadow's grammar-sized
// database so the log can rotate. See the package comment for the
// recovery contract.
type Disk struct {
	opts DiskOptions

	// mu serializes sequence assignment, log appends, shadow updates,
	// and log rotation, so WAL order is exactly apply order.
	mu     sync.Mutex
	w      *wal
	shadow *State
	buf    []byte
	closed bool

	lock *dirLock // exclusive ownership of the data directory

	loadMu    sync.Mutex
	recovered *State // handed out (cloned) by Load, then dropped

	stats             walStats
	recoveredRecords  uint64
	recoveredTornTail bool

	snapMu      sync.Mutex // serializes snapshot writes
	snapPending atomic.Bool
	snapWG      sync.WaitGroup
	snapCount   atomic.Uint64
	snapNanos   atomic.Int64
	snapBytes   atomic.Int64
	lastSnapSeq atomic.Uint64

	tickStop chan struct{}
	tickWG   sync.WaitGroup
}

// OpenDisk opens (or initializes) the data directory and recovers its
// state: the newest loadable snapshot, then the log tail replayed in
// sequence order. A torn final record — the legitimate residue of a
// crash mid-append — is truncated; any other framing damage, sequence
// gap, or replay failure is a hard error, because the directory then
// does not describe a consistent store. The directory is held under an
// exclusive flock for the backend's lifetime, so a second process
// pointed at the same -data-dir fails fast instead of interleaving
// appends into the same log.
func OpenDisk(opts DiskOptions) (*Disk, error) {
	if opts.Dir == "" {
		return nil, errors.New("storage: disk backend needs a directory")
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = 64 << 20
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			lock.release()
		}
	}()

	d := &Disk{opts: opts, lock: lock, tickStop: make(chan struct{})}

	// Orphaned staging files from an interrupted snapshot are garbage.
	if entries, err := os.ReadDir(opts.Dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(opts.Dir, e.Name()))
			}
		}
	}

	state := NewState()
	snaps, err := listSeqFiles(opts.Dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(opts.Dir, snapName(snaps[i]))
		s, serr := readSnapshot(path)
		if serr != nil {
			opts.Logf("storage: snapshot %s unusable, falling back: %v", filepath.Base(path), serr)
			continue
		}
		state = s
		d.lastSnapSeq.Store(snaps[i])
		if fi, ferr := os.Stat(path); ferr == nil {
			d.snapNanos.Store(fi.ModTime().UnixNano())
			d.snapBytes.Store(fi.Size())
		}
		break
	}

	wals, err := listSeqFiles(opts.Dir, walPrefix, walSuffix)
	if err != nil {
		return nil, err
	}
	next := state.Seq + 1
	var lastGood int64
	var torn bool
	for i, start := range wals {
		name := walName(start)
		good, t, serr := scanWAL(filepath.Join(opts.Dir, name), func(r *record) error {
			switch {
			case r.seq < next:
				return nil // predates the snapshot; rotation hasn't collected it yet
			case r.seq > next:
				return fmt.Errorf("storage: %s: sequence gap (want %d, found %d); a log covering the gap is missing", name, next, r.seq)
			}
			if rerr := state.replay(r); rerr != nil {
				return rerr
			}
			state.Seq = r.seq
			next++
			d.recoveredRecords++
			return nil
		})
		if serr != nil {
			return nil, serr
		}
		if t && i != len(wals)-1 {
			return nil, fmt.Errorf("storage: %s: torn frame in a non-final log; refusing to drop interior history", name)
		}
		if i == len(wals)-1 {
			lastGood, torn = good, t
		}
	}
	d.recoveredTornTail = torn
	if torn {
		opts.Logf("storage: truncated torn final record in %s at offset %d", walName(wals[len(wals)-1]), lastGood)
	}

	var w *wal
	if len(wals) > 0 {
		w, err = openWAL(filepath.Join(opts.Dir, walName(wals[len(wals)-1])), lastGood, &d.stats)
	} else {
		w, err = openWAL(filepath.Join(opts.Dir, walName(state.Seq+1)), 0, &d.stats)
	}
	if err != nil {
		return nil, err
	}
	d.w = w
	d.shadow = state
	d.recovered = state.clone()

	if opts.Fsync == FsyncInterval {
		d.tickWG.Add(1)
		go d.flushLoop()
	}
	opened = true
	return d, nil
}

func (d *Disk) flushLoop() {
	defer d.tickWG.Done()
	t := time.NewTicker(d.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-d.tickStop:
			return
		case <-t.C:
			d.mu.Lock()
			w := d.w
			d.mu.Unlock()
			if err := w.sync(); err != nil {
				d.opts.Logf("storage: background fsync: %v", err)
			}
		}
	}
}

// Load hands the caller the recovered state exactly once. The returned
// state is a clone of the backend's shadow — the server and the backend
// mutate separate maps under separate locks, sharing only the immutable
// SLP nodes.
func (d *Disk) Load() (*State, error) {
	d.loadMu.Lock()
	defer d.loadMu.Unlock()
	if d.recovered == nil {
		return nil, errors.New("storage: Load called twice")
	}
	s := d.recovered
	d.recovered = nil
	return s, nil
}

// logAndApply assigns the next sequence number, appends the framed
// record, and folds it into the shadow, all under one lock so log order
// is apply order. It may kick off an automatic snapshot.
func (d *Disk) logAndApply(r *record, apply func(*State)) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("storage: backend is closed")
	}
	r.seq = d.shadow.Seq + 1
	d.buf = appendFrame(d.buf[:0], r)
	if err := d.w.append(d.buf); err != nil {
		d.mu.Unlock()
		return fmt.Errorf("storage: appending %s record: %w", r.kind, err)
	}
	apply(d.shadow)
	d.shadow.Seq = r.seq
	needSnap := d.opts.SnapshotBytes > 0 && d.w.size > d.opts.SnapshotBytes
	d.mu.Unlock()

	if needSnap && d.snapPending.CompareAndSwap(false, true) {
		d.snapWG.Add(1)
		go func() {
			defer d.snapWG.Done()
			defer d.snapPending.Store(false)
			if err := d.Snapshot(); err != nil {
				d.opts.Logf("storage: automatic snapshot: %v", err)
			}
		}()
	}
	return nil
}

func (d *Disk) PutDoc(name string, data []byte, doc *docspanner.Document, compressed bool, version int, updated time.Time) error {
	var flags byte
	if compressed {
		flags = recFlagCompressed
	}
	r := &record{kind: recPutDoc, name: name, version: version, stamp: updated.UnixNano(), flags: flags, data: data}
	return d.logAndApply(r, func(s *State) { s.applyDoc(name, doc, compressed, version, updated) })
}

func (d *Disk) EditDoc(name, expr string, doc *docspanner.Document, version int, updated time.Time) error {
	r := &record{kind: recEditDoc, name: name, version: version, stamp: updated.UnixNano(), data: []byte(expr)}
	return d.logAndApply(r, func(s *State) { s.applyDoc(name, doc, true, version, updated) })
}

func (d *Disk) DeleteDoc(name string) error {
	return d.logAndApply(&record{kind: recDeleteDoc, name: name}, func(s *State) { s.applyDeleteDoc(name) })
}

func (d *Disk) PutQuery(name string, spec []byte, registered time.Time) error {
	r := &record{kind: recPutQuery, name: name, stamp: registered.UnixNano(), data: spec}
	return d.logAndApply(r, func(s *State) { s.applyPutQuery(name, spec, registered) })
}

func (d *Disk) DeleteQuery(name string) error {
	return d.logAndApply(&record{kind: recDeleteQuery, name: name}, func(s *State) { s.applyDeleteQuery(name) })
}

func (d *Disk) PutView(doc, query string) error {
	return d.logAndApply(&record{kind: recPutView, name: doc, query: query}, func(s *State) {
		s.Views[ViewKey{Doc: doc, Query: query}] = struct{}{}
	})
}

func (d *Disk) DeleteView(doc, query string) error {
	return d.logAndApply(&record{kind: recDeleteView, name: doc, query: query}, func(s *State) {
		delete(s.Views, ViewKey{Doc: doc, Query: query})
	})
}

// Sync is the durability barrier: under FsyncAlways it blocks until
// every record appended so far is on disk (group commit — concurrent
// callers share one fsync). Interval and never policies return
// immediately; their loss windows are documented on the policy.
func (d *Disk) Sync() error {
	if d.opts.Fsync != FsyncAlways {
		return nil
	}
	d.mu.Lock()
	w := d.w
	d.mu.Unlock()
	return w.sync()
}

// Snapshot rotates the log and writes a snapshot of the current state:
// the live WAL is sealed (fsynced) and a fresh one opened under the
// lock, then the sealed history is serialized outside it while appends
// continue. Old logs and snapshots beyond two generations are collected
// only after the new snapshot is durable.
func (d *Disk) Snapshot() error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("storage: backend is closed")
	}
	if d.shadow.Seq == d.lastSnapSeq.Load() {
		d.mu.Unlock()
		return nil // nothing since the last snapshot
	}
	clone := d.shadow.clone()
	oldW := d.w
	// Seal the outgoing log BEFORE publishing its successor: the moment
	// d.w is swapped, Sync fsyncs only the new (empty) file and returns,
	// so every record in the old one must already be durable — otherwise
	// a writer whose append landed just before the swap would have its
	// Sync come back immediately and acknowledge a mutation a crash could
	// still lose. One fsync under the append lock per rotation is the
	// price of that ordering.
	if err := oldW.sync(); err != nil {
		d.mu.Unlock()
		return fmt.Errorf("storage: sealing rotated log: %w", err)
	}
	neww, err := openWAL(filepath.Join(d.opts.Dir, walName(clone.Seq+1)), 0, &d.stats)
	if err != nil {
		d.mu.Unlock()
		return fmt.Errorf("storage: rotating log: %w", err)
	}
	d.w = neww
	d.mu.Unlock()

	// Already synced above; this just releases the file handle.
	if err := oldW.close(); err != nil {
		return fmt.Errorf("storage: closing rotated log: %w", err)
	}
	size, err := writeSnapshot(d.opts.Dir, clone)
	if err != nil {
		// The sealed log survives on disk; recovery still replays it on
		// top of the previous snapshot.
		return fmt.Errorf("storage: writing snapshot: %w", err)
	}
	d.snapCount.Add(1)
	d.snapNanos.Store(time.Now().UnixNano())
	d.snapBytes.Store(size)
	d.lastSnapSeq.Store(clone.Seq)
	d.collect()
	return nil
}

// collect removes snapshots beyond the two newest generations and every
// log the retained snapshots no longer need. A log is dead once some
// later log starts at or before the oldest retained snapshot's
// successor — i.e. even a fallback to that snapshot replays from the
// later log.
func (d *Disk) collect() {
	snaps, err := listSeqFiles(d.opts.Dir, snapPrefix, snapSuffix)
	if err != nil || len(snaps) == 0 {
		return
	}
	keep := snaps
	if len(keep) > 2 {
		for _, seq := range keep[:len(keep)-2] {
			os.Remove(filepath.Join(d.opts.Dir, snapName(seq)))
		}
		keep = keep[len(keep)-2:]
	}
	oldest := keep[0]
	wals, err := listSeqFiles(d.opts.Dir, walPrefix, walSuffix)
	if err != nil {
		return
	}
	for i, start := range wals {
		if i+1 < len(wals) && wals[i+1] <= oldest+1 {
			os.Remove(filepath.Join(d.opts.Dir, walName(start)))
		}
	}
}

// Stats reports the durability counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	size := d.w.size
	d.mu.Unlock()
	return Stats{
		Kind:                 "disk",
		Persistent:           true,
		WALRecords:           d.stats.records.Load(),
		WALAppendedBytes:     d.stats.bytes.Load(),
		WALSizeBytes:         size,
		Fsyncs:               d.stats.fsyncs.Load(),
		FsyncTotalNanos:      d.stats.fsyncTot.Load(),
		FsyncMaxNanos:        d.stats.fsyncMax.Load(),
		Snapshots:            d.snapCount.Load(),
		LastSnapshotUnixNano: d.snapNanos.Load(),
		SnapshotBytes:        d.snapBytes.Load(),
		RecoveredRecords:     d.recoveredRecords,
		RecoveredTornTail:    d.recoveredTornTail,
	}
}

// Crash abandons the backend the way a dying process would: the
// directory lock and file handles are dropped with no flush and no
// final fsync, leaving whatever the OS has (including an unsynced or
// torn tail) for the next OpenDisk to recover. Crash-recovery tests use
// it where a real deployment would take a kill -9; unlike a real crash
// it does wait out an in-flight automatic snapshot, since an
// in-process goroutine can't be killed mid-write.
func (d *Disk) Crash() error {
	d.snapWG.Wait()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	w := d.w
	d.mu.Unlock()

	if d.opts.Fsync == FsyncInterval {
		close(d.tickStop)
	}
	d.tickWG.Wait()
	err := w.f.Close() // no sync — the point of a crash
	if rerr := d.lock.release(); err == nil {
		err = rerr
	}
	return err
}

// Close flushes the log and releases the backend. In-flight automatic
// snapshots finish first.
func (d *Disk) Close() error {
	// Let a pending automatic snapshot finish before sealing; the caller
	// has stopped mutating, so no new one can start after the wait.
	d.snapWG.Wait()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	w := d.w
	d.mu.Unlock()

	if d.opts.Fsync == FsyncInterval {
		close(d.tickStop)
	}
	d.tickWG.Wait()
	err := w.close()
	if rerr := d.lock.release(); err == nil {
		err = rerr
	}
	return err
}
