package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"docspanner"
)

// TestCrashRecoveryEveryByteBoundary is the crash-consistency sweep: it
// records the WAL a deterministic mutation sequence produces, then for
// every prefix length of that log — every possible crash point of a
// single-file history — reopens the directory and asserts the recovered
// state equals the in-memory model after exactly the mutations whose
// frames survived whole. Cutting inside a frame must recover as if the
// mutation never happened (torn-tail truncation), and cutting between
// frames must lose nothing.
func TestCrashRecoveryEveryByteBoundary(t *testing.T) {
	muts := script()

	// Run the script once, capturing the model after every mutation and
	// the WAL byte offset at which each mutation's frame ends.
	srcDir := t.TempDir()
	d := openDir(t, srcDir)
	if _, err := d.Load(); err != nil {
		t.Fatal(err)
	}
	want := NewState()
	models := []model{snapshotModel(t, want)} // models[k] = state after k mutations
	frameEnds := []int64{0}
	for _, m := range muts {
		m(t, d, want)
		models = append(models, snapshotModel(t, want))
		d.mu.Lock()
		frameEnds = append(frameEnds, d.w.size)
		d.mu.Unlock()
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(srcDir, walName(1))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != frameEnds[len(frameEnds)-1] {
		t.Fatalf("log is %d bytes, last frame ends at %d", len(full), frameEnds[len(frameEnds)-1])
	}

	applied := func(cut int64) int {
		k := 0
		for k+1 < len(frameEnds) && frameEnds[k+1] <= cut {
			k++
		}
		return k
	}

	cutDir := t.TempDir()
	cutWAL := filepath.Join(cutDir, walName(1))
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		if err := os.WriteFile(cutWAL, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDisk(DiskOptions{Dir: cutDir, Fsync: FsyncNever, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got, err := re.Load()
		if err != nil {
			t.Fatalf("cut %d: load: %v", cut, err)
		}
		k := applied(cut)
		if got.Seq != uint64(k) {
			t.Fatalf("cut %d: recovered seq %d, want %d", cut, got.Seq, k)
		}
		if gm := snapshotModel(t, got); !gm.equal(models[k]) {
			t.Fatalf("cut %d: state after recovery diverges from model after %d mutations:\n got %+v\nwant %+v",
				cut, k, gm, models[k])
		}
		st := re.Stats()
		if wantTorn := cut != frameEnds[k]; st.RecoveredTornTail != wantTorn {
			t.Fatalf("cut %d: torn = %v, want %v", cut, st.RecoveredTornTail, wantTorn)
		}
		if st.RecoveredRecords != uint64(k) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, st.RecoveredRecords, k)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestCrashRecoveryReplayIdempotence reopens the same directory many
// times without mutating and asserts recovery is a fixed point: same
// state, no version or timestamp drift, and the torn tail (if any) is
// truncated exactly once.
func TestCrashRecoveryReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir)
	if _, err := d.Load(); err != nil {
		t.Fatal(err)
	}
	want := runScript(t, d, script())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail by hand: append half a frame of garbage.
	walPath := filepath.Join(dir, walName(1))
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	wantModel := snapshotModel(t, want)
	for round := 0; round < 4; round++ {
		re := openDir(t, dir)
		got, err := re.Load()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if gm := snapshotModel(t, got); !gm.equal(wantModel) {
			t.Fatalf("round %d: recovery drifted", round)
		}
		if torn := re.Stats().RecoveredTornTail; torn != (round == 0) {
			t.Fatalf("round %d: torn = %v (truncation must happen exactly once)", round, torn)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryRandomizedSequences runs randomized workloads (puts,
// edits, deletes, query registrations, view flips) against disk
// directories, cutting each resulting log at randomized boundaries —
// a broader, sampled version of the exhaustive sweep above.
func TestCrashRecoveryRandomizedSequences(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			d := openDir(t, dir)
			if _, err := d.Load(); err != nil {
				t.Fatal(err)
			}
			want := NewState()
			models := []model{snapshotModel(t, want)}
			var frameEnds []int64
			frameEnds = append(frameEnds, 0)

			docNames := []string{"a", "b", "c"}
			queryNames := []string{"q1", "q2"}
			corpus := []string{"", "x", "abracadabra", "the quick brown fox", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}
			step := 0
			stamp := func() time.Time { step++; return ts(step) }

			for i := 0; i < 60; i++ {
				name := docNames[rng.Intn(len(docNames))]
				qname := queryNames[rng.Intn(len(queryNames))]
				switch op := rng.Intn(10); {
				case op < 4: // put
					data := corpus[rng.Intn(len(corpus))]
					compress := rng.Intn(2) == 0
					var doc *docspanner.Document
					if compress {
						doc = docspanner.CompressDocument([]byte(data))
					} else {
						doc = docspanner.DocumentFromBytes([]byte(data))
					}
					at := stamp()
					v := want.Docs[name].Version + 1
					if err := d.PutDoc(name, []byte(data), doc, compress, v, at); err != nil {
						t.Fatal(err)
					}
					want.applyDoc(name, doc, compress, v, at)
				case op < 6: // edit, only when the doc exists and is long enough
					ds, ok := want.Docs[name]
					if !ok {
						continue
					}
					cur, _ := want.DB.Get(name)
					if cur.Len() < 2 {
						continue
					}
					expr := "delete(" + name + ",1,1)"
					doc, err := want.DB.Edit(name, expr)
					if err != nil {
						t.Fatalf("edit %q: %v", expr, err)
					}
					at := stamp()
					if err := d.EditDoc(name, expr, doc, ds.Version+1, at); err != nil {
						t.Fatal(err)
					}
					want.Docs[name] = DocState{Name: name, Compressed: true, Version: ds.Version + 1, Updated: at}
				case op < 7: // delete doc
					if _, ok := want.Docs[name]; !ok {
						continue
					}
					if err := d.DeleteDoc(name); err != nil {
						t.Fatal(err)
					}
					want.applyDeleteDoc(name)
				case op < 8: // register query
					spec := []byte(`{"src":"x{` + name + `}"}`)
					at := stamp()
					if err := d.PutQuery(qname, spec, at); err != nil {
						t.Fatal(err)
					}
					want.applyPutQuery(qname, spec, at)
				case op < 9: // view flip
					if _, ok := want.Docs[name]; !ok {
						continue
					}
					if _, ok := want.Queries[qname]; !ok {
						continue
					}
					k := ViewKey{Doc: name, Query: qname}
					if _, on := want.Views[k]; on {
						if err := d.DeleteView(name, qname); err != nil {
							t.Fatal(err)
						}
						delete(want.Views, k)
					} else {
						if err := d.PutView(name, qname); err != nil {
							t.Fatal(err)
						}
						want.Views[k] = struct{}{}
					}
				default: // delete query
					if _, ok := want.Queries[qname]; !ok {
						continue
					}
					if err := d.DeleteQuery(qname); err != nil {
						t.Fatal(err)
					}
					want.applyDeleteQuery(qname)
				}
				models = append(models, snapshotModel(t, want))
				d.mu.Lock()
				frameEnds = append(frameEnds, d.w.size)
				d.mu.Unlock()
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			full, err := os.ReadFile(filepath.Join(dir, walName(1)))
			if err != nil {
				t.Fatal(err)
			}

			applied := func(cut int64) int {
				k := 0
				for k+1 < len(frameEnds) && frameEnds[k+1] <= cut {
					k++
				}
				return k
			}
			cutDir := t.TempDir()
			cutWAL := filepath.Join(cutDir, walName(1))
			for trial := 0; trial < 40; trial++ {
				cut := int64(rng.Intn(len(full) + 1))
				if err := os.WriteFile(cutWAL, full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				re, err := OpenDisk(DiskOptions{Dir: cutDir, Fsync: FsyncNever, SnapshotBytes: -1})
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				got, err := re.Load()
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				k := applied(cut)
				if gm := snapshotModel(t, got); !gm.equal(models[k]) {
					t.Fatalf("seed %d cut %d: recovery diverges from model after %d mutations", seed, cut, k)
				}
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
