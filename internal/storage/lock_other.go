//go:build !unix

package storage

// dirLock is a no-op on platforms without flock; single-writer
// discipline is the operator's responsibility there.
type dirLock struct{}

func lockDir(string) (*dirLock, error) { return &dirLock{}, nil }

func (l *dirLock) release() error { return nil }
