//go:build unix

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// dirLock is an advisory exclusive lock on the data directory, held for
// the backend's lifetime. Two spannerd processes pointed at the same
// -data-dir would otherwise append to the same WAL through independent
// file handles, interleaving frames into damage no torn-tail tolerance
// can repair. flock (not an O_EXCL lock file) because the kernel drops
// it when the process dies: a kill -9 never leaves a stale lock in the
// way of the next recovery.
type dirLock struct{ f *os.File }

func lockDir(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: data directory %s is locked by another process; two writers would corrupt the log", dir)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
