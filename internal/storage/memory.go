package storage

import (
	"time"

	"docspanner"
)

// Memory is the in-memory backend: the pre-durability behavior of the
// store, extracted behind the Backend interface. It persists nothing —
// every mutation is a no-op, Load recovers an empty state, and a restart
// starts fresh. It exists so the serving path is written once against
// Backend and the default in-memory mode stays byte-for-byte what it was.
type Memory struct{}

// NewMemory returns the no-op backend.
func NewMemory() *Memory { return &Memory{} }

// Load recovers the empty state.
func (*Memory) Load() (*State, error) { return NewState(), nil }

func (*Memory) PutDoc(string, []byte, *docspanner.Document, bool, int, time.Time) error { return nil }
func (*Memory) EditDoc(string, string, *docspanner.Document, int, time.Time) error     { return nil }
func (*Memory) DeleteDoc(string) error                                                 { return nil }
func (*Memory) PutQuery(string, []byte, time.Time) error                               { return nil }
func (*Memory) DeleteQuery(string) error                                               { return nil }
func (*Memory) PutView(string, string) error                                           { return nil }
func (*Memory) DeleteView(string, string) error                                        { return nil }
func (*Memory) Sync() error                                                            { return nil }
func (*Memory) Snapshot() error                                                        { return nil }
func (*Memory) Close() error                                                           { return nil }

func (*Memory) Stats() Stats { return Stats{Kind: "memory"} }
