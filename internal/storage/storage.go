// Package storage is the durability layer behind spannerd's document
// store: a Backend interface over which the server tees every mutation —
// document puts, CDE edit expressions, deletes, prepared-query and view
// registrations — with two implementations. Memory keeps nothing
// (today's in-process behavior, extracted behind the interface), and
// Disk appends every mutation to a length-prefixed, CRC-checksummed
// write-ahead log with a configurable fsync policy, plus periodic
// snapshots that serialize the shared SLP database (grammar-sized, never
// decompressed — Section 4 of the survey is what makes durability cheap)
// and let the log be truncated.
//
// The WAL records logical operations, not states: a CDE edit persists as
// its expression text and replays in O(|φ|·log d) against the recovered
// grammar, exactly the dynamic-complexity argument for maintaining
// spanner state under edits compactly. Recovery loads the newest valid
// snapshot, replays the log tail in sequence order (tolerating a torn
// final record, which a crash mid-append legitimately produces), and
// fails loudly on anything else — a checksum mismatch mid-log or a
// sequence gap means the directory does not describe a consistent store.
package storage

import (
	"encoding/json"
	"sort"
	"time"

	"docspanner"
)

// Backend persists the server's mutations and recovers its state. All
// methods are safe for concurrent use; the caller must invoke Load
// exactly once, before any mutation.
//
// Mutation calls only stage durability (an appended, CRC-framed log
// record); Sync is the commit barrier. A caller that must not
// acknowledge a mutation before it is on disk appends under its own
// ordering lock, releases it, then calls Sync — concurrent callers share
// one fsync (group commit).
type Backend interface {
	// Load recovers the persisted state (empty for a fresh directory or a
	// memory backend). The returned State is the caller's to own: backends
	// never mutate it after returning.
	Load() (*State, error)

	// PutDoc records ingesting (or replacing) a document from raw bytes.
	// doc is the materialized SLP form the caller built — backends use it
	// to keep their snapshot shadow structure-shared with the live store
	// instead of re-compressing; the log itself records data, and replay
	// re-derives the same SLP deterministically.
	PutDoc(name string, data []byte, doc *docspanner.Document, compressed bool, version int, updated time.Time) error
	// EditDoc records a CDE edit whose evaluation produced doc under name.
	EditDoc(name, expr string, doc *docspanner.Document, version int, updated time.Time) error
	// DeleteDoc records dropping a document (and, transitively, its views).
	DeleteDoc(name string) error
	// PutQuery records registering a prepared query from its JSON spec.
	// Replay re-registers through the server's lint-at-registration path.
	PutQuery(name string, spec []byte, registered time.Time) error
	// DeleteQuery records unregistering a query (and its views).
	DeleteQuery(name string) error
	// PutView records registering a live (doc, query) view.
	PutView(doc, query string) error
	// DeleteView records dropping one view.
	DeleteView(doc, query string) error

	// Sync blocks until every mutation recorded so far is durable under
	// the backend's fsync policy (a no-op for policies that do not promise
	// per-mutation durability).
	Sync() error
	// Snapshot forces a snapshot and log rotation now. Backends without
	// snapshots return nil.
	Snapshot() error
	// Stats reports durability counters for metrics exposition.
	Stats() Stats
	// Close flushes and releases the backend. The backend must not be
	// used afterwards.
	Close() error
}

// DocState is the persisted metadata of one document; the SLP form lives
// in the State's shared DB under the same name.
type DocState struct {
	Name       string
	Compressed bool
	Version    int
	Updated    time.Time
}

// QueryState is one persisted prepared-query registration: the raw JSON
// spec the server re-registers through its lint path, plus the original
// registration time so recovery does not re-stamp it.
type QueryState struct {
	Name       string
	Spec       json.RawMessage
	Registered time.Time
}

// ViewKey identifies a live (doc, query) view registration.
type ViewKey struct {
	Doc   string
	Query string
}

// State is everything a backend recovers: the shared SLP document
// database plus the metadata that turns it back into a serving store.
type State struct {
	// Seq is the sequence number of the last mutation folded into this
	// state (0 for a fresh store).
	Seq     uint64
	DB      *docspanner.DocDB
	Docs    map[string]DocState
	Queries map[string]QueryState
	Views   map[ViewKey]struct{}
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		DB:      docspanner.NewDocDB(),
		Docs:    map[string]DocState{},
		Queries: map[string]QueryState{},
		Views:   map[ViewKey]struct{}{},
	}
}

// SortedDocs returns the document states sorted by name.
func (s *State) SortedDocs() []DocState {
	out := make([]DocState, 0, len(s.Docs))
	for _, d := range s.Docs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SortedQueries returns the query states sorted by name.
func (s *State) SortedQueries() []QueryState {
	out := make([]QueryState, 0, len(s.Queries))
	for _, q := range s.Queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SortedViews returns the view keys sorted by (doc, query).
func (s *State) SortedViews() []ViewKey {
	out := make([]ViewKey, 0, len(s.Views))
	for k := range s.Views {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Doc != out[j].Doc {
			return out[i].Doc < out[j].Doc
		}
		return out[i].Query < out[j].Query
	})
	return out
}

// clone returns a deep copy of the state's maps sharing the immutable
// SLP nodes — the cheap consistent cut a snapshot serializes while
// appends continue.
func (s *State) clone() *State {
	c := NewState()
	c.Seq = s.Seq
	for _, name := range s.DB.Names() {
		if d, ok := s.DB.Get(name); ok {
			c.DB.Add(name, d)
		}
	}
	for k, v := range s.Docs {
		c.Docs[k] = v
	}
	for k, v := range s.Queries {
		c.Queries[k] = v
	}
	for k := range s.Views {
		c.Views[k] = struct{}{}
	}
	return c
}

// dropViewsIf removes views matching the predicate, mirroring the
// server's cascade drops so replay converges to the live state.
func (s *State) dropViewsIf(match func(ViewKey) bool) {
	for k := range s.Views {
		if match(k) {
			delete(s.Views, k)
		}
	}
}

// applyDoc folds a materialized document mutation into the state.
func (s *State) applyDoc(name string, doc *docspanner.Document, compressed bool, version int, updated time.Time) {
	s.DB.Add(name, doc)
	s.Docs[name] = DocState{Name: name, Compressed: compressed, Version: version, Updated: updated}
}

// applyDeleteDoc folds a document deletion (and its view cascade).
func (s *State) applyDeleteDoc(name string) {
	s.DB.Remove(name)
	delete(s.Docs, name)
	s.dropViewsIf(func(k ViewKey) bool { return k.Doc == name })
}

// applyPutQuery folds a query registration. Re-registration drops the
// query's views, exactly as the server does.
func (s *State) applyPutQuery(name string, spec []byte, registered time.Time) {
	if _, existed := s.Queries[name]; existed {
		s.dropViewsIf(func(k ViewKey) bool { return k.Query == name })
	}
	s.Queries[name] = QueryState{Name: name, Spec: append(json.RawMessage(nil), spec...), Registered: registered}
}

// applyDeleteQuery folds a query deletion (and its view cascade).
func (s *State) applyDeleteQuery(name string) {
	delete(s.Queries, name)
	s.dropViewsIf(func(k ViewKey) bool { return k.Query == name })
}

// Stats are a backend's durability counters, rendered on /metrics.
type Stats struct {
	// Kind is "memory" or "disk"; Persistent reports whether state
	// survives a restart.
	Kind       string
	Persistent bool

	// WAL counters: records and bytes appended since open, and the
	// current (post-rotation) log file size.
	WALRecords       uint64
	WALAppendedBytes uint64
	WALSizeBytes     int64

	// Fsync counters under the active policy.
	Fsyncs          uint64
	FsyncTotalNanos int64
	FsyncMaxNanos   int64

	// Snapshot counters. LastSnapshotUnixNano is 0 when no snapshot has
	// been taken since open.
	Snapshots            uint64
	LastSnapshotUnixNano int64
	SnapshotBytes        int64

	// Recovery counters from Load: WAL records replayed on top of the
	// snapshot, and whether a torn final record was truncated.
	RecoveredRecords  uint64
	RecoveredTornTail bool
}
