package lint

import (
	"fmt"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// PlanConfig parameterizes the plan-level passes with the planner
// options that decide physical cost. The zero value uses the planner's
// defaults.
type PlanConfig struct {
	// MaxDeterminizeStates mirrors plan.Options.MaxDeterminizeStates:
	// the planner's backend gate (an NFA with more states is evaluated
	// naively) and, here, the subset-construction budget of SP009.
	MaxDeterminizeStates int
	// Schemaless mirrors plan.Options.Schemaless; bindability of shared
	// join variables only matters under schemaless semantics, where
	// unbound variables hold ⊥ and join with everything.
	Schemaless bool
}

func (c PlanConfig) maxDeterminize() int {
	if c.MaxDeterminizeStates > 0 {
		return c.MaxDeterminizeStates
	}
	return 4096
}

// PlanDiags runs the plan-level passes over a rewritten logical plan.
// Unlike the expression passes (Expr), which judge what the query says,
// these judge what the chosen plan will cost: they fire only on
// structure that survived the planner's rewrites — a join the planner
// fused away costs nothing and is not reported.
//
//	SP009  determinization blowup: a scan's NFA passes the backend
//	       gate, but its subset construction exceeds the same budget —
//	       the first evaluation pays an exponential, cached, up-front
//	       determinization the gate cannot see (it counts NFA states,
//	       not DFA states).
//	SP010  join-cost blowup: a join that survived rewriting whose
//	       inputs share no variables (a materialized cross product), or
//	       — under schemaless semantics — whose shared variables are
//	       not always bound on a scan input, so ⊥-valued tuples join
//	       near-universally.
//
// Positions use the same "$"-path convention as the expression passes;
// plan nodes carry the path of the expression node they descend from.
func PlanDiags(p *algebra.Plan, cfg PlanConfig) []Diagnostic {
	var out []Diagnostic
	// selZ carries the selection classes of every enclosing PSelect, so
	// joins can recognize the select-over-cross-product idiom — the same
	// exemption the SP003 expression pass grants (Section 2.3).
	var walk func(n *algebra.Plan, selZ []spans.VarSet)
	walk = func(n *algebra.Plan, selZ []spans.VarSet) {
		if n == nil {
			return
		}
		out = append(out, checkDeterminizeBlowup(n, cfg)...)
		out = append(out, checkJoinBlowup(n, cfg, selZ)...)
		if n.Kind == algebra.PSelect {
			selZ = append(selZ[:len(selZ):len(selZ)], n.Z)
		}
		for _, c := range n.Children {
			walk(c, selZ)
		}
	}
	walk(p, nil)
	sortDiags(out)
	return out
}

// checkDeterminizeBlowup is the SP009 pass. It only considers scans the
// planner will actually determinize: reference-free automata within the
// NFA-state gate. For those it runs the bounded subset construction —
// cut off just past the budget, so lint itself stays cheap — and warns
// when the DFA the first evaluation will build (and cache) exceeds it.
func checkDeterminizeBlowup(n *algebra.Plan, cfg PlanConfig) []Diagnostic {
	if n.Kind != algebra.PScan {
		return nil
	}
	limit := cfg.maxDeterminize()
	if n.Auto.HasRefs() || n.Auto.NumStates() > limit {
		return nil // naive backend: no determinization happens
	}
	states, within := automata.DeterminizedStatesAtMost(n.Auto, limit)
	if within {
		return nil
	}
	return []Diagnostic{{
		Code:     CodeDeterminizeBlowup,
		Severity: Warning,
		Pos:      n.Path,
		Message: fmt.Sprintf(
			"determinization blowup: the scan's %d-state automaton determinizes to more than %d states (construction cut off at %d); the backend gate counts NFA states, so the constant-delay backend pays this exponential construction on first evaluation",
			n.Auto.NumStates(), limit, states),
		Hint: "force the naive backend for this query (NaiveBackend / naive_backend), or lower MaxDeterminizeStates below the automaton's state count so the gate routes it to the naive backend",
	}}
}

// checkJoinBlowup is the SP010 pass. A cross product under an enclosing
// selection class that relates both sides is exempt: ς=(a ⋈ b) over
// disjoint variable sets is the canonical core-spanner query shape, the
// selection filters the product, and the cost is intended. Likewise a
// variable-free side — the idiomatic boolean filter contributes at most
// one tuple, so the "product" is a filter, not a blowup.
func checkJoinBlowup(n *algebra.Plan, cfg PlanConfig, selZ []spans.VarSet) []Diagnostic {
	if n.Kind != algebra.PJoin {
		return nil
	}
	var out []Diagnostic
	bc := algebra.NewBoundCache()
	// The materializing backend folds children left to right, so cost is
	// judged pairwise: the accumulated schema so far against each next
	// child.
	acc := n.Children[0].Vars()
	for _, c := range n.Children[1:] {
		shared := acc.Intersect(c.Vars())
		if len(shared) == 0 && len(acc) > 0 && len(c.Vars()) > 0 &&
			!selectsAcross(selZ, acc, c.Vars()) {
			out = append(out, Diagnostic{
				Code:     CodeJoinBlowup,
				Severity: Warning,
				Pos:      n.Path,
				Message: fmt.Sprintf(
					"join-cost blowup: join inputs with schemas %v and %v share no variables after rewriting, so the materializing backend builds their full cross product",
					acc, c.Vars()),
				Hint: "join on a shared variable, or evaluate the sides as separate queries and combine outside the engine",
			})
		} else if cfg.Schemaless {
			if weak := weaklyBoundVars(n, bc, shared); len(weak) > 0 {
				out = append(out, Diagnostic{
					Code:     CodeJoinBlowup,
					Severity: Warning,
					Pos:      n.Path,
					Message: fmt.Sprintf(
						"join-cost blowup: under schemaless semantics the shared join variables %v are not always bound on every input, and a tuple with ⊥ in a shared variable joins with every binding on the other side — the join degenerates toward a cross product",
						weak),
					Hint: "make the shared variables mandatory in each branch (so every tuple binds them), or run the query under functional semantics",
				})
			}
		}
		acc = acc.Union(c.Vars())
	}
	return out
}

// weaklyBoundVars returns the shared variables that some scan input of
// the join does not always bind. Non-scan inputs are skipped: their
// bindability would require evaluating the subplan's semantics, and a
// missed warning is better than a wrong one.
func weaklyBoundVars(n *algebra.Plan, bc algebra.BoundCache, shared spans.VarSet) spans.VarSet {
	var weak spans.VarSet
	for _, c := range n.Children {
		if c.Kind != algebra.PScan || c.Auto.HasRefs() {
			continue
		}
		for _, v := range shared {
			if !c.Auto.Vars.Contains(v) {
				continue
			}
			if !bc.Bound(c.Auto, v) {
				weak = weak.Union(spans.NewVarSet(v))
			}
		}
	}
	return weak
}
