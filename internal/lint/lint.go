// Package lint implements spanlint: composable static-analysis passes over
// compiled spanners, core-spanner algebra expressions, and vset-automata.
//
// The survey (Section 2.4) frames Satisfiability, Hierarchicality,
// Containment, and Equivalence as static analysis of spanner
// representations; this package turns those decision procedures — all of
// which the library already implements in packages vset, automata, and
// refl — into developer-facing diagnostics with stable codes:
//
//	SP001  unsatisfiable spanner or subexpression (empty language)
//	SP002  dead vset-automaton states (unreachable / non-coaccessible)
//	SP003  degenerate join (disjoint schemas, or no satisfiable tuple)
//	SP004  degenerate projection (unbound variable kept, or all dropped)
//	SP005  degenerate selection (provable no-op, or provably empty)
//	SP006  non-hierarchical spanner
//	SP007  core selections admit a regular refl rewrite (Section 3.2)
//	SP008  equivalent branches in a union (duplicate work)
//	SP009  determinization blowup past the planner's backend gate
//	SP010  join-cost blowup in the rewritten plan (cross product, or
//	       weakly-bound shared variables under schemaless semantics)
//
// SP001–SP008 are expression passes (Expr): they judge what the query
// says, independent of how it is evaluated. SP009–SP010 are plan passes
// (PlanDiags): they judge what the planner's chosen physical plan will
// cost, and only fire on structure that survives the rewrite pipeline.
//
// All passes reuse the existing decision machinery (vset.Satisfiable,
// vset.Hierarchical, vset.Equivalent, refl.FromRegexCore, ...) rather than
// re-deriving it, and run in query complexity only: no document is ever
// involved. Analysis allocates all working state per call and treats the
// analyzed automata as immutable, so a shared spanner or expression may be
// linted concurrently with evaluation (per the library's concurrency
// contracts).
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Severity grades a diagnostic. The zero value is invalid so that a
// Diagnostic round-tripped through JSON with a missing severity is
// detectable.
type Severity int

const (
	// Info marks an observation or rewrite opportunity.
	Info Severity = iota + 1
	// Warning marks a construct that is almost certainly not what the
	// author intended (silent cartesian product, no-op selection, ...).
	Warning
	// Error marks a query that provably computes the empty result on
	// every document.
	Error
)

// String returns "info", "warning", or "error".
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity is the inverse of String.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want info, warning, or error)", s)
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	switch s {
	case Info, Warning, Error:
		return json.Marshal(s.String())
	}
	return nil, fmt.Errorf("lint: cannot marshal invalid severity %d", int(s))
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Diagnostic is one finding of a lint pass.
type Diagnostic struct {
	// Code is the stable diagnostic code (SP001–SP010).
	Code string `json:"code"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Pos locates the finding inside the analyzed expression tree as a
	// path: "$" is the root, "$.L"/"$.R" descend into the operands of a
	// union or join, "$.Sub" into the operand of a projection, selection,
	// or fusion. For a lone spanner the position is always "$".
	Pos string `json:"pos"`
	// Message states the finding.
	Message string `json:"message"`
	// Hint, when present, suggests a fix or rewrite.
	Hint string `json:"hint,omitempty"`
}

// String renders the diagnostic in the one-line human-readable form used
// by cmd/spanlint.
func (d Diagnostic) String() string {
	out := fmt.Sprintf("%s %s %s: %s", d.Pos, d.Code, d.Severity, d.Message)
	if d.Hint != "" {
		out += " (hint: " + d.Hint + ")"
	}
	return out
}

// Diagnostic codes, stable across releases.
const (
	CodeUnsatisfiable     = "SP001"
	CodeDeadStates        = "SP002"
	CodeDegenerateJoin    = "SP003"
	CodeDegenerateProj    = "SP004"
	CodeDegenerateSel     = "SP005"
	CodeNonHierarchical   = "SP006"
	CodeReflRewrite       = "SP007"
	CodeDuplicateBranch   = "SP008"
	CodeDeterminizeBlowup = "SP009"
	CodeJoinBlowup        = "SP010"
)

// CodeInfo documents one diagnostic code for listings (cmd/spanlint
// -codes, README table).
type CodeInfo struct {
	Code  string
	Title string
}

// Codes lists every diagnostic code this package can emit, in order.
func Codes() []CodeInfo {
	return []CodeInfo{
		{CodeUnsatisfiable, "unsatisfiable spanner or subexpression (empty language)"},
		{CodeDeadStates, "dead vset-automaton states (unreachable or non-coaccessible)"},
		{CodeDegenerateJoin, "degenerate join: disjoint schemas (cartesian product) or provably empty"},
		{CodeDegenerateProj, "degenerate projection: keeps an unbound variable or drops every variable"},
		{CodeDegenerateSel, "degenerate string-equality selection: provable no-op or provably empty"},
		{CodeNonHierarchical, "non-hierarchical spanner (can extract properly overlapping spans)"},
		{CodeReflRewrite, "core selections admit a regular refl rewrite (references &x)"},
		{CodeDuplicateBranch, "union branches are equivalent (duplicate work)"},
		{CodeDeterminizeBlowup, "determinization blowup: the DFA exceeds the backend gate the NFA passed"},
		{CodeJoinBlowup, "join-cost blowup in the rewritten plan (cross product or weakly-bound shared variables)"},
	}
}

// Sort orders diagnostics by position, then code, then message — the
// order every pass runner emits. Exported for callers that merge
// diagnostics from several runs (e.g. expression and plan passes).
func Sort(ds []Diagnostic) { sortDiags(ds) }

// sortDiags orders diagnostics by position, then code, then message, so
// output is deterministic regardless of pass scheduling.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos < ds[j].Pos
		}
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		return ds[i].Message < ds[j].Message
	})
}
