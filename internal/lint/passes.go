package lint

import (
	"fmt"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/refl"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Expr runs every applicable pass over a core-spanner algebra expression
// and returns the findings sorted by position and code. The schemaless
// flag selects the result semantics the expression will be evaluated
// under; it currently only affects message wording, because every check
// performed here is sound under both semantics.
func Expr(e algebra.Expr, schemaless bool) []Diagnostic {
	r := &runner{schemaless: schemaless}
	ri := r.walk(e, "$", false, nil)
	r.checkHierarchical(ri)
	sortDiags(r.diags)
	return r.diags
}

// Spanner runs the passes that apply to a lone compiled regular spanner
// (no algebra context): satisfiability, dead states, hierarchicality. The
// src AST may be nil when the automaton was not compiled from a pattern.
func Spanner(n *automata.NFA, src regex.Node, schemaless bool) []Diagnostic {
	return Expr(algebra.Prim{A: n, Src: src}, schemaless)
}

// Refl runs the passes that remain decidable for refl-spanners:
// satisfiability (decidable for refl-spanners, in contrast to general core
// spanners — Section 3.3) and dead-state analysis on the ref-automaton.
func Refl(rs *refl.Spanner) []Diagnostic {
	r := &runner{}
	if !rs.Satisfiable() {
		r.report(CodeUnsatisfiable, Error, "$",
			"refl-spanner is unsatisfiable: it extracts nothing from any document",
			"check that every reference &x can repeat the content its binding requires")
	}
	r.checkDeadStates(rs.A, "$")
	sortDiags(r.diags)
	return r.diags
}

// runner accumulates diagnostics over one analysis. All state is per-call:
// a shared expression or spanner may be linted from several goroutines.
type runner struct {
	schemaless bool
	diags      []Diagnostic
}

func (r *runner) report(code string, sev Severity, pos, msg, hint string) {
	r.diags = append(r.diags, Diagnostic{Code: code, Severity: sev, Pos: pos, Message: msg, Hint: hint})
}

// info is the bottom-up analysis result for one subexpression.
type info struct {
	vars spans.VarSet
	// auto is a selection-free vset-automaton equivalent to the
	// subexpression, built with the closure constructions of package
	// automata; nil when the subtree uses selections, fusion, or
	// references and no equivalent automaton is known.
	auto *automata.NFA
	// sat records satisfiability when satKnown; checks that need it are
	// skipped otherwise (satisfiability of general core subexpressions is
	// undecidable, Section 2.4).
	sat      bool
	satKnown bool
}

// walk analyzes one node. underSelect marks a node whose direct parent is
// a string-equality selection (used to report SP007 once per selection
// chain); selZ carries the selection classes of every enclosing SelectEq,
// at any distance, so joins can recognize the select-over-cross-product
// idiom.
func (r *runner) walk(e algebra.Expr, pos string, underSelect bool, selZ []spans.VarSet) info {
	switch m := e.(type) {
	case algebra.Prim:
		return r.walkPrim(m, pos)
	case algebra.Union:
		return r.walkUnion(m, pos, selZ)
	case algebra.Join:
		return r.walkJoin(m, pos, selZ)
	case algebra.Project:
		return r.walkProject(m, pos, selZ)
	case algebra.SelectEq:
		return r.walkSelect(m, pos, underSelect, selZ)
	case algebra.Fuse:
		sub := r.walk(m.Sub, pos+".Sub", false, selZ)
		// Fusion maps every input tuple to exactly one output tuple, so it
		// preserves (un)satisfiability; it leaves the regular fragment,
		// so no automaton is propagated.
		return info{vars: m.Vars(), sat: sub.sat, satKnown: sub.satKnown}
	}
	return info{vars: e.Vars()}
}

func (r *runner) walkPrim(m algebra.Prim, pos string) info {
	r.checkDeadStates(m.A, pos)
	if m.A.HasRefs() {
		// A ref-automaton embedded as a primitive: the regular-spanner
		// pass machinery does not apply. Use Refl for refl-spanners.
		return info{vars: m.A.Vars}
	}
	sat := vset.Satisfiable(m.A)
	if !sat {
		r.report(CodeUnsatisfiable, Error, pos,
			"spanner matches no document at all (empty language): every evaluation returns the empty relation",
			"the automaton has no path from the start state to a final state")
	}
	return info{vars: m.A.Vars, auto: m.A, sat: sat, satKnown: true}
}

func (r *runner) walkUnion(m algebra.Union, pos string, selZ []spans.VarSet) info {
	l := r.walk(m.L, pos+".L", false, selZ)
	rr := r.walk(m.R, pos+".R", false, selZ)
	out := info{vars: l.vars.Union(rr.vars)}
	if l.satKnown && rr.satKnown {
		out.sat, out.satKnown = l.sat || rr.sat, true
	}
	if l.auto != nil && rr.auto != nil {
		out.auto = automata.Union(l.auto, rr.auto)
		// SP008: duplicate branch. Skip when a branch is empty — SP001
		// already reports that, and "equivalent to nothing" is noise.
		if l.sat && rr.sat && vset.Equivalent(l.auto, rr.auto) {
			r.report(CodeDuplicateBranch, Warning, pos,
				"the two branches of this union extract the same relation from every document",
				"drop one branch; the union is equivalent to either operand alone")
		}
	}
	return out
}

func (r *runner) walkJoin(m algebra.Join, pos string, selZ []spans.VarSet) info {
	l := r.walk(m.L, pos+".L", false, selZ)
	rr := r.walk(m.R, pos+".R", false, selZ)
	out := info{vars: l.vars.Union(rr.vars)}
	shared := l.vars.Intersect(rr.vars)
	// SP003a: no shared variables while both sides bind some — the natural
	// join silently degenerates to a cartesian product. One variable-free
	// side is fine: that is the idiomatic boolean filter. So is an enclosing
	// string-equality selection relating the two sides — ς=(a ⋈ b) over
	// disjoint variable sets is the canonical core-spanner query shape
	// (Section 2.3) and the cross product is evidently intended there.
	if len(shared) == 0 && len(l.vars) > 0 && len(rr.vars) > 0 && !selectsAcross(selZ, l.vars, rr.vars) {
		r.report(CodeDegenerateJoin, Warning, pos,
			fmt.Sprintf("join operands share no variables (%v vs %v): the natural join degenerates to a cartesian product", l.vars, rr.vars),
			"if the cross product is intended, say so in a comment; otherwise check the variable names")
	}
	if l.auto != nil && rr.auto != nil {
		la, ra := l.auto, rr.auto
		if len(shared) > 0 {
			// Present consecutive shared markers in one canonical order so
			// the product construction synchronizes soundly (Section 2.2,
			// Option 1) — same normalization as algebra.Simplify.
			la, ra = automata.Normalize(la), automata.Normalize(ra)
		}
		out.auto = automata.Join(la, ra)
		out.sat, out.satKnown = vset.Satisfiable(out.auto), true
		// SP003b: both sides satisfiable but no combined tuple exists.
		if l.sat && rr.sat && !out.sat {
			r.report(CodeDegenerateJoin, Error, pos,
				"join is provably empty: both operands are satisfiable, but no document admits a combined tuple",
				"the operands constrain the shared variables (or the document language) inconsistently")
		}
	} else if (l.satKnown && !l.sat) || (rr.satKnown && !rr.sat) {
		out.sat, out.satKnown = false, true
	}
	return out
}

// selectsAcross reports whether some enclosing selection class contains a
// variable from each of the two operand schemas, i.e. the selection
// relates the join sides and the cross product carries intent.
func selectsAcross(selZ []spans.VarSet, l, r spans.VarSet) bool {
	for _, z := range selZ {
		if len(z.Intersect(l)) > 0 && len(z.Intersect(r)) > 0 {
			return true
		}
	}
	return false
}

func (r *runner) walkProject(m algebra.Project, pos string, selZ []spans.VarSet) info {
	sub := r.walk(m.Sub, pos+".Sub", false, selZ)
	out := info{vars: sub.vars.Intersect(m.Keep), sat: sub.sat, satKnown: sub.satKnown}
	if ghost := m.Keep.Minus(sub.vars); len(ghost) > 0 {
		r.report(CodeDegenerateProj, Warning, pos,
			fmt.Sprintf("projection keeps %v, which no subexpression binds", ghost),
			"a kept variable that is never bound stays unassigned in every result tuple; check for a typo")
	}
	if len(sub.vars) > 0 && len(out.vars) == 0 {
		r.report(CodeDegenerateProj, Warning, pos,
			fmt.Sprintf("projection drops every variable of %v: the result is a boolean (yes/no) spanner", sub.vars),
			"if a boolean query is intended, project onto an explicit non-empty subset instead")
	}
	if sub.auto != nil {
		out.auto = automata.Project(sub.auto, m.Keep)
	}
	return out
}

func (r *runner) walkSelect(m algebra.SelectEq, pos string, underSelect bool, selZ []spans.VarSet) info {
	sub := r.walk(m.Sub, pos+".Sub", true, append(selZ, m.Z))
	if !underSelect {
		r.checkReflRewrite(m, pos)
	}
	// Selections over variables the subexpression never binds can never be
	// satisfied: the selection semantics (both classical and schemaless)
	// keeps only tuples that assign every selected variable.
	if unbound := m.Z.Minus(sub.vars); len(unbound) > 0 {
		r.report(CodeDegenerateSel, Error, pos,
			fmt.Sprintf("string-equality selection on %v, but %v is never bound by the subexpression: the selection is always empty", m.Z, unbound),
			"bind the variable, or select over the variables the subexpression actually produces (was it projected away?)")
		return info{vars: sub.vars, sat: false, satKnown: true}
	}
	if len(m.Z) <= 1 {
		r.report(CodeDegenerateSel, Warning, pos,
			fmt.Sprintf("string-equality selection on %v compares fewer than two variables: it is a no-op", m.Z),
			"drop the selection")
		return sub // a no-op passes the subexpression analysis through
	}
	if sub.auto != nil {
		if !vset.JointlyBindable(sub.auto, m.Z) {
			r.report(CodeDegenerateSel, Error, pos,
				fmt.Sprintf("variables %v are never jointly bound on any accepting run: the selection is always empty", m.Z),
				"under the schemaless semantics a tuple passes ς= only if it assigns every selected variable; bind them on a common alternative")
			return info{vars: sub.vars, sat: false, satKnown: true}
		}
		if r.alwaysSameSpan(sub.auto, m.Z) {
			r.report(CodeDegenerateSel, Warning, pos,
				fmt.Sprintf("variables %v provably extract the same span on every match: the selection is a no-op", m.Z),
				"drop the selection; equal spans always have equal content")
			return sub
		}
	}
	out := info{vars: sub.vars}
	if sub.satKnown && !sub.sat {
		out.sat, out.satKnown = false, true
	}
	return out
}

// alwaysSameSpan reports whether every pair of z provably extracts one and
// the same span on every accepting run.
func (r *runner) alwaysSameSpan(a *automata.NFA, z spans.VarSet) bool {
	for i := 0; i < len(z); i++ {
		for j := i + 1; j < len(z); j++ {
			if !vset.AlwaysSameSpan(a, z[i], z[j]) {
				return false
			}
		}
	}
	return true
}

// checkDeadStates emits SP002 for states Trim would remove.
func (r *runner) checkDeadStates(n *automata.NFA, pos string) {
	unreachable, nonCoaccessible := n.DeadStates()
	if len(unreachable) == 0 && len(nonCoaccessible) == 0 {
		return
	}
	r.report(CodeDeadStates, Warning, pos,
		fmt.Sprintf("vset-automaton has %d unreachable and %d non-coaccessible of %d states",
			len(unreachable), len(nonCoaccessible), n.NumStates()),
		"dead states slow every product construction and determinization; trim the automaton (NFA.Trim)")
}

// checkHierarchical emits SP006 on the root when the whole expression is
// representable as a regular spanner and can extract properly overlapping
// spans (Section 2.2). Many downstream algorithms — the refl translation
// of Section 3.2, split-correct sharding — assume hierarchicality.
func (r *runner) checkHierarchical(root info) {
	if root.auto == nil || !root.sat || len(root.vars) < 2 {
		return
	}
	if vset.Hierarchical(root.auto) {
		return
	}
	r.report(CodeNonHierarchical, Info, "$",
		"spanner is not hierarchical: it can extract properly overlapping (neither nested nor disjoint) spans",
		"algorithms that assume hierarchicality (refl translation, split-correct sharding) may not apply")
}

// checkReflRewrite emits SP007 when a maximal chain of string-equality
// selections over a pattern-compiled primitive admits the constructive
// core→refl translation of Section 3.2 (refl.FromRegexCore): the query can
// then be written as a single pattern with references &x instead of
// selections.
func (r *runner) checkReflRewrite(m algebra.SelectEq, pos string) {
	var classes []spans.VarSet
	var cur algebra.Expr = m
	for {
		sel, ok := cur.(algebra.SelectEq)
		if !ok {
			break
		}
		classes = append(classes, sel.Z)
		cur = sel.Sub
	}
	prim, ok := cur.(algebra.Prim)
	if !ok || prim.Src == nil || prim.A.HasRefs() {
		return
	}
	// A class with fewer than two variables selects nothing; the rewrite
	// hint only earns its keep when a real selection goes away (no-op
	// classes are SP005's business).
	real := false
	for _, z := range classes {
		if len(z) >= 2 {
			real = true
		}
	}
	if !real {
		return
	}
	if _, err := refl.FromRegexCore(prim.Src, classes, prim.A.Alphabet()); err != nil {
		return
	}
	r.report(CodeReflRewrite, Info, pos,
		fmt.Sprintf("the string-equality selections %v admit a regular refl rewrite: this core query is expressible as a refl-spanner", classes),
		"keep one binding per selection class and re-bind the other variables as references (&x); see refl.FromRegexCore and the Refl-Spanners paper (Schmid & Schweikardt)")
}
