package lint_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/lint"
	"docspanner/internal/refl"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
)

// pat compiles a pattern into a primitive expression carrying its AST,
// exactly as the docspanner facade does.
func pat(t *testing.T, src string) algebra.Prim {
	t.Helper()
	ast, err := regex.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	a, err := regex.Compile(ast, regex.Options{})
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return algebra.Prim{A: a, Src: ast}
}

func vs(vars ...string) spans.VarSet {
	out := make([]spans.Var, len(vars))
	for i, v := range vars {
		out[i] = spans.Var(v)
	}
	return spans.NewVarSet(out...)
}

func codes(ds []lint.Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range ds {
		out[d.Code]++
	}
	return out
}

// emptyPrim is an unsatisfiable primitive: a fresh automaton has a single
// non-final state, so its language is empty.
func emptyPrim() algebra.Prim {
	return algebra.Prim{A: automata.NewNFA(vs("x"))}
}

// deadStatePrim returns a satisfiable primitive with one unreachable and
// one non-coaccessible state.
func deadStatePrim(t *testing.T) algebra.Prim {
	p := pat(t, "!x{a}")
	n := p.A.Clone()
	n.AddState()                    // unreachable
	n.AddEps(n.Start, n.AddState()) // reachable, cannot accept
	return algebra.Prim{A: n, Src: p.Src}
}

// TestDiagnosticCodes drives every code through a triggering and a
// non-triggering input.
func TestDiagnosticCodes(t *testing.T) {
	cases := []struct {
		name    string
		build   func(t *testing.T) algebra.Expr
		code    string
		sev     lint.Severity // checked only when want is true
		want    bool
		wantPos string // checked only when want is true and non-empty
	}{
		{
			name:  "SP001 triggers on an empty-language primitive",
			build: func(t *testing.T) algebra.Expr { return emptyPrim() },
			code:  lint.CodeUnsatisfiable, sev: lint.Error, want: true, wantPos: "$",
		},
		{
			name:  "SP001 silent on a satisfiable pattern",
			build: func(t *testing.T) algebra.Expr { return pat(t, "!x{a+}") },
			code:  lint.CodeUnsatisfiable,
		},
		{
			name:  "SP002 triggers on dead automaton states",
			build: func(t *testing.T) algebra.Expr { return deadStatePrim(t) },
			code:  lint.CodeDeadStates, sev: lint.Warning, want: true, wantPos: "$",
		},
		{
			name:  "SP002 silent on a trim compiled pattern",
			build: func(t *testing.T) algebra.Expr { return pat(t, "!x{a+}b?") },
			code:  lint.CodeDeadStates,
		},
		{
			name: "SP003 triggers on a disjoint-schema join (cartesian product)",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Join{L: pat(t, "!x{a}b"), R: pat(t, "a!y{b}")}
			},
			code: lint.CodeDegenerateJoin, sev: lint.Warning, want: true, wantPos: "$",
		},
		{
			name: "SP003 triggers on a provably empty join",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Join{L: pat(t, "!x{a}"), R: pat(t, "!x{b}")}
			},
			code: lint.CodeDegenerateJoin, sev: lint.Error, want: true, wantPos: "$",
		},
		{
			name: "SP003 silent on a satisfiable shared-variable join",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Join{L: pat(t, "!x{a}b"), R: pat(t, "!x{a}[ab]")}
			},
			code: lint.CodeDegenerateJoin,
		},
		{
			name: "SP003 silent on a cartesian join related by an enclosing selection",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{
					Sub: algebra.Join{L: pat(t, "!x{a+}b"), R: pat(t, "a+!y{b}")},
					Z:   vs("x", "y"),
				}
			},
			code: lint.CodeDegenerateJoin,
		},
		{
			name: "SP003 silent on a boolean-filter join (one side binds nothing)",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Join{L: pat(t, "!x{a}b"), R: pat(t, "ab")}
			},
			code: lint.CodeDegenerateJoin,
		},
		{
			name: "SP004 triggers on keeping an unbound variable",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Project{Sub: pat(t, "!x{a}"), Keep: vs("x", "y")}
			},
			code: lint.CodeDegenerateProj, sev: lint.Warning, want: true, wantPos: "$",
		},
		{
			name: "SP004 triggers on dropping every variable",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Project{Sub: pat(t, "!x{a}"), Keep: vs()}
			},
			code: lint.CodeDegenerateProj, sev: lint.Warning, want: true, wantPos: "$",
		},
		{
			name: "SP004 silent on a proper projection",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Project{Sub: pat(t, "!x{a}!y{b}"), Keep: vs("x")}
			},
			code: lint.CodeDegenerateProj,
		},
		{
			name: "SP005 triggers on a single-variable selection (no-op)",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{Sub: pat(t, "!x{a+}"), Z: vs("x")}
			},
			code: lint.CodeDegenerateSel, sev: lint.Warning, want: true, wantPos: "$",
		},
		{
			name: "SP005 triggers on selecting a never-bound variable (always empty)",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{Sub: pat(t, "!x{a+}"), Z: vs("x", "y")}
			},
			code: lint.CodeDegenerateSel, sev: lint.Error, want: true, wantPos: "$",
		},
		{
			name: "SP005 triggers on never-jointly-bound variables (always empty)",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{
					Sub: algebra.Union{L: pat(t, "!x{a}"), R: pat(t, "!y{b}")},
					Z:   vs("x", "y"),
				}
			},
			code: lint.CodeDegenerateSel, sev: lint.Error, want: true, wantPos: "$",
		},
		{
			name: "SP005 triggers on provably always-equal spans (no-op)",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{Sub: pat(t, "!x{!y{a+}}"), Z: vs("x", "y")}
			},
			code: lint.CodeDegenerateSel, sev: lint.Warning, want: true, wantPos: "$",
		},
		{
			name: "SP005 silent on a genuine selection",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{Sub: pat(t, "!x{a+}b!y{a+}"), Z: vs("x", "y")}
			},
			code: lint.CodeDegenerateSel,
		},
		{
			name: "SP006 triggers on an overlap-producing join",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Join{L: pat(t, "!x{ab}[abc]"), R: pat(t, "[abc]!y{bc}")}
			},
			code: lint.CodeNonHierarchical, sev: lint.Info, want: true, wantPos: "$",
		},
		{
			name:  "SP006 silent on a regex formula (hierarchical by construction)",
			build: func(t *testing.T) algebra.Expr { return pat(t, "!x{a+}b!y{c+}") },
			code:  lint.CodeNonHierarchical,
		},
		{
			name: "SP007 triggers on a refl-translatable core query",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{Sub: pat(t, "!x{a+}b!y{a+}"), Z: vs("x", "y")}
			},
			code: lint.CodeReflRewrite, sev: lint.Info, want: true, wantPos: "$",
		},
		{
			name: "SP007 silent on nested selection variables (not refl-expressible)",
			build: func(t *testing.T) algebra.Expr {
				return algebra.SelectEq{Sub: pat(t, "!x{a*!y{a+}}"), Z: vs("x", "y")}
			},
			code: lint.CodeReflRewrite,
		},
		{
			name: "SP008 triggers on equivalent union branches",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Union{L: pat(t, "!x{a}"), R: pat(t, "!x{a}")}
			},
			code: lint.CodeDuplicateBranch, sev: lint.Warning, want: true, wantPos: "$",
		},
		{
			name: "SP008 silent on distinct union branches",
			build: func(t *testing.T) algebra.Expr {
				return algebra.Union{L: pat(t, "!x{a}"), R: pat(t, "!x{b}")}
			},
			code: lint.CodeDuplicateBranch,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := lint.Expr(tc.build(t), false)
			var hits []lint.Diagnostic
			for _, d := range ds {
				if d.Code == tc.code {
					hits = append(hits, d)
				}
			}
			if !tc.want {
				if len(hits) > 0 {
					t.Fatalf("unexpected %s diagnostics: %v (all: %v)", tc.code, hits, ds)
				}
				return
			}
			if len(hits) == 0 {
				t.Fatalf("expected a %s diagnostic, got %v", tc.code, ds)
			}
			found := false
			for _, d := range hits {
				if d.Severity == tc.sev && (tc.wantPos == "" || d.Pos == tc.wantPos) {
					found = true
				}
				if d.Message == "" {
					t.Errorf("diagnostic %v has an empty message", d)
				}
			}
			if !found {
				t.Fatalf("no %s hit with severity %v at %q; got %v", tc.code, tc.sev, tc.wantPos, hits)
			}
		})
	}
}

// TestNestedPositions pins the path scheme: a diagnostic deep in the tree
// reports the path to its node.
func TestNestedPositions(t *testing.T) {
	e := algebra.Union{
		L: pat(t, "!x{a}"),
		R: algebra.Project{Sub: pat(t, "!x{a}"), Keep: vs("q")},
	}
	ds := lint.Expr(e, false)
	want := map[string]string{lint.CodeDegenerateProj: "$.R"}
	for code, pos := range want {
		ok := false
		for _, d := range ds {
			if d.Code == code && d.Pos == pos {
				ok = true
			}
		}
		if !ok {
			t.Errorf("expected %s at %s, got %v", code, pos, ds)
		}
	}
}

// TestCleanQueryHasNoDiagnostics pins that an idiomatic query is
// lint-clean, so the CI corpus check is meaningful.
func TestCleanQueryHasNoDiagnostics(t *testing.T) {
	e := algebra.Project{
		Sub:  algebra.Join{L: pat(t, "!x{[a-z]+}=!v{[0-9]+}"), R: pat(t, "!x{key}=[0-9]+")},
		Keep: vs("v", "x"),
	}
	if ds := lint.Expr(e, false); len(ds) != 0 {
		t.Fatalf("expected no diagnostics, got %v", ds)
	}
}

// TestReflLint covers the refl-spanner entry point.
func TestReflLint(t *testing.T) {
	ast, err := regex.Parse("!x{a+}b&x")
	if err != nil {
		t.Fatal(err)
	}
	a, err := regex.Compile(ast, regex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := refl.New(a)
	if err != nil {
		t.Fatal(err)
	}
	if ds := lint.Refl(rs); len(ds) != 0 {
		t.Fatalf("satisfiable refl-spanner should be clean, got %v", ds)
	}
}

// TestJSONRoundTrip pins that diagnostics survive encoding/json both ways.
func TestJSONRoundTrip(t *testing.T) {
	ds := lint.Expr(algebra.SelectEq{Sub: pat(t, "!x{a+}"), Z: vs("x")}, true)
	if len(ds) == 0 {
		t.Fatal("need at least one diagnostic for the round trip")
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []lint.Diagnostic
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatalf("round trip changed diagnostics:\n  in:  %v\n  out: %v", ds, back)
	}
}

func TestSeverityJSON(t *testing.T) {
	for _, s := range []lint.Severity{lint.Info, lint.Warning, lint.Error} {
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		var back lint.Severity
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, blob, back)
		}
		parsed, err := lint.ParseSeverity(s.String())
		if err != nil || parsed != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), parsed, err)
		}
	}
	if _, err := json.Marshal(lint.Severity(0)); err == nil {
		t.Error("marshaling the zero severity should fail")
	}
	var s lint.Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unmarshaling an unknown severity should fail")
	}
}

func TestCodesListing(t *testing.T) {
	cs := lint.Codes()
	if len(cs) != 10 {
		t.Fatalf("want 10 codes, got %d", len(cs))
	}
	for i, c := range cs {
		want := fmt.Sprintf("SP%03d", i+1)
		if c.Code != want {
			t.Errorf("code %d = %s, want %s", i, c.Code, want)
		}
		if c.Title == "" {
			t.Errorf("code %s has no title", c.Code)
		}
	}
}

// TestConcurrentLint exercises the concurrency contract: one shared
// expression linted from many goroutines (run under -race).
func TestConcurrentLint(t *testing.T) {
	e := algebra.SelectEq{Sub: pat(t, "!x{a+}b!y{a+}"), Z: vs("x", "y")}
	want := lint.Expr(e, false)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := lint.Expr(e, false); !reflect.DeepEqual(got, want) {
				t.Errorf("concurrent lint diverged: %v vs %v", got, want)
			}
		}()
	}
	wg.Wait()
}
