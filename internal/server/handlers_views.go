package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"docspanner/internal/views"
)

// --- live (doc, query) view handlers ---

// viewJSON is the JSON shape of one view result. Count is emitted as a
// raw JSON number so exact big-integer counts survive even when they
// exceed float64 (they can: counting is polynomial in the grammar, the
// count itself need not be).
func viewJSON(v *views.View, res *views.Result) map[string]any {
	key := v.Key()
	out := map[string]any{
		"doc":   key.Doc,
		"query": key.Query,
	}
	refreshes, skipped, _, _ := v.Totals()
	out["refreshes"] = refreshes
	out["skipped_refreshes"] = skipped
	if res == nil {
		out["version"] = 0
		out["pending"] = true
		return out
	}
	out["version"] = res.Version
	out["count"] = json.RawMessage(res.Count.String())
	out["materialized"] = res.Materialized
	out["refreshed"] = res.Refreshed.UTC().Format(time.RFC3339Nano)
	out["elapsed"] = res.Elapsed.String()
	out["recomputed_nodes"] = res.Stats.Recomputed
	out["reused_nodes"] = res.Stats.Reused
	out["grammar_size"] = res.GrammarSize
	out["reuse_ratio"] = res.ReuseRatio()
	return out
}

// handleViewPut registers (idempotently) a live view of a prepared query
// over a stored document and refreshes it to the current snapshot. Like
// /docs/{name}/warm, it requires the query's plan to fuse into a single
// regular scan (422 otherwise) — that is the shape the incremental
// compressed index maintains under edits.
func (s *Server) handleViewPut(w http.ResponseWriter, r *http.Request) error {
	d, err := s.store.get(r.PathValue("name"))
	if err != nil {
		return err
	}
	p, err := s.queries.get(r.PathValue("query"))
	if err != nil {
		return err
	}
	ix, err := p.query.Index()
	if err != nil {
		return &httpError{status: 422, message: err.Error()}
	}
	// The backend append runs inside the registration lock: a concurrent
	// PUT for the same (doc, query) either waits and creates the view
	// itself, or observes a registration whose log record already exists
	// — never one a failed append is about to roll back.
	v, created, err := s.views.Register(d.name, p.name, ix, func() error {
		return s.storage.PutView(d.name, p.name)
	})
	if err != nil {
		return err
	}
	var syncErr error
	if created {
		if err := s.storage.Sync(); err != nil {
			// Registered and logged; only the fsync barrier failed. The
			// view stays live (dropping it would contradict the log), the
			// client gets the explicit durability error below.
			syncErr = syncFailed(fmt.Sprintf("view (%q, %q)", d.name, p.name), err)
		}
	}
	// The initial (or catch-up) refresh runs inline even in async mode:
	// the response should carry a live result, not a promise.
	if res, did := v.Refresh(d.doc, d.version); did {
		s.metrics.viewRefresh(d.name, p.name, res.Elapsed)
	}
	if syncErr != nil {
		return syncErr
	}
	body := viewJSON(v, v.Current())
	body["created"] = created
	status := 200
	if created {
		status = 201
	}
	writeJSON(w, status, body)
	return nil
}

func (s *Server) getView(r *http.Request) (*views.View, error) {
	doc, query := r.PathValue("name"), r.PathValue("query")
	if query == "" {
		query = r.URL.Query().Get("query")
	}
	if query == "" {
		return nil, errBadRequest("view lookup needs ?query=")
	}
	v, ok := s.views.Get(doc, query)
	if !ok {
		return nil, errNotFound(fmt.Sprintf("view (%q, %q)", doc, query))
	}
	return v, nil
}

// handleViewGet returns the view's current version-stamped result.
// ?tuples=1 includes the materialized tuples; span contents are included
// only when the view is at the document's current version (older
// versions' spans index bytes the store no longer holds) and ?content=0
// was not given.
func (s *Server) handleViewGet(w http.ResponseWriter, r *http.Request) error {
	v, err := s.getView(r)
	if err != nil {
		return err
	}
	res := v.Current()
	body := viewJSON(v, res)
	if res != nil && res.Materialized && boolParam(r, "tuples") {
		var doc []byte
		if d, err := s.store.get(v.Key().Doc); err == nil && d.version == res.Version && withContent(r) {
			doc = d.bytes()
		}
		body["tuples"] = tuplesJSON(res.Tuples, doc, doc != nil)
	}
	writeJSON(w, 200, body)
	return nil
}

func (s *Server) handleViewDelete(w http.ResponseWriter, r *http.Request) error {
	doc, query := r.PathValue("name"), r.PathValue("query")
	// Write-ahead order, like every other mutation path: the DeleteView
	// record is appended (under the set lock) before the view vanishes
	// from memory, so a refused append leaves the view registered instead
	// of resurrecting it on the next restart.
	dropped, err := s.views.Drop(doc, query, func() error {
		return s.storage.DeleteView(doc, query)
	})
	if err != nil {
		return err
	}
	if !dropped {
		return errNotFound(fmt.Sprintf("view (%q, %q)", doc, query))
	}
	if err := s.storage.Sync(); err != nil {
		return syncFailed(fmt.Sprintf("view (%q, %q) delete", doc, query), err)
	}
	writeJSON(w, 200, map[string]string{"status": "deleted"})
	return nil
}

func (s *Server) handleViewList(w http.ResponseWriter, _ *http.Request) error {
	return s.writeViewList(w, s.views.List())
}

func (s *Server) handleDocViewList(w http.ResponseWriter, r *http.Request) error {
	if _, err := s.store.get(r.PathValue("name")); err != nil {
		return err
	}
	return s.writeViewList(w, s.views.ForDoc(r.PathValue("name")))
}

func (s *Server) writeViewList(w http.ResponseWriter, vs []*views.View) error {
	out := make([]map[string]any, 0, len(vs))
	for _, v := range vs {
		out = append(out, viewJSON(v, v.Current()))
	}
	writeJSON(w, 200, map[string]any{"views": out})
	return nil
}

// handleDocChanges streams the tuple-level delta of a view between a
// past version (?since=V) and its current version as NDJSON:
// {"op":"add","tuple":{…}} and {"op":"remove","tuple":{…}} lines through
// the zero-allocation encoder, then a summary line
// {"done":true,"from":V,"to":W,"added":N,"removed":M}. Tuples carry
// spans only, no contents — removed tuples reference bytes the store may
// no longer hold.
//
// 404 when no such view; 409 when the view has no result yet; 410 when
// since has left the view's history window; 422 when either endpoint was
// too large to materialize.
func (s *Server) handleDocChanges(w http.ResponseWriter, r *http.Request) error {
	v, err := s.getView(r)
	if err != nil {
		return err
	}
	since := intParam(r, "since", -1)
	if since < 0 {
		return errBadRequest("changes needs ?since=<version>")
	}
	from, to, added, removed, ok := v.Changes(since)
	if !ok {
		switch {
		case to == nil:
			return &httpError{status: 409, message: "view has no refreshed result yet"}
		case from == nil:
			return &httpError{status: 410, message: fmt.Sprintf("version %d has left the view's history window", since)}
		default:
			return &httpError{status: 422, message: "an endpoint of the diff exceeded the materialization cap (count-only view)"}
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := newNDJSONEncoder(w)
	defer enc.Release()

	for _, t := range removed {
		if err := enc.EncodeChange("remove", t, nil, false); err != nil {
			return s.streamDisconnect(w)
		}
	}
	for _, t := range added {
		if err := enc.EncodeChange("add", t, nil, false); err != nil {
			return s.streamDisconnect(w)
		}
	}
	key := v.Key()
	line, _ := json.Marshal(map[string]any{
		"done":    true,
		"doc":     key.Doc,
		"query":   key.Query,
		"from":    from.Version,
		"to":      to.Version,
		"added":   len(added),
		"removed": len(removed),
	})
	if err := enc.WriteLine(line); err != nil {
		return s.streamDisconnect(w)
	}
	if err := enc.Flush(rc); err != nil {
		return s.streamDisconnect(w)
	}
	return nil
}

// streamDisconnect records a mid-stream client disconnect as a 499;
// handleStream and handleDocChanges share it.
func (s *Server) streamDisconnect(w http.ResponseWriter) error {
	s.metrics.disconnects.Add(1)
	if sw, ok := w.(*statusWriter); ok {
		sw.status = 499
	}
	return nil
}
