package server

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"docspanner/internal/storage"
)

// doRaw runs one request and returns the raw recorder (for NDJSON and
// text bodies).
func doRaw(t *testing.T, s *Server, method, target string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func metricsBody(t *testing.T, s *Server) string {
	t.Helper()
	rec := doRaw(t, s, "GET", "/metrics")
	mustStatus(t, rec.Code, 200, "/metrics")
	return rec.Body.String()
}

// newDiskServer builds a Server over a disk backend on dir.
func newDiskServer(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	b, err := storage.OpenDisk(storage.DiskOptions{Dir: dir, Fsync: storage.FsyncNever, SnapshotBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	cfg.Storage = b
	return newTestServer(t, cfg)
}

// populate drives a representative mutation mix over HTTP: plain and
// compressed documents, a CDE edit, a compression, query registrations
// (including a re-registration), views, and deletes.
func populate(t *testing.T, s *Server) {
	t.Helper()
	steps := []struct {
		method, target, body string
		status               int
	}{
		{"PUT", "/docs/plain", "to be or not to be", 200},
		{"PUT", "/docs/packed?compress=1", "abracadabra, abracadabra!", 200},
		{"PUT", "/docs/plain", "to see or not to see", 200}, // version 2
		{"POST", "/docs/edited/edit", `{"expr": "concat(plain, packed)"}`, 200},
		{"POST", "/docs/plain/compress", "", 200}, // version 3, now compressed
		{"PUT", "/queries/letters", `{"src": ".*!x{a}.*"}`, 200},
		{"PUT", "/queries/pairs", `{"src": ".*!x{ra}.*"}`, 200},
		{"PUT", "/queries/letters", `{"src": ".*!x{ab}.*"}`, 200}, // re-register
		{"PUT", "/docs/packed/views/letters", "", 201},
		{"PUT", "/docs/plain/views/letters", "", 201},
		{"PUT", "/docs/packed/views/pairs", "", 201},
		{"DELETE", "/docs/packed/views/pairs", "", 200},
		{"PUT", "/docs/doomed", "short-lived", 200},
		{"DELETE", "/docs/doomed", "", 200},
		{"PUT", "/queries/doomed", `{"src": ".*!y{b}.*"}`, 200},
		{"DELETE", "/queries/doomed", "", 200},
	}
	for _, st := range steps {
		code, body := do(t, s, st.method, st.target, st.body)
		if code != st.status {
			t.Fatalf("%s %s: status %d (want %d): %v", st.method, st.target, code, st.status, body)
		}
	}
}

// observe captures everything a client can see about the server's state.
func observe(t *testing.T, s *Server) map[string]any {
	t.Helper()
	out := map[string]any{}
	for _, ep := range []string{"/docs", "/queries", "/views"} {
		code, body := do(t, s, "GET", ep, "")
		mustStatus(t, code, 200, ep)
		out[ep] = body
	}
	for _, d := range []string{"plain", "packed", "edited"} {
		code, body := do(t, s, "GET", "/docs/"+d, "")
		mustStatus(t, code, 200, d)
		out["doc:"+d] = body
	}
	return out
}

func TestServerRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	s := newDiskServer(t, dir, Config{})
	populate(t, s)
	before := observe(t, s)
	s.Close()

	re := newDiskServer(t, dir, Config{})
	defer re.Close()
	after := observe(t, re)

	// Deterministic rehydration: identical listings — same versions, same
	// updated/registered timestamps, no spurious bumps. View refresh
	// counters reset with the process, so normalize them away.
	for k, b := range before {
		a := after[k]
		if !reflect.DeepEqual(scrubCounters(b), scrubCounters(a)) {
			t.Errorf("%s diverged across restart:\n before %v\n after  %v", k, b, a)
		}
	}

	// Document content survives byte-for-byte.
	code, _ := do(t, re, "GET", "/docs/plain?content=1", "")
	mustStatus(t, code, 200, "content")

	// Versions continue, not restart: the recovered plain doc is at
	// version 3, so the next put must be 4.
	code, body := do(t, re, "PUT", "/docs/plain", "a fourth body")
	mustStatus(t, code, 200, "put after restart")
	if body["version"] != float64(4) {
		t.Fatalf("post-restart version = %v, want 4", body["version"])
	}
}

// scrubCounters drops process-lifetime refresh counters and refresh
// timing from nested view objects so restart comparison sees only the
// durable facts (doc, query, version, count, materialized tuples).
func scrubCounters(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := map[string]any{}
		for k, val := range x {
			switch k {
			case "refreshes", "skipped_refreshes", "refreshed", "elapsed",
				"recomputed_nodes", "reused_nodes", "reuse_ratio":
				continue
			}
			out[k] = scrubCounters(val)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i, val := range x {
			out[i] = scrubCounters(val)
		}
		return out
	default:
		return v
	}
}

// TestServerRestartNoSpuriousChanges is the satellite-2 contract: a
// /changes cursor taken at the current version before a restart yields
// an empty delta after it — recovery refreshes views at the recovered
// version instead of bumping them.
func TestServerRestartNoSpuriousChanges(t *testing.T) {
	dir := t.TempDir()
	s := newDiskServer(t, dir, Config{})
	populate(t, s)
	code, body := do(t, s, "GET", "/docs/packed/views/letters", "")
	mustStatus(t, code, 200, "view before restart")
	cursor := int(body["version"].(float64))
	s.Close()

	re := newDiskServer(t, dir, Config{})
	defer re.Close()
	code, body = do(t, re, "GET", "/docs/packed/views/letters", "")
	mustStatus(t, code, 200, "view after restart")
	if got := int(body["version"].(float64)); got != cursor {
		t.Fatalf("view version moved across restart: %d -> %d", cursor, got)
	}
	rec := doRaw(t, re, "GET", fmt.Sprintf("/docs/packed/changes?query=letters&since=%d", cursor))
	if rec.Code != 200 {
		t.Fatalf("changes after restart: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"added":0`) || !strings.Contains(rec.Body.String(), `"removed":0`) {
		t.Fatalf("expected empty delta across restart, got %s", rec.Body.String())
	}
}

// TestServerRestartAfterCrash skips the clean Close: the WAL tail was
// never fsynced and gets a garbage partial frame appended (what a crash
// mid-append leaves behind). Recovery must truncate it and serve.
func TestServerRestartAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s := newDiskServer(t, dir, Config{})
	populate(t, s)
	before := observe(t, s)
	// No clean s.Close() — simulate the process dying: drop the directory
	// lock and file handles without any flush, then tear the log tail.
	if err := s.storage.(*storage.Disk).Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("globbing wal files: %v %v", names, err)
	}
	f, err := os.OpenFile(names[len(names)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x03, 0, 0, 0xaa}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re := newDiskServer(t, dir, Config{})
	defer re.Close()
	after := observe(t, re)
	for k, b := range before {
		if !reflect.DeepEqual(scrubCounters(b), scrubCounters(after[k])) {
			t.Errorf("%s diverged across crash-restart", k)
		}
	}
	if !strings.Contains(metricsBody(t, re), "spannerd_storage_recovered_torn_tail 1") {
		t.Error("torn-tail truncation not reported on /metrics")
	}
}

func TestServerSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := newDiskServer(t, dir, Config{})
	populate(t, s)
	code, body := do(t, s, "POST", "/admin/snapshot", "")
	mustStatus(t, code, 200, "snapshot")
	if body["backend"] != "disk" || body["snapshots"] != float64(1) {
		t.Fatalf("snapshot response: %v", body)
	}
	before := observe(t, s)
	s.Close()
	if snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap")); len(snaps) != 1 {
		t.Fatalf("want 1 snapshot file, have %v", snaps)
	}

	re := newDiskServer(t, dir, Config{})
	defer re.Close()
	after := observe(t, re)
	for k, b := range before {
		if !reflect.DeepEqual(scrubCounters(b), scrubCounters(after[k])) {
			t.Errorf("%s diverged across snapshot restart", k)
		}
	}

	// The memory backend's snapshot endpoint is a well-typed no-op.
	m := newTestServer(t, Config{})
	defer m.Close()
	code, body = do(t, m, "POST", "/admin/snapshot", "")
	mustStatus(t, code, 200, "memory snapshot")
	if body["backend"] != "memory" || body["persistent"] != false {
		t.Fatalf("memory snapshot response: %v", body)
	}
}

func TestServerStorageMetrics(t *testing.T) {
	dir := t.TempDir()
	s := newDiskServer(t, dir, Config{})
	defer s.Close()
	populate(t, s)
	mb := metricsBody(t, s)
	for _, want := range []string{
		`spannerd_storage_info{backend="disk",persistent="true"} 1`,
		"spannerd_wal_records_total",
		"spannerd_wal_fsyncs_total",
		"spannerd_storage_snapshot_age_seconds",
	} {
		if !strings.Contains(mb, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(mb, "spannerd_wal_records_total 0\n") {
		t.Error("WAL record counter stayed zero despite mutations")
	}

	m := newTestServer(t, Config{})
	defer m.Close()
	if !strings.Contains(metricsBody(t, m), `spannerd_storage_info{backend="memory",persistent="false"} 1`) {
		t.Error("memory backend not reported on /metrics")
	}
}
