package server

import (
	"net/http"
	"sync/atomic"
)

// BootGate lets spannerd accept connections before recovery finishes.
// Until Ready is called it answers:
//
//   - GET /healthz → 200 (the process is alive — don't restart it)
//   - GET /readyz  → 503 {"status":"recovering"} (don't route to it)
//   - anything else → 503 with Retry-After
//
// so a cluster coordinator's health prober can tell "worker is
// replaying its WAL/snapshot" from "worker is gone", and never routes a
// request into a half-recovered store. Ready atomically swaps in the
// real handler; requests racing the swap get either answer, both
// correct.
type BootGate struct {
	h atomic.Pointer[http.Handler]
}

// NewBootGate returns a gate still in its booting state.
func NewBootGate() *BootGate { return &BootGate{} }

// Ready installs the recovered server as the live handler.
func (g *BootGate) Ready(h http.Handler) { g.h.Store(&h) }

func (g *BootGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if hp := g.h.Load(); hp != nil {
		(*hp).ServeHTTP(w, r)
		return
	}
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		writeJSON(w, 200, map[string]any{"status": "ok", "phase": "booting"})
	case r.Method == http.MethodGet && r.URL.Path == "/readyz":
		w.Header().Set("Retry-After", "1")
		writeJSON(w, 503, map[string]any{"status": "recovering"})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, 503, map[string]any{"error": "server is recovering; not ready for requests"})
	}
}
