// Package server implements spannerd, an HTTP/JSON document-spanner
// extraction service over the docspanner library: a persistent store of
// named (optionally SLP-compressed) documents supporting in-place CDE
// edits, a registry of prepared queries (linted and planned once at
// registration), evaluation endpoints — materialized, counting,
// NDJSON streaming off the constant-delay enumerator, and batch over
// document sets on a worker pool — plus live metrics (/metrics, /varz,
// /healthz) exposing per-query latency histograms and the hit rates of
// the shared plan and SLP matrix caches.
package server

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"docspanner"
	"docspanner/internal/plan"
	"docspanner/internal/slpmatch"
	"docspanner/internal/storage"
	"docspanner/internal/views"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// MaxConcurrent bounds the number of evaluation requests running at
	// once (eval, count, stream, batch, warm); further requests wait for
	// a slot until their context expires, then get 503. Default 64.
	MaxConcurrent int
	// RequestTimeout is the default evaluation deadline per request;
	// clients may lower or raise it with ?timeout=, capped by MaxTimeout.
	// Default 30s.
	RequestTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. Default 5m.
	MaxTimeout time.Duration
	// LintFailOn rejects query registrations whose lint diagnostics reach
	// this severity: "info" | "warning" | "error" | "never". Default
	// "error".
	LintFailOn string
	// MaxBodyBytes bounds request bodies (document ingests). Default 64 MiB.
	MaxBodyBytes int64
	// ViewRefresh selects how live views follow document mutations:
	// "sync" (default) refreshes the document's views inside the mutating
	// request, so the response already reflects refreshed views; "async"
	// hands the document to a background refresher and returns
	// immediately — views converge shortly after (version-monotonic, so
	// coalesced or reordered refreshes are harmless).
	ViewRefresh string
	// MaxMaterialize caps tuples materialized per view version; counts
	// stay exact above it, only tuple lists and /changes diffs are
	// withheld. Default 65536.
	MaxMaterialize int
	// ViewHistory is how many past versions each view keeps for /changes
	// diffs. Default 8.
	ViewHistory int
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
	// Storage is the durability backend. Nil serves purely in-memory
	// (storage.NewMemory()); a disk backend makes every mutation durable
	// and recovers the store, registry, and views on New. The Server owns
	// the backend from here on: Close closes it.
	Storage storage.Backend
}

func (c Config) withDefaults() (Config, error) {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.LintFailOn == "" {
		c.LintFailOn = "error"
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	switch c.ViewRefresh {
	case "":
		c.ViewRefresh = "sync"
	case "sync", "async":
	default:
		return c, fmt.Errorf("server: ViewRefresh %q (want sync or async)", c.ViewRefresh)
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	if c.Storage == nil {
		c.Storage = storage.NewMemory()
	}
	return c, nil
}

// Server is the spannerd HTTP handler. Create one with New and mount it
// on an http.Server (cmd/spannerd does exactly that); it is safe for
// use by any number of concurrent requests.
type Server struct {
	cfg     Config
	storage storage.Backend
	store   *docStore
	queries *registry
	views   *views.Set
	metrics *metrics
	sem     chan struct{}
	mux     *http.ServeMux

	// Async view refresher: mutations enqueue document names; the worker
	// refreshes that document's views from the then-current snapshot.
	// Version monotonicity makes coalesced and reordered deliveries safe.
	refreshQ  chan string
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Server from the config, recovering the persisted state
// (documents, prepared queries, live views) from the storage backend.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	failOn, err := parseFailOn(cfg.LintFailOn)
	if err != nil {
		return nil, err
	}
	state, err := cfg.Storage.Load()
	if err != nil {
		return nil, fmt.Errorf("server: loading storage: %w", err)
	}
	store, err := newDocStore(state, cfg.Storage)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		storage: cfg.Storage,
		store:   store,
		queries: newRegistry(failOn, cfg.Storage),
		views:   views.NewSet(views.Config{MaxMaterialize: cfg.MaxMaterialize, History: cfg.ViewHistory}),
		metrics: newMetrics(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		stop:    make(chan struct{}),
	}
	for _, qs := range state.SortedQueries() {
		if err := s.queries.recover(qs); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	if err := s.rehydrateViews(state); err != nil {
		return nil, err
	}
	if cfg.ViewRefresh == "async" {
		s.refreshQ = make(chan string, 1024)
		s.wg.Add(1)
		go s.refreshWorker()
	}
	s.routes()
	return s, nil
}

// rehydrateViews re-registers the persisted live views and refreshes
// each to the recovered document snapshot at its recovered version —
// no version bump, no time.Now() stamp drift, no spurious /changes
// delta: a client whose cursor is at the current version sees an empty
// diff across the restart.
func (s *Server) rehydrateViews(state *storage.State) error {
	for _, k := range state.SortedViews() {
		d, err := s.store.get(k.Doc)
		if err != nil {
			return fmt.Errorf("server: recovered view (%q, %q): document missing", k.Doc, k.Query)
		}
		p, err := s.queries.get(k.Query)
		if err != nil {
			return fmt.Errorf("server: recovered view (%q, %q): query missing", k.Doc, k.Query)
		}
		ix, err := p.query.Index()
		if err != nil {
			return fmt.Errorf("server: recovered view (%q, %q): %w", k.Doc, k.Query, err)
		}
		// No persist callback: the registration is already in the log or
		// snapshot being recovered.
		v, _, _ := s.views.Register(k.Doc, k.Query, ix, nil)
		v.Refresh(d.doc, d.version)
	}
	return nil
}

// Close stops the background view refresher (if any), waits for it, and
// closes the storage backend — flushing the write-ahead log. Safe to
// call multiple times; the Server keeps serving reads afterwards but
// async view refreshes no longer run and mutations will fail.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		if err := s.storage.Close(); err != nil {
			s.cfg.Logger.Error("closing storage backend", slog.String("error", err.Error()))
		}
	})
}

func (s *Server) refreshWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case name := <-s.refreshQ:
			s.refreshDocViews(name)
		}
	}
}

// refreshDocViews brings every view over the named document up to the
// store's current snapshot. Stale requests (the document moved on, or a
// racing worker already applied this version) are skipped by the views'
// version monotonicity.
func (s *Server) refreshDocViews(name string) {
	d, err := s.store.get(name)
	if err != nil {
		return // deleted since enqueued; DropDoc already ran
	}
	for _, v := range s.views.ForDoc(name) {
		if res, did := v.Refresh(d.doc, d.version); did {
			s.metrics.viewRefresh(v.Key().Doc, v.Key().Query, res.Elapsed)
		}
	}
}

// notifyDocChanged triggers view maintenance after a successful mutation
// of the named document — inline in sync mode, queued in async mode. A
// full queue falls back to a synchronous refresh rather than dropping
// the notification (a dropped edit would leave views stale until the
// next mutation).
func (s *Server) notifyDocChanged(name string) {
	if s.refreshQ == nil {
		s.refreshDocViews(name)
		return
	}
	select {
	case s.refreshQ <- name:
	default:
		s.refreshDocViews(name)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.wrap("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /varz", s.wrap("varz", s.handleVarz))

	s.mux.HandleFunc("GET /docs", s.wrap("docs.list", s.handleDocList))
	s.mux.HandleFunc("PUT /docs/{name}", s.wrap("docs.put", s.handleDocPut))
	s.mux.HandleFunc("GET /docs/{name}", s.wrap("docs.get", s.handleDocGet))
	s.mux.HandleFunc("DELETE /docs/{name}", s.wrap("docs.delete", s.handleDocDelete))
	s.mux.HandleFunc("POST /docs/{name}/compress", s.wrap("docs.compress", s.handleDocCompress))
	s.mux.HandleFunc("POST /docs/{name}/edit", s.wrap("docs.edit", s.handleDocEdit))
	s.mux.HandleFunc("POST /docs/{name}/warm", s.wrap("docs.warm", s.limited(s.handleDocWarm)))
	s.mux.HandleFunc("GET /docs/{name}/views", s.wrap("views.list", s.handleDocViewList))
	s.mux.HandleFunc("PUT /docs/{name}/views/{query}", s.wrap("views.put", s.limited(s.handleViewPut)))
	s.mux.HandleFunc("GET /docs/{name}/views/{query}", s.wrap("views.get", s.handleViewGet))
	s.mux.HandleFunc("DELETE /docs/{name}/views/{query}", s.wrap("views.delete", s.handleViewDelete))
	s.mux.HandleFunc("GET /docs/{name}/changes", s.wrap("docs.changes", s.handleDocChanges))
	s.mux.HandleFunc("GET /views", s.wrap("views.list", s.handleViewList))

	s.mux.HandleFunc("GET /queries", s.wrap("queries.list", s.handleQueryList))
	s.mux.HandleFunc("PUT /queries/{name}", s.wrap("queries.put", s.handleQueryPut))
	s.mux.HandleFunc("GET /queries/{name}", s.wrap("queries.get", s.handleQueryGet))
	s.mux.HandleFunc("DELETE /queries/{name}", s.wrap("queries.delete", s.handleQueryDelete))
	s.mux.HandleFunc("GET /queries/{name}/explain", s.wrap("queries.explain", s.handleQueryExplain))

	s.mux.HandleFunc("GET /eval", s.wrap("eval", s.limited(s.handleEval)))
	s.mux.HandleFunc("GET /count", s.wrap("count", s.limited(s.handleCount)))
	s.mux.HandleFunc("GET /stream", s.wrap("stream", s.limited(s.handleStream)))
	s.mux.HandleFunc("POST /batch", s.wrap("batch", s.limited(s.handleBatch)))

	s.mux.HandleFunc("POST /admin/flush-caches", s.wrap("admin.flush", s.handleFlushCaches))
	s.mux.HandleFunc("POST /admin/snapshot", s.wrap("admin.snapshot", s.handleSnapshot))
}

// httpError is an error with an HTTP status; handlers return it to get
// a structured JSON error response. retryAfter > 0 adds a Retry-After
// header (seconds) — the coordinator's backoff honors it, so a loaded
// worker can push fan-out pressure back instead of being hammered.
type httpError struct {
	status     int
	message    string
	retryAfter int
	diags      []docspanner.Diagnostic
}

func (e *httpError) Error() string { return e.message }

func errNotFound(what string) error  { return &httpError{status: 404, message: what + " not found"} }
func errBadRequest(msg string) error { return &httpError{status: 400, message: msg} }
func errUnavailable(msg string) error {
	return &httpError{status: 503, message: msg, retryAfter: 1}
}

// syncFailedError reports a mutation that was applied in memory and
// appended to the write-ahead log before its durability barrier (fsync)
// failed: the write is visible and replays if the log survives, but the
// server cannot promise it is on disk. Handlers run their post-mutation
// side effects (view maintenance, cascade drops) before surfacing it —
// skipping them would leave memory inconsistent with a mutation that
// actually happened — and renderError turns it into an explicit 500
// plus the spannerd_storage_sync_failures_total counter, so the client
// is never told the write didn't happen.
type syncFailedError struct {
	what string
	err  error
}

func (e *syncFailedError) Error() string {
	return fmt.Sprintf("%s applied and logged, but the durability barrier failed: %v", e.what, e.err)
}

func (e *syncFailedError) Unwrap() error { return e.err }

func syncFailed(what string, err error) error { return &syncFailedError{what: what, err: err} }

// isSyncFailed tells a handler whether an error still demands its
// post-mutation side effects.
func isSyncFailed(err error) bool {
	var sf *syncFailedError
	return errors.As(err, &sf)
}

// Request IDs are a random per-process prefix plus a counter: unique
// across a cluster's processes without per-request entropy reads.
var (
	reqIDPrefix = func() string {
		var b [6]byte
		if _, err := crand.Read(b[:]); err != nil {
			return "00deadbeef00"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDCounter atomic.Uint64
)

// requestID returns the request's X-Request-ID, minting one when the
// client didn't send it. IDs are capped at 128 bytes so a hostile
// header can't bloat every log line it transits.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDCounter.Add(1), 16)
}

// statusWriter records the response code for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = 200
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so NDJSON streaming works
// through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// FlushError forwards the error-reporting flush that
// http.ResponseController prefers over plain Flush. Without it the
// wrapper would hide flush failures — the one signal that tells a
// streaming handler its client hung up — behind the error-swallowing
// Flusher path.
func (w *statusWriter) FlushError() error {
	switch f := w.ResponseWriter.(type) {
	case interface{ FlushError() error }:
		return f.FlushError()
	case http.Flusher:
		f.Flush()
		return nil
	}
	return http.ErrNotSupported
}

// wrap adapts an error-returning handler: it bounds the body, tracks
// inflight/latency metrics, renders httpErrors as JSON, and emits one
// structured log line per request. Every request carries an
// X-Request-ID — the client's if it sent one (the coordinator stamps
// its own onto worker hops), freshly generated otherwise — echoed on
// the response and logged on both sides, so one extraction can be
// trace-stitched across the coordinator→worker boundary.
func (s *Server) wrap(handler string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		reqID := requestID(r)
		w.Header().Set("X-Request-ID", reqID)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		sw := &statusWriter{ResponseWriter: w}
		err := h(sw, r)
		if err != nil {
			s.renderError(sw, err)
		}
		if sw.status == 0 {
			sw.status = 200
		}
		d := time.Since(start)
		s.metrics.request(handler, sw.status, d)
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("handler", handler),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", d),
			slog.String("request_id", reqID),
		)
	}
}

func (s *Server) renderError(w *statusWriter, err error) {
	if w.status != 0 {
		// Headers already sent (mid-stream failure); nothing to render.
		return
	}
	he := &httpError{status: 500, message: err.Error()}
	var cast *httpError
	if errors.As(err, &cast) {
		he = cast
	}
	var sf *syncFailedError
	if errors.As(err, &sf) {
		s.metrics.syncFailures.Add(1)
		he = &httpError{status: 500, message: sf.Error()}
	} else if errors.Is(err, context.DeadlineExceeded) {
		he = &httpError{status: 504, message: "evaluation deadline exceeded"}
		s.metrics.timeouts.Add(1)
	} else if errors.Is(err, context.Canceled) {
		he = &httpError{status: 499, message: "request cancelled"}
	}
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
	}
	body := map[string]any{"error": he.message}
	if he.diags != nil {
		body["diagnostics"] = he.diags
	}
	writeJSON(w, he.status, body)
}

// limited applies the concurrency limiter and the per-request deadline
// to an evaluation handler. Waiting for a slot respects the client
// disconnecting; a slot that does not free up before the deadline is a
// 503, not a queue that grows without bound.
func (s *Server) limited(h func(http.ResponseWriter, *http.Request) error) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		ctx, cancel, err := s.requestContext(r)
		if err != nil {
			return err
		}
		defer cancel()
		// Prefer a free slot over an already-expired context (select
		// picks randomly among ready cases): a request that can run
		// immediately should fail with its own deadline error, not 503.
		select {
		case s.sem <- struct{}{}:
		default:
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				s.metrics.rejected.Add(1)
				return errUnavailable("server at max concurrency; retry later")
			}
		}
		defer func() { <-s.sem }()
		return h(w, r.WithContext(ctx))
	}
}

// requestContext derives the evaluation context: the client's context
// plus the default or ?timeout= deadline (capped by MaxTimeout).
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	return requestContextFor(r, s.cfg.RequestTimeout, s.cfg.MaxTimeout)
}

// requestContextFor is the shared ?timeout= policy, used by both the
// worker Server and the cluster Coordinator (whose whole fan-out runs
// under the one deadline).
func requestContextFor(r *http.Request, def, max time.Duration) (context.Context, context.CancelFunc, error) {
	d := def
	if t := r.URL.Query().Get("timeout"); t != "" {
		td, err := time.ParseDuration(t)
		if err != nil || td <= 0 {
			return nil, nil, errBadRequest(fmt.Sprintf("bad timeout %q (want a positive Go duration like 250ms)", t))
		}
		d = td
	}
	if d > max {
		d = max
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// --- observability handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	writeJSON(w, 200, map[string]any{
		"status":  "ok",
		"uptime":  time.Since(s.metrics.start).String(),
		"docs":    s.store.len(),
		"queries": s.queries.len(),
		"views":   s.views.Len(),
	})
	return nil
}

// handleReadyz answers "route traffic here". A Server that exists is
// by construction done recovering (New replays the WAL before
// returning), so this always says serving; the recovering 503 comes
// from the BootGate that fronts the listener while New runs. /healthz
// stays liveness-only — it answers ok during recovery too, so process
// supervisors don't kill a worker for replaying a long log.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) error {
	writeJSON(w, 200, map[string]any{
		"status":  "serving",
		"docs":    s.store.len(),
		"queries": s.queries.len(),
		"views":   s.views.Len(),
	})
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.writeProm(w, s.store.len(), s.queries.len(), s.views.Len(), s.storage.Stats())
	return nil
}

// handleVarz renders the process expvars plus the server's own state as
// one JSON object. Hand-rolled (expvar.Do instead of expvar.Publish)
// because Publish is global and panics on duplicate names — multiple
// Server instances in one process, as in tests, must not fight over it.
func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	ph, pm := plan.CacheStats()
	mh, mm := slpmatch.CacheStats()
	wr, wu := slpmatch.WarmDeltaStats()
	own, _ := json.Marshal(map[string]any{
		"docs":               s.store.len(),
		"queries":            s.queries.len(),
		"views":              s.views.Len(),
		"view_refreshes":     s.metrics.viewRefreshes.Load(),
		"sync_failures":      s.metrics.syncFailures.Load(),
		"warm_recomputed":    wr,
		"warm_reused":        wu,
		"grammar_nodes":      s.store.grammarSize(),
		"inflight":           s.metrics.inflight.Load(),
		"rejected":           s.metrics.rejected.Load(),
		"timeouts":           s.metrics.timeouts.Load(),
		"disconnects":        s.metrics.disconnects.Load(),
		"plan_cache_hits":    ph,
		"plan_cache_misses":  pm,
		"plan_cache_size":    plan.CacheLen(),
		"matrix_cache_hits":  mh,
		"matrix_cache_miss":  mm,
		"matrix_cache_cores": slpmatch.Cores(),
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "spannerd", own)
	return nil
}

func (s *Server) handleFlushCaches(w http.ResponseWriter, _ *http.Request) error {
	// Safe while evaluations are in flight: plan.ResetCache only empties
	// the hash-consing table (planned queries keep their plans), and
	// slpmatch.ResetCaches detaches the shared cores — instances built
	// before the flush keep theirs (see the ResetCaches contract).
	plan.ResetCache()
	slpmatch.ResetCaches()
	writeJSON(w, 200, map[string]string{"status": "flushed"})
	return nil
}

// handleSnapshot forces a storage snapshot and log rotation now (a
// no-op on the memory backend). Useful before planned restarts: the
// next recovery loads the snapshot instead of replaying the whole log.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) error {
	if err := s.storage.Snapshot(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	st := s.storage.Stats()
	writeJSON(w, 200, map[string]any{
		"status":         "ok",
		"backend":        st.Kind,
		"persistent":     st.Persistent,
		"snapshots":      st.Snapshots,
		"snapshot_bytes": st.SnapshotBytes,
		"wal_size_bytes": st.WALSizeBytes,
	})
	return nil
}

// discardHandler is a slog.Handler that drops everything (slog's
// DiscardHandler arrived in go 1.24; this repo targets 1.23).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
