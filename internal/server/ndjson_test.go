package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"docspanner"
)

// TestAppendTupleMatchesEncodingJSON pins the hand-rolled serializer to
// encoding/json byte for byte: same sorted keys, same escaping. The doc
// is adversarial — HTML characters (escaped to \u003c etc. because the
// Encoder default is EscapeHTML), control bytes, invalid UTF-8, and the
// U+2028/U+2029 JS line separators.
func TestAppendTupleMatchesEncodingJSON(t *testing.T) {
	doc := []byte("ab<&>\"\\\x00\x1f\n\r\tcd\xff\xfe" + "é\u2028\u2029" + "end")
	n := len(doc)
	sp := docspanner.NewSpan
	cases := []docspanner.Tuple{
		{},                             // no assigned variables at all
		{"x": sp(1, 1)},                // empty span content
		{"x": sp(1, n+1)},              // the whole adversarial doc
		{"x": sp(3, 9), "y": sp(1, 2)}, // HTML + control characters
		{"x": sp(13, 15)},              // invalid UTF-8 run
		{"x": sp(15, 16)},              // splits the é rune: stray continuation byte
		{"b": sp(1, 4), "a": sp(2, 5), "z": sp(1, 1), "m": sp(16, n+1)}, // key sorting + U+2028/9
		{"weird\"<&>\nname": sp(1, 2)},                                  // escaping inside the variable name
	}
	for _, wc := range []bool{true, false} {
		for i, tup := range cases {
			var want bytes.Buffer
			if err := json.NewEncoder(&want).Encode(tupleJSON(tup, doc, wc)); err != nil {
				t.Fatal(err)
			}
			got, _ := appendTupleValue(nil, tup, doc, wc, nil)
			got = append(got, '\n')
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("case %d content=%v:\n got  %q\n want %q", i, wc, got, want.Bytes())
			}
		}
	}

	// Content requested but no document text available: both paths omit
	// the content key.
	tup := docspanner.Tuple{"x": sp(1, 2)}
	var want bytes.Buffer
	_ = json.NewEncoder(&want).Encode(tupleJSON(tup, nil, true))
	got, _ := appendTupleValue(nil, tup, nil, true, nil)
	got = append(got, '\n')
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("nil doc: got %q, want %q", got, want.Bytes())
	}
}

// TestStreamEncodeAllocs gates the per-tuple streaming path at zero
// allocations once the encoder's buffers are warm.
func TestStreamEncodeAllocs(t *testing.T) {
	doc := []byte(strings.Repeat("ab", 64))
	tup := docspanner.Tuple{"x": docspanner.NewSpan(1, 3), "y": docspanner.NewSpan(5, 9)}
	enc := newNDJSONEncoder(io.Discard)
	defer enc.Release()
	if err := enc.EncodeTuple(tup, doc, true); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := enc.EncodeTuple(tup, doc, true); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EncodeTuple allocates %v per tuple, want 0", allocs)
	}
}

// BenchmarkAppendTuple measures the steady-state per-tuple encode cost
// of the streaming path — the serve-bench hot loop with the HTTP layer
// peeled away.
func BenchmarkAppendTuple(b *testing.B) {
	doc := []byte(strings.Repeat("ab", 2048))
	tup := docspanner.Tuple{"x": docspanner.NewSpan(11, 13)}
	for _, wc := range []bool{false, true} {
		name := "spans"
		if wc {
			name = "content"
		}
		b.Run(name, func(b *testing.B) {
			enc := newNDJSONEncoder(io.Discard)
			defer enc.Release()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := enc.EncodeTuple(tup, doc, wc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// brokenFlushWriter simulates a client that goes away: flushes start
// failing after failAfter successes. ResponseController reaches it
// through statusWriter.FlushError.
type brokenFlushWriter struct {
	*httptest.ResponseRecorder
	failAfter int
	flushes   int
}

func (b *brokenFlushWriter) FlushError() error {
	b.flushes++
	if b.flushes > b.failAfter {
		return errors.New("write tcp: broken pipe")
	}
	return nil
}

// TestStreamAbortsOnFlushError asserts the disconnect contract: once a
// flush fails the handler stops enumerating instead of serializing the
// rest of the result into a dead connection, records the request as a
// 499, and bumps the disconnect counter. Before this, flush errors were
// discarded and the stream ran to completion against a gone client.
func TestStreamAbortsOnFlushError(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/big", strings.Repeat("ab", 3000)) // 3000 tuples
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)

	rec := &brokenFlushWriter{ResponseRecorder: httptest.NewRecorder(), failAfter: 2}
	req := httptest.NewRequest("GET", "/stream?query=q&doc=big&content=0", nil)
	s.ServeHTTP(rec, req)

	// Flushes 1 and 2 pass (tuples 1 and 64); flush 3 (tuple 128) kills
	// the stream. Well under the 3000 tuples a full run would emit, and
	// no summary line is written to the dead connection.
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) >= 3000 {
		t.Fatalf("stream emitted %d lines after the client disconnected", len(lines))
	}
	if strings.Contains(lines[len(lines)-1], `"done"`) {
		t.Fatalf("summary line written to a disconnected client: %q", lines[len(lines)-1])
	}
	if got := s.metrics.disconnects.Load(); got != 1 {
		t.Fatalf("disconnects = %d, want 1", got)
	}
	if got := s.metrics.get(s.metrics.requests, "stream|499"); got != 1 {
		t.Fatalf("stream|499 requests = %d, want 1", got)
	}
}

// TestStreamClientKilledMidStream drives the same contract over a real
// TCP connection: the client reads the start of the response and slams
// the socket shut (SetLinger(0) turns the close into an immediate RST).
// The handler must notice — a blocked or failed write — and terminate
// promptly rather than producing the remaining megabytes.
func TestStreamClientKilledMidStream(t *testing.T) {
	s := newTestServer(t, Config{})
	doc := strings.Repeat("ab", 1<<19) // 512Ki tuples, ~20 MB of NDJSON
	req := httptest.NewRequest("PUT", "/docs/huge", strings.NewReader(doc))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	mustStatus(t, rec.Code, 200, "put huge")
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)

	ts := httptest.NewServer(s)
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /stream?query=q&doc=huge HTTP/1.1\r\nHost: spannerd\r\n\r\n")
	if _, err := conn.Read(make([]byte, 4096)); err != nil {
		t.Fatalf("reading response start: %v", err)
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()

	deadline := time.Now().Add(15 * time.Second)
	for s.metrics.disconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler did not record a disconnect after the client was killed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
