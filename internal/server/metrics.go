package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"docspanner/internal/plan"
	"docspanner/internal/slpmatch"
	"docspanner/internal/storage"
)

// latencyBuckets are the histogram upper bounds in seconds (the last
// implicit bucket is +Inf), spanning constant-delay streaming hits
// (tens of µs) through slow materializing evaluations.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic counters;
// observations and rendering may run concurrently.
type histogram struct {
	counts []atomic.Uint64 // len(latencyBuckets)+1, last is +Inf
	sumNs  atomic.Int64
	count  atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.count.Add(1)
}

// quantile returns an estimate of the q-quantile in seconds (upper
// bucket bound interpolation; good enough for p50/p99 reporting).
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(latencyBuckets) {
				return latencyBuckets[i]
			}
			return latencyBuckets[len(latencyBuckets)-1] * 2
		}
	}
	return latencyBuckets[len(latencyBuckets)-1] * 2
}

// metrics is the server's observability state: request and tuple
// counters, per-handler and per-query latency histograms, and the
// process-wide cache statistics it snapshots on render. All methods are
// safe for concurrent use.
type metrics struct {
	start time.Time

	mu         sync.Mutex
	requests   map[string]*atomic.Uint64 // "handler|code" -> count
	tuples     map[string]*atomic.Uint64 // "query|kind" -> tuples emitted
	handlerLat map[string]*histogram     // handler -> latency
	queryLat   map[string]*histogram     // "query|kind" -> latency
	viewLat    map[string]*histogram     // "doc|query" -> view refresh latency

	inflight      atomic.Int64
	rejected      atomic.Uint64 // requests refused by the concurrency limiter
	timeouts      atomic.Uint64 // requests cancelled by deadline
	disconnects   atomic.Uint64 // streams aborted by client disconnect (499)
	viewRefreshes atomic.Uint64 // view refreshes performed (stale skips excluded)
	syncFailures  atomic.Uint64 // mutations applied and logged whose fsync barrier failed
}

func newMetrics() *metrics {
	return &metrics{
		start:      time.Now(),
		requests:   map[string]*atomic.Uint64{},
		tuples:     map[string]*atomic.Uint64{},
		handlerLat: map[string]*histogram{},
		queryLat:   map[string]*histogram{},
		viewLat:    map[string]*histogram{},
	}
}

func (m *metrics) counter(table map[string]*atomic.Uint64, key string) *atomic.Uint64 {
	m.mu.Lock()
	c, ok := table[key]
	if !ok {
		c = &atomic.Uint64{}
		table[key] = c
	}
	m.mu.Unlock()
	return c
}

func (m *metrics) histogramFor(table map[string]*histogram, key string) *histogram {
	m.mu.Lock()
	h, ok := table[key]
	if !ok {
		h = newHistogram()
		table[key] = h
	}
	m.mu.Unlock()
	return h
}

func (m *metrics) request(handler string, code int, d time.Duration) {
	m.counter(m.requests, fmt.Sprintf("%s|%d", handler, code)).Add(1)
	m.histogramFor(m.handlerLat, handler).observe(d)
}

func (m *metrics) query(name, kind string, tuples int, d time.Duration) {
	m.counter(m.tuples, name+"|"+kind).Add(uint64(tuples))
	m.histogramFor(m.queryLat, name+"|"+kind).observe(d)
}

func (m *metrics) viewRefresh(doc, query string, d time.Duration) {
	m.viewRefreshes.Add(1)
	m.histogramFor(m.viewLat, doc+"|"+query).observe(d)
}

// sortedKeys snapshots a label table's keys under the lock for
// deterministic exposition.
func sortedKeys[V any](mu *sync.Mutex, table map[string]V) []string {
	mu.Lock()
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	mu.Unlock()
	sort.Strings(keys)
	return keys
}

func (m *metrics) get(table map[string]*atomic.Uint64, key string) uint64 {
	m.mu.Lock()
	c := table[key]
	m.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// writeProm renders the Prometheus text exposition format.
func (m *metrics) writeProm(w io.Writer, docs, queries, views int, st storage.Stats) {
	fmt.Fprintf(w, "# HELP spannerd_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE spannerd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "spannerd_uptime_seconds %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP spannerd_documents Documents in the store.\n")
	fmt.Fprintf(w, "# TYPE spannerd_documents gauge\n")
	fmt.Fprintf(w, "spannerd_documents %d\n", docs)
	fmt.Fprintf(w, "# HELP spannerd_queries Prepared queries in the registry.\n")
	fmt.Fprintf(w, "# TYPE spannerd_queries gauge\n")
	fmt.Fprintf(w, "spannerd_queries %d\n", queries)
	fmt.Fprintf(w, "# HELP spannerd_views Live materialized (doc, query) views.\n")
	fmt.Fprintf(w, "# TYPE spannerd_views gauge\n")
	fmt.Fprintf(w, "spannerd_views %d\n", views)

	m.writeStorageProm(w, st)

	fmt.Fprintf(w, "# HELP spannerd_inflight_requests Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE spannerd_inflight_requests gauge\n")
	fmt.Fprintf(w, "spannerd_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP spannerd_rejected_total Requests refused by the concurrency limiter.\n")
	fmt.Fprintf(w, "# TYPE spannerd_rejected_total counter\n")
	fmt.Fprintf(w, "spannerd_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# HELP spannerd_timeouts_total Requests cancelled by their deadline.\n")
	fmt.Fprintf(w, "# TYPE spannerd_timeouts_total counter\n")
	fmt.Fprintf(w, "spannerd_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "# HELP spannerd_client_disconnects_total Streams aborted because the client went away mid-response.\n")
	fmt.Fprintf(w, "# TYPE spannerd_client_disconnects_total counter\n")
	fmt.Fprintf(w, "spannerd_client_disconnects_total %d\n", m.disconnects.Load())
	fmt.Fprintf(w, "# HELP spannerd_storage_sync_failures_total Mutations applied and logged whose durability barrier (fsync) failed; the write is visible but its on-disk persistence is uncertain.\n")
	fmt.Fprintf(w, "# TYPE spannerd_storage_sync_failures_total counter\n")
	fmt.Fprintf(w, "spannerd_storage_sync_failures_total %d\n", m.syncFailures.Load())

	fmt.Fprintf(w, "# HELP spannerd_requests_total Requests served, by handler and status code.\n")
	fmt.Fprintf(w, "# TYPE spannerd_requests_total counter\n")
	for _, k := range sortedKeys(&m.mu, m.requests) {
		h, code, _ := cut(k)
		fmt.Fprintf(w, "spannerd_requests_total{handler=%q,code=%q} %d\n", h, code, m.get(m.requests, k))
	}

	fmt.Fprintf(w, "# HELP spannerd_tuples_total Result tuples emitted, by prepared query and request kind.\n")
	fmt.Fprintf(w, "# TYPE spannerd_tuples_total counter\n")
	for _, k := range sortedKeys(&m.mu, m.tuples) {
		q, kind, _ := cut(k)
		fmt.Fprintf(w, "spannerd_tuples_total{query=%q,kind=%q} %d\n", q, kind, m.get(m.tuples, k))
	}

	writeHistograms(w, "spannerd_request_duration_seconds",
		"Wall-clock request latency by handler.",
		&m.mu, m.handlerLat, func(k string) string { return fmt.Sprintf("handler=%q", k) })
	writeHistograms(w, "spannerd_query_duration_seconds",
		"Evaluation latency by prepared query and request kind.",
		&m.mu, m.queryLat, func(k string) string {
			q, kind, _ := cut(k)
			return fmt.Sprintf("query=%q,kind=%q", q, kind)
		})

	fmt.Fprintf(w, "# HELP spannerd_view_refreshes_total Incremental view refreshes performed (version-stale skips excluded).\n")
	fmt.Fprintf(w, "# TYPE spannerd_view_refreshes_total counter\n")
	fmt.Fprintf(w, "spannerd_view_refreshes_total %d\n", m.viewRefreshes.Load())
	writeHistograms(w, "spannerd_view_refresh_duration_seconds",
		"Incremental view refresh latency (WarmDelta + count + materialization) by view.",
		&m.mu, m.viewLat, func(k string) string {
			d, q, _ := cut(k)
			return fmt.Sprintf("doc=%q,query=%q", d, q)
		})

	// Edit-aware memo maintenance: process-wide WarmDelta node totals and
	// the resulting reuse ratio — how much of the touched DAGs the
	// incremental warms did NOT have to recompute.
	wr, wu := slpmatch.WarmDeltaStats()
	fmt.Fprintf(w, "# HELP spannerd_warm_recomputed_nodes_total SLP nodes recomputed by incremental WarmDelta calls (the edit spines).\n")
	fmt.Fprintf(w, "# TYPE spannerd_warm_recomputed_nodes_total counter\n")
	fmt.Fprintf(w, "spannerd_warm_recomputed_nodes_total %d\n", wr)
	fmt.Fprintf(w, "# HELP spannerd_warm_reused_nodes_total Cached subtree roots WarmDelta pruned at instead of recomputing.\n")
	fmt.Fprintf(w, "# TYPE spannerd_warm_reused_nodes_total counter\n")
	fmt.Fprintf(w, "spannerd_warm_reused_nodes_total %d\n", wu)
	fmt.Fprintf(w, "# HELP spannerd_warm_memo_reuse_ratio Fraction of WarmDelta-visited nodes served from the memo since process start.\n")
	fmt.Fprintf(w, "# TYPE spannerd_warm_memo_reuse_ratio gauge\n")
	fmt.Fprintf(w, "spannerd_warm_memo_reuse_ratio %s\n", rate(wu, wr))

	// Process-wide shared caches: the hash-consed plan cache and the
	// slpmatch per-SLP-node matrix cache.
	ph, pm := plan.CacheStats()
	fmt.Fprintf(w, "# HELP spannerd_plan_cache_hits_total Plan-cache hits (process-wide).\n")
	fmt.Fprintf(w, "# TYPE spannerd_plan_cache_hits_total counter\n")
	fmt.Fprintf(w, "spannerd_plan_cache_hits_total %d\n", ph)
	fmt.Fprintf(w, "# HELP spannerd_plan_cache_misses_total Plan-cache misses (process-wide).\n")
	fmt.Fprintf(w, "# TYPE spannerd_plan_cache_misses_total counter\n")
	fmt.Fprintf(w, "spannerd_plan_cache_misses_total %d\n", pm)
	fmt.Fprintf(w, "# HELP spannerd_plan_cache_hit_rate Plan-cache hit rate since process start.\n")
	fmt.Fprintf(w, "# TYPE spannerd_plan_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "spannerd_plan_cache_hit_rate %s\n", rate(ph, pm))

	mh, mm := slpmatch.CacheStats()
	fmt.Fprintf(w, "# HELP spannerd_matrix_cache_hits_total slpmatch per-SLP-node matrix cache hits (process-wide).\n")
	fmt.Fprintf(w, "# TYPE spannerd_matrix_cache_hits_total counter\n")
	fmt.Fprintf(w, "spannerd_matrix_cache_hits_total %d\n", mh)
	fmt.Fprintf(w, "# HELP spannerd_matrix_cache_misses_total slpmatch per-SLP-node matrix cache misses (process-wide).\n")
	fmt.Fprintf(w, "# TYPE spannerd_matrix_cache_misses_total counter\n")
	fmt.Fprintf(w, "spannerd_matrix_cache_misses_total %d\n", mm)
	fmt.Fprintf(w, "# HELP spannerd_matrix_cache_hit_rate slpmatch matrix-cache hit rate since process start.\n")
	fmt.Fprintf(w, "# TYPE spannerd_matrix_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "spannerd_matrix_cache_hit_rate %s\n", rate(mh, mm))
	fmt.Fprintf(w, "# HELP spannerd_matrix_cache_cores Live shared slpmatch cores (one per automaton in use).\n")
	fmt.Fprintf(w, "# TYPE spannerd_matrix_cache_cores gauge\n")
	fmt.Fprintf(w, "spannerd_matrix_cache_cores %d\n", slpmatch.Cores())
}

// writeStorageProm renders the durability backend's counters: WAL
// volume, fsync latency, snapshot freshness, and what the last recovery
// did. All families are emitted for both backends; the memory backend
// reports zeros under backend="memory".
func (m *metrics) writeStorageProm(w io.Writer, st storage.Stats) {
	fmt.Fprintf(w, "# HELP spannerd_storage_info The active storage backend (1 = this backend).\n")
	fmt.Fprintf(w, "# TYPE spannerd_storage_info gauge\n")
	fmt.Fprintf(w, "spannerd_storage_info{backend=%q,persistent=%q} 1\n", st.Kind, fmt.Sprint(st.Persistent))

	fmt.Fprintf(w, "# HELP spannerd_wal_records_total Mutation records appended to the write-ahead log since open.\n")
	fmt.Fprintf(w, "# TYPE spannerd_wal_records_total counter\n")
	fmt.Fprintf(w, "spannerd_wal_records_total %d\n", st.WALRecords)
	fmt.Fprintf(w, "# HELP spannerd_wal_appended_bytes_total Bytes appended to the write-ahead log since open.\n")
	fmt.Fprintf(w, "# TYPE spannerd_wal_appended_bytes_total counter\n")
	fmt.Fprintf(w, "spannerd_wal_appended_bytes_total %d\n", st.WALAppendedBytes)
	fmt.Fprintf(w, "# HELP spannerd_wal_size_bytes Size of the live (post-rotation) log file.\n")
	fmt.Fprintf(w, "# TYPE spannerd_wal_size_bytes gauge\n")
	fmt.Fprintf(w, "spannerd_wal_size_bytes %d\n", st.WALSizeBytes)

	fmt.Fprintf(w, "# HELP spannerd_wal_fsyncs_total fsync calls issued by the durability barrier.\n")
	fmt.Fprintf(w, "# TYPE spannerd_wal_fsyncs_total counter\n")
	fmt.Fprintf(w, "spannerd_wal_fsyncs_total %d\n", st.Fsyncs)
	fmt.Fprintf(w, "# HELP spannerd_wal_fsync_seconds_total Cumulative time spent in fsync.\n")
	fmt.Fprintf(w, "# TYPE spannerd_wal_fsync_seconds_total counter\n")
	fmt.Fprintf(w, "spannerd_wal_fsync_seconds_total %g\n", float64(st.FsyncTotalNanos)/1e9)
	fmt.Fprintf(w, "# HELP spannerd_wal_fsync_max_seconds Slowest single fsync since open.\n")
	fmt.Fprintf(w, "# TYPE spannerd_wal_fsync_max_seconds gauge\n")
	fmt.Fprintf(w, "spannerd_wal_fsync_max_seconds %g\n", float64(st.FsyncMaxNanos)/1e9)

	fmt.Fprintf(w, "# HELP spannerd_storage_snapshots_total Snapshots written since open.\n")
	fmt.Fprintf(w, "# TYPE spannerd_storage_snapshots_total counter\n")
	fmt.Fprintf(w, "spannerd_storage_snapshots_total %d\n", st.Snapshots)
	fmt.Fprintf(w, "# HELP spannerd_storage_snapshot_bytes Size of the newest snapshot (grammar-sized, not document-sized).\n")
	fmt.Fprintf(w, "# TYPE spannerd_storage_snapshot_bytes gauge\n")
	fmt.Fprintf(w, "spannerd_storage_snapshot_bytes %d\n", st.SnapshotBytes)
	age := -1.0
	if st.LastSnapshotUnixNano > 0 {
		age = time.Since(time.Unix(0, st.LastSnapshotUnixNano)).Seconds()
	}
	fmt.Fprintf(w, "# HELP spannerd_storage_snapshot_age_seconds Seconds since the newest snapshot (-1 when none exists).\n")
	fmt.Fprintf(w, "# TYPE spannerd_storage_snapshot_age_seconds gauge\n")
	fmt.Fprintf(w, "spannerd_storage_snapshot_age_seconds %g\n", age)

	fmt.Fprintf(w, "# HELP spannerd_storage_recovered_records WAL records replayed on top of the snapshot at the last open.\n")
	fmt.Fprintf(w, "# TYPE spannerd_storage_recovered_records gauge\n")
	fmt.Fprintf(w, "spannerd_storage_recovered_records %d\n", st.RecoveredRecords)
	tt := 0
	if st.RecoveredTornTail {
		tt = 1
	}
	fmt.Fprintf(w, "# HELP spannerd_storage_recovered_torn_tail Whether the last open truncated a torn final record (a crash mid-append).\n")
	fmt.Fprintf(w, "# TYPE spannerd_storage_recovered_torn_tail gauge\n")
	fmt.Fprintf(w, "spannerd_storage_recovered_torn_tail %d\n", tt)
}

func writeHistograms(w io.Writer, name, help string, mu *sync.Mutex, table map[string]*histogram, labels func(key string) string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, k := range sortedKeys(mu, table) {
		mu.Lock()
		h := table[k]
		mu.Unlock()
		l := labels(k)
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, l, ub, cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, l, cum)
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, l, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, l, cum)
	}
}

// cut splits "a|b" at the first bar.
func cut(k string) (string, string, bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			return k[:i], k[i+1:], true
		}
	}
	return k, "", false
}

func rate(hits, misses uint64) string {
	total := hits + misses
	if total == 0 {
		return "0"
	}
	return fmt.Sprintf("%.4f", float64(hits)/float64(total))
}
