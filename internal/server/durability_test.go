package server

import (
	"errors"
	"strings"
	"testing"
	"time"

	"docspanner"
	"docspanner/internal/storage"
)

// faultBackend wraps a backend with switchable failure injection for
// the write-ahead (append) and durability (Sync) steps.
type faultBackend struct {
	storage.Backend
	failAppend bool // every mutation append is refused
	failSync   bool // appends succeed, the fsync barrier fails
}

var errInjected = errors.New("injected backend failure")

func (f *faultBackend) append(call func() error) error {
	if f.failAppend {
		return errInjected
	}
	return call()
}

func (f *faultBackend) PutDoc(name string, data []byte, doc *docspanner.Document, compressed bool, version int, updated time.Time) error {
	return f.append(func() error { return f.Backend.PutDoc(name, data, doc, compressed, version, updated) })
}

func (f *faultBackend) EditDoc(name, expr string, doc *docspanner.Document, version int, updated time.Time) error {
	return f.append(func() error { return f.Backend.EditDoc(name, expr, doc, version, updated) })
}

func (f *faultBackend) DeleteDoc(name string) error {
	return f.append(func() error { return f.Backend.DeleteDoc(name) })
}

func (f *faultBackend) PutQuery(name string, spec []byte, registered time.Time) error {
	return f.append(func() error { return f.Backend.PutQuery(name, spec, registered) })
}

func (f *faultBackend) DeleteQuery(name string) error {
	return f.append(func() error { return f.Backend.DeleteQuery(name) })
}

func (f *faultBackend) PutView(doc, query string) error {
	return f.append(func() error { return f.Backend.PutView(doc, query) })
}

func (f *faultBackend) DeleteView(doc, query string) error {
	return f.append(func() error { return f.Backend.DeleteView(doc, query) })
}

func (f *faultBackend) Sync() error {
	if f.failSync {
		return errInjected
	}
	return f.Backend.Sync()
}

func setupFaultViewServer(t *testing.T) (*Server, *faultBackend) {
	t.Helper()
	fb := &faultBackend{Backend: storage.NewMemory()}
	s := setupViewServer(t, Config{Storage: fb})
	code, _ := do(t, s, "PUT", "/docs/d/views/q", "")
	mustStatus(t, code, 201, "create view")
	return s, fb
}

// A refused DeleteView append must leave the view registered — the
// write-ahead order every other mutation path follows. Dropping it from
// memory first would let the view resurrect on restart after a failed
// append.
func TestViewDeleteRefusedAppendKeepsView(t *testing.T) {
	s, fb := setupFaultViewServer(t)

	fb.failAppend = true
	code, _ := do(t, s, "DELETE", "/docs/d/views/q", "")
	mustStatus(t, code, 500, "delete with refused append")
	code, _ = do(t, s, "GET", "/docs/d/views/q", "")
	mustStatus(t, code, 200, "view must survive a refused delete")

	fb.failAppend = false
	code, _ = do(t, s, "DELETE", "/docs/d/views/q", "")
	mustStatus(t, code, 200, "delete after fault cleared")
	code, _ = do(t, s, "GET", "/docs/d/views/q", "")
	mustStatus(t, code, 404, "view gone after successful delete")
}

// A refused PutView append must leave no registration behind, and the
// rollback happens inside the set lock — no concurrent request can
// observe (and report success for) a view that is about to vanish.
func TestViewPutRefusedAppendRollsBack(t *testing.T) {
	s, fb := setupFaultViewServer(t)
	code, _ := do(t, s, "DELETE", "/docs/d/views/q", "")
	mustStatus(t, code, 200, "clear initial view")

	fb.failAppend = true
	code, _ = do(t, s, "PUT", "/docs/d/views/q", "")
	mustStatus(t, code, 500, "put with refused append")
	code, _ = do(t, s, "GET", "/docs/d/views/q", "")
	mustStatus(t, code, 404, "refused registration must not be visible")
}

// A mutation whose append succeeded but whose fsync barrier failed is
// applied and logged: the client gets an explicit error saying so, the
// new state is visible, views still refresh (they must not silently
// serve the pre-mutation version), and the failure is counted on
// /metrics.
func TestSyncFailureKeepsViewsFresh(t *testing.T) {
	s, fb := setupFaultViewServer(t)

	fb.failSync = true
	code, body := do(t, s, "POST", "/docs/d/edit", `{"expr": "concat(d, d)"}`)
	mustStatus(t, code, 500, "edit with failing fsync")
	if msg, _ := body["error"].(string); !strings.Contains(msg, "applied and logged") {
		t.Fatalf("durability failure not reported as applied-and-logged: %v", body)
	}

	// The edit is visible…
	code, body = do(t, s, "GET", "/docs/d", "")
	mustStatus(t, code, 200, "get doc")
	if body["version"] != float64(2) {
		t.Fatalf("edit not visible after sync failure: %v", body)
	}
	// …and its views refreshed along with it ("abbaabba" matches twice).
	code, body = do(t, s, "GET", "/docs/d/views/q", "")
	mustStatus(t, code, 200, "get view")
	if body["version"] != float64(2) || body["count"] != float64(2) {
		t.Fatalf("view stale after sync failure: %v", body)
	}

	if !strings.Contains(metricsBody(t, s), "spannerd_storage_sync_failures_total 1") {
		t.Error("sync failure not counted on /metrics")
	}
}

// A delete whose fsync barrier fails is still a delete: the document is
// gone, its views cascade away, and the client learns the durability
// barrier failed rather than being told the delete didn't happen.
func TestSyncFailureStillCascadesDocDelete(t *testing.T) {
	s, fb := setupFaultViewServer(t)

	fb.failSync = true
	code, _ := do(t, s, "DELETE", "/docs/d", "")
	mustStatus(t, code, 500, "delete with failing fsync")
	code, _ = do(t, s, "GET", "/docs/d", "")
	mustStatus(t, code, 404, "document must be gone")
	code, _ = do(t, s, "GET", "/views", "")
	mustStatus(t, code, 200, "list views")
	if s.views.Len() != 0 {
		t.Fatalf("views not cascaded after sync-failed delete: %d left", s.views.Len())
	}
}
