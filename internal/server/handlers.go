package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"docspanner"
)

// --- document handlers ---

func (s *Server) handleDocList(w http.ResponseWriter, _ *http.Request) error {
	writeJSON(w, 200, map[string]any{"docs": s.store.list()})
	return nil
}

// handleDocPut ingests the request body as the named document.
// ?compress=1 stores it SLP-compressed (Re-Pair + balancing).
func (s *Server) handleDocPut(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return errBadRequest("reading body: " + err.Error())
	}
	sd, err := s.store.put(name, data, boolParam(r, "compress"))
	// A non-nil snapshot means the mutation is visible (even when only
	// its durability barrier failed): views must refresh regardless.
	if sd != nil {
		s.notifyDocChanged(name)
	}
	if err != nil {
		return err
	}
	writeJSON(w, 200, sd.info())
	return nil
}

// handleDocGet returns the document's metadata, or with ?content=1 its
// text (decompressing a compressed document once per snapshot).
func (s *Server) handleDocGet(w http.ResponseWriter, r *http.Request) error {
	d, err := s.store.get(r.PathValue("name"))
	if err != nil {
		return err
	}
	if boolParam(r, "content") {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, err := w.Write(d.bytes())
		return err
	}
	writeJSON(w, 200, d.info())
	return nil
}

func (s *Server) handleDocDelete(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	err := s.store.delete(name)
	if err != nil && !isSyncFailed(err) {
		return err
	}
	dropped := s.views.DropDoc(name)
	if err != nil {
		return err
	}
	writeJSON(w, 200, map[string]any{"status": "deleted", "views_dropped": dropped})
	return nil
}

func (s *Server) handleDocCompress(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	sd, err := s.store.compress(name)
	if sd != nil {
		s.notifyDocChanged(name)
	}
	if err != nil {
		return err
	}
	writeJSON(w, 200, sd.info())
	return nil
}

// handleDocEdit applies a CDE edit expression — concat, extract,
// delete, insert, copy over the store's named documents — and stores
// the result under {name}, in time O(|expr|·log d) on the grammars.
func (s *Server) handleDocEdit(w http.ResponseWriter, r *http.Request) error {
	var body struct {
		Expr string `json:"expr"`
	}
	if err := decodeJSON(r, &body); err != nil {
		return err
	}
	if body.Expr == "" {
		return errBadRequest(`edit needs a CDE expression, e.g. {"expr": "insert(d1, extract(d2,1,4), 7)"}`)
	}
	name := r.PathValue("name")
	sd, err := s.store.edit(name, body.Expr)
	if sd != nil {
		s.notifyDocChanged(name)
	}
	if err != nil {
		return err
	}
	writeJSON(w, 200, sd.info())
	return nil
}

// handleDocWarm runs the compressed-evaluation preprocessing of a
// prepared query (?query=) over the named document, spreading the
// independent SLP DAG levels over ?workers= goroutines. 422 when the
// query's plan does not fuse to a single regular scan.
func (s *Server) handleDocWarm(w http.ResponseWriter, r *http.Request) error {
	d, err := s.store.get(r.PathValue("name"))
	if err != nil {
		return err
	}
	p, err := s.queries.get(r.URL.Query().Get("query"))
	if err != nil {
		return err
	}
	ix, err := p.query.Index()
	if err != nil {
		return &httpError{status: 422, message: err.Error()}
	}
	workers := intParam(r, "workers", 0)
	start := time.Now()
	ix.WarmParallel(d.doc, workers)
	writeJSON(w, 200, map[string]any{
		"doc":          d.name,
		"query":        p.name,
		"grammar_size": d.doc.GrammarSize(),
		"took":         time.Since(start).String(),
	})
	return nil
}

// --- query handlers ---

func (s *Server) handleQueryList(w http.ResponseWriter, _ *http.Request) error {
	writeJSON(w, 200, map[string]any{"queries": s.queries.list()})
	return nil
}

func (s *Server) handleQueryPut(w http.ResponseWriter, r *http.Request) error {
	// The raw body is kept alongside the decoded spec: it is what the
	// storage backend persists and recovery re-registers.
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return errBadRequest("reading body: " + err.Error())
	}
	name := r.PathValue("name")
	info, err := s.queries.register(name, raw)
	if err != nil && !isSyncFailed(err) {
		return err
	}
	// A re-registration may change the query's definition; views built on
	// the old one are dropped rather than silently serving stale results.
	// This cascade runs even when only the durability barrier failed —
	// the registration is applied and logged.
	s.views.DropQuery(name)
	if err != nil {
		return err
	}
	writeJSON(w, 200, info)
	return nil
}

func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) error {
	p, err := s.queries.get(r.PathValue("name"))
	if err != nil {
		return err
	}
	writeJSON(w, 200, p.info())
	return nil
}

func (s *Server) handleQueryDelete(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	err := s.queries.delete(name)
	if err != nil && !isSyncFailed(err) {
		return err
	}
	dropped := s.views.DropQuery(name)
	if err != nil {
		return err
	}
	writeJSON(w, 200, map[string]any{"status": "deleted", "views_dropped": dropped})
	return nil
}

func (s *Server) handleQueryExplain(w http.ResponseWriter, r *http.Request) error {
	p, err := s.queries.get(r.PathValue("name"))
	if err != nil {
		return err
	}
	writeJSON(w, 200, map[string]any{
		"name":      p.name,
		"src":       p.src,
		"streaming": p.query.Streaming(),
		"plan":      p.query.Explain(),
	})
	return nil
}

// --- evaluation handlers ---

// evalTarget resolves the ?query= and ?doc= parameters of an
// evaluation request.
func (s *Server) evalTarget(r *http.Request) (*preparedQuery, *storedDoc, error) {
	p, err := s.queries.get(r.URL.Query().Get("query"))
	if err != nil {
		return nil, nil, err
	}
	d, err := s.store.get(r.URL.Query().Get("doc"))
	if err != nil {
		return nil, nil, err
	}
	return p, d, nil
}

// tupleJSON renders a tuple as {"x": {"begin": 1, "end": 3, "content": "ab"}, ...}.
// Spans follow the survey's convention: 1-based, end-exclusive. content
// is included unless the request said ?content=0.
func tupleJSON(t docspanner.Tuple, doc []byte, withContent bool) map[string]any {
	out := make(map[string]any, len(t))
	for _, v := range t.Vars() {
		sp := t[v]
		m := map[string]any{"begin": sp.Begin, "end": sp.End}
		if withContent && doc != nil {
			m["content"] = string(sp.Content(doc))
		}
		out[string(v)] = m
	}
	return out
}

// withContent defaults to true; ?content=0 turns span contents off.
func withContent(r *http.Request) bool {
	v := r.URL.Query().Get("content")
	return v == "" || !(v == "0" || v == "false")
}

// handleEval materializes the query result on one document and returns
// it as a sorted JSON array (deterministic across runs and backends).
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) error {
	p, d, err := s.evalTarget(r)
	if err != nil {
		return err
	}
	ctx := r.Context()
	start := time.Now()
	// Materialize through the context-aware enumerator: a deadline is
	// observed per tuple instead of only after the whole evaluation.
	// Plans whose enumeration is already duplicate-free collect into a
	// pooled slice and sort; the rest dedup through a relation exactly
	// like Eval.
	var tuples []docspanner.Tuple
	var collect func(docspanner.Tuple) bool
	var rel *docspanner.Relation
	if p.query.DistinctEnumeration() {
		tuples = getEvalBuf()
		defer func() { putEvalBuf(tuples) }()
		collect = func(t docspanner.Tuple) bool { tuples = append(tuples, t); return true }
	} else {
		rel = docspanner.NewRelation()
		collect = func(t docspanner.Tuple) bool { rel.Add(t); return true }
	}
	if d.compressed {
		err = p.query.EnumerateCompressedContext(ctx, d.doc, collect)
	} else {
		err = p.query.EnumerateContext(ctx, d.bytes(), collect)
	}
	if err != nil {
		return err
	}
	if rel != nil {
		tuples = rel.Sorted()
	} else {
		docspanner.SortTuples(tuples)
	}
	took := time.Since(start)
	s.metrics.query(p.name, "eval", len(tuples), took)

	wc := withContent(r)
	var doc []byte
	if wc {
		doc = d.bytes()
	}
	writeJSON(w, 200, map[string]any{
		"query":   p.name,
		"doc":     d.name,
		"version": d.version,
		"count":   len(tuples),
		"took":    took.String(),
		"tuples":  tuplesJSON(tuples, doc, wc),
	})
	return nil
}

// evalBufPool recycles handleEval's per-request tuple collection; the
// references are cleared on the way back so pooled slices don't retain
// result tuples across requests.
var evalBufPool = sync.Pool{
	New: func() any { s := make([]docspanner.Tuple, 0, 64); return &s },
}

func getEvalBuf() []docspanner.Tuple { return (*evalBufPool.Get().(*[]docspanner.Tuple))[:0] }

func putEvalBuf(ts []docspanner.Tuple) {
	for i := range ts {
		ts[i] = nil
	}
	ts = ts[:0]
	evalBufPool.Put(&ts)
}

// tuplesJSON serializes a tuple slice as one raw JSON array through the
// hand-rolled encoder — one buffer for the whole array instead of three
// maps per tuple.
func tuplesJSON(tuples []docspanner.Tuple, doc []byte, wc bool) json.RawMessage {
	buf := make([]byte, 0, 64*(len(tuples)+1))
	var vars []docspanner.Var
	buf = append(buf, '[')
	for i, t := range tuples {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf, vars = appendTupleValue(buf, t, doc, wc, vars)
	}
	return json.RawMessage(append(buf, ']'))
}

// handleCount counts result tuples, observing cancellation per tuple on
// streaming plans.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) error {
	p, d, err := s.evalTarget(r)
	if err != nil {
		return err
	}
	ctx := r.Context()
	start := time.Now()
	var n int
	if d.compressed {
		n, err = p.query.CountCompressedContext(ctx, d.doc)
	} else {
		n, err = p.query.CountContext(ctx, d.bytes())
	}
	if err != nil {
		return err
	}
	took := time.Since(start)
	s.metrics.query(p.name, "count", n, took)
	writeJSON(w, 200, map[string]any{
		"query":   p.name,
		"doc":     d.name,
		"version": d.version,
		"count":   n,
		"took":    took.String(),
	})
	return nil
}

// handleStream enumerates the query on one document as NDJSON through
// the pooled zero-allocation encoder, flushing the first tuple
// immediately and then every streamFlushEvery tuples: on a streaming
// plan (the constant-delay enumerator, or the O(log|D|)-delay
// compressed enumerator) the first line reaches the client before the
// result is fully materialized. ?limit=N stops after N tuples. The
// final line is a summary object {"done": true, "count": N, ...}.
//
// A failed write or flush means the client is gone: the enumeration is
// aborted at the next tuple instead of running (and serializing) the
// rest of the result into a dead connection, and the request is
// recorded as a 499 client disconnect.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) error {
	p, d, err := s.evalTarget(r)
	if err != nil {
		return err
	}
	limit := intParam(r, "limit", 0)
	wc := withContent(r)
	var doc []byte
	if wc {
		doc = d.bytes()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Streaming-Plan", strconv.FormatBool(p.query.Streaming()))
	rc := http.NewResponseController(w)
	enc := newNDJSONEncoder(w)
	defer enc.Release()

	ctx := r.Context()
	start := time.Now()
	n := 0
	var ioErr error
	emit := func(t docspanner.Tuple) bool {
		if e := enc.EncodeTuple(t, doc, wc); e != nil {
			ioErr = e
			return false
		}
		if n == 0 || (n+1)%streamFlushEvery == 0 {
			if e := enc.Flush(rc); e != nil {
				ioErr = e
				return false
			}
		}
		n++
		return limit == 0 || n < limit
	}
	if d.compressed {
		err = p.query.EnumerateCompressedContext(ctx, d.doc, emit)
	} else {
		err = p.query.EnumerateContext(ctx, d.bytes(), emit)
	}
	took := time.Since(start)
	s.metrics.query(p.name, "stream", n, took)
	if ioErr != nil {
		return s.streamDisconnect(w)
	}
	summary := map[string]any{"done": true, "count": n, "took": took.String(), "version": d.version}
	if err != nil {
		// Headers are out; report the cancellation in-band on the trailer
		// line so clients can distinguish truncation from completion.
		summary["done"] = false
		summary["error"] = err.Error()
	}
	// The trailer write is the last chance to notice the client vanished:
	// when the server cancels the request context before any tuple write
	// fails, the enumeration ends without an ioErr and only this write
	// reports the dead connection.
	line, _ := json.Marshal(summary)
	if e := enc.WriteLine(line); e != nil {
		return s.streamDisconnect(w)
	}
	if e := enc.Flush(rc); e != nil {
		return s.streamDisconnect(w)
	}
	return nil
}

// batchRequest is the body of POST /batch: one prepared query over a
// set of stored documents, evaluated on a bounded worker pool.
type batchRequest struct {
	Query   string   `json:"query"`
	Docs    []string `json:"docs"`
	Workers int      `json:"workers,omitempty"`
	// Content includes span contents in the tuples (default true).
	Content *bool `json:"content,omitempty"`
}

// handleBatch evaluates a query over many stored documents in parallel
// (EvalDocs / EvalCompressedDocs worker pools), returning one result
// object per document in request order. Plain and compressed documents
// may be mixed; each group runs through its matching engine.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if len(req.Docs) == 0 {
		return errBadRequest("batch needs a non-empty docs list")
	}
	p, err := s.queries.get(req.Query)
	if err != nil {
		return err
	}
	wc := req.Content == nil || *req.Content

	// Resolve all snapshots up front, splitting by representation while
	// remembering each document's position in the request.
	type slot struct {
		d   *storedDoc
		rel *docspanner.Relation
	}
	slots := make([]slot, len(req.Docs))
	var plainIdx, compIdx []int
	for i, name := range req.Docs {
		d, err := s.store.get(name)
		if err != nil {
			return err
		}
		slots[i].d = d
		if d.compressed {
			compIdx = append(compIdx, i)
		} else {
			plainIdx = append(plainIdx, i)
		}
	}

	ctx := r.Context()
	opts := docspanner.ParallelOptions{Workers: req.Workers}
	start := time.Now()
	if len(plainIdx) > 0 {
		docs := make([][]byte, len(plainIdx))
		for k, i := range plainIdx {
			docs[k] = slots[i].d.bytes()
		}
		rels, err := docspanner.EvalDocs(ctx, p.query, docs, opts)
		if err != nil {
			return err
		}
		for k, i := range plainIdx {
			slots[i].rel = rels[k]
		}
	}
	if len(compIdx) > 0 {
		docs := make([]*docspanner.Document, len(compIdx))
		for k, i := range compIdx {
			docs[k] = slots[i].d.doc
		}
		rels, err := docspanner.EvalCompressedDocs(ctx, p.query, docs, opts)
		if err != nil {
			return err
		}
		for k, i := range compIdx {
			slots[i].rel = rels[k]
		}
	}
	took := time.Since(start)

	total := 0
	results := make([]map[string]any, len(slots))
	for i, sl := range slots {
		tuples := sl.rel.Sorted()
		total += len(tuples)
		var doc []byte
		if wc {
			doc = sl.d.bytes()
		}
		results[i] = map[string]any{
			"doc":     sl.d.name,
			"version": sl.d.version,
			"count":   len(tuples),
			"tuples":  tuplesJSON(tuples, doc, wc),
		}
	}
	s.metrics.query(p.name, "batch", total, took)
	writeJSON(w, 200, map[string]any{
		"query":   p.name,
		"docs":    len(slots),
		"count":   total,
		"took":    took.String(),
		"results": results,
	})
	return nil
}

// --- small helpers ---

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest(fmt.Sprintf("bad JSON body: %s", err))
	}
	return nil
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
