package server

// Hand-rolled tuple serialization for the hot response paths. The
// generic path (tupleJSON + encoding/json) builds three maps and a
// VarSet per tuple and then reflects over them; on /stream that
// dominated the profile. appendTuple produces byte-identical output —
// same sorted key order, same string escaping (including the HTML and
// U+2028/U+2029 escapes encoding/json applies by default) — into a
// caller-owned buffer, so the per-tuple path allocates nothing once the
// buffers are warm. ndjson_test.go locks both properties in:
// byte-for-byte equality against encoding/json on adversarial inputs,
// and zero allocations per encoded tuple.

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf8"

	"docspanner"
)

// streamFlushEvery is the tuple cadence of explicit flushes on /stream:
// the first tuple is flushed immediately (the streaming contract — the
// client sees line one before the result is materialized), then every
// streamFlushEvery-th tuple, then the summary. In between, the pooled
// bufio.Writer batches lines into 4 KiB writes instead of one syscall
// per tuple.
const streamFlushEvery = 64

const hexDigits = "0123456789abcdef"

// htmlSafe mirrors encoding/json's htmlSafeSet: ASCII bytes that need
// no escaping when EscapeHTML is on (the Encoder default we replicate).
func htmlSafe(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// appendEscaped appends s as a JSON string, byte-identical to
// encoding/json with EscapeHTML: \" \\ \n \r \t stay short, other
// control bytes and <>& become \u00xx, invalid UTF-8 becomes �,
// and U+2028/U+2029 are escaped for JS embedding.
func appendEscaped(dst, s []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRune(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', byte('8'+c-'\u2028'))
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendEscapedString is appendEscaped over a string (variable names),
// avoiding the []byte conversion alloc. Same output, same rules.
func appendEscapedString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', byte('8'+c-'\u2028'))
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendTupleValue appends t as one JSON object, exactly the bytes
// encoding/json produces for tupleJSON(t, doc, withContent): variables
// in sorted order, each span as {"begin": B[, "content": C], "end": E}
// (the alphabetical key order a sorted map marshal yields). vars is a
// caller-provided scratch slice, returned grown so the caller can reuse
// it across tuples.
func appendTupleValue(dst []byte, t docspanner.Tuple, doc []byte, withContent bool, vars []docspanner.Var) ([]byte, []docspanner.Var) {
	vars = vars[:0]
	for v := range t {
		vars = append(vars, v)
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	dst = append(dst, '{')
	for i, v := range vars {
		if i > 0 {
			dst = append(dst, ',')
		}
		sp := t[v]
		dst = appendEscapedString(dst, string(v))
		dst = append(dst, `:{"begin":`...)
		dst = strconv.AppendInt(dst, int64(sp.Begin), 10)
		if withContent && doc != nil {
			dst = append(dst, `,"content":`...)
			dst = appendEscaped(dst, sp.Content(doc))
		}
		dst = append(dst, `,"end":`...)
		dst = strconv.AppendInt(dst, int64(sp.End), 10)
		dst = append(dst, '}')
	}
	return append(dst, '}'), vars
}

// ndjsonEncoder streams tuples as NDJSON lines through a pooled
// buffered writer. One per /stream request; Release returns it (and
// its buffers) to the pool.
type ndjsonEncoder struct {
	w    *bufio.Writer
	buf  []byte
	vars []docspanner.Var
}

var ndjsonPool = sync.Pool{
	New: func() any {
		return &ndjsonEncoder{
			w:    bufio.NewWriterSize(io.Discard, 4096),
			buf:  make([]byte, 0, 512),
			vars: make([]docspanner.Var, 0, 8),
		}
	},
}

func newNDJSONEncoder(w io.Writer) *ndjsonEncoder {
	e := ndjsonPool.Get().(*ndjsonEncoder)
	e.w.Reset(w)
	return e
}

// Release drops the reference to the response writer and pools the
// encoder. Callers must not use e afterwards.
func (e *ndjsonEncoder) Release() {
	e.w.Reset(io.Discard)
	ndjsonPool.Put(e)
}

// EncodeTuple writes one tuple line (object + newline) into the buffer.
// A non-nil error means the client is gone; the stream should abort.
func (e *ndjsonEncoder) EncodeTuple(t docspanner.Tuple, doc []byte, withContent bool) error {
	e.buf, e.vars = appendTupleValue(e.buf[:0], t, doc, withContent, e.vars)
	e.buf = append(e.buf, '\n')
	_, err := e.w.Write(e.buf)
	return err
}

// EncodeChange writes one /changes delta line — {"op":"add","tuple":{…}}
// or {"op":"remove","tuple":{…}} — through the same zero-allocation
// tuple path as EncodeTuple.
func (e *ndjsonEncoder) EncodeChange(op string, t docspanner.Tuple, doc []byte, withContent bool) error {
	e.buf = append(e.buf[:0], `{"op":`...)
	e.buf = appendEscapedString(e.buf, op)
	e.buf = append(e.buf, `,"tuple":`...)
	e.buf, e.vars = appendTupleValue(e.buf, t, doc, withContent, e.vars)
	e.buf = append(e.buf, '}', '\n')
	_, err := e.w.Write(e.buf)
	return err
}

// WriteLine writes a pre-marshaled JSON line (the stream summary).
func (e *ndjsonEncoder) WriteLine(line []byte) error {
	if _, err := e.w.Write(line); err != nil {
		return err
	}
	return e.w.WriteByte('\n')
}

// Flush pushes buffered bytes into the ResponseWriter and then flushes
// the HTTP stack itself. A transport that cannot flush (no Flusher all
// the way down) is not an error — the bytes are on their way when the
// handler returns; only a genuine write/flush failure, i.e. a client
// disconnect, is reported.
func (e *ndjsonEncoder) Flush(rc *http.ResponseController) error {
	if err := e.w.Flush(); err != nil {
		return err
	}
	if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		return err
	}
	return nil
}
