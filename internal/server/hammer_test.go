package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"docspanner"
)

// TestHammerConcurrentClients drives one spannerd instance from 16
// concurrent clients over real HTTP, mixing query registration,
// materialized evaluation, streaming, counting, CDE edits, cache
// flushes, and metrics scrapes, and asserts every response is
// deterministic against the library facade. Run with -race this is the
// server's data-race certification.
func TestHammerConcurrentClients(t *testing.T) {
	const (
		clients    = 16
		iterations = 25
	)

	srv := newTestServer(t, Config{MaxConcurrent: 32})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	jsonReq := func(method, path, body string) (int, []byte) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Shared fixtures: stable documents (never edited) and queries.
	fixedDocs := map[string]string{
		"f0": "abbabaabbb",
		"f1": strings.Repeat("ab", 40),
		"f2": "aaaa",
		"f3": strings.Repeat("abc", 30),
	}
	i := 0
	for name, content := range fixedDocs {
		target := "/docs/" + name
		if i%2 == 1 {
			target += "?compress=1"
		}
		i++
		if code, b := jsonReq("PUT", target, content); code != 200 {
			t.Fatalf("put %s: %d %s", name, code, b)
		}
	}
	queries := map[string]string{
		"q0": ".*!x{ab*}.*",
		"q1": ".*!x{ab}.*",
		"q2": "project(x; join(.*!x{ab}.*; .*!x{ab}.*))",
	}
	for name, src := range queries {
		spec, _ := json.Marshal(map[string]string{"src": src})
		if code, b := jsonReq("PUT", "/queries/"+name, string(spec)); code != 200 {
			t.Fatalf("put query %s: %d %s", name, code, b)
		}
	}

	// Expected x-spans per (query, fixed doc), computed by the library.
	type qd struct{ q, d string }
	expect := map[qd][]docspanner.Span{}
	libQueries := map[string]*docspanner.Spanner{}
	for qn, src := range queries {
		if qn == "q2" {
			continue // algebra query; q2 ≡ q1 by idempotence of join
		}
		sp, err := docspanner.Compile(src, docspanner.Options{})
		if err != nil {
			t.Fatalf("compile %s: %v", qn, err)
		}
		libQueries[qn] = sp
		for dn, content := range fixedDocs {
			var spans []docspanner.Span
			for _, tup := range sp.Eval([]byte(content)).Sorted() {
				spans = append(spans, tup["x"])
			}
			expect[qd{qn, dn}] = spans
		}
	}
	for dn := range fixedDocs {
		expect[qd{"q2", dn}] = expect[qd{"q1", dn}]
	}

	spansOf := func(tuples []any) []docspanner.Span {
		var out []docspanner.Span
		for _, raw := range tuples {
			m := raw.(map[string]any)["x"].(map[string]any)
			out = append(out, docspanner.NewSpan(int(m["begin"].(float64)), int(m["end"].(float64))))
		}
		return out
	}
	sameSpans := func(got, want []docspanner.Span) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	docNames := []string{"f0", "f1", "f2", "f3"}
	queryNames := []string{"q0", "q1", "q2"}

	var wg sync.WaitGroup
	errs := make(chan error, clients*iterations)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("client %d: "+format, append([]any{c}, args...)...)
			}

			// Per-client scratch document for CDE edits, so edits do not
			// perturb the fixtures other clients evaluate against.
			scratch := fmt.Sprintf("s%d", c)
			scratchContent := "ab"
			if code, b := jsonReq("PUT", "/docs/"+scratch, scratchContent); code != 200 {
				fail("put scratch: %d %s", code, b)
				return
			}

			for it := 0; it < iterations; it++ {
				qn := queryNames[(c+it)%len(queryNames)]
				dn := docNames[(c*7+it)%len(docNames)]
				switch it % 6 {
				case 0: // materialized eval against the library
					code, b := jsonReq("GET", fmt.Sprintf("/eval?query=%s&doc=%s&content=0", qn, dn), "")
					if code != 200 {
						fail("eval: %d %s", code, b)
						continue
					}
					var body map[string]any
					if err := json.Unmarshal(b, &body); err != nil {
						fail("eval json: %v", err)
						continue
					}
					if got := spansOf(body["tuples"].([]any)); !sameSpans(got, expect[qd{qn, dn}]) {
						fail("eval %s/%s: got %v, want %v", qn, dn, got, expect[qd{qn, dn}])
					}
				case 1: // streaming enumeration, full drain
					code, b := jsonReq("GET", fmt.Sprintf("/stream?query=%s&doc=%s&content=0", qn, dn), "")
					if code != 200 {
						fail("stream: %d %s", code, b)
						continue
					}
					lines := strings.Split(strings.TrimSpace(string(b)), "\n")
					want := expect[qd{qn, dn}]
					var summary map[string]any
					if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
						fail("stream summary: %v", err)
						continue
					}
					if summary["done"] != true || int(summary["count"].(float64)) != len(want) {
						fail("stream %s/%s summary %v, want %d tuples", qn, dn, summary, len(want))
					}
				case 2: // count
					code, b := jsonReq("GET", fmt.Sprintf("/count?query=%s&doc=%s", qn, dn), "")
					if code != 200 {
						fail("count: %d %s", code, b)
						continue
					}
					var body map[string]any
					_ = json.Unmarshal(b, &body)
					if int(body["count"].(float64)) != len(expect[qd{qn, dn}]) {
						fail("count %s/%s = %v, want %d", qn, dn, body["count"], len(expect[qd{qn, dn}]))
					}
				case 3: // re-register a shared query (same source, new plan)
					spec, _ := json.Marshal(map[string]string{"src": queries[qn]})
					if code, b := jsonReq("PUT", "/queries/"+qn, string(spec)); code != 200 {
						fail("re-register %s: %d %s", qn, code, b)
					}
				case 4: // CDE edit on the private scratch doc, verified by eval
					expr := fmt.Sprintf("concat(%s, f2)", scratch)
					if code, b := jsonReq("POST", "/docs/"+scratch+"/edit", fmt.Sprintf(`{"expr": %q}`, expr)); code != 200 {
						fail("edit: %d %s", code, b)
						continue
					}
					scratchContent += fixedDocs["f2"]
					code, b := jsonReq("GET", "/eval?query=q1&doc="+scratch+"&content=0", "")
					if code != 200 {
						fail("eval scratch: %d %s", code, b)
						continue
					}
					var body map[string]any
					_ = json.Unmarshal(b, &body)
					var want []docspanner.Span
					for _, tup := range libQueries["q1"].Eval([]byte(scratchContent)).Sorted() {
						want = append(want, tup["x"])
					}
					if got := spansOf(body["tuples"].([]any)); !sameSpans(got, want) {
						fail("eval scratch after edit: got %v, want %v", got, want)
					}
				case 5: // cache flush and metrics scrape under load
					if c == 0 {
						if code, b := jsonReq("POST", "/admin/flush-caches", ""); code != 200 {
							fail("flush: %d %s", code, b)
						}
					}
					if code, b := jsonReq("GET", "/metrics", ""); code != 200 {
						fail("metrics: %d %s", code, b)
					} else if !strings.Contains(string(b), "spannerd_matrix_cache_hit_rate") {
						fail("metrics missing matrix cache hit rate")
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
