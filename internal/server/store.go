package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"docspanner"
)

// storedDoc is one immutable snapshot of a named document. The store
// replaces the whole entry on every mutation (copy-on-write), so
// handlers evaluate against a snapshot without holding the store lock;
// concurrent edits bump the version and swap in a new snapshot.
//
// Every document — plain or compressed — also lives in the store's
// shared DocDB as an SLP, so CDE edit expressions can reference any
// document by name and structure sharing spans the whole store.
type storedDoc struct {
	name       string
	compressed bool // ingested or produced in SLP-compressed form
	version    int
	updated    time.Time

	doc *docspanner.Document // SLP form; always set

	// plain holds the raw bytes; for compressed documents it is filled
	// lazily (one shared decompression) when a handler needs the text.
	plainOnce sync.Once
	plain     []byte
}

// bytes returns the document text, decompressing at most once per
// snapshot.
func (d *storedDoc) bytes() []byte {
	d.plainOnce.Do(func() {
		if d.plain == nil {
			d.plain = d.doc.Bytes()
		}
	})
	return d.plain
}

// docInfo is the JSON shape of a document in listings and responses.
type docInfo struct {
	Name        string `json:"name"`
	Compressed  bool   `json:"compressed"`
	Len         int64  `json:"len"`
	GrammarSize int    `json:"grammar_size"`
	Version     int    `json:"version"`
	Updated     string `json:"updated"`
}

func (d *storedDoc) info() docInfo {
	return docInfo{
		Name:        d.name,
		Compressed:  d.compressed,
		Len:         d.doc.Len(),
		GrammarSize: d.doc.GrammarSize(),
		Version:     d.version,
		Updated:     d.updated.UTC().Format(time.RFC3339Nano),
	}
}

// docStore is the server's document store: named snapshots over a
// shared SLP document database. The underlying slp.DB is not
// concurrency-safe, so every access to it (and to the name map) happens
// under mu; evaluation never touches the DB — it runs on the immutable
// snapshot taken under RLock.
type docStore struct {
	mu   sync.RWMutex
	db   *docspanner.DocDB
	docs map[string]*storedDoc
}

func newDocStore() *docStore {
	return &docStore{db: docspanner.NewDocDB(), docs: map[string]*storedDoc{}}
}

// put ingests (or replaces) a document. With compress set the bytes are
// Re-Pair-compressed into a balanced SLP; otherwise the SLP form is the
// uncompressed balanced parse (kept so CDE can reference the document).
func (s *docStore) put(name string, data []byte, compress bool) *storedDoc {
	var d *docspanner.Document
	if compress {
		d = docspanner.CompressDocument(data)
	} else {
		d = docspanner.DocumentFromBytes(data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	version := 1
	if old, ok := s.docs[name]; ok {
		version = old.version + 1
	}
	sd := &storedDoc{
		name:       name,
		compressed: compress,
		version:    version,
		updated:    time.Now(),
		doc:        d,
		plain:      data,
	}
	s.db.Add(name, d)
	s.docs[name] = sd
	return sd
}

// compress re-ingests a plain document in compressed form, preserving
// the version history. It is a no-op for already-compressed documents.
func (s *docStore) compress(name string) (*storedDoc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.docs[name]
	if !ok {
		return nil, errNotFound(fmt.Sprintf("document %q", name))
	}
	if old.compressed {
		return old, nil
	}
	d := docspanner.CompressDocument(old.bytes())
	sd := &storedDoc{
		name:       name,
		compressed: true,
		version:    old.version + 1,
		updated:    time.Now(),
		doc:        d,
		plain:      old.bytes(),
	}
	s.db.Add(name, d)
	s.docs[name] = sd
	return sd, nil
}

// edit evaluates a CDE expression over the store's SLP database and
// stores the result under name (which may be new or may overwrite an
// existing document). The result is always compressed-form: CDE works on
// the grammar and never decompresses anything. Parse and evaluation
// failures come back as 422 with one structured diagnostic per the CDE
// error taxonomy (CDE001 parse, CDE002 unknown document, CDE003 range).
func (s *docStore) edit(name, expr string) (*storedDoc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.db.Edit(name, expr)
	if err != nil {
		return nil, cdeHTTPError(err, expr)
	}
	version := 1
	if old, ok := s.docs[name]; ok {
		version = old.version + 1
	}
	sd := &storedDoc{
		name:       name,
		compressed: true,
		version:    version,
		updated:    time.Now(),
		doc:        d,
	}
	s.docs[name] = sd
	return sd, nil
}

// cdeHTTPError maps a CDE failure onto the structured-diagnostics 422
// shape query registration uses: the stable CDE code, a position ("$"
// for evaluation errors, "offset N" into the expression for parse
// errors), the message, and the library's hint.
func cdeHTTPError(err error, expr string) error {
	var ce *docspanner.CDEError
	if !errors.As(err, &ce) {
		return errBadRequest(err.Error())
	}
	pos := "$"
	if ce.Offset >= 0 {
		pos = fmt.Sprintf("offset %d", ce.Offset)
	} else if ce.Op != "" {
		pos = ce.Op
	}
	return &httpError{
		status:  422,
		message: fmt.Sprintf("edit %q: %s", expr, ce.Message),
		diags: []docspanner.Diagnostic{{
			Code:     ce.Code,
			Severity: docspanner.SeverityError,
			Pos:      pos,
			Message:  ce.Message,
			Hint:     ce.Hint,
		}},
	}
}

// get returns the current snapshot of a document.
func (s *docStore) get(name string) (*storedDoc, error) {
	s.mu.RLock()
	d, ok := s.docs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, errNotFound(fmt.Sprintf("document %q", name))
	}
	return d, nil
}

func (s *docStore) delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; !ok {
		return errNotFound(fmt.Sprintf("document %q", name))
	}
	delete(s.docs, name)
	s.db.Remove(name)
	return nil
}

func (s *docStore) list() []docInfo {
	s.mu.RLock()
	out := make([]docInfo, 0, len(s.docs))
	for _, d := range s.docs {
		out = append(out, d.info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *docStore) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// grammarSize returns the total number of distinct SLP nodes across the
// store (shared nodes counted once).
func (s *docStore) grammarSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Size()
}
