package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"docspanner"
	"docspanner/internal/storage"
)

// storedDoc is one immutable snapshot of a named document. The store
// replaces the whole entry on every mutation (copy-on-write), so
// handlers evaluate against a snapshot without holding the store lock;
// concurrent edits bump the version and swap in a new snapshot.
//
// Every document — plain or compressed — also lives in the store's
// shared DocDB as an SLP, so CDE edit expressions can reference any
// document by name and structure sharing spans the whole store.
type storedDoc struct {
	name       string
	compressed bool // ingested or produced in SLP-compressed form
	version    int
	updated    time.Time

	doc *docspanner.Document // SLP form; always set

	// plain holds the raw bytes; for compressed documents it is filled
	// lazily (one shared decompression) when a handler needs the text.
	plainOnce sync.Once
	plain     []byte
}

// bytes returns the document text, decompressing at most once per
// snapshot.
func (d *storedDoc) bytes() []byte {
	d.plainOnce.Do(func() {
		if d.plain == nil {
			d.plain = d.doc.Bytes()
		}
	})
	return d.plain
}

// docInfo is the JSON shape of a document in listings and responses.
type docInfo struct {
	Name        string `json:"name"`
	Compressed  bool   `json:"compressed"`
	Len         int64  `json:"len"`
	GrammarSize int    `json:"grammar_size"`
	Version     int    `json:"version"`
	Updated     string `json:"updated"`
}

func (d *storedDoc) info() docInfo {
	return docInfo{
		Name:        d.name,
		Compressed:  d.compressed,
		Len:         d.doc.Len(),
		GrammarSize: d.doc.GrammarSize(),
		Version:     d.version,
		Updated:     d.updated.UTC().Format(time.RFC3339Nano),
	}
}

// docStore is the server's document store: named snapshots over a
// shared SLP document database, teeing every mutation through the
// storage backend before applying it (write-ahead order: a mutation the
// backend refused never becomes visible). The underlying slp.DB is not
// concurrency-safe, so every access to it (and to the name map) happens
// under mu; evaluation never touches the DB — it runs on the immutable
// snapshot taken under RLock.
type docStore struct {
	backend storage.Backend

	mu   sync.RWMutex
	db   *docspanner.DocDB
	docs map[string]*storedDoc
}

// newDocStore rebuilds the serving store from a backend's recovered
// state (empty for the memory backend). Versions and updated stamps
// come from the recovered state, never from the clock — a restart must
// be invisible to clients watching them.
func newDocStore(state *storage.State, backend storage.Backend) (*docStore, error) {
	s := &docStore{backend: backend, db: state.DB, docs: map[string]*storedDoc{}}
	for name, ds := range state.Docs {
		d, ok := state.DB.Get(name)
		if !ok {
			return nil, fmt.Errorf("server: recovered state lists document %q without an SLP", name)
		}
		s.docs[name] = &storedDoc{
			name:       name,
			compressed: ds.Compressed,
			version:    ds.Version,
			updated:    ds.Updated,
			doc:        d,
		}
	}
	return s, nil
}

// put ingests (or replaces) a document. With compress set the bytes are
// Re-Pair-compressed into a balanced SLP; otherwise the SLP form is the
// uncompressed balanced parse (kept so CDE can reference the document).
// Compression runs before taking the lock; the backend append happens
// under it (log order is apply order), and the durability barrier after
// releasing it. A *syncFailedError comes back WITH the new snapshot:
// the mutation is applied and logged, only its fsync failed, so callers
// must still run their post-mutation side effects.
func (s *docStore) put(name string, data []byte, compress bool) (*storedDoc, error) {
	var d *docspanner.Document
	if compress {
		d = docspanner.CompressDocument(data)
	} else {
		d = docspanner.DocumentFromBytes(data)
	}
	s.mu.Lock()
	version := 1
	if old, ok := s.docs[name]; ok {
		version = old.version + 1
	}
	sd := &storedDoc{
		name:       name,
		compressed: compress,
		version:    version,
		updated:    time.Now(),
		doc:        d,
		plain:      data,
	}
	if err := s.backend.PutDoc(name, data, d, compress, version, sd.updated); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.db.Add(name, d)
	s.docs[name] = sd
	s.mu.Unlock()
	if err := s.backend.Sync(); err != nil {
		return sd, syncFailed(fmt.Sprintf("document %q v%d", name, sd.version), err)
	}
	return sd, nil
}

// compress re-ingests a plain document in compressed form, preserving
// the version history. It is a no-op for already-compressed documents.
//
// Re-Pair is the expensive step, so it runs outside the store lock on
// the immutable snapshot; the swap then re-checks under the write lock
// that the document did not move on. If it did (a concurrent put or
// edit), the compression is redone from the fresh snapshot rather than
// clobbering the newer version with stale bytes.
func (s *docStore) compress(name string) (*storedDoc, error) {
	for {
		s.mu.RLock()
		old, ok := s.docs[name]
		s.mu.RUnlock()
		if !ok {
			return nil, errNotFound(fmt.Sprintf("document %q", name))
		}
		if old.compressed {
			return old, nil
		}
		data := old.bytes()
		d := docspanner.CompressDocument(data)

		s.mu.Lock()
		cur, ok := s.docs[name]
		if !ok {
			s.mu.Unlock()
			return nil, errNotFound(fmt.Sprintf("document %q", name))
		}
		if cur != old {
			s.mu.Unlock()
			continue // raced with a mutation; recompress the new snapshot
		}
		sd := &storedDoc{
			name:       name,
			compressed: true,
			version:    old.version + 1,
			updated:    time.Now(),
			doc:        d,
			plain:      data,
		}
		if err := s.backend.PutDoc(name, data, d, true, sd.version, sd.updated); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		s.db.Add(name, d)
		s.docs[name] = sd
		s.mu.Unlock()
		if err := s.backend.Sync(); err != nil {
			return sd, syncFailed(fmt.Sprintf("document %q v%d", name, sd.version), err)
		}
		return sd, nil
	}
}

// edit evaluates a CDE expression over the store's SLP database and
// stores the result under name (which may be new or may overwrite an
// existing document). The result is always compressed-form: CDE works on
// the grammar and never decompresses anything. Parse and evaluation
// failures come back as 422 with one structured diagnostic per the CDE
// error taxonomy (CDE001 parse, CDE002 unknown document, CDE003 range).
// The backend persists the expression text itself; replay re-evaluates
// it against the recovered grammar.
func (s *docStore) edit(name, expr string) (*storedDoc, error) {
	s.mu.Lock()
	old := s.docs[name] // nil when the edit creates the document
	d, err := s.db.Edit(name, expr)
	if err != nil {
		s.mu.Unlock()
		return nil, cdeHTTPError(err, expr)
	}
	version := 1
	if old != nil {
		version = old.version + 1
	}
	sd := &storedDoc{
		name:       name,
		compressed: true,
		version:    version,
		updated:    time.Now(),
		doc:        d,
	}
	if err := s.backend.EditDoc(name, expr, d, version, sd.updated); err != nil {
		// Edit already rebound name in the DB; restore the old binding so
		// the refused mutation is invisible.
		if old != nil {
			s.db.Add(name, old.doc)
		} else {
			s.db.Remove(name)
		}
		s.mu.Unlock()
		return nil, err
	}
	s.docs[name] = sd
	s.mu.Unlock()
	if err := s.backend.Sync(); err != nil {
		return sd, syncFailed(fmt.Sprintf("document %q v%d", name, sd.version), err)
	}
	return sd, nil
}

// cdeHTTPError maps a CDE failure onto the structured-diagnostics 422
// shape query registration uses: the stable CDE code, a position ("$"
// for evaluation errors, "offset N" into the expression for parse
// errors), the message, and the library's hint.
func cdeHTTPError(err error, expr string) error {
	var ce *docspanner.CDEError
	if !errors.As(err, &ce) {
		return errBadRequest(err.Error())
	}
	pos := "$"
	if ce.Offset >= 0 {
		pos = fmt.Sprintf("offset %d", ce.Offset)
	} else if ce.Op != "" {
		pos = ce.Op
	}
	return &httpError{
		status:  422,
		message: fmt.Sprintf("edit %q: %s", expr, ce.Message),
		diags: []docspanner.Diagnostic{{
			Code:     ce.Code,
			Severity: docspanner.SeverityError,
			Pos:      pos,
			Message:  ce.Message,
			Hint:     ce.Hint,
		}},
	}
}

// get returns the current snapshot of a document.
func (s *docStore) get(name string) (*storedDoc, error) {
	s.mu.RLock()
	d, ok := s.docs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, errNotFound(fmt.Sprintf("document %q", name))
	}
	return d, nil
}

func (s *docStore) delete(name string) error {
	s.mu.Lock()
	if _, ok := s.docs[name]; !ok {
		s.mu.Unlock()
		return errNotFound(fmt.Sprintf("document %q", name))
	}
	if err := s.backend.DeleteDoc(name); err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.docs, name)
	s.db.Remove(name)
	s.mu.Unlock()
	if err := s.backend.Sync(); err != nil {
		return syncFailed(fmt.Sprintf("document %q delete", name), err)
	}
	return nil
}

func (s *docStore) list() []docInfo {
	s.mu.RLock()
	out := make([]docInfo, 0, len(s.docs))
	for _, d := range s.docs {
		out = append(out, d.info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *docStore) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// grammarSize returns the total number of distinct SLP nodes across the
// store (shared nodes counted once).
func (s *docStore) grammarSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Size()
}
