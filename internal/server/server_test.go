package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"docspanner"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// do runs one request against the handler and decodes the JSON body.
func do(t *testing.T, s *Server, method, target, body string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec.Code, out
}

func mustStatus(t *testing.T, got int, want int, ctx string) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: status = %d, want %d", ctx, got, want)
	}
}

func TestDocumentLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})

	code, body := do(t, s, "PUT", "/docs/d1", "aabbab")
	mustStatus(t, code, 200, "put d1")
	if body["compressed"] != false || body["len"] != float64(6) {
		t.Fatalf("put d1: %v", body)
	}

	code, body = do(t, s, "PUT", "/docs/d2?compress=1", "abababab")
	mustStatus(t, code, 200, "put d2")
	if body["compressed"] != true {
		t.Fatalf("put d2 not compressed: %v", body)
	}

	code, body = do(t, s, "GET", "/docs", "")
	mustStatus(t, code, 200, "list")
	if n := len(body["docs"].([]any)); n != 2 {
		t.Fatalf("list: %d docs, want 2", n)
	}

	// Content round-trips, decompressing the compressed one.
	req := httptest.NewRequest("GET", "/docs/d2?content=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Body.String() != "abababab" {
		t.Fatalf("d2 content = %q", rec.Body.String())
	}

	// Compressing a plain document bumps the version and keeps the text.
	code, body = do(t, s, "POST", "/docs/d1/compress", "")
	mustStatus(t, code, 200, "compress d1")
	if body["compressed"] != true || body["version"] != float64(2) {
		t.Fatalf("compress d1: %v", body)
	}

	code, _ = do(t, s, "DELETE", "/docs/d2", "")
	mustStatus(t, code, 200, "delete d2")
	code, _ = do(t, s, "GET", "/docs/d2", "")
	mustStatus(t, code, 404, "get deleted d2")
	code, _ = do(t, s, "DELETE", "/docs/d2", "")
	mustStatus(t, code, 404, "delete deleted d2")
}

func TestCDEEdit(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/a", "hello ")
	do(t, s, "PUT", "/docs/b?compress=1", "world!")

	code, body := do(t, s, "POST", "/docs/c/edit", `{"expr": "concat(a, b)"}`)
	mustStatus(t, code, 200, "edit concat")
	if body["compressed"] != true {
		t.Fatalf("edit result should be compressed: %v", body)
	}
	req := httptest.NewRequest("GET", "/docs/c?content=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Body.String() != "hello world!" {
		t.Fatalf("edited content = %q", rec.Body.String())
	}

	// In-place edit bumps the version.
	code, body = do(t, s, "POST", "/docs/c/edit", `{"expr": "delete(c, 1, 6)"}`)
	mustStatus(t, code, 200, "edit delete")
	if body["version"] != float64(2) {
		t.Fatalf("edit version: %v", body)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/docs/c?content=1", nil))
	if rec.Body.String() != "world!" {
		t.Fatalf("edited content = %q", rec.Body.String())
	}

	// CDE failures are 422 with one structured diagnostic, like query
	// registration rejections.
	code, body = do(t, s, "POST", "/docs/c/edit", `{"expr": "concat(nosuch, c)"}`)
	mustStatus(t, code, 422, "edit with unknown doc")
	if !strings.Contains(body["error"].(string), "nosuch") {
		t.Fatalf("edit error: %v", body)
	}
	if _, ok := body["diagnostics"]; !ok {
		t.Fatalf("edit error lacks diagnostics: %v", body)
	}
}

func TestQueryRegistration(t *testing.T) {
	s := newTestServer(t, Config{})

	code, body := do(t, s, "PUT", "/queries/q1", `{"src": ".*!x{ab}.*"}`)
	mustStatus(t, code, 200, "register q1")
	if body["regular"] != true || body["streaming"] != true {
		t.Fatalf("q1 info: %v", body)
	}

	// Prefix algebra syntax works too.
	code, body = do(t, s, "PUT", "/queries/q2",
		`{"src": "project(x; join(.*!x{ab}.*; .*!x{ab}.*))"}`)
	mustStatus(t, code, 200, "register q2")
	if vars := body["vars"].([]any); len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("q2 vars: %v", body)
	}

	// Unparsable input is a 400.
	code, _ = do(t, s, "PUT", "/queries/bad", `{"src": "union(a)"}`)
	mustStatus(t, code, 400, "register unparsable")

	// An unsatisfiable query (SP001, severity error) is rejected by the
	// default lint threshold, with diagnostics attached.
	code, body = do(t, s, "PUT", "/queries/empty", `{"src": "minus(ab; ab)"}`)
	mustStatus(t, code, 422, "register unsatisfiable")
	if body["diagnostics"] == nil {
		t.Fatalf("lint rejection without diagnostics: %v", body)
	}
	// ...unless the registration opts out.
	code, _ = do(t, s, "PUT", "/queries/empty", `{"src": "minus(ab; ab)", "fail_on": "never"}`)
	mustStatus(t, code, 200, "register unsatisfiable with fail_on=never")

	code, body = do(t, s, "GET", "/queries/q1/explain", "")
	mustStatus(t, code, 200, "explain")
	if !strings.Contains(body["plan"].(string), "constant-delay") {
		t.Fatalf("explain plan: %v", body["plan"])
	}

	code, _ = do(t, s, "DELETE", "/queries/q2", "")
	mustStatus(t, code, 200, "delete q2")
	code, _ = do(t, s, "GET", "/queries/q2", "")
	mustStatus(t, code, 404, "get deleted q2")
}

// evalSpans extracts the (begin,end) pairs of variable x from a response.
func evalSpans(t *testing.T, body map[string]any) []docspanner.Span {
	t.Helper()
	var out []docspanner.Span
	for _, raw := range body["tuples"].([]any) {
		m := raw.(map[string]any)["x"].(map[string]any)
		out = append(out, docspanner.NewSpan(int(m["begin"].(float64)), int(m["end"].(float64))))
	}
	return out
}

// libSpans computes the expected x-spans with the library facade.
func libSpans(t *testing.T, pattern, doc string) []docspanner.Span {
	t.Helper()
	sp, err := docspanner.Compile(pattern, docspanner.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out []docspanner.Span
	for _, tup := range sp.Eval([]byte(doc)).Sorted() {
		out = append(out, tup["x"])
	}
	return out
}

func TestEvalCountStreamAgainstLibrary(t *testing.T) {
	const pattern = ".*!x{ab*}.*"
	const doc = "abbabaabbb"
	want := libSpans(t, pattern, doc)

	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/plain", doc)
	do(t, s, "PUT", "/docs/comp?compress=1", doc)
	code, _ := do(t, s, "PUT", "/queries/q", fmt.Sprintf(`{"src": %q}`, pattern))
	mustStatus(t, code, 200, "register")

	for _, docName := range []string{"plain", "comp"} {
		code, body := do(t, s, "GET", "/eval?query=q&doc="+docName, "")
		mustStatus(t, code, 200, "eval "+docName)
		got := evalSpans(t, body)
		if len(got) != len(want) {
			t.Fatalf("eval %s: %d tuples, want %d", docName, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("eval %s: tuple %d = %v, want %v", docName, i, got[i], want[i])
			}
		}

		code, body = do(t, s, "GET", "/count?query=q&doc="+docName, "")
		mustStatus(t, code, 200, "count "+docName)
		if body["count"] != float64(len(want)) {
			t.Fatalf("count %s = %v, want %d", docName, body["count"], len(want))
		}

		req := httptest.NewRequest("GET", "/stream?query=q&doc="+docName, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
		if len(lines) != len(want)+1 {
			t.Fatalf("stream %s: %d lines, want %d tuples + summary", docName, len(lines), len(want))
		}
		var summary map[string]any
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
			t.Fatalf("stream summary: %v", err)
		}
		if summary["done"] != true || summary["count"] != float64(len(want)) {
			t.Fatalf("stream %s summary: %v", docName, summary)
		}
	}
}

func TestStreamLimit(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/d", "abababab")
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	req := httptest.NewRequest("GET", "/stream?query=q&doc=d&limit=2", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 { // 2 tuples + summary
		t.Fatalf("limited stream: %d lines: %q", len(lines), rec.Body.String())
	}
}

// flushRecorder wraps httptest.ResponseRecorder to record how many
// bytes had been written when the handler first called Flush.
type flushRecorder struct {
	*httptest.ResponseRecorder
	bytesAtFirstFlush int
	flushes           int
}

func (f *flushRecorder) Flush() {
	if f.flushes == 0 {
		f.bytesAtFirstFlush = f.Body.Len()
	}
	f.flushes++
	f.ResponseRecorder.Flush()
}

// TestStreamFlushesFirstTupleEarly asserts the streaming contract: on a
// constant-delay plan the first NDJSON line is flushed to the client
// before the result is fully materialized (i.e. at the first flush
// exactly one tuple line had been written, not the whole relation).
func TestStreamFlushesFirstTupleEarly(t *testing.T) {
	s := newTestServer(t, Config{})
	doc := strings.Repeat("ab", 500) // 500 result tuples
	do(t, s, "PUT", "/docs/big", doc)
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)

	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	req := httptest.NewRequest("GET", "/stream?query=q&doc=big&content=0", nil)
	s.ServeHTTP(rec, req)

	if rec.Header().Get("X-Streaming-Plan") != "true" {
		t.Fatalf("expected a streaming plan")
	}
	total := rec.Body.Len()
	// First tuple immediately, then every streamFlushEvery tuples, then
	// the summary: 500 tuples → 1 + 7 + 1 flushes.
	if want := 1 + (500-1)/streamFlushEvery + 1; rec.flushes != want {
		t.Fatalf("flushes = %d, want %d (first tuple + every %d + summary)", rec.flushes, want, streamFlushEvery)
	}
	if rec.bytesAtFirstFlush <= 0 || rec.bytesAtFirstFlush >= total/100 {
		t.Fatalf("first flush after %d of %d bytes: first tuple was not streamed before materialization", rec.bytesAtFirstFlush, total)
	}
	first := strings.SplitN(rec.Body.String(), "\n", 2)[0]
	var tup map[string]any
	if err := json.Unmarshal([]byte(first), &tup); err != nil {
		t.Fatalf("first NDJSON line %q: %v", first, err)
	}
	if rec.bytesAtFirstFlush != len(first)+1 {
		t.Fatalf("first flush at %d bytes, want exactly the first line (%d bytes)", rec.bytesAtFirstFlush, len(first)+1)
	}
}

func TestBatchMixedRepresentations(t *testing.T) {
	const pattern = ".*!x{ab}.*"
	s := newTestServer(t, Config{})
	docs := []string{"abab", "ab", "", "aabb", "abababab"}
	for i, d := range docs {
		target := fmt.Sprintf("/docs/m%d", i)
		if i%2 == 1 {
			target += "?compress=1"
		}
		do(t, s, "PUT", target, d)
	}
	do(t, s, "PUT", "/queries/q", fmt.Sprintf(`{"src": %q}`, pattern))

	code, body := do(t, s, "POST", "/batch",
		`{"query": "q", "docs": ["m0","m1","m2","m3","m4"], "workers": 4, "content": false}`)
	mustStatus(t, code, 200, "batch")
	results := body["results"].([]any)
	if len(results) != len(docs) {
		t.Fatalf("batch: %d results, want %d", len(results), len(docs))
	}
	sp, _ := docspanner.Compile(pattern, docspanner.Options{})
	for i, raw := range results {
		r := raw.(map[string]any)
		want := sp.Count([]byte(docs[i]))
		if r["doc"] != fmt.Sprintf("m%d", i) || r["count"] != float64(want) {
			t.Fatalf("batch result %d: %v, want count %d", i, r, want)
		}
	}

	code, _ = do(t, s, "POST", "/batch", `{"query": "q", "docs": []}`)
	mustStatus(t, code, 400, "empty batch")
	code, _ = do(t, s, "POST", "/batch", `{"query": "q", "docs": ["nosuch"]}`)
	mustStatus(t, code, 404, "batch unknown doc")
}

func TestWarmEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/d?compress=1", strings.Repeat("abcab", 50))
	do(t, s, "PUT", "/queries/single", `{"src": ".*!x{ab}.*"}`)
	// A join that cannot fuse into a single scan: string-equality
	// selection keeps residual algebra in the plan.
	do(t, s, "PUT", "/queries/multi", `{"src": "seleq(x,y; join(.*!x{a(b|c)}.*; .*!y{ab}.*))"}`)

	code, _ := do(t, s, "POST", "/docs/d/warm?query=single&workers=2", "")
	mustStatus(t, code, 200, "warm single-scan")
	code, _ = do(t, s, "POST", "/docs/d/warm?query=multi", "")
	mustStatus(t, code, 422, "warm non-single-scan")
	code, _ = do(t, s, "POST", "/docs/nosuch/warm?query=single", "")
	mustStatus(t, code, 404, "warm unknown doc")
}

func TestTimeoutsAndLimiter(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	do(t, s, "PUT", "/docs/d", strings.Repeat("ab", 2000))
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)

	// A 1ns deadline expires before the first tuple: 504.
	code, body := do(t, s, "GET", "/count?query=q&doc=d&timeout=1ns", "")
	mustStatus(t, code, 504, "count with expired deadline")
	if !strings.Contains(body["error"].(string), "deadline") {
		t.Fatalf("timeout error: %v", body)
	}

	// Bad timeout values are a 400.
	code, _ = do(t, s, "GET", "/count?query=q&doc=d&timeout=banana", "")
	mustStatus(t, code, 400, "bad timeout")

	// With the single slot taken, a waiting request gives up at its
	// deadline with 503.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	code, _ = do(t, s, "GET", "/count?query=q&doc=d&timeout=50ms", "")
	mustStatus(t, code, 503, "limiter full")
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/d?compress=1", "abab")
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	do(t, s, "GET", "/eval?query=q&doc=d", "")
	do(t, s, "GET", "/stream?query=q&doc=d", "")

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	mustStatus(t, rec.Code, 200, "metrics")
	text := rec.Body.String()
	for _, want := range []string{
		"spannerd_plan_cache_hits_total",
		"spannerd_plan_cache_hit_rate",
		"spannerd_matrix_cache_hits_total",
		"spannerd_matrix_cache_hit_rate",
		`spannerd_tuples_total{query="q",kind="eval"}`,
		`spannerd_tuples_total{query="q",kind="stream"}`,
		`spannerd_query_duration_seconds_bucket{query="q",kind="eval",le="+Inf"}`,
		"spannerd_documents 1",
		"spannerd_queries 1",
		`spannerd_requests_total{handler="eval",code="200"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	mustStatus(t, rec.Code, 200, "varz")
	var varz map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &varz); err != nil {
		t.Fatalf("/varz not valid JSON: %v", err)
	}
	own, ok := varz["spannerd"].(map[string]any)
	if !ok {
		t.Fatalf("/varz has no spannerd section: %v", varz)
	}
	if own["docs"] != float64(1) || own["queries"] != float64(1) {
		t.Fatalf("varz spannerd section: %v", own)
	}
}

func TestHealthzAndFlush(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := do(t, s, "GET", "/healthz", "")
	mustStatus(t, code, 200, "healthz")
	if body["status"] != "ok" {
		t.Fatalf("healthz: %v", body)
	}

	do(t, s, "PUT", "/docs/d?compress=1", "abab")
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	do(t, s, "GET", "/eval?query=q&doc=d", "")
	code, _ = do(t, s, "POST", "/admin/flush-caches", "")
	mustStatus(t, code, 200, "flush")
	// Evaluation still works after the flush (fresh cores are built).
	code, body = do(t, s, "GET", "/count?query=q&doc=d", "")
	mustStatus(t, code, 200, "count after flush")
	if body["count"] != float64(2) {
		t.Fatalf("count after flush: %v", body)
	}
}

func TestContextCancellationMidStream(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/d", strings.Repeat("ab", 3000))
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/stream?query=q&doc=d&content=0", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	// Cancel from inside the stream: after a few flushes the client goes
	// away; the handler must terminate and mark the summary line as
	// not-done.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(&cancelAfterFlushes{ResponseRecorder: rec, n: 3, cancel: cancel}, req)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate after cancellation")
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var summary map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if summary["done"] != false {
		t.Fatalf("cancelled stream should report done=false: %v", summary)
	}
	if n := summary["count"].(float64); n >= 3000 {
		t.Fatalf("cancelled stream delivered the whole result (%v tuples)", n)
	}
}

type cancelAfterFlushes struct {
	*httptest.ResponseRecorder
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfterFlushes) Flush() {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
	c.ResponseRecorder.Flush()
}

// TestQueryRegistrationPlanLint pins that the plan-level passes (SP009,
// SP010) run at registration: their warnings land in the diagnostics
// payload, participate in the fail_on threshold, and surface in the
// EXPLAIN output.
func TestQueryRegistrationPlanLint(t *testing.T) {
	s := newTestServer(t, Config{})

	diagCodes := func(body map[string]any) []string {
		raw, _ := body["diagnostics"].([]any)
		var out []string
		for _, d := range raw {
			out = append(out, d.(map[string]any)["code"].(string))
		}
		return out
	}
	hasCode := func(codes []string, want string) bool {
		for _, c := range codes {
			if c == want {
				return true
			}
		}
		return false
	}

	// A ~70-state NFA whose DFA blows past a 200-state gate: SP009.
	blowup := "(a|b)*a" + strings.Repeat("(a|b)", 10)

	// With fail_on=warning the SP009 warning rejects the registration.
	spec := fmt.Sprintf(`{"src": %q, "fail_on": "warning", "plan": {"max_determinize_states": 200}}`, blowup)
	code, body := do(t, s, "PUT", "/queries/blowup", spec)
	mustStatus(t, code, 422, "register blowup with fail_on=warning")
	if !hasCode(diagCodes(body), "SP009") {
		t.Fatalf("422 diagnostics should include SP009: %v", body)
	}

	// Under the default threshold (error) a warning registers fine, with
	// the diagnostic attached to the query info and visible in EXPLAIN.
	spec = fmt.Sprintf(`{"src": %q, "plan": {"max_determinize_states": 200}}`, blowup)
	code, body = do(t, s, "PUT", "/queries/blowup", spec)
	mustStatus(t, code, 200, "register blowup with default threshold")
	if !hasCode(diagCodes(body), "SP009") {
		t.Fatalf("query info should carry the SP009 diagnostic: %v", body)
	}
	code, body = do(t, s, "GET", "/queries/blowup/explain", "")
	mustStatus(t, code, 200, "explain blowup")
	if plan := body["plan"].(string); !strings.Contains(plan, "warnings:") || !strings.Contains(plan, "SP009") {
		t.Fatalf("explain should surface the SP009 warning:\n%s", plan)
	}

	// The same query under the default gate (4096) is clean.
	spec = fmt.Sprintf(`{"src": %q}`, blowup)
	code, body = do(t, s, "PUT", "/queries/fine", spec)
	mustStatus(t, code, 200, "register under default gate")
	if hasCode(diagCodes(body), "SP009") {
		t.Fatalf("default gate should not produce SP009: %v", body)
	}

	// A disjoint-schema join that survives rewriting (fusion disabled
	// via max_fused_states=1) reports SP010.
	spec = `{"src": "join(!x{a+}b+; a+!y{b+})", "plan": {"max_fused_states": 1}}`
	code, body = do(t, s, "PUT", "/queries/cross", spec)
	mustStatus(t, code, 200, "register cross join")
	if !hasCode(diagCodes(body), "SP010") {
		t.Fatalf("surviving cross-product join should report SP010: %v", body)
	}

	// The identical join under the default pipeline fuses away: no
	// SP010 (the expression-level SP003 warning remains).
	spec = `{"src": "join(!x{a+}b+; a+!y{b+})"}`
	code, body = do(t, s, "PUT", "/queries/fused", spec)
	mustStatus(t, code, 200, "register fused join")
	codes := diagCodes(body)
	if hasCode(codes, "SP010") {
		t.Fatalf("fused join should not report SP010: %v", body)
	}
	if !hasCode(codes, "SP003") {
		t.Fatalf("expression-level SP003 should remain: %v", body)
	}
}
