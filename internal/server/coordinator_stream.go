package server

// Cross-document evaluation through the coordinator: /stream?docs=a,b
// (or docs=*) interleaves the owning workers' NDJSON streams into one
// merged stream with a combined summary trailer, and POST /batch
// partitions the document list by owner, runs one sub-batch per shard,
// and reassembles per-document results in request order. Both degrade
// per shard: a dead worker costs its own documents, not the request.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"docspanner/internal/cluster"
)

// handleStreamProxy: single-document streams pass through to the owner
// untouched (zero re-framing); ?docs= selects the merged fan-out path.
func (c *Coordinator) handleStreamProxy(w http.ResponseWriter, r *http.Request) error {
	if r.URL.Query().Get("docs") != "" {
		return c.handleMergedStream(w, r)
	}
	return c.proxyByDocParam(w, r)
}

// mergedOut serializes concurrent shard streams into one client
// response: every tuple frame is wrapped as {"doc":…,"tuple":…} and
// written under one mutex through the pooled zero-alloc encoder, with
// the worker /stream flush cadence (first line immediately, then every
// streamFlushEvery lines). A global ?limit= is enforced here — each
// shard also receives it as a per-shard upper bound — and hitting it
// (or losing the client) cancels the remaining shard streams.
type mergedOut struct {
	mu    sync.Mutex
	enc   *ndjsonEncoder
	rc    *http.ResponseController
	stop  context.CancelFunc
	limit int
	n     int
	buf   []byte
	dead  bool // client disconnected mid-stream
}

// write relays one tuple frame; false tells the caller to stop reading
// its shard stream (limit reached, client gone, or stream aborted).
func (o *mergedOut) write(doc string, frame []byte) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead || (o.limit > 0 && o.n >= o.limit) {
		return false
	}
	o.buf = append(o.buf[:0], `{"doc":`...)
	o.buf = appendEscapedString(o.buf, doc)
	o.buf = append(o.buf, `,"tuple":`...)
	o.buf = append(o.buf, frame...)
	o.buf = append(o.buf, '}')
	if err := o.enc.WriteLine(o.buf); err != nil {
		o.dead = true
		o.stop()
		return false
	}
	o.n++
	if o.n == 1 || o.n%streamFlushEvery == 0 {
		if err := o.enc.Flush(o.rc); err != nil {
			o.dead = true
			o.stop()
			return false
		}
	}
	if o.limit > 0 && o.n >= o.limit {
		o.stop()
	}
	return true
}

// shardStreamResult is one document's outcome inside a merged stream.
type shardStreamResult struct {
	Doc     string `json:"doc"`
	Worker  string `json:"worker"`
	Count   int    `json:"count"`
	Version int    `json:"version,omitempty"`
	Err     string `json:"error,omitempty"`
	Status  int    `json:"status,omitempty"`
}

func (c *Coordinator) handleMergedStream(w http.ResponseWriter, r *http.Request) error {
	ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	query := r.URL.Query().Get("query")
	if query == "" {
		return errBadRequest("stream needs ?query=")
	}
	docsParam := r.URL.Query().Get("docs")
	var docs []string
	if docsParam == "*" {
		docs, err = c.listAllDocs(ctx, r)
		if err != nil {
			return err
		}
	} else {
		docs = splitDocs(docsParam)
	}
	if len(docs) == 0 {
		return errBadRequest("stream ?docs= matched no documents")
	}
	if err := c.checkQuery(ctx, r, query); err != nil {
		return err
	}
	contentParam := r.URL.Query().Get("content")
	limit := intParam(r, "limit", 0)

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := newNDJSONEncoder(w)
	defer enc.Release()

	streamCtx, stopAll := context.WithCancel(ctx)
	defer stopAll()
	out := &mergedOut{enc: enc, rc: rc, stop: stopAll, limit: limit}

	start := time.Now()
	results := cluster.Scatter(streamCtx, docs, 4*c.ring.N(), func(ctx context.Context, _ int, name string) shardStreamResult {
		return c.streamOneShard(ctx, r, out, query, name, contentParam, limit)
	})
	took := time.Since(start)

	if out.dead {
		return c.streamDisconnect()
	}
	c.cm.mergedTuples.Add(uint64(out.n))

	var shards, shardErrs []shardStreamResult
	for i, res := range results {
		if res.Doc == "" {
			// Scatter never dispatched this slot: the deadline or limit cut
			// the fan-out short before this document's turn.
			res = shardStreamResult{Doc: docs[i], Worker: c.ring.URL(c.ring.Owner(docs[i]))}
			if limit > 0 && out.n >= limit {
				res.Count = 0 // limit satisfied before this shard was needed
			} else {
				res.Err = "not attempted: fan-out cancelled by deadline"
				res.Status = http.StatusGatewayTimeout
			}
		}
		if res.Err != "" && res.Status == 499 && limit > 0 && out.n >= limit {
			// The global limit cancelled this shard's fetch mid-flight;
			// that is satisfaction, not failure.
			res.Err = ""
			res.Status = 0
		}
		if res.Err != "" {
			c.cm.shardErrors.Add(1)
			shardErrs = append(shardErrs, res)
		} else {
			shards = append(shards, res)
		}
	}

	// Nothing reached the client yet and every shard failed: surface a
	// real error status instead of a 200 stream that is all trailer.
	if out.n == 0 && len(shardErrs) == len(docs) {
		st := shardErrs[0].Status
		if st == 0 {
			st = http.StatusBadGateway
		}
		he := &httpError{status: st, message: shardErrs[0].Err}
		if st == http.StatusServiceUnavailable {
			he.retryAfter = 1
		}
		return he
	}

	summary := map[string]any{
		"done":    len(shardErrs) == 0,
		"count":   out.n,
		"docs":    len(docs),
		"took":    took.String(),
		"results": shards,
	}
	if len(shardErrs) > 0 {
		summary["errors"] = shardErrs
	}
	line, _ := json.Marshal(summary)
	if e := enc.WriteLine(line); e != nil {
		return c.streamDisconnect()
	}
	if e := enc.Flush(rc); e != nil {
		return c.streamDisconnect()
	}
	return nil
}

// streamOneShard opens one worker /stream for one document and relays
// its tuple frames into the merged output. The FrameScanner keeps the
// summary trailer out of the data path — a stream that ends without one
// is a worker death, reported as this document's error.
func (c *Coordinator) streamOneShard(ctx context.Context, r *http.Request, out *mergedOut, query, name, contentParam string, limit int) shardStreamResult {
	wk := c.ring.Owner(name)
	res := shardStreamResult{Doc: name, Worker: c.ring.URL(wk)}
	q := url.Values{"query": {query}, "doc": {name}}
	if contentParam != "" {
		q.Set("content", contentParam)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	resp, release, err := c.client.GetIdempotent(ctx, wk, func(ctx context.Context) (*http.Request, error) {
		return c.outgoing(ctx, http.MethodGet, wk, "/stream", q, nil, r)
	})
	if err != nil {
		res.Err = err.Error()
		res.Status = cluster.StatusFor(err)
		return res
	}
	defer release()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		res.Err = workerErrorMessage(body, resp.StatusCode)
		res.Status = resp.StatusCode
		return res
	}
	sc := cluster.NewFrameScanner(resp.Body)
	for {
		frame, err := sc.Next()
		if errors.Is(err, io.EOF) {
			sum := sc.Summary()
			res.Version = sum.Version
			if !sum.Done && sum.Error != "" {
				res.Err = "worker aborted mid-stream: " + sum.Error
				res.Status = http.StatusBadGateway
			}
			return res
		}
		if err != nil {
			res.Err = err.Error()
			res.Status = http.StatusBadGateway
			return res
		}
		if !out.write(name, frame) {
			// Global limit hit or client gone; the frames already relayed
			// stand, this shard just stops early.
			return res
		}
		res.Count++
	}
}

// workerErrorMessage extracts {"error": …} from a worker error body,
// falling back to the raw status.
func workerErrorMessage(body []byte, status int) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return "worker returned status " + strconv.Itoa(status)
}

// listAllDocs resolves ?docs=* by merging the up workers' /docs
// listings. Down shards contribute nothing — their documents are
// unreachable anyway; the merged trailer's results make the per-shard
// coverage explicit.
func (c *Coordinator) listAllDocs(ctx context.Context, r *http.Request) ([]string, error) {
	if c.ring.UpCount() == 0 {
		return nil, errUnavailable("no workers available")
	}
	results := c.fanAll(ctx, r, http.MethodGet, "/docs", nil, true)
	var names []string
	for _, res := range results {
		if res.Err != "" || res.Status != 200 {
			continue
		}
		var body struct {
			Docs []docInfo `json:"docs"`
		}
		if err := json.Unmarshal(res.Body, &body); err != nil {
			continue
		}
		for _, d := range body.Docs {
			names = append(names, d.Name)
		}
	}
	return names, nil
}

// --- batch scatter-gather ---

// workerBatchResp decodes a worker /batch response without re-decoding
// the tuple arrays: each per-document result stays raw JSON fields.
type workerBatchResp struct {
	Count   int                          `json:"count"`
	Took    string                       `json:"took"`
	Results []map[string]json.RawMessage `json:"results"`
}

// handleBatchScatter partitions the request's document list by owning
// shard, POSTs one sub-batch per shard concurrently (batch evaluation
// is a pure read, so it rides the retrying idempotent path), and
// reassembles per-document results in the original request order, each
// annotated with the shard that produced it. A failed shard degrades to
// per-document error entries and an overall 502/503 with partial=true;
// the surviving shards' results are still returned.
func (c *Coordinator) handleBatchScatter(w http.ResponseWriter, r *http.Request) error {
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if len(req.Docs) == 0 {
		return errBadRequest("batch needs a non-empty docs list")
	}
	if req.Query == "" {
		return errBadRequest("batch needs a query name")
	}
	ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	if err := c.checkQuery(ctx, r, req.Query); err != nil {
		return err
	}

	// Partition by owner, remembering each document's request position.
	type shardBatch struct {
		worker int
		docs   []string
		pos    []int
	}
	byWorker := map[int]*shardBatch{}
	var order []*shardBatch
	for i, name := range req.Docs {
		wk := c.ring.Owner(name)
		sb, ok := byWorker[wk]
		if !ok {
			sb = &shardBatch{worker: wk}
			byWorker[wk] = sb
			order = append(order, sb)
		}
		sb.docs = append(sb.docs, name)
		sb.pos = append(sb.pos, i)
	}

	type shardOutcome struct {
		sb   *shardBatch
		resp *workerBatchResp
		err  error
	}
	start := time.Now()
	outcomes := cluster.Scatter(ctx, order, 0, func(ctx context.Context, _ int, sb *shardBatch) shardOutcome {
		oc := shardOutcome{sb: sb}
		body, err := json.Marshal(batchRequest{
			Query:   req.Query,
			Docs:    sb.docs,
			Workers: req.Workers,
			Content: req.Content,
		})
		if err != nil {
			oc.err = err
			return oc
		}
		resp, release, err := c.client.GetIdempotent(ctx, sb.worker, func(ctx context.Context) (*http.Request, error) {
			req, err := c.outgoing(ctx, http.MethodPost, sb.worker, "/batch", nil, bytes.NewReader(body), r)
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		})
		if err != nil {
			oc.err = err
			return oc
		}
		defer release()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			oc.err = &httpError{status: resp.StatusCode, message: workerErrorMessage(b, resp.StatusCode)}
			return oc
		}
		var wb workerBatchResp
		if err := json.NewDecoder(resp.Body).Decode(&wb); err != nil {
			oc.err = err
			return oc
		}
		if len(wb.Results) != len(sb.docs) {
			oc.err = errors.New("worker batch returned wrong result count")
			return oc
		}
		oc.resp = &wb
		return oc
	})
	took := time.Since(start)

	results := make([]any, len(req.Docs))
	total, failures := 0, 0
	var firstStatus int
	allFastFail := true
	for i, oc := range outcomes {
		sb := order[i]
		if oc.sb == nil {
			// Scatter never dispatched this shard (deadline hit first).
			oc = shardOutcome{sb: sb, err: context.DeadlineExceeded}
		}
		workerURL := c.ring.URL(sb.worker)
		if oc.err != nil {
			st := cluster.StatusFor(oc.err)
			var he *httpError
			if errors.As(oc.err, &he) {
				st = he.status
			}
			if st != http.StatusServiceUnavailable {
				allFastFail = false
			}
			if firstStatus == 0 {
				firstStatus = st
			}
			failures++
			c.cm.shardErrors.Add(1)
			for _, p := range sb.pos {
				results[p] = map[string]any{
					"doc":    req.Docs[p],
					"worker": workerURL,
					"error":  oc.err.Error(),
					"status": st,
				}
			}
			continue
		}
		allFastFail = false
		total += oc.resp.Count
		quotedWorker, _ := json.Marshal(workerURL)
		for k, p := range sb.pos {
			entry := oc.resp.Results[k]
			entry["worker"] = quotedWorker
			results[p] = entry
		}
	}

	out := map[string]any{
		"query":   req.Query,
		"docs":    len(req.Docs),
		"count":   total,
		"took":    took.String(),
		"results": results,
	}
	status := 200
	if failures > 0 {
		out["partial"] = true
		out["failed_shards"] = failures
		// Every shard refused fast (down / breaker open): the request is
		// retryable as a whole — 503. Any mixed or transport-level failure
		// is the gateway's fault to report — 502.
		if allFastFail && firstStatus == http.StatusServiceUnavailable {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		} else {
			status = http.StatusBadGateway
		}
	}
	writeJSON(w, status, out)
	return nil
}
