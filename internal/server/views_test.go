package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- satellite: structured 422 diagnostics per CDE failure shape ---

func editDiag(t *testing.T, body map[string]any) map[string]any {
	t.Helper()
	ds, ok := body["diagnostics"].([]any)
	if !ok || len(ds) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", body)
	}
	return ds[0].(map[string]any)
}

func TestEditRejectsParseErrorWithDiagnostic(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/a", "abc")

	code, body := do(t, s, "POST", "/docs/x/edit", `{"expr": "nonsense("}`)
	mustStatus(t, code, 422, "parse failure")
	d := editDiag(t, body)
	if d["code"] != "CDE001" {
		t.Fatalf("parse diag: %v", d)
	}
	if !strings.HasPrefix(d["pos"].(string), "offset ") {
		t.Fatalf("parse diag pos should carry the offset: %v", d)
	}
	if d["hint"] == "" {
		t.Fatalf("parse diag lacks hint: %v", d)
	}
}

func TestEditRejectsUnknownDocWithDiagnostic(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/a", "abc")

	code, body := do(t, s, "POST", "/docs/x/edit", `{"expr": "concat(a, ghost)"}`)
	mustStatus(t, code, 422, "unknown doc")
	d := editDiag(t, body)
	if d["code"] != "CDE002" {
		t.Fatalf("unknown-doc diag: %v", d)
	}
	if !strings.Contains(d["message"].(string), "ghost") {
		t.Fatalf("unknown-doc diag message: %v", d)
	}
}

func TestEditRejectsOutOfRangeWithDiagnostic(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "PUT", "/docs/a", "abc")

	for _, expr := range []string{
		"extract(a, 1, 99)",
		"extract(a, 0, 2)",
		"delete(a, 3, 1)",
		"insert(a, a, 99)",
		"copy(a, 1, 2, 99)",
	} {
		code, body := do(t, s, "POST", "/docs/x/edit", fmt.Sprintf(`{"expr": %q}`, expr))
		mustStatus(t, code, 422, expr)
		d := editDiag(t, body)
		if d["code"] != "CDE003" {
			t.Fatalf("%s: diag = %v", expr, d)
		}
		// Pos names the offending operation so nested failures are
		// locatable.
		if d["pos"] == "" || d["pos"] == "$" {
			t.Fatalf("%s: diag pos should name the operation: %v", expr, d)
		}
	}
	// Nothing was stored by any failed edit.
	code, _ := do(t, s, "GET", "/docs/x", "")
	mustStatus(t, code, 404, "doc x after failed edits")
}

// --- live views ---

func setupViewServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := newTestServer(t, cfg)
	t.Cleanup(s.Close)
	code, _ := do(t, s, "PUT", "/docs/d?compress=1", "abba")
	mustStatus(t, code, 200, "put d")
	code, _ = do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*", "alphabet": "ab"}`)
	mustStatus(t, code, 200, "put q")
	return s
}

func TestViewLifecycle(t *testing.T) {
	s := setupViewServer(t, Config{})

	code, body := do(t, s, "PUT", "/docs/d/views/q", "")
	mustStatus(t, code, 201, "create view")
	if body["created"] != true || body["version"] != float64(1) || body["count"] != float64(1) {
		t.Fatalf("create view: %v", body)
	}
	if body["materialized"] != true {
		t.Fatalf("small view not materialized: %v", body)
	}

	// Idempotent re-put.
	code, body = do(t, s, "PUT", "/docs/d/views/q", "")
	mustStatus(t, code, 200, "re-put view")
	if body["created"] != false {
		t.Fatalf("re-put created a new view: %v", body)
	}

	// GET returns the same stamped result, with tuples on request.
	code, body = do(t, s, "GET", "/docs/d/views/q?tuples=1", "")
	mustStatus(t, code, 200, "get view")
	if body["version"] != float64(1) {
		t.Fatalf("view version: %v", body)
	}
	tuples := body["tuples"].([]any)
	if len(tuples) != 1 {
		t.Fatalf("view tuples: %v", tuples)
	}
	// At the current version span contents are included.
	x := tuples[0].(map[string]any)["x"].(map[string]any)
	if x["content"] != "ab" {
		t.Fatalf("tuple content: %v", x)
	}

	// An edit refreshes the view synchronously (default mode): version
	// advances with the document, the count tracks the new text.
	code, _ = do(t, s, "POST", "/docs/d/edit", `{"expr": "concat(d, d)"}`)
	mustStatus(t, code, 200, "edit d")
	code, body = do(t, s, "GET", "/docs/d/views/q", "")
	mustStatus(t, code, 200, "get view after edit")
	// "abbaabba" has "ab" at 0-based offsets 0 and 4.
	if body["version"] != float64(2) || body["count"] != float64(2) {
		t.Fatalf("view after edit: %v", body)
	}
	if body["recomputed_nodes"] == float64(0) {
		t.Fatalf("refresh did no work: %v", body)
	}

	// Listings.
	code, body = do(t, s, "GET", "/views", "")
	mustStatus(t, code, 200, "list views")
	if len(body["views"].([]any)) != 1 {
		t.Fatalf("views list: %v", body)
	}
	code, body = do(t, s, "GET", "/docs/d/views", "")
	mustStatus(t, code, 200, "doc views")
	if len(body["views"].([]any)) != 1 {
		t.Fatalf("doc views list: %v", body)
	}

	// Delete.
	code, _ = do(t, s, "DELETE", "/docs/d/views/q", "")
	mustStatus(t, code, 200, "delete view")
	code, _ = do(t, s, "GET", "/docs/d/views/q", "")
	mustStatus(t, code, 404, "get deleted view")
}

func TestViewRequiresSingleScanPlan(t *testing.T) {
	s := setupViewServer(t, Config{})
	// A join that does not fuse into one regular scan cannot be viewed.
	code, _ := do(t, s, "PUT", "/queries/alg",
		`{"src": "seleq(x, y; .*!x{a+}.*!y{a+}.*)", "alphabet": "ab"}`)
	mustStatus(t, code, 200, "register algebra query")
	code, body := do(t, s, "PUT", "/docs/d/views/alg", "")
	mustStatus(t, code, 422, "view over non-fusable plan")
	if body["error"] == "" {
		t.Fatalf("no error message: %v", body)
	}
}

func TestViewDroppedWithDocAndQuery(t *testing.T) {
	s := setupViewServer(t, Config{})
	do(t, s, "PUT", "/docs/d/views/q", "")

	// Re-registering the query drops its views (the definition may have
	// changed).
	code, _ := do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ba}.*", "alphabet": "ab"}`)
	mustStatus(t, code, 200, "re-register q")
	code, _ = do(t, s, "GET", "/docs/d/views/q", "")
	mustStatus(t, code, 404, "view after query re-register")

	do(t, s, "PUT", "/docs/d/views/q", "")
	code, body := do(t, s, "DELETE", "/queries/q", "")
	mustStatus(t, code, 200, "delete q")
	if body["views_dropped"] != float64(1) {
		t.Fatalf("delete q: %v", body)
	}

	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*", "alphabet": "ab"}`)
	do(t, s, "PUT", "/docs/d/views/q", "")
	code, body = do(t, s, "DELETE", "/docs/d", "")
	mustStatus(t, code, 200, "delete d")
	if body["views_dropped"] != float64(1) {
		t.Fatalf("delete d: %v", body)
	}
	code, _ = do(t, s, "GET", "/views", "")
	mustStatus(t, code, 200, "views after drops")
}

// decodeChanges parses a /changes NDJSON body into op lines + summary.
func decodeChanges(t *testing.T, body string) (ops []map[string]any, summary map[string]any) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, done := line["done"]; done {
			summary = line
		} else {
			ops = append(ops, line)
		}
	}
	return ops, summary
}

func TestDocChanges(t *testing.T) {
	s := setupViewServer(t, Config{})
	do(t, s, "PUT", "/docs/d/views/q", "")

	// v1 "abba" has one match; v2 "abbaab" has two ("ab" at 1 and 5).
	code, _ := do(t, s, "POST", "/docs/d/edit", `{"expr": "concat(d, extract(d,1,2))"}`)
	mustStatus(t, code, 200, "edit d")

	req := httptest.NewRequest("GET", "/docs/d/changes?query=q&since=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	mustStatus(t, rec.Code, 200, "changes")
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("changes content-type = %q", ct)
	}
	ops, summary := decodeChanges(t, rec.Body.String())
	if summary == nil || summary["from"] != float64(1) || summary["to"] != float64(2) {
		t.Fatalf("changes summary: %v", summary)
	}
	if summary["added"] != float64(1) || summary["removed"] != float64(0) {
		t.Fatalf("changes summary counts: %v", summary)
	}
	if len(ops) != 1 || ops[0]["op"] != "add" {
		t.Fatalf("changes ops: %v", ops)
	}
	tuple := ops[0]["tuple"].(map[string]any)["x"].(map[string]any)
	if tuple["begin"] != float64(5) || tuple["end"] != float64(7) {
		t.Fatalf("added tuple: %v", tuple)
	}

	// Error taxonomy.
	code, _ = do(t, s, "GET", "/docs/d/changes?query=q&since=99", "")
	mustStatus(t, code, 410, "changes since unknown version")
	code, _ = do(t, s, "GET", "/docs/d/changes?query=nosuch&since=1", "")
	mustStatus(t, code, 404, "changes for unknown view")
	code, _ = do(t, s, "GET", "/docs/d/changes?query=q", "")
	mustStatus(t, code, 400, "changes without since")
}

func TestDocChangesWithRemovals(t *testing.T) {
	s := setupViewServer(t, Config{})
	do(t, s, "PUT", "/docs/d/views/q", "")
	// Delete the "ab" at 1..2: "abba" -> "ba"; the single match vanishes.
	code, _ := do(t, s, "POST", "/docs/d/edit", `{"expr": "delete(d, 1, 2)"}`)
	mustStatus(t, code, 200, "edit d")

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/docs/d/changes?query=q&since=1", nil))
	mustStatus(t, rec.Code, 200, "changes")
	ops, summary := decodeChanges(t, rec.Body.String())
	if summary["added"] != float64(0) || summary["removed"] != float64(1) {
		t.Fatalf("summary: %v", summary)
	}
	if len(ops) != 1 || ops[0]["op"] != "remove" {
		t.Fatalf("ops: %v", ops)
	}
}

func TestViewAsyncRefreshConverges(t *testing.T) {
	s := setupViewServer(t, Config{ViewRefresh: "async"})
	do(t, s, "PUT", "/docs/d/views/q", "")

	code, _ := do(t, s, "POST", "/docs/d/edit", `{"expr": "concat(d, d)"}`)
	mustStatus(t, code, 200, "edit d")

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := do(t, s, "GET", "/docs/d/views/q", "")
		if body["version"] == float64(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async view never converged: %v", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestViewMetricsExposed(t *testing.T) {
	s := setupViewServer(t, Config{})
	do(t, s, "PUT", "/docs/d/views/q", "")
	do(t, s, "POST", "/docs/d/edit", `{"expr": "concat(d, d)"}`)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	out := rec.Body.String()
	for _, want := range []string{
		"spannerd_views 1",
		"spannerd_view_refreshes_total 2",
		`spannerd_view_refresh_duration_seconds_count{doc="d",query="q"} 2`,
		"spannerd_warm_recomputed_nodes_total",
		"spannerd_warm_memo_reuse_ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestViewConcurrentEditsStreamsAndReads is the race certification:
// concurrent CDE edits, streaming queries, view reads, and /changes
// requests must never observe torn state, and the view version must
// only move forward.
func TestViewConcurrentEditsStreamsAndReads(t *testing.T) {
	s := setupViewServer(t, Config{})
	do(t, s, "PUT", "/docs/d/views/q", "")

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	const edits = 24

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < edits; i++ {
			code, body := do(t, s, "POST", "/docs/d/edit", `{"expr": "concat(d, extract(d,1,2))"}`)
			if code != 200 {
				errs <- fmt.Errorf("edit %d: status %d (%v)", i, code, body)
				return
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0.0
			for i := 0; i < 40; i++ {
				code, body := do(t, s, "GET", "/docs/d/views/q", "")
				if code != 200 {
					errs <- fmt.Errorf("view read: status %d", code)
					return
				}
				v := body["version"].(float64)
				if v < last {
					errs <- fmt.Errorf("view version went backwards: %v after %v", v, last)
					return
				}
				last = v
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("GET", "/stream?query=q&doc=d", nil))
			if rec.Code != 200 {
				errs <- fmt.Errorf("stream: status %d", rec.Code)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("GET", "/docs/d/changes?query=q&since=1", nil))
			switch rec.Code {
			case 200, 410:
				// 410 once version 1 leaves the history ring.
			default:
				errs <- fmt.Errorf("changes: status %d body %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles the view converges on the final version and
	// agrees with a fresh evaluation.
	_, body := do(t, s, "GET", "/docs/d/views/q", "")
	if body["version"] != float64(edits+1) {
		t.Fatalf("final view version: %v", body)
	}
	_, count := do(t, s, "GET", "/count?query=q&doc=d", "")
	if body["count"] != count["count"] {
		t.Fatalf("view count %v != fresh count %v", body["count"], count["count"])
	}
}
