package server

// In-process cluster harness: real workers on real TCP listeners (so a
// worker can be killed abruptly and restarted on the same port, which
// httptest.Server cannot do) fronted by a real Coordinator. The
// worker-failure tests drive the whole 502/503/504 taxonomy: kill a
// worker mid-stream and mid-batch, watch the breaker and prober react,
// and watch the shard come back after a restart.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

type testWorker struct {
	srv  *Server
	hs   *http.Server
	addr string // fixed across restarts
	url  string
}

func startTestWorker(t *testing.T, srv *Server) *testWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	w := &testWorker{srv: srv, addr: ln.Addr().String()}
	w.url = "http://" + w.addr
	w.serve(ln)
	return w
}

func (w *testWorker) serve(ln net.Listener) {
	hs := &http.Server{Handler: w.srv}
	w.hs = hs
	go func() { _ = hs.Serve(ln) }()
}

// kill closes the listener and every active connection — the abrupt
// death of a worker process, mid-response included.
func (w *testWorker) kill() { _ = w.hs.Close() }

// restart rebinds the same address with the same Server (its in-memory
// state plays the role of the recovered WAL state).
func (w *testWorker) restart(t *testing.T) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", w.addr)
		if err == nil {
			w.serve(ln)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("restart: could not rebind %s: %v", w.addr, err)
}

type testCluster struct {
	workers []*testWorker
	coord   *Coordinator
	front   *httptest.Server
}

func newTestCluster(t *testing.T, n int, ccfg CoordinatorConfig) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := startTestWorker(t, newTestServer(t, Config{}))
		tc.workers = append(tc.workers, w)
		urls[i] = w.url
	}
	ccfg.Workers = urls
	if ccfg.ProbeInterval == 0 {
		ccfg.ProbeInterval = 25 * time.Millisecond
	}
	coord, err := NewCoordinator(ccfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	tc.coord = coord
	tc.front = httptest.NewServer(coord)
	t.Cleanup(func() {
		tc.front.Close()
		coord.Close()
		for _, w := range tc.workers {
			w.kill()
			w.srv.Close()
		}
	})
	return tc
}

// request runs one real HTTP request through the coordinator.
func (tc *testCluster) request(t *testing.T, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, tc.front.URL+path, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, path, err)
	}
	return resp, b
}

func (tc *testCluster) json(t *testing.T, method, path, body string) (int, map[string]any) {
	t.Helper()
	resp, b := tc.request(t, method, path, body)
	var out map[string]any
	if len(b) > 0 && strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, b, err)
		}
	}
	return resp.StatusCode, out
}

// docOwnedBy finds a document name the ring places on the given worker.
func (tc *testCluster) docOwnedBy(t *testing.T, worker int, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if tc.coord.Ring().Owner(name) == worker {
			return name
		}
	}
	t.Fatalf("no name with prefix %q hashes to worker %d", prefix, worker)
	return ""
}

// waitWorkersUp polls the prober's view until the expected number of
// workers are routable.
func (tc *testCluster) waitWorkersUp(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tc.coord.Ring().UpCount() == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("workers up = %d, want %d", tc.coord.Ring().UpCount(), want)
}

func TestClusterRoutingAndPlacement(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{})
	d0 := tc.docOwnedBy(t, 0, "alpha")
	d1 := tc.docOwnedBy(t, 1, "beta")

	code, _ := tc.json(t, "PUT", "/docs/"+d0, "abab")
	mustStatus(t, code, 200, "put d0")
	code, _ = tc.json(t, "PUT", "/docs/"+d1, "ababab")
	mustStatus(t, code, 200, "put d1")

	// Each document landed only on its owning shard.
	if n := tc.workers[0].srv.store.len(); n != 1 {
		t.Fatalf("worker 0 has %d docs, want 1", n)
	}
	if n := tc.workers[1].srv.store.len(); n != 1 {
		t.Fatalf("worker 1 has %d docs, want 1", n)
	}

	// Query registration fans out to every shard.
	code, body := tc.json(t, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	mustStatus(t, code, 200, "put query")
	if body["workers"] != float64(2) {
		t.Fatalf("query put workers = %v, want 2", body["workers"])
	}
	for i, w := range tc.workers {
		if n := w.srv.queries.len(); n != 1 {
			t.Fatalf("worker %d has %d queries, want 1", i, n)
		}
	}

	// Evaluation routes to the owner and carries the doc's version.
	code, body = tc.json(t, "GET", "/eval?query=q&doc="+d1, "")
	mustStatus(t, code, 200, "eval d1")
	if body["count"] != float64(3) || body["version"] != float64(1) {
		t.Fatalf("eval d1: %v", body)
	}

	// The proxied response names the shard that served it.
	resp, _ := tc.request(t, "GET", "/docs/"+d0, "")
	if got := resp.Header.Get("X-Worker"); got != tc.workers[0].url {
		t.Fatalf("X-Worker = %q, want %q", got, tc.workers[0].url)
	}

	// The merged listing covers both shards and names each owner.
	code, body = tc.json(t, "GET", "/docs", "")
	mustStatus(t, code, 200, "docs list")
	docs := body["docs"].([]any)
	if len(docs) != 2 {
		t.Fatalf("merged list: %d docs, want 2", len(docs))
	}
	for _, d := range docs {
		m := d.(map[string]any)
		wantWorker := tc.workers[tc.coord.Ring().Owner(m["name"].(string))].url
		if m["worker"] != wantWorker {
			t.Fatalf("doc %v listed on %v, want %v", m["name"], m["worker"], wantWorker)
		}
	}

	// /cluster?key= exposes the placement decision.
	code, body = tc.json(t, "GET", "/cluster?key="+d1, "")
	mustStatus(t, code, 200, "cluster key")
	if body["worker"] != tc.workers[1].url {
		t.Fatalf("cluster key: %v", body)
	}

	// Views route to the document's owner.
	code, _ = tc.json(t, "PUT", "/docs/"+d0+"/views/q", "")
	mustStatus(t, code, 201, "view put")
	if n := tc.workers[0].srv.views.Len(); n != 1 {
		t.Fatalf("worker 0 has %d views, want 1", n)
	}
	code, body = tc.json(t, "GET", "/views", "")
	mustStatus(t, code, 200, "views list")
	if vs := body["views"].([]any); len(vs) != 1 {
		t.Fatalf("merged views: %v", body)
	}
}

func TestClusterBatchScatterOrder(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{})
	code, _ := tc.json(t, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	mustStatus(t, code, 200, "put query")

	// Interleave owners in the request order on purpose.
	names := []string{
		tc.docOwnedBy(t, 0, "b0"), tc.docOwnedBy(t, 1, "b1"),
		tc.docOwnedBy(t, 0, "b2"), tc.docOwnedBy(t, 1, "b3"),
		tc.docOwnedBy(t, 1, "b4"), tc.docOwnedBy(t, 0, "b5"),
	}
	for i, n := range names {
		code, _ := tc.json(t, "PUT", "/docs/"+n, strings.Repeat("ab", i+1))
		mustStatus(t, code, 200, "put "+n)
	}

	body, _ := json.Marshal(map[string]any{"query": "q", "docs": names})
	code, out := tc.json(t, "POST", "/batch", string(body))
	mustStatus(t, code, 200, "batch")
	if out["partial"] != nil {
		t.Fatalf("batch unexpectedly partial: %v", out)
	}
	results := out["results"].([]any)
	if len(results) != len(names) {
		t.Fatalf("batch results = %d, want %d", len(results), len(names))
	}
	total := 0.0
	for i, res := range results {
		m := res.(map[string]any)
		if m["doc"] != names[i] {
			t.Fatalf("result %d is %v, want %v (request order lost)", i, m["doc"], names[i])
		}
		if want := float64(i + 1); m["count"] != want {
			t.Fatalf("result %d count = %v, want %v", i, m["count"], want)
		}
		wantWorker := tc.workers[tc.coord.Ring().Owner(names[i])].url
		if m["worker"] != wantWorker {
			t.Fatalf("result %d worker = %v, want %v", i, m["worker"], wantWorker)
		}
		total += m["count"].(float64)
	}
	if out["count"] != total {
		t.Fatalf("batch count = %v, want %v", out["count"], total)
	}

	// Unknown query is one clean 404, not N shard errors.
	body, _ = json.Marshal(map[string]any{"query": "nope", "docs": names[:1]})
	code, _ = tc.json(t, "POST", "/batch", string(body))
	mustStatus(t, code, 404, "batch unknown query")
}

// readMerged consumes a merged NDJSON stream, returning per-doc frame
// counts and the parsed summary trailer.
func readMerged(t *testing.T, r io.Reader, onFrame func(doc string)) (map[string]int, map[string]any) {
	t.Helper()
	counts := map[string]int{}
	var last []byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if last != nil {
			var frame struct {
				Doc   string          `json:"doc"`
				Tuple json.RawMessage `json:"tuple"`
			}
			if err := json.Unmarshal(last, &frame); err != nil || frame.Doc == "" {
				t.Fatalf("bad tuple frame %q", last)
			}
			counts[frame.Doc]++
			if onFrame != nil {
				onFrame(frame.Doc)
			}
		}
		last = line
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading merged stream: %v", err)
	}
	var summary map[string]any
	if err := json.Unmarshal(last, &summary); err != nil || summary["done"] == nil {
		t.Fatalf("missing summary trailer, last line %q", last)
	}
	return counts, summary
}

func TestClusterMergedStream(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{})
	tc.json(t, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	d0 := tc.docOwnedBy(t, 0, "ms0")
	d1 := tc.docOwnedBy(t, 1, "ms1")
	tc.json(t, "PUT", "/docs/"+d0, strings.Repeat("ab", 100))
	tc.json(t, "PUT", "/docs/"+d1, strings.Repeat("ab", 150))

	resp, err := http.Get(tc.front.URL + "/stream?query=q&docs=" + d0 + "," + d1)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	mustStatus(t, resp.StatusCode, 200, "merged stream")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	counts, summary := readMerged(t, resp.Body, nil)
	if counts[d0] != 100 || counts[d1] != 150 {
		t.Fatalf("frame counts = %v", counts)
	}
	if summary["done"] != true || summary["count"] != float64(250) || summary["docs"] != float64(2) {
		t.Fatalf("summary = %v", summary)
	}
	results := summary["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("summary results = %v", results)
	}
	for _, res := range results {
		m := res.(map[string]any)
		if m["version"] != float64(1) {
			t.Fatalf("shard result missing version: %v", m)
		}
	}

	// docs=* resolves the shard listings.
	resp2, err := http.Get(tc.front.URL + "/stream?query=q&docs=*")
	if err != nil {
		t.Fatalf("stream *: %v", err)
	}
	defer resp2.Body.Close()
	_, summary = readMerged(t, resp2.Body, nil)
	if summary["count"] != float64(250) {
		t.Fatalf("docs=* summary = %v", summary)
	}

	// A global limit truncates the merged stream, not each shard.
	resp3, err := http.Get(tc.front.URL + "/stream?query=q&docs=" + d0 + "," + d1 + "&limit=7")
	if err != nil {
		t.Fatalf("stream limit: %v", err)
	}
	defer resp3.Body.Close()
	counts, summary = readMerged(t, resp3.Body, nil)
	if got := counts[d0] + counts[d1]; got != 7 {
		t.Fatalf("limited frames = %d, want 7", got)
	}
	if summary["done"] != true || summary["count"] != float64(7) {
		t.Fatalf("limited summary = %v", summary)
	}
}

func TestClusterKillWorkerMidStream(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{
		// Slow probes and no retries: the kill must surface as a
		// mid-stream transport failure, not a fast-failed 503.
		ProbeInterval: 10 * time.Second,
		RetryMax:      0,
	})
	tc.json(t, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	survivor := tc.docOwnedBy(t, 0, "live")
	victim := tc.docOwnedBy(t, 1, "dead")
	// Big enough that the victim's stream cannot fit in socket buffers:
	// the worker is necessarily still emitting when it is killed.
	tc.json(t, "PUT", "/docs/"+survivor, strings.Repeat("ab", 50000))
	tc.json(t, "PUT", "/docs/"+victim, strings.Repeat("ab", 200000))

	resp, err := http.Get(tc.front.URL + "/stream?query=q&docs=" + survivor + "," + victim)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	mustStatus(t, resp.StatusCode, 200, "merged stream")

	var once sync.Once
	counts, summary := readMerged(t, resp.Body, func(doc string) {
		if doc == victim {
			once.Do(func() { tc.workers[1].kill() })
		}
	})
	if summary["done"] != false {
		t.Fatalf("trailer done = %v after worker death; summary %v", summary["done"], summary)
	}
	errsList, _ := summary["errors"].([]any)
	foundVictim := false
	for _, e := range errsList {
		m := e.(map[string]any)
		if m["doc"] == victim {
			foundVictim = true
			if m["error"] == "" || m["status"] != float64(502) {
				t.Fatalf("victim error entry: %v", m)
			}
		}
	}
	if !foundVictim {
		t.Fatalf("no error entry for killed shard; summary %v", summary)
	}
	// The surviving shard's stream completed in full.
	if counts[survivor] != 50000 {
		t.Fatalf("survivor frames = %d, want 50000", counts[survivor])
	}
	for _, res := range summary["results"].([]any) {
		m := res.(map[string]any)
		if m["doc"] == survivor && m["count"] != float64(50000) {
			t.Fatalf("survivor result: %v", m)
		}
	}
}

func TestClusterKillWorkerMidBatch(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{
		ProbeInterval: 10 * time.Second,
		RetryMax:      0,
	})
	tc.json(t, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	survivor := tc.docOwnedBy(t, 0, "live")
	victim := tc.docOwnedBy(t, 1, "dead")
	tc.json(t, "PUT", "/docs/"+survivor, "abab")
	// The victim's sub-batch materializes a large result, so the kill
	// lands while it is still computing.
	tc.json(t, "PUT", "/docs/"+victim, strings.Repeat("ab", 300000))

	body, _ := json.Marshal(map[string]any{"query": "q", "docs": []string{survivor, victim}})
	type batchOut struct {
		code int
		body map[string]any
	}
	done := make(chan batchOut, 1)
	go func() {
		code, out := tc.json(t, "POST", "/batch", string(body))
		done <- batchOut{code, out}
	}()
	time.Sleep(50 * time.Millisecond)
	tc.workers[1].kill()
	res := <-done

	if res.code != 502 {
		t.Fatalf("batch after mid-batch kill: status %d, body %v", res.code, res.body)
	}
	if res.body["partial"] != true || res.body["failed_shards"] != float64(1) {
		t.Fatalf("batch taxonomy: %v", res.body)
	}
	results := res.body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch results: %v", results)
	}
	ok := results[0].(map[string]any)
	if ok["doc"] != survivor || ok["count"] != float64(2) || ok["error"] != nil {
		t.Fatalf("survivor result: %v", ok)
	}
	fail := results[1].(map[string]any)
	if fail["doc"] != victim || fail["error"] == nil || fail["status"] != float64(502) {
		t.Fatalf("victim result: %v", fail)
	}
}

func TestClusterBreakerOpensAndRecovers(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{
		ProbeInterval:    20 * time.Millisecond,
		RetryMax:         0,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	tc.json(t, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	d0 := tc.docOwnedBy(t, 0, "up")
	d1 := tc.docOwnedBy(t, 1, "down")
	tc.json(t, "PUT", "/docs/"+d0, "abab")
	tc.json(t, "PUT", "/docs/"+d1, "ababab")

	tc.workers[1].kill()
	tc.waitWorkersUp(t, 1)

	// Requests for the dead shard fail fast with the retryable taxonomy.
	resp, _ := tc.request(t, "GET", "/eval?query=q&doc="+d1, "")
	if resp.StatusCode != 503 {
		t.Fatalf("dead shard eval: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}

	// The other shard keeps serving.
	code, _ := tc.json(t, "GET", "/eval?query=q&doc="+d0, "")
	mustStatus(t, code, 200, "surviving shard eval")

	// Registry mutations refuse to run degraded.
	code, _ = tc.json(t, "PUT", "/queries/q2", `{"src": ".*!x{ab}.*"}`)
	mustStatus(t, code, 503, "degraded query put")

	// A batch spanning both shards returns partial results.
	body, _ := json.Marshal(map[string]any{"query": "q", "docs": []string{d0, d1}})
	code, out := tc.json(t, "POST", "/batch", string(body))
	if code != 503 && code != 502 {
		t.Fatalf("degraded batch: status %d body %v", code, out)
	}
	if out["partial"] != true {
		t.Fatalf("degraded batch not partial: %v", out)
	}

	// The worker restarts with its state; the prober brings it back and
	// the shard serves again.
	tc.workers[1].restart(t)
	tc.waitWorkersUp(t, 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := tc.request(t, "GET", "/eval?query=q&doc="+d1, "")
		if resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never recovered: status %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	code, body2 := tc.json(t, "GET", "/eval?query=q&doc="+d1, "")
	mustStatus(t, code, 200, "recovered eval")
	if body2["count"] != float64(3) {
		t.Fatalf("recovered eval: %v", body2)
	}
}

func TestClusterBreakerFastFail(t *testing.T) {
	// A worker URL that refuses connections from the start: the breaker
	// must open after repeated transport failures and then fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadURL := "http://" + ln.Addr().String()
	_ = ln.Close()

	w := startTestWorker(t, newTestServer(t, Config{}))
	defer w.kill()
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:          []string{w.url, deadURL},
		ProbeInterval:    10 * time.Second, // prober stays out of the way
		RetryMax:         0,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	// The synchronous first probe marked the dead worker down; force it
	// up so requests exercise the breaker, not the ring.
	coord.Ring().SetUp(1, true)

	front := httptest.NewServer(coord)
	defer front.Close()

	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("bk-%d", i)
		if coord.Ring().Owner(name) == 1 {
			break
		}
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Get(front.URL + "/docs/" + name)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != 502 {
			t.Fatalf("transport failure status = %d, want 502", resp.StatusCode)
		}
	}
	if st := coord.client.Breaker(1).State(); st != "open" {
		t.Fatalf("breaker state = %q, want open", st)
	}
	resp, err := http.Get(front.URL + "/docs/" + name)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("breaker-open status = %d, want 503", resp.StatusCode)
	}
	if coord.client.BreakerFastFails.Load() == 0 {
		t.Fatalf("no breaker fast-fails recorded")
	}
}

func TestClusterRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	var logs bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &logs}, nil))

	srv, err := New(Config{Logger: logger})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := startTestWorker(t, srv)
	defer w.kill()
	defer srv.Close()

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:       []string{w.url},
		ProbeInterval: 10 * time.Second,
		Logger:        logger,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	front := httptest.NewServer(coord)
	defer front.Close()

	req, _ := http.NewRequest("GET", front.URL+"/docs", nil)
	req.Header.Set("X-Request-ID", "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-123" {
		t.Fatalf("response X-Request-ID = %q", got)
	}

	mu.Lock()
	text := logs.String()
	mu.Unlock()
	coordLines, workerLines := 0, 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, `"request_id":"trace-me-123"`) {
			continue
		}
		if strings.Contains(line, `"role":"coordinator"`) {
			coordLines++
		} else {
			workerLines++
		}
	}
	if coordLines == 0 || workerLines == 0 {
		t.Fatalf("request id not logged on both sides (coordinator %d, worker %d):\n%s",
			coordLines, workerLines, text)
	}

	// Without a client-sent id, the coordinator mints one and the worker
	// reuses it (same id on both log lines).
	resp2, err := http.Get(front.URL + "/docs")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
	_ = resp2.Body.Close()
	minted := resp2.Header.Get("X-Request-ID")
	if minted == "" {
		t.Fatalf("no minted request id")
	}
	mu.Lock()
	text = logs.String()
	mu.Unlock()
	if got := strings.Count(text, `"request_id":"`+minted+`"`); got < 2 {
		t.Fatalf("minted id %q on %d log lines, want >= 2", minted, got)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestLimiterSetsRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	do(t, s, "PUT", "/docs/d", "abab")
	do(t, s, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)

	// Occupy the only slot, then ask for an evaluation with a short
	// deadline: the limiter's 503 must carry Retry-After.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	req := httptest.NewRequest("GET", "/eval?query=q&doc=d&timeout=30ms", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Fatalf("limited eval status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

func TestBootGateReadiness(t *testing.T) {
	gate := NewBootGate()
	front := httptest.NewServer(gate)
	defer front.Close()

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("booting /healthz = %d, want 200 (liveness only)", resp.StatusCode)
	}
	resp, err = http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("booting /readyz = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(front.URL + "/docs")
	if err != nil {
		t.Fatalf("docs: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("booting /docs = %d, want 503", resp.StatusCode)
	}

	srv := newTestServer(t, Config{})
	defer srv.Close()
	gate.Ready(srv)
	resp, err = http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || body["status"] != "serving" {
		t.Fatalf("ready /readyz = %d %v", resp.StatusCode, body)
	}
}

func TestClusterMetricsAggregation(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{ProbeInterval: 20 * time.Millisecond})
	tc.json(t, "PUT", "/queries/q", `{"src": ".*!x{ab}.*"}`)
	d0 := tc.docOwnedBy(t, 0, "m0")
	d1 := tc.docOwnedBy(t, 1, "m1")
	tc.json(t, "PUT", "/docs/"+d0, "ab")
	tc.json(t, "PUT", "/docs/"+d1, "ab")

	// Wait for a probe cycle to pick up the counts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, b := tc.request(t, "GET", "/metrics", "")
		text := string(b)
		if strings.Contains(text, "spannerd_cluster_documents 2") &&
			strings.Contains(text, "spannerd_cluster_queries 1") &&
			strings.Contains(text, "spannerd_cluster_workers_up 2") {
			if !strings.Contains(text, "spannerd_coordinator_requests_total") {
				t.Fatalf("metrics missing coordinator request counters")
			}
			if !strings.Contains(text, "spannerd_cluster_worker_up{worker=") {
				t.Fatalf("metrics missing per-worker up gauges")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster gauges never converged:\n%s", text)
		}
		time.Sleep(20 * time.Millisecond)
	}

	code, body := tc.json(t, "GET", "/varz", "")
	mustStatus(t, code, 200, "varz")
	if body["coordinator"] == nil || body["workers"] == nil {
		t.Fatalf("varz shape: %v", body)
	}
}
