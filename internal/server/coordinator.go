package server

// The cluster coordinator: spannerd -coordinator serves the same HTTP
// API as a single worker, but owns no documents itself. Every document
// name hashes onto one worker via the consistent-hash ring
// (internal/cluster); the coordinator routes single-document requests
// to the owner, fans query registrations out to every shard, and
// scatter-gathers /batch and multi-document /stream across the shards
// that own the requested documents. A health prober keeps an up/down
// view of the workers; down shards fail fast with the 502/503/504
// taxonomy instead of dragging the whole fan-out down.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"docspanner/internal/cluster"
)

// CoordinatorConfig tunes a Coordinator. Workers is required; the zero
// value of everything else gets the same defaults a worker Server uses
// where they overlap.
type CoordinatorConfig struct {
	// Workers are the worker base URLs (http://host:port) in a stable
	// order — the order is part of the placement function, so keep it
	// identical across coordinator restarts.
	Workers []string
	// VNodes is the virtual-node count per worker on the hash ring.
	// Default cluster.DefaultVNodes.
	VNodes int
	// ProbeInterval is the health-probe period per worker. Default 500ms.
	ProbeInterval time.Duration
	// RequestTimeout / MaxTimeout mirror the worker Config: the default
	// and cap for the ?timeout= deadline that bounds a whole fan-out.
	RequestTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes bounds request bodies. Default 64 MiB.
	MaxBodyBytes int64
	// MaxPerWorkerInflight bounds concurrent proxied requests per worker
	// (backpressure toward any one shard). Default 32.
	MaxPerWorkerInflight int
	// RetryMax / RetryBase / RetryCap tune idempotent-read retries; see
	// cluster.ClientConfig. Defaults 2 / 25ms / 500ms.
	RetryMax  int
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold / BreakerCooldown tune the per-worker circuit
	// breaker. Defaults 5 / 1s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
	// Transport overrides the worker-facing HTTP transport (tests).
	Transport http.RoundTripper
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	return c
}

// Coordinator is the cluster-mode spannerd HTTP handler. Create one
// with NewCoordinator and mount it on an http.Server; Close stops the
// health prober.
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *cluster.Ring
	client *cluster.Client
	prober *cluster.Prober
	cm     *coordMetrics
	mux    *http.ServeMux

	closeOnce sync.Once
}

// NewCoordinator builds the ring, client pool, and health prober over
// the configured workers, probes every worker once (so the first
// request already sees a realistic up/down view), and starts the
// background probe loops.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ring, err := cluster.NewRing(cfg.Workers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:  cfg,
		ring: ring,
		client: cluster.NewClient(ring, cluster.ClientConfig{
			MaxInflight:      cfg.MaxPerWorkerInflight,
			RetryMax:         cfg.RetryMax,
			RetryBase:        cfg.RetryBase,
			RetryCap:         cfg.RetryCap,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			Transport:        cfg.Transport,
		}),
		prober: cluster.NewProber(ring, cfg.ProbeInterval),
		cm:     newCoordMetrics(),
	}
	c.routes()
	c.prober.Start()
	return c, nil
}

// Close stops the health prober. Safe to call multiple times; the
// Coordinator keeps serving afterwards with a frozen up/down view.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { c.prober.Stop() })
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Ring exposes the placement ring (tests and cmd wiring).
func (c *Coordinator) Ring() *cluster.Ring { return c.ring }

func (c *Coordinator) routes() {
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /healthz", c.wrap("healthz", c.handleHealthz))
	c.mux.HandleFunc("GET /readyz", c.wrap("readyz", c.handleReadyz))
	c.mux.HandleFunc("GET /metrics", c.wrap("metrics", c.handleMetrics))
	c.mux.HandleFunc("GET /varz", c.wrap("varz", c.handleVarz))
	c.mux.HandleFunc("GET /cluster", c.wrap("cluster", c.handleCluster))

	c.mux.HandleFunc("GET /docs", c.wrap("docs.list", c.handleDocListFan))
	c.mux.HandleFunc("PUT /docs/{name}", c.wrap("docs.put", c.proxyDocOwner))
	c.mux.HandleFunc("GET /docs/{name}", c.wrap("docs.get", c.proxyDocOwner))
	c.mux.HandleFunc("DELETE /docs/{name}", c.wrap("docs.delete", c.proxyDocOwner))
	c.mux.HandleFunc("POST /docs/{name}/compress", c.wrap("docs.compress", c.proxyDocOwner))
	c.mux.HandleFunc("POST /docs/{name}/edit", c.wrap("docs.edit", c.proxyDocOwner))
	c.mux.HandleFunc("POST /docs/{name}/warm", c.wrap("docs.warm", c.proxyDocOwner))
	c.mux.HandleFunc("GET /docs/{name}/views", c.wrap("views.list", c.proxyDocOwner))
	c.mux.HandleFunc("PUT /docs/{name}/views/{query}", c.wrap("views.put", c.proxyDocOwner))
	c.mux.HandleFunc("GET /docs/{name}/views/{query}", c.wrap("views.get", c.proxyDocOwner))
	c.mux.HandleFunc("DELETE /docs/{name}/views/{query}", c.wrap("views.delete", c.proxyDocOwner))
	c.mux.HandleFunc("GET /docs/{name}/changes", c.wrap("docs.changes", c.proxyDocOwner))
	c.mux.HandleFunc("GET /views", c.wrap("views.list", c.handleViewListFan))

	c.mux.HandleFunc("GET /queries", c.wrap("queries.list", c.proxyFirstUp))
	c.mux.HandleFunc("PUT /queries/{name}", c.wrap("queries.put", c.handleQueryPutFan))
	c.mux.HandleFunc("GET /queries/{name}", c.wrap("queries.get", c.proxyFirstUp))
	c.mux.HandleFunc("DELETE /queries/{name}", c.wrap("queries.delete", c.handleQueryDeleteFan))
	c.mux.HandleFunc("GET /queries/{name}/explain", c.wrap("queries.explain", c.proxyFirstUp))

	c.mux.HandleFunc("GET /eval", c.wrap("eval", c.handleEvalProxy))
	c.mux.HandleFunc("GET /count", c.wrap("count", c.handleCountProxy))
	c.mux.HandleFunc("GET /stream", c.wrap("stream", c.handleStreamProxy))
	c.mux.HandleFunc("POST /batch", c.wrap("batch", c.handleBatchScatter))

	c.mux.HandleFunc("POST /admin/flush-caches", c.wrap("admin.flush", c.handleAdminFan("/admin/flush-caches")))
	c.mux.HandleFunc("POST /admin/snapshot", c.wrap("admin.snapshot", c.handleAdminFan("/admin/snapshot")))
}

// wrap mirrors Server.wrap for the coordinator: request-id minting and
// propagation (the inbound header is overwritten with the resolved id,
// so every worker hop carries it), body bounding, metrics, structured
// logging, and error rendering.
func (c *Coordinator) wrap(handler string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		c.cm.inflight.Add(1)
		defer c.cm.inflight.Add(-1)
		reqID := requestID(r)
		w.Header().Set("X-Request-ID", reqID)
		r.Header.Set("X-Request-ID", reqID)
		r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
		sw := &statusWriter{ResponseWriter: w}
		if err := h(sw, r); err != nil {
			c.renderError(sw, err)
		}
		if sw.status == 0 {
			sw.status = 200
		}
		d := time.Since(start)
		c.cm.request(handler, sw.status, d)
		c.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("role", "coordinator"),
			slog.String("handler", handler),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", d),
			slog.String("request_id", reqID),
		)
	}
}

func (c *Coordinator) renderError(w *statusWriter, err error) {
	if w.status != 0 {
		// Headers already sent (mid-merge failure); the in-band trailer
		// already told the client.
		return
	}
	he := &httpError{status: 500, message: err.Error()}
	var cast *httpError
	if errors.As(err, &cast) {
		he = cast
	} else if errors.Is(err, context.DeadlineExceeded) {
		he = &httpError{status: 504, message: "cluster fan-out deadline exceeded"}
		c.cm.timeouts.Add(1)
	} else if errors.Is(err, context.Canceled) {
		he = &httpError{status: 499, message: "request cancelled"}
	}
	if he.status == 504 {
		c.cm.timeouts.Add(1)
	}
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(he.retryAfter))
	}
	body := map[string]any{"error": he.message}
	writeJSON(w, he.status, body)
}

// clusterErr maps a worker-client error onto the coordinator's HTTP
// taxonomy: 503 (+Retry-After) for down/breaker-open shards, 504 for a
// deadline spent inside the fan-out, 499 for the client hanging up,
// 502 for a shard that was reachable on paper but failed in transit.
func clusterErr(err error) error {
	st := cluster.StatusFor(err)
	he := &httpError{status: st, message: err.Error()}
	if st == http.StatusServiceUnavailable {
		he.retryAfter = 1
	}
	return he
}

// streamDisconnect mirrors Server.streamDisconnect: the merged stream's
// client went away mid-response; count it and end quietly (headers are
// long gone).
func (c *Coordinator) streamDisconnect() error {
	c.cm.disconnects.Add(1)
	return nil
}

// --- observability ---

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	writeJSON(w, 200, map[string]any{
		"status":     "ok",
		"role":       "coordinator",
		"uptime":     time.Since(c.cm.start).String(),
		"workers":    c.ring.N(),
		"workers_up": c.ring.UpCount(),
	})
	return nil
}

// handleReadyz: a coordinator with zero routable workers cannot serve
// anything — tell the load balancer so.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) error {
	up := c.ring.UpCount()
	if up == 0 {
		return errUnavailable("no workers available")
	}
	st := "serving"
	if up < c.ring.N() {
		st = "degraded"
	}
	writeJSON(w, 200, map[string]any{
		"status":     st,
		"workers":    c.ring.N(),
		"workers_up": up,
	})
	return nil
}

// handleCluster exposes the ring: per-worker probe status and breaker
// state, and with ?key=<doc> the placement of one document (CI and
// operators use this to find the shard that owns a name).
func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) error {
	if key := r.URL.Query().Get("key"); key != "" {
		i := c.ring.Owner(key)
		writeJSON(w, 200, map[string]any{
			"key":          key,
			"worker":       c.ring.URL(i),
			"worker_index": i,
			"up":           c.ring.Up(i),
		})
		return nil
	}
	sts := c.prober.Status()
	workers := make([]map[string]any, len(sts))
	for i, st := range sts {
		workers[i] = map[string]any{
			"url":         st.URL,
			"up":          st.Up,
			"error":       st.Err,
			"last_probe":  st.LastProbe,
			"rtt":         st.RTT.String(),
			"docs":        st.Docs,
			"queries":     st.Queries,
			"views":       st.Views,
			"transitions": st.Transitions,
			"breaker":     c.client.Breaker(i).State(),
		}
	}
	writeJSON(w, 200, map[string]any{
		"vnodes":     c.ring.VNodes(),
		"workers":    workers,
		"total":      c.ring.N(),
		"workers_up": c.ring.UpCount(),
	})
	return nil
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.cm.writeProm(w, c)
	return nil
}

func (c *Coordinator) handleVarz(w http.ResponseWriter, _ *http.Request) error {
	writeJSON(w, 200, map[string]any{
		"coordinator": map[string]any{
			"uptime":             time.Since(c.cm.start).String(),
			"inflight":           c.cm.inflight.Load(),
			"timeouts":           c.cm.timeouts.Load(),
			"disconnects":        c.cm.disconnects.Load(),
			"merged_tuples":      c.cm.mergedTuples.Load(),
			"shard_errors":       c.cm.shardErrors.Load(),
			"retries":            c.client.Retries.Load(),
			"breaker_fast_fails": c.client.BreakerFastFails.Load(),
			"down_fast_fails":    c.client.DownFastFails.Load(),
			"vnodes":             c.ring.VNodes(),
			"workers":            c.ring.N(),
			"workers_up":         c.ring.UpCount(),
		},
		"workers": c.prober.Status(),
	})
	return nil
}

// coordMetrics is the coordinator's observability state: per-handler
// request counters and latency histograms plus fan-out health counters.
// Cluster-wide document/query/view gauges come from the prober's cached
// worker statuses, so a /metrics scrape never fans out.
type coordMetrics struct {
	start time.Time

	mu         sync.Mutex
	requests   map[string]*atomic.Uint64 // "handler|code" -> count
	handlerLat map[string]*histogram

	inflight     atomic.Int64
	timeouts     atomic.Uint64 // fan-outs cancelled by deadline (504)
	disconnects  atomic.Uint64 // merged streams aborted by client disconnect
	mergedTuples atomic.Uint64 // tuple frames relayed through merged streams
	shardErrors  atomic.Uint64 // per-shard failures inside scatter-gathers
}

func newCoordMetrics() *coordMetrics {
	return &coordMetrics{
		start:      time.Now(),
		requests:   map[string]*atomic.Uint64{},
		handlerLat: map[string]*histogram{},
	}
}

func (m *coordMetrics) request(handler string, code int, d time.Duration) {
	key := fmt.Sprintf("%s|%d", handler, code)
	m.mu.Lock()
	ctr, ok := m.requests[key]
	if !ok {
		ctr = &atomic.Uint64{}
		m.requests[key] = ctr
	}
	h, ok := m.handlerLat[handler]
	if !ok {
		h = newHistogram()
		m.handlerLat[handler] = h
	}
	m.mu.Unlock()
	ctr.Add(1)
	h.observe(d)
}

func (m *coordMetrics) get(key string) uint64 {
	m.mu.Lock()
	ctr := m.requests[key]
	m.mu.Unlock()
	if ctr == nil {
		return 0
	}
	return ctr.Load()
}

// writeProm renders the coordinator's Prometheus exposition: its own
// request counters plus the cluster aggregates (worker up/down, probe
// RTT, summed object counts) from the prober's cache.
func (m *coordMetrics) writeProm(w io.Writer, c *Coordinator) {
	fmt.Fprintf(w, "# HELP spannerd_coordinator_uptime_seconds Time since the coordinator started.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_uptime_seconds gauge\n")
	fmt.Fprintf(w, "spannerd_coordinator_uptime_seconds %g\n", time.Since(m.start).Seconds())

	sts := c.prober.Status()
	var docs, queries, views int
	up := 0
	for _, st := range sts {
		if st.Up {
			up++
			docs += st.Docs
			queries = max(queries, st.Queries)
			views += st.Views
		}
	}
	fmt.Fprintf(w, "# HELP spannerd_cluster_workers Configured workers on the ring.\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_workers gauge\n")
	fmt.Fprintf(w, "spannerd_cluster_workers %d\n", c.ring.N())
	fmt.Fprintf(w, "# HELP spannerd_cluster_workers_up Workers currently passing health probes.\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_workers_up gauge\n")
	fmt.Fprintf(w, "spannerd_cluster_workers_up %d\n", up)
	fmt.Fprintf(w, "# HELP spannerd_cluster_documents Documents across up shards (prober-cached).\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_documents gauge\n")
	fmt.Fprintf(w, "spannerd_cluster_documents %d\n", docs)
	fmt.Fprintf(w, "# HELP spannerd_cluster_queries Prepared queries (every shard holds the full registry; max over up shards).\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_queries gauge\n")
	fmt.Fprintf(w, "spannerd_cluster_queries %d\n", queries)
	fmt.Fprintf(w, "# HELP spannerd_cluster_views Live views across up shards (prober-cached).\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_views gauge\n")
	fmt.Fprintf(w, "spannerd_cluster_views %d\n", views)

	fmt.Fprintf(w, "# HELP spannerd_cluster_worker_up Per-worker probe verdict (1 = routable).\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_worker_up gauge\n")
	for _, st := range sts {
		v := 0
		if st.Up {
			v = 1
		}
		fmt.Fprintf(w, "spannerd_cluster_worker_up{worker=%q} %d\n", st.URL, v)
	}
	fmt.Fprintf(w, "# HELP spannerd_cluster_worker_probe_rtt_seconds Last health-probe round trip per worker.\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_worker_probe_rtt_seconds gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "spannerd_cluster_worker_probe_rtt_seconds{worker=%q} %g\n", st.URL, st.RTT.Seconds())
	}
	fmt.Fprintf(w, "# HELP spannerd_cluster_worker_transitions_total Up/down flips per worker since the prober started.\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_worker_transitions_total counter\n")
	for _, st := range sts {
		fmt.Fprintf(w, "spannerd_cluster_worker_transitions_total{worker=%q} %d\n", st.URL, st.Transitions)
	}
	fmt.Fprintf(w, "# HELP spannerd_cluster_breaker_open Per-worker circuit breaker state (1 = open, refusing requests).\n")
	fmt.Fprintf(w, "# TYPE spannerd_cluster_breaker_open gauge\n")
	for i := 0; i < c.ring.N(); i++ {
		v := 0
		if c.client.Breaker(i).State() == "open" {
			v = 1
		}
		fmt.Fprintf(w, "spannerd_cluster_breaker_open{worker=%q} %d\n", c.ring.URL(i), v)
	}

	fmt.Fprintf(w, "# HELP spannerd_coordinator_inflight_requests Requests currently being coordinated.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_inflight_requests gauge\n")
	fmt.Fprintf(w, "spannerd_coordinator_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP spannerd_coordinator_retries_total Idempotent reads retried against workers.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_retries_total counter\n")
	fmt.Fprintf(w, "spannerd_coordinator_retries_total %d\n", c.client.Retries.Load())
	fmt.Fprintf(w, "# HELP spannerd_coordinator_breaker_fast_fails_total Requests refused by an open per-worker breaker.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_breaker_fast_fails_total counter\n")
	fmt.Fprintf(w, "spannerd_coordinator_breaker_fast_fails_total %d\n", c.client.BreakerFastFails.Load())
	fmt.Fprintf(w, "# HELP spannerd_coordinator_down_fast_fails_total Requests refused because the owning worker is down.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_down_fast_fails_total counter\n")
	fmt.Fprintf(w, "spannerd_coordinator_down_fast_fails_total %d\n", c.client.DownFastFails.Load())
	fmt.Fprintf(w, "# HELP spannerd_coordinator_timeouts_total Fan-outs cancelled by their deadline.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_timeouts_total counter\n")
	fmt.Fprintf(w, "spannerd_coordinator_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "# HELP spannerd_coordinator_disconnects_total Merged streams aborted by client disconnect.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_disconnects_total counter\n")
	fmt.Fprintf(w, "spannerd_coordinator_disconnects_total %d\n", m.disconnects.Load())
	fmt.Fprintf(w, "# HELP spannerd_coordinator_merged_tuples_total Tuple frames relayed through merged multi-document streams.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_merged_tuples_total counter\n")
	fmt.Fprintf(w, "spannerd_coordinator_merged_tuples_total %d\n", m.mergedTuples.Load())
	fmt.Fprintf(w, "# HELP spannerd_coordinator_shard_errors_total Per-shard failures inside scatter-gathers (partial results).\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_shard_errors_total counter\n")
	fmt.Fprintf(w, "spannerd_coordinator_shard_errors_total %d\n", m.shardErrors.Load())

	fmt.Fprintf(w, "# HELP spannerd_coordinator_requests_total Requests served by the coordinator, by handler and status code.\n")
	fmt.Fprintf(w, "# TYPE spannerd_coordinator_requests_total counter\n")
	for _, k := range sortedKeys(&m.mu, m.requests) {
		h, code, _ := cut(k)
		fmt.Fprintf(w, "spannerd_coordinator_requests_total{handler=%q,code=%q} %d\n", h, code, m.get(k))
	}

	writeHistograms(w, "spannerd_coordinator_request_duration_seconds",
		"Wall-clock coordinator request latency by handler (includes the worker hop).",
		&m.mu, m.handlerLat, func(k string) string { return fmt.Sprintf("handler=%q", k) })
}
