package server

// Single-owner proxying and whole-cluster fan-outs. Single-document
// requests ride to the shard the ring picks; query registry mutations
// must land on every shard (a partially-registered query would make
// results depend on where a document happens to hash), so they fan out
// to all workers and roll back on partial failure.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"docspanner/internal/cluster"
)

// outgoing builds the worker-bound copy of a request: the worker's base
// URL plus path and query, the remaining deadline budget pushed down as
// ?timeout= (so a worker never keeps computing past the coordinator's
// own deadline), and the request id propagated for trace stitching.
func (c *Coordinator) outgoing(ctx context.Context, method string, worker int, path string, q url.Values, body io.Reader, r *http.Request) (*http.Request, error) {
	if q == nil {
		q = url.Values{}
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, context.DeadlineExceeded
		}
		q.Set("timeout", remaining.String())
	}
	u := c.ring.URL(worker) + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, err
	}
	if r != nil {
		if id := r.Header.Get("X-Request-ID"); id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
	}
	return req, nil
}

// proxy forwards the whole request to one worker and relays the
// response verbatim. GETs go through the retrying idempotent path;
// mutations are sent exactly once.
func (c *Coordinator) proxy(w http.ResponseWriter, r *http.Request, worker int) error {
	ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	path := r.URL.EscapedPath()
	var resp *http.Response
	var release func()
	if r.Method == http.MethodGet {
		resp, release, err = c.client.GetIdempotent(ctx, worker, func(ctx context.Context) (*http.Request, error) {
			return c.outgoing(ctx, http.MethodGet, worker, path, r.URL.Query(), nil, r)
		})
	} else {
		var req *http.Request
		req, err = c.outgoing(ctx, r.Method, worker, path, r.URL.Query(), r.Body, r)
		if err != nil {
			return err
		}
		resp, release, err = c.client.Do(req, worker)
	}
	if err != nil {
		return clusterErr(err)
	}
	defer release()
	defer resp.Body.Close()
	return c.relay(w, resp, worker)
}

// relay copies a worker response to the client, flushing as chunks
// arrive so proxied NDJSON streams stay streams. A worker dying
// mid-relay cannot be turned into a status anymore (headers are out);
// it is counted as a shard error and the truncated body speaks for
// itself — NDJSON clients see the missing summary trailer.
func (c *Coordinator) relay(w http.ResponseWriter, resp *http.Response, worker int) error {
	for _, h := range []string{"Content-Type", "Retry-After", "X-Streaming-Plan"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Worker", c.ring.URL(worker))
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return c.streamDisconnect()
			}
			if ferr := rc.Flush(); ferr != nil && !errors.Is(ferr, http.ErrNotSupported) {
				return c.streamDisconnect()
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			c.cm.shardErrors.Add(1)
			return nil
		}
	}
}

// proxyDocOwner routes by the {name} path segment.
func (c *Coordinator) proxyDocOwner(w http.ResponseWriter, r *http.Request) error {
	return c.proxy(w, r, c.ring.Owner(r.PathValue("name")))
}

// proxyFirstUp serves shard-agnostic reads (query metadata is
// replicated onto every shard) from the lowest-indexed up worker.
func (c *Coordinator) proxyFirstUp(w http.ResponseWriter, r *http.Request) error {
	wk := c.ring.FirstUp()
	if wk < 0 {
		return errUnavailable("no workers available")
	}
	return c.proxy(w, r, wk)
}

// handleEvalProxy / handleCountProxy route by ?doc=.
func (c *Coordinator) handleEvalProxy(w http.ResponseWriter, r *http.Request) error {
	return c.proxyByDocParam(w, r)
}

func (c *Coordinator) handleCountProxy(w http.ResponseWriter, r *http.Request) error {
	return c.proxyByDocParam(w, r)
}

func (c *Coordinator) proxyByDocParam(w http.ResponseWriter, r *http.Request) error {
	doc := r.URL.Query().Get("doc")
	if doc == "" {
		// Let a live worker produce the canonical 404 for the missing
		// parameter instead of inventing a second error shape here.
		return c.proxyFirstUp(w, r)
	}
	return c.proxy(w, r, c.ring.Owner(doc))
}

// fanResult is one worker's slot in a fan-out.
type fanResult struct {
	Worker string          `json:"worker"`
	Status int             `json:"status,omitempty"`
	Err    string          `json:"error,omitempty"`
	Body   json.RawMessage `json:"-"`
}

// fanAll sends the same request to every worker (or every up worker)
// concurrently and gathers per-worker outcomes. Bodies are buffered up
// to 1 MiB — fan-out targets are metadata endpoints, not tuple streams.
func (c *Coordinator) fanAll(ctx context.Context, r *http.Request, method, path string, body []byte, upOnly bool) []fanResult {
	idx := make([]int, 0, c.ring.N())
	for i := 0; i < c.ring.N(); i++ {
		if upOnly && !c.ring.Up(i) {
			continue
		}
		idx = append(idx, i)
	}
	return cluster.Scatter(ctx, idx, 0, func(ctx context.Context, _ int, wk int) fanResult {
		res := fanResult{Worker: c.ring.URL(wk)}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := c.outgoing(ctx, method, wk, path, nil, rd, r)
		if err != nil {
			res.Err = err.Error()
			res.Status = cluster.StatusFor(err)
			return res
		}
		resp, release, err := c.client.Do(req, wk)
		if err != nil {
			res.Err = err.Error()
			res.Status = cluster.StatusFor(err)
			return res
		}
		defer release()
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
		res.Status = resp.StatusCode
		res.Body = b
		return res
	})
}

// handleDocListFan merges every up worker's /docs listing, annotating
// each document with its shard. A down worker's documents are simply
// absent; the response says so with partial=true and an errors list.
func (c *Coordinator) handleDocListFan(w http.ResponseWriter, r *http.Request) error {
	ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	if c.ring.UpCount() == 0 {
		return errUnavailable("no workers available")
	}
	type shardDoc struct {
		docInfo
		Worker string `json:"worker"`
	}
	results := c.fanAll(ctx, r, http.MethodGet, "/docs", nil, true)
	var docs []shardDoc
	var errsList []fanResult
	for _, res := range results {
		if res.Err != "" || res.Status != 200 {
			if res.Err == "" {
				res.Err = fmt.Sprintf("worker %s: /docs status %d", res.Worker, res.Status)
			}
			c.cm.shardErrors.Add(1)
			errsList = append(errsList, res)
			continue
		}
		var body struct {
			Docs []docInfo `json:"docs"`
		}
		if err := json.Unmarshal(res.Body, &body); err != nil {
			res.Err = "decoding /docs response: " + err.Error()
			errsList = append(errsList, res)
			continue
		}
		for _, d := range body.Docs {
			docs = append(docs, shardDoc{docInfo: d, Worker: res.Worker})
		}
	}
	sort.Slice(docs, func(a, b int) bool { return docs[a].Name < docs[b].Name })
	out := map[string]any{
		"docs":       docs,
		"workers":    c.ring.N(),
		"workers_up": c.ring.UpCount(),
	}
	if len(errsList) > 0 || c.ring.UpCount() < c.ring.N() {
		out["partial"] = true
	}
	if len(errsList) > 0 {
		out["errors"] = errsList
	}
	writeJSON(w, 200, out)
	return nil
}

// handleViewListFan merges every up worker's /views listing.
func (c *Coordinator) handleViewListFan(w http.ResponseWriter, r *http.Request) error {
	ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	if c.ring.UpCount() == 0 {
		return errUnavailable("no workers available")
	}
	results := c.fanAll(ctx, r, http.MethodGet, "/views", nil, true)
	var viewsOut []map[string]any
	var errsList []fanResult
	for _, res := range results {
		if res.Err != "" || res.Status != 200 {
			if res.Err == "" {
				res.Err = fmt.Sprintf("worker %s: /views status %d", res.Worker, res.Status)
			}
			c.cm.shardErrors.Add(1)
			errsList = append(errsList, res)
			continue
		}
		var body struct {
			Views []map[string]any `json:"views"`
		}
		if err := json.Unmarshal(res.Body, &body); err != nil {
			res.Err = "decoding /views response: " + err.Error()
			errsList = append(errsList, res)
			continue
		}
		for _, v := range body.Views {
			v["worker"] = res.Worker
			viewsOut = append(viewsOut, v)
		}
	}
	sort.Slice(viewsOut, func(a, b int) bool {
		da, _ := viewsOut[a]["doc"].(string)
		db, _ := viewsOut[b]["doc"].(string)
		if da != db {
			return da < db
		}
		qa, _ := viewsOut[a]["query"].(string)
		qb, _ := viewsOut[b]["query"].(string)
		return qa < qb
	})
	out := map[string]any{
		"views":      viewsOut,
		"workers":    c.ring.N(),
		"workers_up": c.ring.UpCount(),
	}
	if len(errsList) > 0 || c.ring.UpCount() < c.ring.N() {
		out["partial"] = true
	}
	if len(errsList) > 0 {
		out["errors"] = errsList
	}
	writeJSON(w, 200, out)
	return nil
}

// handleQueryPutFan registers a prepared query on every shard. The
// registry is replicated, not sharded: any document may be asked any
// query, so registration refuses to run unless every configured worker
// is up, and rolls the registration back if any shard rejects it.
func (c *Coordinator) handleQueryPutFan(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return errBadRequest("reading body: " + err.Error())
	}
	name := r.PathValue("name")
	if up := c.ring.UpCount(); up < c.ring.N() {
		return errUnavailable(fmt.Sprintf(
			"cluster degraded: %d/%d workers up; query registration needs every shard", up, c.ring.N()))
	}
	ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	path := "/queries/" + url.PathEscape(name)
	results := c.fanAll(ctx, r, http.MethodPut, path, body, false)
	var failed, succeeded []fanResult
	for _, res := range results {
		if res.Err == "" && res.Status == 200 {
			succeeded = append(succeeded, res)
		} else {
			failed = append(failed, res)
		}
	}
	if len(failed) == 0 {
		var info map[string]any
		if err := json.Unmarshal(succeeded[0].Body, &info); err != nil {
			info = map[string]any{"name": name}
		}
		info["workers"] = c.ring.N()
		writeJSON(w, 200, info)
		return nil
	}
	// Partial registration is worse than no registration: delete from the
	// shards that accepted it (best-effort) before reporting failure.
	if len(succeeded) > 0 {
		c.fanAll(ctx, r, http.MethodDelete, path, nil, false)
	}
	c.cm.shardErrors.Add(uint64(len(failed)))
	// All shards rejecting identically (e.g. a lint error) is the
	// worker's verdict, not a gateway fault: relay it as-is.
	if len(succeeded) == 0 && allSameStatus(failed) && failed[0].Err == "" {
		var body map[string]any
		if err := json.Unmarshal(failed[0].Body, &body); err != nil {
			body = map[string]any{"error": fmt.Sprintf("query registration failed with status %d", failed[0].Status)}
		}
		body["worker"] = failed[0].Worker
		writeJSON(w, failed[0].Status, body)
		return nil
	}
	writeJSON(w, http.StatusBadGateway, map[string]any{
		"error":   fmt.Sprintf("query registration failed on %d/%d workers (rolled back)", len(failed), c.ring.N()),
		"workers": results,
	})
	return nil
}

// handleQueryDeleteFan unregisters a query on every shard.
func (c *Coordinator) handleQueryDeleteFan(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	if up := c.ring.UpCount(); up < c.ring.N() {
		return errUnavailable(fmt.Sprintf(
			"cluster degraded: %d/%d workers up; query deletion needs every shard", up, c.ring.N()))
	}
	ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	results := c.fanAll(ctx, r, http.MethodDelete, "/queries/"+url.PathEscape(name), nil, false)
	notFound, viewsDropped := 0, 0
	var failed []fanResult
	for _, res := range results {
		switch {
		case res.Err == "" && res.Status == 200:
			var body struct {
				ViewsDropped int `json:"views_dropped"`
			}
			if err := json.Unmarshal(res.Body, &body); err == nil {
				viewsDropped += body.ViewsDropped
			}
		case res.Err == "" && res.Status == 404:
			notFound++
		default:
			failed = append(failed, res)
		}
	}
	if len(failed) > 0 {
		c.cm.shardErrors.Add(uint64(len(failed)))
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":   fmt.Sprintf("query deletion failed on %d/%d workers", len(failed), c.ring.N()),
			"workers": results,
		})
		return nil
	}
	if notFound == c.ring.N() {
		return errNotFound("query")
	}
	writeJSON(w, 200, map[string]any{
		"status":        "deleted",
		"workers":       c.ring.N(),
		"views_dropped": viewsDropped,
	})
	return nil
}

// handleAdminFan broadcasts an admin POST (flush-caches, snapshot) to
// every up worker and reports per-worker outcomes.
func (c *Coordinator) handleAdminFan(path string) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		ctx, cancel, err := requestContextFor(r, c.cfg.RequestTimeout, c.cfg.MaxTimeout)
		if err != nil {
			return err
		}
		defer cancel()
		if c.ring.UpCount() == 0 {
			return errUnavailable("no workers available")
		}
		results := c.fanAll(ctx, r, http.MethodPost, path, nil, true)
		status := 200
		workers := make([]map[string]any, 0, len(results))
		for _, res := range results {
			entry := map[string]any{"worker": res.Worker, "status": res.Status}
			if res.Err != "" {
				entry["error"] = res.Err
				status = http.StatusBadGateway
				c.cm.shardErrors.Add(1)
			} else if res.Status != 200 {
				status = http.StatusBadGateway
				c.cm.shardErrors.Add(1)
			} else {
				var body map[string]any
				if err := json.Unmarshal(res.Body, &body); err == nil {
					entry["response"] = body
				}
			}
			workers = append(workers, entry)
		}
		writeJSON(w, status, map[string]any{"workers": workers})
		return nil
	}
}

// checkQuery verifies a prepared query exists before a scatter, so a
// typo'd name is one clean 404 instead of N identical shard errors.
// Best-effort: any failure other than a definite 404 lets the scatter
// proceed and speak for itself.
func (c *Coordinator) checkQuery(ctx context.Context, r *http.Request, name string) error {
	wk := c.ring.FirstUp()
	if wk < 0 {
		return errUnavailable("no workers available")
	}
	resp, release, err := c.client.GetIdempotent(ctx, wk, func(ctx context.Context) (*http.Request, error) {
		return c.outgoing(ctx, http.MethodGet, wk, "/queries/"+url.PathEscape(name), nil, nil, r)
	})
	if err != nil {
		return nil
	}
	defer release()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode == 404 {
		return errNotFound("query " + name)
	}
	return nil
}

func allSameStatus(rs []fanResult) bool {
	for _, r := range rs {
		if r.Status != rs[0].Status {
			return false
		}
	}
	return len(rs) > 0
}

// splitDocs parses a comma-separated ?docs= list, trimming blanks and
// dropping duplicates while preserving first-seen order.
func splitDocs(s string) []string {
	parts := strings.Split(s, ",")
	seen := make(map[string]bool, len(parts))
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}
