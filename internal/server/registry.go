package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"docspanner"
	"docspanner/internal/qsyntax"
	"docspanner/internal/storage"
)

// querySpec is the JSON body of a query registration.
type querySpec struct {
	// Src is the query source: a spanner pattern, or a prefix algebra
	// expression (union/join/project/seleq/minus — internal/qsyntax).
	Src string `json:"src"`
	// Schemaless compiles with schemaless (partial-tuple) semantics.
	Schemaless bool `json:"schemaless"`
	// Alphabet fixes the document alphabet (default: inferred).
	Alphabet string `json:"alphabet,omitempty"`
	// FailOn overrides the server's lint threshold for this registration:
	// "info" | "warning" | "error" | "never".
	FailOn string `json:"fail_on,omitempty"`
	// Plan tunes the planner.
	Plan *planSpec `json:"plan,omitempty"`
}

type planSpec struct {
	DisableRewrites bool `json:"disable_rewrites,omitempty"`
	NaiveBackend    bool `json:"naive_backend,omitempty"`
	ReflRewrite     bool `json:"refl_rewrite,omitempty"`
	MaxFusedStates  int  `json:"max_fused_states,omitempty"`
	// MaxDeterminizeStates tunes the backend cost gate and the SP009
	// determinization-blowup budget for this registration.
	MaxDeterminizeStates int `json:"max_determinize_states,omitempty"`
}

// preparedQuery is a registered query: parsed, linted, and planned once
// at registration; evaluation reuses the immutable *Query (safe for
// concurrent use) from every handler.
type preparedQuery struct {
	name       string
	src        string
	query      *docspanner.Query
	diags      []docspanner.Diagnostic
	registered time.Time
}

// queryInfo is the JSON shape of a prepared query.
type queryInfo struct {
	Name        string                  `json:"name"`
	Src         string                  `json:"src"`
	Vars        []string                `json:"vars"`
	Regular     bool                    `json:"regular"`
	Streaming   bool                    `json:"streaming"`
	Diagnostics []docspanner.Diagnostic `json:"diagnostics"`
	Registered  string                  `json:"registered"`
}

func (p *preparedQuery) info() queryInfo {
	vars := make([]string, 0, len(p.query.Vars()))
	for _, v := range p.query.Vars() { // VarSet is canonically sorted
		vars = append(vars, string(v))
	}
	ds := p.diags
	if ds == nil {
		ds = []docspanner.Diagnostic{}
	}
	return queryInfo{
		Name:        p.name,
		Src:         p.src,
		Vars:        vars,
		Regular:     p.query.IsRegular(),
		Streaming:   p.query.Streaming(),
		Diagnostics: ds,
		Registered:  p.registered.UTC().Format(time.RFC3339Nano),
	}
}

// registry holds the prepared queries, teeing registrations and
// deletions through the storage backend (the raw spec JSON is what
// persists; recovery re-parses and re-plans it). Registration is
// serialized under mu; lookups take the read lock and hand out the
// immutable prepared query.
type registry struct {
	backend storage.Backend

	mu sync.RWMutex
	m  map[string]*preparedQuery
	// failOn is the lint severity that rejects a registration
	// (0 = never reject).
	failOn docspanner.Severity
}

func newRegistry(failOn docspanner.Severity, backend storage.Backend) *registry {
	return &registry{backend: backend, m: map[string]*preparedQuery{}, failOn: failOn}
}

// prepare parses, lints, and plans a spec without storing it. With
// lint set, a finding at or above the threshold rejects the spec with
// the diagnostics attached, so a bad query is rejected once at
// registration instead of surprising every evaluation. Recovery passes
// lint=false: the spec already passed the gate when it was first
// registered, and a restart under a stricter -lint-fail-on must not
// silently drop recovered queries.
func (r *registry) prepare(name string, spec querySpec, lint bool) (*preparedQuery, error) {
	if spec.Src == "" {
		return nil, errBadRequest("query spec needs a non-empty src")
	}
	opts := docspanner.Options{Schemaless: spec.Schemaless}
	if spec.Alphabet != "" {
		opts.Alphabet = []byte(spec.Alphabet)
	}
	q, err := qsyntax.Parse(spec.Src, opts)
	if err != nil {
		return nil, errBadRequest(fmt.Sprintf("parse %q: %s", spec.Src, err))
	}
	if spec.Plan != nil {
		q = q.WithPlan(docspanner.PlanOptions{
			DisableRewrites:      spec.Plan.DisableRewrites,
			NaiveBackend:         spec.Plan.NaiveBackend,
			ReflRewrite:          spec.Plan.ReflRewrite,
			MaxFusedStates:       spec.Plan.MaxFusedStates,
			MaxDeterminizeStates: spec.Plan.MaxDeterminizeStates,
		})
	}

	diags := q.Lint()
	if lint {
		threshold := r.failOn
		if spec.FailOn != "" {
			threshold, err = parseFailOn(spec.FailOn)
			if err != nil {
				return nil, errBadRequest(err.Error())
			}
		}
		if threshold > 0 {
			for _, d := range diags {
				if d.Severity >= threshold {
					return nil, &httpError{
						status:  422,
						message: fmt.Sprintf("lint rejected query %q: %s", name, d),
						diags:   diags,
					}
				}
			}
		}
	}

	// Plan now (hash-consed through the shared plan cache), so the first
	// evaluation pays no planning latency and a plan-level failure
	// surfaces at registration.
	_ = q.Streaming()
	return &preparedQuery{name: name, src: spec.Src, query: q, diags: diags}, nil
}

// parseQuerySpec decodes a registration body strictly (unknown fields
// rejected), returning both the decoded spec and the canonical raw JSON
// that the backend persists.
func parseQuerySpec(raw []byte) (querySpec, error) {
	var spec querySpec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, errBadRequest(fmt.Sprintf("bad JSON body: %s", err))
	}
	return spec, nil
}

// register parses, lints, and plans a query from its raw spec JSON,
// persists the registration, and stores it under name.
func (r *registry) register(name string, raw []byte) (queryInfo, error) {
	spec, err := parseQuerySpec(raw)
	if err != nil {
		return queryInfo{}, err
	}
	p, err := r.prepare(name, spec, true)
	if err != nil {
		return queryInfo{}, err
	}
	p.registered = time.Now()

	r.mu.Lock()
	if err := r.backend.PutQuery(name, raw, p.registered); err != nil {
		r.mu.Unlock()
		return queryInfo{}, err
	}
	r.m[name] = p
	r.mu.Unlock()
	if err := r.backend.Sync(); err != nil {
		// The registration is applied and logged; hand the info back with
		// the durability failure so the handler still runs its cascades.
		return p.info(), syncFailed(fmt.Sprintf("query %q registration", name), err)
	}
	return p.info(), nil
}

// recover re-registers a persisted query through the same parse-and-plan
// path, keeping its original registration time. No backend append: the
// registration is already in the log or snapshot being recovered.
func (r *registry) recover(qs storage.QueryState) error {
	spec, err := parseQuerySpec(qs.Spec)
	if err != nil {
		return fmt.Errorf("recovering query %q: %w", qs.Name, err)
	}
	p, err := r.prepare(qs.Name, spec, false)
	if err != nil {
		return fmt.Errorf("recovering query %q: %w", qs.Name, err)
	}
	p.registered = qs.Registered
	r.mu.Lock()
	r.m[qs.Name] = p
	r.mu.Unlock()
	return nil
}

func (r *registry) get(name string) (*preparedQuery, error) {
	r.mu.RLock()
	p, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, errNotFound(fmt.Sprintf("query %q", name))
	}
	return p, nil
}

func (r *registry) delete(name string) error {
	r.mu.Lock()
	if _, ok := r.m[name]; !ok {
		r.mu.Unlock()
		return errNotFound(fmt.Sprintf("query %q", name))
	}
	if err := r.backend.DeleteQuery(name); err != nil {
		r.mu.Unlock()
		return err
	}
	delete(r.m, name)
	r.mu.Unlock()
	if err := r.backend.Sync(); err != nil {
		return syncFailed(fmt.Sprintf("query %q delete", name), err)
	}
	return nil
}

func (r *registry) list() []queryInfo {
	r.mu.RLock()
	out := make([]queryInfo, 0, len(r.m))
	for _, p := range r.m {
		out = append(out, p.info())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// parseFailOn maps a threshold name to a severity; "never" is 0.
func parseFailOn(s string) (docspanner.Severity, error) {
	switch s {
	case "never":
		return 0, nil
	case "info":
		return docspanner.SeverityInfo, nil
	case "warning":
		return docspanner.SeverityWarning, nil
	case "error":
		return docspanner.SeverityError, nil
	}
	return 0, fmt.Errorf("unknown fail-on severity %q (want info, warning, error, or never)", s)
}
