package slpmatch

import (
	"math/big"

	"docspanner/internal/automata"
	"docspanner/internal/slp"
)

// Counting over compressed documents: for each SLP node A, an integer
// matrix N_A[p][q] counts the runs of the deterministic eVA from p to q
// reading 𝔇(A) (with at most one mask before each letter). Matrices
// compose multiplicatively along the grammar, so the exact number of
// result tuples of a spanner on an SLP-compressed document — a quantity
// that can be astronomically large — is computed in O(|S|) big-integer
// matrix products without enumeration and without decompression.

// Counter carries the per-node count matrices for one deterministic eVA.
type Counter struct {
	d    *automata.DEVA
	nq   int
	memo map[*slp.Node]countMatrix
	leaf map[byte]countMatrix
}

// countMatrix is a dense nq×nq matrix of big integers (nil = zero).
type countMatrix []*big.Int

func (ix *Counter) newMatrix() countMatrix {
	return make(countMatrix, ix.nq*ix.nq)
}

func (m countMatrix) at(nq, p, q int) *big.Int { return m[p*nq+q] }

// NewCounter prepares a counter for the automaton.
func NewCounter(d *automata.DEVA) *Counter {
	return &Counter{
		d:    d,
		nq:   d.NumStates(),
		memo: map[*slp.Node]countMatrix{},
		leaf: map[byte]countMatrix{},
	}
}

func (ix *Counter) leafMatrix(b byte) countMatrix {
	if m, ok := ix.leaf[b]; ok {
		return m
	}
	m := ix.newMatrix()
	one := big.NewInt(1)
	add := func(p, q int) {
		i := p*ix.nq + q
		if m[i] == nil {
			m[i] = new(big.Int)
		}
		m[i].Add(m[i], one)
	}
	for q := 0; q < ix.nq; q++ {
		if s := ix.d.Step(q, b); s >= 0 {
			add(q, s)
		}
		for _, t := range ix.d.Masks[q] {
			if s := ix.d.Step(t, b); s >= 0 {
				add(q, s)
			}
		}
	}
	ix.leaf[b] = m
	return m
}

func (ix *Counter) nodeMatrix(n *slp.Node) countMatrix {
	if n.IsLeaf() {
		return ix.leafMatrix(n.LeafByte())
	}
	if m, ok := ix.memo[n]; ok {
		return m
	}
	l := ix.nodeMatrix(n.Left())
	r := ix.nodeMatrix(n.Right())
	m := ix.newMatrix()
	nq := ix.nq
	var tmp big.Int
	for p := 0; p < nq; p++ {
		for k := 0; k < nq; k++ {
			lv := l[p*nq+k]
			if lv == nil || lv.Sign() == 0 {
				continue
			}
			for q := 0; q < nq; q++ {
				rv := r[k*nq+q]
				if rv == nil || rv.Sign() == 0 {
					continue
				}
				tmp.Mul(lv, rv)
				i := p*nq + q
				if m[i] == nil {
					m[i] = new(big.Int)
				}
				m[i].Add(m[i], &tmp)
			}
		}
	}
	ix.memo[n] = m
	return m
}

// Count returns the exact number of result tuples of the spanner on
// 𝔇(root), computed on the compressed representation. Runs of a
// deterministic eVA are in bijection with tuples, so the count is exact
// even when it far exceeds what enumeration could ever produce.
func (ix *Counter) Count(root *slp.Node) *big.Int {
	finalWays := make([]*big.Int, ix.nq)
	for q := 0; q < ix.nq; q++ {
		w := new(big.Int)
		if ix.d.Final[q] {
			w.SetInt64(1)
		}
		for _, t := range ix.d.Masks[q] {
			if ix.d.Final[t] {
				w.Add(w, big.NewInt(1))
			}
		}
		finalWays[q] = w
	}
	if root == nil {
		return new(big.Int).Set(finalWays[ix.d.Start])
	}
	m := ix.nodeMatrix(root)
	total := new(big.Int)
	var tmp big.Int
	for q := 0; q < ix.nq; q++ {
		v := m[ix.d.Start*ix.nq+q]
		if v == nil || v.Sign() == 0 || finalWays[q].Sign() == 0 {
			continue
		}
		tmp.Mul(v, finalWays[q])
		total.Add(total, &tmp)
	}
	return total
}
