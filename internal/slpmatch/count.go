package slpmatch

import (
	"math/big"

	"docspanner/internal/automata"
	"docspanner/internal/slp"
)

// Counting over compressed documents: for each SLP node A, an integer
// matrix N_A[p][q] counts the runs of the deterministic eVA from p to q
// reading 𝔇(A) (with at most one mask before each letter). Matrices
// compose multiplicatively along the grammar, so the exact number of
// result tuples of a spanner on an SLP-compressed document — a quantity
// that can be astronomically large — is computed in O(|S|) big-integer
// matrix products without enumeration and without decompression.

// counterCore is the shared state of all Counters over one DEVA.
type counterCore struct {
	c         *automata.CompiledDEVA
	nq        int
	memo      *nodeCache[countMatrix]
	leaf      [256]countMatrix
	finalWays []*big.Int // read-only after construction
}

// countMatrix is a dense nq×nq matrix of big integers (nil = zero). A
// stored matrix is immutable.
type countMatrix []*big.Int

func counterCoreFor(d *automata.DEVA) *counterCore {
	if v, ok := counterCores.Load(d); ok {
		return v.(*counterCore)
	}
	core := buildCounterCore(d)
	v, _ := counterCores.LoadOrStore(d, core)
	return v.(*counterCore)
}

func buildCounterCore(d *automata.DEVA) *counterCore {
	c := d.Compiled()
	nq := c.NQ
	core := &counterCore{c: c, nq: nq, memo: newNodeCache[countMatrix]()}

	zero := make(countMatrix, nq*nq)
	for b := range core.leaf {
		core.leaf[b] = zero
	}
	one := big.NewInt(1)
	for _, b := range c.Letters {
		steps := c.StepsFor(b)
		m := make(countMatrix, nq*nq)
		add := func(p, q int) {
			i := p*nq + q
			if m[i] == nil {
				m[i] = new(big.Int)
			}
			m[i].Add(m[i], one)
		}
		for q := 0; q < nq; q++ {
			if s := steps[q]; s >= 0 {
				add(q, int(s))
			}
			for _, me := range c.MaskEdges[q] {
				if s := steps[me.To]; s >= 0 {
					add(q, int(s))
				}
			}
		}
		core.leaf[b] = m
	}

	// finalWays[q] counts the accepting completions at the end boundary:
	// one for a final q, plus one per final mask successor.
	core.finalWays = make([]*big.Int, nq)
	for q := 0; q < nq; q++ {
		w := new(big.Int)
		if c.Final[q] {
			w.SetInt64(1)
		}
		for _, me := range c.MaskEdges[q] {
			if c.Final[me.To] {
				w.Add(w, one)
			}
		}
		core.finalWays[q] = w
	}
	return core
}

func (core *counterCore) nodeMatrix(n *slp.Node) countMatrix {
	if n.IsLeaf() {
		return core.leaf[n.LeafByte()]
	}
	if m, ok := core.memo.get(n); ok {
		return m
	}
	l := core.nodeMatrix(n.Left())
	r := core.nodeMatrix(n.Right())
	nq := core.nq
	m := make(countMatrix, nq*nq)
	var tmp big.Int
	for p := 0; p < nq; p++ {
		for k := 0; k < nq; k++ {
			lv := l[p*nq+k]
			if lv == nil || lv.Sign() == 0 {
				continue
			}
			for q := 0; q < nq; q++ {
				rv := r[k*nq+q]
				if rv == nil || rv.Sign() == 0 {
					continue
				}
				tmp.Mul(lv, rv)
				i := p*nq + q
				if m[i] == nil {
					m[i] = new(big.Int)
				}
				m[i].Add(m[i], &tmp)
			}
		}
	}
	core.memo.put(n, m)
	return m
}

// Counter carries the per-node count matrices for one deterministic eVA.
// All Counters over one DEVA share a core and node cache; a Counter is
// safe for concurrent use.
type Counter struct {
	core *counterCore
}

// NewCounter prepares (or reuses, hash-consed per automaton) a counter
// for the automaton.
func NewCounter(d *automata.DEVA) *Counter {
	return &Counter{core: counterCoreFor(d)}
}

// CachedNodes reports the number of inner SLP nodes with computed count
// matrices in the shared cache of this Counter's automaton.
func (ct *Counter) CachedNodes() int { return ct.core.memo.len() }

// WarmDelta brings the count-matrix cache up to date after an edit that
// turned oldRoot into newRoot, recomputing only the O(log d) fresh spine
// nodes; a Count on newRoot afterwards is a single cache hit plus the
// final-vector product. A nil oldRoot warms newRoot from whatever is
// cached.
func (ct *Counter) WarmDelta(oldRoot, newRoot *slp.Node) WarmStats {
	core := ct.core
	before := core.memo.len()
	st := warmDelta(oldRoot, newRoot,
		func(n *slp.Node) bool { _, ok := core.memo.get(n); return ok },
		func(n *slp.Node) { core.nodeMatrix(n) },
		func(n *slp.Node) { core.nodeMatrix(n) })
	st.CachedBefore = before
	return st
}

// Count returns the exact number of result tuples of the spanner on
// 𝔇(root), computed on the compressed representation. Runs of a
// deterministic eVA are in bijection with tuples, so the count is exact
// even when it far exceeds what enumeration could ever produce.
func (ct *Counter) Count(root *slp.Node) *big.Int {
	core := ct.core
	if root == nil {
		return new(big.Int).Set(core.finalWays[core.c.Start])
	}
	m := core.nodeMatrix(root)
	total := new(big.Int)
	var tmp big.Int
	nq := core.nq
	for q := 0; q < nq; q++ {
		v := m[core.c.Start*nq+q]
		if v == nil || v.Sign() == 0 || core.finalWays[q].Sign() == 0 {
			continue
		}
		tmp.Mul(v, core.finalWays[q])
		total.Add(total, &tmp)
	}
	return total
}
