// Package slpmatch implements algorithmics on SLP-compressed strings for
// document spanners (Section 4 of Schmid and Schweikardt's PODS 2022
// survey): membership of a compressed document in an NFA language via
// Boolean matrix products in O(|S|·n³) (Section 4.2, after Plandowski &
// Rytter and Lohrey's survey), and enumeration of a regular spanner's
// result over an SLP-compressed document with preprocessing linear in the
// SLP size and delay O(log |D|) on balanced SLPs (after Schmid &
// Schweikardt, PODS 2021).
//
// All per-node data is memoized in sharded concurrent caches keyed by the
// (immutable, shared) SLP nodes and hash-consed per automaton, so a
// persistent Index amortizes across the documents of a database — and
// across goroutines — and is maintained for free under CDE updates: an
// update adds O(log d) fresh nodes, and only those need new matrices
// (Section 4.3).
//
// Matcher, Index, and Counter are safe for concurrent use. The automaton
// an instance is built on must not be mutated afterwards.
package slpmatch

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/slp"
)

// matcherCore holds the shared state of all Matchers over one NFA: the
// compiled per-letter matrices and the concurrent node→matrix cache.
type matcherCore struct {
	c    *automata.CompiledNFA
	memo *nodeCache[*automata.BoolMatrix]
}

func matcherCoreFor(nfa *automata.NFA) (*matcherCore, error) {
	if v, ok := matcherCores.Load(nfa); ok {
		return v.(*matcherCore), nil
	}
	c, err := nfa.CompiledMatrices()
	if err != nil {
		return nil, err
	}
	core := &matcherCore{c: c, memo: newNodeCache[*automata.BoolMatrix]()}
	v, _ := matcherCores.LoadOrStore(nfa, core)
	return v.(*matcherCore), nil
}

// Matcher decides membership of SLP-compressed documents in the language
// of a plain NFA (no markers): the classical compressed-membership tool.
// All Matchers over one NFA share a compiled core and node cache; a
// Matcher is safe for concurrent use.
type Matcher struct {
	core *matcherCore
}

// NewMatcher prepares (or reuses, hash-consed per automaton) per-letter
// transition matrices. The automaton must have no marker or reference
// transitions.
func NewMatcher(nfa *automata.NFA) (*Matcher, error) {
	core, err := matcherCoreFor(nfa)
	if err != nil {
		return nil, fmt.Errorf("slpmatch: %w", err)
	}
	return &Matcher{core: core}, nil
}

// matrix returns (memoized in the shared cache) the reachability matrix
// for the derivation of node n. Concurrent callers may compute the same
// node twice; the results are equal, so last-write-wins is harmless.
func (core *matcherCore) matrix(n *slp.Node) *automata.BoolMatrix {
	if n.IsLeaf() {
		return core.c.LetterMatrix(n.LeafByte())
	}
	if mt, ok := core.memo.get(n); ok {
		return mt
	}
	mt := core.matrix(n.Left()).Mul(core.matrix(n.Right()))
	core.memo.put(n, mt)
	return mt
}

// Accepts decides 𝔇(root) ∈ L(nfa) without decompressing, in time
// O(|S|·n³/64) for the new nodes of root.
func (m *Matcher) Accepts(root *slp.Node) bool {
	c := m.core.c
	if root == nil {
		return c.EmptyAccept
	}
	mt := m.core.matrix(root)
	for q, f := range c.NFA.Final {
		if f && mt.Get(c.NFA.Start, q) {
			return true
		}
	}
	return false
}

// Warm computes the matrices of all nodes of root sequentially.
func (m *Matcher) Warm(root *slp.Node) {
	if root != nil {
		m.core.matrix(root)
	}
}

// WarmParallel computes the matrices of all uncached nodes of root
// bottom-up, fanning each DAG level out over the given number of workers
// (GOMAXPROCS if workers ≤ 0). Nodes of equal order are independent, so
// the schedule is race-free by construction.
func (m *Matcher) WarmParallel(root *slp.Node, workers int) {
	core := m.core
	warmParallel(root, workers,
		func(n *slp.Node) bool { _, ok := core.memo.get(n); return ok },
		func(n *slp.Node) {
			mt := core.matrix(n.Left()).Mul(core.matrix(n.Right()))
			core.memo.put(n, mt)
		})
}

// CachedNodes reports how many inner SLP nodes have matrices computed in
// the shared cache of this Matcher's automaton.
func (m *Matcher) CachedNodes() int { return m.core.memo.len() }

// WarmDelta brings the matrix cache up to date after an edit that turned
// oldRoot into newRoot: it computes matrices for the O(log d) fresh
// spine nodes only, pruning the traversal at every node that already has
// one (the subtrees the edit shares with oldRoot — hash-consed, so they
// are free). A nil oldRoot warms newRoot from whatever is cached.
func (m *Matcher) WarmDelta(oldRoot, newRoot *slp.Node) WarmStats {
	core := m.core
	before := core.memo.len()
	st := warmDelta(oldRoot, newRoot,
		func(n *slp.Node) bool { _, ok := core.memo.get(n); return ok },
		func(n *slp.Node) { core.matrix(n) },
		func(n *slp.Node) { core.matrix(n) })
	st.CachedBefore = before
	return st
}
