// Package slpmatch implements algorithmics on SLP-compressed strings for
// document spanners (Section 4 of Schmid and Schweikardt's PODS 2022
// survey): membership of a compressed document in an NFA language via
// Boolean matrix products in O(|S|·n³) (Section 4.2, after Plandowski &
// Rytter and Lohrey's survey), and enumeration of a regular spanner's
// result over an SLP-compressed document with preprocessing linear in the
// SLP size and delay O(log |D|) on balanced SLPs (after Schmid &
// Schweikardt, PODS 2021).
//
// All per-node data is memoized in maps keyed by the (immutable, shared)
// SLP nodes, so a persistent Index amortizes across the documents of a
// database and is maintained for free under CDE updates: an update adds
// O(log d) fresh nodes, and only those need new matrices (Section 4.3).
//
// Matcher, Index, and Counter mutate their memo tables on use and are NOT
// safe for concurrent use; share one per goroutine, or guard externally.
package slpmatch

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/slp"
)

// Matcher decides membership of SLP-compressed documents in the language
// of a plain NFA (no markers): the classical compressed-membership tool.
type Matcher struct {
	nfa     *automata.NFA
	nq      int
	letters map[byte]*automata.BoolMatrix
	closure *automata.BoolMatrix
	memo    map[*slp.Node]*automata.BoolMatrix
}

// NewMatcher prepares per-letter transition matrices. The automaton must
// have no marker or reference transitions.
func NewMatcher(nfa *automata.NFA) (*Matcher, error) {
	if nfa.HasRefs() {
		return nil, fmt.Errorf("slpmatch: automaton has reference transitions")
	}
	for _, tr := range nfa.Markers {
		if len(tr) > 0 {
			return nil, fmt.Errorf("slpmatch: automaton has marker transitions; use Index for spanners")
		}
	}
	nq := nfa.NumStates()
	m := &Matcher{
		nfa:     nfa,
		nq:      nq,
		letters: map[byte]*automata.BoolMatrix{},
		memo:    map[*slp.Node]*automata.BoolMatrix{},
	}
	// Reflexive-transitive ε-closure matrix C.
	c := automata.IdentityMatrix(nq)
	for q := 0; q < nq; q++ {
		for _, r := range nfa.EpsClosure([]int{q}) {
			c.Set(q, r)
		}
	}
	m.closure = c
	for _, b := range nfa.Alphabet() {
		s := automata.NewBoolMatrix(nq)
		for p := 0; p < nq; p++ {
			for _, r := range nfa.Letters[p][b] {
				s.Set(p, r)
			}
		}
		// L_b = C·S_b·C; products of these compose correctly because C
		// is idempotent.
		m.letters[b] = c.Mul(s).Mul(c)
	}
	return m, nil
}

// matrix returns (memoized) the reachability matrix for the derivation of
// node n.
func (m *Matcher) matrix(n *slp.Node) *automata.BoolMatrix {
	if mt, ok := m.memo[n]; ok {
		return mt
	}
	var mt *automata.BoolMatrix
	if n.IsLeaf() {
		mt = m.letters[n.LeafByte()]
		if mt == nil {
			mt = automata.NewBoolMatrix(m.nq) // letter unknown to the NFA
		}
	} else {
		mt = m.matrix(n.Left()).Mul(m.matrix(n.Right()))
	}
	m.memo[n] = mt
	return mt
}

// Accepts decides 𝔇(root) ∈ L(nfa) without decompressing, in time
// O(|S|·n³/64) for the new nodes of root.
func (m *Matcher) Accepts(root *slp.Node) bool {
	if root == nil {
		for _, q := range m.nfa.EpsClosure([]int{m.nfa.Start}) {
			if m.nfa.Final[q] {
				return true
			}
		}
		return false
	}
	mt := m.matrix(root)
	for q, f := range m.nfa.Final {
		if f && mt.Get(m.nfa.Start, q) {
			return true
		}
	}
	return false
}

// CachedNodes reports how many SLP nodes have matrices computed.
func (m *Matcher) CachedNodes() int { return len(m.memo) }
