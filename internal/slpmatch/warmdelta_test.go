package slpmatch

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/regex"
	"docspanner/internal/slp"
)

// insertAt returns the document with s inserted at byte offset pos — the
// node surgery a CDE insert performs, sharing everything but the O(log d)
// spine with root.
func insertAt(root *slp.Node, pos int64, s string) *slp.Node {
	mid := slp.FromBytes([]byte(s))
	return slp.Concat(slp.Concat(slp.Extract(root, 0, pos), mid), slp.Extract(root, pos, root.Len()))
}

// deleteAt removes doc[pos:pos+k].
func deleteAt(root *slp.Node, pos, k int64) *slp.Node {
	return slp.Concat(slp.Extract(root, 0, pos), slp.Extract(root, pos+k, root.Len()))
}

// TestWarmDeltaMatchesCold certifies that a WarmDelta-maintained index,
// matcher, and counter agree with cold evaluation after every edit of a
// random edit sequence.
func TestWarmDeltaMatchesCold(t *testing.T) {
	exprs := []string{
		".*!x{ab}.*",
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		"(!x{aa}|!x{bb}).*",
	}
	rng := rand.New(rand.NewSource(42))
	for _, src := range exprs {
		d := spannerDEVA(t, src)
		ix := NewIndex(d)
		ct := NewCounter(d)
		m, err := NewMatcher(plainNFA(t, "(ab)*"))
		if err != nil {
			t.Fatal(err)
		}

		doc := []byte("abbaabababba")
		root := slp.Balance(slp.Compress(doc))
		ix.Warm(root)
		m.Warm(root)
		ct.Count(root)

		for step := 0; step < 12; step++ {
			old := root
			if rng.Intn(3) == 0 && root.Len() > 4 {
				pos := rng.Int63n(root.Len() - 2)
				root = deleteAt(root, pos, 1+rng.Int63n(2))
			} else {
				pos := rng.Int63n(root.Len() + 1)
				root = insertAt(root, pos, []string{"a", "b", "ab", "ba"}[rng.Intn(4)])
			}
			st := ix.WarmDelta(old, root)
			if st.Recomputed == 0 && old != root {
				t.Fatalf("%q step %d: WarmDelta recomputed nothing for a fresh spine", src, step)
			}
			m.WarmDelta(old, root)
			ct.WarmDelta(old, root)

			bytes := root.Bytes()
			want := enum.NewEnumerator(d, bytes).All()
			got := ix.All(root)
			if !got.Equal(want) {
				t.Fatalf("%q step %d: index result diverged after WarmDelta on %q", src, step, bytes)
			}
			if gc := ct.Count(root); gc.Int64() != int64(want.Len()) {
				t.Fatalf("%q step %d: counter = %v, want %d", src, step, gc, want.Len())
			}
			wantAccept := len(bytes)%2 == 0 && func() bool {
				for i := 0; i < len(bytes); i += 2 {
					if bytes[i] != 'a' || bytes[i+1] != 'b' {
						return false
					}
				}
				return true
			}()
			if m.Accepts(root) != wantAccept {
				t.Fatalf("step %d: matcher diverged after WarmDelta on %q", step, bytes)
			}
		}
	}
}

// TestWarmDeltaSpineIsLogarithmic pins the O(log d) claim: after a full
// warm, one insert edit on a document of length n recomputes O(log n)
// nodes while the rest of the DAG is reused through the cache.
func TestWarmDeltaSpineIsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1 << 10, 1 << 14, 1 << 17} {
		d := spannerDEVA(t, ".*!x{ab}.*") // fresh DEVA per size → fresh core
		ix := NewIndex(d)
		doc := make([]byte, n)
		for i := range doc {
			doc[i] = "ab"[rng.Intn(2)]
		}
		root := slp.FromBytes(doc) // balanced, 2n−1 nodes, order ~log n
		ix.WarmParallel(root, 0)
		inner := n - 1

		logN := math.Log2(float64(n))
		budget := int(6*logN + 24) // generous constant; rejects any O(n) regression
		for edit := 0; edit < 8; edit++ {
			old := root
			root = insertAt(root, rng.Int63n(root.Len()+1), "ab")
			st := ix.WarmDelta(old, root)
			if st.Recomputed > budget {
				t.Fatalf("n=%d edit %d: recomputed %d nodes, want ≤ %d (~log n)", n, edit, st.Recomputed, budget)
			}
			if st.Reused == 0 {
				t.Fatalf("n=%d edit %d: no reused subtree boundary — sharing broken", n, edit)
			}
			if st.CachedBefore < inner {
				t.Fatalf("n=%d edit %d: CachedBefore = %d, want ≥ %d (the pre-edit DAG)", n, edit, st.CachedBefore, inner)
			}
		}
	}
}

// TestWarmDeltaColdBaseline: WarmDelta with a nil old root (or an
// unwarmed old root) must still produce a fully correct index — it just
// does the full warm.
func TestWarmDeltaColdBaseline(t *testing.T) {
	d := spannerDEVA(t, ".*!x{ab}.*")
	ix := NewIndex(d)
	doc := []byte("abababbaab")
	root := slp.Balance(slp.Compress(doc))
	st := ix.WarmDelta(nil, root)
	if st.Recomputed == 0 {
		t.Fatalf("cold WarmDelta computed nothing")
	}
	want := enum.NewEnumerator(d, doc).All()
	if !ix.All(root).Equal(want) {
		t.Fatalf("cold WarmDelta index diverged")
	}
	// Old root never warmed: ensure() warms it first, then the delta.
	d2 := spannerDEVA(t, ".*!x{ba}.*")
	ix2 := NewIndex(d2)
	old := slp.FromBytes([]byte("abba"))
	cur := insertAt(old, 2, "ab")
	ix2.WarmDelta(old, cur)
	want2 := enum.NewEnumerator(d2, cur.Bytes()).All()
	if !ix2.All(cur).Equal(want2) {
		t.Fatalf("WarmDelta from unwarmed old root diverged")
	}
}

// TestWarmDeltaStatsMonotonic: the process-wide totals grow with every
// delta call and never rewind (they back the Prometheus counters).
func TestWarmDeltaStatsMonotonic(t *testing.T) {
	r0, u0 := WarmDeltaStats()
	d := spannerDEVA(t, ".*!x{ab}.*")
	ix := NewIndex(d)
	root := slp.FromBytes([]byte("abababab"))
	ix.Warm(root)
	cur := insertAt(root, 4, "ab")
	st := ix.WarmDelta(root, cur)
	r1, u1 := WarmDeltaStats()
	if r1 < r0+uint64(st.Recomputed) || u1 < u0+uint64(st.Reused) {
		t.Fatalf("totals did not advance: (%d,%d) -> (%d,%d), call stats %+v", r0, u0, r1, u1, st)
	}
}

// TestWarmDeltaWhileReset certifies WarmDelta under the ResetCaches
// contract, in the style of TestResetCachesWhileInUse: concurrent edit
// maintenance and counting racing continuous cache resets is free of
// data races and never changes a result.
func TestWarmDeltaWhileReset(t *testing.T) {
	d := spannerDEVA(t, ".*!x{ab}.*")
	base := slp.Repeat(slp.FromBytes([]byte("ab")), 64)
	versions := make([]*slp.Node, 6)
	versions[0] = base
	for i := 1; i < len(versions); i++ {
		versions[i] = insertAt(versions[i-1], int64(2*i), "ab")
	}
	ref := NewIndex(d)
	want := make([]int, len(versions))
	for i, v := range versions {
		want[i] = ref.Count(v)
	}

	const workers = 8
	var stop atomic.Bool
	var wg, resetWG sync.WaitGroup
	errs := make(chan error, workers*32)

	resetWG.Add(1)
	go func() {
		defer resetWG.Done()
		for !stop.Load() {
			ResetCaches()
		}
	}()

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ix := NewIndex(d)
			for it := 0; it < 32; it++ {
				j := (g + it) % (len(versions) - 1)
				ix.WarmDelta(versions[j], versions[j+1])
				if got := ix.Count(versions[j+1]); got != want[j+1] {
					errs <- fmt.Errorf("goroutine %d: Count(version %d) = %d, want %d", g, j+1, got, want[j+1])
				}
				fresh := NewIndex(d)
				fresh.WarmDelta(versions[j], versions[j+1])
				if got := fresh.Count(versions[j+1]); got != want[j+1] {
					errs <- fmt.Errorf("goroutine %d: fresh Count(version %d) = %d, want %d", g, j+1, got, want[j+1])
				}
			}
		}(g)
	}

	wg.Wait()
	stop.Store(true)
	resetWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkWarmDeltaEdit is the E21 micro-benchmark: one insert edit on
// a fully warmed 64 KiB document, maintained incrementally.
func BenchmarkWarmDeltaEdit(b *testing.B) {
	ast, err := regex.Parse(".*!x{ab}.*")
	if err != nil {
		b.Fatal(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte("abc")})
	if err != nil {
		b.Fatal(err)
	}
	d := automata.Determinize(nfa)
	ix := NewIndex(d)
	doc := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(5))
	for i := range doc {
		doc[i] = "ab"[rng.Intn(2)]
	}
	root := slp.FromBytes(doc)
	ix.WarmParallel(root, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := root
		root = insertAt(root, rng.Int63n(root.Len()+1), "ab")
		ix.WarmDelta(old, root)
	}
}
