package slpmatch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"docspanner/internal/slp"
)

// Shared, concurrency-safe per-node caches. Per-SLP-node data (Boolean
// reachability matrices, pure-step vectors, count matrices) depends only
// on the (automaton, node) pair and SLP nodes are immutable, so the memo
// tables live in cores that are hash-consed per automaton: every
// Matcher/Index/Counter over the same automaton shares one core, and a
// database of d documents pays for each shared SLP node once — also
// across goroutines.
//
// The node→value tables are sharded maps under RWMutexes. Lookups of a
// missing node release the lock, compute, and store; concurrent
// computation of the same node is possible but harmless — the computed
// values are equal, and last-write-wins keeps the table consistent.

const cacheShards = 64

// Matrix-cache traffic counters. Each cache counts hits and misses per
// shard on its own cache lines, so the hot lookup path never contends on
// one global counter word across cores; CacheStats folds them together.
// The counter blocks of dropped cores stay registered, keeping the sums
// monotonic for the process lifetime: ResetCaches does not rewind them,
// so servers can export them as Prometheus counters.
type cacheCounters struct {
	shards [cacheShards]struct {
		hits   atomic.Uint64
		misses atomic.Uint64
		_      [48]byte // pad: one cache line per shard's counters
	}
}

var (
	countersMu  sync.Mutex
	allCounters []*cacheCounters
)

func newCacheCounters() *cacheCounters {
	c := &cacheCounters{}
	countersMu.Lock()
	allCounters = append(allCounters, c)
	countersMu.Unlock()
	return c
}

// CacheStats returns the cumulative per-SLP-node matrix-cache hit and
// miss counts, summed over all shared cores (including cores already
// dropped by ResetCaches). Safe to call concurrently with matching,
// warming, and ResetCaches.
func CacheStats() (hits, misses uint64) {
	countersMu.Lock()
	counters := allCounters
	countersMu.Unlock()
	for _, c := range counters {
		for i := range c.shards {
			hits += c.shards[i].hits.Load()
			misses += c.shards[i].misses.Load()
		}
	}
	return hits, misses
}

// Cores returns the number of live shared cores (one per automaton with
// at least one Matcher/Index/Counter built since the last ResetCaches).
func Cores() int {
	n := 0
	for _, reg := range []*sync.Map{&matcherCores, &indexCores, &counterCores} {
		reg.Range(func(_, _ any) bool { n++; return true })
	}
	return n
}

// nodeCache is a sharded concurrent map from SLP nodes to per-node data.
type nodeCache[V any] struct {
	shards [cacheShards]struct {
		mu sync.RWMutex
		m  map[*slp.Node]V
	}
	stats *cacheCounters
}

func newNodeCache[V any]() *nodeCache[V] {
	c := &nodeCache[V]{stats: newCacheCounters()}
	for i := range c.shards {
		c.shards[i].m = make(map[*slp.Node]V)
	}
	return c
}

// shardOf hashes the node pointer. Heap pointers share alignment in the
// low bits and arena locality in the high bits; xoring a shifted copy
// spreads both across the shard index.
func shardOf(n *slp.Node) int {
	p := uintptr(unsafe.Pointer(n))
	return int((p>>4)^(p>>13)) & (cacheShards - 1)
}

func (c *nodeCache[V]) get(n *slp.Node) (V, bool) {
	i := shardOf(n)
	s := &c.shards[i]
	s.mu.RLock()
	v, ok := s.m[n]
	s.mu.RUnlock()
	if ok {
		c.stats.shards[i].hits.Add(1)
	} else {
		c.stats.shards[i].misses.Add(1)
	}
	return v, ok
}

func (c *nodeCache[V]) put(n *slp.Node, v V) {
	s := &c.shards[shardOf(n)]
	s.mu.Lock()
	s.m[n] = v
	s.mu.Unlock()
}

func (c *nodeCache[V]) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		total += len(s.m)
		s.mu.RUnlock()
	}
	return total
}

// WarmStats reports what one WarmDelta call did: how many inner SLP
// nodes had their per-node data computed now (the edit spine — O(log d)
// per CDE operation on balanced SLPs), how many distinct already-warm
// subtree roots the pruned traversal stopped at (each standing for a
// whole reused subtree), and how many inner nodes the core had cached
// before the call (the data kept valid across the edit).
type WarmStats struct {
	// Recomputed counts inner nodes whose data was computed by this call.
	Recomputed int
	// Reused counts the distinct cached nodes the traversal pruned at:
	// the roots of the subtrees shared with previous versions. The DAG
	// below them was never visited — that is the incrementality.
	Reused int
	// CachedBefore is the number of inner nodes the shared core had data
	// for when the call started (across all documents of the automaton).
	CachedBefore int
}

// Add accumulates other into st (for summing index + counter stats).
func (st *WarmStats) Add(other WarmStats) {
	st.Recomputed += other.Recomputed
	st.Reused += other.Reused
	st.CachedBefore += other.CachedBefore
}

// Process-wide WarmDelta totals (monotonic, survive ResetCaches) so
// servers can export edit-maintenance work as Prometheus counters.
var (
	warmRecomputedTotal atomic.Uint64
	warmReusedTotal     atomic.Uint64
)

// WarmDeltaStats returns the cumulative nodes-recomputed and
// nodes-reused counts over every WarmDelta call in the process, across
// all cores (including cores since dropped by ResetCaches).
func WarmDeltaStats() (recomputed, reused uint64) {
	return warmRecomputedTotal.Load(), warmReusedTotal.Load()
}

// warmDelta computes per-node data for the inner nodes of newRoot that
// are not yet cached, pruning the traversal at cached nodes: after a CDE
// edit of a warmed document only the O(log d) fresh spine nodes are
// uncached, so the walk touches the spine plus its cached boundary and
// nothing below it. ensure warms a baseline root first (a single cache
// hit when oldRoot is already warm; a full warm otherwise, so WarmDelta
// is correct — merely not incremental — on a cold core). compute must
// derive n's data from its children's (computing them on demand) and
// store it; a stored node is never recomputed.
//
// The spine is processed sequentially: it is O(ord) nodes, far below the
// level-parallel threshold that pays off in warmParallel.
func warmDelta(oldRoot, newRoot *slp.Node, cached func(*slp.Node) bool, ensure, compute func(*slp.Node)) WarmStats {
	var st WarmStats
	if newRoot == nil {
		return st
	}
	if oldRoot != nil {
		ensure(oldRoot)
	}
	seen := map[*slp.Node]bool{}
	var visit func(n *slp.Node)
	visit = func(n *slp.Node) {
		if n == nil || n.IsLeaf() || seen[n] {
			return
		}
		seen[n] = true
		if cached(n) {
			st.Reused++
			return
		}
		visit(n.Left())
		visit(n.Right())
		compute(n)
		st.Recomputed++
	}
	visit(newRoot)
	warmRecomputedTotal.Add(uint64(st.Recomputed))
	warmReusedTotal.Add(uint64(st.Reused))
	return st
}

// Core registries: one core per automaton instance, shared by every
// Matcher/Index/Counter built on it. The automaton must not be mutated
// after its first use here.
var (
	matcherCores sync.Map // *automata.NFA  → *matcherCore
	indexCores   sync.Map // *automata.DEVA → *indexCore
	counterCores sync.Map // *automata.DEVA → *counterCore
)

// ResetCaches drops every shared core and its node tables (frees memory
// in long-lived processes that discard automata or documents; also the
// cache-flush admin operation of servers, and used by tests that measure
// cache growth from a cold start).
//
// ResetCaches is safe to call at any time, including while Matchers,
// Indexes, and Counters are in use on other goroutines. The reset only
// unlinks the cores from the registries: an instance created before the
// reset keeps the core it was built with (self-contained and still
// consistent, so in-flight and future operations on it stay correct,
// warming into a table that is no longer shared), while instances
// created afterwards start from fresh, empty cores. Two instances over
// the same automaton that straddle a reset therefore no longer share
// matrices — correctness is unaffected, only the amortization.
func ResetCaches() {
	matcherCores.Range(func(k, _ any) bool { matcherCores.Delete(k); return true })
	indexCores.Range(func(k, _ any) bool { indexCores.Delete(k); return true })
	counterCores.Range(func(k, _ any) bool { counterCores.Delete(k); return true })
}

// collectByOrder gathers the distinct unseen inner nodes of root's DAG,
// grouped by Order. Order(n) = 1 + max(order of children), so all nodes
// of one order are pairwise independent: level-by-level processing gives
// a race-free parallel bottom-up schedule.
func collectByOrder(root *slp.Node, cached func(*slp.Node) bool) [][]*slp.Node {
	var levels [][]*slp.Node
	seen := map[*slp.Node]bool{}
	var visit func(n *slp.Node)
	visit = func(n *slp.Node) {
		if n == nil || n.IsLeaf() || seen[n] || cached(n) {
			return
		}
		seen[n] = true
		visit(n.Left())
		visit(n.Right())
		o := int(n.Order())
		for len(levels) <= o {
			levels = append(levels, nil)
		}
		levels[o] = append(levels[o], n)
	}
	visit(root)
	return levels
}

// warmParallel computes per-node data for all uncached inner nodes of
// root bottom-up, fanning each order-level out over workers. compute
// must derive n's data from its children's (already cached) data and
// store it.
func warmParallel(root *slp.Node, workers int, cached func(*slp.Node) bool, compute func(*slp.Node)) {
	levels := collectByOrder(root, cached)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, level := range levels {
		if len(level) == 0 {
			continue
		}
		if workers == 1 || len(level) == 1 {
			for _, n := range level {
				compute(n)
			}
			continue
		}
		var wg sync.WaitGroup
		ch := make(chan *slp.Node, len(level))
		for _, n := range level {
			ch <- n
		}
		close(ch)
		w := workers
		if w > len(level) {
			w = len(level)
		}
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for n := range ch {
					compute(n)
				}
			}()
		}
		wg.Wait()
	}
}
