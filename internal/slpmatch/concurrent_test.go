package slpmatch

import (
	"fmt"
	"math/big"
	"sync"
	"testing"

	"docspanner/internal/slp"
	"docspanner/internal/spans"
)

// Race-regression tests for the shared node caches. Run with -race: one
// Matcher/Index/Counter instance is hammered from 8 goroutines, with a
// fresh (cold-cache) document mix so that concurrent node computation
// actually happens, and every goroutine must see the sequential answers.

func TestSharedIndexConcurrent(t *testing.T) {
	d := spannerDEVA(t, ".*!x{ab}.*")
	docs := make([]*slp.Node, 6)
	want := make([]int, len(docs))
	refIx := NewIndex(d)
	for i := range docs {
		docs[i] = slp.Repeat(slp.FromBytes([]byte("ab")), int64(64+i))
		want[i] = refIx.Count(docs[i])
	}

	ResetCaches() // cold shared cache: the goroutines race to fill it
	ix := NewIndex(d)
	var wg sync.WaitGroup
	errs := make(chan error, 8*len(docs))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range docs {
				j := (i + g) % len(docs)
				if got := ix.Count(docs[j]); got != want[j] {
					errs <- fmt.Errorf("goroutine %d: Count(doc %d) = %d, want %d", g, j, got, want[j])
				}
				if !ix.NonEmpty(docs[j]) {
					errs <- fmt.Errorf("goroutine %d: NonEmpty(doc %d) = false", g, j)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSharedMatcherAndCounterConcurrent(t *testing.T) {
	nfa := plainNFA(t, "(ab)*")
	d := spannerDEVA(t, ".*!x{ab}.*")
	ResetCaches()
	m, err := NewMatcher(nfa)
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCounter(d)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := int64(60); k < 68; k++ {
				root := slp.Repeat(slp.FromBytes([]byte("ab")), k)
				if !m.Accepts(root) {
					errs <- fmt.Errorf("goroutine %d: (ab)^%d rejected", g, k)
				}
				if got := ct.Count(root); got.Cmp(big.NewInt(k)) != 0 {
					errs <- fmt.Errorf("goroutine %d: Count((ab)^%d) = %v", g, k, got)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWarmParallelMatchesSequential(t *testing.T) {
	d := spannerDEVA(t, ".*!x{(a|b)+}.*")
	root := slp.Balance(slp.Compress([]byte("abbaabbbabababba")))
	seq := NewIndex(d)
	seq.Warm(root)
	wantCount := seq.Count(root)
	wantNodes := seq.CachedNodes()

	ResetCaches()
	par := NewIndex(d)
	par.WarmParallel(root, 4)
	if got := par.CachedNodes(); got != wantNodes {
		t.Errorf("WarmParallel cached %d nodes, sequential %d", got, wantNodes)
	}
	if got := par.Count(root); got != wantCount {
		t.Errorf("Count after WarmParallel = %d, want %d", got, wantCount)
	}

	ResetCaches()
	m, err := NewMatcher(plainNFA(t, "(a|b)*"))
	if err != nil {
		t.Fatal(err)
	}
	m.WarmParallel(root, 4)
	if !m.Accepts(root) {
		t.Error("Accepts after WarmParallel = false")
	}
}

func TestIndexEnumMidDocStart(t *testing.T) {
	// Regression for the cached final-alive vector: enumeration touching
	// every boundary must agree with a fresh index.
	d := spannerDEVA(t, ".*!x{ab}.*")
	root := slp.Repeat(slp.FromBytes([]byte("ab")), 40)
	ix := NewIndex(d)
	got := spans.NewRelation()
	ix.Each(root, func(tu spans.Tuple) bool { got.Add(tu); return true })
	if got.Len() != 40 {
		t.Errorf("enumerated %d tuples, want 40", got.Len())
	}
}
