package slpmatch

import (
	"math/big"
	"math/rand"
	"testing"

	"docspanner/internal/enum"
	"docspanner/internal/slp"
	"docspanner/internal/spans"
)

func TestCounterMatchesEnumeration(t *testing.T) {
	exprs := []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		".*!x{ab}.*",
		"!x{.*}!y{.*}",
		"(!x{aa}|!x{bb}).*",
	}
	rng := rand.New(rand.NewSource(123))
	for _, src := range exprs {
		d := spannerDEVA(t, src)
		c := NewCounter(d)
		ix := NewIndex(d)
		for trial := 0; trial < 15; trial++ {
			n := rng.Intn(14)
			doc := make([]byte, n)
			for i := range doc {
				doc[i] = "ab"[rng.Intn(2)]
			}
			root := slp.Balance(slp.Compress(doc))
			want := int64(ix.Count(root))
			got := c.Count(root)
			if got.Int64() != want {
				t.Fatalf("%q on %q: Count = %v, enum = %d", src, doc, got, want)
			}
			// And against the uncompressed fast counter.
			fast := enum.FastCount(d, doc)
			if fast.Int64() != want {
				t.Fatalf("%q on %q: FastCount = %v, enum = %d", src, doc, fast, want)
			}
		}
	}
}

// The count-only walk must agree with enumerate-and-filter for every
// variable subset, and honor the poll abort.
func TestIndexCountTotalMatchesEach(t *testing.T) {
	exprs := []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		"!x{a+}(!y{b+})?.*",
		"(!x{aa}|!x{bb}).*",
	}
	docs := []string{"", "ab", "abab", "aabbaabb", "abaabbabab"}
	for _, src := range exprs {
		d := spannerDEVA(t, src)
		ix := NewIndex(d)
		for _, doc := range docs {
			root := slp.Balance(slp.Compress([]byte(doc)))
			for _, vars := range []spans.VarSet{nil, spans.NewVarSet("x"), spans.NewVarSet("x", "y"), spans.NewVarSet("nope")} {
				want := 0
				ix.Each(root, func(t spans.Tuple) bool {
					if t.TotalOn(vars) {
						want++
					}
					return true
				})
				got, complete := ix.CountTotal(root, vars, nil)
				if got != want || !complete {
					t.Fatalf("%q on %q vars %v: CountTotal = %d (complete=%v), want %d", src, doc, vars, got, complete, want)
				}
			}
		}
	}
}

func TestIndexCountTotalPollAborts(t *testing.T) {
	d := spannerDEVA(t, ".*!x{a*}.*")
	ix := NewIndex(d)
	root := slp.Balance(slp.Compress([]byte("aaaaaaaa")))
	total := ix.Count(root)
	if total < 10 {
		t.Fatalf("test needs a larger result, got %d", total)
	}
	seen := 0
	n, complete := ix.CountTotal(root, nil, func() bool { seen++; return seen < 5 })
	if complete || n != 5 {
		t.Errorf("aborted CountTotal = (%d, %v), want (5, false)", n, complete)
	}
}

func TestCounterEmptyDoc(t *testing.T) {
	d := spannerDEVA(t, "!x{a*}")
	c := NewCounter(d)
	if got := c.Count(nil); got.Int64() != 1 {
		t.Errorf("Count(ε) = %v, want 1", got)
	}
}

func TestCounterAstronomical(t *testing.T) {
	// !x{.*}!y{.*}!z{.*} partitions the document at two boundaries
	// 1 ≤ i ≤ j ≤ n+1: exactly (n+1)(n+2)/2 tuples. On n = 2^40 the count
	// has 24 digits — far beyond anything enumerable — and the compressed
	// counter delivers it exactly from a ~100-node SLP.
	d := spannerDEVA(t, "!x{(a|b)*}!y{(a|b)*}!z{(a|b)*}")
	c := NewCounter(d)
	n := int64(1) << 40
	root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
	got := c.Count(root)

	want := new(big.Int).SetInt64(n + 1)
	want.Mul(want, big.NewInt(n+2))
	want.Div(want, big.NewInt(2))
	if got.Cmp(want) != 0 {
		t.Errorf("Count = %v, want %v", got, want)
	}

	// Two adjacent variables: n+1 boundary placements.
	d2 := spannerDEVA(t, "!x{(a|b)*}!y{(a|b)*}")
	c2 := NewCounter(d2)
	if got := c2.Count(root); got.Cmp(big.NewInt(n+1)) != 0 {
		t.Errorf("two-variable Count = %v, want %d", got, n+1)
	}
}

func TestCounterLinearSpanner(t *testing.T) {
	// .*!x{ab}.* on (ab)^k has exactly k result tuples.
	d := spannerDEVA(t, ".*!x{ab}.*")
	c := NewCounter(d)
	for _, k := range []int64{1, 64, 1 << 20, 1 << 33} {
		root := slp.Repeat(slp.FromBytes([]byte("ab")), k)
		if got := c.Count(root); got.Cmp(big.NewInt(k)) != 0 {
			t.Errorf("k=%d: Count = %v", k, got)
		}
	}
}

func TestCounterSharesCacheAcrossDocs(t *testing.T) {
	d := spannerDEVA(t, ".*!x{ab}.*")
	c := NewCounter(d)
	base := slp.FromBytes([]byte("abab"))
	d1 := slp.Repeat(base, 1024)
	d2 := slp.Concat(d1, base) // shares almost everything with d1
	c.Count(d1)
	before := c.CachedNodes()
	c.Count(d2)
	if added := c.CachedNodes() - before; added > 16 {
		t.Errorf("second document added %d matrices, want few (shared DAG)", added)
	}
}

func TestFastCountAgainstEnumeratorLarge(t *testing.T) {
	d := spannerDEVA(t, ".*!x{(a|b)+}.*")
	doc := make([]byte, 200)
	rng := rand.New(rand.NewSource(5))
	for i := range doc {
		doc[i] = "ab"[rng.Intn(2)]
	}
	e := enum.NewEnumerator(d, doc)
	if got := enum.FastCount(d, doc); got.Int64() != int64(e.Count()) {
		t.Errorf("FastCount = %v, enum = %d", got, e.Count())
	}
}
