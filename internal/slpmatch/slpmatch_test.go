package slpmatch

import (
	"math/rand"
	"strings"
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/regex"
	"docspanner/internal/slp"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func plainNFA(t *testing.T, src string) *automata.NFA {
	t.Helper()
	n, err := regex.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCompressedMembership(t *testing.T) {
	m, err := NewMatcher(plainNFA(t, "(ab)*c?"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		doc  string
		want bool
	}{
		{"", true},
		{"ab", true},
		{"ababab", true},
		{"abababc", true},
		{"c", true},
		{"a", false},
		{"ba", false},
		{"abc" + strings.Repeat("ab", 100), false},
	}
	for _, c := range cases {
		root := slp.Balance(slp.Compress([]byte(c.doc)))
		if got := m.Accepts(root); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.doc, got, c.want)
		}
	}
}

func TestCompressedMembershipHugeDoc(t *testing.T) {
	// (ab)^2^20 — exponentially compressed; membership must run on the
	// tiny SLP without decompressing.
	m, err := NewMatcher(plainNFA(t, "(ab)*"))
	if err != nil {
		t.Fatal(err)
	}
	root := slp.Repeat(slp.FromBytes([]byte("ab")), 1<<20)
	if !m.Accepts(root) {
		t.Error("huge periodic doc rejected")
	}
	odd := slp.Concat(root, slp.FromBytes([]byte("a")))
	if m.Accepts(odd) {
		t.Error("odd-length doc accepted")
	}
	if m.CachedNodes() > 200 {
		t.Errorf("matrix cache has %d nodes, expected O(|S|)", m.CachedNodes())
	}
}

func TestCompressedMembershipRandomCrossCheck(t *testing.T) {
	m, err := NewMatcher(plainNFA(t, "a(a|b)*b|c+"))
	if err != nil {
		t.Fatal(err)
	}
	d := automata.Determinize(plainNFA(t, "a(a|b)*b|c+"))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(30)
		doc := make([]byte, n)
		for i := range doc {
			doc[i] = "abc"[rng.Intn(3)]
		}
		root := slp.Balance(slp.Compress(doc))
		want := d.AcceptsExtended(doc, nil)
		if got := m.Accepts(root); got != want {
			t.Fatalf("Accepts(%q) = %v, want %v", doc, got, want)
		}
	}
}

func TestMatcherRejectsSpanners(t *testing.T) {
	if _, err := NewMatcher(plainNFA(t, "!x{a}")); err == nil {
		t.Error("marker automaton accepted by NewMatcher")
	}
}

func spannerDEVA(t *testing.T, src string) *automata.DEVA {
	t.Helper()
	return automata.Determinize(plainNFA(t, src))
}

func TestIndexEnumAgainstUncompressed(t *testing.T) {
	exprs := []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		".*!x{ab}.*",
		"!x{a+}(!y{b+})?.*",
		"!x{.*}!y{.*}",
		"(!x{aa}|!x{bb}).*",
	}
	docs := []string{"", "a", "ab", "abab", "aabba", "bbbbbb", "abaabbab", "ababbab"}
	for _, src := range exprs {
		d := spannerDEVA(t, src)
		ix := NewIndex(d)
		for _, doc := range docs {
			root := slp.Balance(slp.Compress([]byte(doc)))
			got := ix.All(root)
			want := enum.NewEnumerator(d, []byte(doc)).All()
			if !got.Equal(want) {
				t.Errorf("%q on %q:\n compressed %v\n plain %v", src, doc, got, want)
			}
		}
	}
}

func TestIndexEnumRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := spannerDEVA(t, ".*a!x{(b|c)*}a.*")
	ix := NewIndex(d)
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(24) + 1
		doc := make([]byte, n)
		for i := range doc {
			doc[i] = "abc"[rng.Intn(3)]
		}
		root := slp.Balance(slp.Compress(doc))
		got := ix.All(root)
		want := enum.NewEnumerator(d, doc).All()
		if !got.Equal(want) {
			t.Fatalf("doc %q:\n compressed %v\n plain %v", doc, got, want)
		}
	}
}

func TestIndexHugeCompressedDoc(t *testing.T) {
	// Count "ab" factor occurrences in (ab)^k via the spanner .*!x{ab}.*
	// on a logarithmic-size SLP.
	d := spannerDEVA(t, ".*!x{ab}.*")
	ix := NewIndex(d)
	k := int64(1 << 14)
	root := slp.Repeat(slp.FromBytes([]byte("ab")), k)
	ix.Warm(root)
	// Count by early termination to keep the test fast: take the first
	// 1000 tuples only.
	taken := 0
	ix.Each(root, func(spans.Tuple) bool {
		taken++
		return taken < 1000
	})
	if taken != 1000 {
		t.Errorf("early-stopped enumeration returned %d tuples", taken)
	}
	// Full count on a smaller power.
	small := slp.Repeat(slp.FromBytes([]byte("ab")), 64)
	if got := ix.Count(small); got != 64 {
		t.Errorf("Count = %d, want 64", got)
	}
}

func TestIndexNonEmpty(t *testing.T) {
	d := spannerDEVA(t, ".*!x{abc}.*")
	ix := NewIndex(d)
	yes := slp.Balance(slp.Compress([]byte("bbabcbb")))
	no := slp.Balance(slp.Compress([]byte("ababab")))
	if !ix.NonEmpty(yes) {
		t.Error("NonEmpty(yes) = false")
	}
	if ix.NonEmpty(no) {
		t.Error("NonEmpty(no) = true")
	}
	// Empty document with ε-matching spanner.
	dEps := spannerDEVA(t, "!x{a*}")
	ixe := NewIndex(dEps)
	if !ixe.NonEmpty(nil) {
		t.Error("NonEmpty(ε) = false for ε-matching spanner")
	}
}

func TestIndexSharedCacheAcrossCDEUpdates(t *testing.T) {
	// The index data extends incrementally when CDE edits create new
	// nodes (Section 4.3): old nodes stay cached.
	d := spannerDEVA(t, ".*!x{ab}.*")
	ix := NewIndex(d)
	db := slp.NewDB()
	base := slp.FromBytes([]byte(strings.Repeat("ab", 128)))
	db.Add("D", base)
	ix.Warm(base)
	before := ix.CachedNodes()

	e, err := slp.ParseCDE("copy(D,1,6,100)")
	if err != nil {
		t.Fatal(err)
	}
	edited, err := db.EvalAndAdd("D2", e)
	if err != nil {
		t.Fatal(err)
	}
	ix.Warm(edited)
	added := ix.CachedNodes() - before
	if added <= 0 || added > 80 {
		t.Errorf("CDE update added %d cached nodes, want O(log n)", added)
	}
	// Result must match the uncompressed enumerator on the edited doc.
	got := ix.All(edited)
	want := enum.NewEnumerator(d, edited.Bytes()).All()
	if !got.Equal(want) {
		t.Error("post-edit enumeration mismatch")
	}
}

func TestIndexMatchesNaiveEval(t *testing.T) {
	nfa := plainNFA(t, "!x{(a|b)+}c!y{a*}")
	d := automata.Determinize(nfa)
	ix := NewIndex(d)
	for _, doc := range []string{"ac", "abca", "bbca", "abcaa", "cab"} {
		root := slp.FromBytes([]byte(doc))
		got := ix.All(root)
		want := vset.Eval(nfa, []byte(doc), vset.Schemaless)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n compressed %v\n naive %v", doc, got, want)
		}
	}
}
