package slpmatch

import (
	"docspanner/internal/automata"
	"docspanner/internal/slp"
	"docspanner/internal/spans"
)

// nodeData is the per-SLP-node payload of an index: the deterministic
// pure-letter step function P, the mask-anywhere reachability matrix E
// (at every boundary before a letter, at most one mask may fire), the
// at-least-one-mask matrix E⁺ used to prune subtrees without result
// events, and Eᵀ so that alive-vector pullback streams only the rows
// that are set in the vector.
type nodeData struct {
	pure []int32
	em   *automata.BoolMatrix
	ep   *automata.BoolMatrix
	emT  *automata.BoolMatrix
}

// indexCore is the shared state of all Indexes over one DEVA: the
// compiled automaton, dense leaf data for every byte, the cached
// final-alive vector, and the concurrent node cache.
type indexCore struct {
	c          *automata.CompiledDEVA
	nq         int
	words      int
	nodes      *nodeCache[*nodeData]
	leaf       [256]*nodeData
	finalAlive []uint64
}

func indexCoreFor(d *automata.DEVA) *indexCore {
	if v, ok := indexCores.Load(d); ok {
		return v.(*indexCore)
	}
	core := buildIndexCore(d)
	v, _ := indexCores.LoadOrStore(d, core)
	return v.(*indexCore)
}

func buildIndexCore(d *automata.DEVA) *indexCore {
	c := d.Compiled()
	nq := c.NQ
	core := &indexCore{c: c, nq: nq, words: (nq + 63) / 64, nodes: newNodeCache[*nodeData]()}

	// Dense leaf table: real data for the automaton's letters, one shared
	// dead entry (pure all −1, zero matrices) for every other byte — a
	// letter the automaton never reads kills every run.
	dead := &nodeData{
		pure: make([]int32, nq),
		em:   automata.NewBoolMatrix(nq),
		ep:   automata.NewBoolMatrix(nq),
	}
	dead.emT = dead.em
	for q := range dead.pure {
		dead.pure[q] = -1
	}
	for b := range core.leaf {
		core.leaf[b] = dead
	}
	for _, b := range c.Letters {
		steps := c.StepsFor(b)
		nd := &nodeData{
			pure: steps,
			em:   automata.NewBoolMatrix(nq),
			ep:   automata.NewBoolMatrix(nq),
		}
		for q := 0; q < nq; q++ {
			if s := steps[q]; s >= 0 {
				nd.em.Set(q, int(s))
			}
			for _, me := range c.MaskEdges[q] {
				if s2 := steps[me.To]; s2 >= 0 {
					nd.em.Set(q, int(s2))
					nd.ep.Set(q, int(s2))
				}
			}
		}
		nd.emT = nd.em.Transpose()
		core.leaf[b] = nd
	}

	// States accepting at the end boundary: directly final, or final
	// after one last mask.
	v := automata.NewBitVec(nq)
	for q := 0; q < nq; q++ {
		if c.Final[q] {
			automata.BitSet(v, q)
			continue
		}
		for _, me := range c.MaskEdges[q] {
			if c.Final[me.To] {
				automata.BitSet(v, q)
				break
			}
		}
	}
	core.finalAlive = v
	return core
}

// node computes (memoized in the shared cache) the P/E/E⁺ data of an SLP
// node. Concurrent computation of the same node yields equal data;
// last-write-wins is harmless.
func (core *indexCore) node(n *slp.Node) *nodeData {
	if n.IsLeaf() {
		return core.leaf[n.LeafByte()]
	}
	if nd, ok := core.nodes.get(n); ok {
		return nd
	}
	nd := core.combine(core.node(n.Left()), core.node(n.Right()))
	core.nodes.put(n, nd)
	return nd
}

// combine derives a concatenation node's data from its children's.
func (core *indexCore) combine(l, r *nodeData) *nodeData {
	nq := core.nq
	p := make([]int32, nq)
	for q := 0; q < nq; q++ {
		if l.pure[q] >= 0 {
			p[q] = r.pure[l.pure[q]]
		} else {
			p[q] = -1
		}
	}
	em := l.em.Mul(r.em)
	// E⁺_AB = E⁺_A·E_B  ∨  P_A ; E⁺_B (mask in the left part, or pure
	// left then mask in the right part).
	ep := l.ep.Mul(r.em)
	for q := 0; q < nq; q++ {
		if l.pure[q] >= 0 {
			src := r.ep.Row(int(l.pure[q]))
			dst := ep.Row(q)
			for k := range dst {
				dst[k] |= src[k]
			}
		}
	}
	return &nodeData{pure: p, em: em, ep: ep, emT: em.Transpose()}
}

// Index enumerates a deterministic extended vset-automaton's spanner
// over SLP-compressed documents. All Indexes over one DEVA share a
// compiled core and node cache; an Index is safe for concurrent use.
type Index struct {
	core *indexCore
}

// NewIndex prepares (or reuses, hash-consed per automaton) an index for
// the given deterministic eVA.
func NewIndex(d *automata.DEVA) *Index {
	return &Index{core: indexCoreFor(d)}
}

// DEVA returns the underlying deterministic automaton.
func (ix *Index) DEVA() *automata.DEVA { return ix.core.c.DEVA }

// Warm precomputes the index for all nodes of a document — the
// preprocessing phase, linear in the SLP size (data complexity).
func (ix *Index) Warm(root *slp.Node) {
	if root != nil {
		ix.core.node(root)
	}
}

// WarmParallel is Warm with the uncached nodes of each SLP DAG level
// fanned out over workers goroutines (GOMAXPROCS if workers ≤ 0); nodes
// of equal order are independent, so the schedule is race-free.
func (ix *Index) WarmParallel(root *slp.Node, workers int) {
	core := ix.core
	warmParallel(root, workers,
		func(n *slp.Node) bool { _, ok := core.nodes.get(n); return ok },
		func(n *slp.Node) {
			core.nodes.put(n, core.combine(core.node(n.Left()), core.node(n.Right())))
		})
}

// CachedNodes reports the number of inner SLP nodes with computed data
// in the shared cache of this Index's automaton.
func (ix *Index) CachedNodes() int { return ix.core.nodes.len() }

// WarmDelta brings the index up to date after an edit that turned
// oldRoot into newRoot: the traversal prunes at every node whose data is
// already cached, so it computes P/E/E⁺ data only for the O(log d)
// fresh spine nodes of the edit (Section 4.3 — the hash-consed subtrees
// shared with oldRoot are free). A nil oldRoot warms newRoot from
// whatever is cached. Safe for concurrent use, like Warm.
func (ix *Index) WarmDelta(oldRoot, newRoot *slp.Node) WarmStats {
	core := ix.core
	before := core.nodes.len()
	st := warmDelta(oldRoot, newRoot,
		func(n *slp.Node) bool { _, ok := core.nodes.get(n); return ok },
		func(n *slp.Node) { core.node(n) },
		func(n *slp.Node) { core.node(n) })
	st.CachedBefore = before
	return st
}

// NonEmpty decides whether the spanner result on 𝔇(root) is non-empty,
// in compressed time (no decompression).
func (ix *Index) NonEmpty(root *slp.Node) bool {
	core := ix.core
	if root == nil {
		return vecGet(core.finalAlive, core.c.Start)
	}
	v := core.node(root).emT.ApplyLeft(core.finalAlive)
	return vecGet(v, core.c.Start)
}

// event mirrors the uncompressed enumerator's event type.
type event struct {
	boundary int64
	mask     automata.Mask
}

// Each enumerates the spanner's result tuples on 𝔇(root) without
// decompressing the document: after Warm (linear in |S|), the delay
// between consecutive tuples is O(ord(root) · poly(automaton)) — i.e.
// O(log |D|) on balanced SLPs, matching the survey's Section 4 bound.
// Enumeration stops early when f returns false. Concurrent Each calls on
// one Index are safe; each call keeps its own traversal state.
func (ix *Index) Each(root *slp.Node, f func(spans.Tuple) bool) {
	ix.Warm(root)
	e := &cenum{core: ix.core, root: root, emit: f}
	events := make([]event, 0, 2*len(ix.core.c.DEVA.Index.Vars())+1)
	e.dfs(ix.core.c.Start, 0, events, 0)
}

// Count returns the number of result tuples. It runs the walk in
// count-only mode: no tuples, no events, no per-tuple allocation.
func (ix *Index) Count(root *slp.Node) int {
	n, _ := ix.CountTotal(root, nil, nil)
	return n
}

// CountTotal counts the tuples assigning every variable of vars (all
// tuples when vars is empty) without materializing them: the walk
// accumulates fired masks and tests the open-marker bits, exactly like
// the uncompressed enumerator's counting walk. poll, if non-nil, runs
// once per counted tuple; returning false aborts, reporting
// complete=false with the partial count.
func (ix *Index) CountTotal(root *slp.Node, vars spans.VarSet, poll func() bool) (n int, complete bool) {
	need, ok := ix.core.c.DEVA.Index.OpenBits(vars)
	if !ok {
		return 0, true
	}
	ix.Warm(root)
	e := &cenum{core: ix.core, root: root, countOnly: true, need: need, poll: poll}
	e.dfs(ix.core.c.Start, 0, nil, 0)
	return e.count, !e.aborted
}

// All materializes the relation (tests and small outputs only).
func (ix *Index) All(root *slp.Node) *spans.Relation {
	out := spans.NewRelation()
	ix.Each(root, func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}

// cenum is one enumeration pass; it owns a free list of alive-vector
// scratch buffers so the walk allocates only on its deepest path. In
// count-only mode (countOnly) the event list stays empty and the walk
// carries only the accumulated mask — no tuples are built.
type cenum struct {
	core    *indexCore
	root    *slp.Node
	emit    func(spans.Tuple) bool
	aborted bool
	free    [][]uint64

	countOnly bool
	need      automata.Mask
	count     int
	poll      func() bool

	// nd is a lock-free front cache over the shared node cache: one walk
	// re-reads the same nodes on every dfs descent, and a plain map
	// lookup beats the sharded cache's lock and counters.
	nd map[*slp.Node]*nodeData
}

// node is core.node behind the walk-local front cache.
func (e *cenum) node(n *slp.Node) *nodeData {
	if d, ok := e.nd[n]; ok {
		return d
	}
	d := e.core.node(n)
	if e.nd == nil {
		e.nd = make(map[*slp.Node]*nodeData, 64)
	}
	e.nd[n] = d
	return d
}

// counted records one tuple in count-only mode, honoring the poll hook.
func (e *cenum) counted(acc automata.Mask) {
	if acc&e.need != e.need {
		return
	}
	e.count++
	if e.poll != nil && !e.poll() {
		e.aborted = true
	}
}

func (e *cenum) getVec() []uint64 {
	if k := len(e.free); k > 0 {
		v := e.free[k-1]
		e.free = e.free[:k-1]
		return v
	}
	return make([]uint64, e.core.words)
}

func (e *cenum) putVec(v []uint64) { e.free = append(e.free, v) }

// dfs enumerates all accepting runs from state q at absolute boundary
// pos, with the given event prefix (or accumulated mask when counting);
// no mask has fired at pos yet.
func (e *cenum) dfs(q int, pos int64, events []event, acc automata.Mask) {
	if e.aborted {
		return
	}
	n := e.root.Len()
	if pos == n {
		e.finish(q, events, acc)
		return
	}
	exit := e.walk(e.root, q, pos, e.core.finalAlive, 0, events, acc)
	if e.aborted || exit < 0 {
		return
	}
	e.finish(int(exit), events, acc)
}

// finish handles the end-of-document boundary: emit the pure run and the
// runs taking one final mask.
func (e *cenum) finish(q int, events []event, acc automata.Mask) {
	c := e.core.c
	if c.Final[q] {
		if e.countOnly {
			e.counted(acc)
			if e.aborted {
				return
			}
		} else if !e.emit(e.tuple(events)) {
			e.aborted = true
			return
		}
	}
	for _, me := range c.MaskEdges[q] {
		if c.Final[me.To] {
			if e.countOnly {
				e.counted(acc | me.Mask)
				if e.aborted {
					return
				}
				continue
			}
			ev := append(events, event{e.root.Len(), me.Mask})
			if !e.emit(e.tuple(ev)) {
				e.aborted = true
				return
			}
		}
	}
}

// walk processes node a from local offset i entering state q; av is the
// alive vector for the boundary after a. It fires every productive event
// inside a (recursing into dfs for the continuation) and returns the
// pure-letter exit state (−1 if the pure run dies).
func (e *cenum) walk(a *slp.Node, q int, i int64, av []uint64, off int64, events []event, acc automata.Mask) int32 {
	if e.aborted {
		return -1
	}
	core := e.core
	if a.IsLeaf() {
		b := a.LeafByte()
		steps := core.leaf[b].pure
		for _, me := range core.c.MaskEdges[q] {
			s := steps[me.To]
			if s < 0 || !vecGet(av, int(s)) {
				continue
			}
			if e.countOnly {
				e.dfs(int(s), off+1, nil, acc|me.Mask)
			} else {
				ev := append(events, event{off, me.Mask})
				e.dfs(int(s), off+1, ev, acc)
			}
			if e.aborted {
				return -1
			}
		}
		return steps[q]
	}
	llen := a.Left().Len()
	if i >= llen {
		return e.walk(a.Right(), q, i-llen, av, off+llen, events, acc)
	}
	// Prune whole subtrees without productive events (only valid from
	// offset 0, where E⁺ describes the whole node).
	if i == 0 {
		nd := e.node(a)
		if !rowMeets(nd.ep, q, av) {
			return nd.pure[q]
		}
	}
	// Pull the alive vector back over the right part: avL = E_R·av,
	// computed as avᵀ·E_Rᵀ so only the set rows are streamed.
	rd := e.node(a.Right())
	avL := rd.emT.ApplyLeftInto(e.getVec(), av)
	ls := e.walk(a.Left(), q, i, avL, off, events, acc)
	e.putVec(avL)
	if e.aborted || ls < 0 {
		return -1
	}
	return e.walk(a.Right(), int(ls), 0, av, off+llen, events, acc)
}

// rowMeets reports whether row q of m intersects vector v.
func rowMeets(m *automata.BoolMatrix, q int, v []uint64) bool {
	row := m.Row(q)
	for k := range row {
		if row[k]&v[k] != 0 {
			return true
		}
	}
	return false
}

func vecGet(v []uint64, q int) bool { return automata.BitGet(v, q) }

// tuple converts events into a span tuple (1-based positions).
func (e *cenum) tuple(events []event) spans.Tuple {
	t := make(spans.Tuple, len(e.core.c.DEVA.Index.Vars()))
	for _, ev := range events {
		pos := int(ev.boundary) + 1
		for _, mk := range e.core.c.Markers(ev.mask) {
			if mk.Close {
				s := t[mk.Var]
				s.End = pos
				t[mk.Var] = s
			} else {
				t[mk.Var] = spans.S(pos, pos)
			}
		}
	}
	return t
}
